// Meraculous phase 1 on a Gravel cluster: synthetic reads are chopped into
// k-mers, hashed across the cluster, and inserted into a distributed
// open-addressing hash table by active messages executed at each k-mer's
// home node (paper §6, "mer").
//
// Usage: ./examples/kmer_pipeline [reads_per_node] [nodes]
#include <cstdio>
#include <cstdlib>

#include "apps/mer.hpp"
#include "apps/mer_traverse.hpp"
#include "runtime/cluster.hpp"

int main(int argc, char** argv) {
  using namespace gravel;

  apps::MerConfig cfg;
  cfg.genome_length = 1 << 17;
  cfg.reads_per_node = argc > 1 ? std::atoll(argv[1]) : 2000;
  cfg.read_length = 100;
  cfg.k = 21;
  cfg.table_slots_per_node = 1 << 16;
  const auto nodes = std::uint32_t(argc > 2 ? std::atoi(argv[2]) : 4);

  rt::ClusterConfig cc;
  cc.nodes = nodes;
  cc.heap_bytes = 32u << 20;
  rt::Cluster cluster(cc);

  std::printf(
      "building a distributed %u-mer table from %llu reads x %u nodes "
      "(read length %u, ~0.5%% error rate)...\n",
      cfg.k, (unsigned long long)cfg.reads_per_node, nodes, cfg.read_length);

  const auto result = apps::runMer(cluster, cfg);

  std::printf("k-mer occurrences   : %llu\n",
              (unsigned long long)result.total_occurrences);
  std::printf("distinct k-mers     : %llu\n",
              (unsigned long long)result.distinct_kmers);
  std::printf("max table load      : %.1f%%\n",
              100.0 * result.max_load_factor);
  std::printf("remote insert ratio : %.1f%%\n",
              100.0 * result.report.stats.remoteFraction());
  std::printf("network messages    : %llu batches, avg %.0f bytes\n",
              (unsigned long long)result.report.stats.net_batches,
              result.report.stats.avg_batch_bytes);
  std::printf("table verification  : %s\n",
              result.report.validated ? "exact match with serial reference"
                                      : "MISMATCH");
  if (!result.report.validated) return 1;

  // Phase 2 (the paper's deferred future work): contig traversal as chains
  // of active messages hopping between k-mer home nodes.
  std::printf("\ntraversing the UU graph (phase 2)...\n");
  const auto contigs = apps::runMerTraverse(cluster, cfg, result);
  std::printf("contigs             : %llu\n",
              (unsigned long long)contigs.contigs);
  std::printf("k-mers in contigs   : %llu\n",
              (unsigned long long)contigs.contig_kmers);
  std::printf("longest contig      : %llu k-mers\n",
              (unsigned long long)contigs.longest_contig);
  std::printf("walk hops (network) : %llu messages\n",
              (unsigned long long)contigs.report.stats.net_messages);
  std::printf("traversal check     : %s\n",
              contigs.report.validated ? "matches serial traversal"
                                       : "MISMATCH");
  return contigs.report.validated ? 0 : 1;
}
