// Graph analytics on a Gravel cluster: PageRank, single-source shortest
// paths and greedy coloring over the same distributed graph — the paper's
// GasCL-derived workload family (§6), each validated against a serial
// reference.
//
// Usage: ./examples/graph_analytics [vertices] [nodes]
#include <cstdio>
#include <cstdlib>

#include "apps/color.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "graph/generators.hpp"
#include "runtime/cluster.hpp"

int main(int argc, char** argv) {
  using namespace gravel;

  const auto vertices =
      graph::Vertex(argc > 1 ? std::atoi(argv[1]) : 20000);
  const auto nodes = std::uint32_t(argc > 2 ? std::atoi(argv[2]) : 4);

  std::printf("generating a hugebubbles-like mesh of ~%u vertices...\n",
              vertices);
  graph::DistGraph dg(graph::bubblesLike(vertices, 21), nodes);
  std::printf("  %u vertices, %llu directed edges, avg degree %.2f\n",
              dg.graph().vertexCount(),
              (unsigned long long)dg.graph().edgeCount(),
              dg.graph().averageDegree());

  {
    rt::ClusterConfig cc;
    cc.nodes = nodes;
    rt::Cluster cluster(cc);
    apps::PageRankConfig cfg;
    cfg.iterations = 5;
    const auto pr = apps::runPageRank(cluster, dg, cfg);
    graph::Vertex best = 0;
    for (graph::Vertex v = 1; v < dg.graph().vertexCount(); ++v)
      if (pr.ranks[v] > pr.ranks[best]) best = v;
    std::printf(
        "PageRank : 5 iterations, top vertex %u (rank %.3g), remote %.1f%%, "
        "%s\n",
        best, pr.ranks[best], 100.0 * pr.report.stats.remoteFraction(),
        pr.report.validated ? "matches serial" : "MISMATCH");
    if (!pr.report.validated) return 1;
  }
  {
    rt::ClusterConfig cc;
    cc.nodes = nodes;
    rt::Cluster cluster(cc);
    const auto sssp = apps::runSssp(cluster, dg, {});
    std::uint64_t reached = 0, far = 0;
    for (auto d : sssp.dist)
      if (d != apps::kSsspInf) {
        ++reached;
        far = std::max(far, d);
      }
    std::printf(
        "SSSP     : %llu rounds, %llu reachable, eccentricity %llu, %s\n",
        (unsigned long long)sssp.report.iterations,
        (unsigned long long)reached, (unsigned long long)far,
        sssp.report.validated ? "matches Dijkstra" : "MISMATCH");
    if (!sssp.report.validated) return 1;
  }
  {
    rt::ClusterConfig cc;
    cc.nodes = nodes;
    rt::Cluster cluster(cc);
    const auto col = apps::runColor(cluster, dg, {});
    std::printf(
        "coloring : %llu rounds, %llu colors, %s\n",
        (unsigned long long)col.report.iterations,
        (unsigned long long)col.palette,
        col.report.validated ? "proper coloring verified" : "IMPROPER");
    if (!col.report.validated) return 1;
  }
  return 0;
}
