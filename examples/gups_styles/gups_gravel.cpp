// GUPS in the Gravel / message-per-lane style (paper Figure 4b).
//
// This file is measured by bench_table2_loc: the paper's Table 2 counts 193
// lines for this style against 342 (coprocessor) and 318 (coalesced APIs).
// The program text is the whole point — one shmem_inc per work-item, no
// queue management, no chunking, no scratchpad sort.
#include <cstdio>
#include <vector>

#include "apps/gups.hpp"
#include "graph/csr.hpp"
#include "runtime/cluster.hpp"

int main() {
  using namespace gravel;

  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint64_t kTable = 1 << 16;
  constexpr std::uint64_t kUpdatesPerNode = 1 << 15;

  rt::ClusterConfig config;
  config.nodes = kNodes;
  rt::Cluster cluster(config);

  graph::BlockPartition part(kTable, kNodes);
  auto table = cluster.alloc<std::uint64_t>(part.perNode());

  apps::GupsConfig cfg;
  cfg.table_size = kTable;
  cfg.updates_per_node = kUpdatesPerNode;

  // --- GPU kernel (Figure 4b lines 14-15) --------------------------------
  // gups(A, B, C): shmem_inc(A + B[GRID_ID], C[GRID_ID])
  auto kernel = [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    const std::uint64_t g = apps::gupsTarget(cfg, nodeId, wi.globalId());
    cluster.node(nodeId).shmemInc(wi, part.owner(g),
                                  table.at(part.localIndex(g)));
  };

  // --- host code (Figure 4b line 16) --------------------------------------
  cluster.launchAll(kUpdatesPerNode, 256, kernel);

  // Validation against the serial expectation.
  std::vector<std::uint64_t> expected(kTable, 0);
  for (std::uint32_t n = 0; n < kNodes; ++n)
    for (std::uint64_t u = 0; u < kUpdatesPerNode; ++u)
      ++expected[apps::gupsTarget(cfg, n, u)];
  for (std::uint64_t g = 0; g < kTable; ++g) {
    const std::uint64_t got = cluster.node(part.owner(g))
                                  .heap()
                                  .loadU64(table.at(part.localIndex(g)));
    if (got != expected[g]) {
      std::printf("MISMATCH at %llu\n", (unsigned long long)g);
      return 1;
    }
  }
  std::printf("gups_gravel: %llu updates verified\n",
              (unsigned long long)(kUpdatesPerNode * kNodes));
  return 0;
}
