// GUPS in the coalesced-APIs style (paper Figure 4c).
//
// Measured by bench_table2_loc. The tenacious-programmer version: each
// work-group counting-sorts its messages by destination in scratchpad, then
// invokes a synchronous per-destination send (sync_inc_list). More code
// than Gravel (the paper counts 318 vs 193 lines), heavy scratchpad use,
// and one API invocation per destination — but at least the per-WG lists
// are bigger than single messages.
#include <cstdio>
#include <vector>

#include "apps/gups.hpp"
#include "graph/csr.hpp"
#include "runtime/cluster.hpp"

namespace {

using namespace gravel;

constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kTable = 1 << 16;
constexpr std::uint64_t kUpdatesPerNode = 1 << 15;

/// sync_inc_list: ships a contiguous list of increment targets to one
/// destination. Called by the whole work-group, leader does the send.
void syncIncList(rt::Cluster& cluster, std::uint32_t self, std::uint32_t dest,
                 const std::uint64_t* addrs, std::uint32_t count) {
  std::vector<rt::NetMessage> batch;
  batch.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k)
    batch.push_back(rt::NetMessage::atomicInc(dest, addrs[k]));
  cluster.fabric().send(self, dest, std::move(batch));
}

/// The Figure 4c kernel: scratchpad sort (lines 18-25), then one
/// sync_inc_list per destination (lines 26-29).
void kernel(rt::Cluster& cluster, const apps::GupsConfig& cfg,
            const graph::BlockPartition& part,
            rt::SymAddr<std::uint64_t> table, std::uint32_t nodeId,
            simt::WorkItem& wi) {
  const std::uint64_t g = apps::gupsTarget(cfg, nodeId, wi.globalId());
  const std::uint32_t dest = part.owner(g);
  const std::uint64_t addr = table.at(part.localIndex(g));

  // Scratchpad allocations: the sorted pointer list (8 B per work-item;
  // with 256-lane groups this is the 4 kB the paper calls out in §3.3).
  auto* sorted = wi.scratchAlloc<std::uint64_t>(wi.wgSize());

  // Counting sort by destination, one digit per pass, using WG collectives.
  std::uint64_t base = 0;
  for (std::uint32_t d = 0; d < kNodes; ++d) {
    const bool mine = dest == d;
    const std::uint64_t myOff = wi.wgPrefixSum(mine ? 1 : 0, mine);
    const std::uint64_t cnt = wi.wgReduceSum(mine ? 1 : 0);
    if (mine) sorted[base + myOff] = addr;
    wi.wgBarrier();
    // One coalesced API call per destination — every lane participates
    // even though only the leader acts (the SIMT-utilization cost).
    if (cnt > 0 && wi.localId() == 0)
      syncIncList(cluster, nodeId, d, sorted + base, std::uint32_t(cnt));
    wi.wgBarrier();
    base += cnt;
  }
}

}  // namespace

int main() {
  rt::ClusterConfig config;
  config.nodes = kNodes;
  rt::Cluster cluster(config);

  graph::BlockPartition part(kTable, kNodes);
  auto table = cluster.alloc<std::uint64_t>(part.perNode());

  apps::GupsConfig cfg;
  cfg.table_size = kTable;
  cfg.updates_per_node = kUpdatesPerNode;

  cluster.launchAll(kUpdatesPerNode, 256,
                    [&](std::uint32_t nodeId, simt::WorkItem& wi) {
                      kernel(cluster, cfg, part, table, nodeId, wi);
                    });

  // Validation against the serial expectation.
  std::vector<std::uint64_t> expected(kTable, 0);
  for (std::uint32_t n = 0; n < kNodes; ++n)
    for (std::uint64_t u = 0; u < kUpdatesPerNode; ++u)
      ++expected[apps::gupsTarget(cfg, n, u)];
  for (std::uint64_t g = 0; g < kTable; ++g) {
    const std::uint64_t got = cluster.node(part.owner(g))
                                  .heap()
                                  .loadU64(table.at(part.localIndex(g)));
    if (got != expected[g]) {
      std::printf("MISMATCH at %llu\n", (unsigned long long)g);
      return 1;
    }
  }
  std::printf("gups_coalesced: %llu updates verified\n",
              (unsigned long long)(kUpdatesPerNode * kNodes));
  return 0;
}
