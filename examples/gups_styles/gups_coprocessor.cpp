// GUPS in the coprocessor style (paper Figure 4a).
//
// Measured by bench_table2_loc. Compare with gups_gravel.cpp: here the
// *program* owns everything Gravel hides — per-node queues and their
// overflow discipline, chunking the update stream so the worst case fits,
// per-destination work-group reservations on the GPU, the host-side
// send/receive/apply loop, and the exchange barrier at every kernel
// boundary. This is why the paper's Table 2 counts 342 lines for this
// style against 193 for Gravel.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/gups.hpp"
#include "graph/csr.hpp"
#include "runtime/cluster.hpp"

namespace {

using namespace gravel;

constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kTable = 1 << 16;
constexpr std::uint64_t kUpdatesPerNode = 1 << 15;
// Each per-node queue must survive the worst case: every work-item of a
// chunk targeting the same destination. So the chunk is the queue capacity.
constexpr std::uint64_t kQueueMsgs = 2048;  // 64 kB of 32 B messages

/// One destination's staging queue on one node.
struct DestQueue {
  std::vector<rt::NetMessage> slots;
  std::atomic<std::uint32_t> count{0};
};

/// The GPU kernel for one chunk (Figure 4a lines 1-5): for each destination
/// targeted by the work-group, reserve with one WG-level reservation and
/// deposit messages. The per-destination loop is exactly the branch/memory
/// divergence §3.1 warns about.
void chunkKernel(rt::Cluster& cluster, const apps::GupsConfig& cfg,
                 const graph::BlockPartition& part,
                 rt::SymAddr<std::uint64_t> table,
                 std::vector<std::vector<DestQueue>>& queues,
                 std::uint64_t chunkBase, std::uint32_t nodeId,
                 simt::WorkItem& wi) {
  const std::uint64_t g =
      apps::gupsTarget(cfg, nodeId, chunkBase + wi.globalId());
  const std::uint32_t dest = part.owner(g);
  const std::uint64_t addr = table.at(part.localIndex(g));
  for (std::uint32_t d = 0; d < kNodes; ++d) {
    const bool mine = dest == d;
    const std::uint64_t myOff = wi.wgPrefixSum(mine ? 1 : 0, mine);
    const std::uint64_t cnt = wi.wgReduceSum(mine ? 1 : 0);
    std::uint64_t base = 0;
    if (mine && myOff + 1 == cnt)  // leader reserves for the group
      base = queues[nodeId][d].count.fetch_add(std::uint32_t(cnt));
    base = wi.wgReduceSum(base);  // broadcast
    if (mine)
      queues[nodeId][d].slots[base + myOff] = rt::NetMessage::atomicInc(d, addr);
  }
}

/// Host-side exchange (Figure 4a lines 8-13): send every queue, then wait
/// until all increments have been applied remotely.
void exchange(rt::Cluster& cluster,
              std::vector<std::vector<DestQueue>>& queues) {
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    for (std::uint32_t d = 0; d < kNodes; ++d) {
      auto& q = queues[i][d];
      const std::uint32_t cnt = q.count.exchange(0);
      if (cnt == 0) continue;
      std::vector<rt::NetMessage> batch(q.slots.begin(),
                                        q.slots.begin() + cnt);
      cluster.fabric().send(i, d, std::move(batch));
    }
  }
  cluster.quiet();
}

}  // namespace

int main() {
  rt::ClusterConfig config;
  config.nodes = kNodes;
  rt::Cluster cluster(config);
  cluster.start();  // we drive devices and the fabric by hand

  graph::BlockPartition part(kTable, kNodes);
  auto table = cluster.alloc<std::uint64_t>(part.perNode());

  apps::GupsConfig cfg;
  cfg.table_size = kTable;
  cfg.updates_per_node = kUpdatesPerNode;

  // Allocate the per-node queues (worst-case sized).
  std::vector<std::vector<DestQueue>> queues(kNodes);
  for (auto& nodeQueues : queues) {
    nodeQueues = std::vector<DestQueue>(kNodes);
    for (auto& q : nodeQueues) q.slots.resize(kQueueMsgs);
  }

  // Chunked host loop (Figure 4a lines 6-7): one kernel + one exchange per
  // chunk; nothing overlaps.
  for (std::uint64_t chunk = 0; chunk < kUpdatesPerNode; chunk += kQueueMsgs) {
    const std::uint64_t grid = std::min(kQueueMsgs, kUpdatesPerNode - chunk);
    std::vector<std::thread> gpus;
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      gpus.emplace_back([&, i] {
        cluster.node(i).device().launch(
            {grid, 256}, [&, i](simt::WorkItem& wi) {
              chunkKernel(cluster, cfg, part, table, queues, chunk, i, wi);
            });
      });
    }
    for (auto& t : gpus) t.join();
    exchange(cluster, queues);
  }

  // Validation against the serial expectation.
  std::vector<std::uint64_t> expected(kTable, 0);
  for (std::uint32_t n = 0; n < kNodes; ++n)
    for (std::uint64_t u = 0; u < kUpdatesPerNode; ++u)
      ++expected[apps::gupsTarget(cfg, n, u)];
  for (std::uint64_t g = 0; g < kTable; ++g) {
    const std::uint64_t got = cluster.node(part.owner(g))
                                  .heap()
                                  .loadU64(table.at(part.localIndex(g)));
    if (got != expected[g]) {
      std::printf("MISMATCH at %llu\n", (unsigned long long)g);
      return 1;
    }
  }
  std::printf("gups_coprocessor: %llu updates verified\n",
              (unsigned long long)(kUpdatesPerNode * kNodes));
  return 0;
}
