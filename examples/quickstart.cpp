// Quickstart: a four-node Gravel cluster, a distributed counter array, and
// one kernel where every GPU work-item fires a fine-grain atomic increment
// at a random remote element — the smallest end-to-end Gravel program.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "runtime/cluster.hpp"

int main() {
  using namespace gravel;

  // A cluster with Table-3 defaults: 256-lane work-groups, a 1 MB GPU
  // producer/consumer queue, 64 kB per-node queues, one aggregator thread
  // and a network thread per node.
  rt::ClusterConfig config;
  config.nodes = 4;
  rt::Cluster cluster(config);

  // Symmetric allocation: the same offset is valid on every node.
  constexpr std::uint64_t kSlots = 1024;
  auto counters = cluster.alloc<std::uint64_t>(kSlots);

  // One kernel per node, 64k work-items each. shmem_inc is collective over
  // the work-group: the whole group's messages ride one queue reservation.
  cluster.launchAll(64 * 1024, 256,
                    [&](std::uint32_t nodeId, simt::WorkItem& wi) {
                      Xoshiro256 rng(wi.globalId() ^ (nodeId * 0x9e37ULL));
                      const auto dest = std::uint32_t(rng.below(4));
                      const auto slot = rng.below(kSlots);
                      cluster.node(nodeId).shmemInc(wi, dest,
                                                    counters.at(slot));
                    });
  // launchAll() ends with the quiet protocol: every message is resolved.

  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < cluster.nodes(); ++n)
    for (std::uint64_t s = 0; s < kSlots; ++s)
      total += cluster.node(n).heap().loadU64(counters.at(s));

  const auto stats = cluster.runStats();
  std::printf("increments delivered : %llu (expected %u)\n",
              (unsigned long long)total, 4 * 64 * 1024);
  std::printf("remote fraction      : %.1f%%\n",
              100.0 * stats.remoteFraction());
  std::printf("network messages     : %llu batches, avg %.0f bytes\n",
              (unsigned long long)stats.net_batches, stats.avg_batch_bytes);
  return total == 4ull * 64 * 1024 ? 0 : 1;
}
