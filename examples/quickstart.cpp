// Quickstart: a four-node Gravel cluster, a distributed counter array, and
// one kernel where every GPU work-item fires a fine-grain atomic increment
// at a random remote element — the smallest end-to-end Gravel program.
//
// Build & run:  ./examples/quickstart
//
// Set GRAVEL_TRACE=1 to record a sampled message-lifecycle trace and write
// gravel_trace.json (open it at https://ui.perfetto.dev), a
// gravel_metrics.json registry snapshot (feed it to tools/latency_report.py
// for the per-stage p50/p99 table), and a gravel_watchdog.json diagnosis
// dump next to the working directory. GRAVEL_TRACE_SAMPLE=N overrides the
// sampling interval (1 traces every message); GRAVEL_FLIGHTREC_DUMP=1
// additionally writes gravel_flightrec.json on exit.
//
// Live telemetry: GRAVEL_STATUS_PORT=9464 serves /metrics (Prometheus) and
// /status (JSON) while the run is up and implies GRAVEL_TIMESERIES=1 (the
// windowed collector, dumped as gravel_timeseries.json at exit);
// GRAVEL_HOLD_MS=N parks the quiescent cluster for N ms after the workload
// so the endpoints can be scraped.
//
// Profiling: GRAVEL_PROFILE=1 enables the continuous profiler — per-thread
// region self-time, lock-wait histograms and duty cycle — served at
// /profile when the status server is up and written as gravel_profile.json
// at exit (GRAVEL_PROFILE_DIR picks the directory; render with
// tools/profile_report.py, --collapse for flamegraph input).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string_view>
#include <thread>

#include "common/rng.hpp"
#include "runtime/cluster.hpp"

int main() {
  using namespace gravel;

  // A cluster with Table-3 defaults: 256-lane work-groups, a 1 MB GPU
  // producer/consumer queue, 64 kB per-node queues, one aggregator thread
  // and a network thread per node.
  rt::ClusterConfig config;
  config.nodes = 4;

  const char* traceEnv = std::getenv("GRAVEL_TRACE");
  const bool tracing = traceEnv != nullptr && *traceEnv != '\0' &&
                       std::string_view(traceEnv) != "0";
  if (tracing) {
    config.obs.enabled = true;
    config.obs.sample_interval = 16;  // 1 in 16 messages gets a flow
    config.obs.gauge_period = std::chrono::microseconds(200);
  }
  rt::Cluster cluster(config);

  // Symmetric allocation: the same offset is valid on every node.
  constexpr std::uint64_t kSlots = 1024;
  auto counters = cluster.alloc<std::uint64_t>(kSlots);

  // One kernel per node, 64k work-items each. shmem_inc is collective over
  // the work-group: the whole group's messages ride one queue reservation.
  cluster.launchAll(64 * 1024, 256,
                    [&](std::uint32_t nodeId, simt::WorkItem& wi) {
                      Xoshiro256 rng(wi.globalId() ^ (nodeId * 0x9e37ULL));
                      const auto dest = std::uint32_t(rng.below(4));
                      const auto slot = rng.below(kSlots);
                      cluster.node(nodeId).shmemInc(wi, dest,
                                                    counters.at(slot));
                    });
  // launchAll() ends with the quiet protocol: every message is resolved.

  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < cluster.nodes(); ++n)
    for (std::uint64_t s = 0; s < kSlots; ++s)
      total += cluster.node(n).heap().loadU64(counters.at(s));

  const auto stats = cluster.runStats();
  std::printf("increments delivered : %llu (expected %u)\n",
              (unsigned long long)total, 4 * 64 * 1024);
  std::printf("remote fraction      : %.1f%%\n",
              100.0 * stats.remoteFraction());
  std::printf("network messages     : %llu batches, avg %.0f bytes\n",
              (unsigned long long)stats.net_batches, stats.avg_batch_bytes);

  if (tracing) {
    // Everything is quiescent after launchAll(): drain the trace buffers
    // into a Perfetto-loadable file and the registry into a JSON snapshot.
    std::ofstream trace("gravel_trace.json");
    cluster.writeTrace(trace);
    std::ofstream metrics("gravel_metrics.json");
    cluster.writeMetricsJson(metrics);
    std::ofstream watchdog("gravel_watchdog.json");
    cluster.writeWatchdog(watchdog);
    std::printf("trace written        : gravel_trace.json "
                "(open in https://ui.perfetto.dev)\n");
    std::printf("metrics written      : gravel_metrics.json "
                "(tools/latency_report.py names the bottleneck stage)\n");
    std::printf("watchdog written     : gravel_watchdog.json\n");
  }

  // GRAVEL_HOLD_MS=N keeps the (quiescent) cluster alive for N ms after
  // the workload so a live scrape can reach the status server enabled by
  // GRAVEL_STATUS_PORT — CI curls /metrics and /status inside this window;
  // a human points tools/gravel_top.py at it (README "Watching a live
  // run").
  if (const char* hold = std::getenv("GRAVEL_HOLD_MS")) {
    const long ms = std::atol(hold);
    if (cluster.statusServer() != nullptr &&
        cluster.statusServer()->running())
      std::printf("status server        : http://127.0.0.1:%u/status "
                  "(holding %ld ms)\n",
                  unsigned(cluster.statusServer()->port()), ms);
    std::fflush(stdout);
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  return total == 4ull * 64 * 1024 ? 0 : 1;
}
