// Memory-order mutation self-test: weaken one acquire/release site to
// relaxed and assert the model checker reports a violation with a
// replayable schedule trace.
//
// This is the check on the checker. A model checker that silently explores
// nothing (or whose reads-from branching regressed) would still pass
// test_verify — it would just never find anything. Here every row is a
// seeded bug with a known-detectable interleaving, so a MISSED row means
// the verification layer lost power, and a "site not discovered" failure
// means the file:line matrix went stale after an edit to the code under
// test (re-pin the line number).
//
// The matrix was built empirically: every acquire/release site in the
// queue and reliability headers was weakened one at a time, and the rows
// below are the ones the bounded scenarios catch. Sites absent from the
// matrix are redundant-synchronization points (e.g. the second of two
// paired spin-loop acquires) whose weakening is unobservable in these
// bounded configurations.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "verify_scenarios.hpp"

namespace gravel::vtests {
namespace {

using verify::ExploreOptions;
using verify::ExploreResult;
using verify::Site;

using ScenarioFn = ExploreResult (*)(const ExploreOptions&);

struct MutationRow {
  const char* scenarioName;
  ScenarioFn scenario;
  int preemptionBound;
  const char* file;  // basename, as std::source_location reports it
  unsigned line;
  const char* order;  // expected original order at the site
};

// clang-format off
const MutationRow kMatrix[] = {
    // SPSC queue: both index publications and both index acquisitions, plus
    // the stop flag. Weakening any one lets the consumer read a cell before
    // the payload write is visible (or recycle one the producer still owns).
    {"spscRoundTrip", &spscRoundTrip, 2, "spsc_queue.hpp",  49, "acquire"},
    {"spscRoundTrip", &spscRoundTrip, 2, "spsc_queue.hpp",  57, "release"},
    {"spscRoundTrip", &spscRoundTrip, 2, "spsc_queue.hpp",  64, "acquire"},
    {"spscRoundTrip", &spscRoundTrip, 2, "spsc_queue.hpp",  70, "release"},
    {"spscRoundTrip", &spscRoundTrip, 2, "spsc_queue.hpp",  77, "acquire"},
    // MPMC queue: slot full-flag publication/consumption and the round
    // counter that hands a drained slot back to producers on wraparound.
    {"mpmcRoundTrip", &mpmcRoundTrip, 1, "mpmc_queue.hpp",  51, "acquire"},
    {"mpmcRoundTrip", &mpmcRoundTrip, 1, "mpmc_queue.hpp",  59, "release"},
    {"mpmcRoundTrip", &mpmcRoundTrip, 1, "mpmc_queue.hpp",  87, "acquire"},
    {"mpmcRoundTrip", &mpmcRoundTrip, 1, "mpmc_queue.hpp",  96, "release"},
    // Gravel queue: producer round/full spin, publish, consumer full spin,
    // slot release on wraparound, and the stopped flag read in acquireRead.
    {"gravelRoundTrip", &gravelRoundTrip, 1, "gravel_queue.hpp", 108, "acquire"},
    {"gravelRoundTrip", &gravelRoundTrip, 1, "gravel_queue.hpp", 146, "release"},
    {"gravelRoundTrip", &gravelRoundTrip, 1, "gravel_queue.hpp", 185, "acquire"},
    {"gravelRoundTrip", &gravelRoundTrip, 1, "gravel_queue.hpp", 201, "acquire"},
    {"gravelRoundTrip", &gravelRoundTrip, 1, "gravel_queue.hpp", 257, "release"},
    // Reliable layer: the ACK path's outstanding-counter decrement and the
    // quiescent() read that consumers use as a "all settled" barrier.
    {"reliableQuiescentVisibility", &reliableQuiescentVisibility, 1,
     "reliable.hpp", 650, "release"},
    {"reliableQuiescentVisibility", &reliableQuiescentVisibility, 1,
     "reliable.hpp", 314, "acquire"},
};
// clang-format on

ExploreResult runMutated(const MutationRow& row) {
  ExploreOptions o;
  o.name = std::string("mut_") + row.file + "_" + std::to_string(row.line);
  o.strategy = verify::Strategy::kDfs;
  o.preemptionBound = row.preemptionBound;
  // Caught mutants fail within a few hundred schedules; the cap only bounds
  // the cost of reporting a regression (a MISSED mutant explores until it).
  o.maxSchedules = 30000;
  o.maxStepsPerRun = 20000;
  o.mutation = verify::Mutation{row.file, row.line};
  return row.scenario(o);
}

bool siteDiscovered(const ExploreResult& r, const MutationRow& row) {
  for (const Site& s : r.sites)
    if (s.file == row.file && s.line == row.line && s.order == row.order)
      return true;
  return false;
}

std::string rowLabel(const MutationRow& row) {
  return std::string(row.scenarioName) + " / " + row.file + ":" +
         std::to_string(row.line) + " " + row.order + "->relaxed";
}

TEST(VerifyMutation, EverySeededWeakeningIsCaught) {
  int caught = 0;
  for (const MutationRow& row : kMatrix) {
    SCOPED_TRACE(rowLabel(row));
    const ExploreResult r = runMutated(row);
    // Stale-line guard first: if the site was never executed (line drifted
    // after an edit), say so instead of reporting a mysterious MISSED.
    ASSERT_TRUE(siteDiscovered(r, row))
        << "mutation target not among executed sites — the " << row.file
        << " line numbers in kMatrix are stale";
    EXPECT_FALSE(r.ok) << "weakening was NOT detected (checker lost power)";
    if (!r.ok) {
      ++caught;
      // A violation must come with a replayable decision stream.
      EXPECT_FALSE(r.choices.empty());
      EXPECT_FALSE(r.violation.empty());
      EXPECT_FALSE(r.trace.empty());
    }
  }
  // ISSUE acceptance floor: at least six distinct single-site weakenings
  // across the queue and reliability layers, each with a replayable trace.
  EXPECT_GE(caught, 6);
}

// The unmutated scenarios must pass the same bounded exploration — a
// sanity guard that the matrix's violations really come from the mutation.
TEST(VerifyMutation, UnmutatedBaselinesPass) {
  const struct {
    const char* name;
    ScenarioFn scenario;
    int bound;
  } baselines[] = {
      {"spscRoundTrip", &spscRoundTrip, 2},
      {"mpmcRoundTrip", &mpmcRoundTrip, 1},
      {"gravelRoundTrip", &gravelRoundTrip, 1},
      {"reliableQuiescentVisibility", &reliableQuiescentVisibility, 1},
  };
  for (const auto& b : baselines) {
    SCOPED_TRACE(b.name);
    ExploreOptions o;
    o.name = std::string("mutbase_") + b.name;
    o.preemptionBound = b.bound;
    o.maxSchedules = 300000;
    o.maxStepsPerRun = 20000;
    const ExploreResult r = b.scenario(o);
    EXPECT_TRUE(r.ok) << r.report(b.name);
    EXPECT_TRUE(r.exhausted);
  }
}

// Violations found under GRAVEL_VERIFY_TRACE_DIR are dumped as replayable
// trace files — the CI artifact path for failing schedules.
TEST(VerifyMutation, FailingScheduleIsDumpedToTraceDir) {
  const MutationRow& row = kMatrix[0];
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(::setenv("GRAVEL_VERIFY_TRACE_DIR", dir.c_str(), 1), 0);
  const ExploreResult r = runMutated(row);
  ::unsetenv("GRAVEL_VERIFY_TRACE_DIR");
  ASSERT_FALSE(r.ok);
  const std::string path = dir + (dir.back() == '/' ? "" : "/") + "mut_" +
                           row.file + "_" + std::to_string(row.line) +
                           ".trace.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "expected trace file at " << path;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("mutation: "), std::string::npos);
  EXPECT_NE(contents.find("GRAVEL_VERIFY_REPLAY="), std::string::npos);
  std::remove(path.c_str());
}

// Replaying a failing run's recorded choice stream reproduces the same
// violation deterministically — the debugging loop the trace files promise.
TEST(VerifyMutation, RecordedChoicesReplayTheViolation) {
  const MutationRow& row = kMatrix[0];
  const ExploreResult first = runMutated(row);
  ASSERT_FALSE(first.ok);
  ASSERT_FALSE(first.choices.empty());

  std::string joined;
  for (std::size_t i = 0; i < first.choices.size(); ++i)
    joined += (i ? "," : "") + std::to_string(first.choices[i]);
  const std::string name =
      std::string("mut_") + row.file + "_" + std::to_string(row.line);
  ASSERT_EQ(::setenv("GRAVEL_VERIFY_REPLAY_TEST", name.c_str(), 1), 0);
  ASSERT_EQ(::setenv("GRAVEL_VERIFY_REPLAY", joined.c_str(), 1), 0);
  const ExploreResult replay = runMutated(row);
  ::unsetenv("GRAVEL_VERIFY_REPLAY_TEST");
  ::unsetenv("GRAVEL_VERIFY_REPLAY");
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.schedules, 1) << "replay mode should run exactly one "
                                    "schedule";
  EXPECT_EQ(replay.violation, first.violation);
}

}  // namespace
}  // namespace gravel::vtests
