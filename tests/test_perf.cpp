// Tests for the timing substrate: the event engine, the single-server
// resource, and the style-parameterized cluster simulation — including the
// qualitative properties the paper's figures rest on (aggregation beats
// per-message sends; the coprocessor model loses overlap; bigger per-node
// queues help until the per-message overhead is amortized).
#include <gtest/gtest.h>

#include <vector>

#include "apps/gups.hpp"
#include "perf/des.hpp"
#include "perf/hierarchy.hpp"
#include "perf/netsim.hpp"
#include "perf/pipeline.hpp"

namespace gravel::perf {
namespace {

TEST(EventSim, OrdersEventsByTimeThenFifo) {
  EventSim sim;
  std::vector<int> trace;
  sim.at(2.0, [&] { trace.push_back(3); });
  sim.at(1.0, [&] { trace.push_back(1); });
  sim.at(1.0, [&] { trace.push_back(2); });  // same time: FIFO
  EXPECT_DOUBLE_EQ(sim.run(), 2.0);
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(EventSim, NestedSchedulingAdvancesClock) {
  EventSim sim;
  double sawAt = -1;
  sim.at(1.0, [&] {
    sim.after(0.5, [&] { sawAt = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sawAt, 1.5);
}

TEST(EventSim, RejectsPastScheduling) {
  EventSim sim;
  sim.at(1.0, [&] { EXPECT_THROW(sim.at(0.5, [] {}), Error); });
  sim.run();
}

TEST(Server, SerializesJobsFifo) {
  EventSim sim;
  Server server(sim);
  std::vector<double> completions;
  sim.at(0.0, [&] {
    server.submit(1.0, [&] { completions.push_back(sim.now()); });
    server.submit(2.0, [&] { completions.push_back(sim.now()); });
  });
  sim.at(0.5, [&] {
    server.submit(1.0, [&] { completions.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 3.0);
  EXPECT_DOUBLE_EQ(completions[2], 4.0);
  EXPECT_DOUBLE_EQ(server.busyTime(), 4.0);
}

std::vector<NodeDemand> uniformDemand(std::uint32_t nodes, double msgsPerNode,
                                      double lanesPerNode) {
  std::vector<NodeDemand> d(nodes);
  for (auto& nd : d) {
    nd.msgs_to.assign(nodes, msgsPerNode / nodes);
    nd.lanes = lanesPerNode;
    nd.collective_arrivals = lanesPerNode * 4;
  }
  return d;
}

SimConfig baseConfig(Style style) {
  SimConfig cfg;
  cfg.style = style;
  cfg.wg_size = 256;
  return cfg;
}

TEST(NetSim, GravelBeatsMsgPerLaneOnSmallMessages) {
  const auto demand = uniformDemand(8, 1e6, 1e6);
  const double gravel = simulateRound(baseConfig(Style::kGravel), demand);
  const double perLane = simulateRound(baseConfig(Style::kMsgPerLane), demand);
  // The paper's Figure 15 shows ~100x for GUPS-like all-remote traffic.
  EXPECT_GT(perLane / gravel, 20.0);
}

TEST(NetSim, CoprocessorLosesToOverlap) {
  const auto demand = uniformDemand(8, 1e6, 1e6);
  const double gravel = simulateRound(baseConfig(Style::kGravel), demand);
  const double cop = simulateRound(baseConfig(Style::kCoprocessor), demand);
  EXPECT_GT(cop, gravel);
}

TEST(NetSim, CoprocessorImprovesWithExtraBuffering) {
  const auto demand = uniformDemand(8, 1e6, 1e6);
  auto small = baseConfig(Style::kCoprocessor);
  small.pernode_queue_bytes = 64.0 * 1024;
  auto big = small;
  big.pernode_queue_bytes = 1024.0 * 1024;  // "coprocessor + extra buffering"
  EXPECT_GT(simulateRound(small, demand), simulateRound(big, demand));
}

TEST(NetSim, CoalescedAggregationRecoversGravelPerformance) {
  const auto demand = uniformDemand(8, 1e6, 1e6);
  const double gravel = simulateRound(baseConfig(Style::kGravel), demand);
  const double coal = simulateRound(baseConfig(Style::kCoalesced), demand);
  const double coalAgg =
      simulateRound(baseConfig(Style::kCoalescedAgg), demand);
  // Figure 15: plain coalesced APIs lose (small per-WG lists); adding
  // GPU-wide aggregation lands close to Gravel.
  EXPECT_GT(coal, coalAgg);
  EXPECT_LT(coalAgg / gravel, 2.0);
  EXPECT_GT(coal / gravel, 1.5);
}

TEST(NetSim, QueueSizeSweepHasKnee) {
  // Figure 14's shape: throughput rises with the per-node queue size and
  // saturates around tens of kB.
  const auto demand = uniformDemand(8, 1e6, 1e6);
  auto at = [&](double queueBytes) {
    auto cfg = baseConfig(Style::kGravel);
    cfg.pernode_queue_bytes = queueBytes;
    return simulateRound(cfg, demand);
  };
  const double t64 = at(64), t4k = at(4096), t32k = at(32768),
               t256k = at(262144);
  EXPECT_GT(t64, 3.0 * t32k);   // tiny queues are much slower
  EXPECT_GT(t4k, t32k * 0.99);  // monotone improvement
  EXPECT_NEAR(t256k / t32k, 1.0, 0.35);  // diminishing beyond the knee
}

TEST(NetSim, ScalesAcrossNodes) {
  // Fixed total work split across more nodes must shrink the makespan, and
  // 8-node speedup for all-atomic traffic should approach the node count
  // (paper §7.1: GUPS-class apps approach the ideal speedup).
  const double totalMsgs = 8e6, totalLanes = 8e6;
  auto timeAt = [&](std::uint32_t n) {
    const auto demand = uniformDemand(n, totalMsgs / n, totalLanes / n);
    return simulateApp(baseConfig(Style::kGravel), demand, 1);
  };
  const double t1 = timeAt(1), t2 = timeAt(2), t4 = timeAt(4), t8 = timeAt(8);
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t4);
  EXPECT_GT(t4, t8);
  EXPECT_GT(t1 / t8, 4.0);
  EXPECT_LT(t1 / t8, 9.0);
}

TEST(NetSim, LocalTrafficStaysOffTheWire) {
  // All-local demand: time must not include wire serialization — a 1-node
  // "cluster" resolves everything through the loopback.
  std::vector<NodeDemand> demand(1);
  demand[0].msgs_to = {1e5};
  demand[0].lanes = 1e5;
  demand[0].collective_arrivals = 4e5;
  const double t = simulateRound(baseConfig(Style::kGravel), demand);
  // Bounded by GPU production + resolution, far below per-batch overheads
  // times message count.
  EXPECT_LT(t, 0.05);
  EXPECT_GT(t, 0.0);
}

TEST(NetSim, RoundsAddLaunchOverhead) {
  const auto demand = uniformDemand(4, 1e5, 1e5);
  const auto cfg = baseConfig(Style::kGravel);
  const double one = simulateApp(cfg, demand, 1);
  const double ten = simulateApp(cfg, demand, 10);
  // Same totals, more rounds: extra launch/quiet overhead dominates the
  // difference.
  EXPECT_GT(ten, one);
}

TEST(NetSim, DemandShapeValidated) {
  std::vector<NodeDemand> bad(2);
  bad[0].msgs_to = {1.0};  // wrong width
  bad[1].msgs_to = {1.0, 1.0};
  EXPECT_THROW(simulateRound(baseConfig(Style::kGravel), bad), Error);
}

TEST(CpuBaseline, SlowerThanGravelPerNode) {
  // Figure 13: on one node, the GPU's parallelism beats the CPU path by a
  // wide margin for data-parallel update streams.
  MachineParams p;
  const double cpu1 = cpuBaselineTime(p, 1, 1e6, 0.0, 32, 65536, 1);
  std::vector<NodeDemand> demand(1);
  demand[0].msgs_to = {1e6};
  demand[0].lanes = 1e6;
  demand[0].collective_arrivals = 4e6;
  const double gravel1 = simulateApp(baseConfig(Style::kGravel), demand, 1);
  EXPECT_GT(cpu1 / gravel1, 2.0);
}

TEST(CpuBaseline, ScalesWithNodes) {
  MachineParams p;
  const double one = cpuBaselineTime(p, 1, 8e6, 0.0, 32, 65536, 1);
  const double eight = cpuBaselineTime(p, 8, 1e6, 0.875, 32, 65536, 1);
  EXPECT_GT(one / eight, 3.0);
  EXPECT_LT(one / eight, 9.0);
}

TEST(NetSim, GravelHasTheCheapestProduction) {
  // The kernel traversal is style-independent; every other style adds more
  // GPU-side messaging machinery than Gravel's single group reservation, so
  // for any demand, Gravel's round must not exceed the coalesced variants'
  // (they share the aggregated network path).
  for (std::uint32_t nodes : {2u, 4u, 8u}) {
    const auto demand = uniformDemand(nodes, 5e5, 5e5);
    const double gravel = simulateRound(baseConfig(Style::kGravel), demand);
    const double coalAgg =
        simulateRound(baseConfig(Style::kCoalescedAgg), demand);
    EXPECT_LE(gravel, coalAgg * 1.02) << nodes << " nodes";
  }
}

TEST(NetSim, TimeoutIsATradeoffNotACliff) {
  // Sparse traffic (buffers never fill): an over-aggressive timeout wastes
  // per-batch overhead, a lazy one serializes resolution into the tail —
  // the reason the paper settles on 125 us. Neither extreme may be
  // catastrophic relative to the other (the sweep cap bounds the tail).
  auto demand = uniformDemand(4, 2e4, 2e5);
  auto tight = baseConfig(Style::kGravel);
  tight.timeout_us = 5;
  auto loose = baseConfig(Style::kGravel);
  loose.timeout_us = 1e9;
  const double tTight = simulateRound(tight, demand);
  const double tLoose = simulateRound(loose, demand);
  EXPECT_LT(tTight / tLoose, 2.0);
  EXPECT_LT(tLoose / tTight, 2.0);
}

TEST(Hierarchy, FlatMatchesTwoLevelInsideOneGroup) {
  HierarchyConfig flat;
  flat.nodes = 16;
  flat.group = 1;
  flat.msgs_per_node = 3e4;
  HierarchyConfig two = flat;
  two.group = 16;
  // With one group, stage-1 traffic vanishes and both organizations do one
  // 16-way aggregation; times should be within a hop of each other.
  EXPECT_NEAR(hierarchicalRoundSeconds(two) / hierarchicalRoundSeconds(flat),
              1.0, 0.25);
}

TEST(Hierarchy, TwoLevelWinsAtScale) {
  // The §10 claim: once per-destination traffic stops filling 64 kB queues,
  // two 16-node aggregation levels beat flat per-destination queues.
  HierarchyConfig flat;
  flat.nodes = 512;
  flat.group = 1;
  flat.msgs_per_node = 3e4;
  HierarchyConfig two = flat;
  two.group = 16;
  EXPECT_LT(hierarchicalRoundSeconds(two), hierarchicalRoundSeconds(flat));
  // ...while flat still wins (or ties) at the paper's scale.
  flat.nodes = two.nodes = 32;
  EXPECT_LE(hierarchicalRoundSeconds(flat), hierarchicalRoundSeconds(two));
}

TEST(Hierarchy, ThroughputMonotoneInQueueSize) {
  HierarchyConfig cfg;
  cfg.nodes = 256;
  cfg.group = 1;
  cfg.msgs_per_node = 3e4;
  cfg.pernode_queue_bytes = 4096;
  const double small = hierarchicalRoundSeconds(cfg);
  cfg.pernode_queue_bytes = 65536;
  const double big = hierarchicalRoundSeconds(cfg);
  EXPECT_GE(small, big);
}

TEST(Pipeline, ExtractsDemandFromFunctionalRun) {
  rt::ClusterConfig cc;
  cc.nodes = 2;
  cc.heap_bytes = 1 << 20;
  cc.gpu_queue_bytes = 1 << 14;
  cc.device.wavefront_width = 8;
  cc.device.max_wg_size = 32;
  rt::Cluster cluster(cc);
  apps::GupsConfig gc;
  gc.table_size = 1 << 10;
  gc.updates_per_node = 1 << 10;
  const auto report = apps::runGups(cluster, gc);
  ASSERT_TRUE(report.validated);

  const auto demand = demandFromCluster(cluster);
  ASSERT_EQ(demand.size(), 2u);
  double msgs = 0;
  for (const auto& d : demand)
    for (double m : d.msgs_to) msgs += m;
  EXPECT_EQ(msgs, double(report.stats.opsTotal()));  // all-atomic workload
  EXPECT_GT(demand[0].lanes, 0.0);
  EXPECT_GT(demand[0].collective_arrivals, 0.0);

  const double t = timeUnderStyle(Style::kGravel, cluster, report);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1.0);
}

}  // namespace
}  // namespace gravel::perf
