// Large-N honesty tests (DESIGN.md §14): the config admits nodes <= 65536,
// so the runtime must actually run at four-digit node counts on one host.
// These pin the three mechanisms that make that true — demand-paged
// per-destination buffers, the sharded aggregation tree, and the timer-wheel
// flush timeout — plus the cooperative runtime pool that replaces 2N
// dedicated threads. Labelled `scale`; CI's scale-smoke job runs the
// 1024-node cases (`ctest -L scale -E 4096`).
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/gups.hpp"
#include "apps/pagerank.hpp"
#include "graph/generators.hpp"
#include "runtime/cluster.hpp"
#include "runtime/slot_router.hpp"

namespace gravel::rt {
namespace {

/// A cluster sized to run thousands of simulated nodes in one process:
/// small heaps/queues, and the cooperative pool instead of 2N threads.
ClusterConfig scaleCluster(std::uint32_t nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.heap_bytes = 16u << 10;
  c.gpu_queue_bytes = 8u << 10;
  c.pernode_queue_bytes = 512;
  c.runtime_threads = 2;
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  return c;
}

/// Shared invariants every scale run must satisfy.
void checkScaleInvariants(const ClusterRunStats& s) {
  // Conservation: everything sent resolved at its destination heap.
  EXPECT_EQ(s.net_resolved, s.net_messages);
  // Slot-batched sharded routing: at most one lock per touched destination
  // per slot (shard combining can only reduce acquisitions further).
  EXPECT_LE(s.agg_lock_acquisitions, s.agg_dests_touched);
  // Timer-wheel timeout maintenance is O(expired), not O(N x ticks): wheel
  // entries exist only for buffer-open events, and each is examined a small
  // bounded number of times (arm, possibly a few early-cursor passes,
  // expiry). The old full scan did nodes x cadence-ticks work, which at
  // 4096 nodes dwarfs any constant here — the slack absorbs re-arms of
  // long-lived buffers without ever re-admitting a full scan.
  EXPECT_LE(s.agg_timeout_scanned, 8 * s.net_messages + 4 * s.nodes);
}

TEST(Scale, GupsValidatesAt1024Nodes) {
  Cluster cluster(scaleCluster(1024));
  apps::GupsConfig cfg;
  cfg.table_size = 1024 * 16;
  cfg.updates_per_node = 32;
  const auto report = apps::runGups(cluster, cfg);
  EXPECT_TRUE(report.validated);
  EXPECT_EQ(report.stats.opsTotal(), 1024u * 32u);
  checkScaleInvariants(report.stats);
  // Uniform destinations: lazily-allocated buffers track traffic. The hard
  // guarantee is the N^2 bound was never approached; with 32 updates per
  // node each aggregator can open at most 32 distinct destination buffers.
  EXPECT_LE(report.stats.agg_lazy_buffers, 1024u * 32u);
  EXPECT_LT(report.stats.agg_lazy_buffers, 1024u * 1024u / 8u);
}

TEST(Scale, GupsValidatesAt4096Nodes) {
  Cluster cluster(scaleCluster(4096));
  apps::GupsConfig cfg;
  cfg.table_size = 4096 * 8;
  cfg.updates_per_node = 8;
  const auto report = apps::runGups(cluster, cfg);
  EXPECT_TRUE(report.validated);
  EXPECT_EQ(report.stats.opsTotal(), 4096u * 8u);
  checkScaleInvariants(report.stats);
  EXPECT_LE(report.stats.agg_lazy_buffers, 4096u * 8u);
}

TEST(Scale, PageRankValidatesAt1024Nodes) {
  Cluster cluster(scaleCluster(1024));
  graph::DistGraph dg(graph::bubblesLike(4096, 2), 1024);
  apps::PageRankConfig cfg;
  cfg.iterations = 2;
  const auto result = apps::runPageRank(cluster, dg, cfg);
  EXPECT_TRUE(result.report.validated);
  checkScaleInvariants(result.report.stats);
}

TEST(Scale, PageRankValidatesAt4096Nodes) {
  Cluster cluster(scaleCluster(4096));
  graph::DistGraph dg(graph::bubblesLike(8192, 2), 4096);
  apps::PageRankConfig cfg;
  cfg.iterations = 2;
  const auto result = apps::runPageRank(cluster, dg, cfg);
  EXPECT_TRUE(result.report.validated);
  checkScaleInvariants(result.report.stats);
}

// The tentpole claim in one number: a node that talks to one neighbour pays
// for one buffer, no matter how many nodes exist. Run the same ring
// workload at two cluster sizes and require the per-node resident footprint
// to stay flat (the eager design allocated nodes x 3 x 64KiB per node up
// front — ~190 MiB each at 1024 nodes — and would fail this by orders of
// magnitude).
TEST(Scale, ColdDestinationsCostNothing) {
  auto ringRun = [](std::uint32_t nodes) {
    Cluster cluster(scaleCluster(nodes));
    auto cell = cluster.alloc<std::uint64_t>(1);
    cluster.resetStats();
    cluster.launchAll(8, 8, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
      cluster.node(nodeId).shmemInc(wi, (nodeId + 1) % nodes, cell.at(0));
    });
    return cluster.runStats();
  };
  const ClusterRunStats small = ringRun(256);
  const ClusterRunStats big = ringRun(1024);
  checkScaleInvariants(small);
  checkScaleInvariants(big);
  // Exactly one destination per node was ever warm.
  EXPECT_EQ(small.agg_lazy_buffers, 256u);
  EXPECT_EQ(big.agg_lazy_buffers, 1024u);
  // Per-node resident bytes (buffers + wheel) must not grow with N. Allow
  // 2x slack for allocator rounding; the eager design differs by ~1000x.
  const double perNodeSmall = double(small.agg_resident_bytes) / 256.0;
  const double perNodeBig = double(big.agg_resident_bytes) / 1024.0;
  EXPECT_LE(perNodeBig, 2.0 * perNodeSmall + 256.0);
}

// Satellite regression (ISSUE 9): the routing scratch each pump/run thread
// owns must be O(lanes), never O(nodes) — the old design kept one run
// vector per node (~128 MiB per routing thread at 65536 nodes).
TEST(Scale, StagingScratchIndependentOfClusterSize) {
  const std::uint32_t lanes = 64;
  const SlotRouter::Staging tiny(2, lanes);
  const SlotRouter::Staging huge(65536, lanes);
  EXPECT_EQ(tiny.residentBytes(), huge.residentBytes());
  // And it is actually small: well under a megabyte at wavefront width 64.
  EXPECT_LT(huge.residentBytes(), std::size_t{1} << 20);
}

// Satellite: the eager-footprint gate. A config that would have OOM-ed
// mid-construction is rejected up front, naming the knobs.
TEST(Scale, FootprintCapRejectsEagerConfigs) {
  {
    ClusterConfig c;
    c.nodes = 1024;
    c.heap_bytes = 64u << 20;  // 64 GiB of heaps alone
    c.gpu_queue_bytes = 1u << 20;
    c.max_eager_bytes = std::size_t{1} << 30;  // 1 GiB cap
    try {
      c.validate();
      FAIL() << "expected validate() to reject the footprint";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("max_eager_bytes"), std::string::npos) << msg;
      EXPECT_NE(msg.find("heap_bytes"), std::string::npos) << msg;
    }
  }
  {  // reliability's dense per-link state counts against the cap too
    ClusterConfig c;
    c.nodes = 16384;
    c.heap_bytes = 4u << 10;
    c.gpu_queue_bytes = 4u << 10;
    c.reliability.enabled = true;
    c.max_eager_bytes = std::size_t{4} << 30;
    EXPECT_THROW(c.validate(), Error);
  }
  {  // the same node count WITHOUT reliability passes: buffers are lazy now
    ClusterConfig c;
    c.nodes = 16384;
    c.heap_bytes = 4u << 10;
    c.gpu_queue_bytes = 4u << 10;
    c.max_eager_bytes = std::size_t{4} << 30;
    EXPECT_NO_THROW(c.validate());
  }
  {  // 0 disables the gate entirely
    ClusterConfig c;
    c.nodes = 1024;
    c.heap_bytes = 64u << 20;
    c.max_eager_bytes = 0;
    EXPECT_NO_THROW(c.validate());
  }
}

// The pool must also coexist with the validate() guard rails.
TEST(Scale, PoolRejectsReliabilityCombination) {
  ClusterConfig c;
  c.nodes = 8;
  c.runtime_threads = 2;
  c.reliability.enabled = true;
  EXPECT_THROW(c.validate(), Error);
}

}  // namespace
}  // namespace gravel::rt
