// Tests for the Grappa/UPC-like CPU comparator runtime and its Figure 13
// workloads.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "baselines/cpu_apps.hpp"
#include "graph/generators.hpp"

namespace gravel::baselines {
namespace {

CpuClusterConfig smallConfig(std::uint32_t nodes) {
  CpuClusterConfig c;
  c.nodes = nodes;
  c.threads_per_node = 2;
  c.heap_words = 1 << 16;
  c.buffer_msgs = 32;
  return c;
}

TEST(CpuCluster, DelegateOpsApplyAtHome) {
  CpuCluster cluster(smallConfig(2));
  cluster.parallelFor(100, [](std::uint32_t node, CpuCluster::WorkerCtx& ctx,
                              std::uint64_t i) {
    ctx.delegateInc(1 - node, i % 16);
    ctx.delegatePut(node, 100 + i % 4, 7);
  });
  std::uint64_t total = 0;
  for (std::uint64_t a = 0; a < 16; ++a)
    total += cluster.loadWord(0, a) + cluster.loadWord(1, a);
  EXPECT_EQ(total, 200u);
  EXPECT_EQ(cluster.loadWord(0, 101), 7u);
  const auto s = cluster.stats();
  EXPECT_EQ(s.ops_local + s.ops_remote, 400u);
  EXPECT_EQ(s.ops_remote, 200u);
  EXPECT_GT(s.batches, 0u);
}

TEST(CpuCluster, AddDoubleAccumulates) {
  CpuCluster cluster(smallConfig(2));
  cluster.storeWord(1, 5, apps::doubleBits(1.5));
  cluster.parallelFor(64, [](std::uint32_t node, CpuCluster::WorkerCtx& ctx,
                             std::uint64_t) {
    if (node == 0) ctx.delegateAddDouble(1, 5, 0.25);
  });
  EXPECT_DOUBLE_EQ(apps::bitsDouble(cluster.loadWord(1, 5)), 1.5 + 64 * 0.25);
}

TEST(CpuCluster, BuffersFlushOnThreshold) {
  CpuCluster cluster(smallConfig(2));
  // 33 remote ops with 32-message buffers: at least one full flush plus a
  // tail flush.
  cluster.parallelFor(33, [](std::uint32_t node, CpuCluster::WorkerCtx& ctx,
                             std::uint64_t) {
    if (node == 0) ctx.delegateInc(1, 0);
  });
  EXPECT_EQ(cluster.loadWord(1, 0), 33u);
  EXPECT_GE(cluster.stats().batches, 2u);
}

TEST(CpuGups, Validates) {
  CpuCluster cluster(smallConfig(4));
  apps::GupsConfig cfg;
  cfg.table_size = 1 << 10;
  cfg.updates_per_node = 1 << 11;
  const auto report = runCpuGups(cluster, cfg);
  EXPECT_TRUE(report.validated);
  EXPECT_NEAR(report.stats.remoteFraction(), 0.75, 0.05);
}

TEST(CpuPageRank, MatchesSerialWithinTolerance) {
  CpuCluster cluster(smallConfig(3));
  graph::DistGraph dg(graph::bubblesLike(300, 3), 3);
  apps::PageRankConfig cfg;
  cfg.iterations = 4;
  const auto report = runCpuPageRank(cluster, dg, cfg);
  EXPECT_TRUE(report.validated);
  EXPECT_EQ(report.rounds, 4u);
}

TEST(CpuMer, BuildsTheSameTable) {
  CpuClusterConfig cc = smallConfig(4);
  cc.heap_words = 1 << 15;
  CpuCluster cluster(cc);
  apps::MerConfig cfg;
  cfg.genome_length = 1 << 12;
  cfg.reads_per_node = 48;
  cfg.read_length = 60;
  cfg.k = 15;
  cfg.table_slots_per_node = 1 << 13;
  const auto report = runCpuMer(cluster, cfg);
  EXPECT_TRUE(report.validated);
  EXPECT_GT(report.work_units, 0.0);
}

}  // namespace
}  // namespace gravel::baselines
