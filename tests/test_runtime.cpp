// Integration tests for the Gravel runtime: symmetric heap, fabric,
// aggregator repacking, network-thread resolution, the device-side
// shmem_put / shmem_inc / shmem_am API with work-group-level reservation,
// the quiet protocol, and the Table-5 statistics plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "runtime/cluster.hpp"

namespace gravel::rt {
namespace {

ClusterConfig smallCluster(std::uint32_t nodes, std::uint32_t wg = 16,
                           std::uint32_t wf = 4) {
  ClusterConfig c;
  c.nodes = nodes;
  c.heap_bytes = 1 << 20;
  c.gpu_queue_bytes = 1 << 14;
  c.pernode_queue_bytes = 1 << 10;  // 1 kB = 32 messages per flush
  c.device.wavefront_width = wf;
  c.device.max_wg_size = wg;
  return c;
}

TEST(SymmetricHeap, WordAccess) {
  SymmetricHeap h(1024);
  h.storeU64(16, 0xdeadbeef);
  EXPECT_EQ(h.loadU64(16), 0xdeadbeefu);
  EXPECT_EQ(h.fetchAddU64(16, 2), 0xdeadbeefu);
  EXPECT_EQ(h.loadU64(16), 0xdeadbef1u);
}

TEST(SymmetricHeap, TypedDoubleRoundTrip) {
  SymmetricHeap h(1024);
  SymAddr<double> a{64};
  h.store(a, 3, 2.718281828);
  EXPECT_DOUBLE_EQ(h.load(a, 3), 2.718281828);
}

TEST(SymmetricHeap, BoundsChecked) {
  SymmetricHeap h(64);
  EXPECT_THROW(h.loadU64(64), Error);
  EXPECT_THROW(h.storeU64(61, 0), Error);  // unaligned + oob
}

TEST(SymmetricAllocator, OffsetsAreSequentialAndBounded) {
  SymmetricAllocator a(64);
  auto x = a.alloc<std::uint64_t>(4);
  auto y = a.alloc<std::uint64_t>(4);
  EXPECT_EQ(x.offset, 0u);
  EXPECT_EQ(y.offset, 32u);
  EXPECT_THROW(a.alloc<std::uint64_t>(1), Error);
}

TEST(NetMessage, PackingRoundTrips) {
  auto m = NetMessage::activeMessage(3, 77, 123, 456);
  EXPECT_EQ(m.command(), Command::kActiveMessage);
  EXPECT_EQ(m.handler(), 77u);
  EXPECT_EQ(m.dest, 3u);
  EXPECT_EQ(m.addr, 123u);
  EXPECT_EQ(m.value, 456u);
  auto p = NetMessage::put(1, 8, 9);
  EXPECT_EQ(p.command(), Command::kPut);
  auto i = NetMessage::atomicInc(2, 16);
  EXPECT_EQ(i.command(), Command::kAtomicInc);
}

TEST(Fabric, DeliversAndCounts) {
  net::PerfectFabric f(2);
  std::vector<NetMessage> batch{NetMessage::put(1, 0, 42),
                                NetMessage::put(1, 8, 43)};
  f.send(0, 1, std::move(batch));
  EXPECT_EQ(f.inFlight(), 2u);
  EXPECT_FALSE(f.quiescent());
  net::Delivery d;
  EXPECT_FALSE(f.tryReceive(0, d));
  ASSERT_TRUE(f.tryReceive(1, d));
  EXPECT_EQ(d.src, 0u);
  ASSERT_EQ(d.messages.size(), 2u);
  f.markResolved(1, d);
  EXPECT_EQ(f.inFlight(), 0u);
  EXPECT_TRUE(f.quiescent());
  auto link = f.link(0, 1);
  EXPECT_EQ(link.batches, 1u);
  EXPECT_EQ(link.messages, 2u);
  EXPECT_EQ(link.bytes, 64u);
}

TEST(Fabric, EmptyBatchIsDropped) {
  net::PerfectFabric f(2);
  f.send(0, 1, {});
  net::Delivery d;
  EXPECT_FALSE(f.tryReceive(1, d));
  EXPECT_EQ(f.total().batches, 0u);
}

TEST(Aggregator, TimeoutFlushesPartialBufferWithoutFlushAll) {
  // A message parked in a partially-filled per-node buffer must reach the
  // wire within the configured timeout through checkTimeouts() alone —
  // flushAll() is never called here.
  ClusterConfig c;
  c.nodes = 2;
  c.pernode_queue_bytes = 1 << 10;  // 32-message buffers; we park only 3
  c.flush_timeout = std::chrono::milliseconds(2);
  GravelQueue queue(GravelQueueConfig{1 << 13, 32, NetMessage::kRows});
  net::PerfectFabric fabric(2);
  obs::Tracer tracer(c.obs);
  Aggregator agg(0, queue, fabric, c, tracer);
  agg.start(1);
  auto ref = queue.acquireWrite(3);
  const NetMessage msgs[3] = {NetMessage::put(1, 0, 7),
                              NetMessage::put(1, 8, 8),
                              NetMessage::atomicInc(1, 16)};
  for (std::uint32_t lane = 0; lane < 3; ++lane) {
    queue.wordAt(ref, 0, lane) = msgs[lane].cmd;
    queue.wordAt(ref, 1, lane) = msgs[lane].dest;
    queue.wordAt(ref, 2, lane) = msgs[lane].addr;
    queue.wordAt(ref, 3, lane) = msgs[lane].value;
  }
  queue.publish(ref);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fabric.link(0, 1).batches == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timeout flush never pushed the partial buffer onto the wire";
    std::this_thread::yield();
  }
  EXPECT_EQ(fabric.link(0, 1).messages, 3u);
  net::Delivery d;
  ASSERT_TRUE(fabric.tryReceive(1, d));
  ASSERT_EQ(d.messages.size(), 3u);
  EXPECT_EQ(d.messages[0].value, 7u);
  agg.stop();
}

// --- end-to-end cluster tests -------------------------------------------

TEST(Cluster, RemotePutLandsOnDestinationHeap) {
  Cluster cluster(smallCluster(2));
  auto arr = cluster.alloc<std::uint64_t>(64);
  cluster.launchAll(16, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    auto& self = cluster.node(nodeId);
    const std::uint32_t dest = 1 - nodeId;
    self.shmemPut(wi, dest, arr.at(wi.globalId()),
                  nodeId * 1000 + wi.globalId());
  });
  for (std::uint32_t n = 0; n < 2; ++n) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      EXPECT_EQ(cluster.node(n).heap().loadU64(arr.at(i)),
                (1 - n) * 1000 + i);
    }
  }
}

TEST(Cluster, LocalPutIsDirectStore) {
  Cluster cluster(smallCluster(2));
  auto arr = cluster.alloc<std::uint64_t>(64);
  cluster.launchAll(16, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemPut(wi, nodeId, arr.at(wi.globalId()), 7);
  });
  auto s = cluster.runStats();
  EXPECT_EQ(s.put_local, 32u);
  EXPECT_EQ(s.put_remote, 0u);
  EXPECT_EQ(s.net_messages, 0u);  // nothing crossed the aggregator
  EXPECT_EQ(cluster.node(0).heap().loadU64(arr.at(3)), 7u);
}

TEST(Cluster, AtomicIncrementsAreExact) {
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint64_t kGrid = 64;
  Cluster cluster(smallCluster(kNodes));
  auto counters = cluster.alloc<std::uint64_t>(8);
  // Every work-item increments counter (globalId % 8) on node
  // (globalId % kNodes): each counter on each node gets grid/8 increments
  // from each source node... total per (node, counter) is easy to compute.
  cluster.launchAll(kGrid, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    const std::uint32_t dest = wi.globalId() % kNodes;
    const std::uint64_t slot = wi.globalId() % 8;
    cluster.node(nodeId).shmemInc(wi, dest, counters.at(slot));
  });
  // Work-item g on each of the 4 source nodes targets (g%4, g%8); for a
  // fixed (dest, slot) pair the number of g in [0,64) with g%4==dest and
  // g%8==slot is 8 when slot%4==dest, else 0. Each source node contributes.
  for (std::uint32_t dest = 0; dest < kNodes; ++dest) {
    for (std::uint64_t slot = 0; slot < 8; ++slot) {
      const std::uint64_t expected = (slot % kNodes == dest) ? 8 * kNodes : 0;
      EXPECT_EQ(cluster.node(dest).heap().loadU64(counters.at(slot)), expected)
          << "dest=" << dest << " slot=" << slot;
    }
  }
  // All atomics route through the NI, local ones included (§6).
  auto s = cluster.runStats();
  EXPECT_EQ(s.inc_local + s.inc_remote, kGrid * kNodes);
  EXPECT_EQ(s.net_messages, kGrid * kNodes);
}

TEST(Cluster, ActiveMessagesRunAtHomeNode) {
  Cluster cluster(smallCluster(2));
  auto arr = cluster.alloc<std::uint64_t>(16);
  // Handler: arr[arg0] = max(arr[arg0], arg1).
  const std::uint32_t h = cluster.registerHandler(
      [arr](AmContext& ctx, std::uint64_t a0, std::uint64_t a1) {
        const std::uint64_t cur = ctx.heap().loadU64(arr.at(a0));
        if (a1 > cur) ctx.heap().storeU64(arr.at(a0), a1);
      });
  cluster.launchAll(32, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemAm(wi, 1 - nodeId, h, wi.globalId() % 16,
                                 wi.globalId() + nodeId * 100);
  });
  // Node 0's array receives maxima from node 1 (values 100..131).
  for (std::uint64_t s = 0; s < 16; ++s) {
    EXPECT_EQ(cluster.node(0).heap().loadU64(arr.at(s)), 100 + 16 + s);
    EXPECT_EQ(cluster.node(1).heap().loadU64(arr.at(s)), 16 + s);
  }
}

TEST(Cluster, SoftwarePredicationSkipsInactiveLanes) {
  Cluster cluster(smallCluster(2));
  auto arr = cluster.alloc<std::uint64_t>(64);
  cluster.launchAll(32, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    const bool active = wi.globalId() % 4 == 0;  // 8 of 32 lanes
    cluster.node(nodeId).shmemPut(wi, 1 - nodeId, arr.at(wi.globalId()),
                                  wi.globalId() + 1, active);
  });
  for (std::uint64_t i = 0; i < 32; ++i) {
    const std::uint64_t expect = (i % 4 == 0) ? i + 1 : 0;
    EXPECT_EQ(cluster.node(0).heap().loadU64(arr.at(i)), expect);
  }
  auto s = cluster.runStats();
  EXPECT_EQ(s.put_remote, 16u);  // 8 active lanes per node
}

TEST(Cluster, AllLanesInactiveIsANoop) {
  Cluster cluster(smallCluster(2));
  auto arr = cluster.alloc<std::uint64_t>(16);
  cluster.launchAll(16, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemPut(wi, 1 - nodeId, arr.at(0), 1,
                                  /*active=*/false);
  });
  auto s = cluster.runStats();
  EXPECT_EQ(s.opsTotal(), 0u);
  EXPECT_EQ(s.net_messages, 0u);
}

TEST(Cluster, ManyGroupsStressQueueReuse) {
  // Grid far larger than the GPU queue so the ring wraps many times and
  // producers spin on slot reuse while the aggregator drains.
  Cluster cluster(smallCluster(2));
  auto arr = cluster.alloc<std::uint64_t>(4096);
  cluster.launchAll(4096, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemInc(wi, 1 - nodeId,
                                  arr.at(wi.globalId() % 4096));
  });
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < 4096; ++i)
    total += cluster.node(0).heap().loadU64(arr.at(i));
  EXPECT_EQ(total, 4096u);
}

TEST(Cluster, SequentialLaunchesComposeWithQuiet) {
  Cluster cluster(smallCluster(2));
  auto arr = cluster.alloc<std::uint64_t>(16);
  for (int iter = 0; iter < 5; ++iter) {
    cluster.launchAll(16, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
      cluster.node(nodeId).shmemInc(wi, 1 - nodeId, arr.at(wi.globalId()));
    });
    // quiet() ran inside launchAll: results must be visible now.
    EXPECT_EQ(cluster.node(0).heap().loadU64(arr.at(0)), std::uint64_t(iter + 1));
  }
}

TEST(Cluster, RunStatsWindowsResetCleanly) {
  Cluster cluster(smallCluster(2));
  auto arr = cluster.alloc<std::uint64_t>(16);
  cluster.launchAll(16, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemInc(wi, 1 - nodeId, arr.at(0));
  });
  auto first = cluster.runStats();
  EXPECT_EQ(first.inc_remote, 32u);
  cluster.resetStats();
  auto empty = cluster.runStats();
  EXPECT_EQ(empty.opsTotal(), 0u);
  EXPECT_EQ(empty.net_messages, 0u);
  cluster.launchAll(16, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemInc(wi, 1 - nodeId, arr.at(0));
  });
  auto second = cluster.runStats();
  EXPECT_EQ(second.inc_remote, 32u);
}

TEST(Cluster, BatchSizesReflectAggregation) {
  // 1 kB per-node queues = 32 messages per batch. A burst of 256 messages
  // to one destination must produce full 1 kB batches (plus a tail).
  Cluster cluster(smallCluster(2));
  auto arr = cluster.alloc<std::uint64_t>(16);
  cluster.launchAll(256, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    if (nodeId == 0) cluster.node(0).shmemInc(wi, 1, arr.at(0));
    else cluster.node(1).shmemInc(wi, 1, arr.at(0), false);
  });
  auto s = cluster.runStats();
  EXPECT_EQ(s.net_messages, 256u);
  EXPECT_EQ(s.net_batches, 8u);  // 256 / 32
  EXPECT_DOUBLE_EQ(s.avg_batch_bytes, 1024.0);
  EXPECT_EQ(cluster.node(1).heap().loadU64(arr.at(0)), 256u);
}

TEST(Cluster, SingleNodeClusterWorks) {
  Cluster cluster(smallCluster(1));
  auto arr = cluster.alloc<std::uint64_t>(16);
  cluster.launchAll(64, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemInc(wi, 0, arr.at(wi.globalId() % 16));
  });
  for (std::uint64_t i = 0; i < 16; ++i)
    EXPECT_EQ(cluster.node(0).heap().loadU64(arr.at(i)), 4u);
}

TEST(Cluster, HostParallelRunsPerNodeWork) {
  Cluster cluster(smallCluster(4));
  auto arr = cluster.alloc<std::uint64_t>(4);
  cluster.hostParallel([&](std::uint32_t nodeId) {
    cluster.node(nodeId).heap().storeU64(arr.at(0), nodeId + 1);
  });
  for (std::uint32_t n = 0; n < 4; ++n)
    EXPECT_EQ(cluster.node(n).heap().loadU64(arr.at(0)), n + 1u);
}

TEST(Cluster, MixedOperationKindsInterleave) {
  Cluster cluster(smallCluster(2));
  auto puts = cluster.alloc<std::uint64_t>(32);
  auto counters = cluster.alloc<std::uint64_t>(4);
  const std::uint32_t h = cluster.registerHandler(
      [counters](AmContext& ctx, std::uint64_t a0, std::uint64_t a1) {
        ctx.heap().fetchAddU64(counters.at(a0), a1);
      });
  cluster.launchAll(32, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    auto& self = cluster.node(nodeId);
    const std::uint32_t other = 1 - nodeId;
    switch (wi.globalId() % 3) {
      case 0:
        self.shmemPut(wi, other, puts.at(wi.globalId()), 11);
        self.shmemInc(wi, other, counters.at(3), false);
        self.shmemAm(wi, other, h, 0, 0, false);
        break;
      case 1:
        self.shmemPut(wi, other, puts.at(0), 0, false);
        self.shmemInc(wi, other, counters.at(3));
        self.shmemAm(wi, other, h, 0, 0, false);
        break;
      default:
        self.shmemPut(wi, other, puts.at(0), 0, false);
        self.shmemInc(wi, other, counters.at(3), false);
        self.shmemAm(wi, other, h, 1, 5);
        break;
    }
  });
  // 32 ids: 11 with id%3==0, 11 with id%3==1, 10 with id%3==2.
  EXPECT_EQ(cluster.node(0).heap().loadU64(puts.at(0)), 11u);
  EXPECT_EQ(cluster.node(0).heap().loadU64(counters.at(3)), 11u);
  EXPECT_EQ(cluster.node(0).heap().loadU64(counters.at(1)), 50u);
}

// Property sweep: random mixes of destinations/activity must always deliver
// exactly the multiset of increments the kernel issued.
struct MixParam {
  std::uint32_t nodes;
  std::uint64_t grid;
  std::uint32_t wg;
  std::uint64_t seed;
};

class RandomTraffic : public ::testing::TestWithParam<MixParam> {};

TEST_P(RandomTraffic, IncrementsConserveCount) {
  const auto p = GetParam();
  Cluster cluster(smallCluster(p.nodes, p.wg));
  constexpr std::uint64_t kSlots = 32;
  auto arr = cluster.alloc<std::uint64_t>(kSlots);

  // Precompute each (node, workitem)'s action so the expectation is exact.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> plan(
      p.nodes);
  std::vector<std::vector<std::uint64_t>> expected(
      p.nodes, std::vector<std::uint64_t>(kSlots, 0));
  for (std::uint32_t n = 0; n < p.nodes; ++n) {
    Xoshiro256 rng(p.seed + n);
    plan[n].resize(p.grid);
    for (std::uint64_t g = 0; g < p.grid; ++g) {
      if (rng.uniform() < 0.25) {
        plan[n][g] = {~0u, 0};  // inactive lane
      } else {
        const auto dest = std::uint32_t(rng.below(p.nodes));
        const auto slot = rng.below(kSlots);
        plan[n][g] = {dest, slot};
        ++expected[dest][slot];
      }
    }
  }
  cluster.launchAll(p.grid, p.wg, [&](std::uint32_t nodeId,
                                      simt::WorkItem& wi) {
    const auto [dest, slot] = plan[nodeId][wi.globalId()];
    const bool active = dest != ~0u;
    cluster.node(nodeId).shmemInc(wi, active ? dest : 0,
                                  arr.at(active ? slot : 0), active);
  });
  for (std::uint32_t n = 0; n < p.nodes; ++n)
    for (std::uint64_t s = 0; s < kSlots; ++s)
      EXPECT_EQ(cluster.node(n).heap().loadU64(arr.at(s)), expected[n][s])
          << "node " << n << " slot " << s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraffic,
    ::testing::Values(MixParam{1, 64, 16, 1}, MixParam{2, 128, 16, 2},
                      MixParam{3, 96, 8, 3}, MixParam{4, 256, 16, 4},
                      MixParam{8, 128, 16, 5}));

}  // namespace
}  // namespace gravel::rt
