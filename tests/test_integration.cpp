// Cross-module integration and failure-injection tests: scenarios that span
// the SIMT engine, queue, aggregator, fabric and network threads in ways the
// per-module suites do not — timeout flushes, backpressure from tiny queues,
// active-message chains, heterogeneous work-group sizes, and quiet-protocol
// edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "apps/app.hpp"
#include "runtime/cluster.hpp"

namespace gravel::rt {
namespace {

ClusterConfig tiny(std::uint32_t nodes) {
  ClusterConfig c;
  c.nodes = nodes;
  c.heap_bytes = 1 << 20;
  c.gpu_queue_bytes = 1 << 13;
  c.pernode_queue_bytes = 1 << 10;
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  return c;
}

TEST(Integration, BackpressureFromTinyGpuQueue) {
  // GPU queue of 2 slots: producers must spin on slot reuse constantly
  // while the aggregator drains; nothing may be lost or duplicated.
  ClusterConfig c = tiny(2);
  c.gpu_queue_bytes = 256;  // 2 slots at 32 lanes x 4 rows? -> min 2 slots
  Cluster cluster(c);
  auto arr = cluster.alloc<std::uint64_t>(8);
  cluster.launchAll(2048, 32, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemInc(wi, 1 - nodeId,
                                  arr.at(wi.globalId() % 8));
  });
  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < 2; ++n)
    for (std::uint64_t i = 0; i < 8; ++i)
      total += cluster.node(n).heap().loadU64(arr.at(i));
  EXPECT_EQ(total, 4096u);
}

TEST(Integration, TimeoutFlushesSparseTraffic) {
  // A trickle that never fills a per-node queue must still be delivered by
  // the aggregator's timeout path (not only by quiet()): we launch, then
  // poll the destination while the cluster stays otherwise idle.
  ClusterConfig c = tiny(2);
  c.flush_timeout = std::chrono::microseconds(500);
  Cluster cluster(c);
  auto flag = cluster.alloc<std::uint64_t>(1);
  cluster.start();
  // Drive the device directly (no quiet) so only the timeout can flush.
  cluster.node(0).device().launch({32, 32}, [&](simt::WorkItem& wi) {
    cluster.node(0).shmemInc(wi, 1, flag.at(0));
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster.node(1).heap().loadU64(flag.at(0)) < 32) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timeout flush never delivered the messages";
    std::this_thread::yield();
  }
  cluster.quiet();
}

TEST(Integration, ActiveMessageChainsAcrossLaunches) {
  // Handler writes state the next kernel reads: launch-quiet-launch must
  // give read-your-writes across the whole cluster.
  Cluster cluster(tiny(4));
  auto stage1 = cluster.alloc<std::uint64_t>(64);
  auto stage2 = cluster.alloc<std::uint64_t>(64);
  const std::uint32_t h = cluster.registerHandler(
      [stage1](AmContext& ctx, std::uint64_t i, std::uint64_t v) {
        ctx.heap().storeU64(stage1.at(i), v);
      });
  cluster.launchAll(64, 32, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemAm(wi, (nodeId + 1) % 4, h,
                                 wi.globalId() % 64, wi.globalId() + 1);
  });
  // Second launch: forward stage1 values (local reads) to stage2 remotely.
  cluster.launchAll(64, 32, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    const std::uint64_t v =
        cluster.node(nodeId).heap().loadU64(stage1.at(wi.globalId() % 64));
    cluster.node(nodeId).shmemPut(wi, (nodeId + 2) % 4,
                                  stage2.at(wi.globalId() % 64), v);
  });
  // Every stage2 slot ends with globalId+1 of the final writer; just check
  // they are nonzero everywhere (values flowed through both hops).
  for (std::uint32_t n = 0; n < 4; ++n)
    for (std::uint64_t i = 0; i < 64; ++i)
      EXPECT_GT(cluster.node(n).heap().loadU64(stage2.at(i)), 0u);
}

TEST(Integration, HandlersThatSendNothingStillQuiesce) {
  Cluster cluster(tiny(2));
  auto arr = cluster.alloc<std::uint64_t>(4);
  const std::uint32_t nop = cluster.registerHandler(
      [](AmContext&, std::uint64_t, std::uint64_t) {});
  cluster.launchAll(64, 32, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemAm(wi, 1 - nodeId, nop, 0, 0);
  });
  (void)arr;
  SUCCEED();  // reaching here means quiet() terminated
}

TEST(Integration, MixedWorkGroupSizesAcrossLaunches) {
  Cluster cluster(tiny(2));
  auto arr = cluster.alloc<std::uint64_t>(4);
  for (std::uint32_t wg : {8u, 16u, 32u}) {
    cluster.launchAll(96, wg, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
      cluster.node(nodeId).shmemInc(wi, 1 - nodeId, arr.at(0));
    });
  }
  EXPECT_EQ(cluster.node(0).heap().loadU64(arr.at(0)), 3u * 96);
}

TEST(Integration, EightNodeAllToAll) {
  Cluster cluster(tiny(8));
  auto arr = cluster.alloc<std::uint64_t>(8);
  cluster.launchAll(256, 32, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    const auto dest = std::uint32_t((nodeId + wi.globalId()) % 8);
    cluster.node(nodeId).shmemInc(wi, dest, arr.at(nodeId));
  });
  // Each source node issued 256 increments to slot[source] spread over all
  // destinations: summing slot[source] across nodes gives 256.
  for (std::uint32_t src = 0; src < 8; ++src) {
    std::uint64_t total = 0;
    for (std::uint32_t n = 0; n < 8; ++n)
      total += cluster.node(n).heap().loadU64(arr.at(src));
    EXPECT_EQ(total, 256u) << "source " << src;
  }
  // All-to-all fabric links carried traffic.
  std::uint32_t activeLinks = 0;
  for (std::uint32_t i = 0; i < 8; ++i)
    for (std::uint32_t j = 0; j < 8; ++j)
      if (cluster.fabric().link(i, j).messages > 0) ++activeLinks;
  EXPECT_EQ(activeLinks, 64u);  // including loopback atomics
}

TEST(Integration, SymmetricAllocationsAreSharedAcrossLaunches) {
  Cluster cluster(tiny(2));
  auto a = cluster.alloc<std::uint64_t>(16);
  auto b = cluster.alloc<std::uint64_t>(16);
  EXPECT_NE(a.offset, b.offset);
  cluster.launchAll(16, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemPut(wi, 1 - nodeId, a.at(wi.globalId()), 1);
    cluster.node(nodeId).shmemPut(wi, 1 - nodeId, b.at(wi.globalId()), 2);
  });
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(cluster.node(0).heap().loadU64(a.at(i)), 1u);
    EXPECT_EQ(cluster.node(0).heap().loadU64(b.at(i)), 2u);
  }
}

TEST(Integration, AggregatorPollsWhileGpuIsSlow) {
  // §8.1: the CPU aggregator spends most of its time polling for GPU
  // messages (65% in the paper at 8 nodes — their motivation for a
  // hardware aggregator). With the fiber-interpreted GPU the imbalance is
  // even starker: the poll fraction must dominate.
  Cluster cluster(tiny(2));
  auto arr = cluster.alloc<std::uint64_t>(4);
  cluster.launchAll(1024, 32, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemInc(wi, 1 - nodeId, arr.at(0));
  });
  EXPECT_GT(cluster.node(0).aggregator().pollFraction(), 0.5);
  EXPECT_EQ(cluster.node(0).aggregator().slotsProcessed(),
            cluster.node(0).queue().reservedCount());
}

TEST(Integration, KernelExceptionsPropagateFromLaunchAll) {
  Cluster cluster(tiny(2));
  EXPECT_THROW(
      cluster.launchAll(32, 32,
                        [&](std::uint32_t, simt::WorkItem& wi) {
                          if (wi.globalId() == 7)
                            throw std::runtime_error("kernel bug");
                        }),
      std::runtime_error);
}

TEST(Integration, FbarDomainMessagingEndToEnd) {
  // The §5.3 fbar path through the full runtime: lanes with unequal work
  // leave the barrier as they finish; reservations synchronize members.
  Cluster cluster(tiny(2));
  auto arr = cluster.alloc<std::uint64_t>(64);
  cluster.launchAll(32, 32, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    auto& fb = wi.fbar();
    wi.fbarJoin(fb);
    const std::uint64_t mine = wi.localId() % 4;  // 0..3 messages per lane
    for (std::uint64_t i = 0;; ++i) {
      if (i >= mine) {
        wi.fbarLeave(fb);
        break;
      }
      cluster.node(nodeId).shmemInc(wi, 1 - nodeId,
                                    arr.at(wi.localId()), true, &fb);
    }
  });
  for (std::uint64_t l = 0; l < 32; ++l) {
    EXPECT_EQ(cluster.node(0).heap().loadU64(arr.at(l)), l % 4);
    EXPECT_EQ(cluster.node(1).heap().loadU64(arr.at(l)), l % 4);
  }
}

}  // namespace
}  // namespace gravel::rt
