// Tests for the functional §3 networking-model implementations: every model
// must produce the identical GUPS histogram, while leaving its
// characteristic traffic fingerprint on the fabric.
#include <gtest/gtest.h>

#include "models/model.hpp"

namespace gravel::models {
namespace {

rt::ClusterConfig modelCluster(std::uint32_t nodes) {
  rt::ClusterConfig c;
  c.nodes = nodes;
  c.heap_bytes = 1 << 20;
  c.gpu_queue_bytes = 1 << 14;
  c.pernode_queue_bytes = 1 << 10;  // 32-message per-node queues
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  c.device.scratchpad_bytes = 4096;
  return c;
}

apps::GupsConfig smallGups() {
  apps::GupsConfig cfg;
  cfg.table_size = 1 << 10;
  cfg.updates_per_node = 1 << 10;
  return cfg;
}

class AllModels : public ::testing::TestWithParam<ModelKind> {};

TEST_P(AllModels, ProducesCorrectHistogram) {
  rt::Cluster cluster(modelCluster(4));
  const auto report = runGupsModel(cluster, smallGups(), GetParam());
  EXPECT_TRUE(report.validated) << modelName(GetParam());
  EXPECT_EQ(report.work_units, 4.0 * (1 << 10));
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllModels,
                         ::testing::Values(ModelKind::kCoprocessor,
                                           ModelKind::kMsgPerLane,
                                           ModelKind::kCoalesced,
                                           ModelKind::kCoalescedAgg));

TEST(MsgPerLane, OneNetworkMessagePerUpdate) {
  rt::Cluster cluster(modelCluster(2));
  const auto cfg = smallGups();
  const auto report = runGupsModel(cluster, cfg, ModelKind::kMsgPerLane);
  ASSERT_TRUE(report.validated);
  // Every update crossed the fabric as its own batch.
  EXPECT_EQ(report.stats.net_batches, report.stats.net_messages);
  EXPECT_EQ(report.stats.net_messages, 2u * cfg.updates_per_node);
  EXPECT_DOUBLE_EQ(report.stats.avg_batch_bytes, 32.0);
}

TEST(Coalesced, BatchesAreWorkGroupFragments) {
  rt::Cluster cluster(modelCluster(4));
  const auto report = runGupsModel(cluster, smallGups(), ModelKind::kCoalesced);
  ASSERT_TRUE(report.validated);
  // Per-WG per-destination lists: far fewer batches than messages, but far
  // smaller than an aggregated 1 kB per-node queue (32 messages here a WG
  // only has 32 lanes split over 4 destinations).
  EXPECT_LT(report.stats.net_batches, report.stats.net_messages);
  EXPECT_LT(report.stats.avg_batch_bytes, 1024.0 * 0.75);
  EXPECT_GT(report.stats.avg_batch_bytes, 32.0);
}

TEST(CoalescedAgg, RecoversLargeBatches) {
  rt::Cluster cluster(modelCluster(4));
  const auto report =
      runGupsModel(cluster, smallGups(), ModelKind::kCoalescedAgg);
  ASSERT_TRUE(report.validated);
  // GPU-wide repacking restores ~full per-node queues (1 kB here), the
  // Figure 15 "coalesced + Gravel aggregation" effect.
  EXPECT_GT(report.stats.avg_batch_bytes, 1024.0 * 0.6);
}

TEST(Coprocessor, ExchangesAtKernelBoundaries) {
  rt::Cluster cluster(modelCluster(2));
  const auto cfg = smallGups();
  const auto report = runGupsModel(cluster, cfg, ModelKind::kCoprocessor);
  ASSERT_TRUE(report.validated);
  // Chunked execution: updates / chunk kernel launches per node, and at
  // most one batch per (src, dst, chunk).
  const std::uint64_t chunkMsgs = (1 << 10) / 32;  // queue bytes / msg bytes
  const std::uint64_t chunks = cfg.updates_per_node / chunkMsgs;
  EXPECT_EQ(cluster.node(0).device().stats().kernels_launched, chunks);
  EXPECT_LE(report.stats.net_batches, 2u * 2u * chunks);
}

TEST(Models, AggregatedBatchesBeatCoalescedBatches) {
  // Direct head-to-head of the traffic fingerprint Figure 15 rests on.
  rt::Cluster a(modelCluster(4)), b(modelCluster(4));
  const auto coal = runGupsModel(a, smallGups(), ModelKind::kCoalesced);
  const auto agg = runGupsModel(b, smallGups(), ModelKind::kCoalescedAgg);
  ASSERT_TRUE(coal.validated);
  ASSERT_TRUE(agg.validated);
  EXPECT_GT(agg.stats.avg_batch_bytes, 2.0 * coal.stats.avg_batch_bytes);
  EXPECT_LT(agg.stats.net_batches, coal.stats.net_batches);
}

}  // namespace
}  // namespace gravel::models
