// Application-level integration tests: every paper workload (§6) runs at
// small scale on multi-node clusters and validates against its serial
// reference. These are the end-to-end proofs that the SIMT engine, queue,
// aggregator, fabric and network threads compose correctly.
#include <gtest/gtest.h>

#include "apps/color.hpp"
#include "apps/gups.hpp"
#include "apps/gups_mod.hpp"
#include "apps/kmeans.hpp"
#include "apps/mer.hpp"
#include "apps/mer_traverse.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "graph/generators.hpp"

namespace gravel::apps {
namespace {

rt::ClusterConfig testCluster(std::uint32_t nodes, bool reconvergence = false) {
  rt::ClusterConfig c;
  c.nodes = nodes;
  c.heap_bytes = 8u << 20;
  c.gpu_queue_bytes = 1 << 14;
  c.pernode_queue_bytes = 1 << 10;
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  c.device.wg_reconvergence = reconvergence;
  return c;
}

TEST(Gups, ValidatesOnFourNodes) {
  rt::Cluster cluster(testCluster(4));
  GupsConfig cfg;
  cfg.table_size = 1 << 10;
  cfg.updates_per_node = 1 << 10;
  const auto report = runGups(cluster, cfg);
  EXPECT_TRUE(report.validated);
  EXPECT_EQ(report.stats.opsTotal(), 4u << 10);
  // Uniform random destinations over 4 nodes: ~75% remote.
  EXPECT_NEAR(report.stats.remoteFraction(), 0.75, 0.05);
}

TEST(Gups, SingleNodeHasNoRemoteTraffic) {
  rt::Cluster cluster(testCluster(1));
  GupsConfig cfg;
  cfg.table_size = 256;
  cfg.updates_per_node = 512;
  const auto report = runGups(cluster, cfg);
  EXPECT_TRUE(report.validated);
  EXPECT_EQ(report.stats.remoteFraction(), 0.0);
  // Atomics still route through the NI (paper §6) even on one node.
  EXPECT_EQ(report.stats.net_messages, 512u);
}

TEST(PageRank, MatchesSerialOnMesh) {
  rt::Cluster cluster(testCluster(3));
  graph::DistGraph dg(graph::bubblesLike(400, 2), 3);
  PageRankConfig cfg;
  cfg.iterations = 4;
  const auto result = runPageRank(cluster, dg, cfg);
  EXPECT_TRUE(result.report.validated);
  // PUT-only workload.
  EXPECT_EQ(result.report.stats.inc_local + result.report.stats.inc_remote,
            0u);
  EXPECT_EQ(result.report.stats.am_local + result.report.stats.am_remote, 0u);
  EXPECT_EQ(
      result.report.stats.put_local + result.report.stats.put_remote,
      dg.graph().edgeCount() * cfg.iterations);
}

TEST(PageRank, MatchesSerialOnBandGraph) {
  rt::Cluster cluster(testCluster(2));
  graph::DistGraph dg(graph::cageLike(300, 8, 3), 2);
  const auto result = runPageRank(cluster, dg, {3});
  EXPECT_TRUE(result.report.validated);
  // Ranks form a probability-ish distribution (no mass lost in transit).
  double sum = 0;
  for (double r : result.ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 0.2);  // dangling-free graphs stay close to 1
}

TEST(Sssp, MatchesDijkstraOnMesh) {
  rt::Cluster cluster(testCluster(3));
  graph::DistGraph dg(graph::bubblesLike(144, 4), 3);
  const auto result = runSssp(cluster, dg, {});
  EXPECT_TRUE(result.report.validated);
  EXPECT_EQ(result.dist[0], 0u);
  EXPECT_GT(result.report.iterations, 2u);
}

TEST(Sssp, MatchesDijkstraOnBandGraph) {
  rt::Cluster cluster(testCluster(4));
  graph::DistGraph dg(graph::cageLike(200, 10, 6), 4);
  SsspConfig cfg;
  cfg.source = 17;
  const auto result = runSssp(cluster, dg, cfg);
  EXPECT_TRUE(result.report.validated);
}

TEST(Sssp, DisconnectedVerticesStayInfinite) {
  // Two disjoint components: vertices {0,1} and {2,3}.
  std::vector<graph::Edge> edges{{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  graph::DistGraph dg(graph::Csr::fromEdges(4, edges), 2);
  rt::Cluster cluster(testCluster(2));
  const auto result = runSssp(cluster, dg, {});
  EXPECT_TRUE(result.report.validated);
  EXPECT_EQ(result.dist[2], kSsspInf);
  EXPECT_EQ(result.dist[3], kSsspInf);
}

TEST(Color, ProperColoringOnMesh) {
  rt::Cluster cluster(testCluster(3));
  graph::DistGraph dg(graph::bubblesLike(225, 5), 3);
  const auto result = runColor(cluster, dg, {});
  EXPECT_TRUE(result.report.validated);
  // Mesh degree <= ~4: greedy needs few colors.
  EXPECT_LE(result.palette, 6u);
  // PUT-only workload.
  EXPECT_EQ(result.report.stats.inc_local + result.report.stats.inc_remote +
                result.report.stats.am_local + result.report.stats.am_remote,
            0u);
}

TEST(Color, ProperColoringOnBandGraph) {
  rt::Cluster cluster(testCluster(2));
  graph::DistGraph dg(graph::cageLike(240, 10, 8), 2);
  const auto result = runColor(cluster, dg, {});
  EXPECT_TRUE(result.report.validated);
  EXPECT_LE(result.palette, dg.graph().maxDegree() + 1);
}

TEST(Kmeans, ConvergesToSerialCentroids) {
  rt::Cluster cluster(testCluster(4));
  KmeansConfig cfg;
  cfg.points_per_node = 512;
  cfg.iterations = 3;
  cfg.clusters = 4;
  cfg.dims = 3;
  const auto result = runKmeans(cluster, cfg);
  EXPECT_TRUE(result.report.validated);
  // Atomics-only workload (AM accumulation + count increments).
  EXPECT_EQ(result.report.stats.put_local + result.report.stats.put_remote,
            0u);
  const double msgsPerPoint = double(cfg.dims) + 1;
  EXPECT_EQ(double(result.report.stats.opsTotal()),
            msgsPerPoint * cfg.points_per_node * 4 * cfg.iterations);
}

TEST(Mer, BuildsExactDistributedHashTable) {
  rt::Cluster cluster(testCluster(4));
  MerConfig cfg;
  cfg.genome_length = 1 << 12;
  cfg.reads_per_node = 64;
  cfg.read_length = 60;
  cfg.k = 15;
  cfg.table_slots_per_node = 1 << 13;
  const auto result = runMer(cluster, cfg);
  EXPECT_TRUE(result.report.validated);
  EXPECT_GT(result.distinct_kmers, 0u);
  EXPECT_LE(result.distinct_kmers, result.total_occurrences);
  EXPECT_LT(result.max_load_factor, 0.9);
  // AM-only workload with hash-random destinations: ~3/4 remote at 4 nodes.
  EXPECT_NEAR(result.report.stats.remoteFraction(), 0.75, 0.08);
}

TEST(MerTraverse, ContigsMatchSerialTraversal) {
  // Phase 1 + phase 2 on the same cluster: the walk hops between nodes as a
  // chain of active messages and must find exactly the serial contig set.
  rt::Cluster cluster(testCluster(4));
  MerConfig cfg;
  cfg.genome_length = 1 << 12;
  cfg.reads_per_node = 96;
  cfg.read_length = 60;
  cfg.k = 15;
  cfg.table_slots_per_node = 1 << 13;
  const auto phase1 = runMer(cluster, cfg);
  ASSERT_TRUE(phase1.report.validated);

  const auto phase2 = runMerTraverse(cluster, cfg, phase1);
  EXPECT_TRUE(phase2.report.validated);
  EXPECT_GT(phase2.contigs, 0u);
  EXPECT_GE(phase2.contig_kmers, phase2.contigs);
  EXPECT_GE(phase2.longest_contig, 2u);
  // Chained hops crossed the fabric beyond the seed messages.
  EXPECT_GT(phase2.report.stats.net_messages,
            phase2.report.stats.am_local + phase2.report.stats.am_remote);
}

TEST(MerTraverse, SingleNodeChainsThroughLoopback) {
  rt::Cluster cluster(testCluster(1));
  MerConfig cfg;
  cfg.genome_length = 1 << 11;
  cfg.reads_per_node = 64;
  cfg.read_length = 50;
  cfg.k = 13;
  cfg.table_slots_per_node = 1 << 12;
  const auto phase1 = runMer(cluster, cfg);
  ASSERT_TRUE(phase1.report.validated);
  const auto phase2 = runMerTraverse(cluster, cfg, phase1);
  EXPECT_TRUE(phase2.report.validated);
}

class GupsModModes : public ::testing::TestWithParam<DivergedMode> {};

TEST_P(GupsModModes, AllVariantsValidate) {
  const DivergedMode mode = GetParam();
  rt::Cluster cluster(
      testCluster(2, mode == DivergedMode::kWgReconvergence));
  GupsModConfig cfg;
  cfg.table_size = 512;
  cfg.workitems_per_node = 1 << 10;
  const auto report = runGupsMod(cluster, cfg, mode);
  EXPECT_TRUE(report.validated);
  EXPECT_GT(report.work_units, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Modes, GupsModModes,
                         ::testing::Values(DivergedMode::kSoftwarePredication,
                                           DivergedMode::kWgReconvergence,
                                           DivergedMode::kFbar));

TEST(GupsMod, PredicationPaysOverheadFbarDoesNot) {
  GupsModConfig cfg;
  cfg.table_size = 512;
  cfg.workitems_per_node = 1 << 10;

  rt::Cluster swCluster(testCluster(2));
  const auto sw =
      runGupsMod(swCluster, cfg, DivergedMode::kSoftwarePredication);
  rt::Cluster fbCluster(testCluster(2));
  const auto fb = runGupsMod(fbCluster, cfg, DivergedMode::kFbar);

  ASSERT_TRUE(sw.validated);
  ASSERT_TRUE(fb.validated);
  // Same functional work...
  EXPECT_EQ(sw.work_units, fb.work_units);
  // ...but software predication drags idle lanes through every arrival and
  // pays instruction overhead; fbar synchronizes members only (§8.2).
  EXPECT_GT(sw.stats.predication_overhead_ops, 0u);
  EXPECT_EQ(fb.stats.predication_overhead_ops, 0u);
  EXPECT_GT(sw.stats.collective_arrivals, fb.stats.collective_arrivals);
}

TEST(GupsMod, ReconvergenceAvoidsPredicationOverhead) {
  GupsModConfig cfg;
  cfg.table_size = 256;
  cfg.workitems_per_node = 512;
  rt::Cluster cluster(testCluster(2, /*reconvergence=*/true));
  const auto report = runGupsMod(cluster, cfg, DivergedMode::kWgReconvergence);
  EXPECT_TRUE(report.validated);
  EXPECT_EQ(report.stats.predication_overhead_ops, 0u);
}

TEST(GupsMod, WrongClusterModeIsRejected) {
  rt::Cluster cluster(testCluster(2));
  GupsModConfig cfg;
  EXPECT_THROW(runGupsMod(cluster, cfg, DivergedMode::kWgReconvergence),
               Error);
}

}  // namespace
}  // namespace gravel::apps
