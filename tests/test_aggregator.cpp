// Unit tests for the aggregator's slot-batched hot path (DESIGN.md §9):
// batching invariants (no reordering within a destination, batch sizes
// bounded by capacity, counts conserved route -> flush -> fabric) under 1
// and 4 aggregator threads, the busy-path timeout cadence (the
// timeout-starvation regression), the routing lock discipline (one lock
// acquisition per distinct destination per slot), and ClusterConfig
// validation of degenerate setups.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "net/fabric.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/cluster.hpp"
#include "runtime/slot_router.hpp"

namespace gravel::rt {
namespace {

/// Publishes one slot carrying `msgs` (lane i = msgs[i]).
void writeSlot(GravelQueue& q, const std::vector<NetMessage>& msgs) {
  auto ref = q.acquireWrite(std::uint32_t(msgs.size()));
  for (std::uint32_t lane = 0; lane < msgs.size(); ++lane) {
    q.wordAt(ref, 0, lane) = msgs[lane].cmd;
    q.wordAt(ref, 1, lane) = msgs[lane].dest;
    q.wordAt(ref, 2, lane) = msgs[lane].addr;
    q.wordAt(ref, 3, lane) = msgs[lane].value;
  }
  q.publish(ref);
}

// --- timeout starvation regression ----------------------------------------

TEST(Aggregator, TimeoutFlushReachedUnderSustainedLoad) {
  // Regression for the busy-path timeout bug: checkTimeouts() used to run
  // only from the idle poll loop, so while the GPU queue stayed hot a
  // single message parked for a quiet destination sat buffered until the
  // load stopped — far past the paper's flush timeout. The slot-count
  // cadence must flush it within ~10x the timeout even though the
  // aggregator never goes idle.
  ClusterConfig c;
  c.nodes = 3;
  c.pernode_queue_bytes = 1 << 10;  // 32-message buffers
  c.flush_timeout = std::chrono::milliseconds(25);
  c.aggregator_timeout_check_slots = 4;
  constexpr std::uint32_t kLanes = 8;
  GravelQueue queue(GravelQueueConfig{1 << 13, kLanes, NetMessage::kRows});
  net::PerfectFabric fabric(3);
  obs::Tracer tracer(c.obs);
  Aggregator agg(0, queue, fabric, c, tracer);
  agg.start(1);

  // Park one message for destination 2 and wait until it is routed into the
  // (still partial) per-destination buffer.
  writeSlot(queue, {NetMessage::put(2, 0, 42)});
  while (agg.messagesRouted() < 1) std::this_thread::yield();
  const auto parked = std::chrono::steady_clock::now();
  const auto bound = parked + 10 * c.flush_timeout;
  const auto giveUp = parked + std::chrono::seconds(20);

  // Keep the queue hot with destination-1 traffic (8 messages per slot, so
  // buffers fill and flush continuously and the idle path never runs),
  // until the parked message reaches the wire.
  const std::vector<NetMessage> hot(kLanes, NetMessage::atomicInc(1, 8));
  std::uint64_t flushedAt = 0;
  while (true) {
    if (fabric.link(0, 2).batches > 0) {
      flushedAt = std::uint64_t(std::chrono::duration_cast<
          std::chrono::milliseconds>(std::chrono::steady_clock::now() - parked)
                                    .count());
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), giveUp)
        << "parked message never timeout-flushed under sustained load";
    writeSlot(queue, hot);
  }
  EXPECT_LT(std::chrono::steady_clock::now(), bound)
      << "timeout flush took " << flushedAt << " ms, more than 10x the "
      << c.flush_timeout.count() / 1000 << " ms flush timeout";
  EXPECT_EQ(fabric.link(0, 2).messages, 1u);
  agg.stop();
}

// --- batching invariants ---------------------------------------------------

struct BatchedRun {
  std::map<std::uint32_t, std::vector<std::uint64_t>> perDest;  ///< values
  std::size_t maxBatch = 0;
  std::uint64_t batches = 0;
  std::uint64_t locks = 0;
  std::uint64_t dests = 0;
  std::uint64_t routed = 0;
  std::size_t capacity = 0;
};

/// Pushes `slots` slots of `kLanes` messages through a `threads`-thread
/// aggregator and collects everything the fabric received, per destination
/// and in per-destination arrival order. Each value encodes (slot, lane).
BatchedRun runBatched(std::uint32_t threads, std::uint32_t slots) {
  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint32_t kLanes = 8;
  ClusterConfig c;
  c.nodes = kNodes;
  c.pernode_queue_bytes = 20 * sizeof(NetMessage);  // flush mid-run sometimes
  c.flush_timeout = std::chrono::seconds(10);       // timeouts play no part
  GravelQueue queue(GravelQueueConfig{1 << 14, kLanes, NetMessage::kRows});
  net::PerfectFabric fabric(kNodes);
  obs::Tracer tracer(c.obs);
  Aggregator agg(0, queue, fabric, c, tracer);
  agg.start(threads);

  for (std::uint32_t s = 0; s < slots; ++s) {
    std::vector<NetMessage> msgs;
    msgs.reserve(kLanes);
    for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
      // A skewed destination mix: several messages per destination per slot,
      // so the slot-batched path strictly beats per-message locking.
      const auto dest = std::uint32_t((s + lane / 3) % kNodes);
      msgs.push_back(
          NetMessage::put(dest, 0, (std::uint64_t(s) << 16) | lane));
    }
    writeSlot(queue, msgs);
  }
  while (agg.slotsProcessed() < slots) std::this_thread::yield();
  agg.flushAll();

  BatchedRun run;
  run.capacity = agg.capacityMsgs();
  run.locks = agg.lockAcquisitions();
  run.dests = agg.destsTouched();
  run.routed = agg.messagesRouted();
  net::Delivery d;
  for (std::uint32_t dst = 0; dst < kNodes; ++dst) {
    while (fabric.tryReceive(dst, d)) {
      ++run.batches;
      run.maxBatch = std::max(run.maxBatch, d.messages.size());
      for (const NetMessage& m : d.messages) {
        EXPECT_EQ(m.dest, dst);
        run.perDest[dst].push_back(m.value);
      }
    }
  }
  agg.stop();
  return run;
}

void checkBatchingInvariants(const BatchedRun& run, std::uint32_t slots) {
  constexpr std::uint32_t kLanes = 8;
  // Conservation: every sent message arrives exactly once.
  std::uint64_t received = 0;
  std::map<std::uint64_t, int> seen;
  for (const auto& [dst, values] : run.perDest) {
    received += values.size();
    for (std::uint64_t v : values) ++seen[v];
  }
  EXPECT_EQ(received, std::uint64_t(slots) * kLanes);
  EXPECT_EQ(run.routed, std::uint64_t(slots) * kLanes);
  EXPECT_EQ(seen.size(), std::size_t(slots) * kLanes) << "duplicate values";

  // Batch sizes never exceed the configured per-destination capacity.
  EXPECT_LE(run.maxBatch, run.capacity);

  // No reordering within a destination: each slot's run for a destination
  // is contiguous in the concatenated arrival stream (appendRun holds the
  // buffer lock across the whole run, and flushes under that same lock
  // preserve order end-to-end) and its lanes arrive ascending.
  for (const auto& [dst, values] : run.perDest) {
    std::map<std::uint64_t, std::uint64_t> lastLane;  // slot -> last lane
    std::map<std::uint64_t, bool> closed;             // slot run ended?
    std::uint64_t prevSlot = ~0ull;
    for (std::uint64_t v : values) {
      const std::uint64_t slot = v >> 16, lane = v & 0xffff;
      if (slot != prevSlot && prevSlot != ~0ull) closed[prevSlot] = true;
      ASSERT_FALSE(closed.count(slot) && closed[slot])
          << "dest " << dst << ": slot " << slot
          << " run is not contiguous in arrival order";
      if (lastLane.count(slot)) {
        ASSERT_LT(lastLane[slot], lane)
            << "dest " << dst << ": lanes reordered within slot " << slot;
      }
      lastLane[slot] = lane;
      prevSlot = slot;
    }
  }

  // Lock discipline: the routing path takes exactly one lock per distinct
  // destination per slot — never one per message.
  EXPECT_EQ(run.locks, run.dests);
  EXPECT_LT(run.locks, run.routed)
      << "slot-batched routing should acquire far fewer locks than messages";
  EXPECT_LE(run.dests, std::uint64_t(slots) * 4);  // <= nodes per slot
}

TEST(Aggregator, BatchingInvariantsSingleThread) {
  const std::uint32_t slots = 200;
  checkBatchingInvariants(runBatched(1, slots), slots);
}

TEST(Aggregator, BatchingInvariantsFourThreads) {
  const std::uint32_t slots = 200;
  checkBatchingInvariants(runBatched(4, slots), slots);
}

// --- config validation -----------------------------------------------------

TEST(ClusterConfigValidate, RejectsDegenerateSetups) {
  {  // pernode queue smaller than one message => zero capacity
    ClusterConfig c;
    c.pernode_queue_bytes = sizeof(NetMessage) - 1;
    EXPECT_THROW(Cluster cluster(c), Error);
  }
  {
    ClusterConfig c;
    c.aggregator_threads = 0;
    EXPECT_THROW(Cluster cluster(c), Error);
  }
  {
    ClusterConfig c;
    c.gpu_queue_bytes = 0;
    EXPECT_THROW(Cluster cluster(c), Error);
  }
  {
    ClusterConfig c;
    c.nodes = 0;
    EXPECT_THROW(Cluster cluster(c), Error);
  }
  {
    ClusterConfig c;
    c.aggregator_timeout_check_slots = 0;
    EXPECT_THROW(Cluster cluster(c), Error);
  }
  {  // exactly one message of capacity is degenerate-but-legal
    ClusterConfig c;
    c.nodes = 2;
    c.heap_bytes = 1 << 16;
    c.gpu_queue_bytes = 1 << 13;
    c.pernode_queue_bytes = sizeof(NetMessage);
    EXPECT_NO_THROW(Cluster cluster(c));
  }
}

TEST(ClusterConfigValidate, DirectAggregatorRejectsZeroCapacity) {
  ClusterConfig c;
  c.nodes = 2;
  c.pernode_queue_bytes = 8;  // < sizeof(NetMessage)
  GravelQueue queue(GravelQueueConfig{1 << 13, 8, NetMessage::kRows});
  net::PerfectFabric fabric(2);
  obs::Tracer tracer(c.obs);
  EXPECT_THROW(Aggregator agg(0, queue, fabric, c, tracer), Error);
}

// --- run stats plumbing ----------------------------------------------------

TEST(Aggregator, ClusterRunStatsExposeLockDiscipline) {
  ClusterConfig c;
  c.nodes = 2;
  c.heap_bytes = 1 << 20;
  c.gpu_queue_bytes = 1 << 14;
  c.pernode_queue_bytes = 1 << 10;
  c.device.wavefront_width = 4;
  c.device.max_wg_size = 16;
  Cluster cluster(c);
  auto arr = cluster.alloc<std::uint64_t>(16);
  cluster.launchAll(32, 16, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    cluster.node(nodeId).shmemInc(wi, 1 - nodeId, arr.at(wi.globalId() % 16));
  });
  const ClusterRunStats s = cluster.runStats();
  EXPECT_GT(s.agg_slots, 0u);
  EXPECT_GT(s.agg_lock_acquisitions, 0u);
  EXPECT_EQ(s.agg_lock_acquisitions, s.agg_dests_touched);
  // Slot-granularity routing: strictly fewer locks than routed messages
  // whenever slots carry more than one message on average.
  EXPECT_LT(s.agg_lock_acquisitions, 2u * 32u /* messages */);
  // resetStats() rebaselines the aggregator counters too.
  cluster.resetStats();
  const ClusterRunStats after = cluster.runStats();
  EXPECT_EQ(after.agg_slots, 0u);
  EXPECT_EQ(after.agg_lock_acquisitions, 0u);
  EXPECT_EQ(after.agg_dests_touched, 0u);
}

}  // namespace
}  // namespace gravel::rt
