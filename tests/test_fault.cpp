// Fault-injection suite: the reliability sublayer must restore exactly-once
// semantics on a hostile wire, and the quiet protocol must fail fast (with a
// usable diagnostic) instead of hanging when it cannot.
//
// The workload mixes the three Gravel primitives so every delivery bug has a
// witness: PUTs to per-writer-unique addresses (duplicates or losses change
// the heap), all-to-all atomic increments (commutative, so only exactly-once
// delivery reproduces the count), and active-message chains where handlers
// forward follow-on messages (exercises quiet()'s handling of work created
// mid-drain). Every operation commutes or targets a unique address, so any
// two exactly-once executions — whatever the adversary reordered or
// retransmitted — must leave bit-identical heaps.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cluster.hpp"

namespace gravel::rt {
namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kGrid = 256;   // work-items per node
constexpr std::uint32_t kWg = 32;
constexpr std::uint64_t kSlots = 8;    // increment targets
constexpr std::uint64_t kChains = 8;   // AM chains started per node
constexpr std::uint64_t kHops = 3;     // forwards after the first handler

ClusterConfig base() {
  ClusterConfig c;
  c.nodes = kNodes;
  c.heap_bytes = 1 << 20;
  c.gpu_queue_bytes = 1 << 13;
  c.pernode_queue_bytes = 512;  // tiny batches -> many wire messages to hit
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  c.quiet_deadline = std::chrono::milliseconds(60000);
  return c;
}

/// Short timeouts so retransmission-heavy tests converge quickly.
net::ReliabilityConfig fastReliability() {
  net::ReliabilityConfig r;
  r.enabled = true;
  r.rto_base = std::chrono::microseconds(500);
  r.rto_max = std::chrono::microseconds(8000);
  return r;
}

struct RunResult {
  std::vector<std::uint64_t> heap;  ///< every word the workload can touch
  ClusterRunStats stats;
};

RunResult runWorkload(const ClusterConfig& c) {
  Cluster cluster(c);
  auto counters = cluster.alloc<std::uint64_t>(kSlots);
  auto puts = cluster.alloc<std::uint64_t>(kNodes * kGrid);
  auto chains = cluster.alloc<std::uint64_t>(kChains);
  auto hid = std::make_shared<std::uint32_t>(0);
  *hid = cluster.registerHandler(
      [chains, hid](AmContext& ctx, std::uint64_t slot, std::uint64_t hops) {
        // Only the home network thread touches this word: plain load/store.
        ctx.heap().storeU64(chains.at(slot),
                            ctx.heap().loadU64(chains.at(slot)) + 1);
        if (hops > 0) ctx.sendAm((ctx.self() + 1) % kNodes, *hid, slot, hops - 1);
      });
  cluster.launchAll(kGrid, kWg, [&](std::uint32_t n, simt::WorkItem& wi) {
    const std::uint64_t gid = wi.globalId();
    cluster.node(n).shmemInc(wi, std::uint32_t((n + gid) % kNodes),
                             counters.at(gid % kSlots));
    cluster.node(n).shmemPut(wi, (n + 1) % kNodes, puts.at(n * kGrid + gid),
                             (std::uint64_t(n) << 32) | gid);
    cluster.node(n).shmemAm(wi, (n + 1) % kNodes, *hid, gid % kChains, kHops,
                            /*active=*/gid < kChains);
  });
  RunResult r;
  r.stats = cluster.runStats();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    auto& heap = cluster.node(n).heap();
    for (std::uint64_t i = 0; i < kSlots; ++i)
      r.heap.push_back(heap.loadU64(counters.at(i)));
    for (std::uint64_t i = 0; i < kChains; ++i)
      r.heap.push_back(heap.loadU64(chains.at(i)));
    for (std::uint64_t i = 0; i < kNodes * kGrid; ++i)
      r.heap.push_back(heap.loadU64(puts.at(i)));
  }
  return r;
}

/// Fault-free PerfectFabric run: the ground truth every faulty run must hit.
const RunResult& baseline() {
  static const RunResult r = runWorkload(base());
  return r;
}

TEST(Fault, BaselineWorkloadIsSelfConsistent) {
  const RunResult& b = baseline();
  const std::uint64_t perNode = kSlots + kChains + kNodes * kGrid;
  ASSERT_EQ(b.heap.size(), std::size_t(kNodes * perNode));
  // Increments: kNodes * kGrid total, spread over kSlots words per node.
  std::uint64_t incs = 0, chainHits = 0;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    for (std::uint64_t i = 0; i < kSlots; ++i)
      incs += b.heap[n * perNode + i];
    for (std::uint64_t i = 0; i < kChains; ++i)
      chainHits += b.heap[n * perNode + kSlots + i];
  }
  EXPECT_EQ(incs, kNodes * kGrid);
  // Each chain runs its first handler plus kHops forwarded ones.
  EXPECT_EQ(chainHits, kNodes * kChains * (kHops + 1));
  // PUTs: node m holds exactly the values written by node (m+3)%4.
  for (std::uint32_t m = 0; m < kNodes; ++m) {
    const std::uint32_t writer = (m + kNodes - 1) % kNodes;
    for (std::uint64_t g = 0; g < kGrid; ++g) {
      EXPECT_EQ(b.heap[m * perNode + kSlots + kChains + writer * kGrid + g],
                (std::uint64_t(writer) << 32) | g);
    }
  }
}

TEST(Fault, ReliabilityOnPerfectWireIsExact) {
  ClusterConfig c = base();
  c.reliability.enabled = true;
  const RunResult r = runWorkload(c);
  EXPECT_EQ(r.heap, baseline().heap);
  EXPECT_GT(r.stats.acks_sent, 0u);
  EXPECT_GT(r.stats.acks, 0u);
  EXPECT_EQ(r.stats.injected_drops, 0u);
  // App-level traffic must match the fault-free run (framing and ACKs are
  // wire-level overhead, invisible up here).
  EXPECT_EQ(r.stats.net_messages, baseline().stats.net_messages);
}

TEST(Fault, SweepSeedsAndMixesBitIdentical) {
  struct Mix {
    const char* name;
    net::FaultConfig fault;
  };
  net::FaultConfig full;  // the acceptance mix: everything at once
  full.drop_prob = 0.05;
  full.dup_prob = 0.05;
  full.reorder_prob = 0.25;
  full.reorder_window = 8;
  full.delay_prob = 0.5;
  full.delay_min = std::chrono::microseconds(1);
  full.delay_max = std::chrono::microseconds(50);
  net::FaultConfig dropHeavy;
  dropHeavy.drop_prob = 0.10;
  net::FaultConfig dupReorder;
  dupReorder.dup_prob = 0.10;
  dupReorder.reorder_prob = 0.5;
  const Mix mixes[] = {{"full", full},
                       {"dropHeavy", dropHeavy},
                       {"dupReorder", dupReorder}};
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const Mix& mix : mixes) {
      SCOPED_TRACE(std::string(mix.name) + " seed " + std::to_string(seed));
      ClusterConfig c = base();
      c.fault = mix.fault;
      c.fault.seed = seed;
      c.reliability = fastReliability();
      const RunResult r = runWorkload(c);
      EXPECT_EQ(r.heap, baseline().heap);
      EXPECT_GT(r.stats.acks, 0u);
      if (mix.fault.drop_prob > 0) {
        EXPECT_GT(r.stats.injected_drops, 0u);
        EXPECT_GT(r.stats.retransmits, 0u);
      }
      if (mix.fault.dup_prob > 0) {
        EXPECT_GT(r.stats.injected_dups, 0u);
        EXPECT_GT(r.stats.dup_drops, 0u);
      }
    }
  }
}

TEST(Fault, DropsWithoutReliabilityFailFastWithDiagnostic) {
  // An unreliable wire under a quiet() that counts sends must wedge — the
  // deadline turns the hang into a structured post-mortem.
  ClusterConfig c = base();
  c.fault.seed = 7;
  c.fault.drop_prob = 0.3;
  c.quiet_deadline = std::chrono::milliseconds(1500);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    runWorkload(c);
    FAIL() << "quiet() should have hit its deadline";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quiet deadline"), std::string::npos) << what;
    EXPECT_NE(what.find("in flight"), std::string::npos) << what;
    EXPECT_NE(what.find("dropped"), std::string::npos) << what;
    EXPECT_NE(what.find("aggregator"), std::string::npos) << what;
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(Fault, QuietDeadlineDumpNamesStalledLinkAndSequenceRange) {
  // With the reliability layer on, the deadline post-mortem must go beyond
  // "something is in flight": it names the stalled link and the unacked
  // sequence range it still owes, straight from the metrics registry.
  ClusterConfig c = base();
  c.fault.seed = 17;
  c.fault.partitions.push_back(
      {0, 1, std::chrono::microseconds(0), std::chrono::seconds(60)});
  c.reliability = fastReliability();
  c.reliability.max_retries = 1000000;  // never exhausts: the deadline fires
  c.quiet_deadline = std::chrono::milliseconds(1500);
  Cluster cluster(c);
  auto slot = cluster.alloc<std::uint64_t>(1);
  try {
    cluster.launchAll(32, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
      cluster.node(n).shmemInc(wi, 1, slot.at(0), /*active=*/n == 0);
    });
    FAIL() << "quiet() should have hit its deadline";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quiet deadline"), std::string::npos) << what;
    EXPECT_NE(what.find("stalled link=0->1"), std::string::npos) << what;
    EXPECT_NE(what.find("unacked"), std::string::npos) << what;
    EXPECT_NE(what.find("oldest seq"), std::string::npos) << what;
    EXPECT_NE(what.find("next seq"), std::string::npos) << what;
  }
}

TEST(Fault, PartitionWindowHealsThroughRetransmit) {
  // Link 0->1 blacked out for the first 800 ms (long enough that the first
  // sends land inside the window even under sanitizer-slowed start-up):
  // retransmission must carry everything across once it lifts, exactly.
  ClusterConfig c = base();
  c.fault.seed = 11;
  c.fault.partitions.push_back(
      {0, 1, std::chrono::microseconds(0), std::chrono::microseconds(800000)});
  c.reliability = fastReliability();
  c.reliability.max_retries = 500;  // paced by rto_max: outlives the window
  const RunResult r = runWorkload(c);
  EXPECT_EQ(r.heap, baseline().heap);
  EXPECT_GT(r.stats.retransmits, 0u);
  EXPECT_GT(r.stats.injected_drops, 0u);
}

TEST(Fault, ExhaustedRetryBudgetSurfacesLinkFailure) {
  // A partition outliving the retry budget must surface as a structured
  // LinkFailureError naming the link — not as a hang or silent loss.
  ClusterConfig c = base();
  c.fault.seed = 13;
  c.fault.partitions.push_back(
      {0, 1, std::chrono::microseconds(0), std::chrono::seconds(10)});
  c.reliability.enabled = true;
  c.reliability.rto_base = std::chrono::microseconds(200);
  c.reliability.rto_max = std::chrono::microseconds(1000);
  c.reliability.max_retries = 4;
  c.quiet_deadline = std::chrono::milliseconds(30000);
  Cluster cluster(c);
  auto slot = cluster.alloc<std::uint64_t>(1);
  try {
    // Only node 0 sends, only toward node 1: the failing link is unambiguous.
    cluster.launchAll(32, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
      cluster.node(n).shmemInc(wi, 1, slot.at(0), /*active=*/n == 0);
    });
    FAIL() << "expected LinkFailureError";
  } catch (const net::LinkFailureError& e) {
    EXPECT_EQ(e.info().src, 0u);
    EXPECT_EQ(e.info().dst, 1u);
    EXPECT_GE(e.info().retries, 4u);
    EXPECT_GE(e.info().oldest_seq, 1u);
  }
}

// --- GRAVEL_FAULT_* environment overrides ----------------------------------

TEST(Fault, EnvOverridesParseValidValuesAndIgnoreGarbage) {
  ASSERT_EQ(::setenv("GRAVEL_FAULT_DROP", "0.25", 1), 0);
  ASSERT_EQ(::setenv("GRAVEL_FAULT_DUP", "not-a-number", 1), 0);
  ASSERT_EQ(::setenv("GRAVEL_FAULT_REORDER", "1.5", 1), 0);  // out of [0,1]
  ASSERT_EQ(::setenv("GRAVEL_FAULT_SEED", "42", 1), 0);
  net::FaultConfig f;
  EXPECT_TRUE(f.applyEnvOverrides());
  ::unsetenv("GRAVEL_FAULT_DROP");
  ::unsetenv("GRAVEL_FAULT_DUP");
  ::unsetenv("GRAVEL_FAULT_REORDER");
  ::unsetenv("GRAVEL_FAULT_SEED");
  EXPECT_DOUBLE_EQ(f.drop_prob, 0.25);
  EXPECT_DOUBLE_EQ(f.dup_prob, 0.0);      // unparsable: ignored
  EXPECT_DOUBLE_EQ(f.reorder_prob, 0.0);  // out of range: ignored
  EXPECT_EQ(f.seed, 42u);

  net::FaultConfig untouched;
  EXPECT_FALSE(untouched.applyEnvOverrides());
  EXPECT_DOUBLE_EQ(untouched.drop_prob, 0.0);
  EXPECT_EQ(untouched.seed, 1u);
}

TEST(Fault, EnvOverridesReachTheClusterWire) {
  // The Cluster ctor applies the overrides before choosing its wire, so
  // GRAVEL_FAULT_* alone turns a perfect-wire config faulty — and with the
  // reliability layer on, the run still converges bit-exactly.
  ASSERT_EQ(::setenv("GRAVEL_FAULT_DROP", "0.05", 1), 0);
  ASSERT_EQ(::setenv("GRAVEL_FAULT_SEED", "9", 1), 0);
  ClusterConfig c = base();
  c.reliability = fastReliability();
  const RunResult r = runWorkload(c);
  ::unsetenv("GRAVEL_FAULT_DROP");
  ::unsetenv("GRAVEL_FAULT_SEED");
  EXPECT_EQ(r.heap, baseline().heap);
  EXPECT_GT(r.stats.injected_drops, 0u);
  EXPECT_GT(r.stats.retransmits, 0u);
}

// --- Graceful degradation (FailurePolicy::kDegrade) ------------------------

net::ReliabilityConfig degradeReliability() {
  net::ReliabilityConfig r = fastReliability();
  r.policy = net::FailurePolicy::kDegrade;
  return r;
}

TEST(Degrade, FailFastLeavesBreakerMachineryInert) {
  // Default policy: no membership, no dead letters, breaker counters zero —
  // the degradation layer must be invisible until asked for.
  ClusterConfig c = base();
  c.reliability.enabled = true;
  Cluster cluster(c);
  EXPECT_EQ(cluster.membership(), nullptr);
  EXPECT_EQ(cluster.deadLetters(), nullptr);
  auto slot = cluster.alloc<std::uint64_t>(1);
  cluster.launchAll(32, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, (n + 1) % kNodes, slot.at(0));
  });
  const ClusterRunStats s = cluster.runStats();
  EXPECT_EQ(s.breaker_trips, 0u);
  EXPECT_EQ(s.probes, 0u);
  EXPECT_EQ(s.stale_data_drops, 0u);
  EXPECT_EQ(s.stale_ack_drops, 0u);
  EXPECT_FALSE(s.degraded.degraded());
  EXPECT_EQ(s.net_resolved, s.net_messages);
}

TEST(Degrade, CrashedNodeCompletesQuietWithExactAccounting) {
  // The acceptance scenario: lose 1 of 8 nodes, finish the run degraded.
  ClusterConfig c = base();
  c.nodes = 8;
  c.reliability = degradeReliability();
  Cluster cluster(c);
  auto slots = cluster.alloc<std::uint64_t>(16);
  // Phase 1: everyone alive, ring traffic, clean quiet.
  cluster.launchAll(64, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, (n + 1) % 8, slots.at(n));
  });
  const ClusterRunStats healthy = cluster.runStats();
  EXPECT_FALSE(healthy.degraded.degraded());
  EXPECT_EQ(healthy.net_resolved, healthy.net_messages);

  cluster.crashNode(7);
  cluster.resetStats();
  // Phase 2: each survivor sends one message per work-item into the dead
  // node and one to a live neighbor. quiet() completes degraded instead of
  // throwing, and every message is accounted: the live half resolves, the
  // dead half dead-letters, nothing is silently lost.
  cluster.launchAll(64, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    const bool live = n != 7;
    cluster.node(n).shmemInc(wi, 7, slots.at(8), live);
    cluster.node(n).shmemInc(wi, (n + 1) % 7, slots.at(9 + n), live);
  });
  const ClusterRunStats s = cluster.runStats();
  ASSERT_EQ(s.degraded.dead_nodes.size(), 1u);
  EXPECT_EQ(s.degraded.dead_nodes[0].node, 7u);
  EXPECT_EQ(s.degraded.dead_nodes[0].epoch, 0u);
  EXPECT_EQ(s.degraded.dead_lettered, 7u * 64u);  // exact: all traffic to 7
  EXPECT_EQ(s.degraded.rejected, 0u);
  EXPECT_EQ(s.degraded.evicted, 0u);
  EXPECT_EQ(s.net_resolved + s.degraded.dead_lettered, s.net_messages);
  // The live half really landed; the dead node's heap was never touched.
  for (std::uint32_t n = 0; n < 7; ++n)
    EXPECT_EQ(cluster.node((n + 1) % 7).heap().loadU64(slots.at(9 + n)), 64u);
  EXPECT_EQ(cluster.node(7).heap().loadU64(slots.at(8)), 0u);
}

TEST(Degrade, PartitionTripsBreakerAndQuietCompletes) {
  // The exact setup that makes fail_fast throw LinkFailureError — under
  // degrade the breaker trips, the loss is accounted and quiet() returns.
  ClusterConfig c = base();
  c.fault.seed = 13;
  c.fault.partitions.push_back(
      {0, 1, std::chrono::microseconds(0), std::chrono::seconds(30)});
  c.reliability = degradeReliability();
  c.reliability.rto_base = std::chrono::microseconds(200);
  c.reliability.rto_max = std::chrono::microseconds(1000);
  c.reliability.max_retries = 4;
  c.reliability.breaker_cooldown = std::chrono::milliseconds(1);
  Cluster cluster(c);
  auto slot = cluster.alloc<std::uint64_t>(1);
  cluster.launchAll(32, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, 1, slot.at(0), n == 0);
  });
  const ClusterRunStats s = cluster.runStats();
  EXPECT_GE(s.breaker_trips, 1u);
  bool found01 = false;
  for (const auto& tl : s.degraded.tripped_links)
    found01 = found01 || (tl.src == 0 && tl.dst == 1);
  EXPECT_TRUE(found01);
  EXPECT_GE(s.degraded.dead_lettered, 1u);
  EXPECT_TRUE(s.degraded.degraded());
  EXPECT_EQ(s.net_resolved + s.degraded.dead_lettered, s.net_messages);
}

TEST(Degrade, RestartRedeliversDeadLettersUnderNewEpoch) {
  ClusterConfig c = base();
  c.reliability = degradeReliability();
  Cluster cluster(c);
  auto slot = cluster.alloc<std::uint64_t>(1);
  cluster.start();
  cluster.crashNode(1);
  cluster.resetStats();
  cluster.launchAll(64, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, 1, slot.at(0), n == 0);
  });
  ClusterRunStats s = cluster.runStats();
  EXPECT_EQ(s.degraded.dead_lettered, 64u);
  EXPECT_EQ(s.degraded.redelivered, 0u);
  EXPECT_EQ(cluster.node(1).heap().loadU64(slot.at(0)), 0u);

  cluster.restartNode(1);
  cluster.quiet();  // drain the redelivery
  s = cluster.runStats();
  EXPECT_EQ(s.degraded.redelivered, 64u);
  EXPECT_EQ(s.degraded.dead_lettered, 64u);
  EXPECT_TRUE(s.degraded.dead_nodes.empty());
  // Redelivered messages count as sent again, so conservation still closes.
  EXPECT_EQ(s.net_resolved + s.degraded.dead_lettered, s.net_messages);
  EXPECT_EQ(cluster.node(1).heap().loadU64(slot.at(0)), 64u);
  ASSERT_NE(cluster.membership(), nullptr);
  EXPECT_EQ(cluster.membership()->epoch(1), 1u);
  EXPECT_FALSE(cluster.membership()->dead(1));
  // The redelivery's ACK progress reconfirms the node (recovered -> alive);
  // give the last in-flight ACK a moment to land.
  const auto until = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cluster.membership()->health(1) != NodeHealth::kAlive &&
         std::chrono::steady_clock::now() < until)
    std::this_thread::yield();
  EXPECT_EQ(cluster.membership()->health(1), NodeHealth::kAlive);
}

TEST(Degrade, StaleEraWireTrafficIsRejectedAfterRestart) {
  // Fabric-level determinism: drive ReliableFabric directly so the stale
  // frame's rejection is provable, not probabilistic.
  net::PerfectFabric wire(2);
  Membership members(2);
  net::DeadLetterQueue dlq(2, 64);
  net::ReliabilityConfig rc;
  rc.enabled = true;
  rc.policy = net::FailurePolicy::kDegrade;
  net::ReliableFabric rel(wire, rc);
  rel.attachDegrade(&members, &dlq);

  // A frame of the first incarnation is on the wire when the node dies.
  rel.send(0, 1, {NetMessage::put(1, 0, 7)});
  EXPECT_EQ(rel.pendingCount(), 1u);
  ASSERT_TRUE(members.declareDead(1, "test crash"));
  rel.exciseNode(1, /*receiverStopped=*/true);
  EXPECT_EQ(rel.pendingCount(), 0u);
  EXPECT_EQ(dlq.stats().dead_lettered, 1u);  // the owed copy is accounted
  ASSERT_TRUE(members.restart(1, "test restart"));
  rel.resetNode(1);
  EXPECT_EQ(members.epoch(1), 1u);

  // The era-0 data frame must be rejected, not applied under the new epoch.
  net::Delivery d;
  EXPECT_FALSE(rel.tryReceive(1, d));
  EXPECT_EQ(rel.reliabilityStats().stale_data_drops, 1u);

  // A stale ACK must not erase the new incarnation's unacked state.
  rel.send(0, 1, {NetMessage::put(1, 8, 9)});  // seq 1 under the new era
  wire.send(1, 0, {NetMessage::control(0, ControlKind::kAck, 0, 1, 0, 0)});
  EXPECT_FALSE(rel.tryReceive(0, d));  // absorbs (and rejects) the stale ACK
  EXPECT_EQ(rel.reliabilityStats().stale_ack_drops, 1u);
  EXPECT_EQ(rel.pendingCount(), 1u);  // still owed

  // Redelivery pays the dead-lettered batch back under the new era; both
  // current-era messages arrive exactly once.
  rel.redeliver(1);
  EXPECT_EQ(dlq.stats().stored, 0u);
  std::uint64_t puts = 0;
  while (rel.tryReceive(1, d)) {
    for (const NetMessage& m : d.messages)
      if (m.command() == Command::kPut) ++puts;
    rel.markResolved(1, d);
  }
  EXPECT_EQ(puts, 2u);
  while (rel.tryReceive(0, d)) {
  }  // drain ACKs back to the sender
  EXPECT_TRUE(rel.quiescent());
  EXPECT_EQ(dlq.stats().redelivered, 1u);
  EXPECT_EQ(rel.reliabilityStats().stale_data_drops, 1u);  // no new ones
}

TEST(Degrade, AdmissionControlRejectsWhenDeadDestinationDlqIsFull) {
  ClusterConfig c = base();
  c.reliability = degradeReliability();
  c.reliability.dlq_capacity = 4;
  Cluster cluster(c);
  auto slot = cluster.alloc<std::uint64_t>(1);
  cluster.start();
  cluster.crashNode(1);
  cluster.resetStats();
  // Phase A fills the dead destination's bounded store. How the 16 ops
  // split between dead-letter and enqueue rejection depends on aggregator
  // timing, but the split itself must be exact and the store must saturate
  // at its bound.
  cluster.launchAll(16, 16, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, 1, slot.at(0), n == 0);
  });
  const ClusterRunStats a = cluster.runStats();
  EXPECT_EQ(a.degraded.dead_lettered + a.degraded.rejected, 16u);
  EXPECT_GE(a.degraded.dead_lettered, 4u);
  EXPECT_EQ(cluster.deadLetters()->storedFor(1), 4u);
  EXPECT_EQ(a.net_resolved + a.degraded.dead_lettered, a.net_messages);

  cluster.resetStats();
  // Phase B: the store is full, so every further op toward the dead node is
  // refused at enqueue — pushback, not an unbounded queue.
  cluster.launchAll(16, 16, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, 1, slot.at(0), n == 0);
  });
  const ClusterRunStats b = cluster.runStats();
  EXPECT_EQ(b.degraded.rejected, 16u);
  EXPECT_EQ(b.degraded.dead_lettered, 0u);
  EXPECT_EQ(b.net_messages, 0u);
  EXPECT_EQ(cluster.deadLetters()->storedFor(1), 4u);
}

TEST(Degrade, QuietDeadlinePostMortemSeparatesExcisionFromStall) {
  // A dead node's silence is by design; a live link's stall is the actual
  // problem. The deadline post-mortem must not conflate the two.
  ClusterConfig c = base();
  c.fault.seed = 17;
  c.fault.partitions.push_back(
      {0, 2, std::chrono::microseconds(0), std::chrono::seconds(60)});
  c.reliability = degradeReliability();
  c.reliability.max_retries = 1000000;  // the stalled link never trips
  c.quiet_deadline = std::chrono::milliseconds(1500);
  Cluster cluster(c);
  auto slot = cluster.alloc<std::uint64_t>(1);
  cluster.start();
  cluster.crashNode(3);
  try {
    cluster.launchAll(32, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
      cluster.node(n).shmemInc(wi, 2, slot.at(0), n == 0);
    });
    FAIL() << "quiet() should have hit its deadline";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quiet deadline"), std::string::npos) << what;
    // The live stalled link is reported as a stall...
    EXPECT_NE(what.find("stalled link=0->2"), std::string::npos) << what;
    // ...while the excised node is explicitly a different situation.
    EXPECT_NE(what.find("node 3 excised by failure policy (dead, epoch 0)"),
              std::string::npos)
        << what;
  }
}

TEST(Degrade, FlightRecorderCarriesHealthBreakersAndDeadLetters) {
  ClusterConfig c = base();
  c.reliability = degradeReliability();
  Cluster cluster(c);
  cluster.start();
  cluster.crashNode(2);
  std::ostringstream os;
  cluster.writeFlightRecorder(os, "chaos-inspection");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"health\""), std::string::npos);
  EXPECT_NE(json.find("\"dead\""), std::string::npos);
  EXPECT_NE(json.find("\"breakers\""), std::string::npos);
  EXPECT_NE(json.find("\"dead_letter\""), std::string::npos);
}

}  // namespace
}  // namespace gravel::rt
