// Fault-injection suite: the reliability sublayer must restore exactly-once
// semantics on a hostile wire, and the quiet protocol must fail fast (with a
// usable diagnostic) instead of hanging when it cannot.
//
// The workload mixes the three Gravel primitives so every delivery bug has a
// witness: PUTs to per-writer-unique addresses (duplicates or losses change
// the heap), all-to-all atomic increments (commutative, so only exactly-once
// delivery reproduces the count), and active-message chains where handlers
// forward follow-on messages (exercises quiet()'s handling of work created
// mid-drain). Every operation commutes or targets a unique address, so any
// two exactly-once executions — whatever the adversary reordered or
// retransmitted — must leave bit-identical heaps.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "runtime/cluster.hpp"

namespace gravel::rt {
namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kGrid = 256;   // work-items per node
constexpr std::uint32_t kWg = 32;
constexpr std::uint64_t kSlots = 8;    // increment targets
constexpr std::uint64_t kChains = 8;   // AM chains started per node
constexpr std::uint64_t kHops = 3;     // forwards after the first handler

ClusterConfig base() {
  ClusterConfig c;
  c.nodes = kNodes;
  c.heap_bytes = 1 << 20;
  c.gpu_queue_bytes = 1 << 13;
  c.pernode_queue_bytes = 512;  // tiny batches -> many wire messages to hit
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  c.quiet_deadline = std::chrono::milliseconds(60000);
  return c;
}

/// Short timeouts so retransmission-heavy tests converge quickly.
net::ReliabilityConfig fastReliability() {
  net::ReliabilityConfig r;
  r.enabled = true;
  r.rto_base = std::chrono::microseconds(500);
  r.rto_max = std::chrono::microseconds(8000);
  return r;
}

struct RunResult {
  std::vector<std::uint64_t> heap;  ///< every word the workload can touch
  ClusterRunStats stats;
};

RunResult runWorkload(const ClusterConfig& c) {
  Cluster cluster(c);
  auto counters = cluster.alloc<std::uint64_t>(kSlots);
  auto puts = cluster.alloc<std::uint64_t>(kNodes * kGrid);
  auto chains = cluster.alloc<std::uint64_t>(kChains);
  auto hid = std::make_shared<std::uint32_t>(0);
  *hid = cluster.registerHandler(
      [chains, hid](AmContext& ctx, std::uint64_t slot, std::uint64_t hops) {
        // Only the home network thread touches this word: plain load/store.
        ctx.heap().storeU64(chains.at(slot),
                            ctx.heap().loadU64(chains.at(slot)) + 1);
        if (hops > 0) ctx.sendAm((ctx.self() + 1) % kNodes, *hid, slot, hops - 1);
      });
  cluster.launchAll(kGrid, kWg, [&](std::uint32_t n, simt::WorkItem& wi) {
    const std::uint64_t gid = wi.globalId();
    cluster.node(n).shmemInc(wi, std::uint32_t((n + gid) % kNodes),
                             counters.at(gid % kSlots));
    cluster.node(n).shmemPut(wi, (n + 1) % kNodes, puts.at(n * kGrid + gid),
                             (std::uint64_t(n) << 32) | gid);
    cluster.node(n).shmemAm(wi, (n + 1) % kNodes, *hid, gid % kChains, kHops,
                            /*active=*/gid < kChains);
  });
  RunResult r;
  r.stats = cluster.runStats();
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    auto& heap = cluster.node(n).heap();
    for (std::uint64_t i = 0; i < kSlots; ++i)
      r.heap.push_back(heap.loadU64(counters.at(i)));
    for (std::uint64_t i = 0; i < kChains; ++i)
      r.heap.push_back(heap.loadU64(chains.at(i)));
    for (std::uint64_t i = 0; i < kNodes * kGrid; ++i)
      r.heap.push_back(heap.loadU64(puts.at(i)));
  }
  return r;
}

/// Fault-free PerfectFabric run: the ground truth every faulty run must hit.
const RunResult& baseline() {
  static const RunResult r = runWorkload(base());
  return r;
}

TEST(Fault, BaselineWorkloadIsSelfConsistent) {
  const RunResult& b = baseline();
  const std::uint64_t perNode = kSlots + kChains + kNodes * kGrid;
  ASSERT_EQ(b.heap.size(), std::size_t(kNodes * perNode));
  // Increments: kNodes * kGrid total, spread over kSlots words per node.
  std::uint64_t incs = 0, chainHits = 0;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    for (std::uint64_t i = 0; i < kSlots; ++i)
      incs += b.heap[n * perNode + i];
    for (std::uint64_t i = 0; i < kChains; ++i)
      chainHits += b.heap[n * perNode + kSlots + i];
  }
  EXPECT_EQ(incs, kNodes * kGrid);
  // Each chain runs its first handler plus kHops forwarded ones.
  EXPECT_EQ(chainHits, kNodes * kChains * (kHops + 1));
  // PUTs: node m holds exactly the values written by node (m+3)%4.
  for (std::uint32_t m = 0; m < kNodes; ++m) {
    const std::uint32_t writer = (m + kNodes - 1) % kNodes;
    for (std::uint64_t g = 0; g < kGrid; ++g) {
      EXPECT_EQ(b.heap[m * perNode + kSlots + kChains + writer * kGrid + g],
                (std::uint64_t(writer) << 32) | g);
    }
  }
}

TEST(Fault, ReliabilityOnPerfectWireIsExact) {
  ClusterConfig c = base();
  c.reliability.enabled = true;
  const RunResult r = runWorkload(c);
  EXPECT_EQ(r.heap, baseline().heap);
  EXPECT_GT(r.stats.acks_sent, 0u);
  EXPECT_GT(r.stats.acks, 0u);
  EXPECT_EQ(r.stats.injected_drops, 0u);
  // App-level traffic must match the fault-free run (framing and ACKs are
  // wire-level overhead, invisible up here).
  EXPECT_EQ(r.stats.net_messages, baseline().stats.net_messages);
}

TEST(Fault, SweepSeedsAndMixesBitIdentical) {
  struct Mix {
    const char* name;
    net::FaultConfig fault;
  };
  net::FaultConfig full;  // the acceptance mix: everything at once
  full.drop_prob = 0.05;
  full.dup_prob = 0.05;
  full.reorder_prob = 0.25;
  full.reorder_window = 8;
  full.delay_prob = 0.5;
  full.delay_min = std::chrono::microseconds(1);
  full.delay_max = std::chrono::microseconds(50);
  net::FaultConfig dropHeavy;
  dropHeavy.drop_prob = 0.10;
  net::FaultConfig dupReorder;
  dupReorder.dup_prob = 0.10;
  dupReorder.reorder_prob = 0.5;
  const Mix mixes[] = {{"full", full},
                       {"dropHeavy", dropHeavy},
                       {"dupReorder", dupReorder}};
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const Mix& mix : mixes) {
      SCOPED_TRACE(std::string(mix.name) + " seed " + std::to_string(seed));
      ClusterConfig c = base();
      c.fault = mix.fault;
      c.fault.seed = seed;
      c.reliability = fastReliability();
      const RunResult r = runWorkload(c);
      EXPECT_EQ(r.heap, baseline().heap);
      EXPECT_GT(r.stats.acks, 0u);
      if (mix.fault.drop_prob > 0) {
        EXPECT_GT(r.stats.injected_drops, 0u);
        EXPECT_GT(r.stats.retransmits, 0u);
      }
      if (mix.fault.dup_prob > 0) {
        EXPECT_GT(r.stats.injected_dups, 0u);
        EXPECT_GT(r.stats.dup_drops, 0u);
      }
    }
  }
}

TEST(Fault, DropsWithoutReliabilityFailFastWithDiagnostic) {
  // An unreliable wire under a quiet() that counts sends must wedge — the
  // deadline turns the hang into a structured post-mortem.
  ClusterConfig c = base();
  c.fault.seed = 7;
  c.fault.drop_prob = 0.3;
  c.quiet_deadline = std::chrono::milliseconds(1500);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    runWorkload(c);
    FAIL() << "quiet() should have hit its deadline";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quiet deadline"), std::string::npos) << what;
    EXPECT_NE(what.find("in flight"), std::string::npos) << what;
    EXPECT_NE(what.find("dropped"), std::string::npos) << what;
    EXPECT_NE(what.find("aggregator"), std::string::npos) << what;
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(Fault, QuietDeadlineDumpNamesStalledLinkAndSequenceRange) {
  // With the reliability layer on, the deadline post-mortem must go beyond
  // "something is in flight": it names the stalled link and the unacked
  // sequence range it still owes, straight from the metrics registry.
  ClusterConfig c = base();
  c.fault.seed = 17;
  c.fault.partitions.push_back(
      {0, 1, std::chrono::microseconds(0), std::chrono::seconds(60)});
  c.reliability = fastReliability();
  c.reliability.max_retries = 1000000;  // never exhausts: the deadline fires
  c.quiet_deadline = std::chrono::milliseconds(1500);
  Cluster cluster(c);
  auto slot = cluster.alloc<std::uint64_t>(1);
  try {
    cluster.launchAll(32, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
      cluster.node(n).shmemInc(wi, 1, slot.at(0), /*active=*/n == 0);
    });
    FAIL() << "quiet() should have hit its deadline";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quiet deadline"), std::string::npos) << what;
    EXPECT_NE(what.find("stalled link=0->1"), std::string::npos) << what;
    EXPECT_NE(what.find("unacked"), std::string::npos) << what;
    EXPECT_NE(what.find("oldest seq"), std::string::npos) << what;
    EXPECT_NE(what.find("next seq"), std::string::npos) << what;
  }
}

TEST(Fault, PartitionWindowHealsThroughRetransmit) {
  // Link 0->1 blacked out for the first 800 ms (long enough that the first
  // sends land inside the window even under sanitizer-slowed start-up):
  // retransmission must carry everything across once it lifts, exactly.
  ClusterConfig c = base();
  c.fault.seed = 11;
  c.fault.partitions.push_back(
      {0, 1, std::chrono::microseconds(0), std::chrono::microseconds(800000)});
  c.reliability = fastReliability();
  c.reliability.max_retries = 500;  // paced by rto_max: outlives the window
  const RunResult r = runWorkload(c);
  EXPECT_EQ(r.heap, baseline().heap);
  EXPECT_GT(r.stats.retransmits, 0u);
  EXPECT_GT(r.stats.injected_drops, 0u);
}

TEST(Fault, ExhaustedRetryBudgetSurfacesLinkFailure) {
  // A partition outliving the retry budget must surface as a structured
  // LinkFailureError naming the link — not as a hang or silent loss.
  ClusterConfig c = base();
  c.fault.seed = 13;
  c.fault.partitions.push_back(
      {0, 1, std::chrono::microseconds(0), std::chrono::seconds(10)});
  c.reliability.enabled = true;
  c.reliability.rto_base = std::chrono::microseconds(200);
  c.reliability.rto_max = std::chrono::microseconds(1000);
  c.reliability.max_retries = 4;
  c.quiet_deadline = std::chrono::milliseconds(30000);
  Cluster cluster(c);
  auto slot = cluster.alloc<std::uint64_t>(1);
  try {
    // Only node 0 sends, only toward node 1: the failing link is unambiguous.
    cluster.launchAll(32, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
      cluster.node(n).shmemInc(wi, 1, slot.at(0), /*active=*/n == 0);
    });
    FAIL() << "expected LinkFailureError";
  } catch (const net::LinkFailureError& e) {
    EXPECT_EQ(e.info().src, 0u);
    EXPECT_EQ(e.info().dst, 1u);
    EXPECT_GE(e.info().retries, 4u);
    EXPECT_GE(e.info().oldest_seq, 1u);
  }
}

}  // namespace
}  // namespace gravel::rt
