// Unit tests for src/common: cache-line math, RNG determinism and
// distribution sanity, counters/statistics, and the table printer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/cacheline.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace gravel {
namespace {

TEST(CacheLine, LinesForRoundsUp) {
  EXPECT_EQ(linesFor(0), 0u);
  EXPECT_EQ(linesFor(1), 1u);
  EXPECT_EQ(linesFor(64), 1u);
  EXPECT_EQ(linesFor(65), 2u);
  EXPECT_EQ(linesFor(128), 2u);
  EXPECT_EQ(linesFor(129), 3u);
}

TEST(CacheLine, CacheAlignedOccupiesWholeLines) {
  EXPECT_EQ(sizeof(CacheAligned<std::uint8_t>), kCacheLineSize);
  EXPECT_EQ(alignof(CacheAligned<std::uint64_t>), kCacheLineSize);
  CacheAligned<int> x(7);
  EXPECT_EQ(*x, 7);
  *x = 9;
  EXPECT_EQ(*x, 9);
}

TEST(Error, CheckThrowsWithLocation) {
  try {
    GRAVEL_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Stats, CounterAccumulatesAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.get(), 40000u);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(Stats, RunningStatTracksMoments) {
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  RunningStat t;
  t.add(10.0);
  s.merge(t);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Stats, EmptyRunningStatIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Stats, Pow2HistogramBuckets) {
  Pow2Histogram h;
  h.add(0);  // bucket 0
  h.add(1);  // [1,2) -> bucket 1
  h.add(2);  // [2,4) -> bucket 2
  h.add(3);
  h.add(1024);  // bucket 11
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
}

TEST(Stats, CounterIsCacheLinePadded) {
  // Counters sit side by side in stats blocks; padding each to a full line
  // is what keeps concurrent add()s from false-sharing.
  static_assert(sizeof(Counter) == kCacheLineSize);
  static_assert(alignof(Counter) == kCacheLineSize);
  Counter c[2];
  const auto a0 = reinterpret_cast<std::uintptr_t>(&c[0]);
  const auto a1 = reinterpret_cast<std::uintptr_t>(&c[1]);
  EXPECT_EQ(a1 - a0, kCacheLineSize);
}

TEST(Stats, ShardedCounterSumsAcrossThreads) {
  ShardedCounter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.get(), 80000u);
  c.add(5);
  EXPECT_EQ(c.get(), 80005u);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(Stats, RunningStatMergeWithEmptySides) {
  RunningStat empty;
  RunningStat full;
  full.add(3.0);
  full.add(7.0);

  RunningStat a = full;
  a.merge(empty);  // empty right side: nothing changes
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);

  RunningStat b;
  b.merge(full);  // empty left side: adopts the other's moments
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
  EXPECT_DOUBLE_EQ(b.min(), 3.0);
  EXPECT_DOUBLE_EQ(b.max(), 7.0);

  RunningStat c;
  c.merge(empty);  // both empty: still reports zeros, not infinities
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.min(), 0.0);
  EXPECT_EQ(c.max(), 0.0);
}

TEST(Stats, Pow2HistogramEdgeCases) {
  Pow2Histogram h;
  h.add(0);  // zero has no leading bit: defined to land in bucket 0
  h.add(1);
  h.add((std::uint64_t(1) << 62));
  h.add(~std::uint64_t(0));  // 2^64-1: beyond kBuckets, saturates to the top
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  // 2^62 has bit index 62 -> raw bucket 63, clamped to kBuckets-1; the max
  // value clamps there too, so saturation accumulates rather than drops.
  EXPECT_EQ(h.bucket(Pow2Histogram::kBuckets - 1), 2u);
}

TEST(Stats, Pow2HistogramQuantileInterpolatesInsideBucket) {
  Pow2Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  for (int i = 0; i < 100; ++i) h.add(8);  // bucket [8,16)
  // All mass in one bucket: the estimate walks linearly across it.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 12.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 16.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Stats, Pow2HistogramQuantileIsMonotonicAcrossBuckets) {
  Pow2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);    // [8,16)
  for (int i = 0; i < 9; ++i) h.add(1000);   // [512,1024)
  h.add(100000);                             // [65536,131072)
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  // p50 sits in the bulk bucket, p99 in the tail — the property the
  // latency bottleneck attribution depends on.
  EXPECT_LT(h.quantile(0.50), 16.0);
  EXPECT_GE(h.quantile(0.99), 512.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 131072.0);
}

TEST(Stats, Pow2HistogramQuantileWithAllMassInOverflowBucket) {
  // Saturated samples all clamp into the top bucket; the quantile estimate
  // must stay inside that bucket's [2^38, 2^39] span instead of walking off
  // the table or dividing by an empty prefix.
  Pow2Histogram h;
  for (int i = 0; i < 10; ++i) h.add(~std::uint64_t(0));
  const double lo = double(std::uint64_t(1) << (Pow2Histogram::kBuckets - 2));
  const double hi = double(std::uint64_t(1) << (Pow2Histogram::kBuckets - 1));
  EXPECT_DOUBLE_EQ(h.quantile(0.0), lo);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), (lo + hi) / 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), hi);
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    EXPECT_GE(h.quantile(q), prev) << "q=" << q;
    prev = h.quantile(q);
  }
}

TEST(Stats, Pow2HistogramQuantileMatchesPythonReplica) {
  // tools/latency_report.py recomputes quantiles from exported bucket
  // arrays with a hand-replicated copy of Pow2Histogram::quantile. Feed the
  // Python side C++-computed expectations over distributions that cover
  // every branch (bucket 0, interpolation, multi-bucket walk, overflow
  // saturation) so the two implementations cannot drift silently.
  if (std::system("python3 -c \"import sys\" > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 not available";

  Pow2Histogram bulk;  // the monotonic test's shape: bulk + tail
  for (int i = 0; i < 90; ++i) bulk.add(10);
  for (int i = 0; i < 9; ++i) bulk.add(1000);
  bulk.add(100000);
  Pow2Histogram zeros;  // mass split across bucket 0 and bucket 1
  for (int i = 0; i < 5; ++i) zeros.add(0);
  for (int i = 0; i < 5; ++i) zeros.add(1);
  Pow2Histogram overflow;  // everything saturates into the top bucket
  for (int i = 0; i < 7; ++i) overflow.add(~std::uint64_t(0));

  const double qs[] = {0.0, 0.25, 0.5, 0.9, 0.99, 1.0};
  const std::string path = ::testing::TempDir() + "pow2_parity_cases.json";
  std::ofstream os(path);
  ASSERT_TRUE(os.is_open());
  os << "{\"cases\":[";
  bool first = true;
  for (const Pow2Histogram* h : {&bulk, &zeros, &overflow}) {
    for (double q : qs) {
      if (!first) os << ",";
      first = false;
      os << "{\"buckets\":[";
      for (int b = 0; b < Pow2Histogram::kBuckets; ++b)
        os << (b ? "," : "") << h->bucket(b);
      char num[64];
      std::snprintf(num, sizeof(num), "%.17g", h->quantile(q));
      os << "],\"q\":" << q << ",\"expected\":" << num << "}";
    }
  }
  os << "]}";
  os.close();

  const std::string cmd = std::string("python3 \"") + GRAVEL_REPO_ROOT +
                          "/tools/latency_report.py\" --parity-check \"" +
                          path + "\" > /dev/null";
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "Python quantile replica diverged from Pow2Histogram::quantile";
  std::remove(path.c_str());
}

TEST(Stats, MetricSetAccumulates) {
  MetricSet a, b;
  a["bytes"] = 10;
  b["bytes"] = 5;
  b["msgs"] = 2;
  a.accumulate(b);
  EXPECT_DOUBLE_EQ(a.at("bytes"), 15.0);
  EXPECT_DOUBLE_EQ(a.at("msgs"), 2.0);
  EXPECT_DOUBLE_EQ(a.at("missing"), 0.0);
  EXPECT_FALSE(a.contains("missing"));
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer-name", "2.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Header and each row end in newline: 2 + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Units, LiteralsAndRates) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_DOUBLE_EQ(gbitsToBytesPerSec(56.0), 7e9);
}

}  // namespace
}  // namespace gravel
