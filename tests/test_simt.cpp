// Tests for the SIMT execution engine: fibers, work-group collectives
// (including the paper's Figure 5b reservation idiom), diverged semantics
// (§5.2), fine-grain barriers (§5.3), scratchpad, and deadlock detection.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "simt/device.hpp"
#include "simt/fiber.hpp"

namespace gravel::simt {
namespace {

DeviceConfig smallConfig(std::uint32_t wf = 4, std::uint32_t wg = 16) {
  DeviceConfig c;
  c.wavefront_width = wf;
  c.max_wg_size = wg;
  c.scratchpad_bytes = 4096;
  return c;
}

TEST(Fiber, RunsBodyToCompletion) {
  Fiber f;
  int x = 0;
  f.reset([&] { x = 42; });
  EXPECT_FALSE(f.resume());
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  Fiber f;
  std::vector<int> trace;
  f.reset([&] {
    trace.push_back(1);
    f.yield();
    trace.push_back(3);
    f.yield();
    trace.push_back(5);
  });
  EXPECT_TRUE(f.resume());
  trace.push_back(2);
  EXPECT_TRUE(f.resume());
  trace.push_back(4);
  EXPECT_FALSE(f.resume());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber f;
  f.reset([&] { EXPECT_EQ(Fiber::current(), &f); });
  f.resume();
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ExceptionsPropagateToResume) {
  Fiber f;
  f.reset([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ReusableAfterFinish) {
  Fiber f;
  int sum = 0;
  for (int i = 0; i < 3; ++i) {
    f.reset([&, i] { sum += i; });
    f.resume();
  }
  EXPECT_EQ(sum, 0 + 1 + 2);
}

TEST(Fiber, DeepCallChainsFitTheStack) {
  Fiber f;
  std::function<int(int)> rec = [&](int n) -> int {
    return n == 0 ? 0 : n + rec(n - 1);
  };
  int out = 0;
  f.reset([&] { out = rec(100); });
  f.resume();
  EXPECT_EQ(out, 5050);
}

TEST(Device, LaunchCoversGridExactlyOnce) {
  Device dev(smallConfig());
  std::vector<int> hits(100, 0);
  dev.launch({100, 16}, [&](WorkItem& wi) { ++hits[wi.globalId()]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(dev.stats().lanes_executed, 100u);
  EXPECT_EQ(dev.stats().workgroups_executed, 7u);  // 6 full + 1 partial(4)
}

TEST(Device, IdentityArithmetic) {
  Device dev(smallConfig(/*wf=*/4, /*wg=*/16));
  dev.launch({32, 16}, [&](WorkItem& wi) {
    EXPECT_EQ(wi.localId(), wi.globalId() % 16);
    EXPECT_EQ(wi.workGroupId(), wi.globalId() / 16);
    EXPECT_EQ(wi.laneId(), wi.localId() % 4);
    EXPECT_EQ(wi.wavefrontId(), wi.localId() / 4);
    EXPECT_EQ(wi.gridSize(), 32u);
  });
}

TEST(Device, BarrierSeparatesPhases) {
  Device dev(smallConfig());
  std::vector<int> data(16, 0);
  std::vector<int> snapshot(16, -1);
  dev.launch({16, 16}, [&](WorkItem& wi) {
    data[wi.localId()] = int(wi.localId());
    wi.wgBarrier();
    // After the barrier every lane must see every other lane's write.
    int sum = std::accumulate(data.begin(), data.end(), 0);
    snapshot[wi.localId()] = sum;
  });
  for (int s : snapshot) EXPECT_EQ(s, 120);  // 0+1+...+15
}

TEST(Device, ReduceOpsMatchSerial) {
  Device dev(smallConfig());
  dev.launch({16, 16}, [&](WorkItem& wi) {
    const std::uint64_t v = wi.localId() * 3 + 1;
    EXPECT_EQ(wi.wgReduceSum(v), 16u * 1 + 3u * 120);
    EXPECT_EQ(wi.wgReduceMax(v), 15u * 3 + 1);
    EXPECT_EQ(wi.wgReduceMin(v), 1u);
  });
}

TEST(Device, PrefixSumIsExclusiveInLaneOrder) {
  Device dev(smallConfig());
  std::vector<std::uint64_t> out(16);
  dev.launch({16, 16}, [&](WorkItem& wi) {
    out[wi.localId()] = wi.wgPrefixSum(wi.localId() + 1);
  });
  std::uint64_t running = 0;
  for (std::uint32_t l = 0; l < 16; ++l) {
    EXPECT_EQ(out[l], running);
    running += l + 1;
  }
}

TEST(Device, BroadcastFromChosenLane) {
  Device dev(smallConfig());
  dev.launch({16, 16}, [&](WorkItem& wi) {
    const std::uint64_t got = wi.wgBroadcast(777, wi.localId() == 5);
    EXPECT_EQ(got, 777u);
  });
}

// The Figure 5b idiom: leader election by reduce-max over lane offsets,
// per-lane offsets by prefix-sum, one fetch-add by the leader, broadcast of
// the base. This is the exact reservation sequence Gravel's device API uses.
TEST(Device, Figure5bReservationIdiom) {
  Device dev(smallConfig(4, 16));
  std::atomic<std::uint64_t> writeIdx{2};  // matches the figure's sample run
  std::vector<std::uint64_t> slot(64, 0);
  dev.launch({16, 16}, [&](WorkItem& wi) {
    const std::uint64_t lid = wi.localId();
    const std::uint64_t max = wi.wgReduceMax(lid);
    const std::uint64_t myOff = wi.wgPrefixSum(1);
    std::uint64_t qOff = 0;
    if (lid == max) qOff = writeIdx.fetch_add(myOff + 1);
    const std::uint64_t base = wi.wgReduceSum(qOff);
    slot[base + myOff] = wi.globalId() + 1;
  });
  // All sixteen lanes landed contiguously starting at index 2.
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(slot[2 + i], i + 1);
  EXPECT_EQ(writeIdx.load(), 18u);
}

// §5.2 diverged semantics via software predication: inactive lanes submit
// identities; the result reflects active lanes only.
TEST(Device, DivergedReduceIgnoresInactiveLanes) {
  Device dev(smallConfig());
  dev.launch({16, 16}, [&](WorkItem& wi) {
    const bool active = wi.localId() % 3 == 0;  // lanes 0,3,6,9,12,15
    const std::uint64_t v = wi.localId() + 100;
    const std::uint64_t mx = wi.wgReduceMax(active ? v : 0, active);
    EXPECT_EQ(mx, 115u);
    const std::uint64_t sum = wi.wgReduceSum(active ? v : 0, active);
    EXPECT_EQ(sum, 100u + 103 + 106 + 109 + 112 + 115);
  });
  EXPECT_LT(dev.stats().activeFraction(), 1.0);
}

TEST(Device, DivergedPrefixSumCountsActiveLanesOnly) {
  Device dev(smallConfig());
  std::vector<std::uint64_t> out(16, 999);
  dev.launch({16, 16}, [&](WorkItem& wi) {
    const bool active = wi.localId() >= 8;
    out[wi.localId()] = wi.wgPrefixSum(active ? 1 : 0, active);
  });
  for (std::uint32_t l = 0; l < 8; ++l) EXPECT_EQ(out[l], 0u);
  for (std::uint32_t l = 8; l < 16; ++l) EXPECT_EQ(out[l], l - 8);
}

TEST(Device, MismatchedCollectiveOpsThrow) {
  Device dev(smallConfig(4, 4));
  EXPECT_THROW(dev.launch({4, 4},
                          [&](WorkItem& wi) {
                            if (wi.localId() % 2 == 0)
                              wi.wgReduceSum(1);
                            else
                              wi.wgReduceMax(1);
                          }),
               Error);
}

TEST(Device, EarlyExitDuringCollectiveDeadlocks) {
  Device dev(smallConfig(4, 4));
  EXPECT_THROW(dev.launch({4, 4},
                          [&](WorkItem& wi) {
                            if (wi.localId() == 3) return;  // exits early
                            wi.wgBarrier();
                          }),
               DeadlockError);
}

TEST(Device, WgReconvergenceModeCompletesOverLiveLanes) {
  // Same kernel as above, but with §5.3 thread-block-compaction semantics:
  // the exited lane stops participating and the barrier completes.
  auto cfg = smallConfig(4, 4);
  cfg.wg_reconvergence = true;
  Device dev(cfg);
  int completions = 0;
  dev.launch({4, 4}, [&](WorkItem& wi) {
    if (wi.localId() == 3) return;
    wi.wgBarrier();
    ++completions;
  });
  EXPECT_EQ(completions, 3);
}

TEST(Device, ScratchpadSharedWithinGroup) {
  Device dev(smallConfig());
  dev.launch({32, 16}, [&](WorkItem& wi) {
    auto* buf = wi.scratchAlloc<std::uint32_t>(16);
    buf[wi.localId()] = std::uint32_t(wi.localId() * 2);
    wi.wgBarrier();
    EXPECT_EQ(buf[(wi.localId() + 1) % 16], ((wi.localId() + 1) % 16) * 2);
  });
  EXPECT_GE(dev.stats().scratchpad_high_water, 16u * 4);
}

TEST(Device, ScratchpadOverflowThrows) {
  Device dev(smallConfig());
  EXPECT_THROW(
      dev.launch({16, 16},
                 [&](WorkItem& wi) { wi.scratchAlloc<std::byte>(1 << 20); }),
      Error);
}

TEST(Device, ScratchpadResetBetweenGroups) {
  Device dev(smallConfig());
  // Each group allocates half the scratchpad; if the arena were not reset
  // per group this would overflow at the second group.
  dev.launch({64, 16},
             [&](WorkItem& wi) { wi.scratchAlloc<std::byte>(2048); });
  EXPECT_EQ(dev.stats().scratchpad_high_water, 2048u);
}

// §5.3 fine-grain barriers: lanes leave as their (unequal) work runs out;
// remaining members keep synchronizing. This is Figure 10c / Figure 11d.
TEST(Device, FbarSupportsShrinkingMembership) {
  Device dev(smallConfig(4, 8));
  std::vector<int> iterations(8, 0);
  dev.launch({8, 8}, [&](WorkItem& wi) {
    auto& fb = wi.fbar();
    wi.fbarJoin(fb);
    const int myWork = int(wi.localId()) + 1;  // lane l does l+1 rounds
    for (int i = 0; i < myWork; ++i) {
      ++iterations[wi.localId()];
      if (i + 1 == myWork) {
        wi.fbarLeave(fb);
      } else {
        wi.fbarBarrier(fb);
      }
    }
  });
  for (std::uint32_t l = 0; l < 8; ++l) EXPECT_EQ(iterations[l], int(l) + 1);
}

TEST(Device, FbarCollectivesUseMembersOnly) {
  Device dev(smallConfig(4, 8));
  dev.launch({8, 8}, [&](WorkItem& wi) {
    auto& fb = wi.fbar(1);
    if (wi.localId() < 4) {
      wi.fbarJoin(fb);
      const std::uint64_t sum = wi.fbarReduceSum(fb, wi.localId());
      EXPECT_EQ(sum, 0u + 1 + 2 + 3);
      const std::uint64_t off = wi.fbarPrefixSum(fb, 1);
      EXPECT_EQ(off, wi.localId());
      wi.fbarLeave(fb);
    }
  });
}

TEST(Device, FbarExitWhileJoinedThrows) {
  Device dev(smallConfig(4, 4));
  EXPECT_THROW(dev.launch({4, 4},
                          [&](WorkItem& wi) {
                            wi.fbarJoin(wi.fbar());
                            // forgot leavefbar
                          }),
               DeadlockError);
}

TEST(Device, NonMemberFbarCollectiveThrows) {
  Device dev(smallConfig(4, 4));
  EXPECT_THROW(dev.launch({4, 4},
                          [&](WorkItem& wi) {
                            auto& fb = wi.fbar();
                            if (wi.localId() == 0) wi.fbarJoin(fb);
                            wi.fbarBarrier(fb);  // lanes 1..3 never joined
                          }),
               Error);
}

TEST(Device, PartialTrailingGroupConverges) {
  Device dev(smallConfig(4, 16));
  std::vector<std::uint64_t> sums;
  std::mutex m;
  dev.launch({20, 16}, [&](WorkItem& wi) {  // second group has 4 lanes
    const std::uint64_t s = wi.wgReduceSum(1);
    if (wi.localId() == 0) {
      std::scoped_lock lk(m);
      sums.push_back(s);
    }
  });
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_EQ(sums[0], 16u);
  EXPECT_EQ(sums[1], 4u);
}

TEST(Device, StatsCountCollectives) {
  Device dev(smallConfig());
  dev.launch({16, 16}, [&](WorkItem& wi) {
    wi.wgBarrier();
    wi.wgReduceSum(1);
  });
  EXPECT_EQ(dev.stats().collective_ops, 2u);
  EXPECT_EQ(dev.stats().collective_arrivals, 32u);
}

// Property sweep: Figure 5b reservation must produce a dense permutation of
// offsets for any mix of active lanes, any wavefront width, any group size.
struct ReserveParam {
  std::uint32_t wf;
  std::uint32_t wg;
  std::uint32_t activeMod;  // lane active iff localId % activeMod == 0
};

class DivergedReserve : public ::testing::TestWithParam<ReserveParam> {};

TEST_P(DivergedReserve, ActiveLanesGetDenseOffsets) {
  const auto p = GetParam();
  DeviceConfig cfg;
  cfg.wavefront_width = p.wf;
  cfg.max_wg_size = p.wg;
  Device dev(cfg);
  std::atomic<std::uint64_t> idx{0};
  std::vector<std::uint64_t> taken(p.wg, ~0ull);
  dev.launch({p.wg, p.wg}, [&](WorkItem& wi) {
    const bool active = wi.localId() % p.activeMod == 0;
    const std::uint64_t lid = wi.localId();
    const std::uint64_t leader = wi.wgReduceMax(lid, active);
    const std::uint64_t myOff = wi.wgPrefixSum(active ? 1 : 0, active);
    const std::uint64_t total = wi.wgReduceSum(active ? 1 : 0, active);
    std::uint64_t qOff = 0;
    if (active && lid == leader) qOff = idx.fetch_add(total);
    const std::uint64_t base = wi.wgReduceSum(qOff);
    if (active) taken[base + myOff] = lid;
  });
  const std::uint64_t expected = (p.wg + p.activeMod - 1) / p.activeMod;
  EXPECT_EQ(idx.load(), expected);
  for (std::uint64_t i = 0; i < expected; ++i) {
    EXPECT_NE(taken[i], ~0ull) << "offset " << i << " unused";
    EXPECT_EQ(taken[i] % p.activeMod, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DivergedReserve,
    ::testing::Values(ReserveParam{4, 16, 1}, ReserveParam{4, 16, 2},
                      ReserveParam{4, 16, 5}, ReserveParam{8, 64, 3},
                      ReserveParam{8, 64, 7}, ReserveParam{16, 64, 1},
                      ReserveParam{64, 256, 9}, ReserveParam{64, 256, 64}));

}  // namespace
}  // namespace gravel::simt
