// Chaos soak: the paper workloads (§6) run under the degrade failure policy
// while nodes are crashed and restarted mid-flight. The suite does not ask
// the apps to validate through a crash — losing a node mid-iteration legally
// loses that incarnation's updates — it asks the *runtime* to keep every
// promise that makes the loss accountable:
//
//   - quiet() completes instead of throwing (degraded, not wedged),
//   - conservation closes at every quiescent point:
//         net_resolved + dead_lettered == net_messages,
//   - a recovery pass (restart the dead, drain the dead-letter queue)
//     returns the cluster to all-alive with nothing still parked,
//   - only injected victims ever die (wire faults from the CI matrix heal
//     through retransmission, never through the breaker).
//
// CI runs this binary under the GRAVEL_FAULT_* matrix (see ci.yml), so the
// same scenarios soak with drops/dups/reorders layered under the crashes.
// On failure, set GRAVEL_CHAOS_ARTIFACT_DIR to capture flight-recorder
// dumps for the post-mortem.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/gups.hpp"
#include "apps/kmeans.hpp"
#include "apps/pagerank.hpp"
#include "graph/generators.hpp"
#include "runtime/cluster.hpp"

namespace gravel::apps {
namespace {

rt::ClusterConfig chaosCluster(std::uint32_t nodes) {
  rt::ClusterConfig c;
  c.nodes = nodes;
  c.heap_bytes = 8u << 20;
  c.gpu_queue_bytes = 1 << 14;
  c.pernode_queue_bytes = 1 << 10;
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  c.reliability.enabled = true;
  c.reliability.policy = net::FailurePolicy::kDegrade;
  c.reliability.rto_base = std::chrono::microseconds(500);
  c.reliability.rto_max = std::chrono::microseconds(8000);
  // Retry budget far beyond anything the CI fault matrix can exhaust: wire
  // drops heal through retransmission; only crashNode() excises links here.
  c.reliability.max_retries = 1u << 20;
  c.quiet_deadline = std::chrono::seconds(120);
  return c;
}

/// Timed crash/restart injections against a running cluster. Offsets are
/// from driver start; a restart is skipped if the node is not dead (its
/// crash may have raced an earlier restart), a crash no-ops if it already
/// is. The app thread never synchronizes with this thread except through
/// the cluster itself — that asynchrony is the point of the soak.
struct ChaosEvent {
  std::chrono::milliseconds at{0};
  std::uint32_t node = 0;
  bool crash = true;  ///< false = restart
};

class ChaosDriver {
 public:
  ChaosDriver(rt::Cluster& cluster, std::vector<ChaosEvent> events)
      : cluster_(cluster), events_(std::move(events)), thread_([this] {
          const auto t0 = std::chrono::steady_clock::now();
          for (const ChaosEvent& e : events_) {
            std::this_thread::sleep_until(t0 + e.at);
            if (e.crash)
              cluster_.crashNode(e.node);
            else if (cluster_.membership()->dead(e.node))
              cluster_.restartNode(e.node);
          }
        }) {}
  ~ChaosDriver() { join(); }
  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  rt::Cluster& cluster_;
  std::vector<ChaosEvent> events_;
  std::thread thread_;
};

/// Restart every dead node and drain the dead-letter queue. Redelivery to a
/// node that is itself re-crashed (or whose payback targets another dead
/// node) re-parks the batch, so recovery iterates; a handful of rounds is
/// far more than any schedule in this suite needs.
[[nodiscard]] bool recoverAll(rt::Cluster& cluster) {
  for (int round = 0; round < 8; ++round) {
    for (std::uint32_t n : cluster.membership()->deadNodes())
      cluster.restartNode(n);
    cluster.quiet();
    if (cluster.membership()->deadNodes().empty() &&
        cluster.deadLetters()->stats().stored == 0)
      return true;
  }
  return false;
}

/// The ledger the whole PR exists for: at a quiescent point, every message
/// ever admitted is either delivered or accounted dead — no third bucket.
void expectConservation(const rt::Cluster& cluster, const char* where) {
  const rt::ClusterRunStats s = cluster.runStats();
  EXPECT_EQ(s.net_resolved + s.degraded.dead_lettered, s.net_messages)
      << where << ": resolved=" << s.net_resolved
      << " dead_lettered=" << s.degraded.dead_lettered
      << " sent=" << s.net_messages;
}

/// CI artifact hook: flight-recorder JSON per scenario when the env var
/// names a directory (the chaos job uploads it on failure).
void dumpArtifact(const rt::Cluster& cluster, const std::string& name) {
  const char* dir = std::getenv("GRAVEL_CHAOS_ARTIFACT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::ofstream out(std::string(dir) + "/" + name + ".json");
  if (out.good()) cluster.writeFlightRecorder(out, "chaos-soak " + name);
}

/// Post-soak checks shared by every scenario. `victimA` was dead for the
/// whole app run, so dead-lettered traffic and a post-recovery payback are
/// deterministic; the mid-run victim's timing is deliberately not asserted.
void expectSurvivedChaos(rt::Cluster& cluster, const std::string& name,
                         std::uint32_t victimA,
                         const std::vector<std::uint32_t>& victims) {
  dumpArtifact(cluster, name);
  EXPECT_TRUE(recoverAll(cluster)) << name << ": recovery did not converge";
  expectConservation(cluster, name.c_str());

  const rt::ClusterRunStats s = cluster.runStats();
  EXPECT_GT(s.degraded.dead_lettered, 0u)
      << name << ": a node dead for the whole run attracted no dead letters";
  EXPECT_GT(s.degraded.redelivered, 0u)
      << name << ": recovery paid nothing back";
  EXPECT_TRUE(s.degraded.dead_nodes.empty());
  // Only injected victims ever die: a non-victim that was never excised has
  // never been restarted, so its incarnation epoch is still zero.
  for (std::uint32_t n = 0; n < s.nodes; ++n) {
    bool injected = false;
    for (std::uint32_t v : victims) injected |= (v == n);
    if (!injected) {
      EXPECT_EQ(cluster.membership()->epoch(n), 0u)
          << name << ": node " << n << " died without an injected crash";
    }
  }
  EXPECT_EQ(cluster.deadLetters()->stats().stored, 0u);
  EXPECT_EQ(cluster.membership()->liveCount(), cluster.runStats().nodes);
  EXPECT_GE(cluster.membership()->epoch(victimA), 1u);
}

// --- GUPS -------------------------------------------------------------------

TEST(Chaos, GupsSurvivesCrashRestartCycle) {
  rt::Cluster cluster(chaosCluster(6));
  cluster.start();
  cluster.crashNode(5);  // dead before the first update is issued
  GupsConfig cfg;
  cfg.table_size = 1 << 12;
  cfg.updates_per_node = 1 << 13;
  {
    // A second victim cycles crash -> restart -> crash while updates fly.
    ChaosDriver driver(cluster,
                       {{std::chrono::milliseconds(2), 2, true},
                        {std::chrono::milliseconds(10), 2, false},
                        {std::chrono::milliseconds(25), 2, true}});
    runGups(cluster, cfg);
  }
  expectSurvivedChaos(cluster, "gups_crash_cycle", 5, {2, 5});
}

TEST(Chaos, GupsValidatesWhenOnlyTheWireMisbehaves) {
  // Control: same config, no crashes. Whatever GRAVEL_FAULT_* the CI matrix
  // layers onto the wire must heal through retransmission — validation and
  // exact conservation with zero dead letters.
  rt::Cluster cluster(chaosCluster(6));
  GupsConfig cfg;
  cfg.table_size = 1 << 12;
  cfg.updates_per_node = 1 << 12;
  const AppReport report = runGups(cluster, cfg);
  EXPECT_TRUE(report.validated);
  EXPECT_FALSE(report.stats.degraded.degraded());
  EXPECT_EQ(report.stats.breaker_trips, 0u);
  EXPECT_EQ(report.stats.net_resolved, report.stats.net_messages);
}

// --- PageRank ---------------------------------------------------------------

TEST(Chaos, PageRankSurvivesLosingAThirdOfTheCluster) {
  rt::Cluster cluster(chaosCluster(3));
  cluster.start();
  cluster.crashNode(2);
  graph::DistGraph dg(graph::bubblesLike(400, 2), 3);
  PageRankConfig cfg;
  cfg.iterations = 4;
  {
    ChaosDriver driver(cluster, {{std::chrono::milliseconds(3), 1, true},
                                 {std::chrono::milliseconds(12), 1, false}});
    runPageRank(cluster, dg, cfg);
  }
  expectSurvivedChaos(cluster, "pagerank_two_victims", 2, {1, 2});
}

TEST(Chaos, PageRankValidatesWhenOnlyTheWireMisbehaves) {
  rt::Cluster cluster(chaosCluster(3));
  graph::DistGraph dg(graph::bubblesLike(400, 2), 3);
  const PageRankResult result = runPageRank(cluster, dg, {4});
  EXPECT_TRUE(result.report.validated);
  EXPECT_FALSE(result.report.stats.degraded.degraded());
  EXPECT_EQ(result.report.stats.net_resolved,
            result.report.stats.net_messages);
}

// --- K-means ----------------------------------------------------------------

TEST(Chaos, KmeansSurvivesRepeatedCrashesOfTheSameNode) {
  rt::Cluster cluster(chaosCluster(4));
  cluster.start();
  cluster.crashNode(3);
  KmeansConfig cfg;
  cfg.clusters = 4;
  cfg.dims = 2;
  cfg.points_per_node = 1 << 10;
  cfg.iterations = 3;
  {
    ChaosDriver driver(cluster,
                       {{std::chrono::milliseconds(2), 1, true},
                        {std::chrono::milliseconds(8), 1, false},
                        {std::chrono::milliseconds(14), 1, true},
                        {std::chrono::milliseconds(20), 1, false}});
    runKmeans(cluster, cfg);
  }
  expectSurvivedChaos(cluster, "kmeans_flapping_node", 3, {1, 3});
}

TEST(Chaos, KmeansValidatesWhenOnlyTheWireMisbehaves) {
  rt::Cluster cluster(chaosCluster(4));
  KmeansConfig cfg;
  cfg.clusters = 4;
  cfg.dims = 2;
  cfg.points_per_node = 1 << 10;
  cfg.iterations = 3;
  const KmeansResult result = runKmeans(cluster, cfg);
  EXPECT_TRUE(result.report.validated);
  EXPECT_FALSE(result.report.stats.degraded.degraded());
  EXPECT_EQ(result.report.stats.net_resolved,
            result.report.stats.net_messages);
}

// --- Seeded random schedules ------------------------------------------------

// Random crash/restart schedules, reproducible from the seed alone: the
// victims, ordering and timing all derive from mix64(seed). Every schedule
// must uphold the same runtime promises; none gets to assert app-level
// validation. Three seeds per run keeps the soak under a second — bump the
// range locally to brute-force a suspected schedule-sensitive bug.
TEST(Chaos, SeededRandomSchedulesAllConserve) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    constexpr std::uint32_t kNodes = 5;
    rt::Cluster cluster(chaosCluster(kNodes));
    cluster.start();

    // Victim A (dead for the whole run) and a distinct flapping victim B,
    // both drawn from [1, kNodes): node 0 stays alive in every schedule so
    // the non-victim epoch check always has a subject.
    const std::uint32_t victimA = 1 + mix64(seed) % (kNodes - 1);
    std::uint32_t victimB = 1 + mix64(seed ^ 0xb) % (kNodes - 1);
    if (victimB == victimA) victimB = 1 + (victimB % (kNodes - 1));
    cluster.crashNode(victimA);

    std::vector<ChaosEvent> events;
    std::uint64_t at = 1 + mix64(seed ^ 0xc) % 4;
    const std::uint32_t cycles = 1 + mix64(seed ^ 0xd) % 2;
    for (std::uint32_t i = 0; i < cycles; ++i) {
      events.push_back({std::chrono::milliseconds(at), victimB, true});
      at += 2 + mix64(seed ^ (0xe0 + i)) % 8;
      events.push_back({std::chrono::milliseconds(at), victimB, false});
      at += 2 + mix64(seed ^ (0xf0 + i)) % 8;
    }

    GupsConfig cfg;
    cfg.table_size = 1 << 12;
    cfg.updates_per_node = 1 << 13;
    cfg.seed = seed;
    {
      ChaosDriver driver(cluster, std::move(events));
      runGups(cluster, cfg);
    }
    expectSurvivedChaos(cluster,
                        "random_schedule_seed" + std::to_string(seed),
                        victimA, {victimA, victimB});
  }
}

// --- Back-to-back soak ------------------------------------------------------

// One cluster, every workload in sequence, a fresh crash per phase: the
// membership epochs, breaker eras and dead-letter ledger must compose
// across runs, not just within one. Conservation is asserted per phase
// window (each app opens its own stats window at a quiescent point).
TEST(Chaos, WorkloadSequenceSharesOneClusterAcrossCrashes) {
  rt::Cluster cluster(chaosCluster(3));
  cluster.start();

  cluster.crashNode(2);
  GupsConfig gups;
  gups.table_size = 1 << 12;
  gups.updates_per_node = 1 << 12;
  runGups(cluster, gups);
  expectSurvivedChaos(cluster, "seq_gups", 2, {2});

  cluster.crashNode(1);
  graph::DistGraph dg(graph::bubblesLike(300, 2), 3);
  runPageRank(cluster, dg, {3});
  expectSurvivedChaos(cluster, "seq_pagerank", 1, {1, 2});

  cluster.crashNode(2);
  KmeansConfig km;
  km.clusters = 4;
  km.dims = 2;
  km.points_per_node = 1 << 10;
  km.iterations = 2;
  runKmeans(cluster, km);
  expectSurvivedChaos(cluster, "seq_kmeans", 2, {1, 2});

  // Every incarnation is counted: node 2 died in two phases.
  EXPECT_GE(cluster.membership()->epoch(2), 2u);

  // The healed cluster still validates — degradation was never sticky.
  const AppReport report = runGups(cluster, gups);
  EXPECT_TRUE(report.validated);
  EXPECT_FALSE(report.stats.degraded.degraded());
}

}  // namespace
}  // namespace gravel::apps
