// Bounded protocol scenarios for the model checker (DESIGN.md §8).
//
// Each scenario builds a verify::RunSpec factory — fresh queue/fabric state
// before every schedule — and hands it to verify::explore(). The same
// scenarios serve two test binaries:
//
//   - test_verify.cpp runs them unmutated and asserts ok (and, for the DFS
//     configs, exhausted: the bounded configuration was proven).
//   - test_verify_mutation.cpp re-runs them with one acquire/release site
//     weakened to relaxed and asserts the checker reports a violation.
//
// Scenario sizing is deliberately tiny (capacity-2 rings, 1-3 messages):
// every protocol feature of interest — wraparound, the full/empty boundary,
// ticket rounds, the stopped-drain exit, drop/dup/retransmit — already
// appears at that scale, and DFS stays enumerable.
//
// Invariant callbacks run in passthrough mode (no schedule points), so they
// may use atomic peeks/loads freely, but must not take gravel::mutex — the
// stepping thread may already hold the real lock.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/reliable.hpp"
#include "queue/gravel_queue.hpp"
#include "queue/mpmc_queue.hpp"
#include "queue/spsc_queue.hpp"
#include "runtime/slot_router.hpp"
#include "verify/explore.hpp"

namespace gravel::vtests {

using verify::ExploreOptions;
using verify::ExploreResult;
using verify::RunSpec;

// ---------------------------------------------------------------------------
// SPSC: producer pushes 1..kMsgs through a capacity-2 ring (wraparound at
// message 3), flags stop, consumer drains. FIFO order is checked exactly.
inline ExploreResult spscRoundTrip(const ExploreOptions& opts) {
  return verify::explore(opts, [] {
    struct State {
      SpscQueue q{1, 8};  // capacityBytes=1 -> the 2-cell minimum
      atomic<bool> stopped{false};
      std::vector<std::uint64_t> got;
    };
    auto st = std::make_shared<State>();
    constexpr std::uint64_t kMsgs = 3;

    RunSpec spec;
    spec.threads.push_back([st] {
      for (std::uint64_t v = 1; v <= kMsgs; ++v) st->q.push(&v);
      st->stopped.store(true, std::memory_order_release);
    });
    spec.threads.push_back([st] {
      std::uint64_t v = 0;
      while (st->q.pop(&v, st->stopped)) st->got.push_back(v);
    });
    spec.invariant = [st] {
      const std::uint64_t wr = st->q.peekWriteIdx();
      const std::uint64_t rd = st->q.peekReadIdx();
      if (rd > wr) verify::fail("spsc: readIdx overtook writeIdx");
      if (wr - rd > st->q.capacity())
        verify::fail("spsc: ring holds more than its capacity");
    };
    spec.finalCheck = [st]() -> std::string {
      if (st->got.size() != kMsgs)
        return "expected " + std::to_string(kMsgs) + " messages, got " +
               std::to_string(st->got.size());
      for (std::uint64_t i = 0; i < kMsgs; ++i)
        if (st->got[i] != i + 1)
          return "out of order or corrupt at index " + std::to_string(i) +
                 ": " + std::to_string(st->got[i]);
      return "";
    };
    return spec;
  });
}

// ---------------------------------------------------------------------------
// MPMC: two producers race 3 messages through a capacity-2 ring (slot 0 is
// reused in round 1); one consumer pops exactly 3. Checks the multiset and,
// per step, that every slot's round counter is monotone (ticket ordering).
inline ExploreResult mpmcRoundTrip(const ExploreOptions& opts) {
  return verify::explore(opts, [] {
    struct State {
      MpmcQueue q{1, 8};  // 2 slots
      atomic<bool> stopped{false};  // never set; consumer pops a fixed count
      std::vector<std::uint64_t> got;
      std::vector<std::uint64_t> prevRound;
    };
    auto st = std::make_shared<State>();
    st->prevRound.assign(st->q.capacity(), 0);

    RunSpec spec;
    spec.threads.push_back([st] {
      for (std::uint64_t v : {std::uint64_t{1}, std::uint64_t{2}})
        st->q.push(&v);
    });
    spec.threads.push_back([st] {
      const std::uint64_t v = 3;
      st->q.push(&v);
    });
    spec.threads.push_back([st] {
      std::uint64_t v = 0;
      for (int i = 0; i < 3; ++i)
        if (st->q.pop(&v, st->stopped)) st->got.push_back(v);
    });
    spec.invariant = [st] {
      for (std::size_t s = 0; s < st->prevRound.size(); ++s) {
        const std::uint64_t r = st->q.peekSlotRound(s);
        if (r < st->prevRound[s])
          verify::fail("mpmc: slot round went backwards (ticket order)");
        st->prevRound[s] = r;
      }
    };
    spec.finalCheck = [st]() -> std::string {
      std::multiset<std::uint64_t> want{1, 2, 3};
      std::multiset<std::uint64_t> have(st->got.begin(), st->got.end());
      if (have != want) {
        std::string s = "lost/duplicated/corrupt messages:";
        for (std::uint64_t v : st->got) s += " " + std::to_string(v);
        return s;
      }
      return "";
    };
    return spec;
  });
}

// ---------------------------------------------------------------------------
// GravelQueue, 1 producer / 1 consumer, lanes=1, 2 slots: three slots' worth
// of messages so the ring wraps (slot 0 hosts rounds 0 and 1) and the
// round/full handshake is exercised across the wrap. FIFO checked exactly.
inline ExploreResult gravelRoundTrip(const ExploreOptions& opts) {
  return verify::explore(opts, [] {
    struct State {
      // rows=1, lanes=1 -> slotBytes=8; capacity_bytes=16 -> 2 slots.
      GravelQueue q{GravelQueueConfig{16, 1, 1}};
      atomic<bool> stopped{false};
      std::vector<std::uint64_t> got;
    };
    auto st = std::make_shared<State>();
    constexpr std::uint64_t kMsgs = 3;

    RunSpec spec;
    spec.threads.push_back([st] {
      for (std::uint64_t v = 1; v <= kMsgs; ++v) {
        GravelQueue::SlotRef ref = st->q.acquireWrite(1);
        st->q.putWord(ref, 0, 0, v);
        st->q.publish(ref);
      }
      st->stopped.store(true, std::memory_order_release);
    });
    spec.threads.push_back([st] {
      GravelQueue::SlotRef ref;
      while (st->q.acquireRead(ref, st->stopped)) {
        st->got.push_back(st->q.getWord(ref, 0, 0));
        st->q.release(ref);
      }
    });
    spec.invariant = [st] {
      const std::uint64_t wr = st->q.peekWriteIdx();
      const std::uint64_t rd = st->q.peekReadIdx();
      if (rd > wr) verify::fail("gravel: readIdx overtook writeIdx");
      for (std::uint32_t s = 0; s < st->q.slotCount(); ++s)
        if (st->q.peekSlotFull(s) && st->q.peekSlotCount(s) > st->q.lanes())
          verify::fail("gravel: published count exceeds lanes");
    };
    spec.finalCheck = [st]() -> std::string {
      if (st->got.size() != kMsgs)
        return "expected " + std::to_string(kMsgs) + " messages, got " +
               std::to_string(st->got.size());
      for (std::uint64_t i = 0; i < kMsgs; ++i)
        if (st->got[i] != i + 1)
          return "out of order or corrupt at index " + std::to_string(i) +
                 ": " + std::to_string(st->got[i]);
      return "";
    };
    return spec;
  });
}

// ---------------------------------------------------------------------------
// GravelQueue, 2 producers / 1 consumer over 2 slots: three reservations, so
// two producers alias the ring across a wrap and the derived write tickets
// must serialize them. Consumer claims a fixed count (no stop protocol).
inline ExploreResult gravelTwoProducers(const ExploreOptions& opts) {
  return verify::explore(opts, [] {
    struct State {
      GravelQueue q{GravelQueueConfig{16, 1, 1}};  // 2 slots
      atomic<bool> stopped{false};  // never set
      std::vector<std::uint64_t> got;
      std::vector<std::uint64_t> prevRound;
    };
    auto st = std::make_shared<State>();
    st->prevRound.assign(st->q.slotCount(), 0);

    auto produce = [st](std::initializer_list<std::uint64_t> vals) {
      for (std::uint64_t v : vals) {
        GravelQueue::SlotRef ref = st->q.acquireWrite(1);
        st->q.putWord(ref, 0, 0, v);
        st->q.publish(ref);
      }
    };
    RunSpec spec;
    spec.threads.push_back([=] { produce({1, 2}); });
    spec.threads.push_back([=] { produce({3}); });
    spec.threads.push_back([st] {
      GravelQueue::SlotRef ref;
      for (int i = 0; i < 3; ++i) {
        if (!st->q.acquireRead(ref, st->stopped)) continue;
        st->got.push_back(st->q.getWord(ref, 0, 0));
        st->q.release(ref);
      }
    });
    spec.invariant = [st] {
      for (std::size_t s = 0; s < st->prevRound.size(); ++s) {
        const std::uint64_t r = st->q.peekSlotRound(std::uint32_t(s));
        if (r < st->prevRound[s])
          verify::fail("gravel: slot round went backwards (ticket order)");
        st->prevRound[s] = r;
      }
    };
    spec.finalCheck = [st]() -> std::string {
      std::multiset<std::uint64_t> want{1, 2, 3};
      std::multiset<std::uint64_t> have(st->got.begin(), st->got.end());
      if (have != want) {
        std::string s = "lost/duplicated/corrupt messages:";
        for (std::uint64_t v : st->got) s += " " + std::to_string(v);
        return s;
      }
      return "";
    };
    return spec;
  });
}

// ---------------------------------------------------------------------------
// The stopped-drain race documented in GravelQueue::acquireRead: a producer
// publishes, a *separate* stopper thread (the runtime's stop() caller)
// releases `stopped`, and the consumer must never exit with a published
// message unclaimed — even though its exit test re-reads readIdx_ relaxed.
inline ExploreResult gravelStoppedDrain(const ExploreOptions& opts) {
  return verify::explore(opts, [] {
    struct State {
      GravelQueue q{GravelQueueConfig{16, 1, 1}};
      atomic<bool> producerDone{false};
      atomic<bool> stopped{false};
      std::vector<std::uint64_t> got;
    };
    auto st = std::make_shared<State>();
    constexpr std::uint64_t kMsgs = 2;

    RunSpec spec;
    spec.threads.push_back([st] {  // producer
      for (std::uint64_t v = 1; v <= kMsgs; ++v) {
        GravelQueue::SlotRef ref = st->q.acquireWrite(1);
        st->q.putWord(ref, 0, 0, v);
        st->q.publish(ref);
      }
      st->producerDone.store(true, std::memory_order_release);
    });
    spec.threads.push_back([st] {  // stopper: NetworkThread::stop()'s shape
      while (!st->producerDone.load(std::memory_order_acquire))
        verify::spinYield();
      st->stopped.store(true, std::memory_order_release);
    });
    spec.threads.push_back([st] {  // consumer
      GravelQueue::SlotRef ref;
      while (st->q.acquireRead(ref, st->stopped)) {
        st->got.push_back(st->q.getWord(ref, 0, 0));
        st->q.release(ref);
      }
    });
    spec.finalCheck = [st]() -> std::string {
      if (st->got.size() != kMsgs)
        return "stopped drain lost messages: expected " +
               std::to_string(kMsgs) + ", got " +
               std::to_string(st->got.size());
      for (std::uint64_t i = 0; i < kMsgs; ++i)
        if (st->got[i] != i + 1)
          return "out of order or corrupt at index " + std::to_string(i);
      return "";
    };
    return spec;
  });
}

// ---------------------------------------------------------------------------
// Scripted wire for the reliability-layer scenarios: delivery order is the
// send order, but while `faultBudget` lasts the adversary (verify::choose)
// may drop a batch on the floor or deliver it twice. With budget 0 the wire
// is perfect and deterministic.
class ScriptedWire : public net::Fabric {
 public:
  ScriptedWire(std::uint32_t nodes, int faultBudget, bool allowDuplicate)
      : nodes_(nodes),
        inboxes_(nodes),
        faultBudget_(faultBudget),
        actions_(allowDuplicate ? 3 : 2) {}

  std::uint32_t nodes() const noexcept override { return nodes_; }

  void send(std::uint32_t src, std::uint32_t dst,
            std::vector<rt::NetMessage>&& batch) override {
    if (batch.empty()) return;
    int action = 0;  // 0 = deliver, 1 = drop, 2 = deliver twice
    if (faultBudget_ > 0) {
      action = verify::choose(actions_);
      if (action != 0) --faultBudget_;
    }
    if (action == 1) return;  // lost on the wire
    Inbox& ib = inboxes_[dst];
    gravel::lock_guard lk(ib.m);
    ib.q.push_back(net::Delivery{src, 0, batch});
    if (action == 2) ib.q.push_back(net::Delivery{src, 0, std::move(batch)});
  }

  bool tryReceive(std::uint32_t dst, net::Delivery& out) override {
    Inbox& ib = inboxes_[dst];
    gravel::lock_guard lk(ib.m);
    if (ib.q.empty()) return false;
    out = std::move(ib.q.front());
    ib.q.pop_front();
    return true;
  }

  // The reliability layer above tracks resolution/quiescence; the wire has
  // no accounting of its own in this harness.
  void markResolved(std::uint32_t, const net::Delivery&) override {}
  bool quiescent() const override { return true; }
  std::string describePending() const override { return "scripted wire"; }
  net::LinkStats link(std::uint32_t, std::uint32_t) const override {
    return {};
  }
  net::LinkStats total() const override { return {}; }
  RunningStat batchSizeBytes() const override { return {}; }

 private:
  struct Inbox {
    gravel::mutex m;
    std::deque<net::Delivery> q;
  };
  std::uint32_t nodes_;
  std::vector<Inbox> inboxes_;
  int faultBudget_;
  const int actions_;
};

inline net::ReliabilityConfig boundedRelConfig() {
  net::ReliabilityConfig cfg;
  cfg.enabled = true;
  // rto 0: `now < nextRetryAt` is false on a monotonic clock, so retransmit
  // eligibility never depends on wall time — decisions stay deterministic.
  cfg.rto_base = std::chrono::microseconds{0};
  cfg.rto_max = std::chrono::microseconds{0};
  cfg.max_retries = 1000;  // the adversary's budget bounds retries, not this
  cfg.reorder_window = 4;
  return cfg;
}

// ---------------------------------------------------------------------------
// Reliable layer, perfect wire, 3 threads: sender S, receiver R and a
// watcher W that treats quiescent() as a fence — once W sees the cluster
// quiet it reads the payload's side effect with no further synchronization.
// Exactly the contract quiet() gives launchAll() callers. A weakening of
// the outstanding_ accounting orders breaks the fence and the race detector
// objects at W's read.
inline ExploreResult reliableQuiescentVisibility(const ExploreOptions& opts) {
  return verify::explore(opts, [] {
    struct State {
      ScriptedWire wire{2, 0, false};  // no faults: deterministic wire
      net::ReliableFabric rel{wire, boundedRelConfig()};
      atomic<bool> sent{false};
      std::uint64_t result = 0;  // the remote side effect, race-checked
    };
    auto st = std::make_shared<State>();

    RunSpec spec;
    spec.threads.push_back([st] {  // S: node 0 sends, then drains ACKs
      st->rel.send(0, 1, {rt::NetMessage::put(1, 0, 7)});
      st->sent.store(true, std::memory_order_release);
      net::Delivery d;
      while (st->rel.pendingCount() > 0)
        if (!st->rel.tryReceive(0, d)) verify::spinYield();
    });
    spec.threads.push_back([st] {  // R: node 1's network thread
      net::Delivery d;
      for (;;) {
        if (!st->rel.tryReceive(1, d)) {
          verify::spinYield();
          continue;
        }
        for (const rt::NetMessage& m : d.messages)
          if (m.command() == rt::Command::kPut) {
            verify::dataStore(&st->result);
            st->result = m.value;
          }
        st->rel.markResolved(1, d);
        return;
      }
    });
    spec.threads.push_back([st] {  // W: quiet()-style fence, then plain read
      while (!st->sent.load(std::memory_order_acquire)) verify::spinYield();
      while (!st->rel.quiescent()) verify::spinYield();
      verify::dataLoad(&st->result);
      if (st->result != 7)
        verify::fail("quiescent() fence let a stale payload through");
    });
    spec.finalCheck = [st]() -> std::string {
      if (!st->rel.quiescent()) return "cluster never quiesced";
      return "";
    };
    return spec;
  });
}

// ---------------------------------------------------------------------------
// Reliable layer over a faulty wire: the adversary may drop or duplicate one
// wire transmission (data OR ack); the sender retransmits via poll(). The
// payload must be applied exactly once no matter what the adversary picks.
inline ExploreResult reliableDropRetransmit(const ExploreOptions& opts) {
  return verify::explore(opts, [] {
    struct State {
      ScriptedWire wire{2, 1, true};  // one drop-or-duplicate token
      net::ReliableFabric rel{wire, boundedRelConfig()};
      atomic<bool> senderDone{false};
      std::uint64_t result = 0;
      int applied = 0;  // receiver-thread-private application count
    };
    auto st = std::make_shared<State>();

    RunSpec spec;
    spec.threads.push_back([st] {  // S: send, then retransmit until acked
      st->rel.send(0, 1, {rt::NetMessage::put(1, 0, 7)});
      net::Delivery d;
      // rto_base is 0, so every pass retransmits; any single wire fault is
      // repairable by a later retransmit, and the spinYield below bounds
      // how often a pass can run (only after another thread made progress).
      while (!st->rel.quiescent()) {
        const bool got = st->rel.tryReceive(0, d);
        st->rel.poll(0);
        if (!got) verify::spinYield();
      }
      st->senderDone.store(true, std::memory_order_release);
    });
    spec.threads.push_back([st] {  // R: the network thread; serves until the
      // sender is satisfied. (Exiting on !quiescent() would be wrong: a
      // stale read of the quiescence counters may legally say "quiet" while
      // a retransmission is still owed, deserting the sender.)
      net::Delivery d;
      while (!st->senderDone.load(std::memory_order_acquire)) {
        if (!st->rel.tryReceive(1, d)) {
          verify::spinYield();
          continue;
        }
        for (const rt::NetMessage& m : d.messages)
          if (m.command() == rt::Command::kPut) {
            ++st->applied;
            verify::dataStore(&st->result);
            st->result = m.value;
          }
        st->rel.markResolved(1, d);
      }
    });
    spec.finalCheck = [st]() -> std::string {
      if (st->applied != 1)
        return "payload applied " + std::to_string(st->applied) +
               " times (want exactly once)";
      if (st->result != 7) return "payload corrupt";
      if (!st->rel.quiescent()) return "cluster never quiesced";
      if (st->rel.failure()) return "link declared failed";
      return "";
    };
    return spec;
  });
}

// ---------------------------------------------------------------------------
// The aggregator's slot-batched routing (DESIGN.md §9): two router threads
// each claim one pre-published slot, bulk-decode it into thread-local
// staging, release the queue slot, then append per-destination runs to the
// shared SlotRouter buffers — one gravel::mutex acquisition per destination
// per slot. Capacity-2 buffers force a mid-run flush split, so the checker
// covers lock handoff between routing, capacity flush and the final
// flushAll under every bounded interleaving. (Publishing happens in setup:
// the producer-side queue protocol is already exhausted by the gravel*
// scenarios above, and keeping it out of the schedule space is what lets
// DFS stay exhaustive here.) Checked: conservation across route -> flush,
// batch sizes <= capacity, and the no-reordering guarantee (a slot's
// same-destination run stays contiguous and lane-ascending in
// per-destination arrival order).
inline ExploreResult slotRoutedAggregation(const ExploreOptions& opts) {
  return verify::explore(opts, [] {
    struct State {
      // 2 slots of 2 lanes x 4 rows (NetMessage width).
      GravelQueue q{GravelQueueConfig{128, 2, rt::NetMessage::kRows}};
      atomic<bool> stopped{false};  // never set; claims are exact
      rt::SlotRouter router;
      std::vector<std::vector<std::uint64_t>> flushed;  // per-dest values
      std::size_t maxBatch = 0;
      State()
          // A flush timeout far past the exploration keeps the timer wheel
          // inert: the scenario owns flushing via capacity + flushAll, and
          // with shards defaulting to min(nodes, 64) = 2 the sharded
          // router keeps the historical one-lock-per-destination shape.
          : router(2, /*capacityMsgs=*/2, std::chrono::seconds(3600),
                   [this](std::uint32_t dst,
                          std::vector<rt::NetMessage>&& batch) {
                     // Runs with the destination's shard lock held.
                     maxBatch = std::max(maxBatch, batch.size());
                     for (const rt::NetMessage& m : batch)
                       flushed[dst].push_back(m.value);
                   }),
            flushed(2) {}
    };
    auto st = std::make_shared<State>();

    auto produce = [st](const rt::NetMessage (&msgs)[2]) {
      GravelQueue::SlotRef ref = st->q.acquireWrite(2);
      for (std::uint32_t lane = 0; lane < 2; ++lane) {
        st->q.putWord(ref, 0, lane, msgs[lane].cmd);
        st->q.putWord(ref, 1, lane, msgs[lane].dest);
        st->q.putWord(ref, 2, lane, msgs[lane].addr);
        st->q.putWord(ref, 3, lane, msgs[lane].value);
      }
      st->q.publish(ref);
    };
    auto route = [st] {
      rt::SlotRouter::Staging staging(2, 2);
      GravelQueue::SlotRef ref;
      if (st->q.acquireRead(ref, st->stopped)) {
        st->router.decode(st->q, ref, staging);
        st->q.release(ref);  // slot handed back before any buffer lock
        st->router.routeStaged(staging);
      }
      // Each thread force-flushes after routing; whichever runs last has
      // seen its own appends, so nothing is left buffered at finalCheck.
      st->router.flushAll();
    };

    // Setup-phase publish (runs before the checker registers any thread, so
    // it adds no schedule points). Slot A fans out (one message per
    // destination); slot B is a two-message same-destination run that must
    // stay contiguous.
    produce({rt::NetMessage::put(0, 0, 1), rt::NetMessage::put(1, 0, 2)});
    produce({rt::NetMessage::put(0, 0, 3), rt::NetMessage::put(0, 0, 4)});

    RunSpec spec;
    spec.threads.push_back(route);
    spec.threads.push_back(route);
    spec.finalCheck = [st]() -> std::string {
      const auto& d0 = st->flushed[0];
      const auto& d1 = st->flushed[1];
      if (st->maxBatch > 2)
        return "batch exceeded capacity: " + std::to_string(st->maxBatch);
      if (d1 != std::vector<std::uint64_t>{2})
        return "dest 1 payload lost/duplicated/corrupt";
      if (std::multiset<std::uint64_t>(d0.begin(), d0.end()) !=
          std::multiset<std::uint64_t>{1, 3, 4})
        return "dest 0 payload lost/duplicated/corrupt";
      // Slot B's run {3, 4} must be adjacent and in lane order in dest 0's
      // arrival stream regardless of which thread routed which slot.
      for (std::size_t i = 0; i < d0.size(); ++i) {
        if (d0[i] != 3) continue;
        if (i + 1 >= d0.size() || d0[i + 1] != 4)
          return "same-slot run split or reordered within destination";
      }
      return "";
    };
    return spec;
  });
}

// ---------------------------------------------------------------------------
// Degrade-policy configuration for the breaker scenarios: rto 0 keeps
// retransmit eligibility time-independent (as above), and max_retries 0
// means the first poll() that finds an unacked batch trips the link — so
// whether a trip happens at all is decided purely by the schedule (did the
// ACK win the race to the sender before the poll?), which is exactly the
// nondeterminism the checker should own.
inline net::ReliabilityConfig breakerRelConfig() {
  net::ReliabilityConfig cfg = boundedRelConfig();
  cfg.policy = net::FailurePolicy::kDegrade;
  cfg.max_retries = 0;
  cfg.breaker_cooldown = std::chrono::milliseconds{0};  // probes always legal
  cfg.dlq_capacity = 8;
  return cfg;
}

// ---------------------------------------------------------------------------
// Circuit-breaker trip racing in-flight traffic: sender S ships one payload,
// a separate poller P may trip the link (retry budget 0) at any point
// relative to R's admission and the returning ACK, and S redelivers whatever
// was dead-lettered. Depending on the interleaving the batch is (a) ACKed
// before the trip, (b) settled as delivered at re-sync (admitted but the
// stale-era ACK suppressed), or (c) dead-lettered and paid back through a
// half-open probe under the new era. In every case the payload must apply
// exactly once and the conservation invariant delivered + dead_lettered ==
// sent must close.
inline ExploreResult breakerTripRecover(const ExploreOptions& opts) {
  return verify::explore(opts, [] {
    struct State {
      ScriptedWire wire{2, 0, false};  // perfect wire; the breaker is the foe
      rt::Membership members{2};
      net::DeadLetterQueue dlq{2, 8};
      net::ReliableFabric rel{wire, breakerRelConfig()};
      atomic<bool> senderDone{false};
      std::uint64_t result = 0;
      int applied = 0;  // receiver-thread-private application count
      State() { rel.attachDegrade(&members, &dlq); }
    };
    auto st = std::make_shared<State>();

    RunSpec spec;
    spec.threads.push_back([st] {  // S: sender + recovery manager
      st->rel.send(0, 1, {rt::NetMessage::put(1, 0, 7)});
      net::Delivery d;
      for (;;) {
        const bool got = st->rel.tryReceive(0, d);  // absorbs ACKs
        // Pay back a dead-lettered batch (at most once: P polls once, so
        // the redelivered probe itself can never be tripped again).
        if (st->dlq.stats().stored > 0) st->rel.redeliver(1);
        if (st->rel.quiescent() && st->dlq.stats().stored == 0) break;
        if (!got) verify::spinYield();
      }
      st->senderDone.store(true, std::memory_order_release);
    });
    spec.threads.push_back([st] {  // P: one retransmit scan — the trip race
      st->rel.poll(0);
    });
    spec.threads.push_back([st] {  // R: node 1's network thread
      net::Delivery d;
      while (!st->senderDone.load(std::memory_order_acquire)) {
        if (!st->rel.tryReceive(1, d)) {
          verify::spinYield();
          continue;
        }
        for (const rt::NetMessage& m : d.messages)
          if (m.command() == rt::Command::kPut) {
            ++st->applied;
            verify::dataStore(&st->result);
            st->result = m.value;
          }
        st->rel.markResolved(1, d);
      }
    });
    spec.finalCheck = [st]() -> std::string {
      if (st->applied > 1)
        return "payload applied " + std::to_string(st->applied) +
               " times across the trip/recovery (want at most once)";
      if (st->applied == 1 && st->result != 7) return "payload corrupt";
      if (!st->rel.quiescent()) return "cluster never quiesced";
      const net::DeadLetterStats d = st->dlq.stats();
      const std::uint64_t sent = st->rel.total().messages;
      if (std::uint64_t(st->applied) + d.dead_lettered != sent)
        return "conservation broken: applied " + std::to_string(st->applied) +
               " + dead_lettered " + std::to_string(d.dead_lettered) +
               " != sent " + std::to_string(sent);
      if (d.redelivered > 0 && st->applied != 1)
        return "redelivered batch never applied";
      if (st->members.dead(0) || st->members.dead(1))
        return "a single link trip must not kill a node (suspect at most)";
      return "";
    };
    return spec;
  });
}

// ---------------------------------------------------------------------------
// Half-open probe protocol, with the trip made deterministic in the setup
// phase: the era-0 data frame is still sitting in the receiver's wire inbox
// when the link re-syncs, so the new incarnation must provably reject it
// (stale_data_drops == 1 — a frame from before the trip can never apply
// under the new era). Recovery then walks the full breaker state machine:
// open -> half-open (the redelivered batch rides as the probe) -> closed on
// the probe's ACK, which also clears the membership suspicion.
inline ExploreResult breakerHalfOpenProbe(const ExploreOptions& opts) {
  return verify::explore(opts, [] {
    struct State {
      ScriptedWire wire{2, 0, false};
      rt::Membership members{2};
      net::DeadLetterQueue dlq{2, 8};
      net::ReliableFabric rel{wire, breakerRelConfig()};
      atomic<bool> senderDone{false};
      std::uint64_t result = 0;
      int applied = 0;
      State() { rel.attachDegrade(&members, &dlq); }
    };
    auto st = std::make_shared<State>();

    // Setup phase (no schedule points registered yet): send, then trip. The
    // era-0 frame is on the wire, its sender-side copy is dead-lettered,
    // the breaker is open and node 1 is suspect.
    st->rel.send(0, 1, {rt::NetMessage::put(1, 0, 7)});
    st->rel.poll(0);  // retry budget 0: trips link 0->1 deterministically

    RunSpec spec;
    spec.threads.push_back([st] {  // S: redeliver (the probe), drain the ACK
      st->rel.redeliver(1);
      net::Delivery d;
      while (!st->rel.quiescent())
        if (!st->rel.tryReceive(0, d)) verify::spinYield();
      st->senderDone.store(true, std::memory_order_release);
    });
    spec.threads.push_back([st] {  // R: sees the stale frame, then the probe
      net::Delivery d;
      while (!st->senderDone.load(std::memory_order_acquire)) {
        if (!st->rel.tryReceive(1, d)) {
          verify::spinYield();
          continue;
        }
        for (const rt::NetMessage& m : d.messages)
          if (m.command() == rt::Command::kPut) {
            ++st->applied;
            verify::dataStore(&st->result);
            st->result = m.value;
          }
        st->rel.markResolved(1, d);
      }
    });
    spec.finalCheck = [st]() -> std::string {
      if (st->applied != 1)
        return "payload applied " + std::to_string(st->applied) +
               " times (want exactly once through the probe)";
      if (st->result != 7) return "payload corrupt";
      if (!st->rel.quiescent()) return "cluster never quiesced";
      const net::ReliabilityStats rs = st->rel.reliabilityStats();
      if (rs.breaker_trips != 1)
        return "expected exactly one breaker trip, saw " +
               std::to_string(rs.breaker_trips);
      if (rs.probes != 1)
        return "expected exactly one half-open probe, saw " +
               std::to_string(rs.probes);
      if (rs.stale_data_drops != 1)
        return "stale era-0 frame was not provably rejected (drops " +
               std::to_string(rs.stale_data_drops) + ")";
      const net::DeadLetterStats d = st->dlq.stats();
      if (d.dead_lettered != 1 || d.redelivered != 1 || d.stored != 0)
        return "dead-letter accounting wrong: lettered " +
               std::to_string(d.dead_lettered) + ", redelivered " +
               std::to_string(d.redelivered) + ", stored " +
               std::to_string(d.stored);
      if (st->members.health(1) != rt::NodeHealth::kAlive)
        return "probe ACK did not clear the suspicion (health " +
               std::string(rt::nodeHealthName(st->members.health(1))) + ")";
      return "";
    };
    return spec;
  });
}

}  // namespace gravel::vtests
