// Tests for the graph substrate: CSR construction, transpose, partitioning,
// generator shape properties (degree regimes matching the paper's inputs),
// and the distributed inbox-slot assignment invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dist.hpp"
#include "graph/generators.hpp"

namespace gravel::graph {
namespace {

TEST(Csr, BuildsFromEdgeList) {
  std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {3, 0}};
  Csr g = Csr::fromEdges(4, edges);
  EXPECT_EQ(g.vertexCount(), 4u);
  EXPECT_EQ(g.edgeCount(), 5u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 1u);
  auto n0 = g.neighbors(0);
  EXPECT_EQ(std::set<Vertex>(n0.begin(), n0.end()),
            (std::set<Vertex>{1, 2}));
  EXPECT_EQ(g.maxDegree(), 2u);
  EXPECT_DOUBLE_EQ(g.averageDegree(), 1.25);
}

TEST(Csr, RejectsOutOfRangeEdges) {
  std::vector<Edge> edges{{0, 4}};
  EXPECT_THROW(Csr::fromEdges(4, edges), Error);
}

TEST(Csr, TransposeReversesEveryEdge) {
  std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 2}, {3, 1}};
  Csr g = Csr::fromEdges(4, edges);
  Csr t = g.transpose();
  EXPECT_EQ(t.edgeCount(), g.edgeCount());
  // Multiset of (src,dst) in t equals reversed multiset of g.
  std::multiset<std::pair<Vertex, Vertex>> fwd, rev;
  for (Vertex v = 0; v < 4; ++v)
    for (Vertex w : g.neighbors(v)) fwd.insert({w, v});
  for (Vertex v = 0; v < 4; ++v)
    for (Vertex w : t.neighbors(v)) rev.insert({v, w});
  EXPECT_EQ(fwd, rev);
}

TEST(BlockPartition, RoundTripsIndices) {
  BlockPartition p(100, 8);  // perNode = 13
  EXPECT_EQ(p.perNode(), 13u);
  for (std::uint64_t g = 0; g < 100; ++g) {
    const auto o = p.owner(g);
    EXPECT_EQ(p.globalIndex(o, p.localIndex(g)), g);
    EXPECT_LT(p.localIndex(g), p.perNode());
  }
  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < 8; ++n) total += p.sizeOf(n);
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(p.sizeOf(7), 100u - 7 * 13);
}

TEST(BlockPartition, SingleNodeOwnsEverything) {
  BlockPartition p(64, 1);
  for (std::uint64_t g = 0; g < 64; ++g) {
    EXPECT_EQ(p.owner(g), 0u);
    EXPECT_EQ(p.localIndex(g), g);
  }
}

TEST(Generators, BubblesLikeMatchesHugebubblesRegime) {
  Csr g = bubblesLike(10000, 42);
  // hugebubbles-00020: avg degree ~3, tight degree spread, mesh-like.
  EXPECT_NEAR(g.averageDegree(), 3.0, 0.6);
  EXPECT_LE(g.maxDegree(), 8u);  // near-uniform degrees
  EXPECT_GE(g.vertexCount(), 10000u);
}

TEST(Generators, CageLikeMatchesCageRegime) {
  Csr g = cageLike(10000, 19, 42);
  // cage15: avg degree ~19, narrow band.
  EXPECT_NEAR(g.averageDegree(), 19.0, 3.0);
  // Band structure: every edge within ~2*n/64 positions (wrapped).
  const Vertex n = g.vertexCount();
  const std::uint64_t band = std::max<std::uint64_t>(4, n / 64);
  for (Vertex v = 0; v < n; v += 97) {
    for (Vertex w : g.neighbors(v)) {
      const std::uint64_t d =
          std::min<std::uint64_t>((w + n - v) % n, (v + n - w) % n);
      EXPECT_LE(d, band);
    }
  }
}

TEST(Generators, UndirectedSymmetry) {
  for (Csr g : {bubblesLike(2500, 7), cageLike(2000, 10, 7)}) {
    std::multiset<std::pair<Vertex, Vertex>> fwd, rev;
    for (Vertex v = 0; v < g.vertexCount(); ++v)
      for (Vertex w : g.neighbors(v)) {
        fwd.insert({v, w});
        rev.insert({w, v});
      }
    EXPECT_EQ(fwd, rev);
  }
}

TEST(Generators, DeterministicForSeed) {
  Csr a = cageLike(1000, 8, 3), b = cageLike(1000, 8, 3);
  ASSERT_EQ(a.edgeCount(), b.edgeCount());
  for (Vertex v = 0; v < a.vertexCount(); ++v) {
    auto na = a.neighbors(v), nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(Generators, RmatIsSkewed) {
  Csr g = rmat(4096, 40000, 5);
  // Power-law-ish: the max degree should far exceed the average.
  EXPECT_GT(double(g.maxDegree()), 5.0 * g.averageDegree());
}

TEST(Generators, EdgeWeightsDeterministicAndBounded) {
  for (Vertex u = 0; u < 50; ++u)
    for (Vertex v = 0; v < 50; ++v) {
      const auto w = edgeWeight(u, v);
      EXPECT_GE(w, 1u);
      EXPECT_LE(w, 15u);
      EXPECT_EQ(w, edgeWeight(u, v));
    }
}

TEST(DistGraph, InboxSlotsAreAPerNodePermutation) {
  Csr g = cageLike(500, 6, 11);
  for (std::uint32_t nodes : {1u, 2u, 3u, 8u}) {
    DistGraph d(g, nodes);
    // Every (destNode, slot) pair must be hit exactly once, and slots per
    // node must be dense in [0, inboxSize(node)).
    std::map<std::pair<std::uint32_t, std::uint64_t>, int> hits;
    for (Vertex u = 0; u < g.vertexCount(); ++u) {
      const std::uint64_t base = g.edgeBegin(u);
      const auto nbrs = g.neighbors(u);
      for (std::uint64_t k = 0; k < nbrs.size(); ++k) {
        const std::uint32_t nd = d.vertices().owner(nbrs[k]);
        const std::uint64_t slot = d.inboxSlot(base + k);
        EXPECT_LT(slot, d.inboxSize(nd));
        ++hits[{nd, slot}];
      }
    }
    std::uint64_t totalSlots = 0;
    for (std::uint32_t nd = 0; nd < nodes; ++nd) totalSlots += d.inboxSize(nd);
    EXPECT_EQ(totalSlots, g.edgeCount());
    EXPECT_EQ(hits.size(), g.edgeCount());
    for (const auto& [key, n] : hits) EXPECT_EQ(n, 1);
  }
}

TEST(DistGraph, VertexInboxRangesTileTheInbox) {
  Csr g = bubblesLike(400, 9);
  DistGraph d(g, 4);
  for (std::uint32_t nd = 0; nd < 4; ++nd) {
    std::uint64_t cursor = 0;
    for (std::uint64_t l = 0; l < d.vertices().sizeOf(nd); ++l) {
      const auto v = Vertex(d.vertices().globalIndex(nd, l));
      EXPECT_EQ(d.localInboxBase(v), cursor);
      cursor += d.inDegree(v);
    }
    EXPECT_EQ(cursor, d.inboxSize(nd));
  }
}

TEST(DistGraph, InDegreesMatchTranspose) {
  Csr g = cageLike(300, 8, 2);
  Csr t = g.transpose();
  DistGraph d(g, 2);
  for (Vertex v = 0; v < g.vertexCount(); ++v)
    EXPECT_EQ(d.inDegree(v), t.degree(v));
}

}  // namespace
}  // namespace gravel::graph
