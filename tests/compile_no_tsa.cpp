// Compile-time proof that the TSA macros vanish when the analysis is off
// (GCC, pre-attribute clang, or -DGRAVEL_NO_TSA — this TU forces the last,
// so the proof holds even when CI compiles it with clang).
//
// The trick: stringify each macro's expansion. On the vanish path every
// macro expands to nothing, so the stringified literal is "" and its sizeof
// is 1. If a refactor ever leaks an __attribute__ through the no-TSA path,
// these static_asserts fail before any test runs — the compile IS the test;
// the runtime body below just re-states the proof where ctest can see it.
#ifndef GRAVEL_NO_TSA
#define GRAVEL_NO_TSA 1
#endif

#include "common/annotations.hpp"

#include <gtest/gtest.h>

#include "common/atomic.hpp"

#define GRAVEL_TSA_STR2(...) #__VA_ARGS__
#define GRAVEL_TSA_STR(...) GRAVEL_TSA_STR2(__VA_ARGS__)
#define GRAVEL_TSA_EXPANDS_EMPTY(...) \
  (sizeof(GRAVEL_TSA_STR(__VA_ARGS__)) == sizeof(""))

static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_CAPABILITY("mutex")));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_SCOPED_CAPABILITY));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_GUARDED_BY(m)));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_PT_GUARDED_BY(m)));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_REQUIRES(m)));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_ACQUIRE(m)));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_RELEASE(m)));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_EXCLUDES(m)));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_RETURN_CAPABILITY(m)));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_ACQUIRED_AFTER(m)));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_ACQUIRED_BEFORE(m)));
static_assert(GRAVEL_TSA_EXPANDS_EMPTY(GRAVEL_NO_THREAD_SAFETY_ANALYSIS));

namespace {

// The macros must also be valid in their real grammatical positions with
// the attributes stripped: class heads, member declarations, function
// declarations. A stray token would make this struct ill-formed.
class GRAVEL_CAPABILITY("mutex") ProbeMutex {
 public:
  void lock() GRAVEL_ACQUIRE() {}
  void unlock() GRAVEL_RELEASE() {}
};

struct Probe {
  ProbeMutex m;
  int counter GRAVEL_GUARDED_BY(m) = 0;
  int* slot GRAVEL_PT_GUARDED_BY(m) = nullptr;

  void bumpLocked() GRAVEL_REQUIRES(m) { ++counter; }
  void bump() GRAVEL_EXCLUDES(m) {
    m.lock();
    bumpLocked();
    m.unlock();
  }
  ProbeMutex& mu() GRAVEL_RETURN_CAPABILITY(m) { return m; }
  int racyPeek() const GRAVEL_NO_THREAD_SAFETY_ANALYSIS { return counter; }
};

TEST(CompileNoTsa, MacrosVanishAndRealGuardStillWorks) {
  Probe p;
  p.bump();
  EXPECT_EQ(p.racyPeek(), 1);

  // gravel::mutex / gravel::lock_guard keep their runtime behavior with the
  // capability attributes stripped.
  gravel::mutex mu;
  int guarded = 0;
  {
    gravel::lock_guard lk(mu);
    guarded = 42;
  }
  EXPECT_EQ(guarded, 42);
}

}  // namespace
