// Observability layer: metrics registry snapshot/delta/export semantics,
// message-lifecycle tracing through a real cluster run (including a hostile
// wire), and the Chrome-trace exporter's output shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/status_server.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "obs/watchdog.hpp"
#include "runtime/cluster.hpp"

namespace gravel {
namespace {

using obs::MetricKind;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::Stage;
using obs::TraceConfig;
using obs::TraceEvent;
using obs::Tracer;

// --- JSON well-formedness (structural, no parser dependency) ---------------

/// Checks brace/bracket balance and quote pairing outside of strings — the
/// failure modes a hand-rolled writer can actually have.
bool jsonBalanced(const std::string& s) {
  int depth = 0;
  bool inString = false, escaped = false;
  for (char ch : s) {
    if (inString) {
      if (escaped)
        escaped = false;
      else if (ch == '\\')
        escaped = true;
      else if (ch == '"')
        inString = false;
      continue;
    }
    switch (ch) {
      case '"': inString = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !inString;
}

// --- MetricsRegistry -------------------------------------------------------

TEST(Metrics, RegistryRoundTripsKinds) {
  MetricsRegistry reg;
  reg.setCounter("msgs", "node=0", 42);
  reg.setGauge("depth", "", 7.5);
  reg.observe("lat", "", 10.0);
  reg.observe("lat", "", 30.0);
  reg.observeHistogram("size", "", 8);

  const MetricsSnapshot s = reg.snapshot();
  ASSERT_TRUE(s.contains("msgs", "node=0"));
  EXPECT_EQ(s.find("msgs", "node=0")->kind, MetricKind::kCounter);
  EXPECT_EQ(s.number("msgs", "node=0"), 42.0);
  EXPECT_EQ(s.number("depth"), 7.5);
  const obs::MetricValue* lat = s.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2u);
  EXPECT_EQ(lat->mean(), 20.0);
  EXPECT_EQ(lat->min, 10.0);
  EXPECT_EQ(lat->max, 30.0);
  const obs::MetricValue* size = s.find("size");
  ASSERT_NE(size, nullptr);
  EXPECT_EQ(size->kind, MetricKind::kHistogram);
  // 8 lands in bucket [2^3, 2^4) = index 4 under the 64-countl_zero rule.
  EXPECT_EQ(size->buckets[4], 1u);
  EXPECT_EQ(s.number("absent"), 0.0);
}

TEST(Metrics, DeltaWindowsCountersAndKeepsGauges) {
  MetricsRegistry reg;
  reg.setCounter("sent", "", 100);
  reg.setGauge("depth", "", 5);
  reg.observe("lat", "", 10);
  const MetricsSnapshot base = reg.snapshot();

  reg.setCounter("sent", "", 140);
  reg.setGauge("depth", "", 2);
  reg.observe("lat", "", 20);
  const MetricsSnapshot now = reg.snapshot();

  const MetricsSnapshot d = now.delta(base);
  EXPECT_EQ(d.number("sent"), 40.0);    // counter: subtracted
  EXPECT_EQ(d.number("depth"), 2.0);    // gauge: current level
  const obs::MetricValue* lat = d.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 1u);            // stat: window count
  EXPECT_EQ(lat->mean(), 20.0);         // window sum / window count
}

TEST(Metrics, JsonAndCsvExportAreWellFormed) {
  MetricsRegistry reg;
  reg.setCounter("a.count", "node=0", 3);
  reg.setGauge("b.level", "link=0->1", 1.5);
  reg.observe("c.stat", "", 2.0);
  reg.observeHistogram("d.hist", "", 1024);
  const MetricsSnapshot s = reg.snapshot();

  std::ostringstream json;
  s.toJson(json);
  EXPECT_TRUE(jsonBalanced(json.str())) << json.str();
  EXPECT_NE(json.str().find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.str().find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.str().find("\"link=0->1\""), std::string::npos);

  std::ostringstream csv;
  s.toCsv(csv);
  EXPECT_EQ(csv.str().rfind("name,labels,kind,count,value,min,max\n", 0), 0u);
  // Header + one row per metric.
  std::size_t lines = 0;
  for (char ch : csv.str())
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 1 + s.metrics.size());
}

// --- Tracer ----------------------------------------------------------------

TEST(Trace, DisabledTracerRecordsNothing) {
  TraceConfig cfg;  // enabled = false
  Tracer t(cfg);
  EXPECT_EQ(t.maybeSample(), 0u);
  t.recordStage(Stage::kEnqueue, 1, 0, 0, 0);
  t.recordGauge(obs::Gauge::kGpuQueueDepth, 0, 5);
  t.nameThread("ignored");
  EXPECT_TRUE(t.allEvents().empty());
  EXPECT_TRUE(t.buffers().empty());
}

TEST(Trace, SamplingHonorsIntervalAndNeverReturnsZero) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.sample_interval = 4;
  Tracer t(cfg);
  std::uint32_t sampled = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t id = t.maybeSample();
    if (id != 0) ++sampled;
    EXPECT_LE(id, 0xffffu);
  }
  EXPECT_EQ(sampled, 16u);  // 1 in 4
  EXPECT_EQ(t.sampledCandidates(), 64u);
}

TEST(Trace, NodeIdsWiderThanAByteSurviveRecording) {
  // Fig-12-style scaling sweeps can run hundreds of nodes; the event's node
  // field is 16 bits so ids >= 256 must round-trip unaliased (they used to
  // be truncated through a uint8_t cast at every record site).
  TraceConfig cfg;
  cfg.enabled = true;
  Tracer t(cfg);
  t.recordStage(Stage::kEnqueue, 1, /*node=*/300, /*dest=*/65535, 7);
  t.recordGauge(obs::Gauge::kGpuQueueDepth, /*node=*/40000, 5);
  const auto events = t.allEvents();
  ASSERT_EQ(events.size(), 2u);
  for (const TraceEvent& e : events) {
    if (e.stage == Stage::kGauge) {
      EXPECT_EQ(e.node, 40000u);
    } else {
      EXPECT_EQ(e.node, 300u);
      EXPECT_EQ(e.aux, 65535u);
    }
  }
}

TEST(Trace, BufferOverflowDropsAndCounts) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.buffer_events = 4;
  Tracer t(cfg);
  for (std::uint32_t i = 0; i < 10; ++i)
    t.recordStage(Stage::kEnqueue, i + 1, 0, 0, i);
  EXPECT_EQ(t.allEvents().size(), 4u);
  EXPECT_EQ(t.droppedEvents(), 6u);
}

// --- End-to-end through a cluster run --------------------------------------

rt::ClusterConfig tracedConfig() {
  rt::ClusterConfig c;
  c.nodes = 2;
  c.heap_bytes = 1 << 20;
  c.gpu_queue_bytes = 1 << 13;
  c.pernode_queue_bytes = 512;
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  c.quiet_deadline = std::chrono::milliseconds(60000);
  c.obs.enabled = true;
  c.obs.sample_interval = 1;  // trace every message
  c.obs.gauge_period = std::chrono::microseconds(200);
  return c;
}

void runTracedWorkload(rt::Cluster& cluster) {
  auto slots = cluster.alloc<std::uint64_t>(64);
  cluster.launchAll(128, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, (n + 1) % 2, slots.at(wi.globalId() % 64));
  });
}

TEST(Trace, ClusterRunProducesOrderedLifecycles) {
  rt::Cluster cluster(tracedConfig());
  runTracedWorkload(cluster);

  const auto lifecycles = obs::reconstructLifecycles(cluster.tracer());
  ASSERT_FALSE(lifecycles.empty());
  std::size_t complete = 0;
  for (const auto& lc : lifecycles) {
    // Observed stages must be timestamp-ordered along the pipeline.
    std::uint64_t prev = 0;
    for (int s = 0; s < obs::kMessageStages; ++s) {
      if (lc.ts_ns[s] == 0) continue;
      EXPECT_GE(lc.ts_ns[s], prev)
          << "stage " << obs::stageName(Stage(s)) << " out of order for id "
          << lc.id;
      prev = lc.ts_ns[s];
    }
    if (lc.complete()) ++complete;
  }
  // At least one sampled message must have been seen at every stage:
  // enqueue -> aggregate -> flush -> wire-send -> deliver -> resolve.
  EXPECT_GT(complete, 0u);

  // Stage latencies derive from those lifecycles.
  const obs::StageLatencies lat = obs::stageLatencies(cluster.tracer());
  EXPECT_GT(lat.end_to_end.count(), 0u);
  EXPECT_GE(lat.end_to_end.min(), 0.0);
}

TEST(Trace, ChromeTraceExportHasFlowsAndCounters) {
  rt::Cluster cluster(tracedConfig());
  runTracedWorkload(cluster);

  std::ostringstream os;
  cluster.writeTrace(os);
  const std::string j = os.str();
  EXPECT_TRUE(jsonBalanced(j));
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"process_name\""), std::string::npos);
  EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
  // Named pipeline tracks.
  EXPECT_NE(j.find("agg.0.0"), std::string::npos);
  EXPECT_NE(j.find("net.0"), std::string::npos);
  EXPECT_NE(j.find("gpu.0"), std::string::npos);
  // Message slices for every stage.
  for (int s = 0; s < obs::kMessageStages; ++s)
    EXPECT_NE(j.find(std::string("\"") + obs::stageName(Stage(s)) + "\""),
              std::string::npos)
        << obs::stageName(Stage(s));
  // At least one full flow chain: start, step, finish (with binding point).
  EXPECT_NE(j.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(j.find("\"bp\":\"e\""), std::string::npos);
  // Depth-gauge counter tracks from the sampler thread.
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j.find("gpu_queue_depth"), std::string::npos);
}

TEST(Trace, SurvivesFaultyWireWithReliability) {
  // The trace ID lives in the message's cmd word, so it must survive drops,
  // duplicates, reordering and retransmission — complete flows included.
  rt::ClusterConfig c = tracedConfig();
  c.fault.seed = 5;
  c.fault.drop_prob = 0.15;
  c.fault.dup_prob = 0.05;
  c.fault.reorder_prob = 0.25;
  c.reliability.enabled = true;
  c.reliability.rto_base = std::chrono::microseconds(500);
  c.reliability.rto_max = std::chrono::microseconds(8000);
  rt::Cluster cluster(c);
  runTracedWorkload(cluster);

  std::size_t complete = 0;
  for (const auto& lc : obs::reconstructLifecycles(cluster.tracer()))
    if (lc.complete()) ++complete;
  EXPECT_GT(complete, 0u);

  std::ostringstream os;
  cluster.writeTrace(os);
  EXPECT_TRUE(jsonBalanced(os.str()));

  // The registry snapshot carries the fault/reliability counters too. Any
  // dropped batch — data or ACK — can only have been healed by at least one
  // retransmission.
  const MetricsSnapshot snap = cluster.collectMetrics();
  EXPECT_GT(snap.number("fault.drops") + snap.number("fault.duplicates"), 0.0);
  if (snap.number("fault.drops") > 0.0) {
    EXPECT_GT(snap.number("fabric.retransmits"), 0.0);
  }
  EXPECT_GT(snap.number("trace.candidates"), 0.0);
}

TEST(Trace, ClusterMetricsSnapshotCoversPipeline) {
  rt::Cluster cluster(tracedConfig());
  runTracedWorkload(cluster);
  const MetricsSnapshot snap = cluster.collectMetrics();

  // 2 nodes x 128 work-items, every op a shmemInc.
  EXPECT_EQ(snap.number("ops.inc_local", "node=0") +
                snap.number("ops.inc_remote", "node=0"),
            128.0);
  EXPECT_EQ(snap.number("agg.messages_routed", "node=0") +
                snap.number("agg.messages_routed", "node=1"),
            256.0);
  EXPECT_EQ(snap.number("net.messages_resolved", "node=0") +
                snap.number("net.messages_resolved", "node=1"),
            256.0);
  EXPECT_EQ(snap.number("fabric.messages"),
            snap.number("ops.inc_remote", "node=0") +
                snap.number("ops.inc_remote", "node=1"));
  // The gauge sampler fed depth histograms on its cadence.
  EXPECT_TRUE(snap.contains("gpu_queue.depth", "node=0"));
  EXPECT_TRUE(snap.contains("fabric.pending"));
  // Trace-derived end-to-end latency made it into the registry.
  EXPECT_TRUE(snap.contains("trace.latency_ns.end_to_end"));

  std::ostringstream json;
  cluster.writeMetricsJson(json);
  EXPECT_TRUE(jsonBalanced(json.str()));
}

TEST(Trace, DisabledObservabilityLeavesMessagesUnstamped) {
  rt::ClusterConfig c = tracedConfig();
  c.obs.enabled = false;
  c.obs.gauge_period = std::chrono::microseconds(0);
  rt::Cluster cluster(c);
  runTracedWorkload(cluster);
  EXPECT_TRUE(cluster.tracer().allEvents().empty());
  EXPECT_EQ(cluster.tracer().sampledCandidates(), 0u);
  std::ostringstream os;
  cluster.writeTrace(os);
  EXPECT_TRUE(jsonBalanced(os.str()));  // valid, just empty of events
}

// --- NetMessage trace-ID stamping ------------------------------------------

TEST(Trace, TraceIdRoundTripsThroughCmdWord) {
  rt::NetMessage m = rt::NetMessage::put(3, 0x1000, 42);
  EXPECT_EQ(m.traceId(), 0u);
  m.setTraceId(0xbeef);
  EXPECT_EQ(m.traceId(), 0xbeefu);
  // Stamping must not disturb the command or the payload.
  EXPECT_EQ(m.command(), rt::Command::kPut);
  EXPECT_EQ(m.dest, 3u);
  EXPECT_EQ(m.addr, 0x1000u);
  EXPECT_EQ(m.value, 42u);
  m.setTraceId(0);
  EXPECT_EQ(m.traceId(), 0u);
  EXPECT_EQ(m.command(), rt::Command::kPut);
}

// --- ClusterRunStats::merge ------------------------------------------------

TEST(Stats, ClusterRunStatsMergeSemantics) {
  rt::ClusterRunStats a;
  a.nodes = 4;
  a.put_remote = 10;
  a.net_batches = 2;
  a.net_messages = 20;
  a.avg_batch_bytes = 100.0;
  a.reorder_peak = 5;
  rt::ClusterRunStats b;
  b.nodes = 4;
  b.put_remote = 30;
  b.net_batches = 6;
  b.net_messages = 60;
  b.avg_batch_bytes = 200.0;
  b.reorder_peak = 3;

  a.merge(b);
  EXPECT_EQ(a.nodes, 4u);            // topology, not a quantity
  EXPECT_EQ(a.put_remote, 40u);      // counts sum
  EXPECT_EQ(a.net_batches, 8u);
  EXPECT_EQ(a.net_messages, 80u);
  EXPECT_EQ(a.reorder_peak, 5u);     // peak combines with max, not +
  // Mean re-weighted by batch count: (100*2 + 200*6) / 8.
  EXPECT_DOUBLE_EQ(a.avg_batch_bytes, 175.0);
}

TEST(Stats, ClusterRunStatsMergeWithEmptySides) {
  rt::ClusterRunStats empty;
  rt::ClusterRunStats full;
  full.net_batches = 4;
  full.avg_batch_bytes = 50.0;
  full.reorder_peak = 2;

  rt::ClusterRunStats a = full;
  a.merge(empty);  // merging nothing changes nothing
  EXPECT_EQ(a.net_batches, 4u);
  EXPECT_DOUBLE_EQ(a.avg_batch_bytes, 50.0);

  rt::ClusterRunStats b = empty;
  b.merge(full);  // merging into nothing adopts the other side
  EXPECT_EQ(b.net_batches, 4u);
  EXPECT_DOUBLE_EQ(b.avg_batch_bytes, 50.0);
  EXPECT_EQ(b.reorder_peak, 2u);
}

TEST(Stats, ClusterRunStatsMergeTakesWorstShardLatency) {
  rt::ClusterRunStats a;
  a.lat_stage_p99_ns[0] = 100.0;
  a.lat_e2e_p99_ns = 500.0;
  a.lat_samples = 3;
  rt::ClusterRunStats b;
  b.lat_stage_p99_ns[0] = 400.0;
  b.lat_e2e_p99_ns = 200.0;
  b.lat_samples = 5;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.lat_stage_p99_ns[0], 400.0);  // worst shard wins
  EXPECT_DOUBLE_EQ(a.lat_e2e_p99_ns, 500.0);
  EXPECT_EQ(a.lat_samples, 8u);  // sample counts sum
}

// --- Flight recorder -------------------------------------------------------

TEST(FlightRec, RingKeepsLastEventsAndSkipsLiveSlotWhenWrapped) {
  obs::FlightRing ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);

  TraceEvent e{};
  for (std::uint64_t i = 0; i < 3; ++i) {
    e.value = i;
    ring.record(e);
  }
  // Not yet wrapped: every recorded event is visible.
  auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(snap[i].value, i);

  for (std::uint64_t i = 3; i < 10; ++i) {
    e.value = i;
    ring.record(e);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  // Wrapped: the single oldest retained slot is skipped (it is the one a
  // live writer could be overwriting), so the last capacity-1 remain.
  snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(snap[i].value, 7 + i);
}

TEST(FlightRec, RecorderRegistersThreadsLockFreeAndDumpsJson) {
  obs::FlightRecorder rec(8);
  ASSERT_TRUE(rec.enabled());
  TraceEvent e{};
  e.stage = Stage::kEnqueue;
  rec.record(e);
  rec.nameThread("main-thread");
  rec.nameThread("renamed");  // first name wins

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&rec, t] {
      TraceEvent w{};
      w.value = std::uint64_t(t);
      for (int i = 0; i < 20; ++i) rec.record(w);
      rec.nameThread("worker-" + std::to_string(t));
    });
  for (auto& w : workers) w.join();

  const auto threads = rec.threads();
  EXPECT_EQ(threads.size(), 5u);

  std::ostringstream os;
  obs::writeFlightRecorderJson(os, rec, "unit-test", 12345);
  const std::string j = os.str();
  EXPECT_TRUE(jsonBalanced(j));
  EXPECT_NE(j.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(j.find("main-thread"), std::string::npos);
  EXPECT_EQ(j.find("renamed"), std::string::npos);
  for (int t = 0; t < 4; ++t)
    EXPECT_NE(j.find("worker-" + std::to_string(t)), std::string::npos);
  // 20 events into an 8-slot ring: overwrites are reported.
  EXPECT_NE(j.find("\"overwritten\":12"), std::string::npos);
}

TEST(FlightRec, ZeroCapacityDisablesRecording) {
  obs::FlightRecorder rec(0);
  EXPECT_FALSE(rec.enabled());
  rec.nameThread("ignored");
  EXPECT_TRUE(rec.threads().empty());
}

TEST(FlightRec, TracerRecordsUnsampledEventsToFlightRingOnly) {
  TraceConfig cfg;  // enabled = false, flightrec = true (default)
  Tracer t(cfg);
  EXPECT_FALSE(t.enabled());
  EXPECT_TRUE(t.active());  // flight recorder keeps record sites live
  t.recordStage(Stage::kEnqueue, 0, 1, 2, 99);  // id 0 = unsampled
  EXPECT_TRUE(t.allEvents().empty());           // sampled buffers untouched
  const auto threads = t.flightRecorder().threads();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0]->ring.recorded(), 1u);
  EXPECT_EQ(threads[0]->ring.snapshot()[0].value, 99u);

  TraceConfig off;
  off.flightrec = false;
  Tracer t2(off);
  EXPECT_FALSE(t2.active());  // both layers off: record sites fully dark
}

// --- GRAVEL_TRACE_SAMPLE ---------------------------------------------------

TEST(Trace, SampleIntervalEnvOverridesConfig) {
  ASSERT_EQ(setenv("GRAVEL_TRACE_SAMPLE", "3", 1), 0);
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.sample_interval = 64;
  {
    Tracer t(cfg);
    EXPECT_EQ(t.config().sample_interval, 3u);
    std::uint32_t sampled = 0;
    for (int i = 0; i < 30; ++i)
      if (t.maybeSample() != 0) ++sampled;
    EXPECT_EQ(sampled, 10u);  // 1 in 3
  }
  // Zero and garbage leave the configured value in force.
  ASSERT_EQ(setenv("GRAVEL_TRACE_SAMPLE", "0", 1), 0);
  EXPECT_EQ(Tracer(cfg).config().sample_interval, 64u);
  ASSERT_EQ(setenv("GRAVEL_TRACE_SAMPLE", "banana", 1), 0);
  EXPECT_EQ(Tracer(cfg).config().sample_interval, 64u);
  ASSERT_EQ(unsetenv("GRAVEL_TRACE_SAMPLE"), 0);
  EXPECT_EQ(Tracer(cfg).config().sample_interval, 64u);
}

// --- Latency attribution ---------------------------------------------------

TraceEvent latEvent(Stage s, std::uint32_t id, std::uint64_t ts,
                    std::uint16_t dest = 1, std::uint8_t kind = 1) {
  TraceEvent e{};
  e.ts_ns = ts;
  e.id = id;
  e.aux = dest;
  e.stage = s;
  e.kind = kind;
  return e;
}

TEST(Latency, AttributesTransitionsAndNamesBottleneck) {
  obs::LatencyAttribution lat;
  // One message with geometrically growing stage gaps; the last transition
  // (deliver -> resolve, gap 1600 ns) is the bottleneck.
  const std::uint64_t ts[] = {100, 200, 400, 800, 1600, 3200};
  for (int s = 0; s < obs::kMessageStages; ++s)
    lat.consume(latEvent(Stage(s), 7, ts[s]));

  const auto sum = lat.summary();
  for (int t = 0; t < obs::LatencyAttribution::kTransitions; ++t)
    EXPECT_EQ(sum.stage_count[t], 1u) << "transition " << t;
  EXPECT_EQ(sum.e2e_count, 1u);
  EXPECT_EQ(sum.bottleneck, obs::LatencyAttribution::kTransitions - 1);
  // The 1600 ns gap lands in bucket [1024, 2048); e2e (3100) in [2048,4096).
  EXPECT_GE(sum.stage_p99_ns[4], 1024.0);
  EXPECT_LT(sum.stage_p99_ns[4], 2048.0);
  EXPECT_GE(sum.e2e_p99_ns, 2048.0);
  EXPECT_LT(sum.e2e_p99_ns, 4096.0);

  // Keyed by (dest, kind).
  ASSERT_EQ(lat.keyed().size(), 1u);
  EXPECT_EQ(lat.keyed().begin()->first.first, 1u);
  EXPECT_EQ(lat.keyed().begin()->first.second, 1u);
}

TEST(Latency, DuplicatesKeepFirstAndOutOfOrderArrivalsStillPair) {
  obs::LatencyAttribution lat;
  // Events arrive across buffers in arbitrary order; retransmission
  // re-records wire-send with a later timestamp, which must be ignored.
  lat.consume(latEvent(Stage::kResolve, 9, 600));
  lat.consume(latEvent(Stage::kEnqueue, 9, 100));
  lat.consume(latEvent(Stage::kDeliver, 9, 500));
  lat.consume(latEvent(Stage::kDeliver, 9, 5000));  // duplicate: keep first
  const auto sum = lat.summary();
  EXPECT_EQ(sum.stage_count[4], 1u);  // deliver -> resolve paired once
  EXPECT_GE(sum.stage_p99_ns[4], 64.0);
  EXPECT_LT(sum.stage_p99_ns[4], 128.0);  // 100 ns, not 5000-based
  EXPECT_EQ(sum.e2e_count, 1u);           // enqueue + resolve = 500 ns
}

TEST(Latency, IdWrapStartsFreshIncarnation) {
  obs::LatencyAttribution lat;
  for (int s = 0; s < obs::kMessageStages; ++s)
    lat.consume(latEvent(Stage(s), 3, 100 * (s + 1)));
  // 16-bit ids recycle: a second enqueue for id 3 is a new message.
  for (int s = 0; s < obs::kMessageStages; ++s)
    lat.consume(latEvent(Stage(s), 3, 100000 + 100 * (s + 1)));
  const auto sum = lat.summary();
  EXPECT_EQ(sum.e2e_count, 2u);
  for (int t = 0; t < obs::LatencyAttribution::kTransitions; ++t)
    EXPECT_EQ(sum.stage_count[t], 2u);
}

TEST(Latency, BackwardsClockSampleIsDiscarded) {
  obs::LatencyAttribution lat;
  // Cross-core steady-clock reads can race at sub-tick resolution; a
  // backwards pair must not be recorded as a huge unsigned delta.
  lat.consume(latEvent(Stage::kEnqueue, 4, 200));
  lat.consume(latEvent(Stage::kAggregate, 4, 150));
  EXPECT_EQ(lat.summary().stage_count[0], 0u);
}

TEST(Latency, IngestsTracerBuffersIncrementallyAndPublishes) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.flightrec = false;
  Tracer t(cfg);
  obs::LatencyAttribution lat;
  for (int s = 0; s < obs::kMessageStages; ++s)
    t.recordStage(Stage(s), 11, 0, 1, 0, 1);
  lat.ingest(t);
  EXPECT_EQ(lat.summary().e2e_count, 1u);
  // A second ingest consumes only new events — counts must not double.
  lat.ingest(t);
  EXPECT_EQ(lat.summary().e2e_count, 1u);

  MetricsRegistry reg;
  lat.publish(reg);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.contains("lat.stage_ns", "stage=enqueue_to_aggregate"));
  EXPECT_TRUE(snap.contains("lat.e2e_ns"));
  EXPECT_TRUE(snap.contains("lat.bottleneck_stage"));
  EXPECT_TRUE(snap.contains("lat.stage_p99_ns", "stage=deliver_to_resolve"));
}

TEST(Latency, ClusterRunStatsCarryStageQuantiles) {
  rt::Cluster cluster(tracedConfig());
  runTracedWorkload(cluster);
  const rt::ClusterRunStats s = cluster.runStats();
  EXPECT_GT(s.lat_samples, 0u);
  EXPECT_GT(s.lat_e2e_p99_ns, 0.0);
  EXPECT_GE(s.lat_e2e_p99_ns, s.lat_e2e_p50_ns);
  // Every transition of the pipeline was exercised.
  for (int t = 0; t < rt::ClusterRunStats::kLatTransitions; ++t)
    EXPECT_GT(s.lat_stage_p99_ns[t], 0.0) << obs::transitionLabel(t);

  const MetricsSnapshot snap = cluster.collectMetrics();
  EXPECT_TRUE(snap.contains("lat.e2e_p99_ns"));
}

// --- Stall watchdog --------------------------------------------------------

obs::WatchdogConfig fastWatchdog() {
  obs::WatchdogConfig wc;
  wc.period = std::chrono::microseconds(1000);
  wc.no_progress_deadline = std::chrono::milliseconds(10);
  wc.backpressure_deadline = std::chrono::milliseconds(10);
  wc.stalled_link_deadline = std::chrono::milliseconds(10);
  return wc;
}

TEST(Watchdog, DiagnosesNoProgressAndClosesOnRecovery) {
  obs::Watchdog wd(fastWatchdog());
  obs::WatchdogSample s;
  s.now_ns = 0;
  s.queues = {{0, 100, 50}};
  wd.observe(s);  // baseline tick
  EXPECT_TRUE(wd.diagnoses().empty());

  s.now_ns = 20'000'000;  // 20 ms later, routed unchanged, backlog 50
  wd.observe(s);
  auto diags = wd.diagnoses();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, obs::StallKind::kNoProgress);
  EXPECT_EQ(diags[0].node, 0u);
  EXPECT_EQ(diags[0].depth, 50u);
  EXPECT_TRUE(diags[0].open);
  EXPECT_NE(wd.describe().find("[no-progress]"), std::string::npos);
  EXPECT_NE(wd.describe().find("node 0"), std::string::npos);

  s.now_ns = 25'000'000;
  s.queues = {{0, 100, 60}};  // progress: routed advanced
  wd.observe(s);
  diags = wd.diagnoses();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_FALSE(diags[0].open);  // diagnosis retained, marked recovered
}

TEST(Watchdog, EmptyBacklogIsNotAStall) {
  obs::Watchdog wd(fastWatchdog());
  obs::WatchdogSample s;
  s.now_ns = 0;
  s.queues = {{2, 80, 80}};  // all routed
  wd.observe(s);
  s.now_ns = 50'000'000;  // far past the deadline, still nothing owed
  wd.observe(s);
  EXPECT_TRUE(wd.diagnoses().empty());
}

TEST(Watchdog, DiagnosesBackpressureAndStalledLinkWithSeqRange) {
  obs::Watchdog wd(fastWatchdog());
  obs::WatchdogSample s;
  s.now_ns = 30'000'000;
  s.buffers = {{1, 0, 5, 20'000'000}};           // 20 ms old buffer 1->0
  s.links = {{0, 1, 3, 7, 10, 2, 15'000'000}};   // seq [7,10) stalled 15 ms
  wd.observe(s);
  const auto diags = wd.diagnoses();
  ASSERT_EQ(diags.size(), 2u);

  const std::string desc = wd.describe();
  EXPECT_NE(desc.find("[backpressure]"), std::string::npos);
  EXPECT_NE(desc.find("node 1 -> dest 0"), std::string::npos);
  EXPECT_NE(desc.find("[stalled-link]"), std::string::npos);
  EXPECT_NE(desc.find("seq [7,10)"), std::string::npos);

  // Registry publication, one metric per diagnosis plus the total.
  MetricsRegistry reg;
  wd.publish(reg);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.number("watchdog.diagnoses"), 2.0);
  EXPECT_TRUE(snap.contains("watchdog.backpressure_ms", "node=1,dest=0"));
  EXPECT_TRUE(snap.contains("watchdog.stalled_link_ms", "link=0->1"));

  std::ostringstream os;
  obs::writeWatchdogJson(os, wd);
  EXPECT_TRUE(jsonBalanced(os.str()));
  EXPECT_NE(os.str().find("\"kind\":\"stalled-link\""), std::string::npos);
}

// A stalled-link diagnosis under the degrade policy names the breaker state
// and the destination's membership epoch — a reader of the post-mortem can
// tell "link excised and dead-lettering" from "link merely slow" without
// cross-referencing cluster stats.
TEST(Watchdog, StalledLinkDiagnosisCarriesBreakerAndEpoch) {
  obs::Watchdog wd(fastWatchdog());
  obs::WatchdogSample s;
  s.now_ns = 30'000'000;
  s.links = {{0, 1, 3, 7, 10, 2, 15'000'000, 1, 4}};  // breaker open, epoch 4
  wd.observe(s);
  ASSERT_EQ(wd.diagnoses().size(), 1u);

  const std::string desc = wd.describe();
  EXPECT_NE(desc.find("breaker open"), std::string::npos) << desc;
  EXPECT_NE(desc.find("dest epoch 4"), std::string::npos) << desc;

  std::ostringstream os;
  obs::writeWatchdogJson(os, wd);
  EXPECT_TRUE(jsonBalanced(os.str()));
  EXPECT_NE(os.str().find("\"breaker\":\"open\""), std::string::npos);
  EXPECT_NE(os.str().find("\"epoch\":4"), std::string::npos);
}

TEST(Watchdog, DiagnosisTableOverflowIsCountedNotGrown) {
  obs::WatchdogConfig wc = fastWatchdog();
  wc.max_diagnoses = 2;
  obs::Watchdog wd(wc);
  obs::WatchdogSample s;
  s.now_ns = 30'000'000;
  for (std::uint32_t d = 0; d < 5; ++d)
    s.buffers.push_back({0, d, 1, 20'000'000});
  wd.observe(s);
  EXPECT_EQ(wd.diagnoses().size(), 2u);
  EXPECT_EQ(wd.overflow(), 3u);
  EXPECT_NE(wd.describe().find("+3 overflowed"), std::string::npos);
}

TEST(Watchdog, ForcedAggregatorStallIsNamedInQuietPostMortem) {
  rt::ClusterConfig c = tracedConfig();
  c.quiet_deadline = std::chrono::milliseconds(400);
  c.watchdog.period = std::chrono::microseconds(2000);
  c.watchdog.no_progress_deadline = std::chrono::milliseconds(50);
  rt::Cluster cluster(c);
  cluster.start();
  // Wedge node 0's aggregator: its GPU queue fills and never drains.
  cluster.node(0).aggregator().stop();
  auto slots = cluster.alloc<std::uint64_t>(64);
  try {
    cluster.launchAll(128, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
      cluster.node(n).shmemInc(wi, (n + 1) % 2, slots.at(wi.globalId() % 64));
    });
    FAIL() << "quiet() should have hit its deadline";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("quiet deadline"), std::string::npos) << msg;
    // The watchdog names the wedged queue, not just "something is slow".
    EXPECT_NE(msg.find("[no-progress]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gpu-queue node 0"), std::string::npos) << msg;
  }
  // The always-on flight recorder captured every runtime thread's last
  // events — the dump a post-mortem reader opens first.
  std::ostringstream os;
  cluster.writeFlightRecorder(os, "test");
  const std::string j = os.str();
  EXPECT_TRUE(jsonBalanced(j));
  EXPECT_NE(j.find("gpu."), std::string::npos);
  EXPECT_NE(j.find("agg."), std::string::npos);
  EXPECT_NE(j.find("net."), std::string::npos);
}

TEST(Watchdog, StalledLinkIsNamedWhenWireGoesDark) {
  rt::ClusterConfig c = tracedConfig();
  c.quiet_deadline = std::chrono::milliseconds(400);
  c.watchdog.period = std::chrono::microseconds(2000);
  c.watchdog.stalled_link_deadline = std::chrono::milliseconds(50);
  // Every batch (data and ACK) is dropped; retries never exhaust, so the
  // quiet deadline - not a LinkFailureError - ends the run.
  c.fault.seed = 1;
  c.fault.drop_prob = 1.0;
  c.reliability.enabled = true;
  c.reliability.rto_base = std::chrono::microseconds(500);
  c.reliability.rto_max = std::chrono::microseconds(4000);
  c.reliability.max_retries = 1u << 30;
  rt::Cluster cluster(c);
  auto slots = cluster.alloc<std::uint64_t>(64);
  try {
    cluster.launchAll(32, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
      cluster.node(n).shmemInc(wi, (n + 1) % 2, slots.at(wi.globalId() % 64));
    });
    FAIL() << "quiet() should have hit its deadline";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("[stalled-link]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("seq ["), std::string::npos) << msg;
  }
}

// --- Multi-threaded aggregator flow export ---------------------------------

std::size_t countOccurrences(const std::string& hay, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(Trace, FlowEventsSurviveMultiThreadedAggregators) {
  // With >= 2 aggregator threads per node, a message's aggregate/flush
  // events land in different per-thread buffers than its enqueue; the
  // exporter must still emit matched flow start/finish pairs.
  rt::ClusterConfig c = tracedConfig();
  c.aggregator_threads = 2;
  rt::Cluster cluster(c);
  runTracedWorkload(cluster);

  std::ostringstream os;
  cluster.writeTrace(os);
  const std::string j = os.str();
  EXPECT_TRUE(jsonBalanced(j));
  EXPECT_NE(j.find("agg.0.1"), std::string::npos);  // second worker traced
  const std::size_t starts = countOccurrences(j, "\"ph\":\"s\"");
  const std::size_t finishes = countOccurrences(j, "\"ph\":\"f\"");
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, finishes);  // no dangling flow ends
}

// --- Windowed time-series collector ----------------------------------------

obs::TimeSeriesConfig tsConfig() {
  obs::TimeSeriesConfig c;
  c.enabled = true;
  return c;
}

TEST(TimeSeries, FirstCollectEmitsAbsolutesThenWindowedDeltas) {
  MetricsRegistry reg;
  reg.setCounter("sent", "", 100);
  reg.setGauge("depth", "", 5.0);
  obs::TimeSeries ts(tsConfig());

  // First window: delta against an empty baseline == absolute values, so a
  // run shorter than one period still dumps something useful.
  ts.collect(reg.snapshot(), 1000, 1'000'000'000, {}, {}, {});
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts.windows()[0].delta.number("sent"), 100.0);

  reg.setCounter("sent", "", 140);
  reg.setGauge("depth", "", 2.0);
  ts.collect(reg.snapshot(), 2000, 2'000'000'000, {}, {}, {});
  const std::vector<obs::TimeSeriesWindow> ws = ts.windows();
  ASSERT_EQ(ws.size(), 2u);
  const obs::TimeSeriesWindow& w = ws[1];
  EXPECT_EQ(w.delta.number("sent"), 40.0);   // counter: windowed
  EXPECT_EQ(w.delta.number("depth"), 2.0);   // gauge: current level
  EXPECT_DOUBLE_EQ(w.seconds(), 1.0);
  EXPECT_DOUBLE_EQ(w.ratePerSec("sent"), 40.0);
  EXPECT_EQ(w.seq, 1u);
  EXPECT_EQ(w.wall_ms, 2000u);
}

TEST(TimeSeries, PruneDropsZeroDeltaRowsButKeepsGauges) {
  MetricsRegistry reg;
  reg.setCounter("idle", "", 7);   // never changes after the baseline
  reg.setCounter("busy", "", 1);
  reg.setGauge("depth", "", 3.0);
  obs::TimeSeries ts(tsConfig());
  ts.collect(reg.snapshot(), 0, 0, {}, {}, {});
  reg.setCounter("busy", "", 2);
  ts.collect(reg.snapshot(), 250, 250'000'000, {}, {}, {});

  const obs::TimeSeriesWindow w = ts.windows()[1];
  EXPECT_FALSE(w.delta.contains("idle"));  // zero delta: no signal
  EXPECT_TRUE(w.delta.contains("busy"));
  EXPECT_TRUE(w.delta.contains("depth"));  // gauges always survive

  // Disabling the prune keeps exhaustive windows.
  obs::TimeSeriesConfig c = tsConfig();
  c.prune_zero_deltas = false;
  obs::TimeSeries full(c);
  full.collect(reg.snapshot(), 0, 0, {}, {}, {});
  full.collect(reg.snapshot(), 250, 250'000'000, {}, {}, {});
  EXPECT_TRUE(full.windows()[1].delta.contains("idle"));
}

TEST(TimeSeries, RingIsBoundedAndCountsDroppedWindows) {
  obs::TimeSeriesConfig c = tsConfig();
  c.capacity = 4;
  obs::TimeSeries ts(c);
  MetricsRegistry reg;
  for (int i = 0; i < 6; ++i)
    ts.collect(reg.snapshot(), std::uint64_t(i), std::uint64_t(i) * 1000000,
               {}, {}, {});
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.droppedWindows(), 2u);
  const std::vector<obs::TimeSeriesWindow> ws = ts.windows();
  EXPECT_EQ(ws.front().seq, 2u);  // oldest retained
  EXPECT_EQ(ws.back().seq, 5u);
  EXPECT_EQ(ts.lastWindows(2).front().seq, 4u);
  EXPECT_EQ(ts.lastWindows(99).size(), 4u);  // clamped, not UB
}

TEST(TimeSeries, MembershipAndBreakerTransitionsTagTheWindow) {
  obs::TimeSeries ts(tsConfig());
  MetricsRegistry reg;
  // Baseline: everything healthy. A normal first sight is silent.
  ts.collect(reg.snapshot(), 0, 0, {{0, 0, 0}, {1, 0, 0}},
             {{0, 1, 0, 0}}, {});
  EXPECT_TRUE(ts.windows()[0].epoch_changes.empty());
  EXPECT_TRUE(ts.windows()[0].breaker_changes.empty());

  // Node 1 dies and link 0->1's breaker trips between ticks.
  ts.collect(reg.snapshot(), 250, 250'000'000, {{0, 0, 0}, {1, 2, 0}},
             {{0, 1, 1, 1}}, {});
  const obs::TimeSeriesWindow w = ts.windows()[1];
  ASSERT_EQ(w.epoch_changes.size(), 1u);
  EXPECT_EQ(w.epoch_changes[0].node, 1u);
  EXPECT_EQ(w.epoch_changes[0].from_health, 0);  // alive
  EXPECT_EQ(w.epoch_changes[0].to_health, 2);    // dead
  ASSERT_EQ(w.breaker_changes.size(), 1u);
  EXPECT_EQ(w.breaker_changes[0].src, 0u);
  EXPECT_EQ(w.breaker_changes[0].dst, 1u);
  EXPECT_EQ(w.breaker_changes[0].to_state, 1);   // open
  EXPECT_EQ(w.breaker_changes[0].era, 1u);

  // Steady state afterwards: no re-announcement while nothing changes.
  ts.collect(reg.snapshot(), 500, 500'000'000, {{0, 0, 0}, {1, 2, 0}},
             {{0, 1, 1, 1}}, {});
  EXPECT_TRUE(ts.windows()[2].epoch_changes.empty());
  EXPECT_TRUE(ts.windows()[2].breaker_changes.empty());
}

TEST(TimeSeries, AbnormalFirstSightIsAnnounced) {
  // A collector attached mid-incident (GRAVEL_STATUS_PORT added to a wedged
  // run) must still report the incident, not wait for the next transition.
  obs::TimeSeries ts(tsConfig());
  MetricsRegistry reg;
  ts.collect(reg.snapshot(), 0, 0, {{3, 2, 1}}, {{0, 3, 1, 2}}, {});
  const obs::TimeSeriesWindow w = ts.windows()[0];
  ASSERT_EQ(w.epoch_changes.size(), 1u);
  EXPECT_EQ(w.epoch_changes[0].node, 3u);
  EXPECT_EQ(w.epoch_changes[0].to_health, 2);
  EXPECT_EQ(w.epoch_changes[0].epoch, 1u);
  ASSERT_EQ(w.breaker_changes.size(), 1u);
  EXPECT_EQ(w.breaker_changes[0].to_state, 1);
}

TEST(TimeSeries, JsonDumpIsSchemaVersionedAndBalanced) {
  obs::TimeSeries ts(tsConfig());
  MetricsRegistry reg;
  reg.setCounter("fabric.messages", "", 10);
  obs::Diagnosis diag;
  diag.node = 1;
  diag.depth = 42;
  ts.collect(reg.snapshot(), 1000, 1'000'000'000, {{1, 2, 0}},
             {{0, 1, 1, 1}}, {diag});
  std::ostringstream os;
  ts.writeJson(os);
  const std::string j = os.str();
  EXPECT_TRUE(jsonBalanced(j));
  EXPECT_NE(j.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"gravel-timeseries\""), std::string::npos);
  EXPECT_NE(j.find("\"epoch_changes\""), std::string::npos);
  EXPECT_NE(j.find("\"to\":\"dead\""), std::string::npos);
  EXPECT_NE(j.find("\"to\":\"open\""), std::string::npos);
  EXPECT_NE(j.find("\"watchdog\""), std::string::npos);
  EXPECT_NE(j.find("fabric.messages"), std::string::npos);
}

// --- Prometheus text exposition --------------------------------------------

TEST(Prometheus, ExpositionMapsEveryKindAndManglesNames) {
  MetricsRegistry reg;
  reg.setCounter("fabric.messages", "node=0", 42);
  reg.setGauge("dlq.stored", "", 3.5);
  reg.observe("ack.rtt", "", 10.0);
  reg.observe("ack.rtt", "", 30.0);
  reg.observeHistogram("msg.size", "link=0->1", 0);
  reg.observeHistogram("msg.size", "link=0->1", 8);

  std::ostringstream os;
  obs::writePrometheusText(os, reg.snapshot());
  const std::string t = os.str();

  // counter: dots mangle to underscores under the gravel_ namespace.
  EXPECT_NE(t.find("# TYPE gravel_fabric_messages counter\n"),
            std::string::npos);
  EXPECT_NE(t.find("gravel_fabric_messages{node=\"0\"} 42\n"),
            std::string::npos);
  // gauge
  EXPECT_NE(t.find("# TYPE gravel_dlq_stored gauge\n"), std::string::npos);
  EXPECT_NE(t.find("gravel_dlq_stored 3.5\n"), std::string::npos);
  // stat -> summary with _min/_max companions
  EXPECT_NE(t.find("# TYPE gravel_ack_rtt summary\n"), std::string::npos);
  EXPECT_NE(t.find("gravel_ack_rtt_count 2\n"), std::string::npos);
  EXPECT_NE(t.find("gravel_ack_rtt_sum 40\n"), std::string::npos);
  EXPECT_NE(t.find("gravel_ack_rtt_min 10\n"), std::string::npos);
  EXPECT_NE(t.find("gravel_ack_rtt_max 30\n"), std::string::npos);
  // histogram: cumulative le bounds per the Pow2 rule — bucket 0 is {0}
  // (le="0"), 8 lands in [8,16) whose inclusive integer bound is 15.
  EXPECT_NE(t.find("# TYPE gravel_msg_size histogram\n"), std::string::npos);
  EXPECT_NE(t.find("gravel_msg_size_bucket{link=\"0->1\",le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(t.find("gravel_msg_size_bucket{link=\"0->1\",le=\"15\"} 2\n"),
            std::string::npos);
  EXPECT_NE(t.find("gravel_msg_size_bucket{link=\"0->1\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(t.find("gravel_msg_size_count{link=\"0->1\"} 2\n"),
            std::string::npos);
  // _sum is the midpoint estimate: 0 contributes 0, 8 contributes 12.
  EXPECT_NE(t.find("gravel_msg_size_sum{link=\"0->1\"} 12\n"),
            std::string::npos);

  // Structural sweep: every line is a # TYPE comment or "name[{labels}] value"
  // with the gravel_ namespace — the shape Prometheus' parser accepts.
  std::istringstream lines(t);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) continue;
    EXPECT_EQ(line.rfind("gravel_", 0), 0u) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(Prometheus, LabelValuesEscapeAndBareFragmentsGetAKey) {
  MetricsRegistry reg;
  reg.setCounter("c", "path=a\"b\\c", 1);   // quote + backslash in the value
  reg.setCounter("d", "orphan", 2);         // fragment without '='
  std::ostringstream os;
  obs::writePrometheusText(os, reg.snapshot());
  const std::string t = os.str();
  EXPECT_NE(t.find("gravel_c{path=\"a\\\"b\\\\c\"} 1"), std::string::npos);
  EXPECT_NE(t.find("gravel_d{label=\"orphan\"} 2"), std::string::npos);
}

// --- Status server ----------------------------------------------------------

#if GRAVEL_STATUS_SERVER_SUPPORTED
/// Minimal raw-socket HTTP client: one GET, read to EOF. The server speaks
/// HTTP/1.0 with Connection: close, so EOF terminates the response.
std::string httpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) break;
    off += std::size_t(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, std::size_t(n));
  }
  ::close(fd);
  return out;
}

/// Body after the blank line separating HTTP headers from content.
std::string httpBody(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}
#endif

TEST(StatusServer, ServesHandlerRoutesOnAnEphemeralPort) {
  if (!obs::StatusServer::supported()) GTEST_SKIP() << "no POSIX sockets";
#if GRAVEL_STATUS_SERVER_SUPPORTED
  obs::StatusServerConfig cfg;
  cfg.enabled = true;
  cfg.port = 0;  // ephemeral: tests never fight over a fixed port
  std::vector<std::string> seen;
  std::mutex seenMu;
  obs::StatusServer server(cfg, [&](const std::string& path) {
    {
      std::scoped_lock lk(seenMu);
      seen.push_back(path);
    }
    if (path == "/ok")
      return obs::StatusResponse{200, "text/plain", "payload\n"};
    return obs::StatusResponse{404, "text/plain", "nope\n"};
  });
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string ok = httpGet(server.port(), "/ok");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length: 8"), std::string::npos);
  EXPECT_EQ(httpBody(ok), "payload\n");

  // Query strings are stripped before routing.
  const std::string query = httpGet(server.port(), "/ok?verbose=1");
  EXPECT_NE(query.find("200 OK"), std::string::npos);

  const std::string missing = httpGet(server.port(), "/absent");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);

  EXPECT_GE(server.requestsServed(), 3u);
  {
    std::scoped_lock lk(seenMu);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], "/ok");
    EXPECT_EQ(seen[1], "/ok");  // ?verbose=1 stripped
    EXPECT_EQ(seen[2], "/absent");
  }
  server.stop();
  EXPECT_FALSE(server.running());
  // Idempotent stop; restart binds a fresh ephemeral port.
  server.stop();
  ASSERT_TRUE(server.start());
  EXPECT_NE(httpGet(server.port(), "/ok").find("200 OK"), std::string::npos);
  server.stop();
#endif
}

// --- Live telemetry through a degraded cluster run (acceptance) -------------

TEST(Telemetry, CrashIsVisibleInStatusAndTimeseriesWithinOneWindow) {
  // The ISSUE 7 acceptance scenario, as a test rather than a hand-check:
  // watch a degrade-policy run over the status server, crash a node, and
  // require the flip to show up in /status, /metrics and the collector ring
  // — with the breaker trip landing within one window of the epoch change.
  rt::ClusterConfig c = tracedConfig();
  c.nodes = 4;
  c.reliability.enabled = true;
  c.reliability.policy = net::FailurePolicy::kDegrade;
  c.reliability.rto_base = std::chrono::microseconds(500);
  c.reliability.rto_max = std::chrono::microseconds(8000);
  c.timeseries.enabled = true;
  c.timeseries.period = std::chrono::milliseconds(10);
  c.status_server.enabled = obs::StatusServer::supported();
  c.status_server.port = 0;
  rt::Cluster cluster(c);
  cluster.start();
  ASSERT_NE(cluster.timeSeries(), nullptr);

  auto slots = cluster.alloc<std::uint64_t>(8);
  cluster.launchAll(64, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, (n + 1) % 4, slots.at(n % 8));
  });

#if GRAVEL_STATUS_SERVER_SUPPORTED
  std::uint16_t port = 0;
  if (cluster.statusServer() != nullptr && cluster.statusServer()->running()) {
    port = cluster.statusServer()->port();
    ASSERT_NE(port, 0);
    const std::string metrics = httpBody(httpGet(port, "/metrics"));
    EXPECT_NE(metrics.find("# TYPE gravel_fabric_messages counter"),
              std::string::npos);
    EXPECT_NE(metrics.find("gravel_net_messages_resolved"),
              std::string::npos);
    const std::string healthy = httpBody(httpGet(port, "/status"));
    EXPECT_TRUE(jsonBalanced(healthy));
    EXPECT_NE(healthy.find("\"policy\":\"degrade\""), std::string::npos);
    EXPECT_NE(healthy.find("\"state\":\"alive\""), std::string::npos);
    EXPECT_EQ(healthy.find("\"state\":\"dead\""), std::string::npos);
  }
#endif

  cluster.crashNode(3);
  // Survivors keep sending into the dead node: the traffic dead-letters,
  // and the windowed dlq.* delta is what the collector must surface.
  cluster.launchAll(64, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    const bool live = n != 3;
    cluster.node(n).shmemInc(wi, 3, slots.at(0), live);
    cluster.node(n).shmemInc(wi, (n + 1) % 3, slots.at(1 + n), live);
  });

  // The collector runs on the monitor thread at a 10 ms cadence; give it a
  // bounded (generous) grace to take the windows, then assert.
  bool sawDead = false, sawOpen = false, sawDlqDelta = false;
  std::uint64_t deadSeq = 0, openSeq = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    sawDead = sawOpen = sawDlqDelta = false;
    for (const obs::TimeSeriesWindow& w : cluster.timeSeries()->windows()) {
      for (const obs::EpochChange& e : w.epoch_changes)
        if (e.node == 3 && e.to_health == 2 && !sawDead) {
          sawDead = true;
          deadSeq = w.seq;
        }
      for (const obs::BreakerChange& b : w.breaker_changes)
        if (b.dst == 3 && b.to_state == 1 && !sawOpen) {
          sawOpen = true;
          openSeq = w.seq;
        }
      if (w.delta.number("dlq.dead_lettered") > 0) sawDlqDelta = true;
    }
    if (sawDead && sawOpen && sawDlqDelta) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(sawDead) << "no window tagged node 3's death";
  EXPECT_TRUE(sawOpen) << "no window tagged a breaker trip into node 3";
  EXPECT_TRUE(sawDlqDelta) << "no window carried a dlq.dead_lettered delta";
  // crashNode() excises links in the same act that declares the node dead,
  // so the two tags must land within one collection window of each other.
  if (sawDead && sawOpen) {
    const std::uint64_t gap =
        deadSeq > openSeq ? deadSeq - openSeq : openSeq - deadSeq;
    EXPECT_LE(gap, 1u);
  }

#if GRAVEL_STATUS_SERVER_SUPPORTED
  if (port != 0) {
    const std::string degraded = httpBody(httpGet(port, "/status"));
    EXPECT_TRUE(jsonBalanced(degraded));
    EXPECT_NE(degraded.find("\"state\":\"dead\""), std::string::npos);
    EXPECT_NE(degraded.find("\"breaker\":\"open\""), std::string::npos);
    EXPECT_NE(degraded.find("\"dead_lettered\""), std::string::npos);
    const std::string series = httpBody(httpGet(port, "/timeseries"));
    EXPECT_TRUE(jsonBalanced(series));
    EXPECT_NE(series.find("\"kind\":\"gravel-timeseries\""),
              std::string::npos);
    EXPECT_NE(httpGet(port, "/bogus").find("404"), std::string::npos);
  }
#endif

  // The exit-artifact writer serves the same ring.
  std::ostringstream os;
  cluster.writeTimeSeries(os);
  const std::string dump = os.str();
  EXPECT_TRUE(jsonBalanced(dump));
  EXPECT_NE(dump.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"to\":\"dead\""), std::string::npos);
}

// --- Status server robustness -----------------------------------------------

TEST(StatusServer, HealthzAnswersWithoutInvokingTheHandler) {
  if (!obs::StatusServer::supported()) GTEST_SKIP() << "no POSIX sockets";
#if GRAVEL_STATUS_SERVER_SUPPORTED
  obs::StatusServerConfig cfg;
  cfg.enabled = true;
  cfg.port = 0;
  std::atomic<int> handlerCalls{0};
  obs::StatusServer server(cfg, [&](const std::string&) {
    handlerCalls.fetch_add(1, std::memory_order_relaxed);
    return obs::StatusResponse{200, "text/plain", "snapshot\n"};
  });
  ASSERT_TRUE(server.start());

  const std::string resp = httpGet(server.port(), "/healthz");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(httpBody(resp), "ok\n");
  // The liveness probe must not pay for (or depend on) the embedder's
  // snapshot work.
  EXPECT_EQ(handlerCalls.load(), 0);
  // Query strings are stripped before the healthz match, like any route.
  EXPECT_NE(httpGet(server.port(), "/healthz?probe=1").find("200 OK"),
            std::string::npos);
  EXPECT_EQ(handlerCalls.load(), 0);
  server.stop();
#endif
}

#if GRAVEL_STATUS_SERVER_SUPPORTED
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // macOS: rely on the test runner ignoring SIGPIPE
#endif
/// Raw-socket request with an arbitrary byte payload (httpGet always forms
/// a valid GET line; the robustness tests need to send garbage).
std::string httpRaw(std::uint16_t port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + off, payload.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) break;  // server may close mid-send on oversized requests
    off += std::size_t(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, std::size_t(n));
  }
  ::close(fd);
  return out;
}
#endif

TEST(StatusServer, SurvivesMalformedOversizedAndConcurrentRequests) {
  if (!obs::StatusServer::supported()) GTEST_SKIP() << "no POSIX sockets";
#if GRAVEL_STATUS_SERVER_SUPPORTED
  obs::StatusServerConfig cfg;
  cfg.enabled = true;
  cfg.port = 0;
  obs::StatusServer server(cfg, [](const std::string& path) {
    if (path == "/ok")
      return obs::StatusResponse{200, "text/plain", "payload\n"};
    return obs::StatusResponse{404, "text/plain", "nope\n"};
  });
  ASSERT_TRUE(server.start());

  // Malformed request line: anything that is not "GET " is refused with a
  // well-formed 405, not a hang or a crash.
  const std::string bogus = httpRaw(server.port(), "BOGUS\r\n\r\n");
  EXPECT_NE(bogus.find("HTTP/1.0 405 Method Not Allowed"), std::string::npos);

  // Oversized request: a path far beyond the server's single 2 KiB read.
  // The truncated tail parses as an unroutable path; the only contract is
  // that the server answers (or closes) without dying. The client's send
  // may race the server's close, so the response itself is best-effort.
  const std::string big =
      "GET /" + std::string(16 * 1024, 'x') + " HTTP/1.0\r\n\r\n";
  (void)httpRaw(server.port(), big);
  EXPECT_TRUE(server.running());

  // Two concurrent clients: connections queue in the listen backlog and are
  // serviced serially; both must get complete responses.
  std::string r1, r2;
  std::thread c1([&] { r1 = httpGet(server.port(), "/ok"); });
  std::thread c2([&] { r2 = httpGet(server.port(), "/ok"); });
  c1.join();
  c2.join();
  EXPECT_NE(r1.find("200 OK"), std::string::npos);
  EXPECT_EQ(httpBody(r1), "payload\n");
  EXPECT_NE(r2.find("200 OK"), std::string::npos);
  EXPECT_EQ(httpBody(r2), "payload\n");

  // And the server is still healthy for a normal scrape afterwards.
  EXPECT_NE(httpGet(server.port(), "/healthz").find("200 OK"),
            std::string::npos);
  server.stop();
#endif
}

// --- Continuous profiler ----------------------------------------------------

/// Spins until the profiler clock has visibly advanced, so self-time
/// assertions never compare two identical timestamps.
void burnAtLeastNs(std::uint64_t ns) {
  const std::uint64_t t0 = obs::Profiler::nowNs();
  while (obs::Profiler::nowNs() - t0 < ns) {
  }
}

TEST(Profiler, DisabledRecordsNothingAndRegistersNoThreads) {
  obs::Profiler prof;  // default config: disabled
  {
    obs::ScopedRegion r(&prof, obs::Region::kAggSlot);
    obs::ScopedRegion nested(&prof, obs::Region::kAggRoute);
  }
  { obs::ScopedRegion nullTarget(nullptr, obs::Region::kAggSlot); }
  EXPECT_TRUE(prof.sample().empty());
}

TEST(Profiler, NestedRegionsSplitSelfTimeFromChildTime) {
  obs::ProfilerConfig cfg;
  cfg.enabled = true;
  obs::Profiler prof(cfg);
  prof.nameThread("tester");
  prof.nameThread("ignored");  // first name wins

  {
    obs::ScopedRegion outer(&prof, obs::Region::kAggSlot);
    burnAtLeastNs(200 * 1000);
    {
      obs::ScopedRegion inner(&prof, obs::Region::kAggRoute);
      burnAtLeastNs(400 * 1000);
    }
  }
  {
    obs::ScopedRegion idle(&prof, obs::Region::kIdle);
    burnAtLeastNs(100 * 1000);
  }

  const auto threads = prof.sample();
  ASSERT_EQ(threads.size(), 1u);
  const auto& t = threads[0];
  EXPECT_EQ(t.name, "tester");
  EXPECT_EQ(t.dropped, 0u);

  const obs::Profiler::PathSample* outer = nullptr;
  const obs::Profiler::PathSample* inner = nullptr;
  const obs::Profiler::PathSample* idle = nullptr;
  for (const auto& p : t.paths) {
    if (p.depth == 1 && p.stack[0] == obs::Region::kAggSlot) outer = &p;
    if (p.depth == 2 && p.stack[0] == obs::Region::kAggSlot &&
        p.stack[1] == obs::Region::kAggRoute)
      inner = &p;
    if (p.depth == 1 && p.stack[0] == obs::Region::kIdle) idle = &p;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(idle, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 1u);
  // Self time excludes the nested child: the outer region burned ~200us
  // itself and ~400us inside kAggRoute, so its self share must stay well
  // below the child's.
  EXPECT_GE(inner->self_ns, 400u * 1000);
  EXPECT_GE(outer->self_ns, 200u * 1000);
  EXPECT_LT(outer->self_ns, inner->self_ns);
  // Duty split: idle-leaf paths fund idle_ns, everything else busy_ns, and
  // the two sides partition the attributed total exactly.
  EXPECT_EQ(t.idle_ns, idle->self_ns);
  EXPECT_EQ(t.busy_ns, outer->self_ns + inner->self_ns);
}

TEST(Profiler, DepthOverflowIsCountedDroppedNotRecorded) {
  obs::ProfilerConfig cfg;
  cfg.enabled = true;
  obs::Profiler prof(cfg);
  {
    // kMaxDepth nested regions record; the one beyond only counts.
    std::vector<std::unique_ptr<obs::ScopedRegion>> nest;
    for (int i = 0; i < obs::Profiler::kMaxDepth + 1; ++i)
      nest.push_back(std::make_unique<obs::ScopedRegion>(
          &prof, obs::Region::kAggSlot));
    nest.clear();  // unwinds innermost-first
  }
  const auto threads = prof.sample();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].dropped, 1u);
  int deepest = 0;
  for (const auto& p : threads[0].paths) deepest = std::max(deepest, p.depth);
  EXPECT_EQ(deepest, obs::Profiler::kMaxDepth);
}

TEST(Profiler, JsonExportIsBalancedAndCarriesTheDutySplit) {
  obs::ProfilerConfig cfg;
  cfg.enabled = true;
  obs::Profiler prof(cfg);
  {
    obs::ScopedRegion r(&prof, obs::Region::kNetRecv);
    burnAtLeastNs(50 * 1000);
  }
  std::ostringstream os;
  obs::writeProfilerJson(os, prof, obs::Profiler::nowNs());
  const std::string doc = os.str();
  EXPECT_TRUE(jsonBalanced(doc));
  EXPECT_NE(doc.find("\"kind\":\"gravel-profile\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"net.recv\""), std::string::npos);
  EXPECT_NE(doc.find("\"duty\""), std::string::npos);
  EXPECT_NE(doc.find("\"locks\""), std::string::npos);
}

// --- Lock-contention accounting (lockprof) ----------------------------------

/// RAII guard: every lockprof test windows the process-global table and
/// restores the disabled state, so cluster tests in this binary never see
/// leftover counters.
struct LockprofWindow {
  LockprofWindow() {
    lockprof::reset();
    lockprof::setEnabled(true);
  }
  ~LockprofWindow() {
    lockprof::setEnabled(false);
    lockprof::reset();
  }
};

const lockprof::SiteSample* findSite(
    const std::vector<lockprof::SiteSample>& sites, const char* name) {
  for (const auto& s : sites)
    if (std::string(s.name) == name) return &s;
  return nullptr;
}

std::vector<lockprof::SiteSample> allSites() {
  std::vector<lockprof::SiteSample> out;
  lockprof::forEachSite(
      [&out](const lockprof::SiteSample& s) { out.push_back(s); });
  return out;
}

TEST(Lockprof, NamedMutexCountsAcquisitionsAndContendedWaits) {
  LockprofWindow window;
  gravel::mutex mu{"test.lockprof.contended"};

  // Uncontended acquisitions take the try_lock fast path: counted, no wait.
  for (int i = 0; i < 10; ++i) {
    mu.lock();
    mu.unlock();
  }

  // Force real contention: the holder sleeps with the lock held while the
  // second thread blocks on it.
  std::atomic<bool> held{false};
  std::thread holder([&] {
    mu.lock();
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    mu.unlock();
  });
  while (!held.load()) std::this_thread::yield();
  mu.lock();  // blocks ~5ms
  mu.unlock();
  holder.join();

  const auto sites = allSites();
  const auto* site = findSite(sites, "test.lockprof.contended");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->acquisitions, 12u);  // 10 + holder + blocked
  ASSERT_GE(site->contended, 1u);
  EXPECT_GE(site->wait_ns_total, 1u * 1000 * 1000);  // slept 5ms holding
  std::uint64_t histTotal = 0;
  for (auto b : site->wait_hist) histTotal += b;
  EXPECT_EQ(histTotal, site->contended);
  EXPECT_GT(site->waitQuantileNs(0.99), 0.0);
}

TEST(Lockprof, SitesDeduplicateByContentAndUnnamedMutexesStayInvisible) {
  LockprofWindow window;
  // Same site name through two distinct string objects: content dedup must
  // fold them into one row.
  const std::string a = "test.lockprof.dedup";
  const std::string b = "test.lockprof.dedup";
  gravel::mutex m1{a.c_str()};
  gravel::mutex m2{b.c_str()};
  m1.lock();
  m1.unlock();
  m2.lock();
  m2.unlock();
  gravel::mutex unnamed;
  unnamed.lock();
  unnamed.unlock();

  const auto sites = allSites();
  int matches = 0;
  for (const auto& s : sites)
    if (std::string(s.name) == "test.lockprof.dedup") ++matches;
  EXPECT_EQ(matches, 1);
  const auto* site = findSite(sites, "test.lockprof.dedup");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->acquisitions, 2u);
}

TEST(Lockprof, ResetZeroesCountersButKeepsTheSiteClaimed) {
  LockprofWindow window;
  gravel::mutex mu{"test.lockprof.reset"};
  mu.lock();
  mu.unlock();
  {
    const auto before = allSites();
    ASSERT_NE(findSite(before, "test.lockprof.reset"), nullptr);
  }
  lockprof::reset();
  const auto after = allSites();
  const auto* site = findSite(after, "test.lockprof.reset");
  ASSERT_NE(site, nullptr);  // name survives; counters window
  EXPECT_EQ(site->acquisitions, 0u);
  EXPECT_EQ(site->contended, 0u);
  EXPECT_EQ(site->wait_ns_total, 0u);
}

TEST(Lockprof, WaitQuantileInterpolatesPow2Buckets) {
  lockprof::SiteSample s;
  // 100 waits in bucket 10 ([512, 1024) ns): every quantile lands inside.
  s.wait_hist[10] = 100;
  EXPECT_GE(s.waitQuantileNs(0.50), 512.0);
  EXPECT_LE(s.waitQuantileNs(0.50), 1024.0);
  EXPECT_GE(s.waitQuantileNs(0.99), s.waitQuantileNs(0.50));
  // Empty histogram reports zero, not garbage.
  lockprof::SiteSample empty;
  EXPECT_EQ(empty.waitQuantileNs(0.99), 0.0);
}

// --- Profiled cluster run (acceptance) --------------------------------------

TEST(Profiler, SkewedWorkloadNamesTheAggregatorShardMutexWithEvidence) {
  // The ISSUE 10 acceptance scenario: a profiled run whose destinations all
  // hash to one aggregator shard must produce lock-contention evidence that
  // names SlotRouter::Shard::mutex with acquisition counts and a wait p99.
  rt::ClusterConfig c;
  c.nodes = 4;
  c.heap_bytes = 1 << 20;
  c.gpu_queue_bytes = 1 << 13;
  c.pernode_queue_bytes = 512;
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  c.aggregator_threads = 4;  // four route/flush threads per node...
  c.aggregator_shards = 1;   // ...funneled through one shard mutex
  c.profiler.enabled = true;
  rt::Cluster cluster(c);
  cluster.start();

  auto slots = cluster.alloc<std::uint64_t>(4);
  // Skewed destinations: every node hammers node 0.
  cluster.launchAll(64, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, 0, slots.at(n));
  });
  cluster.quiet();

  const auto sites = allSites();
  const auto* shard = findSite(sites, "SlotRouter::Shard::mutex");
  ASSERT_NE(shard, nullptr)
      << "profiled run recorded no aggregator shard-mutex site";
  EXPECT_GT(shard->acquisitions, 0u);
  // Contended-or-not depends on scheduling; the evidence contract is that
  // the counts and quantiles are *reported*, and that any recorded wait
  // shows up in the p99.
  if (shard->contended > 0) {
    EXPECT_GT(shard->wait_ns_total, 0u);
    EXPECT_GT(shard->waitQuantileNs(0.99), 0.0);
  }

  // The same run's region attribution covers the aggregator loop.
  bool sawAggSlot = false;
  std::uint64_t busyTotal = 0;
  for (const auto& t : cluster.profiler().sample()) {
    busyTotal += t.busy_ns;
    for (const auto& p : t.paths)
      if (p.depth >= 1 && p.stack[0] == obs::Region::kAggSlot)
        sawAggSlot = true;
  }
  EXPECT_TRUE(sawAggSlot) << "no thread attributed time to agg.slot";
  EXPECT_GT(busyTotal, 0u);

  // And the merged run stats carry the roll-up the bench columns consume.
  const rt::ClusterRunStats stats = cluster.runStats();
  EXPECT_GT(stats.prof_busy_ns, 0u);
  EXPECT_GT(stats.prof_lock_acquisitions, 0u);

  // /profile document over the same state.
  std::ostringstream os;
  cluster.writeProfileJson(os);
  const std::string doc = os.str();
  EXPECT_TRUE(jsonBalanced(doc));
  EXPECT_NE(doc.find("\"SlotRouter::Shard::mutex\""), std::string::npos);

  // Window the global table so later tests in this binary start clean.
  lockprof::setEnabled(false);
  lockprof::reset();
}

TEST(Profiler, ProfiledClusterServesProfileEndpointAndMonitorStats) {
  rt::ClusterConfig c = tracedConfig();
  c.profiler.enabled = true;
  c.timeseries.enabled = true;
  c.timeseries.period = std::chrono::milliseconds(10);
  c.status_server.enabled = obs::StatusServer::supported();
  c.status_server.port = 0;
  rt::Cluster cluster(c);
  cluster.start();

  auto slots = cluster.alloc<std::uint64_t>(4);
  cluster.launchAll(64, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, (n + 1) % 2, slots.at(n % 4));
  });
  cluster.quiet();
  // Let the monitor thread take at least one instrumented tick.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

#if GRAVEL_STATUS_SERVER_SUPPORTED
  if (cluster.statusServer() != nullptr && cluster.statusServer()->running()) {
    const std::uint16_t port = cluster.statusServer()->port();
    const std::string profile = httpBody(httpGet(port, "/profile"));
    EXPECT_TRUE(jsonBalanced(profile));
    EXPECT_NE(profile.find("\"kind\":\"gravel-profile\""),
              std::string::npos);
    EXPECT_NE(profile.find("\"enabled\":true"), std::string::npos);
    const std::string status = httpBody(httpGet(port, "/status"));
    EXPECT_NE(status.find("\"profile\""), std::string::npos);
    EXPECT_NE(httpGet(port, "/healthz").find("200 OK"), std::string::npos);
  }
#endif

  // prof.* and monitor.* metric families land in the registry snapshot.
  const MetricsSnapshot snap = cluster.collectMetrics();
  bool sawProfDuty = false, sawMonitorTicks = false;
  for (const auto& [key, m] : snap.metrics) {
    if (key.first == "prof.duty") sawProfDuty = true;
    if (key.first == "monitor.ticks") sawMonitorTicks = true;
  }
  EXPECT_TRUE(sawProfDuty) << "no prof.duty gauge in the registry";
  EXPECT_TRUE(sawMonitorTicks) << "no monitor.ticks counter in the registry";

  lockprof::setEnabled(false);
  lockprof::reset();
}

}  // namespace
}  // namespace gravel
