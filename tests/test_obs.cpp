// Observability layer: metrics registry snapshot/delta/export semantics,
// message-lifecycle tracing through a real cluster run (including a hostile
// wire), and the Chrome-trace exporter's output shape.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runtime/cluster.hpp"

namespace gravel {
namespace {

using obs::MetricKind;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::Stage;
using obs::TraceConfig;
using obs::TraceEvent;
using obs::Tracer;

// --- JSON well-formedness (structural, no parser dependency) ---------------

/// Checks brace/bracket balance and quote pairing outside of strings — the
/// failure modes a hand-rolled writer can actually have.
bool jsonBalanced(const std::string& s) {
  int depth = 0;
  bool inString = false, escaped = false;
  for (char ch : s) {
    if (inString) {
      if (escaped)
        escaped = false;
      else if (ch == '\\')
        escaped = true;
      else if (ch == '"')
        inString = false;
      continue;
    }
    switch (ch) {
      case '"': inString = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !inString;
}

// --- MetricsRegistry -------------------------------------------------------

TEST(Metrics, RegistryRoundTripsKinds) {
  MetricsRegistry reg;
  reg.setCounter("msgs", "node=0", 42);
  reg.setGauge("depth", "", 7.5);
  reg.observe("lat", "", 10.0);
  reg.observe("lat", "", 30.0);
  reg.observeHistogram("size", "", 8);

  const MetricsSnapshot s = reg.snapshot();
  ASSERT_TRUE(s.contains("msgs", "node=0"));
  EXPECT_EQ(s.find("msgs", "node=0")->kind, MetricKind::kCounter);
  EXPECT_EQ(s.number("msgs", "node=0"), 42.0);
  EXPECT_EQ(s.number("depth"), 7.5);
  const obs::MetricValue* lat = s.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2u);
  EXPECT_EQ(lat->mean(), 20.0);
  EXPECT_EQ(lat->min, 10.0);
  EXPECT_EQ(lat->max, 30.0);
  const obs::MetricValue* size = s.find("size");
  ASSERT_NE(size, nullptr);
  EXPECT_EQ(size->kind, MetricKind::kHistogram);
  // 8 lands in bucket [2^3, 2^4) = index 4 under the 64-countl_zero rule.
  EXPECT_EQ(size->buckets[4], 1u);
  EXPECT_EQ(s.number("absent"), 0.0);
}

TEST(Metrics, DeltaWindowsCountersAndKeepsGauges) {
  MetricsRegistry reg;
  reg.setCounter("sent", "", 100);
  reg.setGauge("depth", "", 5);
  reg.observe("lat", "", 10);
  const MetricsSnapshot base = reg.snapshot();

  reg.setCounter("sent", "", 140);
  reg.setGauge("depth", "", 2);
  reg.observe("lat", "", 20);
  const MetricsSnapshot now = reg.snapshot();

  const MetricsSnapshot d = now.delta(base);
  EXPECT_EQ(d.number("sent"), 40.0);    // counter: subtracted
  EXPECT_EQ(d.number("depth"), 2.0);    // gauge: current level
  const obs::MetricValue* lat = d.find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 1u);            // stat: window count
  EXPECT_EQ(lat->mean(), 20.0);         // window sum / window count
}

TEST(Metrics, JsonAndCsvExportAreWellFormed) {
  MetricsRegistry reg;
  reg.setCounter("a.count", "node=0", 3);
  reg.setGauge("b.level", "link=0->1", 1.5);
  reg.observe("c.stat", "", 2.0);
  reg.observeHistogram("d.hist", "", 1024);
  const MetricsSnapshot s = reg.snapshot();

  std::ostringstream json;
  s.toJson(json);
  EXPECT_TRUE(jsonBalanced(json.str())) << json.str();
  EXPECT_NE(json.str().find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.str().find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.str().find("\"link=0->1\""), std::string::npos);

  std::ostringstream csv;
  s.toCsv(csv);
  EXPECT_EQ(csv.str().rfind("name,labels,kind,count,value,min,max\n", 0), 0u);
  // Header + one row per metric.
  std::size_t lines = 0;
  for (char ch : csv.str())
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 1 + s.metrics.size());
}

// --- Tracer ----------------------------------------------------------------

TEST(Trace, DisabledTracerRecordsNothing) {
  TraceConfig cfg;  // enabled = false
  Tracer t(cfg);
  EXPECT_EQ(t.maybeSample(), 0u);
  t.recordStage(Stage::kEnqueue, 1, 0, 0, 0);
  t.recordGauge(obs::Gauge::kGpuQueueDepth, 0, 5);
  t.nameThread("ignored");
  EXPECT_TRUE(t.allEvents().empty());
  EXPECT_TRUE(t.buffers().empty());
}

TEST(Trace, SamplingHonorsIntervalAndNeverReturnsZero) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.sample_interval = 4;
  Tracer t(cfg);
  std::uint32_t sampled = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t id = t.maybeSample();
    if (id != 0) ++sampled;
    EXPECT_LE(id, 0xffffu);
  }
  EXPECT_EQ(sampled, 16u);  // 1 in 4
  EXPECT_EQ(t.sampledCandidates(), 64u);
}

TEST(Trace, NodeIdsWiderThanAByteSurviveRecording) {
  // Fig-12-style scaling sweeps can run hundreds of nodes; the event's node
  // field is 16 bits so ids >= 256 must round-trip unaliased (they used to
  // be truncated through a uint8_t cast at every record site).
  TraceConfig cfg;
  cfg.enabled = true;
  Tracer t(cfg);
  t.recordStage(Stage::kEnqueue, 1, /*node=*/300, /*dest=*/65535, 7);
  t.recordGauge(obs::Gauge::kGpuQueueDepth, /*node=*/40000, 5);
  const auto events = t.allEvents();
  ASSERT_EQ(events.size(), 2u);
  for (const TraceEvent& e : events) {
    if (e.stage == Stage::kGauge) {
      EXPECT_EQ(e.node, 40000u);
    } else {
      EXPECT_EQ(e.node, 300u);
      EXPECT_EQ(e.aux, 65535u);
    }
  }
}

TEST(Trace, BufferOverflowDropsAndCounts) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.buffer_events = 4;
  Tracer t(cfg);
  for (std::uint32_t i = 0; i < 10; ++i)
    t.recordStage(Stage::kEnqueue, i + 1, 0, 0, i);
  EXPECT_EQ(t.allEvents().size(), 4u);
  EXPECT_EQ(t.droppedEvents(), 6u);
}

// --- End-to-end through a cluster run --------------------------------------

rt::ClusterConfig tracedConfig() {
  rt::ClusterConfig c;
  c.nodes = 2;
  c.heap_bytes = 1 << 20;
  c.gpu_queue_bytes = 1 << 13;
  c.pernode_queue_bytes = 512;
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  c.quiet_deadline = std::chrono::milliseconds(60000);
  c.obs.enabled = true;
  c.obs.sample_interval = 1;  // trace every message
  c.obs.gauge_period = std::chrono::microseconds(200);
  return c;
}

void runTracedWorkload(rt::Cluster& cluster) {
  auto slots = cluster.alloc<std::uint64_t>(64);
  cluster.launchAll(128, 32, [&](std::uint32_t n, simt::WorkItem& wi) {
    cluster.node(n).shmemInc(wi, (n + 1) % 2, slots.at(wi.globalId() % 64));
  });
}

TEST(Trace, ClusterRunProducesOrderedLifecycles) {
  rt::Cluster cluster(tracedConfig());
  runTracedWorkload(cluster);

  const auto lifecycles = obs::reconstructLifecycles(cluster.tracer());
  ASSERT_FALSE(lifecycles.empty());
  std::size_t complete = 0;
  for (const auto& lc : lifecycles) {
    // Observed stages must be timestamp-ordered along the pipeline.
    std::uint64_t prev = 0;
    for (int s = 0; s < obs::kMessageStages; ++s) {
      if (lc.ts_ns[s] == 0) continue;
      EXPECT_GE(lc.ts_ns[s], prev)
          << "stage " << obs::stageName(Stage(s)) << " out of order for id "
          << lc.id;
      prev = lc.ts_ns[s];
    }
    if (lc.complete()) ++complete;
  }
  // At least one sampled message must have been seen at every stage:
  // enqueue -> aggregate -> flush -> wire-send -> deliver -> resolve.
  EXPECT_GT(complete, 0u);

  // Stage latencies derive from those lifecycles.
  const obs::StageLatencies lat = obs::stageLatencies(cluster.tracer());
  EXPECT_GT(lat.end_to_end.count(), 0u);
  EXPECT_GE(lat.end_to_end.min(), 0.0);
}

TEST(Trace, ChromeTraceExportHasFlowsAndCounters) {
  rt::Cluster cluster(tracedConfig());
  runTracedWorkload(cluster);

  std::ostringstream os;
  cluster.writeTrace(os);
  const std::string j = os.str();
  EXPECT_TRUE(jsonBalanced(j));
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"process_name\""), std::string::npos);
  EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
  // Named pipeline tracks.
  EXPECT_NE(j.find("agg.0.0"), std::string::npos);
  EXPECT_NE(j.find("net.0"), std::string::npos);
  EXPECT_NE(j.find("gpu.0"), std::string::npos);
  // Message slices for every stage.
  for (int s = 0; s < obs::kMessageStages; ++s)
    EXPECT_NE(j.find(std::string("\"") + obs::stageName(Stage(s)) + "\""),
              std::string::npos)
        << obs::stageName(Stage(s));
  // At least one full flow chain: start, step, finish (with binding point).
  EXPECT_NE(j.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(j.find("\"bp\":\"e\""), std::string::npos);
  // Depth-gauge counter tracks from the sampler thread.
  EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j.find("gpu_queue_depth"), std::string::npos);
}

TEST(Trace, SurvivesFaultyWireWithReliability) {
  // The trace ID lives in the message's cmd word, so it must survive drops,
  // duplicates, reordering and retransmission — complete flows included.
  rt::ClusterConfig c = tracedConfig();
  c.fault.seed = 5;
  c.fault.drop_prob = 0.15;
  c.fault.dup_prob = 0.05;
  c.fault.reorder_prob = 0.25;
  c.reliability.enabled = true;
  c.reliability.rto_base = std::chrono::microseconds(500);
  c.reliability.rto_max = std::chrono::microseconds(8000);
  rt::Cluster cluster(c);
  runTracedWorkload(cluster);

  std::size_t complete = 0;
  for (const auto& lc : obs::reconstructLifecycles(cluster.tracer()))
    if (lc.complete()) ++complete;
  EXPECT_GT(complete, 0u);

  std::ostringstream os;
  cluster.writeTrace(os);
  EXPECT_TRUE(jsonBalanced(os.str()));

  // The registry snapshot carries the fault/reliability counters too. Any
  // dropped batch — data or ACK — can only have been healed by at least one
  // retransmission.
  const MetricsSnapshot snap = cluster.collectMetrics();
  EXPECT_GT(snap.number("fault.drops") + snap.number("fault.duplicates"), 0.0);
  if (snap.number("fault.drops") > 0.0) {
    EXPECT_GT(snap.number("fabric.retransmits"), 0.0);
  }
  EXPECT_GT(snap.number("trace.candidates"), 0.0);
}

TEST(Trace, ClusterMetricsSnapshotCoversPipeline) {
  rt::Cluster cluster(tracedConfig());
  runTracedWorkload(cluster);
  const MetricsSnapshot snap = cluster.collectMetrics();

  // 2 nodes x 128 work-items, every op a shmemInc.
  EXPECT_EQ(snap.number("ops.inc_local", "node=0") +
                snap.number("ops.inc_remote", "node=0"),
            128.0);
  EXPECT_EQ(snap.number("agg.messages_routed", "node=0") +
                snap.number("agg.messages_routed", "node=1"),
            256.0);
  EXPECT_EQ(snap.number("net.messages_resolved", "node=0") +
                snap.number("net.messages_resolved", "node=1"),
            256.0);
  EXPECT_EQ(snap.number("fabric.messages"),
            snap.number("ops.inc_remote", "node=0") +
                snap.number("ops.inc_remote", "node=1"));
  // The gauge sampler fed depth histograms on its cadence.
  EXPECT_TRUE(snap.contains("gpu_queue.depth", "node=0"));
  EXPECT_TRUE(snap.contains("fabric.pending"));
  // Trace-derived end-to-end latency made it into the registry.
  EXPECT_TRUE(snap.contains("trace.latency_ns.end_to_end"));

  std::ostringstream json;
  cluster.writeMetricsJson(json);
  EXPECT_TRUE(jsonBalanced(json.str()));
}

TEST(Trace, DisabledObservabilityLeavesMessagesUnstamped) {
  rt::ClusterConfig c = tracedConfig();
  c.obs.enabled = false;
  c.obs.gauge_period = std::chrono::microseconds(0);
  rt::Cluster cluster(c);
  runTracedWorkload(cluster);
  EXPECT_TRUE(cluster.tracer().allEvents().empty());
  EXPECT_EQ(cluster.tracer().sampledCandidates(), 0u);
  std::ostringstream os;
  cluster.writeTrace(os);
  EXPECT_TRUE(jsonBalanced(os.str()));  // valid, just empty of events
}

// --- NetMessage trace-ID stamping ------------------------------------------

TEST(Trace, TraceIdRoundTripsThroughCmdWord) {
  rt::NetMessage m = rt::NetMessage::put(3, 0x1000, 42);
  EXPECT_EQ(m.traceId(), 0u);
  m.setTraceId(0xbeef);
  EXPECT_EQ(m.traceId(), 0xbeefu);
  // Stamping must not disturb the command or the payload.
  EXPECT_EQ(m.command(), rt::Command::kPut);
  EXPECT_EQ(m.dest, 3u);
  EXPECT_EQ(m.addr, 0x1000u);
  EXPECT_EQ(m.value, 42u);
  m.setTraceId(0);
  EXPECT_EQ(m.traceId(), 0u);
  EXPECT_EQ(m.command(), rt::Command::kPut);
}

// --- ClusterRunStats::merge ------------------------------------------------

TEST(Stats, ClusterRunStatsMergeSemantics) {
  rt::ClusterRunStats a;
  a.nodes = 4;
  a.put_remote = 10;
  a.net_batches = 2;
  a.net_messages = 20;
  a.avg_batch_bytes = 100.0;
  a.reorder_peak = 5;
  rt::ClusterRunStats b;
  b.nodes = 4;
  b.put_remote = 30;
  b.net_batches = 6;
  b.net_messages = 60;
  b.avg_batch_bytes = 200.0;
  b.reorder_peak = 3;

  a.merge(b);
  EXPECT_EQ(a.nodes, 4u);            // topology, not a quantity
  EXPECT_EQ(a.put_remote, 40u);      // counts sum
  EXPECT_EQ(a.net_batches, 8u);
  EXPECT_EQ(a.net_messages, 80u);
  EXPECT_EQ(a.reorder_peak, 5u);     // peak combines with max, not +
  // Mean re-weighted by batch count: (100*2 + 200*6) / 8.
  EXPECT_DOUBLE_EQ(a.avg_batch_bytes, 175.0);
}

TEST(Stats, ClusterRunStatsMergeWithEmptySides) {
  rt::ClusterRunStats empty;
  rt::ClusterRunStats full;
  full.net_batches = 4;
  full.avg_batch_bytes = 50.0;
  full.reorder_peak = 2;

  rt::ClusterRunStats a = full;
  a.merge(empty);  // merging nothing changes nothing
  EXPECT_EQ(a.net_batches, 4u);
  EXPECT_DOUBLE_EQ(a.avg_batch_bytes, 50.0);

  rt::ClusterRunStats b = empty;
  b.merge(full);  // merging into nothing adopts the other side
  EXPECT_EQ(b.net_batches, 4u);
  EXPECT_DOUBLE_EQ(b.avg_batch_bytes, 50.0);
  EXPECT_EQ(b.reorder_peak, 2u);
}

}  // namespace
}  // namespace gravel
