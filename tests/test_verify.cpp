// Model-checking suite: every scenario in verify_scenarios.hpp is explored
// exhaustively under DFS with a preemption bound, plus PCT smoke runs.
//
// The bounds below are empirically exhaustive: each DFS config terminates
// with `exhausted=true` well under its schedule budget, so a pass means the
// full bounded schedule space was covered, not that we ran out of patience.
// If a scenario or protocol change pushes a config past its budget the test
// fails with exhausted=false rather than silently shrinking coverage.

#include <gtest/gtest.h>

#include "verify_scenarios.hpp"

namespace gravel::vtests {
namespace {

ExploreOptions dfs(const char* name, int preemptionBound, long maxSchedules) {
  ExploreOptions o;
  o.name = name;
  o.strategy = verify::Strategy::kDfs;
  o.preemptionBound = preemptionBound;
  o.maxSchedules = maxSchedules;
  o.maxStepsPerRun = 20000;
  return o;
}

ExploreOptions pct(const char* name, int seeds) {
  ExploreOptions o;
  o.name = name;
  o.strategy = verify::Strategy::kPct;
  o.pctSeeds = seeds;
  o.pctDepth = 3;
  o.maxStepsPerRun = 20000;
  return o;
}

TEST(VerifyDfs, SpscRoundTrip) {
  const ExploreResult r = spscRoundTrip(dfs("dfs_spsc", 2, 100000));
  EXPECT_TRUE(r.ok) << r.report("spscRoundTrip");
  EXPECT_TRUE(r.exhausted) << "schedule budget too small: " << r.schedules;
}

TEST(VerifyDfs, MpmcRoundTrip) {
  const ExploreResult r = mpmcRoundTrip(dfs("dfs_mpmc", 1, 200000));
  EXPECT_TRUE(r.ok) << r.report("mpmcRoundTrip");
  EXPECT_TRUE(r.exhausted) << "schedule budget too small: " << r.schedules;
}

TEST(VerifyDfs, GravelRoundTrip) {
  const ExploreResult r = gravelRoundTrip(dfs("dfs_gravel", 1, 100000));
  EXPECT_TRUE(r.ok) << r.report("gravelRoundTrip");
  EXPECT_TRUE(r.exhausted) << "schedule budget too small: " << r.schedules;
}

TEST(VerifyDfs, GravelTwoProducers) {
  const ExploreResult r = gravelTwoProducers(dfs("dfs_gravel2p", 1, 300000));
  EXPECT_TRUE(r.ok) << r.report("gravelTwoProducers");
  EXPECT_TRUE(r.exhausted) << "schedule budget too small: " << r.schedules;
}

// Regression net for the acquireRead stopped/drain ordering: a consumer that
// observes `stopped` must still drain every message published before the
// stop was requested (stop happens-after the final publish in this scenario).
TEST(VerifyDfs, GravelStoppedDrain) {
  const ExploreResult r = gravelStoppedDrain(dfs("dfs_stopped", 1, 200000));
  EXPECT_TRUE(r.ok) << r.report("gravelStoppedDrain");
  EXPECT_TRUE(r.exhausted) << "schedule budget too small: " << r.schedules;
}

TEST(VerifyDfs, ReliableQuiescentVisibility) {
  const ExploreResult r =
      reliableQuiescentVisibility(dfs("dfs_relquiet", 1, 100000));
  EXPECT_TRUE(r.ok) << r.report("reliableQuiescentVisibility");
  EXPECT_TRUE(r.exhausted) << "schedule budget too small: " << r.schedules;
}

// Exactly-once under an adversarial wire: the fault budget lets the model
// checker branch on drop / duplicate delivery at each send.
TEST(VerifyDfs, ReliableDropRetransmit) {
  const ExploreResult r = reliableDropRetransmit(dfs("dfs_reldrop", 2, 200000));
  EXPECT_TRUE(r.ok) << r.report("reliableDropRetransmit");
  EXPECT_TRUE(r.exhausted) << "schedule budget too small: " << r.schedules;
}

// Slot-batched routing (PR 4): one producer, two SlotRouter drain threads.
// Covers the per-destination lock discipline — decode outside the lock,
// one acquisition per (slot, destination) run, mid-run capacity splits.
TEST(VerifyDfs, SlotRoutedAggregation) {
  const ExploreResult r =
      slotRoutedAggregation(dfs("dfs_slotroute", 1, 400000));
  EXPECT_TRUE(r.ok) << r.report("slotRoutedAggregation");
  EXPECT_TRUE(r.exhausted) << "schedule budget too small: " << r.schedules;
}

// Circuit-breaker trip racing in-flight delivery/ACK traffic (PR 6): the
// poller may trip the link at any point relative to admission and the ACK;
// whatever the schedule picks, the payload applies exactly once and the
// dead-letter conservation invariant closes.
TEST(VerifyDfs, BreakerTripRecover) {
  const ExploreResult r = breakerTripRecover(dfs("dfs_breakertrip", 1, 400000));
  EXPECT_TRUE(r.ok) << r.report("breakerTripRecover");
  EXPECT_TRUE(r.exhausted) << "schedule budget too small: " << r.schedules;
}

// Half-open probe protocol with a deterministic setup-phase trip: the stale
// era-0 frame must be provably rejected, and the probe must walk the breaker
// open -> half-open -> closed and clear the membership suspicion.
TEST(VerifyDfs, BreakerHalfOpenProbe) {
  const ExploreResult r =
      breakerHalfOpenProbe(dfs("dfs_breakerprobe", 2, 400000));
  EXPECT_TRUE(r.ok) << r.report("breakerHalfOpenProbe");
  EXPECT_TRUE(r.exhausted) << "schedule budget too small: " << r.schedules;
}

// PCT randomized-priority smoke runs: cheap probabilistic coverage beyond
// the DFS preemption bound. Seeded deterministically inside explore().
TEST(VerifyPct, SlotRoutedAggregation) {
  const ExploreResult r = slotRoutedAggregation(pct("pct_slotroute", 64));
  EXPECT_TRUE(r.ok) << r.report("slotRoutedAggregation");
}

TEST(VerifyPct, GravelRoundTrip) {
  const ExploreResult r = gravelRoundTrip(pct("pct_gravel", 200));
  EXPECT_TRUE(r.ok) << r.report("gravelRoundTrip[pct]");
  EXPECT_EQ(r.schedules, 200);
}

TEST(VerifyPct, MpmcRoundTrip) {
  const ExploreResult r = mpmcRoundTrip(pct("pct_mpmc", 200));
  EXPECT_TRUE(r.ok) << r.report("mpmcRoundTrip[pct]");
}

TEST(VerifyPct, ReliableDropRetransmit) {
  const ExploreResult r = reliableDropRetransmit(pct("pct_reldrop", 200));
  EXPECT_TRUE(r.ok) << r.report("reliableDropRetransmit[pct]");
}

TEST(VerifyPct, BreakerTripRecover) {
  const ExploreResult r = breakerTripRecover(pct("pct_breakertrip", 200));
  EXPECT_TRUE(r.ok) << r.report("breakerTripRecover[pct]");
}

TEST(VerifyPct, BreakerHalfOpenProbe) {
  const ExploreResult r = breakerHalfOpenProbe(pct("pct_breakerprobe", 200));
  EXPECT_TRUE(r.ok) << r.report("breakerHalfOpenProbe[pct]");
}

}  // namespace
}  // namespace gravel::vtests
