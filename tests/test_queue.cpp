// Tests for the producer/consumer queues of paper §4: Gravel's slotted
// ticket queue plus the CPU-only SPSC/MPMC baselines. Includes concurrent
// stress tests that check the end-to-end multiset of messages survives.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "queue/gravel_queue.hpp"
#include "queue/mpmc_queue.hpp"
#include "queue/spsc_queue.hpp"

namespace gravel {
namespace {

struct TestMsg {
  std::uint64_t cmd;
  std::uint64_t dest;
  std::uint64_t addr;
  std::uint64_t value;
};

TEST(GravelQueue, GeometryFromConfig) {
  GravelQueue q(GravelQueueConfig{1 << 20, 256, 4});
  // 256 lanes * 4 rows * 8 B = 8 KiB per slot; 1 MiB / 8 KiB = 128 slots.
  EXPECT_EQ(q.slotCount(), 128u);
  EXPECT_EQ(q.lanes(), 256u);
  EXPECT_EQ(q.messageBytes(), 32u);
}

TEST(GravelQueue, MinimumTwoSlots) {
  // A config whose slot would exceed capacity still gets a 2-slot ring.
  GravelQueue q(GravelQueueConfig{1024, 256, 4});
  EXPECT_EQ(q.slotCount(), 2u);
}

TEST(GravelQueue, RejectsBadWriteCounts) {
  GravelQueue q(GravelQueueConfig{1 << 16, 8, 2});
  EXPECT_THROW(q.acquireWrite(0), Error);
  EXPECT_THROW(q.acquireWrite(9), Error);
}

TEST(GravelQueue, CopySlotBulkDecodesRowMajorPayload) {
  // copySlot() must undo the row-major transpose in one pass: lane i of the
  // slot becomes out[i], with each row landing in the message's i-th word.
  GravelQueue q(GravelQueueConfig{1 << 16, 8, 4});
  std::atomic<bool> stopped{false};
  for (std::uint32_t count : {std::uint32_t(8), std::uint32_t(3)}) {
    auto w = q.acquireWrite(count);  // full slot, then a partial one
    for (std::uint32_t row = 0; row < 4; ++row)
      for (std::uint32_t lane = 0; lane < count; ++lane)
        q.wordAt(w, row, lane) = 1000 * row + lane;
    q.publish(w);
    GravelQueue::SlotRef r;
    ASSERT_TRUE(q.acquireRead(r, stopped));
    ASSERT_EQ(r.count, count);
    std::vector<TestMsg> out(count);
    q.copySlot(r, out.data());
    q.release(r);
    for (std::uint32_t lane = 0; lane < count; ++lane) {
      EXPECT_EQ(out[lane].cmd, 0u + lane);
      EXPECT_EQ(out[lane].dest, 1000u + lane);
      EXPECT_EQ(out[lane].addr, 2000u + lane);
      EXPECT_EQ(out[lane].value, 3000u + lane);
    }
  }
}

TEST(GravelQueue, CopySlotRejectsMismatchedMessageWidth) {
  struct Narrow {
    std::uint64_t a, b;  // 16 bytes, but the queue's rows say 32
  };
  GravelQueue q(GravelQueueConfig{1 << 16, 8, 4});
  auto w = q.acquireWrite(2);
  q.publish(w);
  std::atomic<bool> stopped{false};
  GravelQueue::SlotRef r;
  ASSERT_TRUE(q.acquireRead(r, stopped));
  Narrow out[2];
  EXPECT_THROW(q.copySlot(r, out), Error);
  q.release(r);
}

TEST(GravelQueue, SingleSlotRoundTrip) {
  TypedGravelQueue<TestMsg> q(1 << 16, 4);
  auto w = q.acquireWrite(3);
  for (std::uint32_t lane = 0; lane < 3; ++lane)
    q.store(w, lane, TestMsg{1, lane, 100 + lane, 1000 + lane});
  q.publish(w);

  std::atomic<bool> stopped{true};
  GravelQueue::SlotRef r;
  ASSERT_TRUE(q.acquireRead(r, stopped));
  EXPECT_EQ(r.count, 3u);
  for (std::uint32_t lane = 0; lane < 3; ++lane) {
    TestMsg m = q.load(r, lane);
    EXPECT_EQ(m.cmd, 1u);
    EXPECT_EQ(m.dest, lane);
    EXPECT_EQ(m.addr, 100 + lane);
    EXPECT_EQ(m.value, 1000 + lane);
  }
  q.release(r);
  EXPECT_TRUE(q.drained());
  EXPECT_FALSE(q.acquireRead(r, stopped));
}

TEST(GravelQueue, RowMajorLayoutIsCoalescingFriendly) {
  // Field f of adjacent lanes must land in adjacent words (one row), which
  // is the memory-coalescing property §4.3 relies on.
  GravelQueue q(GravelQueueConfig{1 << 16, 8, 2});
  auto w = q.acquireWrite(8);
  for (std::uint32_t lane = 0; lane < 8; ++lane) {
    q.wordAt(w, 0, lane) = lane;
    q.wordAt(w, 1, lane) = 100 + lane;
  }
  for (std::uint32_t lane = 0; lane + 1 < 8; ++lane) {
    EXPECT_EQ(&q.wordAt(w, 0, lane) + 1, &q.wordAt(w, 0, lane + 1));
  }
  q.publish(w);
  std::atomic<bool> stopped{true};
  GravelQueue::SlotRef r;
  ASSERT_TRUE(q.acquireRead(r, stopped));
  q.release(r);
}

TEST(GravelQueue, WrapsAroundTheRingManyTimes) {
  TypedGravelQueue<TestMsg> q(1 << 12, 4);  // tiny ring
  std::atomic<bool> stopped{false};
  std::thread consumer([&] {
    GravelQueue::SlotRef r;
    std::uint64_t expect = 0;
    while (q.acquireRead(r, stopped)) {
      for (std::uint32_t lane = 0; lane < r.count; ++lane) {
        TestMsg m = q.load(r, lane);
        EXPECT_EQ(m.value, expect++);
      }
      q.release(r);
    }
    EXPECT_EQ(expect, 4000u);
  });
  std::uint64_t v = 0;
  for (int slot = 0; slot < 1000; ++slot) {
    auto w = q.acquireWrite(4);
    for (std::uint32_t lane = 0; lane < 4; ++lane)
      q.store(w, lane, TestMsg{0, 0, 0, v++});
    q.publish(w);
  }
  stopped.store(true);
  consumer.join();
}

TEST(GravelQueue, AtomicsAmortizedAcrossGroup) {
  // One group reservation = 1 RMW (the Figure 5d point) regardless of the
  // number of messages in the group.
  GravelQueue q(GravelQueueConfig{1 << 16, 256, 4});
  q.resetAtomicRmwCount();
  auto w = q.acquireWrite(256);
  EXPECT_EQ(q.atomicRmwCount(), 1u);
  q.publish(w);
  std::atomic<bool> stopped{true};
  GravelQueue::SlotRef r;
  ASSERT_TRUE(q.acquireRead(r, stopped));
  q.release(r);
  // Consumer adds its claim RMW.
  EXPECT_EQ(q.atomicRmwCount(), 2u);
}

// Multi-producer/multi-consumer stress: the multiset of values sent must
// equal the multiset received, across ring wrap-arounds and slot aliasing.
TEST(GravelQueueStress, ManyProducersManyConsumers) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  constexpr int kGroupsPerProducer = 400;
  constexpr std::uint32_t kLanes = 16;

  TypedGravelQueue<TestMsg> q(1 << 13, kLanes);  // small ring forces reuse
  std::atomic<bool> stopped{false};
  std::mutex sinkMutex;
  std::map<std::uint64_t, int> received;

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      GravelQueue::SlotRef r;
      std::map<std::uint64_t, int> local;
      while (q.acquireRead(r, stopped)) {
        for (std::uint32_t lane = 0; lane < r.count; ++lane)
          ++local[q.load(r, lane).value];
        q.release(r);
      }
      std::scoped_lock lk(sinkMutex);
      for (auto& [v, n] : local) received[v] += n;
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int g = 0; g < kGroupsPerProducer; ++g) {
        const std::uint32_t count = 1 + (g % kLanes);
        auto w = q.acquireWrite(count);
        for (std::uint32_t lane = 0; lane < count; ++lane) {
          const std::uint64_t v =
              (std::uint64_t(p) << 32) | (std::uint64_t(g) << 8) | lane;
          q.store(w, lane, TestMsg{0, 0, 0, v});
        }
        q.publish(w);
      }
    });
  }
  for (auto& t : producers) t.join();
  stopped.store(true);
  for (auto& t : consumers) t.join();

  std::uint64_t expectedTotal = 0;
  for (int g = 0; g < kGroupsPerProducer; ++g) expectedTotal += 1 + (g % kLanes);
  expectedTotal *= kProducers;

  std::uint64_t got = 0;
  for (auto& [v, n] : received) {
    EXPECT_EQ(n, 1) << "duplicate value " << v;
    got += n;
  }
  EXPECT_EQ(got, expectedTotal);
}

// Geometry sweep: correctness must hold for any (capacity, lanes, rows)
// shape, including degenerate 2-slot rings and single-lane slots.
struct GeomParam {
  std::size_t capacity;
  std::uint32_t lanes;
  std::uint32_t rows;
};

class QueueGeometry : public ::testing::TestWithParam<GeomParam> {};

TEST_P(QueueGeometry, ConcurrentSumSurvives) {
  const auto p = GetParam();
  GravelQueue q(GravelQueueConfig{p.capacity, p.lanes, p.rows});
  std::atomic<bool> stopped{false};
  std::atomic<std::uint64_t> received{0};
  std::thread consumer([&] {
    GravelQueue::SlotRef r;
    std::uint64_t sum = 0;
    while (q.acquireRead(r, stopped)) {
      for (std::uint32_t l = 0; l < r.count; ++l)
        sum += q.wordAt(r, p.rows - 1, l);
      q.release(r);
    }
    received.store(sum);
  });
  std::uint64_t sent = 0, v = 1;
  for (int g = 0; g < 300; ++g) {
    const std::uint32_t count = 1 + (g % p.lanes);
    auto w = q.acquireWrite(count);
    for (std::uint32_t l = 0; l < count; ++l) {
      q.wordAt(w, p.rows - 1, l) = v;
      sent += v++;
    }
    q.publish(w);
  }
  stopped.store(true);
  consumer.join();
  EXPECT_EQ(received.load(), sent);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QueueGeometry,
    ::testing::Values(GeomParam{1 << 12, 1, 1}, GeomParam{1 << 12, 4, 4},
                      GeomParam{256, 16, 2},   // forced 2-slot ring
                      GeomParam{1 << 16, 256, 4}, GeomParam{1 << 12, 7, 3},
                      GeomParam{1 << 14, 64, 8}));

TEST(SpscQueue, CapacityFromBytes) {
  SpscQueue q(1024, 8);  // 8 B msg -> 64 B padded cell -> 16 cells
  EXPECT_EQ(q.capacity(), 16u);
}

TEST(SpscQueue, FifoOrder) {
  SpscQueue q(4096, sizeof(std::uint64_t));
  std::atomic<bool> stopped{false};
  std::thread consumer([&] {
    std::uint64_t v, expect = 0;
    while (q.pop(&v, stopped)) EXPECT_EQ(v, expect++);
    EXPECT_EQ(expect, 50000u);
  });
  for (std::uint64_t v = 0; v < 50000; ++v) q.push(&v);
  stopped.store(true);
  consumer.join();
}

TEST(SpscQueue, TryPopOnEmpty) {
  SpscQueue q(4096, 8);
  std::uint64_t v;
  EXPECT_FALSE(q.tryPop(&v));
  std::uint64_t in = 42;
  q.push(&in);
  ASSERT_TRUE(q.tryPop(&v));
  EXPECT_EQ(v, 42u);
}

TEST(MpmcQueue, StressPreservesMultiset) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 5000;
  MpmcQueue q(1 << 12, sizeof(std::uint64_t));
  std::atomic<bool> stopped{false};
  std::mutex sinkMutex;
  std::map<std::uint64_t, int> received;

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::map<std::uint64_t, int> local;
      std::uint64_t v;
      while (q.pop(&v, stopped)) ++local[v];
      std::scoped_lock lk(sinkMutex);
      for (auto& [val, n] : local) received[val] += n;
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::uint64_t v = std::uint64_t(p) * kPerProducer + i;
        q.push(&v);
      }
    });
  }
  for (auto& t : producers) t.join();
  stopped.store(true);
  for (auto& t : consumers) t.join();

  std::uint64_t total = 0;
  for (auto& [v, n] : received) {
    EXPECT_EQ(n, 1) << "duplicate " << v;
    total += n;
  }
  EXPECT_EQ(total, std::uint64_t(kProducers) * kPerProducer);
}

// Parameterized padding property: every CPU-baseline cell is a whole number
// of cache lines regardless of message size (the §4.3 overhead argument).
class QueuePadding : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QueuePadding, SpscCellsAreLineMultiples) {
  const std::size_t msg = GetParam();
  SpscQueue q(1 << 16, msg);
  EXPECT_GE(q.capacity(), 2u);
  // capacity * padded cell must not exceed the requested bytes.
  EXPECT_LE(q.capacity() * linesFor(msg) * kCacheLineSize, std::size_t{1} << 16);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QueuePadding,
                         ::testing::Values(8, 16, 32, 64, 65, 128, 200, 1024));

}  // namespace
}  // namespace gravel
