// Figure 14: Gravel's aggregation sensitivity — GUPS throughput as a
// function of the per-node queue size (64 B .. 256 kB) at 1/2/4/8 nodes.
//
// The functional run is independent of the per-node queue size (aggregation
// happens CPU-side), so each node count runs once and the discrete-event
// model is swept over queue sizes. Paper shape: throughput climbs with the
// queue size and the benefit diminishes beyond ~32 kB, which is why Gravel
// ships with 64 kB queues.
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace gravel;
  using namespace gravel::bench;

  printHeader("GUPS vs per-node queue size",
              "Figure 14 (knee at ~32 kB; 64 kB chosen)");

  const std::vector<std::uint32_t> nodeCounts{1, 2, 4, 8};
  const std::vector<double> queueBytes{64,   512,    4096,
                                       32768, 262144};

  std::map<std::uint32_t, WorkloadRun> runs;
  std::map<std::uint32_t, double> totalUpdates;
  for (auto n : nodeCounts) {
    runs.emplace(n, runWorkload("GUPS", n));
    totalUpdates[n] = runs.at(n).report.work_units;
  }

  TextTable table({"queue bytes", "1 node", "2 nodes", "4 nodes", "8 nodes"});
  for (double q : queueBytes) {
    std::vector<std::string> row{TextTable::num(q, 0)};
    for (auto n : nodeCounts) {
      const double sec = timeRun(runs.at(n), perf::Style::kGravel, q);
      row.push_back(TextTable::num(totalUpdates[n] / sec / 1e9, 4));
    }
    table.addRow(row);
  }
  table.print(std::cout);
  std::printf(
      "\nvalues are giga-updates per second (modeled); paper peaks at "
      "~0.25 GUPS with 8 nodes and saturates past 32 kB queues.\n");
  return 0;
}
