// §8.2: diverged work-group-level operation analysis on GUPS-mod (each
// work-item performs a random number of updates; 95% perform none).
//
// Three mechanisms, as in the paper:
//   software predication     — baseline (runs on "current GPUs")
//   WG-granularity control flow — paper emulation: 1.28x over predication
//   fine-grain barriers (fbar)  — paper software lower bound: 1.06x
//
// Each variant is a real functional run; the speedups come from the GPU-side
// cost model over the exact measured counts (collective arrivals,
// predication instructions, lanes executed).
#include <cstdio>
#include <iostream>

#include "apps/gups_mod.hpp"
#include "common.hpp"

namespace {

struct VariantResult {
  gravel::apps::AppReport report;
  double gpu_seconds;
};

VariantResult runVariant(gravel::apps::DivergedMode mode) {
  using namespace gravel;
  rt::ClusterConfig cc;
  cc.nodes = 8;
  cc.heap_bytes = 16u << 20;
  cc.device.wg_reconvergence = mode == apps::DivergedMode::kWgReconvergence;
  rt::Cluster cluster(cc);

  apps::GupsModConfig cfg;
  cfg.table_size = 1 << 16;
  cfg.workitems_per_node =
      std::uint64_t(gravel::bench::benchScale() * (1 << 15));
  cfg.max_updates = 16;
  cfg.idle_fraction = 0.95;

  VariantResult out;
  out.report = apps::runGupsMod(cluster, cfg, mode);

  // GPU-side production time over measured counts (the §8.2 experiments
  // vary only the GPU side; the network stream is identical). GUPS-mod is
  // memory bound (the paper chose 95% idle lanes precisely because the
  // benchmark is "otherwise too memory bound to observe interesting
  // performance effects"): every real update pays a random-access DRAM
  // cost, on top of which the synchronization mechanisms differ.
  constexpr double kUpdateMemoryNs = 150.0;  // random access on the APU
  perf::MachineParams mp;
  const auto& s = out.report.stats;
  const double msgs = double(s.opsTotal());
  const double slots = std::ceil(msgs / 256.0);
  out.gpu_seconds = (double(s.lanes_executed) * mp.lane_ns +
                     double(s.collective_arrivals) * mp.arrival_ns +
                     double(s.predication_overhead_ops) * mp.op_ns +
                     slots * 2 * mp.queue_rmw_ns + msgs * kUpdateMemoryNs) *
                    1e-9;
  return out;
}

}  // namespace

int main() {
  using namespace gravel;
  using namespace gravel::bench;

  printHeader("Diverged WG-level operations on GUPS-mod",
              "Section 8.2 (WG-granularity CF: 1.28x; fbar: 1.06x)");

  const auto sw = runVariant(apps::DivergedMode::kSoftwarePredication);
  const auto re = runVariant(apps::DivergedMode::kWgReconvergence);
  const auto fb = runVariant(apps::DivergedMode::kFbar);

  TextTable table({"mechanism", "speedup", "paper", "arrivals", "pred ops",
                   "validated"});
  auto row = [&](const char* name, const VariantResult& v, const char* paper) {
    table.addRow({name, TextTable::num(sw.gpu_seconds / v.gpu_seconds),
                  paper,
                  std::to_string(v.report.stats.collective_arrivals),
                  std::to_string(v.report.stats.predication_overhead_ops),
                  v.report.validated ? "yes" : "NO"});
  };
  row("software predication", sw, "1.00");
  row("WG-granularity control flow", re, "1.28");
  row("fine-grain barriers (fbar)", fb, "1.06 (lower bound)");
  table.print(std::cout);

  std::printf(
      "\nnote: the paper emulates WG-granularity control flow by shrinking "
      "work-groups to one wavefront; our engine implements the §5.3 "
      "semantics directly (exited lanes stop participating), and models "
      "fbar at hardware cost while the paper measured a software "
      "emulation it calls a lower bound.\n");
  return 0;
}
