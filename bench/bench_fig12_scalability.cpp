// Figure 12: Gravel's scalability — speedup of every Table-4 workload at
// 1/2/4/8 nodes (strong scaling), plus the geometric mean.
//
// Each cell is a real functional run (messages through the real queue,
// aggregator and fabric) timed by the Table-3 discrete-event model.
// Paper headline: 5.3x geomean at 8 nodes; GUPS/kmeans/mer approach the
// ideal 8x (all-atomic traffic), SSSP-1 scales worst (~1.6 kB average
// messages defeat the aggregator).
#include <cstdio>
#include <map>

#include "common.hpp"

int main() {
  using namespace gravel;
  using namespace gravel::bench;

  printHeader("Gravel scalability: speedup vs one node",
              "Figure 12 (geomean 5.3x at 8 nodes)");

  BenchJson json("fig12_scalability");
  json.meta("artifact", "Figure 12");
  json.meta("scale", benchScale());

  const std::vector<std::uint32_t> nodeCounts{1, 2, 4, 8};
  TextTable table({"workload", "1 node", "2 nodes", "4 nodes", "8 nodes",
                   "validated"});
  std::map<std::uint32_t, std::vector<double>> speedups;

  for (const auto& name : workloadNames()) {
    std::map<std::uint32_t, double> seconds;
    std::map<std::uint32_t, rt::ClusterRunStats> stats;
    bool allValid = true;
    for (auto n : nodeCounts) {
      const WorkloadRun run = runWorkload(name, n);
      allValid = allValid && run.report.validated;
      seconds[n] = timeRun(run, perf::Style::kGravel);
      stats[n] = run.report.stats;
    }
    std::vector<std::string> row{name};
    json.beginRow();
    json.cell("workload", name);
    for (auto n : nodeCounts) {
      const double sp = seconds[1] / seconds[n];
      speedups[n].push_back(sp);
      row.push_back(TextTable::num(sp));
      json.cell("seconds_" + std::to_string(n), seconds[n]);
      json.cell("speedup_" + std::to_string(n), sp);
      // Slot-batched routing invariant (DESIGN.md §9): the aggregator takes
      // one buffer lock per distinct destination per slot, so
      // locks/slot <= dests/slot always; run_benches.py asserts it.
      const double slots = double(std::max<std::uint64_t>(1, stats[n].agg_slots));
      json.cell("agg_locks_per_slot_" + std::to_string(n),
                double(stats[n].agg_lock_acquisitions) / slots);
      json.cell("agg_dests_per_slot_" + std::to_string(n),
                double(stats[n].agg_dests_touched) / slots);
    }
    json.cell("validated", allValid ? 1.0 : 0.0);
    row.push_back(allValid ? "yes" : "NO");
    table.addRow(row);
    std::fflush(stdout);
  }

  json.beginRow();
  json.cell("workload", "geomean");
  for (auto n : nodeCounts)
    json.cell("speedup_" + std::to_string(n), geomean(speedups[n]));

  std::vector<std::string> geo{"geo. mean"};
  for (auto n : nodeCounts) geo.push_back(TextTable::num(geomean(speedups[n])));
  geo.push_back("-");
  table.addRow(geo);

  table.print(std::cout);
  std::printf(
      "\npaper: geomean 5.3x at 8 nodes; GUPS/kmeans/mer near-ideal, "
      "SSSP-1 worst.\n");

  // --- large-N scale sweep (DESIGN.md §14) --------------------------------
  // The config admits nodes <= 65536; this sweep is the evidence the claim
  // is honest. Each point runs a real functional workload at a four-digit
  // node count (demand-paged buffers + sharded tree + timer wheel + the
  // cooperative runtime pool), times it under the Table-3 DES model, and
  // publishes the per-node resident-buffer footprint — the number that must
  // stay flat in N. Rows carry a `scale_nodes` marker cell so
  // run_benches.py validates them with scale rules (no speedup_1 here:
  // the points are absolute, not self-relative).
  const auto scaleNodes = fig12ScaleNodes();
  if (!scaleNodes.empty()) {
    printHeader("Large-N scale sweep: per-node footprint flat in N",
                "Figure 12 extension (DESIGN.md §14)");
    TextTable st({"workload", "nodes", "DES seconds", "resident B/node",
                  "lazy buffers", "timeout scanned", "validated"});
    struct ScalePoint {
      std::string workload;
      std::uint32_t nodes;
      rt::ClusterRunStats stats;
      double seconds;
      bool validated;
    };
    std::vector<ScalePoint> points;

    for (auto n : scaleNodes) {
      {  // GUPS: uniform all-to-all fine-grain atomics, serially validated.
        rt::Cluster cluster(scaleBenchCluster(n));
        apps::GupsConfig cfg;
        cfg.table_size = std::uint64_t(n) * 16;
        cfg.updates_per_node = 32;
        const auto report = apps::runGups(cluster, cfg);
        WorkloadRun run;
        run.report = report;
        run.demand = perf::demandFromCluster(cluster);
        run.am_fraction = perf::amFraction(report.stats);
        run.rounds = 1;
        points.push_back({"GUPS-scale", n, report.stats,
                          timeRun(run, perf::Style::kGravel),
                          report.validated});
      }
      {  // Ring: each node talks to one neighbour — the cold-destination
         // case; N-2 destinations per node must cost zero bytes.
        rt::Cluster cluster(scaleBenchCluster(n));
        auto cell = cluster.alloc<std::uint64_t>(1);
        cluster.resetStats();
        cluster.launchAll(16, 8,
                          [&](std::uint32_t nodeId, simt::WorkItem& wi) {
                            cluster.node(nodeId).shmemInc(
                                wi, (nodeId + 1) % n, cell.at(0));
                          });
        apps::AppReport report;
        report.stats = cluster.runStats();
        WorkloadRun run;
        run.report = report;
        run.demand = perf::demandFromCluster(cluster);
        run.am_fraction = perf::amFraction(report.stats);
        run.rounds = 1;
        const bool conserved =
            report.stats.net_resolved == report.stats.net_messages;
        points.push_back({"ring-scale", n, report.stats,
                          timeRun(run, perf::Style::kGravel), conserved});
      }
    }

    for (const ScalePoint& p : points) {
      const double slots =
          double(std::max<std::uint64_t>(1, p.stats.agg_slots));
      const double perNode = double(p.stats.agg_resident_bytes) / p.nodes;
      json.beginRow();
      json.cell("workload", p.workload);
      json.cell("scale_nodes", double(p.nodes));
      json.cell("seconds", p.seconds);
      json.cell("agg_locks_per_slot",
                double(p.stats.agg_lock_acquisitions) / slots);
      json.cell("agg_dests_per_slot",
                double(p.stats.agg_dests_touched) / slots);
      json.cell("agg_timeout_scanned", double(p.stats.agg_timeout_scanned));
      json.cell("agg_lazy_buffers", double(p.stats.agg_lazy_buffers));
      json.cell("agg_resident_bytes", double(p.stats.agg_resident_bytes));
      json.cell("agg_resident_bytes_per_node", perNode);
      json.cell("agg_staging_bytes_peak",
                double(p.stats.agg_staging_bytes_peak));
      json.cell("net_messages", double(p.stats.net_messages));
      json.cell("validated", p.validated ? 1.0 : 0.0);
      st.addRow({p.workload, std::to_string(p.nodes),
                 TextTable::num(p.seconds), TextTable::num(perNode),
                 std::to_string(p.stats.agg_lazy_buffers),
                 std::to_string(p.stats.agg_timeout_scanned),
                 p.validated ? "yes" : "NO"});
    }
    st.print(std::cout);
    std::printf(
        "\nresident B/node must stay flat as nodes grow (lazy buffers); "
        "timeout scanned tracks traffic, not nodes x ticks.\n");
  }
  return 0;
}
