// Figure 12: Gravel's scalability — speedup of every Table-4 workload at
// 1/2/4/8 nodes (strong scaling), plus the geometric mean.
//
// Each cell is a real functional run (messages through the real queue,
// aggregator and fabric) timed by the Table-3 discrete-event model.
// Paper headline: 5.3x geomean at 8 nodes; GUPS/kmeans/mer approach the
// ideal 8x (all-atomic traffic), SSSP-1 scales worst (~1.6 kB average
// messages defeat the aggregator).
#include <cstdio>
#include <map>

#include "common.hpp"

int main() {
  using namespace gravel;
  using namespace gravel::bench;

  printHeader("Gravel scalability: speedup vs one node",
              "Figure 12 (geomean 5.3x at 8 nodes)");

  BenchJson json("fig12_scalability");
  json.meta("artifact", "Figure 12");
  json.meta("scale", benchScale());

  const std::vector<std::uint32_t> nodeCounts{1, 2, 4, 8};
  TextTable table({"workload", "1 node", "2 nodes", "4 nodes", "8 nodes",
                   "validated"});
  std::map<std::uint32_t, std::vector<double>> speedups;

  for (const auto& name : workloadNames()) {
    std::map<std::uint32_t, double> seconds;
    std::map<std::uint32_t, rt::ClusterRunStats> stats;
    bool allValid = true;
    for (auto n : nodeCounts) {
      const WorkloadRun run = runWorkload(name, n);
      allValid = allValid && run.report.validated;
      seconds[n] = timeRun(run, perf::Style::kGravel);
      stats[n] = run.report.stats;
    }
    std::vector<std::string> row{name};
    json.beginRow();
    json.cell("workload", name);
    for (auto n : nodeCounts) {
      const double sp = seconds[1] / seconds[n];
      speedups[n].push_back(sp);
      row.push_back(TextTable::num(sp));
      json.cell("seconds_" + std::to_string(n), seconds[n]);
      json.cell("speedup_" + std::to_string(n), sp);
      // Slot-batched routing invariant (DESIGN.md §9): the aggregator takes
      // one buffer lock per distinct destination per slot, so
      // locks/slot <= dests/slot always; run_benches.py asserts it.
      const double slots = double(std::max<std::uint64_t>(1, stats[n].agg_slots));
      json.cell("agg_locks_per_slot_" + std::to_string(n),
                double(stats[n].agg_lock_acquisitions) / slots);
      json.cell("agg_dests_per_slot_" + std::to_string(n),
                double(stats[n].agg_dests_touched) / slots);
    }
    json.cell("validated", allValid ? 1.0 : 0.0);
    row.push_back(allValid ? "yes" : "NO");
    table.addRow(row);
    std::fflush(stdout);
  }

  json.beginRow();
  json.cell("workload", "geomean");
  for (auto n : nodeCounts)
    json.cell("speedup_" + std::to_string(n), geomean(speedups[n]));

  std::vector<std::string> geo{"geo. mean"};
  for (auto n : nodeCounts) geo.push_back(TextTable::num(geomean(speedups[n])));
  geo.push_back("-");
  table.addRow(geo);

  table.print(std::cout);
  std::printf(
      "\npaper: geomean 5.3x at 8 nodes; GUPS/kmeans/mer near-ideal, "
      "SSSP-1 worst.\n");
  return 0;
}
