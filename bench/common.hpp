// Shared harness for the figure/table benches: the Table-4 workload registry
// at reproduction scale, run functionally on a fresh cluster and packaged
// with the per-node demand matrix the timing simulation consumes.
//
// Scales are the paper's inputs shrunk to a single-core host (DESIGN.md §2);
// set GRAVEL_BENCH_SCALE=<float> to grow or shrink every workload together.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/color.hpp"
#include "apps/gups.hpp"
#include "apps/kmeans.hpp"
#include "apps/mer.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "perf/pipeline.hpp"

namespace gravel::bench {

inline double benchScale() {
  if (const char* s = std::getenv("GRAVEL_BENCH_SCALE")) return std::atof(s);
  return 1.0;
}

/// One functional run, ready for timing simulation.
struct WorkloadRun {
  std::string name;
  apps::AppReport report;
  std::vector<perf::NodeDemand> demand;
  double am_fraction = 0;
  std::uint64_t rounds = 1;
};

inline const std::vector<std::string>& allWorkloadNames() {
  static const std::vector<std::string> names{
      "GUPS",    "PR-1",    "PR-2",   "SSSP-1", "SSSP-2",
      "color-1", "color-2", "kmeans", "mer"};
  return names;
}

/// Workloads the sweeping benches iterate. GRAVEL_BENCH_WORKLOADS (a
/// comma-separated subset, e.g. "GUPS,kmeans") restricts the sweep — the
/// smoke harness uses it to keep CI runs short. Unknown names are rejected
/// so a typo cannot silently produce an empty bench.
inline const std::vector<std::string>& workloadNames() {
  static const std::vector<std::string> names = [] {
    const char* env = std::getenv("GRAVEL_BENCH_WORKLOADS");
    if (env == nullptr || *env == '\0') return allWorkloadNames();
    std::vector<std::string> out;
    std::string token;
    for (const char* p = env;; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!token.empty()) {
          const auto& all = allWorkloadNames();
          if (std::find(all.begin(), all.end(), token) == all.end())
            throw InvalidArgument("GRAVEL_BENCH_WORKLOADS: unknown workload " +
                                  token);
          out.push_back(token);
          token.clear();
        }
        if (*p == '\0') break;
      } else {
        token.push_back(*p);
      }
    }
    if (out.empty())
      throw InvalidArgument("GRAVEL_BENCH_WORKLOADS selected no workloads");
    return out;
  }();
  return names;
}

/// Node counts for the fig12 large-N scale sweep (DESIGN.md §14).
/// GRAVEL_FIG12_SCALE_NODES is a comma-separated list ("1024,4096"); empty
/// or "0" disables the sweep. The default exercises the first four-digit
/// point so a plain bench run still produces scale evidence.
inline std::vector<std::uint32_t> fig12ScaleNodes() {
  std::vector<std::uint32_t> out;
  const char* env = std::getenv("GRAVEL_FIG12_SCALE_NODES");
  const std::string spec = env ? env : "1024";
  std::string token;
  for (const char* p = spec.c_str();; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        const long v = std::atol(token.c_str());
        if (v > 0) out.push_back(std::uint32_t(v));
        token.clear();
      }
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return out;
}

/// Config-tweak hook for the scale sweep: thousands of simulated nodes on
/// one host need tiny per-node heaps/queues and the cooperative runtime
/// pool instead of 2N dedicated threads (DESIGN.md §14). Mirrors
/// tests/test_scale.cpp so the bench measures the configuration the tests
/// prove correct.
inline rt::ClusterConfig scaleBenchCluster(std::uint32_t nodes) {
  rt::ClusterConfig c;
  c.nodes = nodes;
  c.heap_bytes = 16u << 10;
  c.gpu_queue_bytes = 8u << 10;
  c.pernode_queue_bytes = 512;
  c.runtime_threads = 2;
  c.device.wavefront_width = 8;
  c.device.max_wg_size = 32;
  return c;
}

inline rt::ClusterConfig benchCluster(std::uint32_t nodes,
                                      bool traced = false) {
  rt::ClusterConfig c;
  c.nodes = nodes;
  c.heap_bytes = 64u << 20;
  if (traced) {
    // Sampled tracing feeds the latency-attribution engine so the bench can
    // report per-stage p50/p99 (run_benches.py schema v2). 1-in-16 keeps
    // the record sites inside the counters' noise floor.
    c.obs.enabled = true;
    c.obs.sample_interval = 16;
    // Windowed time-series collection backs the serving-oriented ts_*
    // columns (schema v3): sustained vs. peak per-window message rate. A
    // 50 ms cadence resolves the short bench runs; collection rides the
    // monitor thread, off every hot path.
    c.timeseries.enabled = true;
    c.timeseries.period = std::chrono::milliseconds(50);
    // Continuous profiler (schema v4): per-thread busy/idle attribution and
    // named-mutex wait totals back the cpu_ns_per_msg / lock_wait_share
    // columns. Region timers are scoped and single-writer — same noise
    // floor as the sampled tracing above.
    c.profiler.enabled = true;
  }
  return c;  // Table 3 defaults otherwise (256-lane WGs, 1 MB queue, ...)
}

/// Runs `name` on a fresh `nodes`-node cluster at reproduction scale.
/// Total problem size is fixed across node counts (strong scaling, as in
/// Figure 12). `traced` enables sampled tracing so the run's stats carry
/// per-stage latency quantiles.
inline WorkloadRun runWorkload(const std::string& name, std::uint32_t nodes,
                               bool traced = false) {
  const double s = benchScale();
  rt::Cluster cluster(benchCluster(nodes, traced));
  WorkloadRun run;
  run.name = name;

  if (name == "GUPS") {
    apps::GupsConfig cfg;
    cfg.table_size = 1 << 18;
    cfg.updates_per_node = std::uint64_t(s * (2 << 20)) / nodes;
    run.report = apps::runGups(cluster, cfg);
  } else if (name == "PR-1" || name == "PR-2") {
    graph::Csr g = name == "PR-1"
                       ? graph::bubblesLike(graph::Vertex(s * 400000), 11)
                       : graph::cageLike(graph::Vertex(s * 60000), 19, 12);
    graph::DistGraph dg(std::move(g), nodes);
    apps::PageRankConfig cfg;
    cfg.iterations = name == "PR-1" ? 5 : 3;
    run.report = apps::runPageRank(cluster, dg, cfg).report;
  } else if (name == "SSSP-1" || name == "SSSP-2") {
    graph::Csr g = name == "SSSP-1"
                       ? graph::bubblesLike(graph::Vertex(s * 8000), 13)
                       : graph::cageLike(graph::Vertex(s * 30000), 19, 14);
    graph::DistGraph dg(std::move(g), nodes);
    run.report = apps::runSssp(cluster, dg, {}).report;
  } else if (name == "color-1" || name == "color-2") {
    graph::Csr g = name == "color-1"
                       ? graph::bubblesLike(graph::Vertex(s * 400000), 15)
                       : graph::cageLike(graph::Vertex(s * 60000), 19, 16);
    graph::DistGraph dg(std::move(g), nodes);
    run.report = apps::runColor(cluster, dg, {}).report;
  } else if (name == "kmeans") {
    apps::KmeansConfig cfg;
    cfg.clusters = 8;
    cfg.dims = 4;
    cfg.points_per_node = std::uint64_t(s * (128 << 10)) / nodes;
    cfg.iterations = 3;
    run.report = apps::runKmeans(cluster, cfg).report;
  } else if (name == "mer") {
    apps::MerConfig cfg;
    cfg.genome_length = 1 << 18;
    cfg.reads_per_node = std::uint64_t(s * 12000) / nodes;
    cfg.read_length = 100;
    cfg.k = 21;
    // Constant cluster-wide capacity: the genome's distinct k-mers must fit
    // one node's table when nodes == 1.
    cfg.table_slots_per_node = (1 << 20) / nodes;
    run.report = apps::runMer(cluster, cfg).report;
  } else {
    throw InvalidArgument("unknown workload: " + name);
  }

  run.demand = perf::demandFromCluster(cluster);
  run.am_fraction = perf::amFraction(run.report.stats);
  run.rounds = std::max<std::uint64_t>(1, run.report.iterations);
  return run;
}

/// Times a completed run under a networking style.
inline double timeRun(const WorkloadRun& run, perf::Style style,
                      double pernodeQueueBytes = 64.0 * 1024,
                      const perf::MachineParams& params = {}) {
  perf::SimConfig cfg;
  cfg.style = style;
  cfg.params = params;
  cfg.wg_size = 256;
  cfg.pernode_queue_bytes = pernodeQueueBytes;
  cfg.am_fraction = run.am_fraction;
  return perf::simulateApp(cfg, run.demand, run.rounds);
}

inline double geomean(const std::vector<double>& xs) {
  double logSum = 0;
  for (double x : xs) logSum += std::log(x);
  return xs.empty() ? 0.0 : std::exp(logSum / double(xs.size()));
}

/// Machine-readable bench output alongside the printed tables: when
/// GRAVEL_BENCH_JSON is set, each bench writes BENCH_<name>.json (into
/// GRAVEL_BENCH_JSON_DIR, or the working directory) on destruction:
///
///   {"bench": "...", "meta": {...}, "rows": [{"col": val, ...}, ...]}
///
/// Values are numbers or strings; every row carries its own keys, so
/// sweeps with ragged columns serialize naturally. With the env var unset
/// every call is a no-op, keeping the default bench output byte-identical.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}
  ~BenchJson() { write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  static bool enabled() {
    const char* v = std::getenv("GRAVEL_BENCH_JSON");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
  }

  void meta(const std::string& key, const std::string& value) {
    if (enabled()) meta_.push_back({key, 0, value, /*isNumber=*/false});
  }
  void meta(const std::string& key, double value) {
    if (enabled()) meta_.push_back({key, value, {}, /*isNumber=*/true});
  }

  void beginRow() {
    if (enabled()) rows_.emplace_back();
  }
  void cell(const std::string& key, double value) {
    if (enabled()) rows_.back().push_back({key, value, {}, true});
  }
  void cell(const std::string& key, const std::string& value) {
    if (enabled()) rows_.back().push_back({key, 0, value, false});
  }

  /// Writes the file now (also runs at destruction; second call is a no-op).
  void write() {
    if (!enabled() || written_) return;
    written_ = true;
    std::string dir = ".";
    if (const char* d = std::getenv("GRAVEL_BENCH_JSON_DIR")) dir = d;
    const std::string path = dir + "/BENCH_" + bench_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "BenchJson: cannot open %s\n", path.c_str());
      return;
    }
    obs::JsonWriter w(os);
    w.beginObject().kv("bench", bench_);
    w.key("meta").beginObject();
    for (const Entry& e : meta_) writeEntry(w, e);
    w.endObject();
    w.key("rows").beginArray();
    for (const auto& row : rows_) {
      w.beginObject();
      for (const Entry& e : row) writeEntry(w, e);
      w.endObject();
    }
    w.endArray().endObject();
    std::fprintf(stderr, "bench json: %s\n", path.c_str());
  }

 private:
  struct Entry {
    std::string key;
    double number;
    std::string text;
    bool isNumber;
  };

  static void writeEntry(obs::JsonWriter& w, const Entry& e) {
    if (e.isNumber)
      w.kv(e.key, e.number);
    else
      w.kv(e.key, e.text);
  }

  std::string bench_;
  std::vector<Entry> meta_;
  std::vector<std::vector<Entry>> rows_;
  bool written_ = false;
};

inline void printHeader(const std::string& title, const std::string& paper) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(paper artifact: %s)\n", paper.c_str());
  std::printf("==================================================================\n");
}

}  // namespace gravel::bench
