// Figure 15: style comparison at eight nodes — every workload timed under
// the six configurations the paper plots:
//
//   coprocessor, coprocessor + extra buffering (1 MB per-node queues),
//   msg-per-lane, coalesced APIs, coalesced APIs + Gravel aggregation,
//   Gravel.
//
// Bars are speedups normalized to the coprocessor model (first bar = 1).
// Paper shape: Gravel >= everything; coalesced+aggregation ~ Gravel;
// msg-per-lane collapses on all-remote fine-grain traffic (~0.01 on GUPS).
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace gravel;
  using namespace gravel::bench;

  printHeader("Style comparison at 8 nodes (speedup vs coprocessor)",
              "Figure 15");

  struct StyleCol {
    const char* label;
    perf::Style style;
    double queueBytes;
  };
  const std::vector<StyleCol> styles{
      {"coprocessor", perf::Style::kCoprocessor, 64.0 * 1024},
      {"coproc+buf", perf::Style::kCoprocessor, 1024.0 * 1024},
      {"msg-per-lane", perf::Style::kMsgPerLane, 64.0 * 1024},
      {"coalesced", perf::Style::kCoalesced, 64.0 * 1024},
      {"coal+agg", perf::Style::kCoalescedAgg, 64.0 * 1024},
      {"Gravel", perf::Style::kGravel, 64.0 * 1024},
  };

  TextTable table({"workload", "coprocessor", "coproc+buf", "msg-per-lane",
                   "coalesced", "coal+agg", "Gravel"});
  std::vector<std::vector<double>> columns(styles.size());

  for (const auto& name : workloadNames()) {
    const WorkloadRun run = runWorkload(name, 8);
    std::vector<std::string> row{name};
    const double base = timeRun(run, styles[0].style, styles[0].queueBytes);
    for (std::size_t s = 0; s < styles.size(); ++s) {
      const double t = timeRun(run, styles[s].style, styles[s].queueBytes);
      const double speedup = base / t;
      columns[s].push_back(speedup);
      row.push_back(TextTable::num(speedup));
    }
    table.addRow(row);
    std::fflush(stdout);
  }

  std::vector<std::string> geo{"geo. mean"};
  for (auto& col : columns) geo.push_back(TextTable::num(geomean(col)));
  table.addRow(geo);
  table.print(std::cout);
  std::printf(
      "\npaper shape: Gravel >= all styles on every workload; "
      "coalesced+aggregation close behind; msg-per-lane worst on "
      "remote-heavy fine-grain traffic.\n");
  return 0;
}
