// Extension bench (paper §10, future work): flat vs two-level hierarchical
// aggregation as the cluster grows past the paper's eight nodes.
//
// The paper's closing argument: per-destination aggregation stops working
// once per-destination traffic no longer fills a 64 kB queue, and "a two
// level hierarchy with each level doing a 16-node aggregation supports 256
// nodes with one indirect hop". This bench quantifies that crossover for a
// GUPS-like all-to-all stream with the Table-3 machine model.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "perf/hierarchy.hpp"

int main() {
  using namespace gravel;
  using namespace gravel::perf;

  std::printf(
      "==================================================================\n"
      "Flat vs two-level (16-node groups) aggregation at scale\n"
      "(paper artifact: section 10 future-work proposal, quantified)\n"
      "==================================================================\n");

  // Per-round traffic of an iterative application (messages between two
  // synchronization points). The interesting regime is where a round's
  // per-destination traffic stops filling a 64 kB queue as the cluster
  // grows — exactly the situation §10's hierarchy proposal targets.
  constexpr double kMsgsPerNodeRound = 3e4;

  TextTable table({"nodes", "flat GUPS", "2-level GUPS", "2-level / flat",
                   "flat batches/node", "2-level batches/node"});
  for (std::uint32_t nodes : {16u, 32u, 64u, 128u, 256u, 512u}) {
    HierarchyConfig flat;
    flat.nodes = nodes;
    flat.group = 1;
    flat.msgs_per_node = kMsgsPerNodeRound;
    HierarchyConfig two = flat;
    two.group = 16;

    const double tFlat = hierarchicalRoundSeconds(flat);
    const double tTwo = hierarchicalRoundSeconds(two);
    // Weak-scaling throughput: msgs_per_node * nodes / time.
    const double gupsFlat = flat.msgs_per_node * nodes / tFlat / 1e9;
    const double gupsTwo = two.msgs_per_node * nodes / tTwo / 1e9;
    // Structural batch counts (network messages per node per round).
    const double batchMsgs = flat.pernode_queue_bytes / flat.msg_bytes;
    const double flatBatches =
        (nodes - 1) *
        std::max(1.0, kMsgsPerNodeRound / nodes / batchMsgs);
    const double groups = double(nodes) / two.group;
    const double remoteOut = kMsgsPerNodeRound * (groups - 1) / groups;
    const double twoBatches =
        (groups - 1) * std::max(1.0, remoteOut / (groups - 1) / batchMsgs) +
        two.group * std::max(1.0, remoteOut / two.group / batchMsgs);
    table.addRow({std::to_string(nodes), TextTable::num(gupsFlat, 2),
                  TextTable::num(gupsTwo, 2),
                  TextTable::num(gupsFlat > 0 ? gupsTwo / gupsFlat : 0, 2),
                  TextTable::num(flatBatches, 0),
                  TextTable::num(twoBatches, 0)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape: flat wins while per-destination traffic still "
      "fills 64 kB queues; once it does not (hundreds of nodes), the "
      "two-level hierarchy's fuller batches out-amortize its extra "
      "forwarding hop.\n");
  return 0;
}
