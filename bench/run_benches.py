#!/usr/bin/env python3
"""Bench regression harness: runs the paper-artifact benches under pinned
configurations and emits schema-validated summary JSONs at the repo root.

For each selected bench (fig8 queue throughput, fig12 scalability, table5
network statistics) the driver runs the bench binary N times with
GRAVEL_BENCH_JSON enabled, collects the per-run BENCH_<source>.json files,
and aggregates every numeric cell into {median, min, max, repeats} summary
statistics. The result is written as BENCH_fig8.json / BENCH_fig12.json /
BENCH_table5.json (schema below), validated both structurally and against
bench-specific invariants — including the slot-batched aggregator's
lock-discipline guarantee (lock acquisitions per slot <= distinct
destinations per slot; see DESIGN.md section 9).

Summary schema (schema_version 3; version-1/2 files still validate):

  {
    "schema_version": 3,
    "bench": "fig8",                  # harness name
    "source": "fig8_queue_tput",      # BenchJson name / binary suffix
    "generated_by": "bench/run_benches.py",
    "mode": "smoke" | "full",
    "repeats": N,
    "machine": {"platform": ..., "machine": ..., "python": ...,
                "cpu_count": ...},
    "config": {"GRAVEL_BENCH_SCALE": ..., ...},   # pinned env knobs
    "meta": {...},                    # bench-reported metadata (last run)
    "rows": [ {"col": {"median": m, "min": lo, "max": hi,
                       "repeats": [v0, v1, ...]}    # numeric cells
               , "name_col": "string"}, ... ]       # string cells verbatim
  }

Schema v2 adds per-stage latency-attribution columns to table5 rows
(sourced from the obs latency engine, nanoseconds): lat_samples,
lat_e2e_p50_ns / lat_e2e_p99_ns, and a lat_p50_ns_<transition> /
lat_p99_ns_<transition> pair for each pipeline transition
(enqueue_to_aggregate ... deliver_to_resolve). Schema v3 adds the
serving-oriented time-series columns (windowed collector, src/obs/
timeseries.hpp): ts_windows, ts_msgs_per_s_p50, ts_msgs_per_s_peak.
Schema v4 adds the continuous-profiler columns (src/obs/profiler.hpp,
DESIGN.md section 15): fig8 rows carry gravel_gbs_prof (the same queue
measured with profiling enabled — the overhead evidence), and table5 rows
carry cpu_ns_per_msg (attributed busy ns per resolved network message)
and lock_wait_share (named-mutex wait time as a share of busy time). The
reader is backward-compatible: --check accepts v1..v3 files and skips the
newer-version requirements.

Modes:
  (default)       full-size run, 3 repeats
  --smoke         reduced-size pinned config (CI job), 1 repeat
  --check FILE..  no benches run; revalidate existing summary files and
                  exit nonzero on schema drift
"""

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCHEMA_VERSION = 4
# Versions --check still accepts; new summaries are always SCHEMA_VERSION.
ACCEPTED_SCHEMA_VERSIONS = {1, 2, 3, 4}

# Pipeline transitions the latency-attribution engine reports, matching
# obs::transitionLabel (src/obs/latency.hpp).
LAT_TRANSITIONS = (
    "enqueue_to_aggregate",
    "aggregate_to_flush",
    "flush_to_wire-send",
    "wire-send_to_deliver",
    "deliver_to_resolve",
)

# Harness name -> BenchJson source name (binary is bench_<source>).
BENCHES = {
    "fig8": "fig8_queue_tput",
    "fig12": "fig12_scalability",
    "table5": "table5_netstats",
}

# Pinned per-mode environment. The smoke profile shrinks problem sizes and
# measurement windows but still runs the real queues/aggregator/fabric, so
# the structural invariants (schema, lock discipline, speedup_1 == 1) are
# exercised end to end in CI.
MODE_ENV = {
    "full": {
        "GRAVEL_BENCH_SCALE": "1.0",
        # fig12's large-N sweep (DESIGN.md 14): both four-digit points.
        "GRAVEL_FIG12_SCALE_NODES": "1024,4096",
    },
    "smoke": {
        "GRAVEL_BENCH_SCALE": "0.05",
        "GRAVEL_BENCH_RUN_SECONDS": "0.02",
        "GRAVEL_BENCH_WORKLOADS": "GUPS,kmeans",
        # Both four-digit points even in smoke: the per-node scale work is
        # fixed and tiny, and the resident-bytes flatness validator needs
        # two points per workload to have anything to compare.
        "GRAVEL_FIG12_SCALE_NODES": "1024,4096",
    },
}

FLOAT_TOL = 1e-9


class ValidationError(Exception):
    pass


def fail(msg):
    print(f"run_benches: ERROR: {msg}", file=sys.stderr)
    sys.exit(1)


def machine_info():
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 0,
    }


def run_bench_once(binary, source, env_overrides):
    """Runs one bench binary and returns its parsed BENCH_<source>.json."""
    with tempfile.TemporaryDirectory(prefix="gravel-bench-") as tmp:
        env = dict(os.environ)
        env.update(env_overrides)
        env["GRAVEL_BENCH_JSON"] = "1"
        env["GRAVEL_BENCH_JSON_DIR"] = tmp
        proc = subprocess.run(
            [binary], env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            raise ValidationError(
                f"{os.path.basename(binary)} exited {proc.returncode}")
        path = os.path.join(tmp, f"BENCH_{source}.json")
        if not os.path.exists(path):
            raise ValidationError(
                f"{os.path.basename(binary)} did not emit {path}")
        with open(path) as f:
            return json.load(f)


def aggregate_rows(runs):
    """Folds the per-run row lists into summary rows (median/min/max)."""
    row_counts = {len(r["rows"]) for r in runs}
    if len(row_counts) != 1:
        raise ValidationError(
            f"row count varies across repeats: {sorted(row_counts)} "
            "(bench output is not deterministic in shape)")
    rows = []
    for i in range(row_counts.pop()):
        per_run = [r["rows"][i] for r in runs]
        keys = {frozenset(row.keys()) for row in per_run}
        if len(keys) != 1:
            raise ValidationError(f"row {i} keys vary across repeats")
        out = {}
        for key in per_run[0]:
            values = [row[key] for row in per_run]
            if all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in values):
                out[key] = {
                    "median": statistics.median(values),
                    "min": min(values),
                    "max": max(values),
                    "repeats": values,
                }
            else:
                if len(set(map(str, values))) != 1:
                    raise ValidationError(
                        f"row {i} string cell '{key}' varies across repeats")
                out[key] = values[0]
        rows.append(out)
    return rows


def run_bench(name, build_dir, mode, repeats):
    source = BENCHES[name]
    binary = os.path.join(build_dir, "bench", f"bench_{source}")
    if not os.path.exists(binary):
        raise ValidationError(
            f"bench binary not found: {binary} (build the 'bench' targets "
            "first: cmake --build <build-dir>)")
    env_overrides = dict(MODE_ENV[mode])
    runs = []
    for r in range(repeats):
        print(f"run_benches: {name} repeat {r + 1}/{repeats}", flush=True)
        runs.append(run_bench_once(binary, source, env_overrides))
    for r in runs:
        if r.get("bench") != source:
            raise ValidationError(
                f"bench field mismatch: expected {source}, got {r.get('bench')}")
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": name,
        "source": source,
        "generated_by": "bench/run_benches.py",
        "mode": mode,
        "repeats": repeats,
        "machine": machine_info(),
        "config": env_overrides,
        "meta": runs[-1].get("meta", {}),
        "rows": aggregate_rows(runs),
    }


# --- validation -------------------------------------------------------------

def cell_median(row, key):
    cell = row.get(key)
    if not isinstance(cell, dict) or "median" not in cell:
        raise ValidationError(f"missing/ill-formed numeric cell '{key}'")
    return cell["median"]


def require(cond, msg):
    if not cond:
        raise ValidationError(msg)


def validate_structure(doc):
    require(isinstance(doc, dict), "summary is not a JSON object")
    for key in ("schema_version", "bench", "source", "generated_by", "mode",
                "repeats", "machine", "config", "meta", "rows"):
        require(key in doc, f"missing top-level key '{key}'")
    require(doc["schema_version"] in ACCEPTED_SCHEMA_VERSIONS,
            f"schema_version {doc['schema_version']} not in "
            f"{sorted(ACCEPTED_SCHEMA_VERSIONS)}")
    require(doc["bench"] in BENCHES, f"unknown bench '{doc['bench']}'")
    require(doc["source"] == BENCHES[doc["bench"]],
            f"source '{doc['source']}' does not match bench '{doc['bench']}'")
    require(doc["mode"] in MODE_ENV, f"unknown mode '{doc['mode']}'")
    require(isinstance(doc["repeats"], int) and doc["repeats"] >= 1,
            "repeats must be a positive integer")
    for key in ("platform", "machine", "python", "cpu_count"):
        require(key in doc["machine"], f"machine info missing '{key}'")
    require(isinstance(doc["rows"], list) and doc["rows"],
            "rows must be a non-empty array")
    for i, row in enumerate(doc["rows"]):
        require(isinstance(row, dict) and row, f"row {i} is not an object")
        for key, cell in row.items():
            if isinstance(cell, dict):
                for stat in ("median", "min", "max", "repeats"):
                    require(stat in cell, f"row {i} cell '{key}' missing "
                            f"'{stat}'")
                require(len(cell["repeats"]) == doc["repeats"],
                        f"row {i} cell '{key}' has {len(cell['repeats'])} "
                        f"repeats, expected {doc['repeats']}")
                require(cell["min"] - FLOAT_TOL <= cell["median"]
                        <= cell["max"] + FLOAT_TOL,
                        f"row {i} cell '{key}' median outside [min, max]")
            else:
                require(isinstance(cell, str),
                        f"row {i} cell '{key}' is neither summary nor string")


def validate_fig8(doc):
    for i, row in enumerate(doc["rows"]):
        for key in ("msg_bytes", "gravel_gbs", "spsc_gbs", "mpmc_gbs",
                    "gravel_lines_per_msg", "padded_lines_per_msg"):
            require(key in row, f"fig8 row {i} missing '{key}'")
        require(cell_median(row, "msg_bytes") > 0,
                f"fig8 row {i}: msg_bytes must be positive")
        require(cell_median(row, "gravel_gbs") > 0,
                f"fig8 row {i}: gravel queue measured zero throughput")
        if doc["schema_version"] >= 4:
            # Profiler-overhead evidence: the profiled measurement ran and
            # is the same order of magnitude as the plain one. The tight
            # within-a-few-percent claim is made from full-length local runs
            # (DESIGN.md section 15); short smoke windows on loaded CI hosts
            # are too noisy for a 3% gate, so the structural check here only
            # rejects collapse (profiling costing more than half the
            # throughput would be a real regression at any window length).
            prof = cell_median(row, "gravel_gbs_prof")
            plain = cell_median(row, "gravel_gbs")
            require(prof > 0,
                    f"fig8 row {i}: profiled gravel queue measured zero "
                    "throughput")
            require(prof >= 0.5 * plain,
                    f"fig8 row {i}: profiling collapsed throughput "
                    f"({prof} vs {plain} GB/s — continuous profiler is no "
                    "longer cheap on the produce path)")


def validate_agg_lock_discipline(row, where, locks_key, dests_key):
    locks = cell_median(row, locks_key)
    dests = cell_median(row, dests_key)
    require(locks <= dests + FLOAT_TOL,
            f"{where}: aggregator lock discipline violated — "
            f"{locks_key} = {locks} > {dests_key} = {dests} "
            "(slot-batched routing must take at most one lock per distinct "
            "destination per slot)")


def validate_fig12_scale_row(row, i):
    """Large-N sweep rows (marker cell `scale_nodes`): absolute points, not
    self-relative speedups — validated for the DESIGN.md-14 honesty claims
    instead: lock discipline, conservation-validated runs, and sane
    footprint/timeout evidence (flatness across points is checked after all
    rows are seen)."""
    where = f"fig12 scale row {i} ({row.get('workload', '?')})"
    nodes = cell_median(row, "scale_nodes")
    require(nodes >= 2, f"{where}: scale_nodes = {nodes} is not a sweep point")
    require(cell_median(row, "validated") == 1.0,
            f"{where}: functional run failed validation/conservation")
    validate_agg_lock_discipline(
        row, where, "agg_locks_per_slot", "agg_dests_per_slot")
    per_node = cell_median(row, "agg_resident_bytes_per_node")
    require(per_node >= 0.0,
            f"{where}: agg_resident_bytes_per_node = {per_node} is negative")
    # Timer-wheel honesty: entries examined track traffic, never the old
    # nodes-x-ticks full scan. 8 messages + 4N constant mirrors
    # tests/test_scale.cpp's bound.
    scanned = cell_median(row, "agg_timeout_scanned")
    msgs = cell_median(row, "net_messages")
    require(scanned <= 8 * msgs + 4 * nodes,
            f"{where}: agg_timeout_scanned = {scanned} exceeds the "
            f"O(expired) bound for {msgs} messages at {nodes} nodes "
            "(timeout maintenance is scanning like O(N) again)")


def validate_fig12_scale_flatness(scale_rows):
    """The tentpole claim across points: per-node resident buffer bytes must
    not grow with the node count. Compare each workload's points pairwise
    with generous (4x + 256 B) slack for allocator rounding — the eager
    design differed by orders of magnitude."""
    by_workload = {}
    for i, row in scale_rows:
        by_workload.setdefault(row["workload"], []).append(
            (cell_median(row, "scale_nodes"),
             cell_median(row, "agg_resident_bytes_per_node")))
    for workload, points in by_workload.items():
        points.sort()
        base_nodes, base = points[0]
        for nodes, per_node in points[1:]:
            require(per_node <= 4.0 * base + 256.0,
                    f"fig12 scale ({workload}): resident bytes/node grew "
                    f"from {base} at {base_nodes:.0f} nodes to {per_node} "
                    f"at {nodes:.0f} nodes — per-destination buffers are "
                    "not demand-paged anymore")


def validate_fig12(doc):
    saw_workload = saw_geomean = False
    scale_rows = []
    for i, row in enumerate(doc["rows"]):
        require("workload" in row, f"fig12 row {i} missing 'workload'")
        if row["workload"] == "geomean":
            saw_geomean = True
            continue
        if "scale_nodes" in row:
            scale_rows.append((i, row))
            validate_fig12_scale_row(row, i)
            continue
        saw_workload = True
        sp1 = cell_median(row, "speedup_1")
        require(abs(sp1 - 1.0) < 1e-6,
                f"fig12 row {i} ({row['workload']}): speedup_1 = {sp1}, "
                "expected exactly 1 (self-relative)")
        for key in row:
            if not key.startswith("agg_locks_per_slot_"):
                continue
            n = key[len("agg_locks_per_slot_"):]
            validate_agg_lock_discipline(
                row, f"fig12 row {i} ({row['workload']}, {n} nodes)",
                key, f"agg_dests_per_slot_{n}")
        require(any(k.startswith("agg_locks_per_slot_") for k in row),
                f"fig12 row {i} ({row['workload']}) records no aggregator "
                "lock statistics")
    require(saw_workload, "fig12 has no workload rows")
    require(saw_geomean, "fig12 has no geomean row")
    if scale_rows:
        validate_fig12_scale_flatness(scale_rows)


def validate_table5(doc):
    for i, row in enumerate(doc["rows"]):
        require("workload" in row, f"table5 row {i} missing 'workload'")
        pct = cell_median(row, "remote_pct")
        require(0.0 <= pct <= 100.0,
                f"table5 row {i} ({row['workload']}): remote_pct = {pct} "
                "outside [0, 100]")
        validate_agg_lock_discipline(
            row, f"table5 row {i} ({row['workload']})",
            "agg_locks_per_slot", "agg_dests_per_slot")
        if doc["schema_version"] >= 2:
            validate_table5_latency(row, i)
        if doc["schema_version"] >= 3:
            validate_table5_timeseries(row, i)
        if doc["schema_version"] >= 4:
            validate_table5_profiler(row, i)


def validate_table5_latency(row, i):
    """Schema-v2 per-stage latency columns: present, ordered, sampled."""
    where = f"table5 row {i} ({row.get('workload', '?')})"
    require(cell_median(row, "lat_samples") > 0,
            f"{where}: traced bench run attributed no latency samples")
    pairs = [("lat_e2e_p50_ns", "lat_e2e_p99_ns")]
    pairs += [(f"lat_p50_ns_{t}", f"lat_p99_ns_{t}") for t in LAT_TRANSITIONS]
    for p50_key, p99_key in pairs:
        p50 = cell_median(row, p50_key)
        p99 = cell_median(row, p99_key)
        require(p50 >= 0.0, f"{where}: {p50_key} = {p50} is negative")
        require(p99 + FLOAT_TOL >= p50,
                f"{where}: {p99_key} = {p99} < {p50_key} = {p50} "
                "(quantiles out of order)")


def validate_table5_timeseries(row, i):
    """Schema-v3 serving columns: the windowed collector really collected,
    and the rate roll-up is internally consistent (peak >= sustained >= 0)."""
    where = f"table5 row {i} ({row.get('workload', '?')})"
    require(cell_median(row, "ts_windows") >= 1,
            f"{where}: time-series collector took no windows during a "
            "traced bench run")
    p50 = cell_median(row, "ts_msgs_per_s_p50")
    peak = cell_median(row, "ts_msgs_per_s_peak")
    require(p50 >= 0.0, f"{where}: ts_msgs_per_s_p50 = {p50} is negative")
    require(peak + FLOAT_TOL >= p50,
            f"{where}: ts_msgs_per_s_peak = {peak} < ts_msgs_per_s_p50 = "
            f"{p50} (peak window slower than the median window)")


def validate_table5_profiler(row, i):
    """Schema-v4 CPU-efficiency columns from the continuous profiler: the
    traced run attributed cycles, and the derived ratios are sane. Absolute
    values are host-dependent, so only structural invariants are gated."""
    where = f"table5 row {i} ({row.get('workload', '?')})"
    cpu = cell_median(row, "cpu_ns_per_msg")
    require(cpu > 0.0,
            f"{where}: cpu_ns_per_msg = {cpu} — the profiled bench run "
            "attributed no busy time (is the profiler wired into the "
            "traced bench config?)")
    share = cell_median(row, "lock_wait_share")
    # A ratio, not a fraction: the numerator is process-wide named-mutex
    # wait time, which includes threads outside the region-instrumented set
    # (e.g. simulated-device workers contending on the CPU heap mutex), so
    # values above 1 are legitimate on contended runs. Only sign is gated.
    require(share >= 0.0, f"{where}: lock_wait_share = {share} is negative")


VALIDATORS = {
    "fig8": validate_fig8,
    "fig12": validate_fig12,
    "table5": validate_table5,
}


def validate(doc):
    validate_structure(doc)
    VALIDATORS[doc["bench"]](doc)


# --- entry points -----------------------------------------------------------

def check_files(paths):
    ok = True
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
            validate(doc)
            print(f"run_benches: {path}: OK "
                  f"(bench={doc['bench']}, mode={doc['mode']}, "
                  f"repeats={doc['repeats']}, rows={len(doc['rows'])})")
        except (OSError, json.JSONDecodeError, ValidationError) as e:
            print(f"run_benches: {path}: FAIL: {e}", file=sys.stderr)
            ok = False
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--smoke", action="store_true",
                    help="reduced-size pinned config (CI), 1 repeat default")
    ap.add_argument("--check", nargs="+", metavar="FILE",
                    help="revalidate existing summary files; run nothing")
    ap.add_argument("--repeats", type=int, default=None,
                    help="repeats per bench (default: 3 full, 1 smoke)")
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"),
                    help="CMake build directory (default: <repo>/build)")
    ap.add_argument("--out-dir", default=REPO_ROOT,
                    help="where BENCH_<name>.json summaries are written "
                         "(default: repo root)")
    ap.add_argument("--benches", default=",".join(BENCHES),
                    help=f"comma-separated subset of: {','.join(BENCHES)}")
    args = ap.parse_args()

    if args.check:
        sys.exit(check_files(args.check))

    names = [n for n in args.benches.split(",") if n]
    for n in names:
        if n not in BENCHES:
            fail(f"unknown bench '{n}' (choose from {','.join(BENCHES)})")
    mode = "smoke" if args.smoke else "full"
    repeats = args.repeats if args.repeats else (1 if args.smoke else 3)
    if repeats < 1:
        fail("--repeats must be >= 1")

    written = []
    for name in names:
        try:
            doc = run_bench(name, args.build_dir, mode, repeats)
            validate(doc)
        except ValidationError as e:
            fail(f"{name}: {e}")
        out = os.path.join(args.out_dir, f"BENCH_{name}.json")
        with open(out, "w") as f:
            json.dump(doc, f, indent=1)
            f.write("\n")
        written.append(out)
        print(f"run_benches: wrote {out}")

    # Re-read and re-validate what landed on disk, so the emit and check
    # paths cannot drift apart.
    sys.exit(check_files(written))


if __name__ == "__main__":
    main()
