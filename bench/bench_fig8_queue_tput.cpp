// Figure 8: producer/consumer queue bandwidth vs message size — Gravel's
// slotted queue against the CPU-only SPSC and MPMC baselines, with the
// 56 Gb/s (7 GB/s) network-bandwidth reference line.
//
// These are real wall-clock measurements of the real concurrent data
// structures, in the paper's thread configuration (Gravel: 1 producer +
// 4 consumers; MPMC: 2+2; SPSC: 1+1). On a single-core host the absolute
// numbers are scheduling-bound; the cache-line accounting that drives the
// paper's small-message gap (padded cells vs packed rows) is also printed,
// since it is host-independent.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "common/atomic.hpp"
#include "common/cacheline.hpp"
#include "common/table.hpp"
#include "obs/profiler.hpp"
#include "queue/gravel_queue.hpp"
#include "queue/mpmc_queue.hpp"
#include "queue/spsc_queue.hpp"

namespace {
using namespace gravel;

/// Seconds each queue variant is hammered per message size. The bench
/// harness's smoke profile shrinks it via GRAVEL_BENCH_RUN_SECONDS so the
/// CI job measures the real structures without the full-length run.
double runSeconds() {
  static const double s = [] {
    if (const char* v = std::getenv("GRAVEL_BENCH_RUN_SECONDS")) {
      const double parsed = std::atof(v);
      if (parsed > 0) return parsed;
    }
    return 0.20;
  }();
  return s;
}

/// Defeats dead-code elimination of consumer reads.
void benchmarkSink(std::uint64_t v) {
  static std::atomic<std::uint64_t> sink{0};
  sink.fetch_add(v, std::memory_order_relaxed);
}

double measureGravel(std::size_t msgBytes, obs::Profiler* prof = nullptr) {
  const std::uint32_t rows = std::uint32_t(std::max<std::size_t>(1, msgBytes / 8));
  const std::uint32_t lanes = 256;
  GravelQueue q(GravelQueueConfig{1 << 20, lanes, rows});
  std::atomic<bool> stopped{false};
  std::atomic<std::uint64_t> consumedSlots{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      GravelQueue::SlotRef r;
      std::uint64_t sink = 0;
      while (q.acquireRead(r, stopped)) {
        for (std::uint32_t row = 0; row < rows; ++row)
          for (std::uint32_t l = 0; l < r.count; ++l)
            sink += q.wordAt(r, row, l);
        q.release(r);
        consumedSlots.fetch_add(1, std::memory_order_relaxed);
      }
      benchmarkSink(sink);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t producedSlots = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < runSeconds()) {
    // One region per produced slot: the heaviest plausible instrumentation
    // cadence (every slot, not every batch), so gravel_gbs_prof bounds the
    // profiler's worst-case throughput cost from above.
    obs::ScopedRegion slotRegion(prof, obs::Region::kBenchSlot);
    auto w = q.acquireWrite(lanes);
    for (std::uint32_t row = 0; row < rows; ++row)
      for (std::uint32_t l = 0; l < lanes; ++l)
        q.wordAt(w, row, l) = row + l;
    q.publish(w);
    ++producedSlots;
  }
  stopped.store(true);
  for (auto& t : consumers) t.join();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return double(producedSlots) * lanes * msgBytes / dt / 1e9;
}

/// Same measurement with the continuous profiler enabled (region timer on
/// every produced slot + lock-contention accounting armed process-wide).
/// The gravel_gbs / gravel_gbs_prof pair is the overhead evidence for
/// DESIGN.md section 15: enabling profiling must stay within a few percent.
double measureGravelProfiled(std::size_t msgBytes) {
  obs::ProfilerConfig cfg;
  cfg.enabled = true;
  obs::Profiler prof(cfg);
  const bool lockprofWas = lockprof::enabled();
  lockprof::setEnabled(true);
  const double gbs = measureGravel(msgBytes, &prof);
  lockprof::setEnabled(lockprofWas);
  return gbs;
}

double measureSpsc(std::size_t msgBytes) {
  SpscQueue q(1 << 20, msgBytes);
  std::atomic<bool> stopped{false};
  std::vector<std::byte> msg(msgBytes, std::byte{7});
  std::thread consumer([&] {
    std::vector<std::byte> out(msgBytes);
    while (q.pop(out.data(), stopped)) {
    }
  });
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < runSeconds()) {
    q.push(msg.data());
    ++sent;
  }
  stopped.store(true);
  consumer.join();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return double(sent) * msgBytes / dt / 1e9;
}

double measureMpmc(std::size_t msgBytes) {
  MpmcQueue q(1 << 20, msgBytes);
  std::atomic<bool> stopped{false};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      std::vector<std::byte> out(msgBytes);
      while (q.pop(out.data(), stopped)) {
      }
    });
  }
  std::atomic<std::uint64_t> sent{0};
  std::vector<std::thread> producers;
  std::atomic<bool> produce{true};
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&] {
      std::vector<std::byte> msg(msgBytes, std::byte{7});
      while (produce.load(std::memory_order_relaxed)) {
        q.push(msg.data());
        sent.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(runSeconds()));
  produce.store(false);
  for (auto& t : producers) t.join();
  stopped.store(true);
  for (auto& t : consumers) t.join();
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return double(sent.load()) * msgBytes / dt / 1e9;
}

}  // namespace

int main() {
  using namespace gravel;

  std::printf(
      "==================================================================\n"
      "Producer/consumer queue bandwidth vs message size\n"
      "(paper artifact: Figure 8 — Gravel ~7 GB/s at 32 B; CPU-only SPSC/"
      "MPMC collapse on small messages)\n"
      "==================================================================\n");

  bench::BenchJson json("fig8_queue_tput");
  json.meta("artifact", "Figure 8");
  json.meta("run_seconds", runSeconds());

  TextTable table({"msg bytes", "Gravel GB/s", "profiled GB/s", "SPSC GB/s",
                   "MPMC GB/s", "lines/msg Gravel", "lines/msg padded"});
  for (std::size_t bytes : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u,
                            4096u, 16384u, 65536u}) {
    const double g = measureGravel(bytes);
    const double gp = measureGravelProfiled(bytes);
    const double s = measureSpsc(bytes);
    const double m = measureMpmc(bytes);
    // Cache-line accounting (§4.3): Gravel packs a work-group's messages
    // into shared lines; the CPU designs pay >= 1 padded line per message
    // plus the padded index lines.
    const double gravelLines =
        double(linesFor(bytes * 256)) / 256.0 + 2.0 / 256.0;
    const double paddedLines = double(linesFor(bytes)) + 2.0;
    json.beginRow();
    json.cell("msg_bytes", double(bytes));
    json.cell("gravel_gbs", g);
    // Schema v4: the same queue measured with continuous profiling on —
    // run_benches.py checks the pair stays within noise of each other.
    json.cell("gravel_gbs_prof", gp);
    json.cell("spsc_gbs", s);
    json.cell("mpmc_gbs", m);
    json.cell("gravel_lines_per_msg", gravelLines);
    json.cell("padded_lines_per_msg", paddedLines);
    table.addRow({std::to_string(bytes), TextTable::num(g, 3),
                  TextTable::num(gp, 3), TextTable::num(s, 3),
                  TextTable::num(m, 3), TextTable::num(gravelLines, 3),
                  TextTable::num(paddedLines, 1)});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nnetwork bandwidth reference: 7.00 GB/s (56 Gb/s InfiniBand).\n"
      "paper shape: Gravel leads for small messages because producer/"
      "consumer synchronization is amortized over up to 256 messages and "
      "the row-major slot packs them into shared cache lines (last two "
      "columns), while every padded-queue message touches >= 3 lines.\n");
  return 0;
}
