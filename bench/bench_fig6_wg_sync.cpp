// Figure 6: producer/consumer queue throughput and atomics-per-work-item as
// the work-group grows from one wavefront to four (32-byte messages).
//
// Two kinds of numbers:
//   - measured: a real kernel on the SIMT engine offloads messages through
//     the real queue to the real aggregator; wall-clock on this host is a
//     fiber-interpreted GPU, so absolute GB/s are far below the APU's —
//     the *ratios* and the exact atomic-RMW counts are the reproduction.
//   - modeled: the Table-3 cost model's GPU-side rate for the same counts
//     (the paper's ~7 GB/s at 4 wavefronts).
//
// The work-item-granularity row is the §4.1 comparison point that is "two
// orders of magnitude slower" (0.06 GB/s in the paper).
#include <chrono>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "runtime/cluster.hpp"

namespace {

struct Point {
  double measured_gbps;
  double rmw_per_msg;       // exact, producer+consumer
  double arrivals_per_msg;  // exact collective arrivals per message
  double modeled_gbps;
};

Point runPoint(std::uint32_t wgSize, bool wiLevel, std::uint64_t msgs) {
  using namespace gravel;
  rt::ClusterConfig cc;
  cc.nodes = 1;
  cc.heap_bytes = 8u << 20;
  rt::Cluster cluster(cc);
  auto sink = cluster.alloc<std::uint64_t>(1024);

  auto& node = cluster.node(0);
  node.queue().resetAtomicRmwCount();
  const auto t0 = std::chrono::steady_clock::now();
  if (wiLevel) {
    // Figure 5a/5c: every work-item reserves its own slot with its own
    // fetch-add — no work-group amortization.
    cluster.launchAll(msgs, wgSize, [&](std::uint32_t, simt::WorkItem& wi) {
      auto& q = node.queue();
      auto ref = q.acquireWrite(1, &simt::Device::yieldLane);
      const auto m =
          rt::NetMessage::atomicInc(0, sink.at(wi.globalId() % 1024));
      q.wordAt(ref, 0, 0) = m.cmd;
      q.wordAt(ref, 1, 0) = m.dest;
      q.wordAt(ref, 2, 0) = m.addr;
      q.wordAt(ref, 3, 0) = m.value;
      q.publish(ref);
    });
  } else {
    cluster.launchAll(msgs, wgSize, [&](std::uint32_t, simt::WorkItem& wi) {
      node.shmemInc(wi, 0, sink.at(wi.globalId() % 1024));
    });
  }
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Point p;
  p.measured_gbps = double(msgs) * 32.0 / dt / 1e9;
  p.rmw_per_msg = double(node.queue().atomicRmwCount()) / double(msgs);
  p.arrivals_per_msg =
      double(node.device().stats().collective_arrivals) / double(msgs);

  // Modeled GPU-side production rate for the same counts.
  perf::MachineParams mp;
  const double slots = wiLevel ? double(msgs) : double(msgs) / wgSize;
  const double prodNs = double(msgs) * mp.lane_ns +
                        p.arrivals_per_msg * double(msgs) * mp.arrival_ns +
                        slots * 2.0 * mp.queue_rmw_ns;
  p.modeled_gbps = double(msgs) * 32.0 / prodNs;
  return p;
}

}  // namespace

int main() {
  using namespace gravel;
  using namespace gravel::bench;

  printHeader("Producer/consumer queue throughput vs work-group size",
              "Figure 6 (4 WFs ~3x faster than 1 WF; WI-level ~100x slower)");

  const std::uint64_t msgs = std::uint64_t(benchScale() * (1 << 17));
  TextTable table({"configuration", "measured GB/s", "modeled GB/s",
                   "RMW/msg", "arrivals/msg"});
  Point oneWf{};
  for (std::uint32_t wfs : {1u, 2u, 4u}) {
    const Point p = runPoint(wfs * 64, false, msgs);
    if (wfs == 1) oneWf = p;
    table.addRow({std::to_string(wfs) + " wavefront" + (wfs > 1 ? "s" : ""),
                  TextTable::num(p.measured_gbps, 3),
                  TextTable::num(p.modeled_gbps, 2),
                  TextTable::num(p.rmw_per_msg, 4),
                  TextTable::num(p.arrivals_per_msg, 2)});
    std::fflush(stdout);
  }
  const Point wi = runPoint(256, true, msgs / 8);
  table.addRow({"work-item level", TextTable::num(wi.measured_gbps, 3),
                TextTable::num(wi.modeled_gbps, 3),
                TextTable::num(wi.rmw_per_msg, 2),
                TextTable::num(wi.arrivals_per_msg, 2)});
  table.print(std::cout);

  const Point fourWf = runPoint(256, false, msgs);
  std::printf(
      "\n4-WF / 1-WF modeled ratio: %.2fx (paper ~3x);  WG-level / WI-level "
      "modeled ratio: %.0fx (paper ~100x)\n",
      fourWf.modeled_gbps / oneWf.modeled_gbps,
      fourWf.modeled_gbps / wi.modeled_gbps);
  return 0;
}
