// Ablation (DESIGN.md): how the work-group size — the amortization factor of
// Gravel's §4.1 reservation scheme — propagates from the queue
// microbenchmark (Figure 6) to end-to-end application time.
//
// Each row is a real functional GUPS run at 8 nodes with the given
// work-group size; the modeled time replays its exact counts. The
// per-message reservation cost falls as 1/wg, so end-to-end time improves
// until the network pipeline, not the GPU, is the bottleneck — the
// diminishing-returns point Figure 6 can't show.
#include <cstdio>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace gravel;
  using namespace gravel::bench;

  printHeader("Work-group size ablation on end-to-end GUPS (8 nodes)",
              "extends Figure 6 to application level");

  TextTable table({"wg size", "wavefronts", "arrivals/msg", "RMW/msg",
                   "modeled ms", "vs 256"});
  double base = 0;
  std::vector<std::vector<std::string>> rows;
  for (std::uint32_t wg : {64u, 128u, 256u}) {
    rt::ClusterConfig cc = benchCluster(8);
    rt::Cluster cluster(cc);
    apps::GupsConfig cfg;
    cfg.table_size = 1 << 18;
    cfg.updates_per_node = std::uint64_t(benchScale() * (1 << 18));
    cfg.wg_size = wg;
    const auto report = apps::runGups(cluster, cfg);
    if (!report.validated) {
      std::fprintf(stderr, "GUPS failed validation at wg=%u\n", wg);
      return 1;
    }
    const auto demand = perf::demandFromCluster(cluster);
    perf::SimConfig sc;
    sc.style = perf::Style::kGravel;
    sc.wg_size = wg;
    const double t = perf::simulateApp(sc, demand, 1);
    if (wg == 256) base = t;
    double arrivals = 0, msgs = 0, rmws = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
      arrivals += double(cluster.node(i).device().stats().collective_arrivals);
      rmws += double(cluster.node(i).queue().atomicRmwCount());
    }
    msgs = double(report.stats.opsTotal());
    rows.push_back({std::to_string(wg), std::to_string(wg / 64),
                    TextTable::num(arrivals / msgs, 2),
                    TextTable::num(rmws / msgs, 4), TextTable::num(t * 1e3, 3),
                    ""});
    std::fflush(stdout);
  }
  for (auto& r : rows) {
    const double t = std::atof(r[4].c_str());
    r[5] = TextTable::num(t / (base * 1e3), 2) + "x";
    table.addRow(r);
  }
  table.print(std::cout);
  std::printf(
      "\nthe 1-WF configuration pays ~3x the GPU-side cost per message "
      "(Figure 6) but end-to-end GUPS is network/resolver bound at 8 "
      "nodes, so the application-level gap is smaller — the reason Gravel "
      "runs 4-WF work-groups and stops there.\n");
  return 0;
}
