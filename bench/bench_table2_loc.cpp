// Table 2: lines of code for GUPS under each networking model.
//
// The paper counts real OpenCL/host sources (342 coprocessor, 193
// msg-per-lane & Gravel, 318 coalesced APIs). We count our real, runnable
// example programs in examples/gups_styles/ the same way: non-blank,
// non-comment lines. Absolute counts differ from the paper's (different
// language, runtime and validation code), but the ordering and rough ratios
// are the programmability claim being reproduced.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.hpp"

#ifndef GRAVEL_SOURCE_DIR
#error "GRAVEL_SOURCE_DIR must point at the repository root"
#endif

namespace {

/// Counts non-blank, non-comment lines (// and block comments).
int countLoc(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return -1;
  }
  int loc = 0;
  bool inBlock = false;
  std::string line;
  while (std::getline(in, line)) {
    // Trim whitespace.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const std::string body = line.substr(first);
    if (inBlock) {
      if (body.find("*/") != std::string::npos) inBlock = false;
      continue;
    }
    if (body.rfind("//", 0) == 0) continue;
    if (body.rfind("/*", 0) == 0) {
      if (body.find("*/", 2) == std::string::npos) inBlock = true;
      continue;
    }
    ++loc;
  }
  return loc;
}

}  // namespace

int main() {
  const std::string dir =
      std::string(GRAVEL_SOURCE_DIR) + "/examples/gups_styles/";

  std::printf(
      "==================================================================\n"
      "GUPS lines of code per networking model\n"
      "(paper artifact: Table 2 — coprocessor 342, msg-per-lane & Gravel "
      "193, coalesced APIs 318)\n"
      "==================================================================\n");

  const int gravel = countLoc(dir + "gups_gravel.cpp");
  const int coproc = countLoc(dir + "gups_coprocessor.cpp");
  const int coalesced = countLoc(dir + "gups_coalesced.cpp");
  if (gravel < 0 || coproc < 0 || coalesced < 0) return 1;

  gravel::TextTable table({"model", "LoC (ours)", "LoC (paper)", "ratio vs "
                           "Gravel (ours)", "ratio (paper)"});
  auto ratio = [&](int x) {
    return gravel::TextTable::num(double(x) / gravel, 2);
  };
  table.addRow({"coprocessor", std::to_string(coproc), "342", ratio(coproc),
                "1.77"});
  table.addRow({"msg-per-lane & Gravel", std::to_string(gravel), "193",
                ratio(gravel), "1.00"});
  table.addRow({"coalesced APIs", std::to_string(coalesced), "318",
                ratio(coalesced), "1.65"});
  table.print(std::cout);

  const bool orderingHolds = coproc > coalesced && coalesced > gravel;
  std::printf("\nordering coprocessor > coalesced > Gravel: %s\n",
              orderingHolds ? "holds" : "VIOLATED");
  return orderingHolds ? 0 : 1;
}
