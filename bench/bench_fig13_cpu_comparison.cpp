// Figure 13: Gravel vs CPU-based distributed systems (Grappa for GUPS/PR,
// UPC for mer) — bars for 1 CPU node, 8 CPU nodes, 1 Gravel node, 8 Gravel
// nodes, normalized to 1 CPU node.
//
// CPU numbers come from real functional runs of the Grappa-like delegate
// runtime (src/baselines) timed by the CPU cost model; Gravel numbers from
// functional runs timed by the discrete-event model. Paper shape: Gravel is
// already far ahead at one node (GPU parallelism on data-parallel work) and
// keeps the lead at eight.
#include <cstdio>
#include <iostream>

#include "baselines/cpu_apps.hpp"
#include "common.hpp"

namespace {

struct CpuRun {
  gravel::baselines::CpuAppReport report;
};

CpuRun runCpuWorkload(const std::string& name, std::uint32_t nodes) {
  using namespace gravel;
  const double s = bench::benchScale();
  baselines::CpuClusterConfig cc;
  cc.nodes = nodes;
  cc.threads_per_node = 4;
  cc.heap_words = 1 << 21;
  if (name == "mer") cc.heap_words = 2 * ((1 << 20) / nodes);
  baselines::CpuCluster cluster(cc);
  CpuRun out;
  if (name == "GUPS") {
    apps::GupsConfig cfg;
    cfg.table_size = 1 << 18;
    cfg.updates_per_node = std::uint64_t(s * (2 << 20)) / nodes;
    out.report = baselines::runCpuGups(cluster, cfg);
  } else if (name == "PR-1" || name == "PR-2") {
    graph::Csr g = name == "PR-1"
                       ? graph::bubblesLike(graph::Vertex(s * 60000), 11)
                       : graph::cageLike(graph::Vertex(s * 24000), 19, 12);
    graph::DistGraph dg(std::move(g), nodes);
    apps::PageRankConfig cfg;
    cfg.iterations = name == "PR-1" ? 5 : 3;
    out.report = baselines::runCpuPageRank(cluster, dg, cfg);
  } else if (name == "mer") {
    apps::MerConfig cfg;
    cfg.genome_length = 1 << 18;
    cfg.reads_per_node = std::uint64_t(s * 12000) / nodes;
    cfg.read_length = 100;
    cfg.k = 21;
    cfg.table_slots_per_node = (1 << 20) / nodes;
    out.report = baselines::runCpuMer(cluster, cfg);
  }
  return out;
}

double cpuTime(const gravel::baselines::CpuAppReport& r, std::uint32_t nodes) {
  gravel::perf::MachineParams p;
  const double opsPerNode =
      double(r.stats.ops_local + r.stats.ops_remote) / nodes;
  return gravel::perf::cpuBaselineTime(p, nodes, opsPerNode,
                                       r.stats.remoteFraction(), 32, 65536,
                                       r.rounds);
}

}  // namespace

int main() {
  using namespace gravel;
  using namespace gravel::bench;

  printHeader(
      "Gravel vs CPU-based distributed systems (speedup vs 1 CPU node)",
      "Figure 13 (Grappa for GUPS/PR, UPC for mer)");

  TextTable table({"workload", "1 CPU node", "8 CPU nodes", "1 Gravel node",
                   "8 Gravel nodes", "validated"});
  for (const std::string name : {"GUPS", "PR-1", "PR-2", "mer"}) {
    const CpuRun cpu1 = runCpuWorkload(name, 1);
    const CpuRun cpu8 = runCpuWorkload(name, 8);
    const WorkloadRun g1 = runWorkload(name, 1);
    const WorkloadRun g8 = runWorkload(name, 8);

    const double tCpu1 = cpuTime(cpu1.report, 1);
    const double tCpu8 = cpuTime(cpu8.report, 8);
    const double tG1 = timeRun(g1, perf::Style::kGravel);
    const double tG8 = timeRun(g8, perf::Style::kGravel);
    const bool valid = cpu1.report.validated && cpu8.report.validated &&
                       g1.report.validated && g8.report.validated;
    table.addRow({name, TextTable::num(1.0), TextTable::num(tCpu1 / tCpu8),
                  TextTable::num(tCpu1 / tG1), TextTable::num(tCpu1 / tG8),
                  valid ? "yes" : "NO"});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\npaper shape: Gravel leads even at one node (the GPU fits the "
      "data-parallel inner loops) and the lead persists at eight nodes.\n");
  return 0;
}
