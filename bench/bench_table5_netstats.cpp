// Table 5: network statistics for Gravel at eight nodes — remote access
// frequency and average network-message size, from real instrumentation of
// the functional runs (not modeled).
//
// Paper values are printed alongside. Absolute message sizes differ because
// our inputs are scaled down (a smaller graph drains the aggregator's
// buffers less often), but the ordering — which workloads aggregate well
// and which defeat the aggregator — is the reproduced claim.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "obs/latency.hpp"

int main() {
  using namespace gravel;
  using namespace gravel::bench;

  printHeader("Network statistics at 8 nodes", "Table 5");

  BenchJson json("table5_netstats");
  json.meta("artifact", "Table 5");
  json.meta("nodes", 8.0);
  json.meta("scale", benchScale());

  struct PaperRow {
    double remote;
    double bytes;
  };
  const std::map<std::string, PaperRow> paper{
      {"GUPS", {87.5, 65440}},   {"PR-1", {37.7, 64611}},
      {"PR-2", {16.5, 15700}},   {"SSSP-1", {30.0, 1563}},
      {"SSSP-2", {16.2, 57916}}, {"color-1", {36.7, 27258}},
      {"color-2", {16.5, 9463}}, {"kmeans", {87.5, 5656}},
      {"mer", {87.5, 64822}},
  };

  TextTable table({"workload", "remote %", "paper %", "avg msg B",
                   "paper B", "net msgs", "e2e p99 us", "validated"});
  for (const auto& name : workloadNames()) {
    // Traced: the run stats then carry the latency-attribution quantiles
    // that back the schema-v2 lat_* columns below.
    const WorkloadRun run = runWorkload(name, 8, /*traced=*/true);
    const auto& p = paper.at(name);
    json.beginRow();
    json.cell("workload", name);
    json.cell("remote_pct", 100.0 * run.report.stats.remoteFraction());
    json.cell("paper_remote_pct", p.remote);
    json.cell("avg_msg_bytes", run.report.stats.avg_batch_bytes);
    json.cell("paper_msg_bytes", p.bytes);
    json.cell("net_batches", double(run.report.stats.net_batches));
    json.cell("net_messages", double(run.report.stats.net_messages));
    // Slot-batched routing invariant (locks/slot <= dests/slot), checked by
    // run_benches.py alongside the fig12 cells.
    const double slots =
        double(std::max<std::uint64_t>(1, run.report.stats.agg_slots));
    json.cell("agg_locks_per_slot",
              double(run.report.stats.agg_lock_acquisitions) / slots);
    json.cell("agg_dests_per_slot",
              double(run.report.stats.agg_dests_touched) / slots);
    // Per-stage latency attribution (schema v2): one p50/p99 column pair
    // per pipeline transition plus end-to-end, in nanoseconds.
    json.cell("lat_samples", double(run.report.stats.lat_samples));
    json.cell("lat_e2e_p50_ns", run.report.stats.lat_e2e_p50_ns);
    json.cell("lat_e2e_p99_ns", run.report.stats.lat_e2e_p99_ns);
    for (int t = 0; t < rt::ClusterRunStats::kLatTransitions; ++t) {
      json.cell("lat_p50_ns_" + obs::transitionLabel(t),
                run.report.stats.lat_stage_p50_ns[t]);
      json.cell("lat_p99_ns_" + obs::transitionLabel(t),
                run.report.stats.lat_stage_p99_ns[t]);
    }
    // Serving-oriented time-series columns (schema v3): collection windows
    // taken plus the sustained (median-window) and peak message rates —
    // what the open-loop SLO harness will regress against.
    json.cell("ts_windows", double(run.report.stats.ts_windows));
    json.cell("ts_msgs_per_s_p50", run.report.stats.ts_msgs_per_s_p50);
    json.cell("ts_msgs_per_s_peak", run.report.stats.ts_msgs_per_s_peak);
    // CPU-efficiency columns (schema v4), from the continuous profiler the
    // traced bench config enables: attributed busy nanoseconds per resolved
    // network message, and process-wide named-mutex wait time as a ratio of
    // that busy time. The ratio can exceed 1 — waits are counted on every
    // thread (including uninstrumented simulated-device workers), busy time
    // only on region-instrumented runtime threads.
    const double busyNs = double(run.report.stats.prof_busy_ns);
    json.cell("cpu_ns_per_msg",
              busyNs / double(std::max<std::uint64_t>(
                           1, run.report.stats.net_messages)));
    json.cell("lock_wait_share",
              double(run.report.stats.prof_lock_wait_ns) /
                  std::max(1.0, busyNs));
    json.cell("validated", run.report.validated ? 1.0 : 0.0);
    table.addRow({name,
                  TextTable::num(100.0 * run.report.stats.remoteFraction(), 1),
                  TextTable::num(p.remote, 1),
                  TextTable::num(run.report.stats.avg_batch_bytes, 0),
                  TextTable::num(p.bytes, 0),
                  std::to_string(run.report.stats.net_batches),
                  TextTable::num(run.report.stats.lat_e2e_p99_ns / 1000.0, 1),
                  run.report.validated ? "yes" : "NO"});
    std::fflush(stdout);
  }
  table.print(std::cout);
  std::printf(
      "\nGUPS/kmeans/mer hash uniformly: remote%% = 7/8 = 87.5 exactly. "
      "Graph workloads depend on partition locality; mesh (-1) inputs are "
      "more remote than banded (-2) inputs, as in the paper.\n");
  return 0;
}
