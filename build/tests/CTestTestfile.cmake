# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_queue[1]_include.cmake")
include("/root/repo/build/tests/test_simt[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
