file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_style_comparison.dir/bench_fig15_style_comparison.cpp.o"
  "CMakeFiles/bench_fig15_style_comparison.dir/bench_fig15_style_comparison.cpp.o.d"
  "bench_fig15_style_comparison"
  "bench_fig15_style_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_style_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
