# Empty compiler generated dependencies file for bench_fig14_queue_size.
# This may be replaced when dependencies are built.
