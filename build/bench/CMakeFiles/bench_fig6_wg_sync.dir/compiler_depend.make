# Empty compiler generated dependencies file for bench_fig6_wg_sync.
# This may be replaced when dependencies are built.
