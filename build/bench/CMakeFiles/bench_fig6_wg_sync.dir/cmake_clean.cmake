file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_wg_sync.dir/bench_fig6_wg_sync.cpp.o"
  "CMakeFiles/bench_fig6_wg_sync.dir/bench_fig6_wg_sync.cpp.o.d"
  "bench_fig6_wg_sync"
  "bench_fig6_wg_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_wg_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
