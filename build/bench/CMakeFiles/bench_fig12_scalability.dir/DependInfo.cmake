
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_scalability.cpp" "bench/CMakeFiles/bench_fig12_scalability.dir/bench_fig12_scalability.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_scalability.dir/bench_fig12_scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/gravel_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gravel_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/gravel_models.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gravel_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gravel_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gravel_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gravel_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
