# Empty dependencies file for bench_table5_netstats.
# This may be replaced when dependencies are built.
