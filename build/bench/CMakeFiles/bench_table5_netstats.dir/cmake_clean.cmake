file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_netstats.dir/bench_table5_netstats.cpp.o"
  "CMakeFiles/bench_table5_netstats.dir/bench_table5_netstats.cpp.o.d"
  "bench_table5_netstats"
  "bench_table5_netstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_netstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
