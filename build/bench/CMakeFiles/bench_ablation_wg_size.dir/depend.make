# Empty dependencies file for bench_ablation_wg_size.
# This may be replaced when dependencies are built.
