file(REMOVE_RECURSE
  "CMakeFiles/bench_sec82_diverged.dir/bench_sec82_diverged.cpp.o"
  "CMakeFiles/bench_sec82_diverged.dir/bench_sec82_diverged.cpp.o.d"
  "bench_sec82_diverged"
  "bench_sec82_diverged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec82_diverged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
