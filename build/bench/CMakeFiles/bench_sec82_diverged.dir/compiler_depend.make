# Empty compiler generated dependencies file for bench_sec82_diverged.
# This may be replaced when dependencies are built.
