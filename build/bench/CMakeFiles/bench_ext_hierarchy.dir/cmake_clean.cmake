file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hierarchy.dir/bench_ext_hierarchy.cpp.o"
  "CMakeFiles/bench_ext_hierarchy.dir/bench_ext_hierarchy.cpp.o.d"
  "bench_ext_hierarchy"
  "bench_ext_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
