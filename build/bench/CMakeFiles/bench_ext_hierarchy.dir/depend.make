# Empty dependencies file for bench_ext_hierarchy.
# This may be replaced when dependencies are built.
