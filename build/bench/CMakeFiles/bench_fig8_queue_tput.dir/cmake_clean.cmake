file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_queue_tput.dir/bench_fig8_queue_tput.cpp.o"
  "CMakeFiles/bench_fig8_queue_tput.dir/bench_fig8_queue_tput.cpp.o.d"
  "bench_fig8_queue_tput"
  "bench_fig8_queue_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_queue_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
