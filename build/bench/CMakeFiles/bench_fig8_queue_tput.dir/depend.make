# Empty dependencies file for bench_fig8_queue_tput.
# This may be replaced when dependencies are built.
