file(REMOVE_RECURSE
  "CMakeFiles/gups_coalesced.dir/gups_styles/gups_coalesced.cpp.o"
  "CMakeFiles/gups_coalesced.dir/gups_styles/gups_coalesced.cpp.o.d"
  "gups_coalesced"
  "gups_coalesced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gups_coalesced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
