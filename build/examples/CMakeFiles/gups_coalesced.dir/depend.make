# Empty dependencies file for gups_coalesced.
# This may be replaced when dependencies are built.
