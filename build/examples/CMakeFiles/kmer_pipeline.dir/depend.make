# Empty dependencies file for kmer_pipeline.
# This may be replaced when dependencies are built.
