file(REMOVE_RECURSE
  "CMakeFiles/kmer_pipeline.dir/kmer_pipeline.cpp.o"
  "CMakeFiles/kmer_pipeline.dir/kmer_pipeline.cpp.o.d"
  "kmer_pipeline"
  "kmer_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmer_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
