file(REMOVE_RECURSE
  "CMakeFiles/gups_gravel.dir/gups_styles/gups_gravel.cpp.o"
  "CMakeFiles/gups_gravel.dir/gups_styles/gups_gravel.cpp.o.d"
  "gups_gravel"
  "gups_gravel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gups_gravel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
