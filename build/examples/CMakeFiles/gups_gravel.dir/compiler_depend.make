# Empty compiler generated dependencies file for gups_gravel.
# This may be replaced when dependencies are built.
