file(REMOVE_RECURSE
  "CMakeFiles/gups_coprocessor.dir/gups_styles/gups_coprocessor.cpp.o"
  "CMakeFiles/gups_coprocessor.dir/gups_styles/gups_coprocessor.cpp.o.d"
  "gups_coprocessor"
  "gups_coprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gups_coprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
