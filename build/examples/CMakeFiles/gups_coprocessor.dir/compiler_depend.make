# Empty compiler generated dependencies file for gups_coprocessor.
# This may be replaced when dependencies are built.
