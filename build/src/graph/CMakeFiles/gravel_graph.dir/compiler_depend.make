# Empty compiler generated dependencies file for gravel_graph.
# This may be replaced when dependencies are built.
