file(REMOVE_RECURSE
  "CMakeFiles/gravel_graph.dir/generators.cpp.o"
  "CMakeFiles/gravel_graph.dir/generators.cpp.o.d"
  "libgravel_graph.a"
  "libgravel_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gravel_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
