file(REMOVE_RECURSE
  "libgravel_graph.a"
)
