file(REMOVE_RECURSE
  "libgravel_apps.a"
)
