file(REMOVE_RECURSE
  "CMakeFiles/gravel_apps.dir/color.cpp.o"
  "CMakeFiles/gravel_apps.dir/color.cpp.o.d"
  "CMakeFiles/gravel_apps.dir/gups.cpp.o"
  "CMakeFiles/gravel_apps.dir/gups.cpp.o.d"
  "CMakeFiles/gravel_apps.dir/gups_mod.cpp.o"
  "CMakeFiles/gravel_apps.dir/gups_mod.cpp.o.d"
  "CMakeFiles/gravel_apps.dir/kmeans.cpp.o"
  "CMakeFiles/gravel_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/gravel_apps.dir/mer.cpp.o"
  "CMakeFiles/gravel_apps.dir/mer.cpp.o.d"
  "CMakeFiles/gravel_apps.dir/mer_traverse.cpp.o"
  "CMakeFiles/gravel_apps.dir/mer_traverse.cpp.o.d"
  "CMakeFiles/gravel_apps.dir/pagerank.cpp.o"
  "CMakeFiles/gravel_apps.dir/pagerank.cpp.o.d"
  "CMakeFiles/gravel_apps.dir/sssp.cpp.o"
  "CMakeFiles/gravel_apps.dir/sssp.cpp.o.d"
  "libgravel_apps.a"
  "libgravel_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gravel_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
