# Empty compiler generated dependencies file for gravel_apps.
# This may be replaced when dependencies are built.
