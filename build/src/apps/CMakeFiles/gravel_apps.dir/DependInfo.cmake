
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/color.cpp" "src/apps/CMakeFiles/gravel_apps.dir/color.cpp.o" "gcc" "src/apps/CMakeFiles/gravel_apps.dir/color.cpp.o.d"
  "/root/repo/src/apps/gups.cpp" "src/apps/CMakeFiles/gravel_apps.dir/gups.cpp.o" "gcc" "src/apps/CMakeFiles/gravel_apps.dir/gups.cpp.o.d"
  "/root/repo/src/apps/gups_mod.cpp" "src/apps/CMakeFiles/gravel_apps.dir/gups_mod.cpp.o" "gcc" "src/apps/CMakeFiles/gravel_apps.dir/gups_mod.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/apps/CMakeFiles/gravel_apps.dir/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/gravel_apps.dir/kmeans.cpp.o.d"
  "/root/repo/src/apps/mer.cpp" "src/apps/CMakeFiles/gravel_apps.dir/mer.cpp.o" "gcc" "src/apps/CMakeFiles/gravel_apps.dir/mer.cpp.o.d"
  "/root/repo/src/apps/mer_traverse.cpp" "src/apps/CMakeFiles/gravel_apps.dir/mer_traverse.cpp.o" "gcc" "src/apps/CMakeFiles/gravel_apps.dir/mer_traverse.cpp.o.d"
  "/root/repo/src/apps/pagerank.cpp" "src/apps/CMakeFiles/gravel_apps.dir/pagerank.cpp.o" "gcc" "src/apps/CMakeFiles/gravel_apps.dir/pagerank.cpp.o.d"
  "/root/repo/src/apps/sssp.cpp" "src/apps/CMakeFiles/gravel_apps.dir/sssp.cpp.o" "gcc" "src/apps/CMakeFiles/gravel_apps.dir/sssp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/gravel_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gravel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gravel_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
