file(REMOVE_RECURSE
  "libgravel_runtime.a"
)
