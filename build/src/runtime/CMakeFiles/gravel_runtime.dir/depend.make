# Empty dependencies file for gravel_runtime.
# This may be replaced when dependencies are built.
