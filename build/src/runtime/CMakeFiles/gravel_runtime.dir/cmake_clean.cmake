file(REMOVE_RECURSE
  "CMakeFiles/gravel_runtime.dir/cluster.cpp.o"
  "CMakeFiles/gravel_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/gravel_runtime.dir/node_runtime.cpp.o"
  "CMakeFiles/gravel_runtime.dir/node_runtime.cpp.o.d"
  "libgravel_runtime.a"
  "libgravel_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gravel_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
