file(REMOVE_RECURSE
  "libgravel_models.a"
)
