# Empty compiler generated dependencies file for gravel_models.
# This may be replaced when dependencies are built.
