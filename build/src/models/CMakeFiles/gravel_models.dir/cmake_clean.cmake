file(REMOVE_RECURSE
  "CMakeFiles/gravel_models.dir/model.cpp.o"
  "CMakeFiles/gravel_models.dir/model.cpp.o.d"
  "libgravel_models.a"
  "libgravel_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gravel_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
