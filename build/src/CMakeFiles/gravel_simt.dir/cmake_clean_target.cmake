file(REMOVE_RECURSE
  "libgravel_simt.a"
)
