file(REMOVE_RECURSE
  "CMakeFiles/gravel_simt.dir/simt/context.S.o"
  "CMakeFiles/gravel_simt.dir/simt/device.cpp.o"
  "CMakeFiles/gravel_simt.dir/simt/device.cpp.o.d"
  "CMakeFiles/gravel_simt.dir/simt/fiber.cpp.o"
  "CMakeFiles/gravel_simt.dir/simt/fiber.cpp.o.d"
  "CMakeFiles/gravel_simt.dir/simt/workgroup.cpp.o"
  "CMakeFiles/gravel_simt.dir/simt/workgroup.cpp.o.d"
  "libgravel_simt.a"
  "libgravel_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/gravel_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
