# Empty compiler generated dependencies file for gravel_simt.
# This may be replaced when dependencies are built.
