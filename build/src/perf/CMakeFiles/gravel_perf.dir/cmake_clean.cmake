file(REMOVE_RECURSE
  "CMakeFiles/gravel_perf.dir/netsim.cpp.o"
  "CMakeFiles/gravel_perf.dir/netsim.cpp.o.d"
  "libgravel_perf.a"
  "libgravel_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gravel_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
