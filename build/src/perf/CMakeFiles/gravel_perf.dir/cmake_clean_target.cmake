file(REMOVE_RECURSE
  "libgravel_perf.a"
)
