# Empty compiler generated dependencies file for gravel_perf.
# This may be replaced when dependencies are built.
