file(REMOVE_RECURSE
  "libgravel_baselines.a"
)
