# Empty compiler generated dependencies file for gravel_baselines.
# This may be replaced when dependencies are built.
