file(REMOVE_RECURSE
  "CMakeFiles/gravel_baselines.dir/cpu_agg.cpp.o"
  "CMakeFiles/gravel_baselines.dir/cpu_agg.cpp.o.d"
  "CMakeFiles/gravel_baselines.dir/cpu_apps.cpp.o"
  "CMakeFiles/gravel_baselines.dir/cpu_apps.cpp.o.d"
  "libgravel_baselines.a"
  "libgravel_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gravel_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
