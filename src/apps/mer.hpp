// Meraculous phase 1 (paper §6): distributed de Bruijn hash-table
// construction for genome assembly. Reads are chopped into k-mers; each
// k-mer (with its left/right extension bases) is sent to the node owning its
// hash bucket, where an active-message handler inserts it into an
// open-addressing table and accumulates extension counts. The paper's
// human-chr14 read set is proprietary-scale input; we generate synthetic
// reads from a random reference genome, which exercises the identical
// hash-distribute-insert path (the network behaviour depends only on k-mer
// hashing, not on biological content).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "runtime/cluster.hpp"

namespace gravel::apps {

struct MerConfig {
  std::uint32_t k = 21;                ///< k-mer length (fits 2k<=64 bits)
  std::uint64_t genome_length = 1 << 16;
  std::uint64_t reads_per_node = 512;
  std::uint32_t read_length = 100;
  std::uint64_t table_slots_per_node = 1 << 15;  ///< open-addressing capacity
  std::uint64_t seed = 9;
  std::uint32_t wg_size = 0;  ///< 0 = device max
};

/// A k-mer occurrence: packed code plus left/right extension bases (0..3,
/// or 4 when the k-mer sits at a read boundary).
struct KmerOccurrence {
  std::uint64_t code;
  std::uint8_t left;
  std::uint8_t right;
};

/// Deterministic synthetic read set for one node, and the k-mer stream it
/// yields; shared with the serial validator.
std::vector<KmerOccurrence> extractKmers(const MerConfig& cfg,
                                         std::uint32_t node);

struct MerResult {
  AppReport report;
  std::uint64_t distinct_kmers = 0;
  std::uint64_t total_occurrences = 0;
  double max_load_factor = 0;
  // Table location, for phase 2 (mer_traverse.hpp).
  rt::SymAddr<std::uint64_t> keys{};
  rt::SymAddr<std::uint64_t> vals{};
  std::uint64_t slots = 0;
};

MerResult runMer(rt::Cluster& cluster, const MerConfig& cfg);

}  // namespace gravel::apps
