#include "apps/mer.hpp"

#include <map>

#include "common/error.hpp"

namespace gravel::apps {

namespace {
/// Two-input mix for (stream, position) style keys.
std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b * 0x9e3779b97f4a7c15ULL));
}
}  // namespace

std::vector<KmerOccurrence> extractKmers(const MerConfig& cfg,
                                         std::uint32_t node) {
  GRAVEL_CHECK_MSG(cfg.k >= 4 && cfg.k <= 31, "k must be in [4, 31]");
  GRAVEL_CHECK_MSG(cfg.read_length > cfg.k, "reads must exceed k");
  std::vector<KmerOccurrence> out;
  out.reserve(cfg.reads_per_node * (cfg.read_length - cfg.k + 1));
  std::vector<std::uint8_t> read(cfg.read_length);
  for (std::uint64_t r = 0; r < cfg.reads_per_node; ++r) {
    const std::uint64_t start =
        mix2(cfg.seed ^ (std::uint64_t(node) << 32), r) %
        (cfg.genome_length - cfg.read_length);
    for (std::uint32_t i = 0; i < cfg.read_length; ++i) {
      std::uint8_t base = std::uint8_t(mix2(cfg.seed, start + i) % 4);
      // ~0.5% sequencing-error rate, deterministic per (node, read, pos):
      // error k-mers become low-count table entries, exactly the noise the
      // Meraculous pipeline's count filter exists for.
      if (mix2(cfg.seed ^ 0xE44, (std::uint64_t(node) << 40) ^ (r << 10) ^ i) %
              200 ==
          0)
        base = (base + 1) % 4;
      read[i] = base;
    }
    for (std::uint32_t w = 0; w + cfg.k <= cfg.read_length; ++w) {
      std::uint64_t code = 0;
      for (std::uint32_t i = 0; i < cfg.k; ++i)
        code = (code << 2) | read[w + i];
      KmerOccurrence occ;
      occ.code = code;
      occ.left = w == 0 ? 4 : read[w - 1];
      occ.right = w + cfg.k == cfg.read_length ? 4 : read[w + cfg.k];
      out.push_back(occ);
    }
  }
  return out;
}

MerResult runMer(rt::Cluster& cluster, const MerConfig& cfg) {
  const std::uint32_t nodes = cluster.nodes();
  const std::uint64_t slots = cfg.table_slots_per_node;

  // Open-addressing table: two words per slot — key (code+1; 0 = empty) and
  // packed extension counts (left A/C/G/T in bytes 0..3, right in 4..7,
  // saturating at 255).
  auto keys = cluster.alloc<std::uint64_t>(slots);
  auto vals = cluster.alloc<std::uint64_t>(slots);
  auto dropped = cluster.alloc<std::uint64_t>(1);  ///< table-full events

  const std::uint32_t insert = cluster.registerHandler(
      [keys, vals, dropped, slots](rt::AmContext& ctx,
                                   std::uint64_t code, std::uint64_t ext) {
        rt::SymmetricHeap& heap = ctx.heap();
        const std::uint64_t key = code + 1;
        std::uint64_t probe = mix64(code) % slots;
        for (std::uint64_t tries = 0; tries < slots; ++tries) {
          const std::uint64_t cur = heap.loadU64(keys.at(probe));
          if (cur == 0) heap.storeU64(keys.at(probe), key);
          if (cur == 0 || cur == key) {
            std::uint64_t counts = heap.loadU64(vals.at(probe));
            const std::uint8_t left = ext & 0xff;
            const std::uint8_t right = (ext >> 8) & 0xff;
            auto bump = [&counts](std::uint32_t byte) {
              const std::uint64_t shift = byte * 8;
              if (((counts >> shift) & 0xff) != 0xff)
                counts += std::uint64_t(1) << shift;
            };
            if (left < 4) bump(left);
            if (right < 4) bump(4 + right);
            heap.storeU64(vals.at(probe), counts);
            return;
          }
          probe = (probe + 1) % slots;
        }
        heap.fetchAddU64(dropped.at(0), 1);
      });

  // Host-side k-mer extraction (the paper's reads live on each node's host
  // before phase 1 ships them GPU-side).
  std::vector<std::vector<KmerOccurrence>> streams(nodes);
  std::vector<std::uint64_t> grids(nodes);
  for (std::uint32_t nd = 0; nd < nodes; ++nd) {
    streams[nd] = extractKmers(cfg, nd);
    grids[nd] = streams[nd].size();
  }

  const std::uint32_t wg =
      cfg.wg_size ? cfg.wg_size : cluster.config().device.max_wg_size;

  cluster.resetStats();
  cluster.launchAll(grids, wg, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    const KmerOccurrence& occ = streams[nodeId][wi.globalId()];
    const std::uint32_t owner = std::uint32_t(mix64(occ.code) % nodes);
    cluster.node(nodeId).shmemAm(
        wi, owner, insert, occ.code,
        std::uint64_t(occ.left) | (std::uint64_t(occ.right) << 8));
  });

  MerResult result;
  result.report.name = "mer";
  result.report.stats = cluster.runStats();
  result.report.iterations = 1;
  result.keys = keys;
  result.vals = vals;
  result.slots = slots;

  // Serial reference: same streams into a std::map, same saturation rule.
  std::map<std::uint64_t, std::uint64_t> expected;  // code -> packed counts
  std::uint64_t occurrences = 0;
  for (std::uint32_t nd = 0; nd < nodes; ++nd) {
    for (const KmerOccurrence& occ : streams[nd]) {
      ++occurrences;
      std::uint64_t& counts = expected[occ.code];
      auto bump = [&counts](std::uint32_t byte) {
        const std::uint64_t shift = byte * 8;
        if (((counts >> shift) & 0xff) != 0xff)
          counts += std::uint64_t(1) << shift;
      };
      if (occ.left < 4) bump(occ.left);
      if (occ.right < 4) bump(4 + occ.right);
    }
  }
  result.total_occurrences = occurrences;
  result.report.work_units = double(occurrences);

  // Sweep the distributed table: exactly the expected key set, with equal
  // counts, and nothing dropped.
  bool ok = cluster.node(0).heap().loadU64(dropped.at(0)) == 0;
  std::uint64_t found = 0;
  double maxLoad = 0;
  for (std::uint32_t nd = 0; nd < nodes && ok; ++nd) {
    auto& heap = cluster.node(nd).heap();
    std::uint64_t used = 0;
    for (std::uint64_t s = 0; s < slots; ++s) {
      const std::uint64_t key = heap.loadU64(keys.at(s));
      if (key == 0) continue;
      ++used;
      ++found;
      const auto it = expected.find(key - 1);
      if (it == expected.end() || it->second != heap.loadU64(vals.at(s)) ||
          mix64(key - 1) % nodes != nd) {
        ok = false;
        break;
      }
    }
    maxLoad = std::max(maxLoad, double(used) / double(slots));
  }
  result.distinct_kmers = found;
  result.max_load_factor = maxLoad;
  result.report.validated = ok && found == expected.size();
  return result;
}

}  // namespace gravel::apps
