// GUPS (giga-updates per second), the HPCC RandomAccess micro-benchmark the
// paper uses throughout (§3, Table 4: ~180M updates): a distributed table is
// atomically incremented at random offsets. Every update is a fine-grain
// unpredictable message — the adversarial case for GPU networking.
#pragma once

#include <cstdint>

#include "apps/app.hpp"
#include "runtime/cluster.hpp"

namespace gravel::apps {

struct GupsConfig {
  std::uint64_t table_size = 1 << 16;      ///< total elements, all nodes
  std::uint64_t updates_per_node = 1 << 14;
  std::uint32_t wg_size = 0;  ///< 0 = device max
  std::uint64_t seed = 1;
};

/// Deterministic update target of update `u` issued by `node`: a global
/// table index. Shared by the kernel and the serial validator.
inline std::uint64_t gupsTarget(const GupsConfig& cfg, std::uint32_t node,
                                std::uint64_t u) {
  return mix64(cfg.seed ^ (std::uint64_t(node) << 40) ^ u) % cfg.table_size;
}

/// Runs GUPS on the cluster (the message-per-lane/Gravel pseudo-code of
/// Figure 4b: one shmem_inc per work-item) and verifies every table cell
/// against the serial expectation.
AppReport runGups(rt::Cluster& cluster, const GupsConfig& cfg);

}  // namespace gravel::apps
