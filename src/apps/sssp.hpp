// Single-source shortest paths (paper §6): frontier-driven Bellman-Ford
// relaxation. Edge relaxations travel as active messages — the handler
// compares-and-updates the distance at the owner and marks the vertex
// pending, which is exactly the "atomic operations serialized through the
// network thread" usage the paper describes (§6, §7.1).
#pragma once

#include <vector>

#include "apps/app.hpp"
#include "graph/dist.hpp"
#include "runtime/cluster.hpp"

namespace gravel::apps {

struct SsspConfig {
  graph::Vertex source = 0;
  std::uint32_t wg_size = 0;       ///< 0 = device max
  std::uint64_t max_weight = 15;   ///< edgeWeight() range
  std::uint64_t max_iterations = 1u << 20;  ///< safety valve
};

inline constexpr std::uint64_t kSsspInf = ~std::uint64_t{0} >> 2;

struct SsspResult {
  AppReport report;
  std::vector<std::uint64_t> dist;  ///< indexed by global vertex id
};

SsspResult runSssp(rt::Cluster& cluster, const graph::DistGraph& dg,
                   const SsspConfig& cfg);

/// Serial Dijkstra with the same deterministic weights.
std::vector<std::uint64_t> serialSssp(const graph::Csr& g,
                                      graph::Vertex source,
                                      std::uint64_t maxWeight);

}  // namespace gravel::apps
