#include "apps/sssp.hpp"

#include <queue>

#include "graph/generators.hpp"

namespace gravel::apps {

using graph::Vertex;

std::vector<std::uint64_t> serialSssp(const graph::Csr& g, Vertex source,
                                      std::uint64_t maxWeight) {
  std::vector<std::uint64_t> dist(g.vertexCount(), kSsspInf);
  using Item = std::pair<std::uint64_t, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0;
  pq.push({0, source});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (Vertex w : g.neighbors(v)) {
      const std::uint64_t cand = d + graph::edgeWeight(v, w, maxWeight);
      if (cand < dist[w]) {
        dist[w] = cand;
        pq.push({cand, w});
      }
    }
  }
  return dist;
}

SsspResult runSssp(rt::Cluster& cluster, const graph::DistGraph& dg,
                   const SsspConfig& cfg) {
  const std::uint32_t nodes = cluster.nodes();
  const graph::Csr& g = dg.graph();
  const auto& vp = dg.vertices();

  auto dist = cluster.alloc<std::uint64_t>(vp.perNode());
  auto active = cluster.alloc<std::uint64_t>(vp.perNode());
  auto pending = cluster.alloc<std::uint64_t>(vp.perNode());

  // Relax handler, run at the owner of the target vertex: classic
  // compare-and-update plus frontier marking. The network thread serializes
  // handlers, so plain load/store is race-free against other relaxations;
  // the local GPU only reads dist between launches (after quiet()).
  const std::uint32_t relax = cluster.registerHandler(
      [dist, pending](rt::AmContext& ctx, std::uint64_t local,
                      std::uint64_t cand) {
        if (cand < ctx.heap().loadU64(dist.at(local))) {
          ctx.heap().storeU64(dist.at(local), cand);
          ctx.heap().storeU64(pending.at(local), 1);
        }
      });

  for (std::uint32_t nd = 0; nd < nodes; ++nd) {
    auto& heap = cluster.node(nd).heap();
    for (std::uint64_t l = 0; l < vp.sizeOf(nd); ++l) {
      heap.storeU64(dist.at(l), kSsspInf);
      heap.storeU64(active.at(l), 0);
      heap.storeU64(pending.at(l), 0);
    }
  }
  cluster.node(vp.owner(cfg.source))
      .heap()
      .storeU64(dist.at(vp.localIndex(cfg.source)), 0);
  cluster.node(vp.owner(cfg.source))
      .heap()
      .storeU64(active.at(vp.localIndex(cfg.source)), 1);

  const std::uint32_t wg =
      cfg.wg_size ? cfg.wg_size : cluster.config().device.max_wg_size;
  std::vector<std::uint64_t> grids(nodes);
  for (std::uint32_t nd = 0; nd < nodes; ++nd) grids[nd] = vp.sizeOf(nd);

  cluster.resetStats();
  double relaxations = 0;
  std::uint64_t iterations = 0;
  for (; iterations < cfg.max_iterations; ++iterations) {
    // Relax the frontier: every local vertex participates (software
    // predication); only frontier vertices send.
    cluster.launchAll(grids, wg, [&](std::uint32_t nodeId,
                                     simt::WorkItem& wi) {
      auto& self = cluster.node(nodeId);
      const auto v = Vertex(vp.globalIndex(nodeId, wi.globalId()));
      const bool onFrontier =
          self.heap().loadU64(active.at(wi.globalId())) != 0;
      const std::uint64_t deg = onFrontier ? g.degree(v) : 0;
      const std::uint64_t d = self.heap().loadU64(dist.at(wi.globalId()));
      const std::uint64_t loops = wi.wgReduceMax(deg);
      for (std::uint64_t i = 0; i < loops; ++i) {
        const bool sends = i < deg;
        Vertex w = 0;
        std::uint64_t cand = 0;
        if (sends) {
          w = g.neighbors(v)[i];
          cand = d + graph::edgeWeight(v, w, cfg.max_weight);
        } else {
          wi.device().stats().predication_overhead_ops += 1;
        }
        self.shmemAm(wi, vp.owner(w), relax, vp.localIndex(w), cand, sends);
      }
    });

    // Host frontier management: promote pending -> active; stop when the
    // cluster-wide frontier is empty.
    std::uint64_t frontier = 0;
    for (std::uint32_t nd = 0; nd < nodes; ++nd) {
      auto& heap = cluster.node(nd).heap();
      for (std::uint64_t l = 0; l < vp.sizeOf(nd); ++l) {
        const std::uint64_t p = heap.loadU64(pending.at(l));
        heap.storeU64(active.at(l), p);
        heap.storeU64(pending.at(l), 0);
        frontier += p;
      }
    }
    relaxations += frontier;
    if (frontier == 0) break;
  }

  SsspResult result;
  result.report.name = "SSSP";
  result.report.stats = cluster.runStats();
  result.report.work_units = relaxations;
  result.report.iterations = iterations + 1;

  result.dist.resize(g.vertexCount());
  for (Vertex v = 0; v < g.vertexCount(); ++v)
    result.dist[v] =
        cluster.node(vp.owner(v)).heap().loadU64(dist.at(vp.localIndex(v)));

  const auto expected = serialSssp(g, cfg.source, cfg.max_weight);
  result.report.validated = result.dist == expected;
  return result;
}

}  // namespace gravel::apps
