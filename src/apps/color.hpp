// Greedy distributed graph coloring (paper §6): Jones–Plassmann with random
// priorities. A vertex colors itself once all higher-priority neighbors are
// colored, picking the smallest color unused among colored neighbors; newly
// assigned colors travel to neighbors as PUTs into per-edge inbox slots
// (Table 5: color uses non-atomic operations exclusively).
#pragma once

#include <vector>

#include "apps/app.hpp"
#include "graph/dist.hpp"
#include "runtime/cluster.hpp"

namespace gravel::apps {

struct ColorConfig {
  std::uint32_t wg_size = 0;  ///< 0 = device max
  std::uint64_t seed = 7;     ///< priority hash seed
  std::uint64_t max_rounds = 1u << 20;
};

inline constexpr std::uint64_t kUncolored = ~std::uint64_t{0};

struct ColorResult {
  AppReport report;
  std::vector<std::uint64_t> colors;  ///< indexed by global vertex id
  std::uint64_t palette = 0;          ///< number of distinct colors used
};

ColorResult runColor(rt::Cluster& cluster, const graph::DistGraph& dg,
                     const ColorConfig& cfg);

/// Checks that `colors` is a proper coloring of `g`.
bool isProperColoring(const graph::Csr& g,
                      const std::vector<std::uint64_t>& colors);

}  // namespace gravel::apps
