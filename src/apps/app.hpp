// Shared application plumbing: every paper workload (§6, Table 4) reports
// the same structure — functional statistics for the cost model plus an
// app-defined work measure — and bit-cast helpers for carrying doubles over
// the 64-bit PGAS word.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "runtime/cluster_stats.hpp"

namespace gravel::apps {

/// Result of one functional run of a workload on a cluster.
struct AppReport {
  std::string name;
  rt::ClusterRunStats stats;  ///< message/operation counts for src/perf
  double work_units = 0;      ///< app-defined: updates, edge-messages, ...
  std::uint64_t iterations = 0;
  bool validated = false;  ///< set by the app's built-in verifier
};

inline std::uint64_t doubleBits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(d));
  return u;
}
inline double bitsDouble(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

/// 64-bit mix (splitmix64 finalizer) used wherever an app needs a
/// deterministic hash that serial validators can reproduce.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace gravel::apps
