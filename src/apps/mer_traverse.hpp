// Meraculous phase 2 — distributed de Bruijn traversal (paper §6: "We
// evaluate phase 1 and leave phase 2, which has significant branch
// divergence, for future work"). This is that future work, built on the
// runtime's active-message *chaining*: a contig walk hops from k-mer owner
// to k-mer owner as a chain of AMs, each handler looking up the local table
// slot and forwarding the walk to the next k-mer's home node.
//
// Contig model (the Meraculous UU-graph, simplified to stay locally
// classifiable — the same rule drives the serial validator):
//   - a side of a k-mer is *unique* when exactly one extension base has a
//     count >= min_count (errors stay below it);
//   - a k-mer is UU when both sides are unique;
//   - a contig starts at a k-mer that is right-extendable but not
//     left-walkable (unique right, non-unique left: read/genome starts and
//     branch points), and extends right through UU k-mers along unique
//     right extensions until a missing or non-UU k-mer terminates it.
#pragma once

#include "apps/mer.hpp"

namespace gravel::apps {

struct MerTraverseConfig {
  std::uint32_t min_count = 2;  ///< error-filter threshold on ext counts
  std::uint32_t wg_size = 0;    ///< 0 = device max
};

struct MerTraverseResult {
  AppReport report;
  std::uint64_t contigs = 0;        ///< walks completed
  std::uint64_t contig_kmers = 0;   ///< UU k-mers covered by walks
  std::uint64_t longest_contig = 0; ///< in k-mers
};

/// Runs phase 2 over a phase-1 table (`runMer` result on the same cluster
/// with the same MerConfig). Seeds are found by a GPU kernel scanning the
/// local table; walks proceed as active-message chains. Validates contig
/// count / coverage / longest length against a serial traversal of the same
/// k-mer multiset.
MerTraverseResult runMerTraverse(rt::Cluster& cluster, const MerConfig& phase1,
                                 const MerResult& table,
                                 const MerTraverseConfig& cfg = {});

}  // namespace gravel::apps
