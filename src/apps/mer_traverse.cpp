#include "apps/mer_traverse.hpp"

#include <map>
#include <memory>

#include "common/error.hpp"

namespace gravel::apps {

namespace {

/// Decodes one side of the packed extension counts (left = bytes 0..3,
/// right = bytes 4..7). Returns the base index when exactly one base
/// reaches min_count, or -1.
int uniqueSide(std::uint64_t counts, bool right, std::uint32_t minCount) {
  int found = -1;
  for (int b = 0; b < 4; ++b) {
    const std::uint64_t c = (counts >> ((right ? 4 + b : b) * 8)) & 0xff;
    if (c >= minCount) {
      if (found >= 0) return -1;  // second strong base: not unique
      found = b;
    }
  }
  return found;
}

bool isUU(std::uint64_t counts, std::uint32_t minCount) {
  return uniqueSide(counts, false, minCount) >= 0 &&
         uniqueSide(counts, true, minCount) >= 0;
}

std::uint64_t shiftRight(std::uint64_t code, int base, std::uint32_t k) {
  const std::uint64_t mask = (std::uint64_t(1) << (2 * k)) - 1;
  return ((code << 2) | std::uint64_t(base)) & mask;
}

}  // namespace

MerTraverseResult runMerTraverse(rt::Cluster& cluster, const MerConfig& phase1,
                                 const MerResult& table,
                                 const MerTraverseConfig& cfg) {
  GRAVEL_CHECK_MSG(table.slots > 0, "phase-1 table required");
  const std::uint32_t nodes = cluster.nodes();
  const std::uint64_t slots = table.slots;
  const auto keys = table.keys;
  const auto vals = table.vals;
  const std::uint32_t k = phase1.k;
  const std::uint32_t minCount = cfg.min_count;
  const std::uint64_t lenCap = slots;  // safety valve against cycles

  // Per-node accumulators: contig count, covered k-mers, longest contig.
  auto contigs = cluster.alloc<std::uint64_t>(1);
  auto covered = cluster.alloc<std::uint64_t>(1);
  auto longest = cluster.alloc<std::uint64_t>(1);

  // Local table probe, shared by the walk handler.
  const auto lookup = [keys, vals, slots](rt::SymmetricHeap& heap,
                                          std::uint64_t code,
                                          std::uint64_t& countsOut) {
    std::uint64_t probe = mix64(code) % slots;
    for (std::uint64_t tries = 0; tries < slots; ++tries) {
      const std::uint64_t cur = heap.loadU64(keys.at(probe));
      if (cur == 0) return false;
      if (cur == code + 1) {
        countsOut = heap.loadU64(vals.at(probe));
        return true;
      }
      probe = (probe + 1) % slots;
    }
    return false;
  };

  // The walk step: arg0 = k-mer the walk arrived at (owned by this node),
  // arg1 = UU k-mers confirmed so far. Handlers are serialized per node, so
  // the accumulator updates are plain loads/stores. The handler forwards
  // the walk to itself at the next owner, so its own id travels through
  // shared state (the id is unknown until registration returns).
  auto stepId = std::make_shared<std::uint32_t>(0);
  *stepId = cluster.registerHandler([=, &cluster](rt::AmContext& ctx,
                                                  std::uint64_t code,
                                                  std::uint64_t len) {
    auto& heap = ctx.heap();
    const auto record = [&](std::uint64_t finalLen) {
      heap.storeU64(contigs.at(0), heap.loadU64(contigs.at(0)) + 1);
      heap.storeU64(covered.at(0), heap.loadU64(covered.at(0)) + finalLen);
      if (finalLen > heap.loadU64(longest.at(0)))
        heap.storeU64(longest.at(0), finalLen);
    };
    std::uint64_t counts = 0;
    if (!lookup(heap, code, counts) || !isUU(counts, minCount)) {
      record(len);  // walk terminates just past the contig's right end
      return;
    }
    const std::uint64_t newLen = len + 1;
    if (newLen >= lenCap) {
      record(newLen);
      return;
    }
    const std::uint64_t next =
        shiftRight(code, uniqueSide(counts, true, minCount), k);
    ctx.sendAm(std::uint32_t(mix64(next) % cluster.nodes()), *stepId, next,
               newLen);
  });
  const std::uint32_t step = *stepId;

  // Seed kernel: every GPU work-item classifies one local table slot
  // (software predication keeps the group converged through the sparse
  // table — the branch divergence the paper deferred phase 2 over).
  const std::uint32_t wg =
      cfg.wg_size ? cfg.wg_size : cluster.config().device.max_wg_size;
  cluster.resetStats();
  cluster.launchAll(slots, wg, [&](std::uint32_t nodeId, simt::WorkItem& wi) {
    auto& self = cluster.node(nodeId);
    const std::uint64_t key = self.heap().loadU64(keys.at(wi.globalId()));
    const std::uint64_t counts = self.heap().loadU64(vals.at(wi.globalId()));
    // Start: right-extendable but not left-walkable — a unique right
    // extension with no unique left one (read/genome starts, branch points).
    // Locally decidable; the serial reference uses the same rule.
    const bool start = key != 0 &&
                       uniqueSide(counts, true, minCount) >= 0 &&
                       uniqueSide(counts, false, minCount) < 0;
    std::uint64_t next = 0;
    if (start)
      next = shiftRight(key - 1, uniqueSide(counts, true, minCount), k);
    self.shmemAm(wi, start ? std::uint32_t(mix64(next) % nodes) : 0, step,
                 next, 1, start);
  });

  MerTraverseResult result;
  result.report.name = "mer-phase2";
  result.report.stats = cluster.runStats();
  result.report.iterations = 1;
  for (std::uint32_t nd = 0; nd < nodes; ++nd) {
    auto& heap = cluster.node(nd).heap();
    result.contigs += heap.loadU64(contigs.at(0));
    result.contig_kmers += heap.loadU64(covered.at(0));
    result.longest_contig =
        std::max(result.longest_contig, heap.loadU64(longest.at(0)));
  }
  result.report.work_units = double(result.contig_kmers);

  // Serial reference over the same k-mer multiset, same rules.
  std::map<std::uint64_t, std::uint64_t> ref;
  for (std::uint32_t nd = 0; nd < nodes; ++nd) {
    for (const KmerOccurrence& occ : extractKmers(phase1, nd)) {
      std::uint64_t& counts = ref[occ.code];
      auto bump = [&counts](std::uint32_t byte) {
        const std::uint64_t shift = byte * 8;
        if (((counts >> shift) & 0xff) != 0xff)
          counts += std::uint64_t(1) << shift;
      };
      if (occ.left < 4) bump(occ.left);
      if (occ.right < 4) bump(4 + occ.right);
    }
  }
  std::uint64_t refContigs = 0, refCovered = 0, refLongest = 0;
  for (const auto& [code, counts] : ref) {
    if (uniqueSide(counts, true, minCount) < 0 ||
        uniqueSide(counts, false, minCount) >= 0)
      continue;
    std::uint64_t len = 1;
    std::uint64_t cur = code, curCounts = counts;
    for (;;) {
      const std::uint64_t next =
          shiftRight(cur, uniqueSide(curCounts, true, minCount), k);
      const auto it = ref.find(next);
      if (it == ref.end() || !isUU(it->second, minCount)) break;
      ++len;
      if (len >= lenCap) break;
      cur = next;
      curCounts = it->second;
    }
    ++refContigs;
    refCovered += len;
    refLongest = std::max(refLongest, len);
  }
  result.report.validated = result.contigs == refContigs &&
                            result.contig_kmers == refCovered &&
                            result.longest_contig == refLongest;
  return result;
}

}  // namespace gravel::apps
