#include "apps/kmeans.hpp"

#include <cmath>

namespace gravel::apps {

namespace {
/// Initial centroid c, dimension d — identical for distributed and serial.
/// Seeded near the anchor layout of kmeansCoord (the usual sampled-point
/// initialization) so every cluster captures its anchor group; a degenerate
/// initialization would empty most clusters and concentrate all
/// accumulation traffic on a few owner nodes.
double initialCentroid(const KmeansConfig& cfg, std::uint32_t c,
                       std::uint32_t d) {
  const double jitter =
      double(mix64(cfg.seed ^ 0x5eedULL ^ (std::uint64_t(c) << 8 | d)) % 256) /
      256.0;
  return double((c * 29 + d * 13) % 64) + jitter;
}

/// Nearest centroid of a point; ties to the lower index.
std::uint32_t nearest(const KmeansConfig& cfg, const double* centroids,
                      const double* coords) {
  std::uint32_t best = 0;
  double bestDist = 0;
  for (std::uint32_t c = 0; c < cfg.clusters; ++c) {
    double dist = 0;
    for (std::uint32_t d = 0; d < cfg.dims; ++d) {
      const double diff = coords[d] - centroids[std::size_t{c} * cfg.dims + d];
      dist += diff * diff;
    }
    if (c == 0 || dist < bestDist) {
      bestDist = dist;
      best = c;
    }
  }
  return best;
}
}  // namespace

double kmeansCoord(const KmeansConfig& cfg, std::uint32_t node,
                   std::uint64_t p, std::uint32_t d) {
  // Anchor each point to one of `clusters` centers plus deterministic noise.
  const std::uint64_t key =
      mix64(cfg.seed ^ (std::uint64_t(node) << 44) ^ (p << 8) ^ d);
  const std::uint32_t anchor =
      std::uint32_t(mix64(cfg.seed ^ (std::uint64_t(node) << 44) ^ p) %
                    cfg.clusters);
  const double center = double((anchor * 29 + d * 13) % 64);
  const double noise = double(key % 1024) / 512.0 - 1.0;  // [-1, 1)
  return center + noise;
}

std::vector<double> serialKmeans(const KmeansConfig& cfg,
                                 std::uint32_t nodes) {
  std::vector<double> centroids(std::size_t{cfg.clusters} * cfg.dims);
  for (std::uint32_t c = 0; c < cfg.clusters; ++c)
    for (std::uint32_t d = 0; d < cfg.dims; ++d)
      centroids[std::size_t{c} * cfg.dims + d] = initialCentroid(cfg, c, d);

  std::vector<double> sums(centroids.size());
  std::vector<std::uint64_t> counts(cfg.clusters);
  std::vector<double> coords(cfg.dims);
  for (std::uint64_t it = 0; it < cfg.iterations; ++it) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::uint32_t n = 0; n < nodes; ++n) {
      for (std::uint64_t p = 0; p < cfg.points_per_node; ++p) {
        for (std::uint32_t d = 0; d < cfg.dims; ++d)
          coords[d] = kmeansCoord(cfg, n, p, d);
        const std::uint32_t c = nearest(cfg, centroids.data(), coords.data());
        ++counts[c];
        for (std::uint32_t d = 0; d < cfg.dims; ++d)
          sums[std::size_t{c} * cfg.dims + d] += coords[d];
      }
    }
    for (std::uint32_t c = 0; c < cfg.clusters; ++c)
      if (counts[c])
        for (std::uint32_t d = 0; d < cfg.dims; ++d)
          centroids[std::size_t{c} * cfg.dims + d] =
              sums[std::size_t{c} * cfg.dims + d] / double(counts[c]);
  }
  return centroids;
}

KmeansResult runKmeans(rt::Cluster& cluster, const KmeansConfig& cfg) {
  const std::uint32_t nodes = cluster.nodes();
  const std::size_t kd = std::size_t{cfg.clusters} * cfg.dims;

  // Symmetric layout: replicated centroids; partial sums/counts live at the
  // owner node of each cluster (c % nodes).
  auto centroids = cluster.alloc<std::uint64_t>(kd);
  auto sums = cluster.alloc<std::uint64_t>(kd);
  auto counts = cluster.alloc<std::uint64_t>(cfg.clusters);

  // Accumulation handler: float add at the owner (serialized by the network
  // thread, which is why a plain read-modify-write is safe — §6).
  const std::uint32_t addDouble = cluster.registerHandler(
      [](rt::AmContext& ctx, std::uint64_t offset, std::uint64_t bits) {
        ctx.heap().storeU64(offset,
                            doubleBits(bitsDouble(ctx.heap().loadU64(offset)) +
                                       bitsDouble(bits)));
      });

  for (std::uint32_t nd = 0; nd < nodes; ++nd) {
    auto& heap = cluster.node(nd).heap();
    for (std::uint32_t c = 0; c < cfg.clusters; ++c)
      for (std::uint32_t d = 0; d < cfg.dims; ++d)
        heap.storeU64(centroids.at(std::size_t{c} * cfg.dims + d),
                      doubleBits(initialCentroid(cfg, c, d)));
  }

  const std::uint32_t wg =
      cfg.wg_size ? cfg.wg_size : cluster.config().device.max_wg_size;

  cluster.resetStats();
  for (std::uint64_t it = 0; it < cfg.iterations; ++it) {
    // Zero the accumulators (host side, like the paper's host glue).
    for (std::uint32_t nd = 0; nd < nodes; ++nd) {
      auto& heap = cluster.node(nd).heap();
      for (std::size_t i = 0; i < kd; ++i)
        heap.storeU64(sums.at(i), doubleBits(0.0));
      for (std::uint32_t c = 0; c < cfg.clusters; ++c)
        heap.storeU64(counts.at(c), 0);
    }

    // Assignment + accumulation kernel: one work-item per point. The
    // per-dimension sends share one enqueue group each (uniform control
    // flow: every lane sends the same number of messages).
    cluster.launchAll(cfg.points_per_node, wg,
                      [&](std::uint32_t nodeId, simt::WorkItem& wi) {
      auto& self = cluster.node(nodeId);
      double coords[16];
      double cent[16 * 8];
      for (std::uint32_t d = 0; d < cfg.dims; ++d)
        coords[d] = kmeansCoord(cfg, nodeId, wi.globalId(), d);
      for (std::size_t i = 0; i < kd; ++i)
        cent[i] = bitsDouble(self.heap().loadU64(centroids.at(i)));
      const std::uint32_t c = nearest(cfg, cent, coords);
      const std::uint32_t owner = c % nodes;
      for (std::uint32_t d = 0; d < cfg.dims; ++d)
        self.shmemAm(wi, owner, addDouble,
                     sums.at(std::size_t{c} * cfg.dims + d),
                     doubleBits(coords[d]));
      self.shmemInc(wi, owner, counts.at(c));
    });

    // Host: owners recompute their centroids and broadcast (direct heap
    // writes — the paper's host-side phase between kernels).
    std::vector<double> newCentroids(kd);
    for (std::uint32_t c = 0; c < cfg.clusters; ++c) {
      auto& heap = cluster.node(c % nodes).heap();
      const std::uint64_t cnt = heap.loadU64(counts.at(c));
      for (std::uint32_t d = 0; d < cfg.dims; ++d) {
        const std::size_t i = std::size_t{c} * cfg.dims + d;
        newCentroids[i] =
            cnt ? bitsDouble(heap.loadU64(sums.at(i))) / double(cnt)
                : bitsDouble(
                      cluster.node(0).heap().loadU64(centroids.at(i)));
      }
    }
    for (std::uint32_t nd = 0; nd < nodes; ++nd)
      for (std::size_t i = 0; i < kd; ++i)
        cluster.node(nd).heap().storeU64(centroids.at(i),
                                         doubleBits(newCentroids[i]));
  }

  KmeansResult result;
  result.report.name = "kmeans";
  result.report.stats = cluster.runStats();
  result.report.work_units =
      double(cfg.points_per_node) * nodes * cfg.iterations;
  result.report.iterations = cfg.iterations;

  result.centroids.resize(kd);
  for (std::size_t i = 0; i < kd; ++i)
    result.centroids[i] =
        bitsDouble(cluster.node(0).heap().loadU64(centroids.at(i)));

  // Serial comparison: assignment is exact (same doubles), accumulation
  // order differs, so compare with tolerance.
  const auto expected = serialKmeans(cfg, nodes);
  result.report.validated = true;
  for (std::size_t i = 0; i < kd; ++i) {
    if (std::abs(result.centroids[i] - expected[i]) > 1e-6) {
      result.report.validated = false;
      break;
    }
  }
  return result;
}

}  // namespace gravel::apps
