#include "apps/pagerank.hpp"

namespace gravel::apps {

using graph::Vertex;

std::vector<double> serialPageRank(const graph::Csr& g,
                                   std::uint64_t iterations, double damping) {
  const Vertex n = g.vertexCount();
  std::vector<double> rank(n, 1.0 / n), incoming(n, 0.0);
  for (std::uint64_t it = 0; it < iterations; ++it) {
    std::fill(incoming.begin(), incoming.end(), 0.0);
    for (Vertex v = 0; v < n; ++v) {
      const auto deg = g.degree(v);
      if (deg == 0) continue;
      const double share = rank[v] / double(deg);
      for (Vertex w : g.neighbors(v)) incoming[w] += share;
    }
    for (Vertex v = 0; v < n; ++v)
      rank[v] = (1.0 - damping) / n + damping * incoming[v];
  }
  return rank;
}

PageRankResult runPageRank(rt::Cluster& cluster, const graph::DistGraph& dg,
                           const PageRankConfig& cfg) {
  const std::uint32_t nodes = cluster.nodes();
  const graph::Csr& g = dg.graph();
  const auto& vp = dg.vertices();
  const Vertex n = g.vertexCount();

  auto rank = cluster.alloc<std::uint64_t>(vp.perNode());
  auto inbox = cluster.alloc<std::uint64_t>(std::max<std::uint64_t>(
      1, dg.maxInboxSize()));

  // Host-side init: uniform rank, zero inboxes.
  const std::uint64_t zero = doubleBits(0.0);
  for (std::uint32_t nd = 0; nd < nodes; ++nd) {
    auto& heap = cluster.node(nd).heap();
    for (std::uint64_t l = 0; l < vp.sizeOf(nd); ++l)
      heap.storeU64(rank.at(l), doubleBits(1.0 / n));
    for (std::uint64_t s = 0; s < dg.inboxSize(nd); ++s)
      heap.storeU64(inbox.at(s), zero);
  }

  const std::uint32_t wg =
      cfg.wg_size ? cfg.wg_size : cluster.config().device.max_wg_size;
  std::vector<std::uint64_t> grids(nodes);
  for (std::uint32_t nd = 0; nd < nodes; ++nd) grids[nd] = vp.sizeOf(nd);

  cluster.resetStats();
  double edgeMessages = 0;
  for (std::uint64_t it = 0; it < cfg.iterations; ++it) {
    // Push: one work-item per local vertex; the edge loop runs in software-
    // predicated form (Figure 10b) so work-group-level queue reservations
    // stay legal in the diverged tail.
    cluster.launchAll(grids, wg, [&](std::uint32_t nodeId,
                                     simt::WorkItem& wi) {
      auto& self = cluster.node(nodeId);
      const auto v = Vertex(vp.globalIndex(nodeId, wi.globalId()));
      const auto deg = v < n ? g.degree(v) : 0;
      const double share =
          deg ? bitsDouble(self.heap().loadU64(rank.at(wi.globalId()))) /
                    double(deg)
              : 0.0;
      const std::uint64_t loops = wi.wgReduceMax(deg);
      for (std::uint64_t i = 0; i < loops; ++i) {
        const bool active = i < deg;
        Vertex w = 0;
        std::uint64_t slot = 0;
        if (active) {
          const std::uint64_t eid = g.edgeBegin(v) + i;
          w = g.neighbors(v)[i];
          slot = dg.inboxSlot(eid);
        } else {
          // Software-predication overhead: the inactive lane still executes
          // the message-construction path (§5.1/§8.2).
          wi.device().stats().predication_overhead_ops += 1;
        }
        self.shmemPut(wi, vp.owner(w), inbox.at(slot), doubleBits(share),
                      active);
      }
    });
    edgeMessages += double(g.edgeCount());

    // Gather: local-only — sum the private inbox range, apply damping.
    cluster.launchAll(grids, wg, [&](std::uint32_t nodeId,
                                     simt::WorkItem& wi) {
      auto& heap = cluster.node(nodeId).heap();
      const auto v = Vertex(vp.globalIndex(nodeId, wi.globalId()));
      const std::uint64_t base = dg.localInboxBase(v);
      const std::uint64_t indeg = dg.inDegree(v);
      double sum = 0.0;
      for (std::uint64_t k = 0; k < indeg; ++k)
        sum += bitsDouble(heap.loadU64(inbox.at(base + k)));
      heap.storeU64(rank.at(wi.globalId()),
                    doubleBits((1.0 - cfg.damping) / n + cfg.damping * sum));
    });
  }

  PageRankResult result;
  result.report.name = "PR";
  result.report.stats = cluster.runStats();
  result.report.work_units = edgeMessages;
  result.report.iterations = cfg.iterations;

  result.ranks.resize(n);
  for (Vertex v = 0; v < n; ++v)
    result.ranks[v] = bitsDouble(
        cluster.node(vp.owner(v)).heap().loadU64(rank.at(vp.localIndex(v))));

  // Validate against the serial reference.
  const auto expected = serialPageRank(g, cfg.iterations, cfg.damping);
  result.report.validated = true;
  for (Vertex v = 0; v < n; ++v) {
    if (std::abs(result.ranks[v] - expected[v]) > 1e-9) {
      result.report.validated = false;
      break;
    }
  }
  return result;
}

}  // namespace gravel::apps
