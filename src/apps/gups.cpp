#include "apps/gups.hpp"

#include <vector>

#include "common/error.hpp"
#include "graph/csr.hpp"

namespace gravel::apps {

AppReport runGups(rt::Cluster& cluster, const GupsConfig& cfg) {
  const std::uint32_t nodes = cluster.nodes();
  graph::BlockPartition part(cfg.table_size, nodes);
  auto table = cluster.alloc<std::uint64_t>(part.perNode());

  cluster.resetStats();
  // Figure 4b: gups(A, B, C) — each work-item issues one shmem_inc at a
  // random offset of the distributed table.
  const std::uint32_t wg =
      cfg.wg_size ? cfg.wg_size : cluster.config().device.max_wg_size;
  cluster.launchAll(cfg.updates_per_node, wg,
                    [&](std::uint32_t nodeId, simt::WorkItem& wi) {
                      const std::uint64_t g =
                          gupsTarget(cfg, nodeId, wi.globalId());
                      cluster.node(nodeId).shmemInc(
                          wi, part.owner(g), table.at(part.localIndex(g)));
                    });

  AppReport report;
  report.name = "GUPS";
  report.stats = cluster.runStats();
  report.work_units = double(cfg.updates_per_node) * nodes;
  report.iterations = 1;

  // Serial validation: recompute the expected histogram of targets.
  std::vector<std::uint64_t> expected(cfg.table_size, 0);
  for (std::uint32_t n = 0; n < nodes; ++n)
    for (std::uint64_t u = 0; u < cfg.updates_per_node; ++u)
      ++expected[gupsTarget(cfg, n, u)];
  report.validated = true;
  for (std::uint64_t g = 0; g < cfg.table_size; ++g) {
    const std::uint64_t got =
        cluster.node(part.owner(g)).heap().loadU64(table.at(part.localIndex(g)));
    if (got != expected[g]) {
      report.validated = false;
      break;
    }
  }
  return report;
}

}  // namespace gravel::apps
