#include "apps/color.hpp"

namespace gravel::apps {

using graph::Vertex;

namespace {
/// Deterministic vertex priority; ties broken by vertex id.
std::uint64_t priority(std::uint64_t seed, Vertex v) {
  return (mix64(seed ^ v) << 32) | v;
}
}  // namespace

bool isProperColoring(const graph::Csr& g,
                      const std::vector<std::uint64_t>& colors) {
  for (Vertex v = 0; v < g.vertexCount(); ++v) {
    if (colors[v] == kUncolored) return false;
    for (Vertex w : g.neighbors(v))
      if (colors[v] == colors[w]) return false;
  }
  return true;
}

ColorResult runColor(rt::Cluster& cluster, const graph::DistGraph& dg,
                     const ColorConfig& cfg) {
  const std::uint32_t nodes = cluster.nodes();
  const graph::Csr& g = dg.graph();
  const auto& vp = dg.vertices();
  const Vertex n = g.vertexCount();

  auto color = cluster.alloc<std::uint64_t>(vp.perNode());
  auto fresh = cluster.alloc<std::uint64_t>(vp.perNode());  ///< colored this round
  auto inbox = cluster.alloc<std::uint64_t>(
      std::max<std::uint64_t>(1, dg.maxInboxSize()));

  // Host init: everything uncolored; inbox slots carry the *sender's* color,
  // so they start kUncolored too.
  for (std::uint32_t nd = 0; nd < nodes; ++nd) {
    auto& heap = cluster.node(nd).heap();
    for (std::uint64_t l = 0; l < vp.sizeOf(nd); ++l) {
      heap.storeU64(color.at(l), kUncolored);
      heap.storeU64(fresh.at(l), 0);
    }
    for (std::uint64_t s = 0; s < dg.inboxSize(nd); ++s)
      heap.storeU64(inbox.at(s), kUncolored);
  }

  // Each node precomputes, for every inbox slot it owns, the in-neighbor's
  // priority (static data; host-side setup mirrors GasCL's preprocessed
  // per-edge metadata).
  std::vector<std::vector<std::uint64_t>> slotPriority(nodes);
  for (std::uint32_t nd = 0; nd < nodes; ++nd)
    slotPriority[nd].resize(dg.inboxSize(nd));
  for (Vertex u = 0; u < n; ++u) {
    const std::uint64_t base = g.edgeBegin(u);
    const auto nbrs = g.neighbors(u);
    for (std::uint64_t k = 0; k < nbrs.size(); ++k)
      slotPriority[vp.owner(nbrs[k])][dg.inboxSlot(base + k)] =
          priority(cfg.seed, u);
  }

  const std::uint32_t wg =
      cfg.wg_size ? cfg.wg_size : cluster.config().device.max_wg_size;
  std::vector<std::uint64_t> grids(nodes);
  for (std::uint32_t nd = 0; nd < nodes; ++nd) grids[nd] = vp.sizeOf(nd);

  cluster.resetStats();
  std::uint64_t rounds = 0;
  double colorMessages = 0;
  for (; rounds < cfg.max_rounds; ++rounds) {
    // Try-color: an uncolored vertex whose higher-priority neighbors all
    // have colors picks the smallest color absent among ALL currently
    // colored neighbors. Local-only reads; direct store of the color.
    cluster.launchAll(grids, wg, [&](std::uint32_t nodeId,
                                     simt::WorkItem& wi) {
      auto& heap = cluster.node(nodeId).heap();
      const std::uint64_t l = wi.globalId();
      if (heap.loadU64(color.at(l)) != kUncolored) return;
      const auto v = Vertex(vp.globalIndex(nodeId, l));
      const std::uint64_t myPrio = priority(cfg.seed, v);
      const std::uint64_t base = dg.localInboxBase(v);
      const std::uint64_t indeg = dg.inDegree(v);
      bool ready = true;
      for (std::uint64_t k = 0; k < indeg; ++k) {
        if (slotPriority[nodeId][base + k] > myPrio &&
            heap.loadU64(inbox.at(base + k)) == kUncolored) {
          ready = false;
          break;
        }
      }
      if (!ready) return;
      // Smallest color not used by any already-colored neighbor. O(d^2) but
      // d is small for both paper inputs (3 and 19).
      std::uint64_t c = 0;
      for (;; ++c) {
        bool clash = false;
        for (std::uint64_t k = 0; k < indeg; ++k) {
          if (heap.loadU64(inbox.at(base + k)) == c) {
            clash = true;
            break;
          }
        }
        if (!clash) break;
      }
      heap.storeU64(color.at(l), c);
      heap.storeU64(fresh.at(l), 1);
    });
    // NOTE: the try-color kernel has no shmem calls, so early `return` does
    // not interact with work-group collectives.

    // Push: freshly colored vertices announce their color along every edge
    // (PUT-only, per-edge slots — same shape as PageRank's push).
    std::uint64_t freshCount = 0;
    for (std::uint32_t nd = 0; nd < nodes; ++nd) {
      auto& heap = cluster.node(nd).heap();
      for (std::uint64_t l = 0; l < vp.sizeOf(nd); ++l)
        freshCount += heap.loadU64(fresh.at(l));
    }
    if (freshCount == 0) break;

    cluster.launchAll(grids, wg, [&](std::uint32_t nodeId,
                                     simt::WorkItem& wi) {
      auto& self = cluster.node(nodeId);
      const std::uint64_t l = wi.globalId();
      const bool announce = self.heap().loadU64(fresh.at(l)) != 0;
      const auto v = Vertex(vp.globalIndex(nodeId, l));
      const std::uint64_t deg = announce ? g.degree(v) : 0;
      const std::uint64_t myColor =
          announce ? self.heap().loadU64(color.at(l)) : 0;
      const std::uint64_t loops = wi.wgReduceMax(deg);
      for (std::uint64_t i = 0; i < loops; ++i) {
        const bool sends = i < deg;
        Vertex w = 0;
        std::uint64_t slot = 0;
        if (sends) {
          w = g.neighbors(v)[i];
          slot = dg.inboxSlot(g.edgeBegin(v) + i);
        } else {
          wi.device().stats().predication_overhead_ops += 1;
        }
        self.shmemPut(wi, vp.owner(w), inbox.at(slot), myColor, sends);
      }
      if (announce) self.heap().storeU64(fresh.at(l), 0);
    });
    // Count announced colors for the work measure: every fresh vertex sent
    // one message per edge.
    colorMessages += double(freshCount);
  }

  ColorResult result;
  result.report.name = "color";
  result.report.stats = cluster.runStats();
  result.report.work_units = colorMessages;
  result.report.iterations = rounds;

  result.colors.resize(n);
  std::uint64_t palette = 0;
  for (Vertex v = 0; v < n; ++v) {
    result.colors[v] = cluster.node(vp.owner(v))
                           .heap()
                           .loadU64(color.at(vp.localIndex(v)));
    if (result.colors[v] != kUncolored)
      palette = std::max(palette, result.colors[v] + 1);
  }
  result.palette = palette;
  result.report.validated = isProperColoring(g, result.colors);
  return result;
}

}  // namespace gravel::apps
