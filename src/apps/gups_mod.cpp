#include "apps/gups_mod.hpp"

#include <vector>

#include "common/error.hpp"
#include "graph/csr.hpp"

namespace gravel::apps {

std::uint64_t gupsModCount(const GupsModConfig& cfg, std::uint32_t node,
                           std::uint64_t g) {
  const std::uint64_t key = mix64(cfg.seed ^ (std::uint64_t(node) << 40) ^ g);
  const auto threshold =
      std::uint64_t(cfg.idle_fraction * double(~std::uint64_t{0}));
  if (key < threshold) return 0;
  return 1 + mix64(key) % cfg.max_updates;
}

namespace {
std::uint64_t target(const GupsModConfig& cfg, std::uint32_t node,
                     std::uint64_t g, std::uint64_t i) {
  return mix64(cfg.seed ^ 0xABCD ^ (std::uint64_t(node) << 44) ^ (g << 8) ^
               i) %
         cfg.table_size;
}
}  // namespace

AppReport runGupsMod(rt::Cluster& cluster, const GupsModConfig& cfg,
                     DivergedMode mode) {
  GRAVEL_CHECK_MSG(
      (mode == DivergedMode::kWgReconvergence) ==
          cluster.config().device.wg_reconvergence,
      "kWgReconvergence requires a cluster with "
      "DeviceConfig::wg_reconvergence enabled (and the other modes require "
      "it disabled)");

  const std::uint32_t nodes = cluster.nodes();
  graph::BlockPartition part(cfg.table_size, nodes);
  auto table = cluster.alloc<std::uint64_t>(part.perNode());

  const std::uint32_t wg =
      cfg.wg_size ? cfg.wg_size : cluster.config().device.max_wg_size;

  cluster.resetStats();
  double updates = 0;
  switch (mode) {
    case DivergedMode::kSoftwarePredication:
      // Figure 10b: reduce-max the loop count, predicate each iteration.
      cluster.launchAll(cfg.workitems_per_node, wg,
                        [&](std::uint32_t nodeId, simt::WorkItem& wi) {
        auto& self = cluster.node(nodeId);
        const std::uint64_t mine = gupsModCount(cfg, nodeId, wi.globalId());
        const std::uint64_t loops = wi.wgReduceMax(mine);
        for (std::uint64_t i = 0; i < loops; ++i) {
          const bool active = i < mine;
          std::uint64_t g = 0;
          if (active) {
            g = target(cfg, nodeId, wi.globalId(), i);
          } else {
            // Lines 7-11 of Figure 10b still execute on idle lanes: the
            // activity test plus the dummy message construction.
            wi.device().stats().predication_overhead_ops += 3;
          }
          self.shmemInc(wi, part.owner(g), table.at(part.localIndex(g)),
                        active);
        }
      });
      break;

    case DivergedMode::kWgReconvergence:
      // Figure 10a runs unmodified: lanes exit their loop (and the kernel)
      // as their work ends; the engine's §5.3 semantics complete each
      // group-level reservation over the remaining live lanes.
      cluster.launchAll(cfg.workitems_per_node, wg,
                        [&](std::uint32_t nodeId, simt::WorkItem& wi) {
        auto& self = cluster.node(nodeId);
        const std::uint64_t mine = gupsModCount(cfg, nodeId, wi.globalId());
        for (std::uint64_t i = 0; i < mine; ++i) {
          const std::uint64_t g = target(cfg, nodeId, wi.globalId(), i);
          self.shmemInc(wi, part.owner(g), table.at(part.localIndex(g)));
        }
      });
      break;

    case DivergedMode::kFbar:
      // Figure 10c: lanes register with a fine-grain barrier and leave as
      // their edge... er, update lists run dry; reservations synchronize
      // members only.
      cluster.launchAll(cfg.workitems_per_node, wg,
                        [&](std::uint32_t nodeId, simt::WorkItem& wi) {
        auto& self = cluster.node(nodeId);
        auto& fb = wi.fbar();
        wi.fbarJoin(fb);
        const std::uint64_t mine = gupsModCount(cfg, nodeId, wi.globalId());
        for (std::uint64_t i = 0;; ++i) {
          if (i >= mine) {
            wi.fbarLeave(fb);
            break;
          }
          const std::uint64_t g = target(cfg, nodeId, wi.globalId(), i);
          self.shmemInc(wi, part.owner(g), table.at(part.localIndex(g)), true,
                        &fb);
        }
      });
      break;
  }

  AppReport report;
  report.name = "GUPS-mod";
  report.stats = cluster.runStats();
  report.iterations = 1;

  // Serial expectation.
  std::vector<std::uint64_t> expected(cfg.table_size, 0);
  for (std::uint32_t n = 0; n < nodes; ++n)
    for (std::uint64_t g = 0; g < cfg.workitems_per_node; ++g) {
      const std::uint64_t mine = gupsModCount(cfg, n, g);
      updates += double(mine);
      for (std::uint64_t i = 0; i < mine; ++i) ++expected[target(cfg, n, g, i)];
    }
  report.work_units = updates;

  report.validated = true;
  for (std::uint64_t g = 0; g < cfg.table_size; ++g) {
    const std::uint64_t got = cluster.node(part.owner(g))
                                  .heap()
                                  .loadU64(table.at(part.localIndex(g)));
    if (got != expected[g]) {
      report.validated = false;
      break;
    }
  }
  return report;
}

}  // namespace gravel::apps
