// PageRank (paper §6, derived from GasCL): push-style — each vertex sends
// rank/out-degree along every out-edge each iteration, then gathers its
// inbox. PUT is the only network primitive (Table 5: PR uses non-atomic
// operations exclusively); per-edge private inbox slots make concurrent
// PUTs race-free.
#pragma once

#include <vector>

#include "apps/app.hpp"
#include "graph/dist.hpp"
#include "runtime/cluster.hpp"

namespace gravel::apps {

struct PageRankConfig {
  std::uint64_t iterations = 5;
  double damping = 0.85;
  std::uint32_t wg_size = 0;  ///< 0 = device max
};

struct PageRankResult {
  AppReport report;
  std::vector<double> ranks;  ///< gathered, indexed by global vertex id
};

/// Distributed PageRank over the Gravel runtime. The push kernel walks each
/// vertex's edge list with software predication (Figure 10b's loop shape).
PageRankResult runPageRank(rt::Cluster& cluster, const graph::DistGraph& dg,
                           const PageRankConfig& cfg);

/// Serial reference with identical update order semantics (synchronous
/// iterations), for validation.
std::vector<double> serialPageRank(const graph::Csr& g,
                                   std::uint64_t iterations, double damping);

}  // namespace gravel::apps
