// GUPS-mod (paper §8.2): each work-item performs a *random number* of
// updates and 95% of work-items perform none — the stress test for diverged
// work-group-level operations. Three variants map to the paper's three
// mechanisms:
//
//   kSoftwarePredication : Figure 10b — every lane iterates to the group
//                          max, inactive lanes carry identity values and pay
//                          the predication instruction overhead.
//   kWgReconvergence     : §5.3 thread-block-compaction semantics — lanes
//                          exit their loop naturally; the engine completes
//                          collectives over the remaining live lanes
//                          (DeviceConfig::wg_reconvergence). No predication
//                          overhead, but an all-idle wavefront still runs.
//   kFbar                : Figure 10c — lanes leave a fine-grain barrier as
//                          their work ends; only members synchronize.
#pragma once

#include "apps/app.hpp"
#include "runtime/cluster.hpp"

namespace gravel::apps {

enum class DivergedMode {
  kSoftwarePredication,
  kWgReconvergence,
  kFbar,
};

struct GupsModConfig {
  std::uint64_t table_size = 1 << 14;
  std::uint64_t workitems_per_node = 1 << 13;
  std::uint32_t max_updates = 16;   ///< active lanes draw 1..max updates
  double idle_fraction = 0.95;      ///< paper: 95% of WIs perform no updates
  std::uint64_t seed = 13;
  std::uint32_t wg_size = 0;        ///< 0 = device max
};

/// Number of updates work-item `g` of `node` performs.
std::uint64_t gupsModCount(const GupsModConfig& cfg, std::uint32_t node,
                           std::uint64_t g);

/// Runs one variant and validates the table against the serial expectation.
/// The report's SIMT counters (collective arrivals, predication overhead)
/// are what §8.2's speedup model consumes.
AppReport runGupsMod(rt::Cluster& cluster, const GupsModConfig& cfg,
                     DivergedMode mode);

}  // namespace gravel::apps
