// K-means clustering (paper §6, Table 4: 8 clusters, 16M points): points are
// partitioned across nodes; each point finds its nearest centroid locally
// and sends its coordinates to the cluster's owner node with atomic
// operations (Table 5: kmeans uses atomics exclusively — hence its 87.5%
// remote-access frequency at 8 nodes matches GUPS).
#pragma once

#include <vector>

#include "apps/app.hpp"
#include "runtime/cluster.hpp"

namespace gravel::apps {

struct KmeansConfig {
  std::uint32_t clusters = 8;
  std::uint32_t dims = 4;
  std::uint64_t points_per_node = 1 << 12;
  std::uint64_t iterations = 3;
  std::uint64_t seed = 5;
  std::uint32_t wg_size = 0;  ///< 0 = device max
};

/// Deterministic coordinate d of point p on `node` — shared with the serial
/// validator. Points are drawn near `clusters` well-separated anchors.
double kmeansCoord(const KmeansConfig& cfg, std::uint32_t node,
                   std::uint64_t p, std::uint32_t d);

struct KmeansResult {
  AppReport report;
  std::vector<double> centroids;  ///< clusters x dims, row-major
};

KmeansResult runKmeans(rt::Cluster& cluster, const KmeansConfig& cfg);

/// Serial reference: identical init, identical assignment rule.
std::vector<double> serialKmeans(const KmeansConfig& cfg,
                                 std::uint32_t nodes);

}  // namespace gravel::apps
