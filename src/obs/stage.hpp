// Shared trace-event vocabulary: the pipeline stages, the 32-byte TraceEvent
// record, and the well-known gauge IDs. Split out of trace.hpp so the
// flight recorder (flight_recorder.hpp) and the latency-attribution engine
// (latency.hpp) can consume events without pulling in the Tracer itself.
#pragma once

#include <cstdint>

namespace gravel::obs {

/// Lifecycle stages of one Gravel message, in pipeline order (paper §3.4).
enum class Stage : std::uint8_t {
  kEnqueue = 0,    ///< GPU work-item deposited it into the Gravel queue
  kAggregate = 1,  ///< aggregator drained it into a per-destination buffer
  kFlush = 2,      ///< its per-destination buffer was handed to the fabric
  kWireSend = 3,   ///< the (possibly faulty) wire accepted the framed batch
  kDeliver = 4,    ///< destination network thread pulled it from its inbox
  kResolve = 5,    ///< resolved as a local memory op / active message
  kGauge = 6,      ///< not a message stage: a sampled gauge value
};

inline const char* stageName(Stage s) noexcept {
  switch (s) {
    case Stage::kEnqueue: return "enqueue";
    case Stage::kAggregate: return "aggregate";
    case Stage::kFlush: return "flush";
    case Stage::kWireSend: return "wire-send";
    case Stage::kDeliver: return "deliver";
    case Stage::kResolve: return "resolve";
    case Stage::kGauge: return "gauge";
  }
  return "?";
}

/// Number of message stages (kGauge excluded).
inline constexpr int kMessageStages = 6;

/// Message kind carried in TraceEvent::kind — the rt::Command value of the
/// traced message, rendered for metric labels. Kept here (duplicating the
/// numeric values of rt::Command) so the obs layer stays free of runtime
/// includes.
inline const char* messageKindName(std::uint8_t kind) noexcept {
  switch (kind) {
    case 0: return "put";      // rt::Command::kPut
    case 1: return "inc";      // rt::Command::kAtomicInc
    case 2: return "am";       // rt::Command::kActiveMessage
    case 3: return "control";  // rt::Command::kControl
  }
  return "?";
}

/// One recorded event, 32 bytes. For message stages `id` is the sampled
/// trace ID (1..65535, or 0 for flight-recorder-only events when sampling
/// is off) and `value` carries the symmetric-heap address (a cheap payload
/// correlator); for kGauge `id` names the gauge and `value` is the sample.
/// `node` is 16 bits wide so Fig-12-style scaling runs past 256 nodes
/// record unaliased ids (ClusterConfig::validate bounds nodes at 65536 to
/// match). `aux` is the message's destination node for every message stage
/// (deliver/resolve record at the destination itself). `kind` is the
/// message's rt::Command, keying the latency-attribution histograms.
struct TraceEvent {
  std::uint64_t ts_ns = 0;  ///< nanoseconds since the tracer's epoch
  std::uint64_t value = 0;
  std::uint32_t id = 0;
  std::uint16_t node = 0;  ///< node whose pipeline recorded the event
  std::uint16_t aux = 0;   ///< destination node for message stages
  Stage stage = Stage::kEnqueue;
  std::uint8_t kind = 0;  ///< rt::Command of the message (messageKindName)
};

static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay 32 bytes");

/// Well-known gauge IDs (TraceEvent::id when stage == kGauge).
enum class Gauge : std::uint32_t {
  kGpuQueueDepth = 1,  ///< reserved-but-unrouted Gravel queue slots
  kAggBufferFill = 2,  ///< messages sitting in per-destination buffers
  kFabricPending = 3,  ///< unresolved (or unacked) batches in the fabric
  kReorderDepth = 4,   ///< parked out-of-order batches (reliability layer)
};

inline const char* gaugeName(Gauge g) noexcept {
  switch (g) {
    case Gauge::kGpuQueueDepth: return "gpu_queue_depth";
    case Gauge::kAggBufferFill: return "agg_buffer_fill";
    case Gauge::kFabricPending: return "fabric_pending";
    case Gauge::kReorderDepth: return "reorder_depth";
  }
  return "?";
}

}  // namespace gravel::obs
