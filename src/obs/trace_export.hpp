// Perfetto/Chrome-trace JSON export of a Tracer's buffers, plus the
// stage-latency analysis the metrics registry ingests.
//
// Output is the Chrome trace-event JSON format (https://ui.perfetto.dev
// opens it directly): one track (tid) per recording thread — aggregator,
// network, GPU scheduler, sampler — carrying a short "X" slice per recorded
// message stage, flow events ("s"/"t"/"f") chaining each sampled message's
// stages across tracks, and "C" counter tracks for the depth gauges.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace gravel::obs {

namespace detail {

/// Chrome trace timestamps are microseconds (doubles are accepted).
inline double toUs(std::uint64_t ns) { return double(ns) / 1000.0; }

struct FlowPoint {
  std::uint64_t ts_ns;
  int tid;
  Stage stage;
};

}  // namespace detail

/// Writes the whole trace as Chrome trace-event JSON. `process` names the
/// process track ("gravel" by default).
inline void writeChromeTrace(std::ostream& os, const Tracer& tracer,
                             const std::string& process = "gravel") {
  const auto buffers = tracer.buffers();
  JsonWriter w(os);
  w.beginObject();
  w.kv("displayTimeUnit", "ns");
  w.key("otherData").beginObject();
  w.kv("sample_interval", std::uint64_t(tracer.config().sample_interval));
  w.kv("dropped_events", tracer.droppedEvents());
  w.endObject();
  w.key("traceEvents").beginArray();

  // Process + thread name metadata.
  w.beginObject()
      .kv("name", "process_name")
      .kv("ph", "M")
      .kv("pid", 1)
      .key("args")
      .beginObject()
      .kv("name", process)
      .endObject()
      .endObject();
  for (std::size_t t = 0; t < buffers.size(); ++t) {
    w.beginObject()
        .kv("name", "thread_name")
        .kv("ph", "M")
        .kv("pid", 1)
        .kv("tid", std::uint64_t(t + 1))
        .key("args")
        .beginObject()
        .kv("name", buffers[t]->name())
        .endObject()
        .endObject();
  }

  // Pass 1: slices and counters, gathering flow points per trace ID.
  std::map<std::uint32_t, std::vector<detail::FlowPoint>> flows;
  for (std::size_t t = 0; t < buffers.size(); ++t) {
    const TraceBuffer& b = *buffers[t];
    const std::size_t n = b.size();
    const int tid = int(t + 1);
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = b[i];
      if (e.stage == Stage::kGauge) {
        // Counter track, one per (gauge, node).
        w.beginObject()
            .kv("name", std::string(gaugeName(Gauge(e.id))) + ".node" +
                            std::to_string(e.node))
            .kv("ph", "C")
            .kv("pid", 1)
            .kv("ts", detail::toUs(e.ts_ns))
            .key("args")
            .beginObject()
            .kv("value", e.value)
            .endObject()
            .endObject();
        continue;
      }
      w.beginObject()
          .kv("name", stageName(e.stage))
          .kv("cat", "msg")
          .kv("ph", "X")
          .kv("pid", 1)
          .kv("tid", std::uint64_t(tid))
          .kv("ts", detail::toUs(e.ts_ns))
          .kv("dur", 1.0)
          .key("args")
          .beginObject()
          .kv("trace_id", std::uint64_t(e.id))
          .kv("node", std::uint64_t(e.node))
          .kv("dest", std::uint64_t(e.aux))
          .kv("addr", e.value)
          .endObject()
          .endObject();
      flows[e.id].push_back(detail::FlowPoint{e.ts_ns, tid, e.stage});
    }
  }

  // Pass 2: flow events following each sampled message across tracks.
  // Chrome semantics: "s" starts a flow at a slice, "t" steps through
  // intermediate slices, "f" (bp:"e") binds the arrow head to the enclosing
  // slice. A flow needs >= 2 points to draw anything.
  for (auto& [id, points] : flows) {
    if (points.size() < 2) continue;
    std::stable_sort(points.begin(), points.end(),
                     [](const detail::FlowPoint& a, const detail::FlowPoint& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    for (std::size_t i = 0; i < points.size(); ++i) {
      const char* ph = i == 0 ? "s" : (i + 1 == points.size() ? "f" : "t");
      w.beginObject()
          .kv("name", "message")
          .kv("cat", "flow")
          .kv("ph", ph)
          .kv("id", std::uint64_t(id))
          .kv("pid", 1)
          .kv("tid", std::uint64_t(points[i].tid))
          .kv("ts", detail::toUs(points[i].ts_ns));
      if (ph[0] == 'f') w.kv("bp", "e");
      w.endObject();
    }
  }

  w.endArray().endObject();
}

/// Per-message lifecycle reconstructed from the trace buffers: the first
/// timestamp seen for each stage of each trace ID. (IDs are 16-bit and wrap;
/// within one run at sane sampling intervals collisions are negligible, and
/// the reconstruction keeps the earliest event per stage.)
struct MessageLifecycle {
  std::uint32_t id = 0;
  std::uint64_t ts_ns[kMessageStages] = {};  ///< 0 = stage not observed
  bool complete() const noexcept {
    for (int s = 0; s < kMessageStages; ++s)
      if (ts_ns[s] == 0) return false;
    return true;
  }
};

inline std::vector<MessageLifecycle> reconstructLifecycles(
    const Tracer& tracer) {
  std::map<std::uint32_t, MessageLifecycle> byId;
  for (const TraceBuffer* b : tracer.buffers()) {
    const std::size_t n = b->size();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = (*b)[i];
      if (e.stage == Stage::kGauge || e.id == 0) continue;
      MessageLifecycle& lc = byId[e.id];
      lc.id = e.id;
      std::uint64_t& slot = lc.ts_ns[int(e.stage)];
      if (slot == 0 || e.ts_ns < slot) slot = e.ts_ns;
    }
  }
  std::vector<MessageLifecycle> out;
  out.reserve(byId.size());
  for (auto& [id, lc] : byId) out.push_back(lc);
  return out;
}

/// Latency between consecutive observed stages, pooled over all sampled
/// messages. Index [i] covers stage i -> stage i+1 in nanoseconds.
struct StageLatencies {
  RunningStat stage[kMessageStages - 1];
  RunningStat end_to_end;  ///< enqueue -> resolve where both were seen
};

inline StageLatencies stageLatencies(const Tracer& tracer) {
  StageLatencies out;
  for (const MessageLifecycle& lc : reconstructLifecycles(tracer)) {
    std::uint64_t prev = 0;
    int prevStage = -1;
    for (int s = 0; s < kMessageStages; ++s) {
      if (lc.ts_ns[s] == 0) continue;
      if (prevStage >= 0 && s == prevStage + 1 && lc.ts_ns[s] >= prev)
        out.stage[prevStage].add(double(lc.ts_ns[s] - prev));
      prev = lc.ts_ns[s];
      prevStage = s;
    }
    const std::uint64_t enq = lc.ts_ns[int(Stage::kEnqueue)];
    const std::uint64_t res = lc.ts_ns[int(Stage::kResolve)];
    if (enq && res && res >= enq) out.end_to_end.add(double(res - enq));
  }
  return out;
}

}  // namespace gravel::obs
