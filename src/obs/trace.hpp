// Message-lifecycle tracing: sampled trace IDs stamped into messages at GPU
// enqueue and followed through aggregator -> per-node queue flush -> wire ->
// network-thread resolution, with per-stage timestamps recorded into
// single-writer per-thread buffers.
//
// Design constraints (ISSUE 2 tentpole):
//   - near-zero overhead when disabled: every record site is guarded by one
//     branch on a plain bool; nothing else is touched;
//   - no locks on the hot path: each recording thread owns a fixed-capacity
//     event buffer (acquired once through a mutex, then written single-writer
//     with a release-published count); readers only run at quiescent points
//     (after quiet()/join) or tolerate a slightly stale tail;
//   - the trace ID travels *in* the message: NetMessage's cmd word has 16
//     free bits (16..31) on every data command, so no wire-format growth and
//     the ID survives aggregation, framing, retransmission and reordering.
//
// Layered on the same record sites (ISSUE 5):
//   - the flight recorder (flight_recorder.hpp) keeps an always-on ring of
//     the last N events per thread, independent of sampling — record sites
//     gate on active() (= sampling enabled OR flight recording enabled) and
//     pass id 0 for unsampled messages;
//   - the latency-attribution engine (latency.hpp) consumes the sampled
//     buffers incrementally and attributes p50/p99 to pipeline stages.
//
// The Perfetto/Chrome-trace exporter over these buffers lives in
// trace_export.hpp; depth-gauge samples recorded here render as counter
// tracks there.
//
// gravel-lint: hot-path — record()/recordStage() run on every traced
// message; the two lock sites below are once-per-thread registration and
// quiescent readers and carry individual allow() suppressions.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/atomic.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/stage.hpp"

namespace gravel::obs {

/// Fixed-capacity single-writer event buffer. The writer publishes with a
/// release store of the count; concurrent readers acquire the count and read
/// only below it, so drains at quiescent points are race-free without locks.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity)
      : capacity_(capacity), events_(new TraceEvent[capacity]) {}

  void record(const TraceEvent& e) noexcept {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[n] = e;
    count_.store(n + 1, std::memory_order_release);  // pairs-with: trace.buffer-count
  }

  std::size_t size() const noexcept {
    return count_.load(std::memory_order_acquire);  // pairs-with: trace.buffer-count
  }
  const TraceEvent& operator[](std::size_t i) const noexcept {
    return events_[i];
  }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

 private:
  std::size_t capacity_;
  std::unique_ptr<TraceEvent[]> events_;
  atomic<std::size_t> count_{0};
  atomic<std::uint64_t> dropped_{0};
  std::string name_ = "thread";
};

/// Tracing knobs, embedded in ClusterConfig as `config.obs`.
struct TraceConfig {
  /// Master switch for *sampled* tracing. Off means no sampling, no
  /// stamping, no buffer recording. The flight recorder below is
  /// independent of this switch.
  bool enabled = false;

  /// Sample 1 in N candidate messages (per node, deterministic round-robin
  /// over the enqueue count). 1 traces everything. The GRAVEL_TRACE_SAMPLE
  /// environment variable, when set to a positive integer, overrides this
  /// at Tracer construction (see README quickstart).
  std::uint32_t sample_interval = 64;

  /// Events per recording thread; overflow drops (counted, reported by the
  /// exporter) rather than reallocating on the hot path.
  std::size_t buffer_events = 1 << 16;

  /// Queue-depth / occupancy gauge sampling cadence; zero disables the
  /// gauge duty of the monitor thread.
  std::chrono::microseconds gauge_period{0};

  /// Always-on flight recorder: every record site also appends to a
  /// bounded per-thread ring of the last `flightrec_events` events
  /// (sampled or not — unsampled events carry id 0), dumped as
  /// gravel_flightrec.json on quiet-deadline expiry, LinkFailureError, or
  /// GRAVEL_FLIGHTREC_DUMP=1 exit. Costs ~2 relaxed atomic ops plus one
  /// clock read per record; set false for overhead-free record sites.
  bool flightrec = true;
  std::size_t flightrec_events = 2048;
};

/// The per-cluster trace sink. Threads acquire a private buffer on first
/// record (mutex once), then record lock-free. Trace IDs are 16-bit, never
/// 0, assigned round-robin to every sample_interval-th candidate.
class Tracer {
 public:
  explicit Tracer(const TraceConfig& config)
      : config_(config),
        enabled_(config.enabled),
        flight_(config.flightrec ? config.flightrec_events : 0),
        epoch_(std::chrono::steady_clock::now()),
        gen_(nextGeneration()) {
    if (const char* env = std::getenv("GRAVEL_TRACE_SAMPLE")) {
      // Positive integers override the configured interval; anything else
      // (unset, empty, 0, garbage) leaves the config value in force.
      const unsigned long v = std::strtoul(env, nullptr, 10);
      if (v >= 1 && v <= 0xffffffffUL)
        config_.sample_interval = std::uint32_t(v);
    }
  }

  bool enabled() const noexcept { return enabled_; }

  /// True when any record site should fire: sampled tracing, the flight
  /// recorder, or both. Call sites guard their per-message loops on this
  /// and pass traceId() (possibly 0) straight through.
  bool active() const noexcept { return enabled_ || flight_.enabled(); }

  const TraceConfig& config() const noexcept { return config_; }

  FlightRecorder& flightRecorder() noexcept { return flight_; }
  const FlightRecorder& flightRecorder() const noexcept { return flight_; }

  std::uint64_t nowNs() const noexcept {
    return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - epoch_)
                             .count());
  }

  /// Sampling decision for one candidate message: 0 = not sampled, else a
  /// fresh nonzero 16-bit trace ID to stamp into the message.
  std::uint32_t maybeSample() noexcept {
    if (!enabled_) return 0;
    const std::uint32_t interval = std::max(1u, config_.sample_interval);
    if (candidates_.fetch_add(1, std::memory_order_relaxed) % interval != 0)
      return 0;
    std::uint32_t id;
    do {
      id = nextId_.fetch_add(1, std::memory_order_relaxed) & 0xffffu;
    } while (id == 0);
    return id;
  }

  /// Records a message-stage event. id 0 is legal and means "not sampled":
  /// the event still reaches the flight recorder but never a TraceBuffer.
  void recordStage(Stage stage, std::uint32_t id, std::uint16_t node,
                   std::uint16_t dest, std::uint64_t value = 0,
                   std::uint8_t kind = 0) noexcept {
    if (!enabled_ && !flight_.enabled()) return;
    const TraceEvent e{nowNs(), value, id, node, dest, stage, kind};
    if (flight_.enabled()) flight_.record(e);
    if (enabled_ && id != 0) threadBuffer().record(e);
  }

  /// Records a gauge sample (renders as a Perfetto counter track; also
  /// lands in the flight ring so post-mortems see recent depth history).
  void recordGauge(Gauge gauge, std::uint16_t node, std::uint64_t value) {
    if (!enabled_ && !flight_.enabled()) return;
    const TraceEvent e{nowNs(), value, std::uint32_t(gauge),
                       node, 0, Stage::kGauge};
    if (flight_.enabled()) flight_.record(e);
    if (enabled_) threadBuffer().record(e);
  }

  /// Names the calling thread's buffer (its Perfetto track) and its flight
  /// ring.
  void nameThread(const std::string& name) {
    if (enabled_) threadBuffer().setName(name);
    if (flight_.enabled()) flight_.nameThread(name);
  }

  /// All buffers created so far. Safe to iterate at quiescent points; each
  /// buffer's size() is release-published by its writer.
  // gravel-analyze: cold — quiescent-point reader, not a record site.
  std::vector<const TraceBuffer*> buffers() const {
    // Quiescent-point reader, never on a record path.
    gravel::lock_guard lk(mutex_);  // gravel-lint: allow(hot-path-blocking)
    std::vector<const TraceBuffer*> out;
    out.reserve(buffers_.size());
    for (const auto& b : buffers_) out.push_back(b.get());
    return out;
  }

  /// Every event from every buffer, sorted by timestamp. Convenience for
  /// tests and latency analysis.
  // gravel-analyze: cold — quiescent/dump-time reader, not a record site.
  std::vector<TraceEvent> allEvents() const {
    std::vector<TraceEvent> out;
    for (const TraceBuffer* b : buffers()) {
      const std::size_t n = b->size();
      for (std::size_t i = 0; i < n; ++i) out.push_back((*b)[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.ts_ns < b.ts_ns;
              });
    return out;
  }

  std::uint64_t droppedEvents() const {
    std::uint64_t d = 0;
    for (const TraceBuffer* b : buffers()) d += b->dropped();
    return d;
  }

  std::uint64_t sampledCandidates() const noexcept {
    return candidates_.load(std::memory_order_relaxed);
  }

 private:
  static std::uint64_t nextGeneration() noexcept {
    static atomic<std::uint64_t> gen{1};
    return gen.fetch_add(1, std::memory_order_relaxed);
  }

  // gravel-analyze: cold — once-per-thread slow path; the lock and the
  // allocation are amortized over every later record on this thread.
  TraceBuffer& threadBuffer() {
    // Generation (not pointer) keyed: a new Tracer at a recycled address
    // must not inherit a stale buffer pointer.
    thread_local std::uint64_t tlsGen = 0;
    thread_local TraceBuffer* tlsBuf = nullptr;
    if (tlsGen != gen_) {
      // Taken once per (thread, tracer generation); every later record on
      // this thread goes straight to the cached tlsBuf pointer.
      gravel::lock_guard lk(mutex_);  // gravel-lint: allow(hot-path-blocking)
      buffers_.push_back(std::make_unique<TraceBuffer>(config_.buffer_events));
      buffers_.back()->setName("thread-" + std::to_string(buffers_.size()));
      tlsBuf = buffers_.back().get();
      tlsGen = gen_;
    }
    return *tlsBuf;
  }

  TraceConfig config_;
  bool enabled_;
  FlightRecorder flight_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t gen_;

  atomic<std::uint64_t> candidates_{0};
  atomic<std::uint32_t> nextId_{1};

  mutable gravel::mutex mutex_{"Tracer::mutex_"};  // gravel-lint: allow(hot-path-blocking)
  std::vector<std::unique_ptr<TraceBuffer>> buffers_ GRAVEL_GUARDED_BY(mutex_);
};

}  // namespace gravel::obs
