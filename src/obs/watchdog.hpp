// Stall watchdog: turns periodic runtime samples (GPU-queue progress,
// per-destination aggregation buffer ages, reliable-link send states) into
// structured diagnoses — which queue stopped making progress, which
// destination's buffer is backed up, which link owes which sequence range.
// The Cluster's monitor thread feeds observe() on a configurable cadence
// and the quiet() post-mortem appends describe() to its error message, so
// a wedged run names its own culprit instead of handing the user a pile of
// counters (ISSUE 5).
//
// Layering: gravel_obs is an INTERFACE library on gravel_common only, so
// this file cannot see the aggregator/queue/fabric types. The runtime
// flattens what the watchdog needs into plain sample structs; the detection
// rules below are pure functions of consecutive samples.
//
// Detection rules (DESIGN.md §10):
//   no-progress    a queue with a nonzero backlog whose routed count has
//                  not advanced for >= no_progress_deadline;
//   backpressure   a per-destination aggregation buffer that has held
//                  messages for >= backpressure_deadline (far past the
//                  flush timeout: the flush path is wedged);
//   stalled-link   a reliable link whose oldest unacked batch has not been
//                  acknowledged for >= stalled_link_deadline.
//
// Concurrency: observe() has exactly one caller (the monitor thread).
// Diagnoses live in a fixed array published through a release-stored count;
// immutable fields (kind/subject/first_ns) are written before publication,
// fields that keep updating while a condition persists (last_ns, depth,
// seq range) are relaxed atomics so readers — quiet()'s post-mortem runs
// while the monitor thread is live — stay race-free without a lock.
//
// gravel-lint: hot-path
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace gravel::obs {

struct WatchdogConfig {
  /// Master switch for the watchdog duty of the monitor thread.
  bool enabled = true;

  /// Sampling cadence.
  std::chrono::microseconds period{5000};

  /// A queue with backlog must advance within this deadline.
  std::chrono::milliseconds no_progress_deadline{500};

  /// A per-destination buffer may hold messages at most this long. Must
  /// comfortably exceed ClusterConfig::flush_timeout, which bounds how long
  /// a healthy aggregator parks a partial buffer.
  std::chrono::milliseconds backpressure_deadline{1000};

  /// A reliable link's oldest unacked batch must be acknowledged within
  /// this deadline.
  std::chrono::milliseconds stalled_link_deadline{500};

  /// Diagnosis slots; one stall that persists updates its slot in place,
  /// so this bounds *distinct* stalled subjects, not observations.
  std::size_t max_diagnoses = 64;
};

enum class StallKind : std::uint8_t {
  kNoProgress = 0,
  kBackpressure = 1,
  kStalledLink = 2,
};

inline const char* stallKindName(StallKind k) noexcept {
  switch (k) {
    case StallKind::kNoProgress: return "no-progress";
    case StallKind::kBackpressure: return "backpressure";
    case StallKind::kStalledLink: return "stalled-link";
  }
  return "?";
}

/// One node's GPU-queue progress: reservations vs. slots routed.
struct QueueSample {
  std::uint32_t node = 0;
  std::uint64_t reserved = 0;
  std::uint64_t routed = 0;
};

/// One nonempty per-destination aggregation buffer. The feed
/// (SlotRouter::sampleBufferAges via Cluster::samplePipeline) enumerates
/// only resident, nonempty buffers and skips whole shards via the relaxed
/// non-empty hint, so a monitor tick costs O(open buffers) — flat in the
/// node count even at 4096+ simulated nodes (DESIGN.md §14), never an
/// O(N) sweep over destinations that were never messaged.
struct BufferSample {
  std::uint32_t node = 0;  ///< aggregator's node
  std::uint32_t dest = 0;
  std::uint64_t fill = 0;    ///< messages parked
  std::uint64_t age_ns = 0;  ///< time since the buffer last became nonempty
};

/// Circuit-breaker state of a reliable link, mirrored numerically so this
/// layer needn't see net::BreakerState (gravel_obs depends on gravel_common
/// only): 0 = closed, 1 = open, 2 = half-open.
inline const char* linkBreakerName(std::uint8_t b) noexcept {
  switch (b) {
    case 0: return "closed";
    case 1: return "open";
    case 2: return "half-open";
  }
  return "?";
}

/// One reliable link with unacked traffic (ReliableFabric::sendStates).
struct LinkSample {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t unacked = 0;
  std::uint64_t oldest_seq = 0;
  std::uint64_t next_seq = 0;
  std::uint32_t retries = 0;
  std::uint64_t stalled_ns = 0;  ///< time the oldest unacked seq has stood
  std::uint8_t breaker = 0;      ///< linkBreakerName() code (degrade policy)
  std::uint32_t epoch = 0;       ///< destination node's membership epoch
};

/// One monitor tick's view of the runtime.
struct WatchdogSample {
  std::uint64_t now_ns = 0;
  std::vector<QueueSample> queues;
  std::vector<BufferSample> buffers;  ///< nonempty buffers only
  std::vector<LinkSample> links;      ///< links with unacked traffic only
};

/// Reader-facing diagnosis record (plain copy of a live slot).
struct Diagnosis {
  StallKind kind = StallKind::kNoProgress;
  std::uint32_t node = 0;  ///< queue owner / buffer owner / link source
  std::uint32_t dest = 0;  ///< buffer or link destination (no-progress: n/a)
  std::uint64_t depth = 0; ///< backlog slots / parked msgs / unacked batches
  std::uint64_t first_ns = 0;  ///< when the stall condition began
  std::uint64_t last_ns = 0;   ///< latest tick it still held
  std::uint64_t oldest_seq = 0;  ///< stalled-link: owed range [oldest, next)
  std::uint64_t next_seq = 0;
  std::uint32_t retries = 0;
  std::uint8_t breaker = 0;  ///< stalled-link: linkBreakerName() code
  std::uint32_t epoch = 0;   ///< stalled-link: dest's membership epoch
  bool open = true;  ///< still failing at the most recent observe()

  std::uint64_t duration_ns() const noexcept {
    return last_ns >= first_ns ? last_ns - first_ns : 0;
  }
};

class Watchdog {
 public:
  explicit Watchdog(const WatchdogConfig& config)
      : config_(config),
        capacity_(config.max_diagnoses),
        slots_(std::make_unique<Slot[]>(config.max_diagnoses)) {}

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  const WatchdogConfig& config() const noexcept { return config_; }

  /// Feeds one tick. Single writer: the monitor thread.
  void observe(const WatchdogSample& s) {
    observeQueues(s);
    observeBuffers(s);
    observeLinks(s);
  }

  /// All diagnoses so far (open and resolved), oldest first. Safe from any
  /// thread while observe() runs.
  // gravel-analyze: cold — post-mortem/collector reader.
  std::vector<Diagnosis> diagnoses() const {
    // pairs-with: watchdog.count
    const std::size_t n = count_.load(std::memory_order_acquire);
    std::vector<Diagnosis> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(slots_[i].read());
    return out;
  }

  /// Subjects that stalled after the diagnosis table filled.
  std::uint64_t overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }

  /// One-line post-mortem, appended to the quiet-deadline error message.
  // gravel-analyze: cold — post-mortem formatter.
  std::string describe() const {
    const std::vector<Diagnosis> all = diagnoses();
    std::ostringstream os;
    if (all.empty()) {
      os << "watchdog: no diagnoses";
      return os.str();
    }
    os << "watchdog: " << all.size() << " diagnosis(es)";
    const std::uint64_t ovf = overflow();
    if (ovf != 0) os << " (+" << ovf << " overflowed)";
    for (const Diagnosis& d : all) {
      os << "; [" << stallKindName(d.kind) << "]";
      switch (d.kind) {
        case StallKind::kNoProgress:
          os << " gpu-queue node " << d.node << ": " << d.depth
             << " slot(s) reserved but unrouted";
          break;
        case StallKind::kBackpressure:
          os << " agg buffer node " << d.node << " -> dest " << d.dest
             << ": " << d.depth << " message(s) parked";
          break;
        case StallKind::kStalledLink:
          os << " link " << d.node << "->" << d.dest << ": " << d.depth
             << " unacked, seq [" << d.oldest_seq << "," << d.next_seq
             << "), " << d.retries << " retransmit(s), breaker "
             << linkBreakerName(d.breaker) << ", dest epoch " << d.epoch;
          break;
      }
      os << " for " << d.duration_ns() / 1000000 << " ms"
         << (d.open ? "" : " (recovered)");
    }
    return os.str();
  }

  /// Publishes diagnosis counters/gauges into the registry.
  // gravel-analyze: cold — collector cadence.
  void publish(MetricsRegistry& metrics) const {
    const std::vector<Diagnosis> all = diagnoses();
    metrics.setCounter("watchdog.diagnoses", "", all.size() + overflow());
    for (const Diagnosis& d : all) {
      std::string name;
      std::string label;
      switch (d.kind) {
        case StallKind::kNoProgress:
          name = "watchdog.no_progress_ms";
          label = "node=" + std::to_string(d.node);
          break;
        case StallKind::kBackpressure:
          name = "watchdog.backpressure_ms";
          label = "node=" + std::to_string(d.node) +
                  ",dest=" + std::to_string(d.dest);
          break;
        case StallKind::kStalledLink:
          name = "watchdog.stalled_link_ms";
          label = "link=" + std::to_string(d.node) + "->" +
                  std::to_string(d.dest);
          break;
      }
      metrics.setGauge(name, label, double(d.duration_ns()) / 1e6);
    }
  }

 private:
  /// Internal diagnosis slot. kind/node/dest/first_ns are written before
  /// the slot index is release-published and never change; the rest keep
  /// updating (relaxed) while the condition persists.
  struct Slot {
    StallKind kind = StallKind::kNoProgress;
    std::uint32_t node = 0;
    std::uint32_t dest = 0;
    std::uint64_t first_ns = 0;
    atomic<std::uint64_t> depth{0};
    atomic<std::uint64_t> last_ns{0};
    atomic<std::uint64_t> oldest_seq{0};
    atomic<std::uint64_t> next_seq{0};
    atomic<std::uint32_t> retries{0};
    atomic<std::uint8_t> breaker{0};
    atomic<std::uint32_t> epoch{0};
    atomic<bool> open{true};

    Diagnosis read() const {
      Diagnosis d;
      d.kind = kind;
      d.node = node;
      d.dest = dest;
      d.first_ns = first_ns;
      d.depth = depth.load(std::memory_order_relaxed);
      d.last_ns = last_ns.load(std::memory_order_relaxed);
      d.oldest_seq = oldest_seq.load(std::memory_order_relaxed);
      d.next_seq = next_seq.load(std::memory_order_relaxed);
      d.retries = retries.load(std::memory_order_relaxed);
      d.breaker = breaker.load(std::memory_order_relaxed);
      d.epoch = epoch.load(std::memory_order_relaxed);
      d.open = open.load(std::memory_order_relaxed);
      return d;
    }
  };

  /// Writer-private per-queue progress memory.
  struct QueueTrack {
    bool init = false;
    std::uint64_t routed = 0;
    std::uint64_t change_ns = 0;  ///< last time routed advanced (or idle)
    int slot = -1;                ///< open diagnosis slot, -1 if none
  };

  /// Writer-private per-subject open-diagnosis memory for conditions whose
  /// samples only list failing subjects (buffers, links).
  struct SubjectTrack {
    int slot = -1;
    std::uint64_t seen_tick = 0;
  };

  void observeQueues(const WatchdogSample& s) {
    const auto deadline =
        std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          config_.no_progress_deadline)
                          .count());
    for (const QueueSample& q : s.queues) {
      QueueTrack& t = queues_[q.node];
      const std::uint64_t backlog =
          q.reserved > q.routed ? q.reserved - q.routed : 0;
      if (!t.init || q.routed != t.routed || backlog == 0) {
        // Progress (or nothing owed): remember the tick, close any stall.
        t.init = true;
        t.routed = q.routed;
        t.change_ns = s.now_ns;
        closeSlot(t.slot);
        continue;
      }
      if (s.now_ns - t.change_ns < deadline) continue;
      if (t.slot < 0)
        t.slot = openSlot(StallKind::kNoProgress, q.node, 0, t.change_ns);
      updateSlot(t.slot, s.now_ns, backlog, 0, 0, 0);
    }
  }

  void observeBuffers(const WatchdogSample& s) {
    ++tick_;
    const auto deadline =
        std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          config_.backpressure_deadline)
                          .count());
    for (const BufferSample& b : s.buffers) {
      if (b.age_ns < deadline) continue;
      SubjectTrack& t =
          buffers_[(std::uint64_t(b.node) << 32) | b.dest];
      t.seen_tick = tick_;
      if (t.slot < 0)
        t.slot = openSlot(StallKind::kBackpressure, b.node, b.dest,
                          s.now_ns - b.age_ns);
      updateSlot(t.slot, s.now_ns, b.fill, 0, 0, 0);
    }
    closeUnseen(buffers_);
  }

  void observeLinks(const WatchdogSample& s) {
    const auto deadline =
        std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          config_.stalled_link_deadline)
                          .count());
    for (const LinkSample& l : s.links) {
      if (l.unacked == 0 || l.stalled_ns < deadline) continue;
      SubjectTrack& t = links_[(std::uint64_t(l.src) << 32) | l.dst];
      t.seen_tick = tick_;
      if (t.slot < 0)
        t.slot = openSlot(StallKind::kStalledLink, l.src, l.dst,
                          s.now_ns - l.stalled_ns);
      updateSlot(t.slot, s.now_ns, l.unacked, l.oldest_seq, l.next_seq,
                 l.retries, l.breaker, l.epoch);
    }
    closeUnseen(links_);
  }

  int openSlot(StallKind kind, std::uint32_t node, std::uint32_t dest,
               std::uint64_t first_ns) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n >= capacity_) {
      overflow_.fetch_add(1, std::memory_order_relaxed);
      return -1;
    }
    Slot& slot = slots_[n];
    slot.kind = kind;
    slot.node = node;
    slot.dest = dest;
    slot.first_ns = first_ns;
    slot.open.store(true, std::memory_order_relaxed);
    count_.store(n + 1, std::memory_order_release);  // pairs-with: watchdog.count
    return int(n);
  }

  void updateSlot(int i, std::uint64_t now_ns, std::uint64_t depth,
                  std::uint64_t oldest, std::uint64_t next,
                  std::uint32_t retries, std::uint8_t breaker = 0,
                  std::uint32_t epoch = 0) {
    if (i < 0) return;
    Slot& slot = slots_[std::size_t(i)];
    slot.last_ns.store(now_ns, std::memory_order_relaxed);
    slot.depth.store(depth, std::memory_order_relaxed);
    slot.oldest_seq.store(oldest, std::memory_order_relaxed);
    slot.next_seq.store(next, std::memory_order_relaxed);
    slot.retries.store(retries, std::memory_order_relaxed);
    slot.breaker.store(breaker, std::memory_order_relaxed);
    slot.epoch.store(epoch, std::memory_order_relaxed);
  }

  void closeSlot(int& i) {
    if (i < 0) return;
    slots_[std::size_t(i)].open.store(false, std::memory_order_relaxed);
    i = -1;
  }

  void closeUnseen(std::map<std::uint64_t, SubjectTrack>& tracks) {
    for (auto& [key, t] : tracks)
      if (t.seen_tick != tick_) closeSlot(t.slot);
  }

  WatchdogConfig config_;
  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  atomic<std::size_t> count_{0};
  atomic<std::uint64_t> overflow_{0};

  // Writer-private (monitor-thread) detection state.
  std::uint64_t tick_ = 0;
  std::map<std::uint32_t, QueueTrack> queues_;
  std::map<std::uint64_t, SubjectTrack> buffers_;
  std::map<std::uint64_t, SubjectTrack> links_;
};

/// Serializes the diagnosis table (gravel_watchdog.json / CI artifact).
// gravel-analyze: cold
inline void writeWatchdogJson(std::ostream& os, const Watchdog& wd) {
  JsonWriter w(os);
  w.beginObject();
  w.kv("overflow", wd.overflow());
  w.key("diagnoses").beginArray();
  for (const Diagnosis& d : wd.diagnoses()) {
    w.beginObject();
    w.kv("kind", stallKindName(d.kind));
    w.kv("node", std::uint64_t{d.node});
    w.kv("dest", std::uint64_t{d.dest});
    w.kv("depth", d.depth);
    w.kv("first_ns", d.first_ns);
    w.kv("last_ns", d.last_ns);
    w.kv("oldest_seq", d.oldest_seq);
    w.kv("next_seq", d.next_seq);
    w.kv("retries", std::uint64_t{d.retries});
    w.kv("breaker", linkBreakerName(d.breaker));
    w.kv("epoch", std::uint64_t{d.epoch});
    w.kv("open", d.open);
    w.endObject();
  }
  w.endArray();
  w.endObject();
}

}  // namespace gravel::obs
