// Online latency attribution: consumes sampled TraceEvent stage pairs
// (enqueue -> aggregate -> flush -> wire-send -> deliver -> resolve) and
// maintains per-transition and end-to-end Pow2Histograms, overall and keyed
// by (destination node, message kind). This is the piece that answers
// "which pipeline stage dominates p99?" (ISSUE 5) — the registry publishes
// its histograms and percentile gauges, tools/latency_report.py renders the
// table and names the bottleneck, and ClusterRunStats carries the summary
// into the benches.
//
// The engine is *online*: ingest(tracer) consumes only the events appended
// since the previous call (per-buffer cursors over the release-published
// counts), so the monitor thread can tick it continuously during a run.
// Events for one trace ID arrive unordered across buffers (each recording
// thread owns its own); pairs are matched whenever both endpoints of a
// transition are present, each transition counted at most once per
// incarnation. Trace IDs are 16-bit and wrap: an enqueue event for an id
// with an existing enqueue starts a fresh incarnation (the rare in-flight
// collision mis-attributes one sample, which percentile math shrugs off).
//
// Single-owner by design: nothing here locks — the owner (Cluster) guards
// ingest/read with its own mutex, keeping this file clean under the
// hot-path lint it is listed in.
//
// gravel-lint: hot-path
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/stage.hpp"
#include "obs/trace.hpp"

namespace gravel::obs {

/// Label for the transition out of stage `t` ("enqueue_to_aggregate", ...),
/// matching the trace.latency_ns.* metric naming.
inline std::string transitionLabel(int t) {
  return std::string(stageName(Stage(t))) + "_to_" +
         stageName(Stage(t + 1));
}

class LatencyAttribution {
 public:
  /// Transitions between adjacent message stages.
  static constexpr int kTransitions = kMessageStages - 1;

  /// Per-transition + end-to-end histogram bundle.
  struct Hists {
    Pow2Histogram stage[kTransitions];
    Pow2Histogram e2e;
  };

  /// Percentile roll-up for ClusterRunStats and quick assertions.
  struct Summary {
    double stage_p50_ns[kTransitions] = {};
    double stage_p99_ns[kTransitions] = {};
    std::uint64_t stage_count[kTransitions] = {};
    double e2e_p50_ns = 0;
    double e2e_p99_ns = 0;
    std::uint64_t e2e_count = 0;
    int bottleneck = -1;  ///< transition with the largest p99, -1 if none
  };

  /// Consumes every event appended to the tracer's buffers since the last
  /// ingest. Safe concurrent with recording threads (reads below the
  /// release-published counts); callers serialize ingest/read themselves.
  // gravel-analyze: cold — monitor-thread cadence, not a record site.
  void ingest(const Tracer& tracer) {
    for (const TraceBuffer* b : tracer.buffers()) {
      std::size_t& cursor = cursors_[b];
      const std::size_t n = b->size();
      for (; cursor < n; ++cursor) consume((*b)[cursor]);
    }
  }

  /// Ingests one event directly (unit tests drive this with synthetic
  /// timestamps; ingest() is a loop over it).
  void consume(const TraceEvent& e) {
    if (e.stage == Stage::kGauge || e.id == 0) return;
    const int s = int(e.stage);
    if (s >= kMessageStages) return;
    Open& o = open_[e.id];
    if (e.stage == Stage::kEnqueue && (o.seen & 1u) != 0)
      o = Open{};  // id wrapped: a fresh incarnation of this trace ID
    if ((o.seen & (1u << s)) != 0) return;  // duplicate (retransmit): keep 1st
    o.ts[s] = e.ts_ns;
    o.seen |= std::uint8_t(1u << s);
    o.dest = e.aux;
    o.kind = e.kind;
    Hists& keyed = keyed_[{o.dest, o.kind}];
    tryPair(o, s - 1, keyed);
    tryPair(o, s, keyed);
    constexpr std::uint8_t kEnds =
        (1u << int(Stage::kEnqueue)) | (1u << int(Stage::kResolve));
    if ((o.seen & kEnds) == kEnds && (o.paired & kE2eBit) == 0) {
      o.paired |= kE2eBit;
      const std::uint64_t a = o.ts[int(Stage::kEnqueue)];
      const std::uint64_t b = o.ts[int(Stage::kResolve)];
      if (b >= a) {
        total_.e2e.add(b - a);
        keyed.e2e.add(b - a);
      }
    }
  }

  const Hists& overall() const noexcept { return total_; }
  const std::map<std::pair<std::uint16_t, std::uint8_t>, Hists>& keyed()
      const noexcept {
    return keyed_;
  }

  Summary summary() const {
    Summary s;
    double worst = -1.0;
    for (int t = 0; t < kTransitions; ++t) {
      s.stage_count[t] = total_.stage[t].total();
      if (s.stage_count[t] == 0) continue;
      s.stage_p50_ns[t] = total_.stage[t].quantile(0.50);
      s.stage_p99_ns[t] = total_.stage[t].quantile(0.99);
      if (s.stage_p99_ns[t] > worst) {
        worst = s.stage_p99_ns[t];
        s.bottleneck = t;
      }
    }
    s.e2e_count = total_.e2e.total();
    if (s.e2e_count != 0) {
      s.e2e_p50_ns = total_.e2e.quantile(0.50);
      s.e2e_p99_ns = total_.e2e.quantile(0.99);
    }
    return s;
  }

  /// Publishes histograms + percentile gauges into the registry:
  ///   lat.stage_ns{stage=...}            pooled per-transition histograms
  ///   lat.stage_p50_ns / lat.stage_p99_ns{stage=...}
  ///   lat.e2e_ns / lat.e2e_p50_ns / lat.e2e_p99_ns
  ///   lat.stage_ns{dest=D,kind=K,stage=...}, lat.e2e_ns{dest=D,kind=K}
  ///   lat.bottleneck_stage               index of the worst transition
  // gravel-analyze: cold — collector cadence.
  void publish(MetricsRegistry& metrics) const {
    for (int t = 0; t < kTransitions; ++t) {
      if (total_.stage[t].total() == 0) continue;
      const std::string label = "stage=" + transitionLabel(t);
      metrics.setHistogram("lat.stage_ns", label, total_.stage[t]);
      metrics.setGauge("lat.stage_p50_ns", label,
                       total_.stage[t].quantile(0.50));
      metrics.setGauge("lat.stage_p99_ns", label,
                       total_.stage[t].quantile(0.99));
    }
    if (total_.e2e.total() != 0) {
      metrics.setHistogram("lat.e2e_ns", "", total_.e2e);
      metrics.setGauge("lat.e2e_p50_ns", "", total_.e2e.quantile(0.50));
      metrics.setGauge("lat.e2e_p99_ns", "", total_.e2e.quantile(0.99));
    }
    const Summary s = summary();
    if (s.bottleneck >= 0)
      metrics.setGauge("lat.bottleneck_stage", "", double(s.bottleneck));
    for (const auto& [key, h] : keyed_) {
      const std::string kl = "dest=" + std::to_string(key.first) +
                             ",kind=" + messageKindName(key.second);
      for (int t = 0; t < kTransitions; ++t)
        if (h.stage[t].total() != 0)
          metrics.setHistogram("lat.stage_ns",
                               kl + ",stage=" + transitionLabel(t),
                               h.stage[t]);
      if (h.e2e.total() != 0) metrics.setHistogram("lat.e2e_ns", kl, h.e2e);
    }
  }

 private:
  static constexpr std::uint8_t kE2eBit = 1u << 7;

  /// One in-flight sampled message: earliest timestamp per stage, which
  /// stages were seen, which transitions (and e2e, bit 7) were counted.
  struct Open {
    std::uint64_t ts[kMessageStages] = {};
    std::uint8_t seen = 0;
    std::uint8_t paired = 0;
    std::uint16_t dest = 0;
    std::uint8_t kind = 0;
  };

  /// Counts transition t (stage t -> t+1) once both endpoints are present.
  void tryPair(Open& o, int t, Hists& keyed) {
    if (t < 0 || t >= kTransitions) return;
    const auto need = std::uint8_t((1u << t) | (1u << (t + 1)));
    if ((o.seen & need) != need || (o.paired & (1u << t)) != 0) return;
    o.paired |= std::uint8_t(1u << t);
    // A later stage timestamped before an earlier one means the two reads
    // of the steady clock raced on different cores at sub-tick resolution;
    // skip the sample rather than record a bogus huge unsigned delta.
    if (o.ts[t + 1] < o.ts[t]) return;
    const std::uint64_t d = o.ts[t + 1] - o.ts[t];
    total_.stage[t].add(d);
    keyed.stage[t].add(d);
  }

  Hists total_;
  std::map<std::pair<std::uint16_t, std::uint8_t>, Hists> keyed_;
  std::map<const TraceBuffer*, std::size_t> cursors_;
  std::map<std::uint32_t, Open> open_;
};

}  // namespace gravel::obs
