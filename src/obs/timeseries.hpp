// Continuous telemetry: windowed time-series over the pull-side metrics
// registry (ISSUE 7 tentpole).
//
// Everything the registry holds is an *absolute* value published at
// collection points; a run watched live needs *rates* — what changed in the
// last 250 ms, not since process start. The TimeSeries collector takes
// MetricsSnapshot::delta() windows on the monitor thread's cadence into a
// bounded in-memory ring, tagging each window with wall/mono timestamps and
// the state transitions that happened inside it (membership epoch changes,
// circuit-breaker transitions) plus the watchdog diagnoses open at window
// end. The status server serves the ring to gravel-top; the Cluster dumps
// it as schema-versioned gravel_timeseries.json at exit (GRAVEL_TIMESERIES=1
// or config.timeseries.enabled).
//
// Layering: gravel_obs depends on gravel_common only, so this file cannot
// see Membership/ReliableFabric. The runtime flattens what the collector
// needs into plain sample structs (HealthSample/BreakerSample), exactly as
// the watchdog does; change *detection* then lives here, as a pure function
// of consecutive sample vectors.
//
// Concurrency: collect() has exactly one caller (the monitor thread). The
// ring is guarded by a mutex — at a 250 ms cadence the collector and the
// status server's reads are nowhere near a hot path.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/atomic.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"

namespace gravel::obs {

/// gravel_timeseries.json schema version (bumped like the BENCH schema:
/// consumers accept older versions, the writer always emits the latest).
inline constexpr int kTimeSeriesSchemaVersion = 1;

/// Collector knobs, embedded in ClusterConfig as `config.timeseries`.
struct TimeSeriesConfig {
  /// Master switch for the collector duty of the monitor thread. The
  /// GRAVEL_TIMESERIES / GRAVEL_STATUS_PORT environment variables turn this
  /// on at Cluster construction (see README "Watching a live run").
  bool enabled = false;

  /// Collection cadence: one window per period.
  std::chrono::milliseconds period{250};

  /// Windows retained in memory. At the default cadence 960 windows are
  /// four minutes of history; older windows are dropped (counted, reported
  /// in the JSON dump) rather than growing without bound.
  std::size_t capacity = 960;

  /// Drop zero-delta counter/stat/histogram rows from each window. Keeps
  /// idle windows tiny; gauges always survive (their current level *is*
  /// the signal). Disable for exhaustive dumps.
  bool prune_zero_deltas = true;
};

/// One node's membership view, flattened by the runtime (mirrors
/// rt::NodeHealth numerically: 0 alive, 1 suspect, 2 dead, 3 recovered).
struct HealthSample {
  std::uint32_t node = 0;
  std::uint8_t health = 0;
  std::uint32_t epoch = 0;
};

inline const char* healthSampleName(std::uint8_t h) noexcept {
  switch (h) {
    case 0: return "alive";
    case 1: return "suspect";
    case 2: return "dead";
    case 3: return "recovered";
  }
  return "?";
}

/// One link's circuit-breaker view (state codes as linkBreakerName()).
struct BreakerSample {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t state = 0;
  std::uint32_t era = 0;
};

/// A membership transition observed between two collection ticks.
struct EpochChange {
  std::uint32_t node = 0;
  std::uint8_t from_health = 0;
  std::uint8_t to_health = 0;
  std::uint32_t epoch = 0;  ///< epoch at window end
};

/// A breaker transition observed between two collection ticks.
struct BreakerChange {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t from_state = 0;
  std::uint8_t to_state = 0;
  std::uint32_t era = 0;  ///< era at window end
};

/// One collection window: what changed between two monitor ticks.
struct TimeSeriesWindow {
  std::uint64_t seq = 0;          ///< monotonically increasing window index
  std::uint64_t wall_ms = 0;      ///< system_clock at window end (UTC ms)
  std::uint64_t mono_ns_start = 0; ///< tracer-epoch ns, window open
  std::uint64_t mono_ns_end = 0;   ///< tracer-epoch ns, window close
  MetricsSnapshot delta;           ///< windowed registry delta
  std::vector<EpochChange> epoch_changes;
  std::vector<BreakerChange> breaker_changes;
  std::vector<Diagnosis> watchdog;  ///< diagnoses open at window end

  double seconds() const noexcept {
    return mono_ns_end > mono_ns_start
               ? double(mono_ns_end - mono_ns_start) / 1e9
               : 0.0;
  }
  /// Windowed counter delta as a rate; 0 when the metric is absent or the
  /// window has zero width.
  double ratePerSec(const std::string& name,
                    const std::string& labels = "") const {
    const double s = seconds();
    return s > 0 ? delta.number(name, labels) / s : 0.0;
  }
};

/// Bounded windowed-delta collector. Single writer (the monitor thread);
/// any thread may read windows()/writeJson().
class TimeSeries {
 public:
  explicit TimeSeries(const TimeSeriesConfig& config) : config_(config) {}

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  const TimeSeriesConfig& config() const noexcept { return config_; }

  /// Takes one window: the delta of `snap` against the previous collection,
  /// annotated with membership/breaker transitions since the previous tick
  /// and the currently-open watchdog diagnoses. The first call establishes
  /// the baseline *and* emits a window (delta against an empty snapshot =
  /// absolute values), so a short run still produces at least one window.
  void collect(const MetricsSnapshot& snap, std::uint64_t wall_ms,
               std::uint64_t mono_ns, const std::vector<HealthSample>& health,
               const std::vector<BreakerSample>& breakers,
               std::vector<Diagnosis> diagnoses) {
    TimeSeriesWindow w;
    w.wall_ms = wall_ms;
    w.mono_ns_start = baselineNs_;
    w.mono_ns_end = mono_ns;
    w.delta = snap.delta(baseline_);
    if (config_.prune_zero_deltas) prune(w.delta);
    diffHealth(health, w.epoch_changes);
    diffBreakers(breakers, w.breaker_changes);
    w.watchdog = std::move(diagnoses);
    baseline_ = snap;
    baselineNs_ = mono_ns;

    gravel::lock_guard lk(mutex_);
    w.seq = nextSeq_++;
    ring_.push_back(std::move(w));
    while (ring_.size() > config_.capacity) {
      ring_.pop_front();
      ++dropped_;
    }
  }

  /// Copy of the retained windows, oldest first.
  std::vector<TimeSeriesWindow> windows() const {
    gravel::lock_guard lk(mutex_);
    return {ring_.begin(), ring_.end()};
  }

  /// The most recent `n` windows, oldest first.
  std::vector<TimeSeriesWindow> lastWindows(std::size_t n) const {
    gravel::lock_guard lk(mutex_);
    const std::size_t take = ring_.size() < n ? ring_.size() : n;
    return {ring_.end() - std::ptrdiff_t(take), ring_.end()};
  }

  std::uint64_t droppedWindows() const {
    gravel::lock_guard lk(mutex_);
    return dropped_;
  }

  std::size_t size() const {
    gravel::lock_guard lk(mutex_);
    return ring_.size();
  }

  /// gravel_timeseries.json: schema-versioned, windows oldest first.
  void writeJson(std::ostream& os) const {
    const std::vector<TimeSeriesWindow> all = windows();
    std::uint64_t dropped;
    {
      gravel::lock_guard lk(mutex_);
      dropped = dropped_;
    }
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema_version", std::int64_t{kTimeSeriesSchemaVersion});
    w.kv("kind", "gravel-timeseries");
    w.kv("period_ms", std::int64_t(config_.period.count()));
    w.kv("capacity", std::uint64_t(config_.capacity));
    w.kv("dropped_windows", dropped);
    w.key("windows").beginArray();
    for (const TimeSeriesWindow& win : all) writeWindow(w, win);
    w.endArray();
    w.endObject();
  }

 private:
  static void writeWindow(JsonWriter& w, const TimeSeriesWindow& win) {
    w.beginObject();
    w.kv("seq", win.seq);
    w.kv("wall_ms", win.wall_ms);
    w.kv("mono_ns_start", win.mono_ns_start);
    w.kv("mono_ns_end", win.mono_ns_end);
    w.key("epoch_changes").beginArray();
    for (const EpochChange& e : win.epoch_changes) {
      w.beginObject();
      w.kv("node", std::uint64_t{e.node});
      w.kv("from", healthSampleName(e.from_health));
      w.kv("to", healthSampleName(e.to_health));
      w.kv("epoch", std::uint64_t{e.epoch});
      w.endObject();
    }
    w.endArray();
    w.key("breaker_changes").beginArray();
    for (const BreakerChange& b : win.breaker_changes) {
      w.beginObject();
      w.kv("src", std::uint64_t{b.src});
      w.kv("dst", std::uint64_t{b.dst});
      w.kv("from", linkBreakerName(b.from_state));
      w.kv("to", linkBreakerName(b.to_state));
      w.kv("era", std::uint64_t{b.era});
      w.endObject();
    }
    w.endArray();
    w.key("watchdog").beginArray();
    for (const Diagnosis& d : win.watchdog) {
      w.beginObject();
      w.kv("kind", stallKindName(d.kind));
      w.kv("node", std::uint64_t{d.node});
      w.kv("dest", std::uint64_t{d.dest});
      w.kv("depth", d.depth);
      w.kv("open", d.open);
      w.endObject();
    }
    w.endArray();
    w.key("metrics");
    win.delta.writeMetricsArray(w);
    w.endObject();
  }

  /// Windowed counters/stats/histograms with a zero delta carry no signal;
  /// drop them so an idle window serializes to a handful of gauges.
  static void prune(MetricsSnapshot& s) {
    for (auto it = s.metrics.begin(); it != s.metrics.end();) {
      const MetricValue& m = it->second;
      const bool dead = m.kind != MetricKind::kGauge && m.count == 0 &&
                        m.value == 0.0;
      it = dead ? s.metrics.erase(it) : ++it;
    }
  }

  void diffHealth(const std::vector<HealthSample>& now,
                  std::vector<EpochChange>& out) {
    for (const HealthSample& h : now) {
      auto it = lastHealth_.find(h.node);
      if (it == lastHealth_.end()) {
        // First sight: only an abnormal state is worth announcing — a
        // collector started mid-incident must still show it.
        if (h.health != 0 || h.epoch != 0)
          out.push_back({h.node, 0, h.health, h.epoch});
      } else if (it->second.health != h.health ||
                 it->second.epoch != h.epoch) {
        out.push_back({h.node, it->second.health, h.health, h.epoch});
      }
      lastHealth_[h.node] = h;
    }
  }

  void diffBreakers(const std::vector<BreakerSample>& now,
                    std::vector<BreakerChange>& out) {
    for (const BreakerSample& b : now) {
      const std::uint64_t key = (std::uint64_t(b.src) << 32) | b.dst;
      auto it = lastBreaker_.find(key);
      if (it == lastBreaker_.end()) {
        if (b.state != 0 || b.era != 0)
          out.push_back({b.src, b.dst, 0, b.state, b.era});
      } else if (it->second.state != b.state || it->second.era != b.era) {
        out.push_back({b.src, b.dst, it->second.state, b.state, b.era});
      }
      lastBreaker_[key] = b;
    }
  }

  TimeSeriesConfig config_;

  // Writer-private (monitor-thread) delta/diff state.
  MetricsSnapshot baseline_;
  std::uint64_t baselineNs_ = 0;
  std::map<std::uint32_t, HealthSample> lastHealth_;
  std::map<std::uint64_t, BreakerSample> lastBreaker_;

  mutable gravel::mutex mutex_{"TimeSeries::mutex_"};
  std::deque<TimeSeriesWindow> ring_ GRAVEL_GUARDED_BY(mutex_);
  std::uint64_t nextSeq_ GRAVEL_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ GRAVEL_GUARDED_BY(mutex_) = 0;
};

}  // namespace gravel::obs
