// Always-on flight recorder: a lock-free per-thread ring of the last N
// trace events, independent of sampling. Where the sampled TraceBuffers
// answer "what is the statistical shape of this run", the flight recorder
// answers "what were the last things each thread did" — the question a
// post-mortem (quiet-deadline expiry, LinkFailureError, watchdog stall)
// actually asks. Bounded memory by construction: capacity * 32 bytes per
// recording thread, oldest events overwritten in place.
//
// Ring protocol (DESIGN.md §10): each ring has exactly one writer (its
// owning thread). record() is a relaxed load of the head, a plain 32-byte
// slot store, and a release store of head+1 — ~2 atomic ops, no RMW, no
// lock, no branch on occupancy. Dumpers acquire the head and read the last
// min(head, capacity) slots; when the ring has wrapped, the slot the writer
// is about to overwrite may be mid-store, so a wrapped snapshot skips the
// single oldest slot rather than risk a torn read. Thread registration is a
// CAS push onto an intrusive singly-linked list — the recorder never takes
// a mutex, so it is safe to mark this whole file hot-path.
//
// gravel-lint: hot-path
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/atomic.hpp"
#include "obs/json.hpp"
#include "obs/stage.hpp"

namespace gravel::obs {

/// Single-writer overwriting event ring. Capacity is rounded up to a power
/// of two so the head wraps with a mask, never a division.
class FlightRing {
 public:
  explicit FlightRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    events_ = std::make_unique<TraceEvent[]>(cap);
  }

  /// Owner-thread only: overwrite the oldest slot, publish the new head.
  void record(const TraceEvent& e) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    events_[h & mask_] = e;
    head_.store(h + 1, std::memory_order_release);  // pairs-with: flightrec.head
  }

  /// Events ever recorded (not clamped to capacity).
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);  // pairs-with: flightrec.head
  }

  std::size_t capacity() const noexcept { return std::size_t(mask_) + 1; }

  /// Copies the retained window, oldest first. Safe concurrent with the
  /// writer: slots strictly below the acquired head are fully published,
  /// and on a wrapped ring the single oldest slot — the one a live writer
  /// may be overwriting — is skipped (see the file comment).
  // gravel-analyze: cold — quiescent/dump-time reader, not a record site.
  std::vector<TraceEvent> snapshot() const {
    // pairs-with: flightrec.head
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    std::uint64_t n = std::min<std::uint64_t>(h, mask_ + 1);
    if (h > mask_ + 1 && n > 0) --n;  // wrapped: oldest slot may be live
    std::vector<TraceEvent> out;
    out.reserve(std::size_t(n));
    for (std::uint64_t i = h - n; i < h; ++i)
      out.push_back(events_[i & mask_]);
    return out;
  }

 private:
  std::uint64_t mask_ = 0;
  std::unique_ptr<TraceEvent[]> events_;
  atomic<std::uint64_t> head_{0};
};

/// The per-cluster flight-record sink: one FlightRing per recording thread,
/// registered lock-free on first record. Zero capacity disables recording
/// entirely (record sites guard on enabled()).
class FlightRecorder {
 public:
  /// One thread's ring plus its track name. `default_name` is immutable
  /// after the node is CAS-published; a later nameThread() writes
  /// `custom_name` once and release-publishes `named` (first name wins), so
  /// dumpers never read a string mid-mutation.
  struct ThreadRing {
    explicit ThreadRing(std::size_t cap) : ring(cap) {}
    FlightRing ring;
    std::string default_name;
    std::string custom_name;
    atomic<bool> named{false};
    ThreadRing* next = nullptr;  ///< immutable after publication

    const std::string& name() const noexcept {
      // pairs-with: flightrec.named
      return named.load(std::memory_order_acquire) ? custom_name
                                                   : default_name;
    }
  };

  explicit FlightRecorder(std::size_t eventsPerThread)
      : capacity_(eventsPerThread), gen_(nextGeneration()) {}

  ~FlightRecorder() {
    ThreadRing* t = headPtr();
    while (t != nullptr) {
      ThreadRing* next = t->next;
      delete t;
      t = next;
    }
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const noexcept { return capacity_ != 0; }

  /// ~2 relaxed/release atomic ops after the calling thread's first record
  /// (which registers its ring via one CAS push).
  void record(const TraceEvent& e) { threadRing().ring.record(e); }

  /// Names the calling thread's ring. First name wins; renames are ignored
  /// so a dumper can never observe a string being rewritten.
  // gravel-analyze: cold — once-per-thread registration.
  void nameThread(const std::string& name) {
    if (!enabled()) return;
    ThreadRing& t = threadRing();
    if (t.named.load(std::memory_order_relaxed)) return;
    t.custom_name = name;
    t.named.store(true, std::memory_order_release);  // pairs-with: flightrec.named
  }

  /// All rings registered so far, registration order not guaranteed. Safe
  /// concurrent with writers (see FlightRing::snapshot for the caveat).
  // gravel-analyze: cold — dump-time walker.
  std::vector<const ThreadRing*> threads() const {
    std::vector<const ThreadRing*> out;
    for (const ThreadRing* t = headPtr(); t != nullptr; t = t->next)
      out.push_back(t);
    return out;
  }

 private:
  static std::uint64_t nextGeneration() noexcept {
    static atomic<std::uint64_t> gen{1};
    return gen.fetch_add(1, std::memory_order_relaxed);
  }

  // gravel-analyze: cold — once-per-thread slow path; record() amortizes
  // the one allocation + CAS over every later event.
  ThreadRing& threadRing() {
    // Generation (not pointer) keyed, like Tracer::threadBuffer: a new
    // recorder at a recycled address must not inherit a stale ring.
    thread_local std::uint64_t tlsGen = 0;
    thread_local ThreadRing* tlsRing = nullptr;
    if (tlsGen != gen_) {
      ThreadRing* t = new ThreadRing(capacity_);
      t->default_name =
          "thread-" +
          std::to_string(count_.fetch_add(1, std::memory_order_relaxed) + 1);
      std::uintptr_t expected = head_.load(std::memory_order_relaxed);
      do {
        t->next = reinterpret_cast<ThreadRing*>(expected);
      } while (!head_.compare_exchange_weak(
          expected, reinterpret_cast<std::uintptr_t>(t),
          // pairs-with: flightrec.registry
          std::memory_order_release, std::memory_order_relaxed));
      tlsRing = t;
      tlsGen = gen_;
    }
    return *tlsRing;
  }

  ThreadRing* headPtr() const noexcept {
    // pairs-with: flightrec.registry
    return reinterpret_cast<ThreadRing*>(head_.load(std::memory_order_acquire));
  }

  std::size_t capacity_;
  std::uint64_t gen_;
  // The intrusive list head, stored as uintptr_t: gravel::atomic's verify
  // shim arbitrates integral words only, and the flight recorder must stay
  // checkable under GRAVEL_VERIFY=1 like every other lock-free structure.
  atomic<std::uintptr_t> head_{0};
  atomic<std::uint64_t> count_{0};
};

/// Serializes the recorder as gravel_flightrec.json:
///   {"reason": ..., "now_ns": ..., "threads": [{"name", "recorded",
///    "capacity", "overwritten", "events": [{...}, ...]}, ...]}
/// Events carry ts_ns/stage/id/node/dest/value/kind; id 0 means the event
/// was recorded outside sampling (flight-only). `extra`, when given, is
/// invoked after the header keys to append caller-owned top-level keys
/// (the Cluster injects its membership/degraded-mode block this way — this
/// layer cannot see runtime types).
// gravel-analyze: cold
inline void writeFlightRecorderJson(
    std::ostream& os, const FlightRecorder& rec, const std::string& reason,
    std::uint64_t now_ns,
    const std::function<void(JsonWriter&)>& extra = nullptr) {
  JsonWriter w(os);
  w.beginObject();
  w.kv("reason", reason);
  w.kv("now_ns", now_ns);
  if (extra) extra(w);
  w.key("threads").beginArray();
  for (const FlightRecorder::ThreadRing* t : rec.threads()) {
    const std::uint64_t recorded = t->ring.recorded();
    const std::uint64_t cap = t->ring.capacity();
    w.beginObject();
    w.kv("name", t->name());
    w.kv("recorded", recorded);
    w.kv("capacity", cap);
    w.kv("overwritten", recorded > cap ? recorded - cap : 0);
    w.key("events").beginArray();
    for (const TraceEvent& e : t->ring.snapshot()) {
      w.beginObject();
      w.kv("ts_ns", e.ts_ns);
      w.kv("stage", stageName(e.stage));
      w.kv("id", std::uint64_t{e.id});
      w.kv("node", std::uint64_t{e.node});
      w.kv("dest", std::uint64_t{e.aux});
      w.kv("value", e.value);
      w.kv("kind", messageKindName(e.kind));
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.endObject();
}

}  // namespace gravel::obs
