// Continuous profiling layer (DESIGN.md §15): where does each runtime
// thread actually spend its cycles?
//
// The sampled tracer (§7) and the latency engine (§10) are message-centric:
// they can name the slowest pipeline *stage* but not the thread-side cost
// structure behind it. The profiler answers the complementary question with
// region-tagged scoped timers: every runtime loop (aggregator slot loop,
// router flush, timer-wheel scan, network receive, reliable retransmit,
// pool pump, monitor tick) brackets its work in a ScopedRegion, and the
// per-thread accumulators attribute wall nanoseconds to the *path* of
// nested regions — a collapsed call stack, exportable straight into
// flamegraph.pl / speedscope via tools/profile_report.py.
//
// Concurrency shape (flight-recorder style, §10): each thread owns its
// accumulator table outright — enter/exit touch only owner-written plain
// fields plus relaxed counters that a dumper may read concurrently, so
// there is no CAS, no RMW contention, and no locking anywhere on the
// record path. Thread registration is the same generation-keyed TLS +
// CAS push onto a uintptr_t intrusive head that the flight recorder uses,
// so the whole file stays verify-shim compatible and hot-path clean.
//
// Disabled cost: ScopedRegion's constructor is one relaxed bool load and a
// predicted not-taken branch; the destructor tests a plain member. Nothing
// else runs. bench_fig8_queue_tput's profiled column guards the *enabled*
// overhead instead (within 3% of disabled at default settings).
//
// gravel-lint: hot-path
#pragma once

#include <bit>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/atomic.hpp"
#include "obs/json.hpp"

namespace gravel::obs {

/// The instrumented loops. Values are the bytes of the packed path key, so
/// kNone must stay 0 and everything real must fit in a byte.
enum class Region : std::uint8_t {
  kNone = 0,
  kAggSlot,        // aggregator: one queue slot end to end
  kAggRoute,       // SlotRouter::routeStaged under kAggSlot
  kAggFlush,       // router flush callback: batch seal + fabric send
  kAggTimerScan,   // timer-wheel expiry scan
  kNetRecv,        // network thread: receive + resolve block
  kRelRetransmit,  // reliable-layer poll: ack/retransmit scan
  kPoolPump,       // cooperative runtime pool: one pump pass
  kMonitorTick,    // unified monitor thread: one duty tick
  kIdle,           // backoff/spin with no work claimed
  kBenchSlot,      // bench harness: produce/consume one slot (fig8)
  kCount
};

inline const char* regionName(Region r) noexcept {
  switch (r) {
    case Region::kNone: return "none";
    case Region::kAggSlot: return "agg.slot";
    case Region::kAggRoute: return "agg.route";
    case Region::kAggFlush: return "agg.flush";
    case Region::kAggTimerScan: return "agg.timer_scan";
    case Region::kNetRecv: return "net.recv";
    case Region::kRelRetransmit: return "rel.retransmit";
    case Region::kPoolPump: return "pool.pump";
    case Region::kMonitorTick: return "monitor.tick";
    case Region::kIdle: return "idle";
    case Region::kBenchSlot: return "bench.slot";
    case Region::kCount: break;
  }
  return "?";
}

struct ProfilerConfig {
  /// Master switch. Off by default: ScopedRegion then costs one relaxed
  /// load + one predicted branch and records nothing.
  bool enabled = false;
};

/// Per-thread cycle attribution over nested region paths.
///
/// A "path" is the stack of active regions packed one byte per level into a
/// uint64 (deepest region in the low byte), so a nested stack of up to
/// kMaxDepth regions is a single integer key into a small open-addressed
/// table. Self time (elapsed minus time attributed to children) and entry
/// counts accumulate per path; idle-leaf paths fund the idle side of the
/// duty-cycle split, everything else the busy side.
class Profiler {
 public:
  static constexpr int kMaxDepth = 8;    // packed key: one byte per level
  static constexpr int kMaxPaths = 64;   // distinct paths per thread
  static constexpr std::uint64_t kKeyMask = 0xff;

  /// One accumulator row: the packed path key plus its totals. The owner
  /// thread is the only writer; dumpers read concurrently, so the key is
  /// release-published and the totals are relaxed monotonic counters that
  /// may lag each other by one update — fine for a profile.
  struct PathSlot {
    atomic<std::uint64_t> key{0};
    atomic<std::uint64_t> count{0};
    atomic<std::uint64_t> self_ns{0};
  };

  /// Registered once per (thread, profiler) pair, owned by the profiler,
  /// reclaimed in its destructor — same lifetime discipline as the flight
  /// recorder's rings.
  struct ThreadState {
    explicit ThreadState(std::string name) : default_name(std::move(name)) {}

    ThreadState* next = nullptr;
    std::string default_name;
    std::string custom_name;
    atomic<bool> named{false};
    atomic<std::uint64_t> dropped{0};  // depth or table overflow
    PathSlot paths[kMaxPaths];

    // Owner-thread scratch: plain fields, never read by dumpers.
    int depth = 0;
    std::uint64_t packed = 0;
    std::uint64_t start_ns[kMaxDepth] = {};
    std::uint64_t child_ns[kMaxDepth] = {};
    int slot_memo[kMaxDepth] = {};

    const std::string& name() const noexcept {
      // pairs-with: prof.named
      return named.load(std::memory_order_acquire) ? custom_name
                                                   : default_name;
    }
  };

  explicit Profiler(const ProfilerConfig& config = {})
      : gen_(nextGeneration()) {
    enabled_.store(config.enabled, std::memory_order_relaxed);
  }

  ~Profiler() {
    ThreadState* t = headPtr();
    while (t != nullptr) {
      ThreadState* next = t->next;
      delete t;
      t = next;
    }
  }

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Flips recording. Regions already on a thread's stack when this turns
  /// on complete normally (their ScopedRegion was a no-op); new ones
  /// record.
  void setEnabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Names the calling thread's accumulator ("agg.3", "monitor"). First
  /// name wins, like FlightRecorder::nameThread.
  // gravel-analyze: cold — once-per-thread registration.
  void nameThread(const std::string& name) {
    ThreadState& t = threadState();
    if (t.named.load(std::memory_order_relaxed)) return;
    t.custom_name = name;
    t.named.store(true, std::memory_order_release);  // pairs-with: prof.named
  }

  /// Opens a region on the calling thread's stack. Returns the state so
  /// ScopedRegion's destructor can close without a second TLS lookup.
  ThreadState* enter(Region r) {
    ThreadState& t = threadState();
    if (t.depth < kMaxDepth) {
      t.packed = (t.packed << 8) | std::uint64_t(r);
      t.slot_memo[t.depth] = findSlot(t, t.packed);
      t.child_ns[t.depth] = 0;
      t.start_ns[t.depth] = nowNs();
    } else {
      t.dropped.fetch_add(1, std::memory_order_relaxed);
    }
    ++t.depth;
    return &t;
  }

  /// Closes the innermost region: attributes self time (elapsed minus
  /// children) to the path slot and rolls elapsed up into the parent's
  /// child accumulator.
  static void exit(ThreadState* t) noexcept {
    --t->depth;
    if (t->depth >= kMaxDepth) return;  // was a depth-overflow push
    const std::uint64_t elapsed = nowNs() - t->start_ns[t->depth];
    const int slot = t->slot_memo[t->depth];
    if (slot >= 0) {
      const std::uint64_t self =
          elapsed >= t->child_ns[t->depth] ? elapsed - t->child_ns[t->depth]
                                           : 0;
      t->paths[slot].count.fetch_add(1, std::memory_order_relaxed);
      t->paths[slot].self_ns.fetch_add(self, std::memory_order_relaxed);
    } else {
      t->dropped.fetch_add(1, std::memory_order_relaxed);
    }
    t->packed >>= 8;
    if (t->depth > 0) t->child_ns[t->depth - 1] += elapsed;
  }

  /// One flattened accumulator row for dumpers.
  struct PathSample {
    int depth = 0;
    Region stack[kMaxDepth] = {};  // stack[0] is the outermost region
    std::uint64_t count = 0;
    std::uint64_t self_ns = 0;
  };

  /// One thread's profile: name, duty split, and its path table.
  struct ThreadSample {
    std::string name;
    std::uint64_t busy_ns = 0;
    std::uint64_t idle_ns = 0;
    std::uint64_t dropped = 0;
    std::vector<PathSample> paths;
  };

  /// Copies every registered thread's accumulators. Safe concurrent with
  /// writers: keys are acquire-read, totals are relaxed monotonic (a row
  /// may be one update stale).
  // gravel-analyze: cold — dump-time walker.
  std::vector<ThreadSample> sample() const {
    std::vector<ThreadSample> out;
    for (const ThreadState* t = headPtr(); t != nullptr; t = t->next) {
      ThreadSample s;
      s.name = t->name();
      s.dropped = t->dropped.load(std::memory_order_relaxed);
      for (const PathSlot& p : t->paths) {
        // pairs-with: prof.slotkey
        const std::uint64_t key = p.key.load(std::memory_order_acquire);
        if (key == 0) continue;
        PathSample row;
        row.count = p.count.load(std::memory_order_relaxed);
        row.self_ns = p.self_ns.load(std::memory_order_relaxed);
        row.depth = (64 - std::countl_zero(key) + 7) / 8;
        for (int level = 0; level < row.depth; ++level)
          row.stack[level] = Region(
              (key >> (8 * (row.depth - 1 - level))) & kKeyMask);
        const Region leaf = row.stack[row.depth - 1];
        (leaf == Region::kIdle ? s.idle_ns : s.busy_ns) += row.self_ns;
        s.paths.push_back(row);
      }
      out.push_back(std::move(s));
    }
    return out;
  }

  static std::uint64_t nowNs() noexcept {
    return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now()
                                 .time_since_epoch())
                             .count());
  }

 private:
  static std::uint64_t nextGeneration() noexcept {
    static atomic<std::uint64_t> gen{1};
    return gen.fetch_add(1, std::memory_order_relaxed);
  }

  // gravel-analyze: cold — once-per-thread slow path; enter() amortizes
  // the one allocation + CAS over every later region.
  ThreadState& threadState() {
    // Generation-keyed like FlightRecorder::threadRing: a new profiler at
    // a recycled address must not inherit another profiler's state.
    thread_local std::uint64_t tlsGen = 0;
    thread_local ThreadState* tlsState = nullptr;
    if (tlsGen != gen_) {
      ThreadState* t = new ThreadState(
          "thread-" +
          std::to_string(count_.fetch_add(1, std::memory_order_relaxed) + 1));
      std::uintptr_t expected = head_.load(std::memory_order_relaxed);
      do {
        t->next = reinterpret_cast<ThreadState*>(expected);
      } while (!head_.compare_exchange_weak(
          expected, reinterpret_cast<std::uintptr_t>(t),
          // pairs-with: prof.registry
          std::memory_order_release, std::memory_order_relaxed));
      tlsState = t;
      tlsGen = gen_;
    }
    return *tlsState;
  }

  /// Find-or-claim the accumulator row for a packed path. Only the owner
  /// thread writes keys into its own table, so the scan reads relaxed; the
  /// claiming store is release so a dumper that sees the key sees a fully
  /// constructed row. Returns -1 when the table is full (counted dropped).
  static int findSlot(ThreadState& t, std::uint64_t packed) noexcept {
    const std::uint64_t h = packed * 0x9e3779b97f4a7c15ull;
    const int start = int(h >> 58) & (kMaxPaths - 1);
    for (int probe = 0; probe < kMaxPaths; ++probe) {
      const int i = (start + probe) & (kMaxPaths - 1);
      const std::uint64_t key = t.paths[i].key.load(std::memory_order_relaxed);
      if (key == packed) return i;
      if (key == 0) {
        // pairs-with: prof.slotkey
        t.paths[i].key.store(packed, std::memory_order_release);
        return i;
      }
    }
    return -1;
  }

  ThreadState* headPtr() const noexcept {
    // pairs-with: prof.registry
    return reinterpret_cast<ThreadState*>(
        head_.load(std::memory_order_acquire));
  }

  std::uint64_t gen_;
  atomic<bool> enabled_{false};
  // uintptr_t head for the same reason as the flight recorder: the verify
  // shim arbitrates integral words only.
  atomic<std::uintptr_t> head_{0};
  atomic<std::uint64_t> count_{0};
};

/// RAII region bracket. With the profiler off (or absent) the constructor
/// is one relaxed load + predicted branch and the destructor one plain
/// member test.
class ScopedRegion {
 public:
  ScopedRegion(Profiler* p, Region r) {
    if (p != nullptr && p->enabled()) t_ = p->enter(r);
  }
  ~ScopedRegion() {
    if (t_ != nullptr) Profiler::exit(t_);
  }

  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  Profiler::ThreadState* t_ = nullptr;
};

/// Serializes the profiler plus the process-wide named-mutex contention
/// table as gravel_profile.json / the /profile endpoint:
///   {"kind": "gravel-profile", "schema_version": 1, "enabled": ...,
///    "now_ns": ..., "threads": [{"name", "busy_ns", "idle_ns", "duty",
///    "dropped", "paths": [{"stack": ["agg.slot", ...], "count",
///    "self_ns"}]}], "locks": [{"site", "acquisitions", "contended",
///    "wait_ns_total", "wait_p50_ns", "wait_p99_ns", "wait_hist": [...]}]}
// gravel-analyze: cold
inline void writeProfilerJson(std::ostream& os, const Profiler& prof,
                              std::uint64_t now_ns) {
  JsonWriter w(os);
  w.beginObject();
  w.kv("kind", "gravel-profile");
  w.kv("schema_version", std::uint64_t{1});
  w.kv("enabled", prof.enabled());
  w.kv("lock_profiling", lockprof::enabled());
  w.kv("now_ns", now_ns);
  w.key("threads").beginArray();
  for (const Profiler::ThreadSample& t : prof.sample()) {
    w.beginObject();
    w.kv("name", t.name);
    w.kv("busy_ns", t.busy_ns);
    w.kv("idle_ns", t.idle_ns);
    const std::uint64_t total = t.busy_ns + t.idle_ns;
    w.kv("duty", total == 0 ? 0.0 : double(t.busy_ns) / double(total));
    w.kv("dropped", t.dropped);
    w.key("paths").beginArray();
    for (const Profiler::PathSample& p : t.paths) {
      w.beginObject();
      w.key("stack").beginArray();
      for (int level = 0; level < p.depth; ++level)
        w.value(std::string(regionName(p.stack[level])));
      w.endArray();
      w.kv("count", p.count);
      w.kv("self_ns", p.self_ns);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.key("locks").beginArray();
  lockprof::forEachSite([&w](const lockprof::SiteSample& s) {
    w.beginObject();
    w.kv("site", s.name);
    w.kv("acquisitions", s.acquisitions);
    w.kv("contended", s.contended);
    w.kv("wait_ns_total", s.wait_ns_total);
    w.kv("wait_p50_ns", s.waitQuantileNs(0.50));
    w.kv("wait_p99_ns", s.waitQuantileNs(0.99));
    w.key("wait_hist").beginArray();
    int last = lockprof::kWaitBuckets;
    while (last > 0 && s.wait_hist[last - 1] == 0) --last;
    for (int i = 0; i < last; ++i) w.value(s.wait_hist[i]);
    w.endArray();
    w.endObject();
  });
  w.endArray();
  w.endObject();
}

}  // namespace gravel::obs
