// Live status endpoint: a deliberately tiny single-threaded HTTP/1.0 server
// over plain POSIX sockets (ISSUE 7 tentpole). No third-party deps — the
// request surface is "GET <path>", the response surface is a string body
// with a Content-Length, and that is everything Prometheus scrapes and
// tools/gravel_top.py need.
//
// Routes are provided by the embedder (the Cluster) as a callback, so this
// header stays in the obs layer (gravel_common only) while /status content
// comes from runtime state. The Cluster serves:
//   /metrics  Prometheus text exposition of the current MetricsSnapshot
//             (writePrometheusText below, unit-testable without sockets)
//   /status   JSON: membership, breakers, DLQ, latency gauges, watchdog
//   /timeseries  recent collector windows (gravel-top rate columns)
//   /profile  JSON: profiler threads/paths + lock-contention table
// and the server itself answers /healthz (200 "ok\n") before dispatching
// to the embedder — a liveness probe that never pays for a snapshot.
//
// Lifecycle: start() binds (port 0 = ephemeral; port() reports the actual
// choice so tests need no fixed port) and spawns one service thread that
// poll()s the listening socket with a 50 ms timeout, so stop() latency is
// bounded without signals. One request per connection, serviced serially —
// a scrape every few seconds from one or two clients, not a web server.
//
// gravel-lint: cold-path — runs on the scrape thread at human cadence;
// its atomics (stop/running flags) never touch a message path.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "common/atomic.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define GRAVEL_STATUS_SERVER_SUPPORTED 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define GRAVEL_STATUS_SERVER_SUPPORTED 0
#endif

namespace gravel::obs {

/// Exporter knobs, embedded in ClusterConfig as `config.status_server`.
/// GRAVEL_STATUS_PORT=<port> enables it at Cluster construction.
struct StatusServerConfig {
  bool enabled = false;

  /// TCP port; 0 binds an ephemeral port (tests read it back via port()).
  std::uint16_t port = 0;

  /// Bind address. Loopback by default: this endpoint is a debugging
  /// surface, not a hardened service.
  std::string bind_address = "127.0.0.1";
};

// ---------------------------------------------------------------------------
// Prometheus text exposition (format version 0.0.4)
// ---------------------------------------------------------------------------

namespace detail {

/// Prometheus metric names admit [a-zA-Z0-9_:] only; our dotted names
/// ("gpu_queue.depth") mangle dots (and anything else) to underscores and
/// gain a `gravel_` namespace prefix.
inline std::string promName(const std::string& name) {
  std::string out = "gravel_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

inline std::string promLabelKey(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

inline std::string promEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Registry labels are free-form "k=v,k=v" strings ("node=0",
/// "link=0->1,dest=2"); rendered as {k="v",...}. A fragment without '=' is
/// kept under a catch-all `label` key rather than dropped.
inline std::string promLabels(const std::string& labels,
                              const std::string& extra = "") {
  std::string inner;
  auto append = [&inner](const std::string& frag) {
    if (frag.empty()) return;
    if (!inner.empty()) inner += ',';
    const std::size_t eq = frag.find('=');
    if (eq == std::string::npos) {
      inner += "label=\"" + promEscape(frag) + "\"";
    } else {
      inner += promLabelKey(frag.substr(0, eq)) + "=\"" +
               promEscape(frag.substr(eq + 1)) + "\"";
    }
  };
  std::size_t start = 0;
  while (start <= labels.size()) {
    const std::size_t comma = labels.find(',', start);
    const std::size_t end = comma == std::string::npos ? labels.size() : comma;
    append(labels.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (!extra.empty()) {
    if (!inner.empty()) inner += ',';
    inner += extra;
  }
  return inner.empty() ? "" : "{" + inner + "}";
}

inline void promNumber(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  }
}

}  // namespace detail

/// Serializes a snapshot in Prometheus text exposition format.
///
/// Kind mapping:
///   counter    -> counter
///   gauge      -> gauge
///   stat       -> summary (_count/_sum) plus _min/_max gauges
///   histogram  -> histogram with cumulative le buckets. Pow2 bucket 0 holds
///                 exactly {0} (le="0"); bucket i >= 1 covers [2^(i-1), 2^i),
///                 so the cumulative bound after bucket i is le="2^i - 1"
///                 (samples are integers). _sum is estimated from bucket
///                 midpoints, as any pow2 sketch must.
inline void writePrometheusText(std::ostream& os, const MetricsSnapshot& s) {
  std::string lastTyped;  // map order makes equal names adjacent
  auto typeLine = [&](const std::string& name, const char* type) {
    if (name == lastTyped) return;
    lastTyped = name;
    os << "# TYPE " << name << ' ' << type << '\n';
  };
  for (const auto& [key, m] : s.metrics) {
    const std::string name = detail::promName(key.first);
    const std::string labels = detail::promLabels(key.second);
    switch (m.kind) {
      case MetricKind::kCounter:
        typeLine(name, "counter");
        os << name << labels << ' ' << m.count << '\n';
        break;
      case MetricKind::kGauge:
        typeLine(name, "gauge");
        os << name << labels << ' ';
        detail::promNumber(os, m.value);
        os << '\n';
        break;
      case MetricKind::kStat:
        typeLine(name, "summary");
        os << name << "_count" << labels << ' ' << m.count << '\n';
        os << name << "_sum" << labels << ' ';
        detail::promNumber(os, m.value);
        os << '\n';
        if (m.count) {
          os << name << "_min" << labels << ' ';
          detail::promNumber(os, m.min);
          os << '\n' << name << "_max" << labels << ' ';
          detail::promNumber(os, m.max);
          os << '\n';
        }
        break;
      case MetricKind::kHistogram: {
        typeLine(name, "histogram");
        std::size_t last = m.buckets.size();
        while (last > 0 && m.buckets[last - 1] == 0) --last;
        std::uint64_t cum = 0;
        double sum = 0;
        for (std::size_t i = 0; i < last; ++i) {
          cum += m.buckets[i];
          if (i == 0) {
            sum += 0;  // bucket 0 holds exactly {0}
          } else {
            const double lo = std::ldexp(1.0, int(i) - 1);
            sum += double(m.buckets[i]) * lo * 1.5;
          }
          os << name << "_bucket" << detail::promLabels(
              key.second, i == 0 ? std::string("le=\"0\"")
                                 : "le=\"" +
                                       std::to_string(
                                           (std::uint64_t{1} << i) - 1) +
                                       "\"");
          os << ' ' << cum << '\n';
        }
        os << name << "_bucket"
           << detail::promLabels(key.second, "le=\"+Inf\"") << ' ' << m.count
           << '\n';
        os << name << "_count" << labels << ' ' << m.count << '\n';
        os << name << "_sum" << labels << ' ';
        detail::promNumber(os, sum);
        os << '\n';
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------------------

/// What a route handler returns.
struct StatusResponse {
  int code = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Maps a request path ("/metrics") to a response. Runs on the service
/// thread; the Cluster's handler snapshots registry/membership state, so it
/// must be callable concurrently with the run.
using StatusHandler = std::function<StatusResponse(const std::string& path)>;

class StatusServer {
 public:
  StatusServer(const StatusServerConfig& config, StatusHandler handler)
      : config_(config), handler_(std::move(handler)) {}

  ~StatusServer() { stop(); }

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// True when this build can serve (POSIX sockets available).
  static constexpr bool supported() noexcept {
    return GRAVEL_STATUS_SERVER_SUPPORTED != 0;
  }

  /// Binds + listens + spawns the service thread. Returns false (with no
  /// thread started) when the port cannot be bound or the platform has no
  /// sockets; the embedder logs and runs on — telemetry must never take
  /// down the workload.
  bool start() {
#if GRAVEL_STATUS_SERVER_SUPPORTED
    // pairs-with: status.running
    if (running_.load(std::memory_order_acquire)) return true;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      closeListener();
      return false;
    }
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd_, 8) != 0) {
      closeListener();
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
      port_ = ntohs(bound.sin_port);
    stop_.store(false, std::memory_order_release);  // pairs-with: status.stop
    running_.store(true, std::memory_order_release);  // pairs-with: status.running
    thread_ = std::thread([this] { serviceLoop(); });
    return true;
#else
    return false;
#endif
  }

  void stop() {
#if GRAVEL_STATUS_SERVER_SUPPORTED
    if (!running_.load(std::memory_order_acquire)) return;
    stop_.store(true, std::memory_order_release);  // pairs-with: status.stop
    if (thread_.joinable()) thread_.join();
    closeListener();
    running_.store(false, std::memory_order_release);  // pairs-with: status.running
#endif
  }

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The actually-bound port (differs from config when config.port == 0).
  std::uint16_t port() const noexcept { return port_; }

  std::uint64_t requestsServed() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
#if GRAVEL_STATUS_SERVER_SUPPORTED
  void closeListener() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void serviceLoop() {
    while (!stop_.load(std::memory_order_acquire)) {  // pairs-with: status.stop
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 50);  // bounded stop() latency
      if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client < 0) continue;
      serveOne(client);
      ::close(client);
    }
  }

  void serveOne(int client) {
    // One read is enough for "GET /path HTTP/1.x": every client we care
    // about sends the request line in a single small packet.
    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    if (n <= 0) return;
    buf[n] = '\0';
    std::string_view req(buf, std::size_t(n));
    StatusResponse resp;
    if (req.substr(0, 4) != "GET ") {
      resp = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      const std::size_t pathStart = 4;
      std::size_t pathEnd = req.find(' ', pathStart);
      if (pathEnd == std::string_view::npos) pathEnd = req.size();
      std::string path(req.substr(pathStart, pathEnd - pathStart));
      const std::size_t query = path.find('?');
      if (query != std::string::npos) path.resize(query);
      // Liveness probe answered here, before the embedder's handler: a
      // load balancer / CI health check must get its 200 without paying
      // for (or depending on) a registry snapshot.
      if (path == "/healthz")
        resp = {200, "text/plain; charset=utf-8", "ok\n"};
      else
        resp = handler_ ? handler_(path)
                        : StatusResponse{404, "text/plain; charset=utf-8",
                                         "no handler\n"};
    }
    sendResponse(client, resp);
    requests_.fetch_add(1, std::memory_order_relaxed);
  }

  static void sendResponse(int client, const StatusResponse& resp) {
    std::ostringstream head;
    head << "HTTP/1.0 " << resp.code << ' ' << reasonPhrase(resp.code)
         << "\r\nContent-Type: " << resp.content_type
         << "\r\nContent-Length: " << resp.body.size()
         << "\r\nConnection: close\r\n\r\n";
    const std::string headStr = head.str();
    sendAll(client, headStr.data(), headStr.size());
    sendAll(client, resp.body.data(), resp.body.size());
  }

  static void sendAll(int client, const char* data, std::size_t size) {
    std::size_t off = 0;
    while (off < size) {
      const ssize_t n = ::send(client, data + off, size - off, 0);
      if (n <= 0) return;
      off += std::size_t(n);
    }
  }

  static const char* reasonPhrase(int code) noexcept {
    switch (code) {
      case 200: return "OK";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 500: return "Internal Server Error";
    }
    return "OK";
  }
#endif

  StatusServerConfig config_;
  StatusHandler handler_;
  std::thread thread_;
  atomic<bool> running_{false};
  atomic<bool> stop_{false};
  atomic<std::uint64_t> requests_{0};
  std::uint16_t port_ = 0;
  int fd_ = -1;
};

}  // namespace gravel::obs
