// Minimal streaming JSON writer shared by every observability exporter
// (metrics snapshots, Chrome-trace files, BENCH_*.json). No DOM, no
// dependencies: the exporters only ever append, so a comma-tracking stack
// over an ostream is all that is needed, and the output stays valid JSON by
// construction (mismatched scope closes throw).
#pragma once

#include <cstdint>
#include <cstdio>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace gravel::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& beginObject() {
    element();
    os_ << '{';
    scopes_.push_back(Scope{'}', true});
    return *this;
  }
  JsonWriter& endObject() { return close('}'); }

  JsonWriter& beginArray() {
    element();
    os_ << '[';
    scopes_.push_back(Scope{']', true});
    return *this;
  }
  JsonWriter& endArray() { return close(']'); }

  /// Object member key; must be followed by exactly one value/scope.
  JsonWriter& key(std::string_view k) {
    element();
    writeString(k);
    os_ << ':';
    pendingValue_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    element();
    writeString(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    element();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    element();
    // JSON has no inf/nan; clamp to null, which consumers treat as missing.
    if (v != v || v == std::numeric_limits<double>::infinity() ||
        v == -std::numeric_limits<double>::infinity()) {
      os_ << "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    element();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    element();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(int v) { return value(std::int64_t{v}); }

  /// key + scalar in one call: w.kv("name", 3.5)
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  struct Scope {
    char closer;
    bool first;
  };

  void element() {
    if (pendingValue_) {
      pendingValue_ = false;  // the value following a key needs no comma
      return;
    }
    if (scopes_.empty()) return;
    if (!scopes_.back().first) os_ << ',';
    scopes_.back().first = false;
  }

  JsonWriter& close(char closer) {
    GRAVEL_CHECK_MSG(!scopes_.empty() && scopes_.back().closer == closer,
                     "unbalanced JSON scope close");
    scopes_.pop_back();
    os_ << closer;
    return *this;
  }

  void writeString(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<Scope> scopes_;
  bool pendingValue_ = false;
};

}  // namespace gravel::obs
