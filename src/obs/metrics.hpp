// MetricsRegistry: named, labeled metrics over the existing instrumentation
// primitives (Counter / RunningStat / Pow2Histogram) with snapshot/delta
// semantics and JSON + CSV export.
//
// The registry is a *pull-side* structure: hot paths keep bumping their own
// cache-local counters exactly as before, and a collector (Cluster::
// collectMetrics(), the depth sampler, a bench) publishes absolute values
// into named slots at quiescent points or on a sampling cadence. That keeps
// the overhead budget trivially met — the message path never touches a map —
// while every number a run produces becomes addressable by (name, labels).
//
// Kinds:
//   counter    monotonic absolute value; delta() subtracts a baseline
//   gauge      instantaneous level; delta() keeps the current value
//   stat       RunningStat moments (count/sum/min/max/mean)
//   histogram  Pow2Histogram buckets; delta() subtracts per bucket
//
// Collection cost must scale with traffic, not topology: publishers that
// walk per-destination or per-link state (the aggregator's lazy-buffer
// gauges `agg.lazy_buffers`/`agg.resident_bytes`, the fabric's link
// counters via Fabric::forEachLink) enumerate only resident entries, so
// collectMetrics() at 4096 simulated nodes stays proportional to what the
// run actually touched (DESIGN.md §14), not nodes^2 name/label pairs.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/atomic.hpp"
#include "common/stats.hpp"
#include "obs/json.hpp"

namespace gravel::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kStat, kHistogram };

inline const char* metricKindName(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kStat: return "stat";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// One named metric's value at snapshot time.
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  ///< counter value / stat & histogram sample count
  double value = 0;         ///< gauge level / stat sum
  double min = 0, max = 0;  ///< stat extrema (valid when count > 0)
  std::vector<std::uint64_t> buckets;  ///< histogram only

  double mean() const noexcept { return count ? value / double(count) : 0.0; }
};

/// Key = metric name + free-form labels ("node=0", "link=0->1", ...).
using MetricKey = std::pair<std::string, std::string>;

/// A point-in-time copy of every registered metric; supports delta() against
/// an earlier snapshot and JSON/CSV serialization.
class MetricsSnapshot {
 public:
  std::map<MetricKey, MetricValue> metrics;

  bool contains(const std::string& name, const std::string& labels = "") const {
    return metrics.count({name, labels}) != 0;
  }
  const MetricValue* find(const std::string& name,
                          const std::string& labels = "") const {
    auto it = metrics.find({name, labels});
    return it == metrics.end() ? nullptr : &it->second;
  }
  /// Counter value / gauge level / stat mean, or 0 when absent.
  double number(const std::string& name, const std::string& labels = "") const {
    const MetricValue* m = find(name, labels);
    if (!m) return 0.0;
    switch (m->kind) {
      case MetricKind::kCounter: return double(m->count);
      case MetricKind::kGauge: return m->value;
      case MetricKind::kStat: return m->mean();
      case MetricKind::kHistogram: return double(m->count);
    }
    return 0.0;
  }

  /// This snapshot relative to `base`: counters and histogram buckets
  /// subtract; stats subtract count/sum (window mean) and keep current
  /// extrema; gauges keep their current level. Metrics absent from `base`
  /// pass through unchanged.
  MetricsSnapshot delta(const MetricsSnapshot& base) const {
    MetricsSnapshot out = *this;
    for (auto& [key, m] : out.metrics) {
      auto it = base.metrics.find(key);
      if (it == base.metrics.end()) continue;
      const MetricValue& b = it->second;
      switch (m.kind) {
        case MetricKind::kCounter:
          m.count -= std::min(m.count, b.count);
          break;
        case MetricKind::kGauge:
          break;
        case MetricKind::kStat:
          m.count -= std::min(m.count, b.count);
          m.value -= b.value;
          break;
        case MetricKind::kHistogram:
          m.count -= std::min(m.count, b.count);
          for (std::size_t i = 0;
               i < m.buckets.size() && i < b.buckets.size(); ++i)
            m.buckets[i] -= std::min(m.buckets[i], b.buckets[i]);
          break;
      }
    }
    return out;
  }

  void toJson(std::ostream& os) const {
    JsonWriter w(os);
    w.beginObject().key("metrics");
    writeMetricsArray(w);
    w.endObject();
  }

  /// The metrics rows as a bare JSON array, for embedding into larger
  /// documents (gravel_metrics.json, time-series windows, /status).
  void writeMetricsArray(JsonWriter& w) const {
    w.beginArray();
    for (const auto& [key, m] : metrics) {
      w.beginObject()
          .kv("name", key.first)
          .kv("labels", key.second)
          .kv("kind", metricKindName(m.kind));
      switch (m.kind) {
        case MetricKind::kCounter:
          w.kv("value", m.count);
          break;
        case MetricKind::kGauge:
          w.kv("value", m.value);
          break;
        case MetricKind::kStat:
          w.kv("count", m.count).kv("sum", m.value).kv("mean", m.mean());
          if (m.count) w.kv("min", m.min).kv("max", m.max);
          break;
        case MetricKind::kHistogram: {
          w.kv("count", m.count).key("buckets").beginArray();
          // Trailing zero buckets are elided; bucket i covers [2^(i-1), 2^i).
          std::size_t last = m.buckets.size();
          while (last > 0 && m.buckets[last - 1] == 0) --last;
          for (std::size_t i = 0; i < last; ++i) w.value(m.buckets[i]);
          w.endArray();
          break;
        }
      }
      w.endObject();
    }
    w.endArray();
  }

  /// name,labels,kind,count,value,min,max — one row per metric.
  void toCsv(std::ostream& os) const {
    os << "name,labels,kind,count,value,min,max\n";
    for (const auto& [key, m] : metrics) {
      os << key.first << ',' << key.second << ',' << metricKindName(m.kind)
         << ',' << m.count << ',';
      switch (m.kind) {
        case MetricKind::kCounter: os << m.count; break;
        case MetricKind::kGauge: os << m.value; break;
        case MetricKind::kStat: os << m.mean(); break;
        case MetricKind::kHistogram: os << m.count; break;
      }
      os << ',' << (m.count ? m.min : 0.0) << ',' << (m.count ? m.max : 0.0)
         << '\n';
    }
  }
};

/// Thread-safe registry of named metrics. set*/observe* publish values;
/// snapshot() copies everything out.
class MetricsRegistry {
 public:
  /// Publishes the absolute value of a monotonic counter.
  void setCounter(const std::string& name, const std::string& labels,
                  std::uint64_t value) {
    gravel::lock_guard lk(mutex_);
    MetricValue& m = slot(name, labels, MetricKind::kCounter);
    m.count = value;
  }

  /// Publishes an instantaneous level.
  void setGauge(const std::string& name, const std::string& labels,
                double value) {
    gravel::lock_guard lk(mutex_);
    MetricValue& m = slot(name, labels, MetricKind::kGauge);
    m.value = value;
  }

  /// Adds one sample to a RunningStat-backed metric.
  void observe(const std::string& name, const std::string& labels,
               double sample) {
    gravel::lock_guard lk(mutex_);
    MetricValue& m = slot(name, labels, MetricKind::kStat);
    if (m.count == 0) {
      m.min = m.max = sample;
    } else {
      m.min = std::min(m.min, sample);
      m.max = std::max(m.max, sample);
    }
    ++m.count;
    m.value += sample;
  }

  /// Publishes a whole RunningStat (absolute; snapshot/delta windows it).
  void setStat(const std::string& name, const std::string& labels,
               const RunningStat& s) {
    gravel::lock_guard lk(mutex_);
    MetricValue& m = slot(name, labels, MetricKind::kStat);
    m.count = s.count();
    m.value = s.sum();
    m.min = s.min();
    m.max = s.max();
  }

  /// Adds one sample to a Pow2Histogram-backed metric (also tracks extrema).
  void observeHistogram(const std::string& name, const std::string& labels,
                        std::uint64_t sample) {
    gravel::lock_guard lk(mutex_);
    MetricValue& m = slot(name, labels, MetricKind::kHistogram);
    if (m.buckets.empty()) m.buckets.assign(Pow2Histogram::kBuckets, 0);
    int bucket = sample == 0 ? 0 : 64 - std::countl_zero(sample);
    if (bucket >= Pow2Histogram::kBuckets) bucket = Pow2Histogram::kBuckets - 1;
    ++m.buckets[std::size_t(bucket)];
    if (m.count == 0) {
      m.min = m.max = double(sample);
    } else {
      m.min = std::min(m.min, double(sample));
      m.max = std::max(m.max, double(sample));
    }
    ++m.count;
  }

  /// Publishes a whole Pow2Histogram.
  void setHistogram(const std::string& name, const std::string& labels,
                    const Pow2Histogram& h) {
    gravel::lock_guard lk(mutex_);
    MetricValue& m = slot(name, labels, MetricKind::kHistogram);
    m.buckets.assign(Pow2Histogram::kBuckets, 0);
    for (int i = 0; i < Pow2Histogram::kBuckets; ++i)
      m.buckets[std::size_t(i)] = h.bucket(i);
    m.count = h.total();
  }

  MetricsSnapshot snapshot() const {
    gravel::lock_guard lk(mutex_);
    MetricsSnapshot s;
    s.metrics = metrics_;
    return s;
  }

  std::size_t size() const {
    gravel::lock_guard lk(mutex_);
    return metrics_.size();
  }

  void clear() {
    gravel::lock_guard lk(mutex_);
    metrics_.clear();
  }

 private:
  // Caller holds mutex_ (compiler-enforced). Re-registration with a
  // different kind resets the slot rather than mixing semantics.
  MetricValue& slot(const std::string& name, const std::string& labels,
                    MetricKind kind) GRAVEL_REQUIRES(mutex_) {
    MetricValue& m = metrics_[{name, labels}];
    if (m.kind != kind && (m.count || m.value || !m.buckets.empty()))
      m = MetricValue{};
    m.kind = kind;
    return m;
  }

  mutable gravel::mutex mutex_{"MetricsRegistry::mutex_"};
  std::map<MetricKey, MetricValue> metrics_ GRAVEL_GUARDED_BY(mutex_);
};

}  // namespace gravel::obs
