// Functional implementations of the prior GPU networking models (paper §3)
// for the GUPS workload — the programmability study of Table 2 and Figure 4.
//
// Each model really executes on the SIMT engine and really moves messages
// over the fabric, so tests can verify both the functional result (the same
// update histogram as Gravel) and the characteristic traffic pattern:
//
//   coprocessor   : host-orchestrated chunks; per-destination queues filled
//                   by WG-level reservations *per destination*; queues sent
//                   at kernel boundaries (Figure 4a).
//   msg-per-lane  : every work-item sends its own one-message network
//                   message (Figure 4b without Gravel's aggregator).
//   coalesced     : per-WG counting sort into scratchpad lists, one
//                   sync_inc_list call per destination (Figure 4c).
//   coalesced+agg : the same kernel, but lists land in a node-level
//                   repacker that emits 64 kB per-node queues ("coalesced
//                   APIs + Gravel aggregation" in Figure 15).
#pragma once

#include "apps/app.hpp"
#include "apps/gups.hpp"
#include "runtime/cluster.hpp"

namespace gravel::models {

enum class ModelKind {
  kCoprocessor,
  kMsgPerLane,
  kCoalesced,
  kCoalescedAgg,
};

const char* modelName(ModelKind kind);

/// Runs GUPS under the given model on `cluster` (which supplies the nodes,
/// heaps, fabric and network threads; the Gravel aggregator stays idle).
/// Validates the final table against the serial expectation.
apps::AppReport runGupsModel(rt::Cluster& cluster,
                             const apps::GupsConfig& cfg, ModelKind kind);

}  // namespace gravel::models
