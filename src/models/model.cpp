#include "models/model.hpp"

#include "common/atomic.hpp"
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "graph/csr.hpp"

namespace gravel::models {

using apps::GupsConfig;
using rt::NetMessage;

const char* modelName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kCoprocessor:
      return "coprocessor";
    case ModelKind::kMsgPerLane:
      return "msg-per-lane";
    case ModelKind::kCoalesced:
      return "coalesced APIs";
    case ModelKind::kCoalescedAgg:
      return "coalesced APIs + aggregation";
  }
  return "?";
}

namespace {

/// Node-level repacker for the "coalesced + GPU-wide aggregation" variant:
/// per-WG per-destination lists are combined into large per-node queues,
/// exactly what Gravel's aggregator does for individual messages.
class Repacker {
 public:
  Repacker(std::uint32_t self, net::Fabric& fabric, std::size_t capacityMsgs)
      : self_(self), fabric_(fabric), capacity_(capacityMsgs),
        buffers_(fabric.nodes()) {}

  void append(std::uint32_t dst, const NetMessage* msgs, std::size_t count) {
    gravel::lock_guard lk(mutex_);
    auto& buf = buffers_[dst];
    for (std::size_t i = 0; i < count; ++i) {
      buf.push_back(msgs[i]);
      if (buf.size() >= capacity_) {
        std::vector<NetMessage> batch;
        batch.swap(buf);
        fabric_.send(self_, dst, std::move(batch));
      }
    }
  }

  void flushAll() {
    gravel::lock_guard lk(mutex_);
    for (std::uint32_t dst = 0; dst < buffers_.size(); ++dst) {
      if (buffers_[dst].empty()) continue;
      std::vector<NetMessage> batch;
      batch.swap(buffers_[dst]);
      fabric_.send(self_, dst, std::move(batch));
    }
  }

 private:
  std::uint32_t self_;
  net::Fabric& fabric_;
  std::size_t capacity_;
  gravel::mutex mutex_{"model::Repacker::mutex_"};
  std::vector<std::vector<NetMessage>> buffers_ GRAVEL_GUARDED_BY(mutex_);
};

/// Runs `kernel` on every node's device concurrently (the manual version of
/// Cluster::launchAll without the trailing quiet).
void launchOnAllNodes(rt::Cluster& cluster, std::uint64_t grid,
                      std::uint32_t wg,
                      const std::function<void(std::uint32_t, simt::WorkItem&)>& kernel) {
  std::vector<std::thread> gpus;
  std::vector<std::exception_ptr> errors(cluster.nodes());
  for (std::uint32_t i = 0; i < cluster.nodes(); ++i) {
    gpus.emplace_back([&, i] {
      try {
        cluster.node(i).device().launch(
            {grid, wg}, [&, i](simt::WorkItem& wi) { kernel(i, wi); });
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : gpus) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

/// The Figure 4c kernel body: counting-sort this work-group's messages by
/// destination in scratchpad, then hand each destination's contiguous list
/// to `sendList` (a sync_inc_list stand-in). All lanes must be convergent.
void coalescedSortAndSend(
    simt::WorkItem& wi, std::uint32_t nodes, std::uint32_t dest,
    std::uint64_t addr,
    const std::function<void(std::uint32_t dst, const std::uint64_t* addrs,
                             std::uint32_t count)>& sendList) {
  auto* list = wi.scratchAlloc<std::uint64_t>(wi.wgSize());
  std::uint64_t base = 0;
  for (std::uint32_t d = 0; d < nodes; ++d) {
    const bool mine = dest == d;
    const std::uint64_t myOff = wi.wgPrefixSum(mine ? 1 : 0, mine);
    const std::uint64_t cnt = wi.wgReduceSum(mine ? 1 : 0);
    if (mine) list[base + myOff] = addr;
    wi.wgBarrier();  // list complete before the leader reads it
    if (cnt > 0 && wi.localId() == 0)
      sendList(d, list + base, std::uint32_t(cnt));
    wi.wgBarrier();  // list consumed before the next destination reuses it
    base += cnt;
  }
}

}  // namespace

apps::AppReport runGupsModel(rt::Cluster& cluster, const GupsConfig& cfg,
                             ModelKind kind) {
  const std::uint32_t nodes = cluster.nodes();
  graph::BlockPartition part(cfg.table_size, nodes);
  auto table = cluster.alloc<std::uint64_t>(part.perNode());
  const std::uint32_t wg =
      cfg.wg_size ? cfg.wg_size : cluster.config().device.max_wg_size;

  cluster.resetStats();

  auto target = [&](std::uint32_t node, std::uint64_t u) {
    return apps::gupsTarget(cfg, node, u);
  };

  switch (kind) {
    case ModelKind::kMsgPerLane: {
      // Every lane ships its own one-message network message; no
      // aggregation anywhere (Figure 15's msg-per-lane bars).
      cluster.launchAll(cfg.updates_per_node, wg,
                        [&](std::uint32_t nodeId, simt::WorkItem& wi) {
        const std::uint64_t g = target(nodeId, wi.globalId());
        cluster.fabric().send(
            nodeId, part.owner(g),
            {NetMessage::atomicInc(part.owner(g),
                                   table.at(part.localIndex(g)))});
      });
      break;
    }

    case ModelKind::kCoalesced: {
      cluster.launchAll(cfg.updates_per_node, wg,
                        [&](std::uint32_t nodeId, simt::WorkItem& wi) {
        const std::uint64_t g = target(nodeId, wi.globalId());
        coalescedSortAndSend(
            wi, nodes, part.owner(g), table.at(part.localIndex(g)),
            [&](std::uint32_t dst, const std::uint64_t* addrs,
                std::uint32_t count) {
              std::vector<NetMessage> batch;
              batch.reserve(count);
              for (std::uint32_t k = 0; k < count; ++k)
                batch.push_back(NetMessage::atomicInc(dst, addrs[k]));
              cluster.fabric().send(nodeId, dst, std::move(batch));
            });
      });
      break;
    }

    case ModelKind::kCoalescedAgg: {
      std::vector<std::unique_ptr<Repacker>> repackers;
      const std::size_t capacity =
          cluster.config().pernode_queue_bytes / sizeof(NetMessage);
      for (std::uint32_t i = 0; i < nodes; ++i)
        repackers.push_back(
            std::make_unique<Repacker>(i, cluster.fabric(), capacity));
      cluster.launchAll(cfg.updates_per_node, wg,
                        [&](std::uint32_t nodeId, simt::WorkItem& wi) {
        const std::uint64_t g = target(nodeId, wi.globalId());
        coalescedSortAndSend(
            wi, nodes, part.owner(g), table.at(part.localIndex(g)),
            [&](std::uint32_t dst, const std::uint64_t* addrs,
                std::uint32_t count) {
              std::vector<NetMessage> msgs;
              msgs.reserve(count);
              for (std::uint32_t k = 0; k < count; ++k)
                msgs.push_back(NetMessage::atomicInc(dst, addrs[k]));
              repackers[nodeId]->append(dst, msgs.data(), msgs.size());
            });
      });
      for (auto& r : repackers) r->flushAll();
      cluster.quiet();
      break;
    }

    case ModelKind::kCoprocessor: {
      cluster.start();  // devices and fabric are driven directly below
      // Figure 4a: chunk the update stream so the worst case (every message
      // of a chunk to one destination) fits a per-node queue; fill queues
      // on the GPU with per-destination WG-level reservations; exchange at
      // each kernel boundary.
      const std::uint64_t chunkMsgs = std::max<std::size_t>(
          wg, cluster.config().pernode_queue_bytes / sizeof(NetMessage));
      struct DestQueue {
        std::vector<NetMessage> slots;
        atomic<std::uint32_t> count{0};
      };
      // queues[node][dest]
      std::vector<std::vector<DestQueue>> queues(nodes);
      for (auto& q : queues) {
        q = std::vector<DestQueue>(nodes);
        for (auto& dq : q) dq.slots.resize(chunkMsgs);
      }
      for (std::uint64_t chunk = 0; chunk < cfg.updates_per_node;
           chunk += chunkMsgs) {
        const std::uint64_t grid =
            std::min(chunkMsgs, cfg.updates_per_node - chunk);
        launchOnAllNodes(cluster, grid, wg, [&](std::uint32_t nodeId,
                                                simt::WorkItem& wi) {
          const std::uint64_t g = target(nodeId, chunk + wi.globalId());
          const std::uint32_t dest = part.owner(g);
          const std::uint64_t addr = table.at(part.localIndex(g));
          // One WG-level reservation per destination targeted by the group
          // (Figure 4a lines 2-4) — the per-destination loop is the branch
          // divergence the paper calls out.
          for (std::uint32_t d = 0; d < nodes; ++d) {
            const bool mine = dest == d;
            const std::uint64_t myOff = wi.wgPrefixSum(mine ? 1 : 0, mine);
            const std::uint64_t cnt = wi.wgReduceSum(mine ? 1 : 0);
            std::uint64_t base = 0;
            if (mine && myOff + 1 == cnt)  // leader = last active lane
              base = queues[nodeId][d].count.fetch_add(
                  std::uint32_t(cnt), std::memory_order_seq_cst);
            base = wi.wgReduceSum(base);
            if (mine)
              queues[nodeId][d].slots[base + myOff] =
                  NetMessage::atomicInc(d, addr);
          }
        });
        // Host exchange phase: send every queue, wait for resolution.
        for (std::uint32_t i = 0; i < nodes; ++i) {
          for (std::uint32_t d = 0; d < nodes; ++d) {
            auto& dq = queues[i][d];
            const std::uint32_t cnt =
                dq.count.exchange(0, std::memory_order_seq_cst);
            if (cnt == 0) continue;
            std::vector<NetMessage> batch(dq.slots.begin(),
                                          dq.slots.begin() + cnt);
            cluster.fabric().send(i, d, std::move(batch));
          }
        }
        cluster.quiet();
      }
      break;
    }
  }

  apps::AppReport report;
  report.name = std::string("GUPS/") + modelName(kind);
  report.stats = cluster.runStats();
  report.work_units = double(cfg.updates_per_node) * nodes;
  report.iterations = 1;

  std::vector<std::uint64_t> expected(cfg.table_size, 0);
  for (std::uint32_t n = 0; n < nodes; ++n)
    for (std::uint64_t u = 0; u < cfg.updates_per_node; ++u)
      ++expected[apps::gupsTarget(cfg, n, u)];
  report.validated = true;
  for (std::uint64_t g = 0; g < cfg.table_size; ++g) {
    const std::uint64_t got = cluster.node(part.owner(g))
                                  .heap()
                                  .loadU64(table.at(part.localIndex(g)));
    if (got != expected[g]) {
      report.validated = false;
      break;
    }
  }
  return report;
}

}  // namespace gravel::models
