// The collective rendezvous used by work-group-level operations (paper §4.1)
// and their diverged variants (§5.2).
//
// A CollectiveSite is a reusable rendezvous point for a fixed *domain* of
// lanes (a whole work-group, or the registered members of a fine-grain
// barrier). Lanes arrive with an operation, a value and an active flag;
// the last lane to arrive computes the per-lane results and wakes the rest.
// Inactive lanes participate with the operation's non-interfering identity
// value, which is exactly the paper's software-predication contract: the
// result is as if only active lanes took part.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace gravel::simt {

enum class CollectiveOp : std::uint8_t {
  kBarrier,
  kReduceSum,
  kReduceMax,
  kReduceMin,
  kPrefixSumExclusive,
  kScratchAlloc,  ///< reduce-style arena reservation; see workgroup.hpp
};

/// Non-interfering identity submitted on behalf of inactive lanes (§5.2).
constexpr std::uint64_t identityFor(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kReduceMax:
      return 0;  // lane ids / sizes are unsigned; 0 never wins
    case CollectiveOp::kReduceMin:
      return std::numeric_limits<std::uint64_t>::max();
    default:
      return 0;
  }
}

/// Rendezvous state for one domain. Single-threaded: only the owning
/// device scheduler thread touches it.
class CollectiveSite {
 public:
  explicit CollectiveSite(std::uint32_t maxLanes)
      : submissions_(maxLanes), results_(maxLanes), activeFlags_(maxLanes) {}

  /// Records lane `lane`'s arrival. Returns true when this arrival completed
  /// the instance (caller then invokes complete()).
  bool arrive(std::uint32_t lane, CollectiveOp op, std::uint64_t value,
              bool active, std::uint32_t expected) {
    if (arrived_ == 0) {
      op_ = op;
    } else {
      GRAVEL_CHECK_MSG(op_ == op,
                       "lanes of one work-group reached different "
                       "collective operations (divergent misuse)");
    }
    submissions_[lane] = active ? value : identityFor(op);
    activeFlags_[lane] = active;
    ++arrived_;
    GRAVEL_CHECK_MSG(arrived_ <= expected, "collective over-subscribed");
    return arrived_ == expected;
  }

  /// True while an instance is in flight (some lanes arrived, not complete).
  bool inProgress() const noexcept { return arrived_ != 0; }
  std::uint32_t arrivedCount() const noexcept { return arrived_; }
  std::uint64_t generation() const noexcept { return generation_; }
  CollectiveOp op() const noexcept { return op_; }

  /// Computes per-lane results over `lanes` (in lane order, which defines
  /// prefix-sum order), resets the instance, and bumps the generation so
  /// parked lanes resume.
  void complete(const std::vector<std::uint32_t>& lanes) {
    switch (op_) {
      case CollectiveOp::kBarrier:
        break;
      case CollectiveOp::kReduceSum: {
        std::uint64_t sum = 0;
        for (auto l : lanes) sum += submissions_[l];
        for (auto l : lanes) results_[l] = sum;
        break;
      }
      // kScratchAlloc reduces to the max requested size; WorkGroupState then
      // converts the max into an arena offset shared by the whole group.
      case CollectiveOp::kScratchAlloc:
      case CollectiveOp::kReduceMax: {
        std::uint64_t best = identityFor(op_);
        for (auto l : lanes) best = std::max(best, submissions_[l]);
        for (auto l : lanes) results_[l] = best;
        break;
      }
      case CollectiveOp::kReduceMin: {
        std::uint64_t best = identityFor(op_);
        for (auto l : lanes) best = std::min(best, submissions_[l]);
        for (auto l : lanes) results_[l] = best;
        break;
      }
      case CollectiveOp::kPrefixSumExclusive: {
        std::uint64_t running = 0;
        for (auto l : lanes) {
          results_[l] = running;
          running += submissions_[l];
        }
        break;
      }
    }
    arrived_ = 0;
    ++generation_;
  }

  std::uint64_t resultFor(std::uint32_t lane) const { return results_[lane]; }
  bool wasActive(std::uint32_t lane) const { return activeFlags_[lane] != 0; }

  /// Replaces the result of every lane in `lanes` (scratch allocation turns
  /// the reduced size into a shared arena offset after the fact).
  void overrideResults(const std::vector<std::uint32_t>& lanes,
                       std::uint64_t value) {
    for (auto l : lanes) results_[l] = value;
  }

 private:
  std::vector<std::uint64_t> submissions_;
  std::vector<std::uint64_t> results_;
  std::vector<std::uint8_t> activeFlags_;
  std::uint32_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  CollectiveOp op_ = CollectiveOp::kBarrier;
};

}  // namespace gravel::simt
