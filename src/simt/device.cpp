#include "simt/device.hpp"

#include <string>
#include <thread>

#include "common/error.hpp"

namespace gravel::simt {

Device::Device(const DeviceConfig& config)
    : config_(config),
      stats_(),
      wg_(config_, stats_),
      fibers_(config_.max_wg_size, config_.fiber_stack_bytes) {
  GRAVEL_CHECK_MSG(config_.wavefront_width > 0, "wavefront width must be > 0");
  GRAVEL_CHECK_MSG(config_.max_wg_size % config_.wavefront_width == 0,
                   "work-group size must be a whole number of wavefronts");
}

void Device::launch(const LaunchConfig& launch, const Kernel& kernel) {
  GRAVEL_CHECK_MSG(launch.wg_size > 0 &&
                       launch.wg_size <= config_.max_wg_size,
                   "launch wg_size out of device range");
  ++stats_.kernels_launched;
  const std::uint64_t grid = launch.grid_size;
  for (std::uint64_t base = 0; base < grid; base += launch.wg_size) {
    const auto lanes = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(launch.wg_size, grid - base));
    runWorkGroup(base / launch.wg_size, base, lanes, grid, kernel);
  }
}

void Device::runWorkGroup(std::uint64_t wgIndex, std::uint64_t globalBase,
                          std::uint32_t laneCount, std::uint64_t gridSize,
                          const Kernel& kernel) {
  wg_.begin(wgIndex, laneCount);
  ++stats_.workgroups_executed;
  stats_.lanes_executed += laneCount;

  for (std::uint32_t lane = 0; lane < laneCount; ++lane) {
    fibers_.at(lane).reset([this, lane, globalBase, gridSize, &kernel] {
      WorkItem wi(*this, wg_, lane, globalBase, gridSize,
                  config_.wavefront_width);
      kernel(wi);
    });
  }

  std::uint32_t finished = 0;
  while (finished < laneCount) {
    bool resumedAny = false;
    bool finishedAny = false;
    // Lane order approximates wavefront-ordered issue; lanes that park at a
    // collective are skipped until a sibling completes the rendezvous.
    for (std::uint32_t lane = 0; lane < laneCount; ++lane) {
      if (wg_.status(lane) != LaneStatus::kRunnable) continue;
      Fiber& f = fibers_.at(lane);
      if (f.finished()) continue;  // already done, bookkeeping below
      resumedAny = true;
      ++stats_.fiber_switches;
      const bool more = f.resume();
      if (!more) {
        ++finished;
        finishedAny = true;
        wg_.onLaneFinish(lane);
      }
    }
    if (finished >= laneCount) break;
    if (!resumedAny) {
      // Every unfinished lane is parked at a rendezvous that can no longer
      // complete. (Lanes spinning on external conditions stay kRunnable, so
      // they are not counted here.)
      throw DeadlockError(
          "work-group " + std::to_string(wgIndex) +
          ": all unfinished lanes are parked at collectives that cannot "
          "complete");
    }
    if (!finishedAny) {
      // Lanes are spin-waiting on an external condition (e.g. a full
      // producer/consumer queue); let host threads (aggregator, network
      // thread) run so the condition can change.
      std::this_thread::yield();
    }
  }
}

void Device::yieldLane() {
  if (Fiber* f = Fiber::current()) {
    f->yield();
  } else {
    std::this_thread::yield();
  }
}

}  // namespace gravel::simt
