// Shared identifiers and configuration for the SIMT execution engine.
#pragma once

#include <cstdint>

namespace gravel::simt {

/// Hardware shape of a simulated GPU (paper Table 3: 8 CUs, 64-lane
/// wavefronts, 256-work-item work-groups, 64 KiB scratchpad per CU).
struct DeviceConfig {
  std::uint32_t compute_units = 8;
  std::uint32_t wavefront_width = 64;
  std::uint32_t max_wg_size = 256;
  std::uint32_t scratchpad_bytes = 64 * 1024;
  std::uint32_t fiber_stack_bytes = 64 * 1024;
  /// When true, work-group-level operations follow the §5.3
  /// thread-block-compaction proposal: a lane that exits its kernel stops
  /// participating, and an in-flight collective completes over the
  /// remaining live lanes. When false (default, current GPUs), that exit is
  /// a deadlock and the engine throws DeadlockError.
  bool wg_reconvergence = false;
};

/// One kernel launch: `grid_size` work-items in `wg_size`-lane work-groups.
struct LaunchConfig {
  std::uint64_t grid_size = 0;
  std::uint32_t wg_size = 256;
};

/// Execution statistics accumulated across launches; read by the cost model.
/// Plain integers: every field is written only by the device's scheduler
/// thread and read after launches complete.
struct DeviceStats {
  std::uint64_t kernels_launched = 0;
  std::uint64_t workgroups_executed = 0;
  std::uint64_t lanes_executed = 0;
  std::uint64_t collective_ops = 0;       ///< completed WG/fbar collectives
  std::uint64_t collective_arrivals = 0;  ///< per-lane arrivals at collectives
  std::uint64_t active_arrivals = 0;      ///< arrivals with active == true
  std::uint64_t fiber_switches = 0;
  std::uint64_t predication_overhead_ops = 0;  ///< bumped by predicated apps
  std::uint64_t scratchpad_high_water = 0;     ///< max bytes used by one WG

  /// Fraction of collective arrivals that carried real (active) work; the
  /// §8.2 experiments are about pushing this toward 1.0.
  double activeFraction() const {
    return collective_arrivals
               ? double(active_arrivals) / double(collective_arrivals)
               : 1.0;
  }
};

}  // namespace gravel::simt
