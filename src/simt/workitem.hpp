// The per-work-item handle passed to kernels — the SIMT engine's public API.
//
// Kernels are plain C++ callables `void(WorkItem&)`. A kernel body runs on
// its own fiber, so work-group-level operations (barrier, reduce,
// prefix-sum, scratchpad allocation, fbar sync) may suspend the lane until
// siblings arrive, exactly like convergence points on a real GPU.
#pragma once

#include <cstdint>

#include "simt/types.hpp"
#include "simt/workgroup.hpp"

namespace gravel::simt {

class Device;

class WorkItem {
 public:
  WorkItem(Device& device, WorkGroupState& wg, std::uint32_t lane,
           std::uint64_t globalBase, std::uint64_t gridSize,
           std::uint32_t wavefrontWidth)
      : device_(device),
        wg_(wg),
        lane_(lane),
        globalBase_(globalBase),
        gridSize_(gridSize),
        wavefrontWidth_(wavefrontWidth) {}

  // --- identity ---------------------------------------------------------
  /// GRID_ID in the paper's pseudo-code.
  std::uint64_t globalId() const noexcept { return globalBase_ + lane_; }
  /// Index within the work-group [0, wgSize).
  std::uint32_t localId() const noexcept { return lane_; }
  /// LANE_ID within the wavefront [0, wavefrontWidth).
  std::uint32_t laneId() const noexcept { return lane_ % wavefrontWidth_; }
  std::uint32_t wavefrontId() const noexcept { return lane_ / wavefrontWidth_; }
  std::uint64_t workGroupId() const noexcept { return wg_.wgIndex(); }
  std::uint32_t wgSize() const noexcept { return wg_.laneCount(); }
  std::uint64_t gridSize() const noexcept { return gridSize_; }

  Device& device() noexcept { return device_; }
  WorkGroupState& group() noexcept { return wg_; }

  // --- work-group-level operations (paper §4.1) --------------------------
  // The `active` flag is the software-predication contract of §5.1/§5.2:
  // every live lane must call the operation, inactive lanes contribute the
  // non-interfering identity and the result is as if only active lanes took
  // part.
  void wgBarrier() { wg_.collective(lane_, CollectiveOp::kBarrier, 0, true); }

  std::uint64_t wgReduceSum(std::uint64_t v, bool active = true) {
    return wg_.collective(lane_, CollectiveOp::kReduceSum, v, active);
  }
  std::uint64_t wgReduceMax(std::uint64_t v, bool active = true) {
    return wg_.collective(lane_, CollectiveOp::kReduceMax, v, active);
  }
  std::uint64_t wgReduceMin(std::uint64_t v, bool active = true) {
    return wg_.collective(lane_, CollectiveOp::kReduceMin, v, active);
  }
  /// Exclusive prefix sum over lane order (Figure 5b's MyOff computation).
  std::uint64_t wgPrefixSum(std::uint64_t v, bool active = true) {
    return wg_.collective(lane_, CollectiveOp::kPrefixSumExclusive, v, active);
  }
  /// Broadcast modeled the way Figure 5b does it: the source lane submits
  /// the value, everyone else submits 0, and the reduce-to-sum result is the
  /// broadcast value.
  std::uint64_t wgBroadcast(std::uint64_t v, bool isSource) {
    return wg_.collective(lane_, CollectiveOp::kReduceSum, isSource ? v : 0,
                          true);
  }

  /// Work-group scratchpad allocation (LDS). Collective; every live lane
  /// calls with the same size and receives the same pointer.
  template <typename T>
  T* scratchAlloc(std::uint64_t count) {
    return reinterpret_cast<T*>(
        wg_.scratchAlloc(lane_, count * sizeof(T)));
  }

  // --- fine-grain barriers (paper §5.3) -----------------------------------
  FBar& fbar(std::uint32_t id = 0) { return wg_.fbar(id); }
  void fbarJoin(FBar& fb) { wg_.fbarJoin(lane_, fb); }
  void fbarLeave(FBar& fb) { wg_.fbarLeave(lane_, fb); }
  void fbarBarrier(FBar& fb) {
    wg_.collective(lane_, CollectiveOp::kBarrier, 0, true, &fb);
  }
  std::uint64_t fbarReduceMax(FBar& fb, std::uint64_t v) {
    return wg_.collective(lane_, CollectiveOp::kReduceMax, v, true, &fb);
  }
  std::uint64_t fbarPrefixSum(FBar& fb, std::uint64_t v) {
    return wg_.collective(lane_, CollectiveOp::kPrefixSumExclusive, v, true,
                          &fb);
  }
  std::uint64_t fbarReduceSum(FBar& fb, std::uint64_t v) {
    return wg_.collective(lane_, CollectiveOp::kReduceSum, v, true, &fb);
  }

 private:
  Device& device_;
  WorkGroupState& wg_;
  std::uint32_t lane_;
  std::uint64_t globalBase_;
  std::uint64_t gridSize_;
  std::uint32_t wavefrontWidth_;
};

}  // namespace gravel::simt
