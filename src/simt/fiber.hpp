// User-level fibers: each simulated GPU work-item runs on one fiber, so
// work-group collectives can suspend a lane mid-kernel and resume it when all
// participating lanes have arrived (see workgroup.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.hpp"

namespace gravel::simt {

/// One fiber = one suspendable call stack. Not thread-safe: a fiber is owned
/// and scheduled by exactly one OS thread (the per-device scheduler thread).
class Fiber {
 public:
  /// `stackBytes` is per-fiber; SIMT kernels are shallow, 64 KiB default.
  explicit Fiber(std::size_t stackBytes = 64 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// (Re)arms the fiber with a new body. Must not be running.
  void reset(std::function<void()> body);

  /// Runs/resumes the fiber until it yields or finishes. Returns true while
  /// the fiber still has work left. Rethrows any exception the body threw.
  bool resume();

  /// Yields from *inside* the fiber body back to the caller of resume().
  void yield();

  bool finished() const noexcept { return finished_; }

  /// Fiber currently running on this thread, or nullptr when on the
  /// scheduler stack. Lets library spin-waits (queue acquire) yield the
  /// fiber instead of the OS thread.
  static Fiber* current() noexcept;

 private:
  friend void fiberTrampoline(Fiber* f) noexcept;
  void primeStack();

  std::unique_ptr<std::byte[]> stack_;
  std::size_t stackBytes_;
  void* fiberSp_ = nullptr;      // saved SP when suspended
  void* schedulerSp_ = nullptr;  // saved SP of the resume() caller
  // ASan fiber-switch bookkeeping (unused without -fsanitize=address): the
  // scheduler stack bounds learned on fiber entry, reused when yielding back.
  const void* schedStackBottom_ = nullptr;
  std::size_t schedStackSize_ = 0;
  std::function<void()> body_;
  std::exception_ptr pending_;
  bool started_ = false;
  bool finished_ = true;  // no body yet
};

/// RAII pool of reusable fibers (stacks are the expensive part).
class FiberPool {
 public:
  FiberPool(std::size_t count, std::size_t stackBytes)
      : stackBytes_(stackBytes) {
    fibers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      fibers_.push_back(std::make_unique<Fiber>(stackBytes));
  }

  std::size_t size() const noexcept { return fibers_.size(); }
  Fiber& at(std::size_t i) { return *fibers_[i]; }

  /// Grows the pool to at least `count` fibers.
  void ensure(std::size_t count) {
    while (fibers_.size() < count)
      fibers_.push_back(std::make_unique<Fiber>(stackBytes_));
  }

 private:
  std::size_t stackBytes_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
};

}  // namespace gravel::simt
