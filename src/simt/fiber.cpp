#include "simt/fiber.hpp"

#include <cstring>

// Stack switches must be announced to AddressSanitizer or its stack-bounds
// checks misfire on the foreign stack (google/sanitizers#189). These hooks
// compile to nothing without -fsanitize=address.
#if defined(__SANITIZE_ADDRESS__)
#define GRAVEL_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRAVEL_ASAN_FIBERS 1
#endif
#endif
#ifndef GRAVEL_ASAN_FIBERS
#define GRAVEL_ASAN_FIBERS 0
#endif
#if GRAVEL_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

extern "C" {
/// Assembly switch in context.S: saves the current continuation into
/// *save_sp and resumes restore_sp.
void gravel_ctx_swap(void** save_sp, void* restore_sp);
/// Assembly entry shim; transfers control to gravel_fiber_trampoline with
/// the Fiber* as argument.
void gravel_ctx_entry();
}

namespace gravel::simt {

namespace {
thread_local Fiber* tlsCurrentFiber = nullptr;

// Wrap the ASan fiber API so every switch site reads the same with and
// without sanitizers. Protocol: the departing context calls startSwitch with
// the *destination* stack's bounds (nullptr fakeSave on a final exit frees
// the fake stack); the first statement executed after arriving calls
// finishSwitch with the fakeSave this context stashed before it left.
inline void startSwitch(void** fakeSave, const void* bottom,
                        std::size_t size) {
#if GRAVEL_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fakeSave, bottom, size);
#else
  (void)fakeSave;
  (void)bottom;
  (void)size;
#endif
}

inline void finishSwitch(void* fakeSave, const void** bottomOld,
                         std::size_t* sizeOld) {
#if GRAVEL_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fakeSave, bottomOld, sizeOld);
#else
  (void)fakeSave;
  (void)bottomOld;
  (void)sizeOld;
#endif
}
}  // namespace

// The entry path must stay un-instrumented under ASan: the compiler deduces
// it never returns and would plant __asan_handle_no_return, which tries to
// unpoison "the thread stack" while running on the fiber's heap-allocated
// one.
#if GRAVEL_ASAN_FIBERS
#define GRAVEL_NO_ASAN __attribute__((no_sanitize_address))
#else
#define GRAVEL_NO_ASAN
#endif

/// C++ side of the fiber entry path. Runs the body, captures any exception,
/// and switches back to the scheduler for good. Never returns.
GRAVEL_NO_ASAN void fiberTrampoline(Fiber* f) noexcept {
  // First arrival on this stack: learn the scheduler's bounds for yields.
  finishSwitch(nullptr, &f->schedStackBottom_, &f->schedStackSize_);
  try {
    f->body_();
  } catch (...) {
    f->pending_ = std::current_exception();
  }
  f->finished_ = true;
  // Final switch out; fiberSp_ is dead after this (nullptr fakeSave tells
  // ASan to release this stack's fake frames).
  startSwitch(nullptr, f->schedStackBottom_, f->schedStackSize_);
  gravel_ctx_swap(&f->fiberSp_, f->schedulerSp_);
  // Unreachable: a finished fiber is never resumed (resume() checks).
  std::terminate();
}

extern "C" GRAVEL_NO_ASAN void gravel_fiber_trampoline(void* f) {
  fiberTrampoline(static_cast<Fiber*>(f));
}

Fiber::Fiber(std::size_t stackBytes)
    : stack_(new std::byte[stackBytes]), stackBytes_(stackBytes) {}

Fiber::~Fiber() {
  // Destroying a suspended (started, unfinished) fiber leaks whatever is on
  // its stack; the engine never does this (deadlocks throw from resume()),
  // but we do not try to unwind foreign stacks here either.
}

void Fiber::primeStack() {
  // Build the initial frame the assembly switch will pop:
  //   [r15][r14][r13][r12 = Fiber*][rbx][rbp][return addr = gravel_ctx_entry]
  // After the pops in gravel_ctx_swap, `ret` consumes the entry address and
  // leaves RSP 16-byte aligned at gravel_ctx_entry, whose `call` then
  // produces the standard rsp%16==8 at the trampoline entry.
  std::uintptr_t top =
      reinterpret_cast<std::uintptr_t>(stack_.get()) + stackBytes_;
  top &= ~static_cast<std::uintptr_t>(15);  // align the stack top
  // Nine words below the aligned top: 7 frame words plus one spare so that
  // after the 6 pops and the `ret`, RSP % 16 == 0 at gravel_ctx_entry —
  // whose `call` then produces the SysV-required rsp%16==8 at the
  // trampoline entry.
  auto* frame = reinterpret_cast<void**>(top) - 9;
  frame[0] = nullptr;                                 // r15
  frame[1] = nullptr;                                 // r14
  frame[2] = nullptr;                                 // r13
  frame[3] = this;                                    // r12 -> Fiber*
  frame[4] = nullptr;                                 // rbx
  frame[5] = nullptr;                                 // rbp
  frame[6] = reinterpret_cast<void*>(&gravel_ctx_entry);  // ret target
  fiberSp_ = frame;
}

void Fiber::reset(std::function<void()> body) {
  GRAVEL_CHECK_MSG(finished_, "cannot reset a running fiber");
  body_ = std::move(body);
  pending_ = nullptr;
  started_ = false;
  finished_ = false;
}

bool Fiber::resume() {
  GRAVEL_CHECK_MSG(!finished_, "cannot resume a finished fiber");
  if (!started_) {
    primeStack();
    started_ = true;
  }
  Fiber* prev = tlsCurrentFiber;
  tlsCurrentFiber = this;
  void* fakeSave = nullptr;
  startSwitch(&fakeSave, stack_.get(), stackBytes_);
  gravel_ctx_swap(&schedulerSp_, fiberSp_);
  finishSwitch(fakeSave, nullptr, nullptr);
  tlsCurrentFiber = prev;
  if (pending_) {
    auto e = pending_;
    pending_ = nullptr;
    std::rethrow_exception(e);
  }
  return !finished_;
}

void Fiber::yield() {
  GRAVEL_CHECK_MSG(tlsCurrentFiber == this, "yield() outside the fiber");
  void* fakeSave = nullptr;
  startSwitch(&fakeSave, schedStackBottom_, schedStackSize_);
  gravel_ctx_swap(&fiberSp_, schedulerSp_);
  finishSwitch(fakeSave, &schedStackBottom_, &schedStackSize_);
}

Fiber* Fiber::current() noexcept { return tlsCurrentFiber; }

}  // namespace gravel::simt
