#include "simt/workgroup.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "simt/fiber.hpp"

namespace gravel::simt {

WorkGroupState::WorkGroupState(const DeviceConfig& config, DeviceStats& stats)
    : config_(config),
      stats_(stats),
      wgSite_(config.max_wg_size),
      status_(config.max_wg_size, LaneStatus::kFinished),
      scratch_(config.scratchpad_bytes) {}

void WorkGroupState::begin(std::uint64_t wgIndex, std::uint32_t laneCount) {
  GRAVEL_CHECK_MSG(laneCount > 0 && laneCount <= config_.max_wg_size,
                   "work-group size out of range");
  wgIndex_ = wgIndex;
  laneCount_ = laneCount;
  liveCount_ = laneCount;
  scratchOffset_ = 0;
  fbars_.clear();
  std::fill(status_.begin(), status_.begin() + laneCount,
            LaneStatus::kRunnable);
}

const std::vector<std::uint32_t>& WorkGroupState::liveLanes() const {
  // Hot path (one call per completed collective): reuse a member buffer.
  laneScratch_.clear();
  for (std::uint32_t l = 0; l < laneCount_; ++l)
    if (status_[l] != LaneStatus::kFinished) laneScratch_.push_back(l);
  return laneScratch_;
}

std::uint64_t WorkGroupState::collective(std::uint32_t lane, CollectiveOp op,
                                         std::uint64_t value, bool active,
                                         FBar* fb) {
  CollectiveSite& site = fb ? fb->site() : wgSite_;
  if (fb) {
    GRAVEL_CHECK_MSG(fb->isMember(lane),
                     "fbar collective from a non-member lane");
  }
  ++stats_.collective_arrivals;
  if (active) ++stats_.active_arrivals;

  const std::uint64_t myGen = site.generation();
  // For the work-group domain every *live* lane participates; the engine is
  // strict (OpenCL-style): a lane that already exited makes further WG-level
  // operations a deadlock, detected in onLaneFinish().
  const std::uint32_t expected = fb ? fb->memberCount() : liveCount_;
  const bool last = site.arrive(lane, op, value, active, expected);
  if (last) {
    const std::vector<std::uint32_t>& domain =
        fb ? fb->memberLanes() : liveLanes();
    site.complete(domain);
    if (op == CollectiveOp::kScratchAlloc) {
      const std::uint64_t bytes = site.resultFor(lane);  // reduced max size
      GRAVEL_CHECK_MSG(scratchOffset_ + bytes <= scratch_.size(),
                       "scratchpad overflow");
      site.overrideResults(domain, scratchOffset_);
      scratchOffset_ += bytes;
      stats_.scratchpad_high_water =
          std::max(stats_.scratchpad_high_water, scratchOffset_);
    }
    ++stats_.collective_ops;
    wake(domain);
  } else {
    parkUntil(lane, site, myGen);
  }
  return site.resultFor(lane);
}

void WorkGroupState::parkUntil(std::uint32_t lane, const CollectiveSite& site,
                               std::uint64_t generation) {
  Fiber* self = Fiber::current();
  GRAVEL_CHECK_MSG(self != nullptr, "collective called off-fiber");
  while (site.generation() == generation) {
    status_[lane] = LaneStatus::kParked;
    self->yield();
  }
  status_[lane] = LaneStatus::kRunnable;
}

void WorkGroupState::wake(const std::vector<std::uint32_t>& lanes) {
  for (auto l : lanes)
    if (status_[l] == LaneStatus::kParked) status_[l] = LaneStatus::kRunnable;
}

std::byte* WorkGroupState::scratchAlloc(std::uint32_t lane,
                                        std::uint64_t bytes) {
  // Round to 16 so consecutive allocations stay aligned for any element type.
  const std::uint64_t rounded = (bytes + 15) & ~std::uint64_t{15};
  const std::uint64_t offset =
      collective(lane, CollectiveOp::kScratchAlloc, rounded, true);
  return scratch_.data() + offset;
}

FBar& WorkGroupState::fbar(std::uint32_t id) {
  auto& slot = fbars_[id];
  if (!slot) slot = std::make_unique<FBar>(config_.max_wg_size);
  return *slot;
}

void WorkGroupState::fbarJoin(std::uint32_t lane, FBar& fb) {
  GRAVEL_CHECK_MSG(!fb.isMember(lane), "lane already joined this fbar");
  fb.member_[lane] = 1;
  ++fb.memberCount_;
  // Joining is a scheduling point: on real hardware lanes of a wavefront
  // join in lockstep, so siblings that are about to join must get the chance
  // before this lane races ahead into an fbar collective with a too-small
  // membership. One yield walks the round-robin scheduler across the group.
  if (Fiber* self = Fiber::current()) self->yield();
}

void WorkGroupState::fbarLeave(std::uint32_t lane, FBar& fb) {
  GRAVEL_CHECK_MSG(fb.isMember(lane), "lane is not a member of this fbar");
  fb.member_[lane] = 0;
  --fb.memberCount_;
  // Leaving can complete an in-flight collective for the remaining members
  // (Figure 10c: lanes leave when their edge list is exhausted while
  // siblings still synchronize each iteration).
  if (fb.site().inProgress() && fb.memberCount_ > 0 &&
      fb.site().arrivedCount() == fb.memberCount_) {
    const std::vector<std::uint32_t>& domain = fb.memberLanes();
    fb.site().complete(domain);
    ++stats_.collective_ops;
    wake(domain);
  }
  GRAVEL_CHECK_MSG(fb.memberCount_ > 0 || !fb.site().inProgress(),
                   "last lane left an fbar with a collective in flight");
}

void WorkGroupState::onLaneFinish(std::uint32_t lane) {
  status_[lane] = LaneStatus::kFinished;
  --liveCount_;
  if (wgSite_.inProgress()) {
    if (!config_.wg_reconvergence) {
      throw DeadlockError(
          "work-item exited its kernel while siblings wait at a "
          "work-group-level operation (diverged WG-level op misuse, "
          "paper §5); enable DeviceConfig::wg_reconvergence for the "
          "thread-block-compaction semantics of §5.3");
    }
    // §5.3 work-group-granularity control flow: the exited lane no longer
    // participates, which may complete the in-flight operation for the
    // remaining live lanes.
    if (liveCount_ > 0 && wgSite_.arrivedCount() == liveCount_) {
      const std::vector<std::uint32_t>& domain = liveLanes();
      wgSite_.complete(domain);
      ++stats_.collective_ops;
      wake(domain);
    }
  }
  for (auto& [id, fb] : fbars_) {
    if (fb->isMember(lane)) {
      throw DeadlockError("work-item exited while still joined to fbar " +
                          std::to_string(id));
    }
  }
}

}  // namespace gravel::simt
