// Work-group execution state: lane scheduling status, the work-group-wide
// collective rendezvous, the scratchpad arena, and fine-grain barrier (fbar)
// objects (paper §5.3 / HSA PRM).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "simt/collective.hpp"
#include "simt/types.hpp"

namespace gravel::simt {

class WorkGroupState;

/// Scheduling status of one lane's fiber.
enum class LaneStatus : std::uint8_t {
  kRunnable,  ///< may be resumed (includes lanes spin-waiting on queues)
  kParked,    ///< suspended inside a collective, waiting for siblings
  kFinished,  ///< kernel body returned
};

/// Fine-grain barrier: a collective domain over a *subset* of a work-group's
/// lanes (paper §5.3, Figure 10c). Lanes join, synchronize any number of
/// times, and leave; leaving can complete an in-flight collective for the
/// remaining members.
class FBar {
 public:
  explicit FBar(std::uint32_t maxLanes)
      : site_(maxLanes), member_(maxLanes, 0) {}

  bool isMember(std::uint32_t lane) const { return member_[lane] != 0; }
  std::uint32_t memberCount() const { return memberCount_; }

  CollectiveSite& site() { return site_; }

  /// Sorted list of current members (defines prefix-sum order).
  std::vector<std::uint32_t> memberLanes() const {
    std::vector<std::uint32_t> lanes;
    lanes.reserve(memberCount_);
    for (std::uint32_t l = 0; l < member_.size(); ++l)
      if (member_[l]) lanes.push_back(l);
    return lanes;
  }

 private:
  friend class WorkGroupState;
  CollectiveSite site_;
  std::vector<std::uint8_t> member_;
  std::uint32_t memberCount_ = 0;
};

/// Per-work-group execution state. One instance per Device; re-armed for
/// each dispatched work-group. All methods run on the device's scheduler
/// thread (lane fibers share that thread), so no internal locking is needed.
class WorkGroupState {
 public:
  WorkGroupState(const DeviceConfig& config, DeviceStats& stats);

  /// Arms the state for a work-group of `laneCount` lanes (the trailing
  /// work-group of a grid may be partial).
  void begin(std::uint64_t wgIndex, std::uint32_t laneCount);

  std::uint64_t wgIndex() const noexcept { return wgIndex_; }
  std::uint32_t laneCount() const noexcept { return laneCount_; }
  LaneStatus status(std::uint32_t lane) const { return status_[lane]; }
  void setStatus(std::uint32_t lane, LaneStatus s) { status_[lane] = s; }

  /// Executes one work-group-level (or fbar-level when `fb != nullptr`)
  /// collective from lane `lane`. Parks the lane until all participants
  /// arrive; returns the lane's result (§5.2 semantics for inactive lanes).
  std::uint64_t collective(std::uint32_t lane, CollectiveOp op,
                           std::uint64_t value, bool active,
                           FBar* fb = nullptr);

  /// Reserves `bytes` of the work-group's scratchpad. Collective: all live
  /// lanes must call with the same size; all receive the same arena offset.
  /// Throws when the scratchpad (DeviceConfig::scratchpad_bytes) overflows.
  std::byte* scratchAlloc(std::uint32_t lane, std::uint64_t bytes);

  std::uint64_t scratchUsed() const noexcept { return scratchOffset_; }

  /// Returns the fbar with the given small id, creating it on first use.
  /// All lanes that pass the same id share one object (Figure 10c's pattern
  /// of lane 0 running initfbar is modeled by first-use creation).
  FBar& fbar(std::uint32_t id);

  void fbarJoin(std::uint32_t lane, FBar& fb);
  void fbarLeave(std::uint32_t lane, FBar& fb);

  /// Bookkeeping when a lane's kernel body returns. Detects the §5 hazard:
  /// a lane exiting while siblings wait at a work-group-level operation (or
  /// while the lane itself still holds fbar membership) would hang a real
  /// GPU; we throw DeadlockError instead.
  void onLaneFinish(std::uint32_t lane);

 private:
  void parkUntil(std::uint32_t lane, const CollectiveSite& site,
                 std::uint64_t generation);
  void wake(const std::vector<std::uint32_t>& lanes);
  const std::vector<std::uint32_t>& liveLanes() const;

  const DeviceConfig& config_;
  DeviceStats& stats_;
  CollectiveSite wgSite_;
  std::vector<LaneStatus> status_;
  std::vector<std::byte> scratch_;
  std::map<std::uint32_t, std::unique_ptr<FBar>> fbars_;
  std::uint64_t wgIndex_ = 0;
  std::uint32_t laneCount_ = 0;
  std::uint32_t liveCount_ = 0;
  std::uint64_t scratchOffset_ = 0;
  mutable std::vector<std::uint32_t> laneScratch_;
};

}  // namespace gravel::simt
