// The simulated GPU device: dispatches a grid of work-items as work-groups
// over a fiber scheduler with SIMT convergence semantics.
#pragma once

#include <functional>

#include "simt/fiber.hpp"
#include "simt/types.hpp"
#include "simt/workgroup.hpp"
#include "simt/workitem.hpp"

namespace gravel::simt {

/// A simulated GPU. Work-groups of a launch are executed one at a time on
/// the calling thread (the compute-unit count only matters to the cost
/// model); lanes within a work-group interleave on fibers so that
/// work-group-level operations block and resume like real convergence
/// points. Thread-compatibility: one Device per "node" thread.
class Device {
 public:
  using Kernel = std::function<void(WorkItem&)>;

  explicit Device(const DeviceConfig& config = {});

  const DeviceConfig& config() const noexcept { return config_; }
  DeviceStats& stats() noexcept { return stats_; }
  const DeviceStats& stats() const noexcept { return stats_; }

  /// Runs `kernel` for every work-item of the grid. Blocks until the whole
  /// grid finished. Exceptions thrown by kernel bodies (including
  /// DeadlockError from convergence misuse) propagate to the caller.
  void launch(const LaunchConfig& launch, const Kernel& kernel);

  /// Yields the current lane if called from inside a kernel (so sibling
  /// lanes and, transitively, host threads make progress), or the OS thread
  /// otherwise. Pass as the YieldFn of any spin-waiting structure shared
  /// with kernels.
  static void yieldLane();

 private:
  void runWorkGroup(std::uint64_t wgIndex, std::uint64_t globalBase,
                    std::uint32_t laneCount, std::uint64_t gridSize,
                    const Kernel& kernel);

  DeviceConfig config_;
  DeviceStats stats_;
  WorkGroupState wg_;
  FiberPool fibers_;
};

}  // namespace gravel::simt
