// Reliable delivery over an unreliable wire: the sublayer that restores
// exactly-once, in-order batch delivery on top of FaultyFabric (or any
// Fabric), the way the paper's MPI transport would over a lossy link.
//
// Wire format: every batch ReliableFabric ships is prefixed with one
// kControl NetMessage —
//
//   word  | data batch                   | standalone ACK
//   ------+------------------------------+-------------------------------
//   cmd   | kControl | kData<<8          | kControl | kAck<<8
//   dest  | destination node             | destination node (the sender
//         |                              | being acknowledged)
//   addr  | seq: per-(src,dst) batch     | 0
//         | sequence number, from 1      |
//   value | cumAck: highest contiguously | cumAck, same
//         | *resolved* seq of the        |
//         | reverse link (piggyback)     |
//
// Sender side (per directed link): batches get consecutive seqs and are kept
// until cumulatively acknowledged; a timeout retransmits the oldest unacked
// batch with exponential backoff, and a bounded retry budget latches a
// structured LinkFailureInfo instead of looping forever. Receiver side:
// batches at seq <= delivered are duplicates (dropped, re-ACKed if already
// resolved); gaps park in a bounded reorder window; in-order batches are
// handed to the network thread, and the cumulative ACK advances only once
// markResolved() says the payload was applied — so a duplicate can never
// convince quiet() that unresolved work is done.
//
// ACKs travel on the same hostile wire (piggybacked on reverse data and as
// standalone ACK batches); a lost ACK just means one more retransmission and
// one more receiver-side dup-drop. Cumulative ACKs are idempotent.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <vector>

#include "common/atomic.hpp"
#include "net/fabric.hpp"

namespace gravel::net {

struct ReliabilityConfig {
  bool enabled = false;

  /// Initial retransmit timeout; doubles per retry up to rto_max.
  std::chrono::microseconds rto_base{2000};
  std::chrono::microseconds rto_max{50000};

  /// Consecutive retransmissions of one batch without ACK progress before
  /// the link is declared failed.
  std::uint32_t max_retries = 40;

  /// Receiver-side reorder buffer capacity (batches) per link; batches
  /// beyond a gap wider than this are dropped and later retransmitted.
  std::uint32_t reorder_window = 64;
};

/// Sequence/ACK/retransmit/dedup sublayer. Owns per-link protocol state;
/// the wrapped `wire` does the actual (possibly faulty) transport.
class ReliableFabric : public Fabric {
 public:
  ReliableFabric(Fabric& wire, const ReliabilityConfig& config)
      : wire_(wire),
        config_(config),
        nodes_(wire.nodes()),
        sendLinks_(std::size_t{nodes_} * nodes_),
        recvLinks_(std::size_t{nodes_} * nodes_),
        ready_(nodes_),
        links_(std::size_t{nodes_} * nodes_) {}

  std::uint32_t nodes() const noexcept override { return nodes_; }

  void send(std::uint32_t src, std::uint32_t dst,
            std::vector<rt::NetMessage>&& batch) override {
    GRAVEL_CHECK_MSG(src < nodes_ && dst < nodes_, "bad fabric endpoint");
    if (batch.empty()) return;
    {
      std::scoped_lock lk(statsMutex_);
      LinkStats& link = links_[linkIndex(src, dst)];
      ++link.batches;
      link.messages += batch.size();
      link.bytes += batch.size() * sizeof(rt::NetMessage);
      batchBytes_.add(double(batch.size() * sizeof(rt::NetMessage)));
    }
    SendLink& L = sendLinks_[linkIndex(src, dst)];
    std::uint64_t seq;
    {
      std::scoped_lock lk(L.mutex);
      seq = L.nextSeq++;
      L.unacked.emplace(seq, batch);  // keep a copy for retransmission
      if (L.unacked.size() == 1) {
        L.rto = config_.rto_base;
        L.retries = 0;
        const auto now = std::chrono::steady_clock::now();
        L.nextRetryAt = now + L.rto;
        L.oldestSince = now;  // this batch just became the oldest unacked
      }
    }
    outstanding_.fetch_add(1, std::memory_order_release);
    ship(src, dst, seq, std::move(batch));
  }

  bool tryReceive(std::uint32_t dst, Delivery& out) override {
    // Drain the wire first: ACKs are absorbed here, data batches pass
    // through dedup/reorder into the ready queue.
    Delivery raw;
    while (wire_.tryReceive(dst, raw)) {
      wire_.markResolved(dst, raw);  // wire-level accounting only
      GRAVEL_CHECK_MSG(!raw.messages.empty() &&
                           raw.messages.front().command() ==
                               rt::Command::kControl,
                       "reliable fabric received an unframed batch");
      const rt::NetMessage header = raw.messages.front();
      applyAck(dst, raw.src, header.cumAck());
      if (header.controlKind() == rt::ControlKind::kData)
        admitData(raw.src, dst, header.seq(), std::move(raw.messages));
    }
    ReadyQueue& rq = ready_[dst];
    {
      std::scoped_lock lk(rq.mutex);
      if (rq.pending.empty()) return false;
      out = std::move(rq.pending.front());
      rq.pending.pop_front();
    }
    // Decrement outside the critical section (keeps the lock hold short).
    // Ordering vs quiescent(): the count was incremented before the batch
    // became poppable, so this sub can never drive the count below the
    // number of still-pending batches.
    readyCount_.fetch_sub(1, std::memory_order_release);
    return true;
  }

  /// Resolution is what advances the cumulative ACK: the network thread has
  /// applied every message of `d`, so tell the sender.
  void markResolved(std::uint32_t self, const Delivery& d) override {
    RecvLink& R = recvLinks_[linkIndex(d.src, self)];
    // Per-link deliveries reach the (single) network thread in seq order,
    // so a plain store keeps `resolved` monotonic.
    R.resolved.store(d.seq, std::memory_order_release);
    {
      std::scoped_lock lk(statsMutex_);
      ++relStats_.acks_sent;
    }
    wire_.send(self, d.src,
               {rt::NetMessage::control(d.src, rt::ControlKind::kAck, 0, d.seq)});
  }

  /// Retransmit scan, driven by node `self`'s network thread.
  void poll(std::uint32_t self) override {
    const auto now = std::chrono::steady_clock::now();
    for (std::uint32_t dst = 0; dst < nodes_; ++dst) {
      SendLink& L = sendLinks_[linkIndex(self, dst)];
      std::vector<rt::NetMessage> frame;
      std::uint64_t seq = 0;
      {
        std::scoped_lock lk(L.mutex);
        if (L.unacked.empty() || now < L.nextRetryAt) continue;
        const auto oldest = L.unacked.begin();
        if (L.retries >= config_.max_retries) {
          latchFailure(LinkFailureInfo{self, dst, oldest->first, L.retries});
          L.nextRetryAt = now + L.rto;  // stop hot-looping a dead link
          continue;
        }
        ++L.retries;
        L.rto = std::min(L.rto * 2, config_.rto_max);
        L.nextRetryAt = now + L.rto;
        seq = oldest->first;
        frame = oldest->second;  // copy; the original stays until ACKed
      }
      {
        std::scoped_lock lk(statsMutex_);
        ++links_[linkIndex(self, dst)].retransmits;
      }
      ship(self, dst, seq, std::move(frame));
    }
  }

  /// Quiescence is ACK-based, deliberately ignoring the wire's own in-flight
  /// count: on a lossy wire that count includes batches the adversary
  /// discarded (they will never resolve — that is how a naive quiet() wedges).
  /// outstanding_ == 0 means every data batch was resolved at its destination
  /// and acknowledged back; whatever still sits in wire inboxes can only be
  /// duplicates, stale retransmissions or ACKs, all idempotent.
  bool quiescent() const override {
    return outstanding_.load(std::memory_order_acquire) == 0 &&
           readyCount_.load(std::memory_order_acquire) == 0;
  }

  std::optional<LinkFailureInfo> failure() const override {
    std::scoped_lock lk(failureMutex_);
    return failure_;
  }

  std::string describePending() const override {
    std::ostringstream os;
    os << "reliability: " << outstanding_.load(std::memory_order_acquire)
       << " unacked batch(es)";
    for (std::uint32_t s = 0; s < nodes_; ++s) {
      for (std::uint32_t d = 0; d < nodes_; ++d) {
        const SendLink& L = sendLinks_[linkIndex(s, d)];
        std::scoped_lock lk(L.mutex);
        if (L.unacked.empty()) continue;
        os << "; link " << s << "->" << d << ": " << L.unacked.size()
           << " unacked (oldest seq " << L.unacked.begin()->first
           << ", next seq " << L.nextSeq << ", retries " << L.retries << ")";
      }
    }
    for (std::uint32_t s = 0; s < nodes_; ++s) {
      for (std::uint32_t d = 0; d < nodes_; ++d) {
        const RecvLink& R = recvLinks_[linkIndex(s, d)];
        std::scoped_lock lk(R.mutex);
        if (R.reorder.empty()) continue;
        os << "; reorder " << s << "->" << d << ": " << R.reorder.size()
           << " parked (delivered " << R.delivered << ")";
      }
    }
    for (std::uint32_t n = 0; n < nodes_; ++n) {
      const ReadyQueue& rq = ready_[n];
      std::scoped_lock lk(rq.mutex);
      if (!rq.pending.empty())
        os << "; ready[" << n << "]: " << rq.pending.size()
           << " undelivered batch(es)";
    }
    os << "; " << wire_.describePending();
    return os.str();
  }

  LinkStats link(std::uint32_t src, std::uint32_t dst) const override {
    std::scoped_lock lk(statsMutex_);
    return links_[linkIndex(src, dst)];
  }

  LinkStats total() const override {
    std::scoped_lock lk(statsMutex_);
    LinkStats t;
    for (const auto& l : links_) {
      t.batches += l.batches;
      t.messages += l.messages;
      t.bytes += l.bytes;
      t.retransmits += l.retransmits;
      t.dup_drops += l.dup_drops;
      t.acks += l.acks;
    }
    return t;
  }

  RunningStat batchSizeBytes() const override {
    std::scoped_lock lk(statsMutex_);
    return batchBytes_;
  }

  FaultStats faultStats() const override { return wire_.faultStats(); }

  ReliabilityStats reliabilityStats() const override {
    std::scoped_lock lk(statsMutex_);
    return relStats_;
  }

  /// The tracer also reaches the wrapped wire, so kWireSend events fire at
  /// the real transport boundary (retransmissions included).
  void setTracer(obs::Tracer* tracer) override {
    Fabric::setTracer(tracer);
    wire_.setTracer(tracer);
  }

  /// Unacked data batches — the ACK-based quiescence depth.
  std::uint64_t pendingCount() const override {
    return outstanding_.load(std::memory_order_acquire);
  }

  /// Snapshot of one directed link's sender-side protocol state, for the
  /// metrics registry and the quiet-deadline post-mortem. Only links with
  /// unacked traffic are reported.
  struct LinkSendState {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t unacked = 0;     ///< batches awaiting cumulative ACK
    std::uint64_t oldest_seq = 0;  ///< lowest unacknowledged sequence
    std::uint64_t next_seq = 0;    ///< next sequence the sender will assign
    std::uint32_t retries = 0;     ///< consecutive retransmits w/o progress
    std::uint64_t stalled_ns = 0;  ///< time since the last cumulative-ACK
                                   ///< advance (watchdog stalled-link input)
  };

  std::vector<LinkSendState> sendStates() const {
    const auto now = std::chrono::steady_clock::now();
    std::vector<LinkSendState> out;
    for (std::uint32_t s = 0; s < nodes_; ++s) {
      for (std::uint32_t d = 0; d < nodes_; ++d) {
        const SendLink& L = sendLinks_[linkIndex(s, d)];
        std::scoped_lock lk(L.mutex);
        if (L.unacked.empty()) continue;
        const auto stalled =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - L.oldestSince)
                .count();
        out.push_back(LinkSendState{s, d, L.unacked.size(),
                                    L.unacked.begin()->first, L.nextSeq,
                                    L.retries,
                                    stalled > 0 ? std::uint64_t(stalled) : 0});
      }
    }
    return out;
  }

  /// Batches currently parked in receiver reorder buffers, cluster-wide.
  /// Gauge-cadence only: walks every link under its lock.
  std::uint64_t reorderDepth() const {
    std::uint64_t depth = 0;
    for (const RecvLink& R : recvLinks_) {
      std::scoped_lock lk(R.mutex);
      depth += R.reorder.size();
    }
    return depth;
  }

  /// The wrapped transport (wire-level counters include retransmissions,
  /// duplicates and ACK traffic; this layer's counters are app-level).
  Fabric& wire() noexcept { return wire_; }

 private:
  struct SendLink {
    mutable gravel::mutex mutex;
    std::uint64_t nextSeq = 1;
    std::map<std::uint64_t, std::vector<rt::NetMessage>> unacked;
    std::chrono::steady_clock::time_point nextRetryAt{};
    std::chrono::microseconds rto{0};
    std::uint32_t retries = 0;
    /// When the current oldest unacked seq became the oldest — reset on
    /// every cumulative-ACK advance, so (now - oldestSince) is how long the
    /// link has made zero forward progress. The stall watchdog's
    /// stalled-link signal.
    std::chrono::steady_clock::time_point oldestSince{};
  };
  struct RecvLink {
    mutable gravel::mutex mutex;
    std::uint64_t delivered = 0;  ///< highest seq handed upward (contiguous)
    std::map<std::uint64_t, std::vector<rt::NetMessage>> reorder;
    atomic<std::uint64_t> resolved{0};  ///< cumulative ACK level
  };
  struct ReadyQueue {
    mutable gravel::mutex mutex;
    std::deque<Delivery> pending;
  };

  std::size_t linkIndex(std::uint32_t src, std::uint32_t dst) const noexcept {
    return std::size_t{src} * nodes_ + dst;
  }

  /// Frames `payload` with a kData header (fresh piggybacked ACK each time,
  /// retransmissions included) and puts it on the wire.
  void ship(std::uint32_t src, std::uint32_t dst, std::uint64_t seq,
            std::vector<rt::NetMessage>&& payload) {
    // Piggyback the reverse link's resolution level: dst's traffic into src.
    const std::uint64_t piggy =
        recvLinks_[linkIndex(dst, src)].resolved.load(
            std::memory_order_acquire);
    std::vector<rt::NetMessage> frame;
    frame.reserve(payload.size() + 1);
    frame.push_back(
        rt::NetMessage::control(dst, rt::ControlKind::kData, seq, piggy));
    frame.insert(frame.end(), payload.begin(), payload.end());
    wire_.send(src, dst, std::move(frame));
  }

  void applyAck(std::uint32_t self, std::uint32_t from, std::uint64_t ack) {
    if (ack == 0) return;
    SendLink& L = sendLinks_[linkIndex(self, from)];
    std::uint64_t erased = 0;
    {
      std::scoped_lock lk(L.mutex);
      auto end = L.unacked.upper_bound(ack);
      for (auto it = L.unacked.begin(); it != end;) {
        it = L.unacked.erase(it);
        ++erased;
      }
      if (erased > 0) {
        L.retries = 0;
        L.rto = config_.rto_base;
        const auto now = std::chrono::steady_clock::now();
        L.nextRetryAt = now + L.rto;
        L.oldestSince = now;  // cumulative ACK advanced: progress was made
      }
    }
    if (erased > 0) {
      outstanding_.fetch_sub(erased, std::memory_order_release);
      std::scoped_lock lk(statsMutex_);
      ++links_[linkIndex(self, from)].acks;
    }
  }

  /// `frame` includes the header at index 0; it is stripped before delivery.
  void admitData(std::uint32_t src, std::uint32_t self, std::uint64_t seq,
                 std::vector<rt::NetMessage>&& frame) {
    frame.erase(frame.begin());
    RecvLink& R = recvLinks_[linkIndex(src, self)];
    bool reack = false;
    {
      std::scoped_lock lk(R.mutex);
      if (seq <= R.delivered) {
        // Duplicate (wire dup, or retransmit after a lost ACK). If already
        // resolved, the sender clearly missed the ACK: send it again.
        bumpDupDrop(src, self);
        reack = seq <= R.resolved.load(std::memory_order_acquire);
      } else if (seq == R.delivered + 1) {
        pushReady(self, Delivery{src, seq, std::move(frame)});
        R.delivered = seq;
        // Drain whatever the gap was hiding.
        for (auto it = R.reorder.begin();
             it != R.reorder.end() && it->first == R.delivered + 1;
             it = R.reorder.erase(it)) {
          pushReady(self, Delivery{src, it->first, std::move(it->second)});
          R.delivered = it->first;
        }
      } else if (R.reorder.count(seq)) {
        bumpDupDrop(src, self);
      } else if (R.reorder.size() >= config_.reorder_window) {
        // Out of window: drop; the sender's retransmit closes the gap first.
        std::scoped_lock slk(statsMutex_);
        ++relStats_.reorder_drops;
      } else {
        R.reorder.emplace(seq, std::move(frame));
        std::scoped_lock slk(statsMutex_);
        relStats_.reorder_peak =
            std::max(relStats_.reorder_peak,
                     std::uint64_t(R.reorder.size()));
      }
    }
    if (reack) {
      const std::uint64_t level =
          R.resolved.load(std::memory_order_acquire);
      wire_.send(self, src,
                 {rt::NetMessage::control(src, rt::ControlKind::kAck, 0, level)});
    }
  }

  void bumpDupDrop(std::uint32_t src, std::uint32_t self) {
    std::scoped_lock lk(statsMutex_);
    ++links_[linkIndex(src, self)].dup_drops;
  }

  void pushReady(std::uint32_t self, Delivery&& d) {
    ReadyQueue& rq = ready_[self];
    // Increment before the push becomes visible: quiescent() may over-count
    // briefly (conservative) but never under-counts a pending batch.
    readyCount_.fetch_add(1, std::memory_order_release);
    std::scoped_lock lk(rq.mutex);
    rq.pending.push_back(std::move(d));
  }

  void latchFailure(const LinkFailureInfo& info) {
    std::scoped_lock lk(failureMutex_);
    if (!failure_) failure_ = info;
  }

  Fabric& wire_;
  ReliabilityConfig config_;
  std::uint32_t nodes_;

  std::vector<SendLink> sendLinks_;
  std::vector<RecvLink> recvLinks_;
  std::vector<ReadyQueue> ready_;
  atomic<std::uint64_t> outstanding_{0};
  atomic<std::uint64_t> readyCount_{0};

  mutable gravel::mutex statsMutex_;
  std::vector<LinkStats> links_;
  RunningStat batchBytes_;
  ReliabilityStats relStats_;

  mutable gravel::mutex failureMutex_;
  std::optional<LinkFailureInfo> failure_;
};

}  // namespace gravel::net
