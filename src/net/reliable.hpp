// Reliable delivery over an unreliable wire: the sublayer that restores
// exactly-once, in-order batch delivery on top of FaultyFabric (or any
// Fabric), the way the paper's MPI transport would over a lossy link.
//
// Wire format: every batch ReliableFabric ships is prefixed with one
// kControl NetMessage —
//
//   word  | data batch                   | standalone ACK
//   ------+------------------------------+-------------------------------
//   cmd   | kControl | kData<<8          | kControl | kAck<<8
//         | | era<<16 | ackEra<<32       | | ackEra<<32
//   dest  | destination node             | destination node (the sender
//         |                              | being acknowledged)
//   addr  | seq: per-(src,dst) batch     | 0
//         | sequence number, from 1      |
//   value | cumAck: highest contiguously | cumAck, same
//         | *resolved* seq of the        |
//         | reverse link (piggyback)     |
//
// Sender side (per directed link): batches get consecutive seqs and are kept
// until cumulatively acknowledged; a timeout retransmits the oldest unacked
// batch with exponential backoff. What happens when the retry budget
// exhausts depends on the FailurePolicy:
//
//   fail_fast (default) — latch a structured LinkFailureInfo; quiet()
//     surfaces it as LinkFailureError. Exactly the pre-degradation behavior.
//
//   degrade — the link's circuit breaker trips (closed -> open): the link is
//     re-synced under a new era (seq state reset on both ends, stale-era
//     frames and ACKs rejected), unacked batches past the receiver's
//     settlement level are drained to the DeadLetterQueue with full
//     accounting, and the attached Membership is told. A suspect node whose
//     link trips is declared dead and excised whole. While the breaker is
//     open, sends to a dead endpoint dead-letter immediately (the GPU queues
//     keep draining); otherwise, after breaker_cooldown the next send rides
//     through as a half-open probe — an ACK closes the breaker and confirms
//     the node alive, another exhaustion re-trips it.
//
// Receiver side: batches at seq <= delivered are duplicates (dropped,
// re-ACKed if already resolved); gaps park in a bounded reorder window;
// in-order batches are handed to the network thread, and the cumulative ACK
// advances only once markResolved() says the payload was applied — so a
// duplicate can never convince quiet() that unresolved work is done.
//
// ACKs travel on the same hostile wire (piggybacked on reverse data and as
// standalone ACK batches); a lost ACK just means one more retransmission and
// one more receiver-side dup-drop. Cumulative ACKs are idempotent — and
// era-tagged, so an ACK from before a re-sync can never erase batches of the
// link's new incarnation.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic.hpp"
#include "net/dead_letter.hpp"
#include "net/fabric.hpp"
#include "runtime/membership.hpp"

namespace gravel::net {

/// What an exhausted retry budget means (DESIGN.md §11).
enum class FailurePolicy : std::uint8_t {
  kFailFast = 0,  ///< latch LinkFailureInfo; quiet() throws (the default)
  kDegrade = 1,   ///< trip the breaker, excise dead nodes, keep going
};

/// Per-link circuit breaker state (degrade policy only).
enum class BreakerState : std::uint8_t {
  kClosed = 0,    ///< normal operation
  kOpen = 1,      ///< excised: sends dead-letter (or probe after cooldown)
  kHalfOpen = 2,  ///< one probe in flight; an ACK closes, a trip re-opens
};

inline const char* breakerStateName(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

struct ReliabilityConfig {
  bool enabled = false;

  /// Initial retransmit timeout; doubles per retry up to rto_max.
  std::chrono::microseconds rto_base{2000};
  std::chrono::microseconds rto_max{50000};

  /// Consecutive retransmissions of one batch without ACK progress before
  /// the link is declared failed (fail_fast) or its breaker trips (degrade).
  std::uint32_t max_retries = 40;

  /// Receiver-side reorder buffer capacity (batches) per link; batches
  /// beyond a gap wider than this are dropped and later retransmitted.
  std::uint32_t reorder_window = 64;

  /// Failure policy for exhausted retry budgets.
  FailurePolicy policy = FailurePolicy::kFailFast;

  /// degrade: how long an open breaker refuses traffic before the next send
  /// is allowed through as a half-open probe (dead endpoints never probe).
  std::chrono::milliseconds breaker_cooldown{20};

  /// degrade: per-destination dead-letter store bound (messages). The
  /// Cluster sizes its DeadLetterQueue from this; overflow is counted, not
  /// stored, and enqueue-side admission control pushes back.
  std::uint64_t dlq_capacity = 65536;
};

/// Sequence/ACK/retransmit/dedup sublayer. Owns per-link protocol state;
/// the wrapped `wire` does the actual (possibly faulty) transport.
class ReliableFabric : public Fabric {
 public:
  ReliableFabric(Fabric& wire, const ReliabilityConfig& config)
      : wire_(wire),
        config_(config),
        nodes_(wire.nodes()),
        sendLinks_(std::size_t{nodes_} * nodes_),
        recvLinks_(std::size_t{nodes_} * nodes_),
        ready_(nodes_),
        eras_(std::size_t{nodes_} * nodes_),
        links_(std::size_t{nodes_} * nodes_) {}

  std::uint32_t nodes() const noexcept override { return nodes_; }

  /// Enables the degrade policy's collaborators. Both must outlive this
  /// fabric; without them (or under fail_fast) the breaker logic is inert
  /// and behavior is bit-identical to the pre-degradation layer.
  void attachDegrade(rt::Membership* membership, DeadLetterQueue* dlq) {
    membership_ = membership;
    dlq_ = dlq;
  }

  void send(std::uint32_t src, std::uint32_t dst,
            std::vector<rt::NetMessage>&& batch) override {
    GRAVEL_CHECK_MSG(src < nodes_ && dst < nodes_, "bad fabric endpoint");
    if (batch.empty()) return;
    {
      // Counted before any breaker decision: `sent` includes dead-lettered
      // messages, which is what makes delivered + dead_lettered == sent the
      // conservation invariant of a degraded run.
      gravel::lock_guard lk(statsMutex_);
      LinkStats& link = links_[linkIndex(src, dst)];
      ++link.batches;
      link.messages += batch.size();
      link.bytes += batch.size() * sizeof(rt::NetMessage);
      batchBytes_.add(double(batch.size() * sizeof(rt::NetMessage)));
    }
    SendLink& L = sendLinks_[linkIndex(src, dst)];
    std::uint64_t seq = 0;
    std::uint32_t era = 0;
    bool toDeadLetter = false;
    bool probed = false;
    {
      gravel::lock_guard lk(L.mutex);
      if (degrade() && L.breaker == BreakerState::kOpen) {
        const bool endpointDead =
            membership_->dead(src) || membership_->dead(dst);
        const bool cooled = std::chrono::steady_clock::now() - L.openedAt >=
                            config_.breaker_cooldown;
        if (endpointDead || !cooled) {
          toDeadLetter = true;
        } else {
          L.breaker = BreakerState::kHalfOpen;  // this batch is the probe
          probed = true;
        }
      }
      if (!toDeadLetter) {
        seq = L.nextSeq++;
        // Era read under L.mutex: resyncLink bumps it under the same lock,
        // so a frame enqueued as unacked always carries the era its entry
        // was created under — a concurrent re-sync leaves it stale, and the
        // receiver rejects it instead of double-counting.
        era = eras_[linkIndex(src, dst)].load(std::memory_order_relaxed);
        L.unacked.emplace(seq, batch);  // keep a copy for retransmission
        if (L.unacked.size() == 1) {
          L.rto = config_.rto_base;
          L.retries = 0;
          const auto now = std::chrono::steady_clock::now();
          L.nextRetryAt = now + L.rto;
          L.oldestSince = now;  // this batch just became the oldest unacked
        }
      }
    }
    if (toDeadLetter) {
      dlq_->push(src, dst, std::move(batch));
      return;
    }
    if (probed) {
      gravel::lock_guard lk(statsMutex_);
      ++relStats_.probes;
    }
    outstanding_.fetch_add(1, std::memory_order_release);  // pairs-with: reliable.outstanding
    ship(src, dst, seq, era, std::move(batch));
  }

  bool tryReceive(std::uint32_t dst, Delivery& out) override {
    // Drain the wire first: ACKs are absorbed here, data batches pass
    // through dedup/reorder into the ready queue.
    Delivery raw;
    while (wire_.tryReceive(dst, raw)) {
      wire_.markResolved(dst, raw);  // wire-level accounting only
      GRAVEL_CHECK_MSG(!raw.messages.empty() &&
                           raw.messages.front().command() ==
                               rt::Command::kControl,
                       "reliable fabric received an unframed batch");
      const rt::NetMessage header = raw.messages.front();
      applyAck(dst, raw.src, header.cumAck(), header.ackEra());
      if (header.controlKind() == rt::ControlKind::kData)
        admitData(raw.src, dst, header.seq(), header.era(),
                  std::move(raw.messages));
    }
    ReadyQueue& rq = ready_[dst];
    {
      gravel::lock_guard lk(rq.mutex);
      if (rq.pending.empty()) return false;
      out = std::move(rq.pending.front());
      rq.pending.pop_front();
    }
    // Decrement outside the critical section (keeps the lock hold short).
    // Ordering vs quiescent(): the count was incremented before the batch
    // became poppable, so this sub can never drive the count below the
    // number of still-pending batches.
    readyCount_.fetch_sub(1, std::memory_order_release);  // pairs-with: reliable.ready-count
    return true;
  }

  /// Resolution is what advances the cumulative ACK: the network thread has
  /// applied every message of `d`, so tell the sender. A delivery admitted
  /// under a stale era (the link was re-synced after admission) is never
  /// acknowledged — its sender-side copy was already settled or
  /// dead-lettered, and a stale seq must not corrupt the new incarnation's
  /// resolution level.
  void markResolved(std::uint32_t self, const Delivery& d) override {
    RecvLink& R = recvLinks_[linkIndex(d.src, self)];
    std::uint32_t ackEra = 0;
    {
      gravel::lock_guard lk(R.mutex);
      const std::uint32_t era =
          eras_[linkIndex(d.src, self)].load(std::memory_order_relaxed) &
          kEraWireMask;
      if (era != (d.era & kEraWireMask)) return;
      // Per-link deliveries reach the (single) network thread in seq order,
      // so a plain store keeps `resolved` monotonic within an era.
      R.resolved.store(d.seq, std::memory_order_release);  // pairs-with: reliable.resolved
      ackEra = era;
    }
    {
      gravel::lock_guard lk(statsMutex_);
      ++relStats_.acks_sent;
    }
    wire_.send(self, d.src,
               {rt::NetMessage::control(d.src, rt::ControlKind::kAck, 0, d.seq,
                                        0, ackEra)});
  }

  /// Retransmit scan, driven by node `self`'s network thread.
  void poll(std::uint32_t self) override {
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::uint32_t> exhausted;
    for (std::uint32_t dst = 0; dst < nodes_; ++dst) {
      SendLink& L = sendLinks_[linkIndex(self, dst)];
      std::vector<rt::NetMessage> frame;
      std::uint64_t seq = 0;
      std::uint32_t era = 0;
      {
        gravel::lock_guard lk(L.mutex);
        if (L.unacked.empty() || now < L.nextRetryAt) continue;
        const auto oldest = L.unacked.begin();
        if (L.retries >= config_.max_retries) {
          L.nextRetryAt = now + L.rto;  // stop hot-looping a dead link
          if (!degrade()) {
            latchFailure(
                LinkFailureInfo{self, dst, oldest->first, L.retries});
            continue;
          }
          exhausted.push_back(dst);  // trip outside the link lock
          continue;
        }
        ++L.retries;
        L.rto = std::min(L.rto * 2, config_.rto_max);
        L.nextRetryAt = now + L.rto;
        seq = oldest->first;
        frame = oldest->second;  // copy; the original stays until ACKed
        era = eras_[linkIndex(self, dst)].load(std::memory_order_relaxed);
      }
      {
        gravel::lock_guard lk(statsMutex_);
        ++links_[linkIndex(self, dst)].retransmits;
      }
      ship(self, dst, seq, era, std::move(frame));
    }
    for (std::uint32_t dst : exhausted) tripLink(self, dst);
  }

  /// Quiescence is ACK-based, deliberately ignoring the wire's own in-flight
  /// count: on a lossy wire that count includes batches the adversary
  /// discarded (they will never resolve — that is how a naive quiet() wedges).
  /// outstanding_ == 0 means every data batch was resolved at its destination
  /// and acknowledged back — or settled/dead-lettered by a breaker trip;
  /// whatever still sits in wire inboxes can only be duplicates, stale
  /// retransmissions or ACKs, all idempotent (stale eras are rejected).
  bool quiescent() const override {
    // pairs-with: reliable.outstanding, reliable.ready-count
    return outstanding_.load(std::memory_order_acquire) == 0 &&
           readyCount_.load(std::memory_order_acquire) == 0;
  }

  std::optional<LinkFailureInfo> failure() const override {
    gravel::lock_guard lk(failureMutex_);
    return failure_;
  }

  std::string describePending() const override {
    std::ostringstream os;
    os << "reliability: " << outstanding_.load(std::memory_order_acquire)
       << " unacked batch(es)";
    for (std::uint32_t s = 0; s < nodes_; ++s) {
      for (std::uint32_t d = 0; d < nodes_; ++d) {
        const SendLink& L = sendLinks_[linkIndex(s, d)];
        gravel::lock_guard lk(L.mutex);
        if (L.unacked.empty()) continue;
        os << "; link " << s << "->" << d << ": " << L.unacked.size()
           << " unacked (oldest seq " << L.unacked.begin()->first
           << ", next seq " << L.nextSeq << ", retries " << L.retries << ")";
      }
    }
    for (std::uint32_t s = 0; s < nodes_; ++s) {
      for (std::uint32_t d = 0; d < nodes_; ++d) {
        const RecvLink& R = recvLinks_[linkIndex(s, d)];
        gravel::lock_guard lk(R.mutex);
        if (R.reorder.empty()) continue;
        os << "; reorder " << s << "->" << d << ": " << R.reorder.size()
           << " parked (delivered " << R.delivered << ")";
      }
    }
    for (std::uint32_t n = 0; n < nodes_; ++n) {
      const ReadyQueue& rq = ready_[n];
      gravel::lock_guard lk(rq.mutex);
      if (!rq.pending.empty())
        os << "; ready[" << n << "]: " << rq.pending.size()
           << " undelivered batch(es)";
    }
    if (degrade()) {
      for (const LinkBreakerSnapshot& b : breakerStates())
        if (b.state != BreakerState::kClosed)
          os << "; link " << b.src << "->" << b.dst
             << " excised by failure policy (breaker "
             << breakerStateName(b.state) << ", era " << b.era << ")";
      const DeadLetterStats d = dlq_->stats();
      if (d.dead_lettered != 0)
        os << "; dead-letter: " << d.dead_lettered << " message(s) ("
           << d.stored << " stored, " << d.redelivered << " redelivered, "
           << d.evicted << " evicted)";
    }
    os << "; " << wire_.describePending();
    return os.str();
  }

  LinkStats link(std::uint32_t src, std::uint32_t dst) const override {
    gravel::lock_guard lk(statsMutex_);
    return links_[linkIndex(src, dst)];
  }

  LinkStats total() const override {
    gravel::lock_guard lk(statsMutex_);
    LinkStats t;
    for (const auto& l : links_) {
      t.batches += l.batches;
      t.messages += l.messages;
      t.bytes += l.bytes;
      t.retransmits += l.retransmits;
      t.dup_drops += l.dup_drops;
      t.acks += l.acks;
    }
    return t;
  }

  RunningStat batchSizeBytes() const override {
    gravel::lock_guard lk(statsMutex_);
    return batchBytes_;
  }

  FaultStats faultStats() const override { return wire_.faultStats(); }

  ReliabilityStats reliabilityStats() const override {
    gravel::lock_guard lk(statsMutex_);
    return relStats_;
  }

  /// The tracer also reaches the wrapped wire, so kWireSend events fire at
  /// the real transport boundary (retransmissions included).
  void setTracer(obs::Tracer* tracer) override {
    Fabric::setTracer(tracer);
    wire_.setTracer(tracer);
  }

  /// Unacked data batches — the ACK-based quiescence depth.
  std::uint64_t pendingCount() const override {
    return outstanding_.load(std::memory_order_acquire);  // pairs-with: reliable.outstanding
  }

  /// Snapshot of one directed link's sender-side protocol state, for the
  /// metrics registry and the quiet-deadline post-mortem. Only links with
  /// unacked traffic are reported.
  struct LinkSendState {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t unacked = 0;     ///< batches awaiting cumulative ACK
    std::uint64_t oldest_seq = 0;  ///< lowest unacknowledged sequence
    std::uint64_t next_seq = 0;    ///< next sequence the sender will assign
    std::uint32_t retries = 0;     ///< consecutive retransmits w/o progress
    std::uint64_t stalled_ns = 0;  ///< time since the last cumulative-ACK
                                   ///< advance (watchdog stalled-link input)
    BreakerState breaker = BreakerState::kClosed;
    std::uint32_t era = 0;  ///< current link era (re-sync count)
  };

  std::vector<LinkSendState> sendStates() const {
    const auto now = std::chrono::steady_clock::now();
    std::vector<LinkSendState> out;
    for (std::uint32_t s = 0; s < nodes_; ++s) {
      for (std::uint32_t d = 0; d < nodes_; ++d) {
        const SendLink& L = sendLinks_[linkIndex(s, d)];
        gravel::lock_guard lk(L.mutex);
        if (L.unacked.empty()) continue;
        const auto stalled =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - L.oldestSince)
                .count();
        out.push_back(LinkSendState{
            s, d, L.unacked.size(), L.unacked.begin()->first, L.nextSeq,
            L.retries, stalled > 0 ? std::uint64_t(stalled) : 0, L.breaker,
            // pairs-with: reliable.era
            eras_[linkIndex(s, d)].load(std::memory_order_acquire)});
      }
    }
    return out;
  }

  /// Breaker/era view of every link that has ever tripped or re-synced —
  /// the DegradedRunReport's tripped_links and the post-mortem's excision
  /// lines come from here.
  struct LinkBreakerSnapshot {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    BreakerState state = BreakerState::kClosed;
    std::uint32_t era = 0;
  };

  std::vector<LinkBreakerSnapshot> breakerStates() const {
    std::vector<LinkBreakerSnapshot> out;
    for (std::uint32_t s = 0; s < nodes_; ++s) {
      for (std::uint32_t d = 0; d < nodes_; ++d) {
        const std::uint32_t era =
            eras_[linkIndex(s, d)].load(std::memory_order_acquire);
        const SendLink& L = sendLinks_[linkIndex(s, d)];
        gravel::lock_guard lk(L.mutex);
        if (L.breaker == BreakerState::kClosed && era == 0) continue;
        out.push_back(LinkBreakerSnapshot{s, d, L.breaker, era});
      }
    }
    return out;
  }

  /// Batches currently parked in receiver reorder buffers, cluster-wide.
  /// Gauge-cadence only: walks every link under its lock.
  std::uint64_t reorderDepth() const {
    std::uint64_t depth = 0;
    for (const RecvLink& R : recvLinks_) {
      gravel::lock_guard lk(R.mutex);
      depth += R.reorder.size();
    }
    return depth;
  }

  // --- crash/restart injection (degrade policy; Cluster::crashNode) -------

  /// Excises every link touching `n`: breakers open, eras bump, unacked
  /// traffic settles against the receiver's truth and the remainder is
  /// dead-lettered. `receiverStopped` says node n's network thread has been
  /// stopped and joined (crashNode): its ready queue is discarded and
  /// settlement uses the *resolved* level; a merely unreachable node (trip
  /// path) still runs its network thread, which will drain what was already
  /// admitted, so settlement uses the *delivered* level.
  void exciseNode(std::uint32_t n, bool receiverStopped) {
    GRAVEL_CHECK_MSG(degrade(), "exciseNode requires the degrade policy");
    for (std::uint32_t peer = 0; peer < nodes_; ++peer) {
      resyncLink(peer, n, receiverStopped, BreakerState::kOpen);
      if (peer != n)
        resyncLink(n, peer, /*receiverStopped=*/false, BreakerState::kOpen);
    }
    if (receiverStopped) clearReady(n);
  }

  /// Re-syncs every link touching `n` for a restart: seq state back to 1 on
  /// both ends, another era bump (so frames from the dead incarnation stay
  /// rejected), breakers closed. Call after Membership::restart(n) and
  /// before the node's network thread is started again.
  void resetNode(std::uint32_t n) {
    GRAVEL_CHECK_MSG(degrade(), "resetNode requires the degrade policy");
    for (std::uint32_t peer = 0; peer < nodes_; ++peer) {
      resyncLink(peer, n, /*receiverStopped=*/true, BreakerState::kClosed);
      if (peer != n)
        resyncLink(n, peer, /*receiverStopped=*/true, BreakerState::kClosed);
    }
  }

  /// Redelivers dead-lettered traffic involving `n` through the normal send
  /// path (fresh seqs under the new era). Entries whose counterpart is
  /// still dead are re-parked without recounting. Redelivered messages
  /// count as sent again, keeping delivered + dead_lettered == sent exact.
  void redeliver(std::uint32_t n) {
    GRAVEL_CHECK_MSG(degrade(), "redeliver requires the degrade policy");
    for (DeadLetterQueue::Entry& e : dlq_->drainFor(n)) {
      if (membership_->dead(e.src) || membership_->dead(e.dst)) {
        dlq_->restore(std::move(e));
        continue;
      }
      const std::uint64_t count = e.msgs.size();
      send(e.src, e.dst, std::move(e.msgs));
      dlq_->noteRedelivered(count);
    }
  }

  /// The wrapped transport (wire-level counters include retransmissions,
  /// duplicates and ACK traffic; this layer's counters are app-level).
  Fabric& wire() noexcept { return wire_; }

 private:
  static constexpr std::uint32_t kEraWireMask =
      std::uint32_t(rt::NetMessage::kEraFieldMask);

  struct SendLink {
    mutable gravel::mutex mutex{"ReliableFabric::SendLink::mutex"};
    std::uint64_t nextSeq GRAVEL_GUARDED_BY(mutex) = 1;
    std::map<std::uint64_t, std::vector<rt::NetMessage>> unacked
        GRAVEL_GUARDED_BY(mutex);
    std::chrono::steady_clock::time_point nextRetryAt
        GRAVEL_GUARDED_BY(mutex){};
    std::chrono::microseconds rto GRAVEL_GUARDED_BY(mutex){0};
    std::uint32_t retries GRAVEL_GUARDED_BY(mutex) = 0;
    /// When the current oldest unacked seq became the oldest — reset on
    /// every cumulative-ACK advance, so (now - oldestSince) is how long the
    /// link has made zero forward progress. The stall watchdog's
    /// stalled-link signal.
    std::chrono::steady_clock::time_point oldestSince
        GRAVEL_GUARDED_BY(mutex){};
    // Circuit breaker (degrade policy; untouched under fail_fast).
    BreakerState breaker GRAVEL_GUARDED_BY(mutex) = BreakerState::kClosed;
    std::chrono::steady_clock::time_point openedAt GRAVEL_GUARDED_BY(mutex){};
  };
  struct RecvLink {
    mutable gravel::mutex mutex{"ReliableFabric::RecvLink::mutex"};
    /// Highest seq handed upward (contiguous).
    std::uint64_t delivered GRAVEL_GUARDED_BY(mutex) = 0;
    std::map<std::uint64_t, std::vector<rt::NetMessage>> reorder
        GRAVEL_GUARDED_BY(mutex);
    /// Cumulative ACK level. Atomic, not guarded: written under mutex but
    /// read lock-free by ship()'s piggyback path (era-fenced; see ship()).
    atomic<std::uint64_t> resolved{0};
  };
  struct ReadyQueue {
    mutable gravel::mutex mutex{"ReliableFabric::ReadyQueue::mutex"};
    std::deque<Delivery> pending GRAVEL_GUARDED_BY(mutex);
  };

  std::size_t linkIndex(std::uint32_t src, std::uint32_t dst) const noexcept {
    return std::size_t{src} * nodes_ + dst;
  }

  bool degrade() const noexcept {
    return config_.policy == FailurePolicy::kDegrade &&
           membership_ != nullptr && dlq_ != nullptr;
  }

  /// Frames `payload` with a kData header (fresh piggybacked ACK each time,
  /// retransmissions included) and puts it on the wire. `era` is the link
  /// era the batch's unacked entry was created under (read under L.mutex).
  void ship(std::uint32_t src, std::uint32_t dst, std::uint64_t seq,
            std::uint32_t era, std::vector<rt::NetMessage>&& payload) {
    // Piggyback the reverse link's resolution level: dst's traffic into src.
    // Era first, then the level — resyncLink zeroes `resolved` before the
    // era bump (release), so reading the new era (acquire) guarantees the
    // level read next is not a stale pre-resync value: a new-era frame can
    // never piggyback an ACK from the old incarnation.
    const std::uint32_t ackEra =
        eras_[linkIndex(dst, src)].load(std::memory_order_acquire) &
        kEraWireMask;
    const std::uint64_t piggy =
        recvLinks_[linkIndex(dst, src)].resolved.load(
            std::memory_order_acquire);
    std::vector<rt::NetMessage> frame;
    frame.reserve(payload.size() + 1);
    frame.push_back(rt::NetMessage::control(
        dst, rt::ControlKind::kData, seq, piggy, era & kEraWireMask, ackEra));
    frame.insert(frame.end(), payload.begin(), payload.end());
    wire_.send(src, dst, std::move(frame));
  }

  void applyAck(std::uint32_t self, std::uint32_t from, std::uint64_t ack,
                std::uint32_t ackEra) {
    if (ack == 0) return;
    SendLink& L = sendLinks_[linkIndex(self, from)];
    std::uint64_t erased = 0;
    bool stale = false;
    bool probeClosed = false;
    {
      gravel::lock_guard lk(L.mutex);
      if ((eras_[linkIndex(self, from)].load(std::memory_order_relaxed) &
           kEraWireMask) != (ackEra & kEraWireMask)) {
        // An ACK from before a re-sync: its seqs belong to the old
        // incarnation and must not erase the new one's unacked batches.
        stale = true;
      } else {
        auto end = L.unacked.upper_bound(ack);
        for (auto it = L.unacked.begin(); it != end;) {
          it = L.unacked.erase(it);
          ++erased;
        }
        if (erased > 0) {
          L.retries = 0;
          L.rto = config_.rto_base;
          const auto now = std::chrono::steady_clock::now();
          L.nextRetryAt = now + L.rto;
          L.oldestSince = now;  // cumulative ACK advanced: progress was made
          if (L.breaker == BreakerState::kHalfOpen) {
            L.breaker = BreakerState::kClosed;  // the probe got through
            probeClosed = true;
          }
        }
      }
    }
    if (stale) {
      gravel::lock_guard lk(statsMutex_);
      ++relStats_.stale_ack_drops;
      return;
    }
    if (erased > 0) {
      // pairs-with: reliable.outstanding
      outstanding_.fetch_sub(erased, std::memory_order_release);
      gravel::lock_guard lk(statsMutex_);
      ++links_[linkIndex(self, from)].acks;
    }
    if (erased > 0 && membership_ != nullptr) {
      // ACK progress is proof of life: it clears a stall-raised suspicion
      // (or reconfirms a restarted node). health() is lock-free, so the
      // common all-alive case costs one relaxed-ish load here.
      const rt::NodeHealth h = membership_->health(from);
      if (probeClosed || h == rt::NodeHealth::kSuspect ||
          h == rt::NodeHealth::kRecovered)
        membership_->confirmAlive(
            from, probeClosed ? "half-open probe acknowledged"
                              : "cumulative ACK progress resumed");
    }
  }

  /// `frame` includes the header at index 0; it is stripped before delivery.
  void admitData(std::uint32_t src, std::uint32_t self, std::uint64_t seq,
                 std::uint32_t era, std::vector<rt::NetMessage>&& frame) {
    frame.erase(frame.begin());
    RecvLink& R = recvLinks_[linkIndex(src, self)];
    bool reack = false;
    bool stale = false;
    std::uint64_t level = 0;
    std::uint32_t ackEra = 0;
    {
      gravel::lock_guard lk(R.mutex);
      const std::uint32_t current =
          eras_[linkIndex(src, self)].load(std::memory_order_relaxed) &
          kEraWireMask;
      if ((era & kEraWireMask) != current) {
        // Stale incarnation: the link was excised/re-synced after this
        // frame was shipped. Its payload was settled or dead-lettered on
        // the sender side — applying it here would double-count.
        stale = true;
      } else if (seq <= R.delivered) {
        // Duplicate (wire dup, or retransmit after a lost ACK). If already
        // resolved, the sender clearly missed the ACK: send it again.
        bumpDupDrop(src, self);
        // pairs-with: reliable.resolved
        reack = seq <= R.resolved.load(std::memory_order_acquire);
        level = R.resolved.load(std::memory_order_acquire);
        ackEra = current;
      } else if (seq == R.delivered + 1) {
        pushReady(self, Delivery{src, seq, std::move(frame), era});
        R.delivered = seq;
        // Drain whatever the gap was hiding.
        for (auto it = R.reorder.begin();
             it != R.reorder.end() && it->first == R.delivered + 1;
             it = R.reorder.erase(it)) {
          pushReady(self, Delivery{src, it->first, std::move(it->second), era});
          R.delivered = it->first;
        }
      } else if (R.reorder.count(seq)) {
        bumpDupDrop(src, self);
      } else if (R.reorder.size() >= config_.reorder_window) {
        // Out of window: drop; the sender's retransmit closes the gap first.
        gravel::lock_guard slk(statsMutex_);
        ++relStats_.reorder_drops;
      } else {
        R.reorder.emplace(seq, std::move(frame));
        gravel::lock_guard slk(statsMutex_);
        relStats_.reorder_peak =
            std::max(relStats_.reorder_peak,
                     std::uint64_t(R.reorder.size()));
      }
    }
    if (stale) {
      gravel::lock_guard lk(statsMutex_);
      ++relStats_.stale_data_drops;
      return;
    }
    if (reack) {
      wire_.send(self, src,
                 {rt::NetMessage::control(src, rt::ControlKind::kAck, 0, level,
                                          0, ackEra)});
    }
  }

  void bumpDupDrop(std::uint32_t src, std::uint32_t self) {
    gravel::lock_guard lk(statsMutex_);
    ++links_[linkIndex(src, self)].dup_drops;
  }

  void pushReady(std::uint32_t self, Delivery&& d) {
    ReadyQueue& rq = ready_[self];
    // Increment before the push becomes visible: quiescent() may over-count
    // briefly (conservative) but never under-counts a pending batch.
    readyCount_.fetch_add(1, std::memory_order_release);  // pairs-with: reliable.ready-count
    gravel::lock_guard lk(rq.mutex);
    rq.pending.push_back(std::move(d));
  }

  void latchFailure(const LinkFailureInfo& info) {
    gravel::lock_guard lk(failureMutex_);
    if (!failure_) failure_ = info;
  }

  /// An exhausted retry budget under the degrade policy: excise this link;
  /// when the failure detector already suspected the destination, the
  /// exhaustion corroborates the suspicion and the whole node is excised.
  void tripLink(std::uint32_t src, std::uint32_t dst) {
    // A dead source does not vote: a fully isolated node's own outgoing
    // links exhaust too, and letting it declare every peer dead would turn
    // one failure into eight.
    if (membership_->dead(src)) return;
    const std::string link =
        std::to_string(src) + "->" + std::to_string(dst);
    const rt::NodeHealth before = membership_->health(dst);
    resyncLink(src, dst, /*receiverStopped=*/false, BreakerState::kOpen);
    if (membership_->dead(dst)) return;  // raced with another excision
    if (before == rt::NodeHealth::kSuspect) {
      if (membership_->declareDead(
              dst, "retry budget exhausted on link " + link +
                       " while suspect"))
        exciseNode(dst, /*receiverStopped=*/false);
    } else {
      membership_->suspect(dst, "retry budget exhausted on link " + link);
    }
  }

  /// Re-syncs one directed link under a new era: settle what the receiver
  /// already has, dead-letter the rest, reset seq state on both ends, leave
  /// the breaker in `endState` (open for excision, closed for restart).
  void resyncLink(std::uint32_t s, std::uint32_t d, bool receiverStopped,
                  BreakerState endState) {
    SendLink& L = sendLinks_[linkIndex(s, d)];
    RecvLink& R = recvLinks_[linkIndex(s, d)];
    std::vector<std::vector<rt::NetMessage>> dead;
    std::uint64_t erased = 0;
    bool tripped = false;
    {
      // Fixed L-then-R order (gravel::mutex has no try_lock, so no
      // std::lock deadlock-avoidance): safe because every other path in
      // this class holds at most one of the two link mutexes at a time.
      gravel::lock_guard lkL(L.mutex);
      gravel::lock_guard lkR(R.mutex);
      // Settlement: batches the receiver has resolved (stopped receiver) or
      // admitted in order (running receiver — its network thread will still
      // resolve everything already in the ready queue) count as delivered;
      // everything past that level is owed and goes to the dead-letter
      // queue. Each batch lands in exactly one bucket.
      const std::uint64_t settle =
          receiverStopped ? R.resolved.load(std::memory_order_acquire)
                          : R.delivered;
      for (auto& [seq, batch] : L.unacked) {
        ++erased;
        if (seq > settle) dead.push_back(std::move(batch));
      }
      L.unacked.clear();
      L.nextSeq = 1;
      L.retries = 0;
      L.rto = config_.rto_base;
      if (endState == BreakerState::kOpen &&
          L.breaker != BreakerState::kOpen)
        tripped = true;
      L.breaker = endState;
      L.openedAt = std::chrono::steady_clock::now();
      R.delivered = 0;
      R.reorder.clear();
      // `resolved` before the era bump: ship()'s lock-free piggyback reads
      // era (acquire) first, so a new era implies it sees this reset.
      R.resolved.store(0, std::memory_order_release);  // pairs-with: reliable.resolved
      // pairs-with: reliable.era
      eras_[linkIndex(s, d)].fetch_add(1, std::memory_order_release);
    }
    if (erased > 0)
      // pairs-with: reliable.outstanding
      outstanding_.fetch_sub(erased, std::memory_order_release);
    if (tripped) {
      gravel::lock_guard lk(statsMutex_);
      ++relStats_.breaker_trips;
    }
    for (std::vector<rt::NetMessage>& batch : dead)
      dlq_->push(s, d, std::move(batch));
  }

  /// Discards node n's ready queue (crashNode: its network thread is gone;
  /// the sender-side copies of these batches were just dead-lettered).
  void clearReady(std::uint32_t n) {
    ReadyQueue& rq = ready_[n];
    std::size_t dropped = 0;
    {
      gravel::lock_guard lk(rq.mutex);
      dropped = rq.pending.size();
      rq.pending.clear();
    }
    if (dropped > 0)
      // pairs-with: reliable.ready-count
      readyCount_.fetch_sub(dropped, std::memory_order_release);
  }

  Fabric& wire_;
  ReliabilityConfig config_;
  std::uint32_t nodes_;

  rt::Membership* membership_ = nullptr;  ///< degrade policy collaborators
  DeadLetterQueue* dlq_ = nullptr;

  std::vector<SendLink> sendLinks_;
  std::vector<RecvLink> recvLinks_;
  std::vector<ReadyQueue> ready_;
  /// Per-link incarnation counters, shared by the sender and receiver ends
  /// (in-process). Bumped under both link mutexes by resyncLink; the low 16
  /// bits travel on the wire.
  std::vector<atomic<std::uint32_t>> eras_;
  atomic<std::uint64_t> outstanding_{0};
  atomic<std::uint64_t> readyCount_{0};

  mutable gravel::mutex statsMutex_{"ReliableFabric::statsMutex_"};
  std::vector<LinkStats> links_ GRAVEL_GUARDED_BY(statsMutex_);
  RunningStat batchBytes_ GRAVEL_GUARDED_BY(statsMutex_);
  ReliabilityStats relStats_ GRAVEL_GUARDED_BY(statsMutex_);

  mutable gravel::mutex failureMutex_{"ReliableFabric::failureMutex_"};
  std::optional<LinkFailureInfo> failure_ GRAVEL_GUARDED_BY(failureMutex_);
};

}  // namespace gravel::net
