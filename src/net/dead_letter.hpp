// Bounded per-destination dead-letter queue (DESIGN.md §11).
//
// When the failure policy is `degrade`, messages owed to an excised link are
// drained here instead of being retried forever — the aggregator keeps the
// GPU queues moving (the GICC/proxy-thread property) and every message stays
// accounted for. The conservation invariant the degraded quiet() reports is
//
//     delivered + dead_lettered == sent
//
// so `dead_lettered` counts every message routed here, even when the bounded
// store is full and the payload itself is discarded (`evicted` tracks the
// discarded subset — those cannot be redelivered, but they were never
// silently lost either). `rejected` counts device-side admission pushback:
// operations refused at enqueue time, before they ever became sends.
//
// Entries keep their (src, dst) so a restarted node can be paid back:
// drainFor(n) removes everything owed to n (dst == n) plus everything n
// itself owed others (src == n); the ReliableFabric redelivers them through
// the normal send path under the link's new era.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/atomic.hpp"
#include "common/error.hpp"
#include "runtime/message.hpp"

namespace gravel::net {

/// Cumulative accounting; `stored` is the only instantaneous value.
struct DeadLetterStats {
  std::uint64_t dead_lettered = 0;  ///< messages routed here (conservation)
  std::uint64_t redelivered = 0;    ///< messages re-sent after a restart
  std::uint64_t rejected = 0;       ///< enqueue-side admission refusals
  std::uint64_t evicted = 0;        ///< dead-lettered past the bound (dropped)
  std::uint64_t stored = 0;         ///< messages currently parked
};

class DeadLetterQueue {
 public:
  struct Entry {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::vector<rt::NetMessage> msgs;
  };

  DeadLetterQueue(std::uint32_t nodes, std::uint64_t capacityPerDest)
      : nodes_(nodes),
        capacity_(capacityPerDest),
        perDest_(nodes),
        storedPerDest_(nodes, 0) {
    GRAVEL_CHECK_MSG(capacityPerDest > 0,
                     "dead-letter queue capacity must be >= 1 message");
  }

  DeadLetterQueue(const DeadLetterQueue&) = delete;
  DeadLetterQueue& operator=(const DeadLetterQueue&) = delete;

  std::uint64_t capacityPerDest() const noexcept { return capacity_; }

  /// Dead-letters a batch. Always counted; stored only while the
  /// destination's bound has room (partial storage keeps the accounting
  /// exact: the overflow is counted evicted, message-granular).
  void push(std::uint32_t src, std::uint32_t dst,
            std::vector<rt::NetMessage>&& msgs) {
    if (msgs.empty()) return;
    GRAVEL_CHECK_MSG(src < nodes_ && dst < nodes_, "dead-letter: bad link");
    gravel::lock_guard lk(mutex_);
    const std::uint64_t n = msgs.size();
    stats_.dead_lettered += n;
    const std::uint64_t room = capacity_ > storedPerDest_[dst]
                                   ? capacity_ - storedPerDest_[dst]
                                   : 0;
    if (room == 0) {
      stats_.evicted += n;
      return;
    }
    if (n > room) {
      stats_.evicted += n - room;
      msgs.resize(room);
    }
    storedPerDest_[dst] += msgs.size();
    stats_.stored += msgs.size();
    perDest_[dst].push_back(Entry{src, dst, std::move(msgs)});
  }

  /// Re-parks an entry drained by drainFor() whose source is still dead —
  /// storage-only, no dead_lettered recount (it was counted on first push).
  void restore(Entry&& e) {
    if (e.msgs.empty()) return;
    gravel::lock_guard lk(mutex_);
    storedPerDest_[e.dst] += e.msgs.size();
    stats_.stored += e.msgs.size();
    perDest_[e.dst].push_back(std::move(e));
  }

  /// True when the destination's store is at its bound — the admission
  /// check's pushback condition.
  bool full(std::uint32_t dst) const {
    gravel::lock_guard lk(mutex_);
    return storedPerDest_[dst] >= capacity_;
  }

  std::uint64_t storedFor(std::uint32_t dst) const {
    gravel::lock_guard lk(mutex_);
    return storedPerDest_[dst];
  }

  /// Every destination's stored depth under one lock acquisition — the
  /// status endpoint's bulk view (storedFor() is the single-dest probe).
  std::vector<std::uint64_t> storedPerDest() const {
    gravel::lock_guard lk(mutex_);
    return storedPerDest_;
  }

  void noteRejected(std::uint64_t n) {
    gravel::lock_guard lk(mutex_);
    stats_.rejected += n;
  }

  void noteRedelivered(std::uint64_t n) {
    gravel::lock_guard lk(mutex_);
    stats_.redelivered += n;
  }

  /// Removes every entry involving `node` (owed to it, or owed by it) for
  /// redelivery after a restart.
  std::vector<Entry> drainFor(std::uint32_t node) {
    gravel::lock_guard lk(mutex_);
    std::vector<Entry> out;
    for (std::uint32_t dst = 0; dst < nodes_; ++dst) {
      std::deque<Entry>& q = perDest_[dst];
      for (auto it = q.begin(); it != q.end();) {
        if (it->src != node && it->dst != node) {
          ++it;
          continue;
        }
        storedPerDest_[dst] -= it->msgs.size();
        stats_.stored -= it->msgs.size();
        out.push_back(std::move(*it));
        it = q.erase(it);
      }
    }
    return out;
  }

  DeadLetterStats stats() const {
    gravel::lock_guard lk(mutex_);
    return stats_;
  }

 private:
  std::uint32_t nodes_;
  std::uint64_t capacity_;
  mutable gravel::mutex mutex_{"DeadLetterQueue::mutex_"};
  /// Indexed by destination.
  std::vector<std::deque<Entry>> perDest_ GRAVEL_GUARDED_BY(mutex_);
  std::vector<std::uint64_t> storedPerDest_ GRAVEL_GUARDED_BY(mutex_);
  DeadLetterStats stats_ GRAVEL_GUARDED_BY(mutex_);
};

}  // namespace gravel::net
