// Fault injection for the in-process fabric: a hostile wire on purpose.
//
// FaultyFabric perturbs batches between send() and tryReceive() under a
// seeded FaultConfig — probabilistic drop, duplication, reordering and
// delivery delay per link, plus optional per-link partition windows during
// which everything on the link is discarded. It models the failure surface
// of the paper's MPI-over-InfiniBand transport that PerfectFabric idealizes
// away; ReliableFabric (reliable.hpp) is what makes the runtime survive it.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include "common/atomic.hpp"
#include <vector>

#include "common/rng.hpp"
#include "net/fabric.hpp"

namespace gravel::net {

/// Knobs for one hostile wire. All-zero probabilities and no partitions mean
/// the fabric behaves exactly like PerfectFabric.
struct FaultConfig {
  std::uint64_t seed = 1;  ///< per-link RNG streams derive from this

  double drop_prob = 0.0;       ///< P(batch silently discarded)
  double dup_prob = 0.0;        ///< P(batch delivered twice)
  double reorder_prob = 0.0;    ///< P(batch jumps ahead in the inbox)
  std::uint32_t reorder_window = 8;  ///< max positions a batch can jump

  double delay_prob = 0.0;  ///< P(batch held back before delivery)
  std::chrono::microseconds delay_min{1};
  std::chrono::microseconds delay_max{50};

  /// During [begin, end) after fabric construction, every batch on the
  /// directed link src->dst is dropped.
  struct PartitionWindow {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::chrono::microseconds begin{0};
    std::chrono::microseconds end{0};
  };
  std::vector<PartitionWindow> partitions;

  bool active() const noexcept {
    return drop_prob > 0 || dup_prob > 0 || reorder_prob > 0 ||
           delay_prob > 0 || !partitions.empty();
  }

  /// Environment overrides, mirroring GRAVEL_TRACE_SAMPLE: a chaos harness
  /// (or CI matrix) can dial fault injection up without recompiling.
  ///
  ///   GRAVEL_FAULT_DROP / _DUP / _REORDER / _DELAY — probabilities in [0,1]
  ///   GRAVEL_FAULT_SEED                            — RNG seed (u64)
  ///
  /// Invalid or out-of-range values are ignored (the compiled-in config
  /// wins). Returns true when any override took effect.
  bool applyEnvOverrides() {
    bool any = false;
    auto prob = [&](const char* name, double& field) {
      const char* raw = std::getenv(name);
      if (raw == nullptr || *raw == '\0') return;
      char* end = nullptr;
      const double v = std::strtod(raw, &end);
      if (end == raw || *end != '\0' || !(v >= 0.0 && v <= 1.0)) return;
      field = v;
      any = true;
    };
    prob("GRAVEL_FAULT_DROP", drop_prob);
    prob("GRAVEL_FAULT_DUP", dup_prob);
    prob("GRAVEL_FAULT_REORDER", reorder_prob);
    prob("GRAVEL_FAULT_DELAY", delay_prob);
    if (const char* raw = std::getenv("GRAVEL_FAULT_SEED");
        raw != nullptr && *raw != '\0') {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(raw, &end, 10);
      if (end != raw && *end == '\0') {
        seed = v;
        any = true;
      }
    }
    return any;
  }
};

/// PerfectFabric with a seeded adversary between send() and the inbox.
class FaultyFabric : public PerfectFabric {
 public:
  FaultyFabric(std::uint32_t nodes, const FaultConfig& config)
      : PerfectFabric(nodes),
        config_(config),
        start_(std::chrono::steady_clock::now()) {
    rngs_.reserve(std::size_t{nodes} * nodes);
    for (std::size_t l = 0; l < std::size_t{nodes} * nodes; ++l)
      rngs_.emplace_back(config.seed * 0x9e3779b97f4a7c15ULL + l);
  }

  void send(std::uint32_t src, std::uint32_t dst,
            std::vector<rt::NetMessage>&& batch) override {
    GRAVEL_CHECK_MSG(src < nodes() && dst < nodes(), "bad fabric endpoint");
    if (batch.empty()) return;
    // Wire-level stats and in-flight accounting count what was *attempted*:
    // a dropped batch stays "in flight" forever because its resolution never
    // happens — exactly how a lossy wire wedges completion tracking that
    // counts sends (quiet()'s deadline diagnostic catches it). The
    // reliability layer's ACK-based quiescence ignores this counter.
    recordSend(src, dst, batch);
    addInFlight(batch.size());

    Decision d;
    {
      gravel::lock_guard lk(rngMutex_);
      d = decide(src, dst);
    }
    if (d.drop) {
      gravel::lock_guard lk(rngMutex_);
      if (d.partitioned)
        ++stats_.partition_drops;
      else
        ++stats_.drops;
      return;
    }

    Parcel parcel{Delivery{src, 0, std::move(batch)}, d.readyAt};
    if (d.duplicate) {
      Parcel copy{Delivery{src, 0, parcel.delivery.messages}, d.readyAt};
      addInFlight(copy.delivery.messages.size());
      enqueue(dst, std::move(copy), d.displace);
    }
    enqueue(dst, std::move(parcel), d.displace);
  }

  FaultStats faultStats() const override {
    gravel::lock_guard lk(rngMutex_);
    return stats_;
  }

  std::string describePending() const override {
    std::ostringstream os;
    os << PerfectFabric::describePending();
    const FaultStats f = faultStats();
    os << "; faults: " << f.drops << " dropped, " << f.partition_drops
       << " partition-dropped, " << f.duplicates << " duplicated, "
       << f.reorders << " reordered, " << f.delays << " delayed";
    return os.str();
  }

 private:
  struct Decision {
    bool drop = false;
    bool partitioned = false;
    bool duplicate = false;
    std::size_t displace = 0;
    std::chrono::steady_clock::time_point readyAt{};
  };

  // Caller holds rngMutex_ (compiler-enforced).
  Decision decide(std::uint32_t src, std::uint32_t dst)
      GRAVEL_REQUIRES(rngMutex_) {
    Decision d;
    const auto now = std::chrono::steady_clock::now();
    for (const auto& w : config_.partitions) {
      if (w.src != src || w.dst != dst) continue;
      const auto elapsed = now - start_;
      if (elapsed >= w.begin && elapsed < w.end) {
        d.drop = d.partitioned = true;
        return d;
      }
    }
    Xoshiro256& rng = rngs_[std::size_t{src} * nodes() + dst];
    if (config_.drop_prob > 0 && rng.uniform() < config_.drop_prob) {
      d.drop = true;
      return d;
    }
    if (config_.dup_prob > 0 && rng.uniform() < config_.dup_prob) {
      d.duplicate = true;
      ++stats_.duplicates;
    }
    if (config_.reorder_prob > 0 && rng.uniform() < config_.reorder_prob) {
      d.displace = 1 + std::size_t(rng.below(config_.reorder_window));
      ++stats_.reorders;
    }
    if (config_.delay_prob > 0 && rng.uniform() < config_.delay_prob) {
      const auto span = std::uint64_t(
          (config_.delay_max - config_.delay_min).count() + 1);
      d.readyAt = now + config_.delay_min +
                  std::chrono::microseconds(rng.below(span));
      ++stats_.delays;
    }
    return d;
  }

  FaultConfig config_;
  std::chrono::steady_clock::time_point start_;
  mutable gravel::mutex rngMutex_{"FaultyFabric::rngMutex_"};
  std::vector<Xoshiro256> rngs_ GRAVEL_GUARDED_BY(rngMutex_);
  FaultStats stats_ GRAVEL_GUARDED_BY(rngMutex_);
};

}  // namespace gravel::net
