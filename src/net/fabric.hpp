// In-process cluster fabric: the stand-in for the paper's MPI-over-InfiniBand
// transport (Table 3: 56 Gb/s link).
//
// Functionally, a "network message" here is what the paper sends: a flushed
// per-node queue — a batch of NetMessages bound for one destination. The
// fabric delivers batches to per-node inboxes and counts bytes/messages per
// link; the cost model in src/perf turns those counts into modeled time
// (serialization at 7 GB/s plus a per-message overhead), which is how the
// substitution preserves the aggregation economics the paper measures.
//
// `Fabric` is an interface with three implementations:
//   - PerfectFabric (this file): exactly-once, in-order, instant — the seed
//     behaviour every app/bench runs on by default.
//   - FaultyFabric (fault.hpp): perturbs batches between send() and
//     tryReceive() under a seeded FaultConfig (drop/dup/reorder/delay,
//     partition windows).
//   - ReliableFabric (reliable.hpp): seq/ack/retransmit/dedup sublayer that
//     restores exactly-once in-order delivery on top of either wire.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/atomic.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "runtime/message.hpp"

namespace gravel::net {

/// One in-flight batch (a flushed per-node queue). `seq` is the reliability
/// layer's per-link sequence number of the batch (0 on fabrics without one);
/// the receiver hands it back through markResolved() so cumulative ACKs are
/// emitted only after the payload has actually been applied.
struct Delivery {
  std::uint32_t src = 0;
  std::uint64_t seq = 0;
  std::vector<rt::NetMessage> messages;
  /// Link era the batch was admitted under (reliability layer; 0 elsewhere).
  /// markResolved() refuses to acknowledge a stale-era delivery after the
  /// circuit breaker re-synced the link.
  std::uint32_t era = 0;
};

/// Per-link traffic counters, readable after a run (Table 5, Figure 12-15
/// inputs). The reliability fields stay zero on fabrics without that layer.
struct LinkStats {
  std::uint64_t batches = 0;   ///< network messages (flushed queues)
  std::uint64_t messages = 0;  ///< Gravel messages carried
  std::uint64_t bytes = 0;     ///< payload bytes carried
  std::uint64_t retransmits = 0;  ///< sender-side timeout retransmissions
  std::uint64_t dup_drops = 0;    ///< receiver-side duplicates discarded
  std::uint64_t acks = 0;         ///< ACK parcels applied at the sender
};

/// Fault-injection counters (FaultyFabric); zero elsewhere.
struct FaultStats {
  std::uint64_t drops = 0;            ///< batches discarded at send()
  std::uint64_t duplicates = 0;       ///< extra copies enqueued
  std::uint64_t delays = 0;           ///< batches given a delivery delay
  std::uint64_t reorders = 0;         ///< batches inserted out of order
  std::uint64_t partition_drops = 0;  ///< drops due to a partition window
};

/// Reliability-sublayer counters (ReliableFabric); zero elsewhere.
/// Per-link retransmit/dup/ack counts live in LinkStats.
struct ReliabilityStats {
  std::uint64_t acks_sent = 0;      ///< standalone ACK batches emitted
  std::uint64_t reorder_drops = 0;  ///< out-of-window batches discarded
  std::uint64_t reorder_peak = 0;   ///< deepest receiver reorder buffer seen
  // Circuit breaker / degraded mode (zero under fail_fast).
  std::uint64_t breaker_trips = 0;     ///< links excised by the breaker
  std::uint64_t probes = 0;            ///< half-open probe batches sent
  std::uint64_t stale_data_drops = 0;  ///< stale-era data frames rejected
  std::uint64_t stale_ack_drops = 0;   ///< stale-era cumulative ACKs rejected
};

/// A link whose sender exhausted its retry budget: structured failure info
/// surfaced by quiet() instead of silent loss.
struct LinkFailureInfo {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t oldest_seq = 0;  ///< lowest unacknowledged sequence number
  std::uint32_t retries = 0;     ///< retransmissions attempted for it
};

class LinkFailureError : public Error {
 public:
  explicit LinkFailureError(const LinkFailureInfo& info)
      : Error("link " + std::to_string(info.src) + "->" +
              std::to_string(info.dst) + " failed: seq " +
              std::to_string(info.oldest_seq) + " unacknowledged after " +
              std::to_string(info.retries) + " retransmissions"),
        info_(info) {}
  const LinkFailureInfo& info() const noexcept { return info_; }

 private:
  LinkFailureInfo info_;
};

/// The cluster interconnect. Thread-safe: senders are aggregator threads and
/// the quiet protocol; receivers are per-node network threads.
class Fabric {
 public:
  virtual ~Fabric() = default;

  virtual std::uint32_t nodes() const noexcept = 0;

  /// Ships a batch from `src` to `dst`. Empty batches are dropped.
  virtual void send(std::uint32_t src, std::uint32_t dst,
                    std::vector<rt::NetMessage>&& batch) = 0;

  /// Non-blocking receive for node `dst`.
  virtual bool tryReceive(std::uint32_t dst, Delivery& out) = 0;

  /// Called by node `self`'s network thread after resolving every message of
  /// `d`; completion tracking (the quiet protocol's condition) keys off this.
  virtual void markResolved(std::uint32_t self, const Delivery& d) = 0;

  /// Housekeeping hook driven by node `self`'s network thread while polling
  /// (the reliability layer retransmits timed-out batches here). No-op by
  /// default.
  virtual void poll(std::uint32_t self) { (void)self; }

  /// True when every message handed to send() has been resolved at its
  /// destination (and, with a reliability layer, acknowledged back).
  virtual bool quiescent() const = 0;

  /// Human-readable dump of whatever is still outstanding — per-link unacked
  /// sequence numbers, inbox depths — for the quiet-deadline diagnostic.
  virtual std::string describePending() const = 0;

  /// Latched failure from an exhausted retry budget, if any.
  virtual std::optional<LinkFailureInfo> failure() const { return {}; }

  /// Snapshot of one directed link (src -> dst).
  virtual LinkStats link(std::uint32_t src, std::uint32_t dst) const = 0;

  /// Visits every link that has carried (or retransmitted/acked) traffic.
  /// The default walks the full src x dst matrix via link() — O(N^2), fine
  /// for the dense fault/reliability fabrics that keep per-link state
  /// anyway. Sparse fabrics override it so stats collection at 4096+ nodes
  /// is O(links touched), not O(N^2) (DESIGN.md §14).
  virtual void forEachLink(
      const std::function<void(std::uint32_t src, std::uint32_t dst,
                               const LinkStats&)>& fn) const {
    const std::uint32_t n = nodes();
    for (std::uint32_t src = 0; src < n; ++src)
      for (std::uint32_t dst = 0; dst < n; ++dst) {
        const LinkStats l = link(src, dst);
        if (l.batches == 0 && l.messages == 0 && l.retransmits == 0 &&
            l.dup_drops == 0 && l.acks == 0)
          continue;
        fn(src, dst, l);
      }
  }

  /// Aggregate over all links.
  virtual LinkStats total() const = 0;

  /// Distribution of network-message (batch) sizes in bytes — Table 5's
  /// "average message size" column is mean().
  virtual RunningStat batchSizeBytes() const = 0;

  virtual FaultStats faultStats() const { return {}; }
  virtual ReliabilityStats reliabilityStats() const { return {}; }

  /// Observability hook: when set, the wire records a kWireSend trace event
  /// for every sampled (trace-ID-stamped) message it accepts. Layered
  /// fabrics forward the tracer to the transport they wrap.
  virtual void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Batches handed to send() whose resolution (or acknowledgement) is
  /// still pending — the depth the quiet protocol waits on. Sampled by the
  /// observability gauge thread.
  virtual std::uint64_t pendingCount() const { return 0; }

 protected:
  /// Records wire-send events for every traced message of `batch`; no-op
  /// without a tracer. Control frames (reliability headers/ACKs) carry no
  /// trace ID and are skipped.
  void traceWireSend(std::uint32_t src, std::uint32_t dst,
                     const std::vector<rt::NetMessage>& batch) {
    // active(), not enabled(): the flight recorder sees every data message
    // crossing the wire (id 0 = unsampled); recordStage keeps unsampled
    // events out of the sampled buffers.
    if (!tracer_ || !tracer_->active()) return;
    for (const rt::NetMessage& m : batch) {
      if (m.command() == rt::Command::kControl) continue;
      tracer_->recordStage(obs::Stage::kWireSend, m.traceId(),
                           std::uint16_t(src), std::uint16_t(dst), m.addr,
                           std::uint8_t(m.command()));
    }
  }

  obs::Tracer* tracer_ = nullptr;
};

/// Exactly-once, in-order, instant delivery — the seed transport.
class PerfectFabric : public Fabric {
 public:
  explicit PerfectFabric(std::uint32_t nodes)
      : nodes_(nodes), inboxes_(nodes) {}

  std::uint32_t nodes() const noexcept override { return nodes_; }

  void send(std::uint32_t src, std::uint32_t dst,
            std::vector<rt::NetMessage>&& batch) override {
    GRAVEL_CHECK_MSG(src < nodes_ && dst < nodes_, "bad fabric endpoint");
    if (batch.empty()) return;
    recordSend(src, dst, batch);
    inFlight_.fetch_add(batch.size(), std::memory_order_relaxed);
    enqueue(dst, Parcel{Delivery{src, 0, std::move(batch)}, {}});
  }

  bool tryReceive(std::uint32_t dst, Delivery& out) override {
    Inbox& inbox = inboxes_[dst];
    gravel::lock_guard lk(inbox.mutex);
    if (inbox.pending.empty()) return false;
    // Delayed parcels (FaultyFabric) are skipped until ready; everything the
    // perfect fabric enqueues is ready immediately.
    const auto now = std::chrono::steady_clock::now();
    for (auto it = inbox.pending.begin(); it != inbox.pending.end(); ++it) {
      if (it->readyAt > now) continue;
      out = std::move(it->delivery);
      inbox.pending.erase(it);
      return true;
    }
    return false;
  }

  /// quiet() waits for the in-flight count to hit zero.
  void markResolved(std::uint32_t self, const Delivery& d) override {
    (void)self;
    inFlight_.fetch_sub(d.messages.size(), std::memory_order_relaxed);
  }

  std::uint64_t inFlight() const noexcept {
    return inFlight_.load(std::memory_order_relaxed);
  }

  bool quiescent() const override { return inFlight() == 0; }

  std::uint64_t pendingCount() const override { return inFlight(); }

  std::string describePending() const override {
    std::ostringstream os;
    os << "wire: " << inFlight() << " message(s) in flight";
    for (std::uint32_t n = 0; n < nodes_; ++n) {
      Inbox& inbox = inboxes_[n];
      gravel::lock_guard lk(inbox.mutex);
      if (inbox.pending.empty()) continue;
      std::uint64_t msgs = 0;
      for (const Parcel& p : inbox.pending) msgs += p.delivery.messages.size();
      os << "; inbox[" << n << "]: " << inbox.pending.size() << " batch(es), "
         << msgs << " message(s)";
    }
    return os.str();
  }

  LinkStats link(std::uint32_t src, std::uint32_t dst) const override {
    gravel::lock_guard lk(linkMutex_);
    const auto it = links_.find(linkKey(src, dst));
    return it == links_.end() ? LinkStats{} : it->second;
  }

  /// Sparse: visits only links traffic actually crossed. Snapshots under
  /// the link mutex, then invokes `fn` outside it, so callbacks may call
  /// back into the fabric freely.
  void forEachLink(
      const std::function<void(std::uint32_t src, std::uint32_t dst,
                               const LinkStats&)>& fn) const override {
    std::vector<std::pair<std::uint64_t, LinkStats>> snapshot;
    {
      gravel::lock_guard lk(linkMutex_);
      snapshot.assign(links_.begin(), links_.end());
    }
    for (const auto& [key, l] : snapshot)
      fn(std::uint32_t(key >> 32), std::uint32_t(key & 0xffffffffu), l);
  }

  LinkStats total() const override {
    gravel::lock_guard lk(linkMutex_);
    LinkStats t;
    for (const auto& kv : links_) {
      t.batches += kv.second.batches;
      t.messages += kv.second.messages;
      t.bytes += kv.second.bytes;
    }
    return t;
  }

  RunningStat batchSizeBytes() const override {
    gravel::lock_guard lk(linkMutex_);
    return batchBytes_;
  }

 protected:
  /// One queued batch; readyAt delays visibility (FaultyFabric's delay
  /// injection). Default-constructed time_point == always ready.
  struct Parcel {
    Delivery delivery;
    std::chrono::steady_clock::time_point readyAt{};
  };

  void recordSend(std::uint32_t src, std::uint32_t dst,
                  const std::vector<rt::NetMessage>& batch) {
    traceWireSend(src, dst, batch);
    gravel::lock_guard lk(linkMutex_);
    LinkStats& link = links_[linkKey(src, dst)];
    ++link.batches;
    link.messages += batch.size();
    link.bytes += batch.size() * sizeof(rt::NetMessage);
    batchBytes_.add(double(batch.size() * sizeof(rt::NetMessage)));
  }

  /// Appends a parcel to `dst`'s inbox, `displace` positions before the tail
  /// (reorder injection; clamped to the current depth).
  void enqueue(std::uint32_t dst, Parcel&& parcel, std::size_t displace = 0) {
    Inbox& inbox = inboxes_[dst];
    gravel::lock_guard lk(inbox.mutex);
    if (displace > inbox.pending.size()) displace = inbox.pending.size();
    inbox.pending.insert(inbox.pending.end() - std::ptrdiff_t(displace),
                         std::move(parcel));
  }

  void addInFlight(std::uint64_t n) {
    inFlight_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  struct Inbox {
    gravel::mutex mutex{"PerfectFabric::Inbox::mutex"};
    std::deque<Parcel> pending GRAVEL_GUARDED_BY(mutex);
  };

  static std::uint64_t linkKey(std::uint32_t src, std::uint32_t dst) noexcept {
    return (std::uint64_t{src} << 32) | dst;
  }

  std::uint32_t nodes_;
  mutable std::vector<Inbox> inboxes_;
  mutable gravel::mutex linkMutex_{"PerfectFabric::linkMutex_"};
  /// Sparse on purpose: a dense N^2 LinkStats matrix is ~400 MiB at 65536
  /// nodes even when the traffic pattern touches a handful of links.
  std::unordered_map<std::uint64_t, LinkStats> links_
      GRAVEL_GUARDED_BY(linkMutex_);
  RunningStat batchBytes_ GRAVEL_GUARDED_BY(linkMutex_);
  atomic<std::uint64_t> inFlight_{0};
};

}  // namespace gravel::net
