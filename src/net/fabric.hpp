// In-process cluster fabric: the stand-in for the paper's MPI-over-InfiniBand
// transport (Table 3: 56 Gb/s link).
//
// Functionally, a "network message" here is what the paper sends: a flushed
// per-node queue — a batch of NetMessages bound for one destination. The
// fabric delivers batches to per-node inboxes and counts bytes/messages per
// link; the cost model in src/perf turns those counts into modeled time
// (serialization at 7 GB/s plus a per-message overhead), which is how the
// substitution preserves the aggregation economics the paper measures.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "runtime/message.hpp"

namespace gravel::net {

/// One in-flight batch (a flushed per-node queue).
struct Delivery {
  std::uint32_t src = 0;
  std::vector<rt::NetMessage> messages;
};

/// Per-link traffic counters, readable after a run (Table 5, Figure 12-15
/// inputs).
struct LinkStats {
  std::uint64_t batches = 0;   ///< network messages (flushed queues)
  std::uint64_t messages = 0;  ///< Gravel messages carried
  std::uint64_t bytes = 0;     ///< payload bytes carried
};

/// The cluster interconnect. Thread-safe: senders are aggregator threads and
/// the quiet protocol; receivers are per-node network threads.
class Fabric {
 public:
  explicit Fabric(std::uint32_t nodes)
      : nodes_(nodes), inboxes_(nodes), links_(std::size_t{nodes} * nodes) {}

  std::uint32_t nodes() const noexcept { return nodes_; }

  /// Ships a batch from `src` to `dst`. Empty batches are dropped.
  void send(std::uint32_t src, std::uint32_t dst,
            std::vector<rt::NetMessage>&& batch) {
    GRAVEL_CHECK_MSG(src < nodes_ && dst < nodes_, "bad fabric endpoint");
    if (batch.empty()) return;
    {
      std::scoped_lock lk(linkMutex_);
      LinkStats& link = links_[std::size_t{src} * nodes_ + dst];
      ++link.batches;
      link.messages += batch.size();
      link.bytes += batch.size() * sizeof(rt::NetMessage);
      batchBytes_.add(double(batch.size() * sizeof(rt::NetMessage)));
    }
    inFlight_.fetch_add(batch.size(), std::memory_order_relaxed);
    Inbox& inbox = inboxes_[dst];
    std::scoped_lock lk(inbox.mutex);
    inbox.pending.push_back(Delivery{src, std::move(batch)});
  }

  /// Non-blocking receive for node `dst`.
  bool tryReceive(std::uint32_t dst, Delivery& out) {
    Inbox& inbox = inboxes_[dst];
    std::scoped_lock lk(inbox.mutex);
    if (inbox.pending.empty()) return false;
    out = std::move(inbox.pending.front());
    inbox.pending.pop_front();
    return true;
  }

  /// Called by the receiver after resolving each message of a delivery;
  /// quiet() waits for the in-flight count to hit zero.
  void markResolved(std::uint64_t count) {
    inFlight_.fetch_sub(count, std::memory_order_relaxed);
  }
  std::uint64_t inFlight() const noexcept {
    return inFlight_.load(std::memory_order_relaxed);
  }

  /// Snapshot of one directed link (src -> dst).
  LinkStats link(std::uint32_t src, std::uint32_t dst) const {
    std::scoped_lock lk(linkMutex_);
    return links_[std::size_t{src} * nodes_ + dst];
  }

  /// Aggregate over all links.
  LinkStats total() const {
    std::scoped_lock lk(linkMutex_);
    LinkStats t;
    for (const auto& l : links_) {
      t.batches += l.batches;
      t.messages += l.messages;
      t.bytes += l.bytes;
    }
    return t;
  }

  /// Distribution of network-message (batch) sizes in bytes — Table 5's
  /// "average message size" column is mean().
  RunningStat batchSizeBytes() const {
    std::scoped_lock lk(linkMutex_);
    return batchBytes_;
  }

 private:
  struct Inbox {
    std::mutex mutex;
    std::deque<Delivery> pending;
  };

  std::uint32_t nodes_;
  std::vector<Inbox> inboxes_;
  mutable std::mutex linkMutex_;
  std::vector<LinkStats> links_;
  RunningStat batchBytes_;
  std::atomic<std::uint64_t> inFlight_{0};
};

}  // namespace gravel::net
