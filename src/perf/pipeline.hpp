// Bridge between functional runs and the timing simulation: extracts the
// per-node demand matrix from a Cluster's instrumentation and packages the
// common "time an app under a style" step the figure benches share.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/app.hpp"
#include "perf/netsim.hpp"
#include "runtime/cluster.hpp"

namespace gravel::perf {

/// Per-node demand extracted from a completed functional run: the fabric's
/// link counters give the traffic matrix (link i->i carries the loopbacked
/// local atomics), the device stats give the GPU-side counts.
inline std::vector<NodeDemand> demandFromCluster(rt::Cluster& cluster) {
  const std::uint32_t n = cluster.nodes();
  std::vector<NodeDemand> demand(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeDemand& d = demand[i];
    d.msgs_to.assign(n, 0.0);
    const auto& dev = cluster.node(i).device().stats();
    d.lanes = double(dev.lanes_executed);
    d.collective_arrivals = double(dev.collective_arrivals);
    d.overhead_ops = double(dev.predication_overhead_ops);
  }
  // Sparse link walk: one fabric query per link that carried traffic,
  // instead of n^2 link() calls (16M at 4096 nodes — DESIGN.md §14).
  cluster.fabric().forEachLink([&](std::uint32_t src, std::uint32_t dst,
                                   const net::LinkStats& l) {
    demand[src].msgs_to[dst] = double(l.messages);
  });
  return demand;
}

/// Fraction of the run's messages that were active messages (drives the
/// resolver's extra handler cost).
inline double amFraction(const rt::ClusterRunStats& s) {
  const auto total = s.opsTotal() - s.put_local;  // queued messages
  return total ? double(s.am_local + s.am_remote) / double(total) : 0.0;
}

/// Times one functional run under one networking style.
inline double timeUnderStyle(Style style, rt::Cluster& cluster,
                             const apps::AppReport& report,
                             const MachineParams& params = {},
                             double pernodeQueueBytes = 64.0 * 1024) {
  SimConfig cfg;
  cfg.style = style;
  cfg.params = params;
  cfg.wg_size = cluster.config().device.max_wg_size;
  cfg.pernode_queue_bytes = pernodeQueueBytes;
  cfg.am_fraction = amFraction(report.stats);
  const auto demand = demandFromCluster(cluster);
  return simulateApp(cfg, demand, std::max<std::uint64_t>(1, report.iterations));
}

}  // namespace gravel::perf
