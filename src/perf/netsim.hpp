// Style-parameterized cluster timing simulation.
//
// A functional run (src/runtime) yields exact per-node traffic and SIMT
// counts; this module replays them against the Table-3 machine model for
// each GPU networking style of paper §3, reproducing the style's *overlap
// semantics*:
//
//   kGravel        : GPU production, aggregator repacking, NIC serialization
//                    and remote resolution all overlap (per-node queues ship
//                    as soon as they fill or time out).
//   kCoprocessor   : kernel-boundary exchanges — compute a chunk, then
//                    exchange, serially; chunk size bound by the per-node
//                    queue capacity (worst case: all messages to one node).
//   kMsgPerLane    : no aggregation; every message is its own network
//                    message with WI-granularity issue cost.
//   kCoalesced     : per-work-group counting sort + one (small) network
//                    message per destination per work-group.
//   kCoalescedAgg  : coalesced sort on the GPU, then the Gravel aggregation
//                    path ("coalesced APIs + Gravel aggregation").
#pragma once

#include <cstdint>
#include <vector>

#include "perf/params.hpp"

namespace gravel::perf {

enum class Style {
  kGravel,
  kCoprocessor,
  kMsgPerLane,
  kCoalesced,
  kCoalescedAgg,
};

const char* styleName(Style s);

/// One node's per-round demand, from functional instrumentation.
struct NodeDemand {
  std::vector<double> msgs_to;  ///< messages bound for each node (self incl.)
  double lanes = 0;             ///< kernel lanes executed
  double collective_arrivals = 0;  ///< WG-sync arrivals (Gravel path)
  double overhead_ops = 0;         ///< software-predication instructions

  double totalMsgs() const {
    double t = 0;
    for (double m : msgs_to) t += m;
    return t;
  }
};

struct SimConfig {
  Style style = Style::kGravel;
  MachineParams params{};
  double msg_bytes = 32;
  double wg_size = 256;
  double pernode_queue_bytes = 64.0 * 1024;  ///< aggregation target
  double timeout_us = 125;
  double am_fraction = 0;  ///< fraction of messages that are active messages
};

/// Simulates one communication round (one kernel + its traffic) and returns
/// the makespan in seconds.
double simulateRound(const SimConfig& cfg,
                     const std::vector<NodeDemand>& nodes);

/// Simulates an app of `rounds` identical rounds (totals split evenly),
/// adding per-round launch/quiet overhead.
double simulateApp(const SimConfig& cfg, const std::vector<NodeDemand>& totals,
                   std::uint64_t rounds);

/// CPU-based comparator (Grappa/UPC-like, Figure 13): `opsPerNode` software
/// delegate operations per node, aggregated over the same wire.
double cpuBaselineTime(const MachineParams& p, std::uint32_t nodes,
                       double opsPerNode, double remoteFraction,
                       double msgBytes, double pernodeQueueBytes,
                       std::uint64_t rounds);

}  // namespace gravel::perf
