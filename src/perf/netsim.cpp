#include <cstdio>
#include <cstdlib>
#include "perf/netsim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "perf/des.hpp"

namespace gravel::perf {

const char* styleName(Style s) {
  switch (s) {
    case Style::kGravel:
      return "Gravel";
    case Style::kCoprocessor:
      return "coprocessor";
    case Style::kMsgPerLane:
      return "msg-per-lane";
    case Style::kCoalesced:
      return "coalesced APIs";
    case Style::kCoalescedAgg:
      return "coalesced+aggregation";
  }
  return "?";
}

namespace {

constexpr double kNs = 1e-9;
constexpr double kUs = 1e-6;

/// Expected number of distinct destinations hit by one work-group of `wg`
/// messages whose destination distribution is `msgs_to` (classic occupancy
/// bound). `networkOnly` drops the self-destination.
double expectedDestsPerWg(const NodeDemand& d, std::uint32_t self, double wg,
                          bool networkOnly) {
  const double total = d.totalMsgs();
  if (total <= 0) return 0;
  double dests = 0;
  for (std::uint32_t n = 0; n < d.msgs_to.size(); ++n) {
    if (networkOnly && n == self) continue;
    const double p = d.msgs_to[n] / total;
    if (p > 0) dests += 1.0 - std::pow(1.0 - p, wg);
  }
  return dests;
}

/// GPU-side time to produce this node's message stream under `style`.
double productionSeconds(const SimConfig& cfg, const NodeDemand& d,
                         std::uint32_t self) {
  const MachineParams& p = cfg.params;
  const double msgs = d.totalMsgs();
  const double slots = std::ceil(msgs / cfg.wg_size);
  // Style-independent base: the kernel's own work. The edge-loop traversal
  // (including software-predicated idle iterations) is measured as
  // collective arrivals on the Gravel run, and every style pays it — the
  // styles differ in what *messaging* machinery runs on top.
  double t = d.lanes * p.lane_ns + d.overhead_ops * p.op_ns +
             d.collective_arrivals * p.arrival_ns;
  switch (cfg.style) {
    case Style::kGravel:
      // The WG-level synchronization is already the measured arrivals; add
      // the two RMWs per group reservation (WriteIdx by the producer group,
      // the claim by the consumer).
      t += slots * 2 * p.queue_rmw_ns;
      break;
    case Style::kMsgPerLane:
      // WI-granularity issue: §4.1 measured it two orders of magnitude
      // slower than WG-level reservation.
      t += msgs * p.per_lane_issue_ns;
      break;
    case Style::kCoalesced:
    case Style::kCoalescedAgg: {
      // Counting sort in scratchpad plus one synchronous API invocation per
      // destination per work-group (degrades SIMT utilization, §3.3).
      const double dests = expectedDestsPerWg(d, self, cfg.wg_size, false);
      // coalesced_call_ns covers the per-destination API invocation
      // including its group-wide synchronization.
      t += slots * cfg.wg_size * p.coalesced_sort_lane_ns +
           slots * dests * p.coalesced_call_ns;
      break;
    }
    case Style::kCoprocessor: {
      // WG-level reservation once per destination targeted by the group
      // (Figure 4a lines 2-4): branch+memory divergence scales the sync
      // cost by the destination count.
      const double dests =
          std::max(1.0, expectedDestsPerWg(d, self, cfg.wg_size, false));
      t += d.collective_arrivals * p.arrival_ns * (dests - 1.0) +
           slots * dests * 2 * p.queue_rmw_ns;
      break;
    }
  }
  return t * kNs;
}

/// Per-message resolve cost at the receiver.
double resolveSeconds(const SimConfig& cfg, double msgs) {
  return msgs *
         (cfg.params.resolve_msg_ns + cfg.am_fraction * cfg.params.am_extra_ns) *
         kNs;
}

/// Sender occupancy for one network message: post cost + wire serialization.
double batchSeconds(const SimConfig& cfg, double msgs) {
  return cfg.params.batch_post_us * kUs +
         msgs * cfg.msg_bytes / (cfg.params.linkBytesPerNs() / kNs);
}

/// Overlapped pipeline (Gravel, msg-per-lane, coalesced, coalesced+agg):
/// event-driven replay of slot-granular production through the per-style
/// network path.
double simulateOverlapped(const SimConfig& cfg,
                          const std::vector<NodeDemand>& nodes) {
  const auto n = std::uint32_t(nodes.size());
  const double batchMsgs =
      std::max(1.0, cfg.pernode_queue_bytes / cfg.msg_bytes);
  EventSim sim;
  std::vector<Server> agg, egress, resolver;
  agg.reserve(n);
  egress.reserve(n);
  resolver.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    agg.emplace_back(sim);
    egress.emplace_back(sim);
    resolver.emplace_back(sim);
  }
  double makespan = 0;
  auto finish = [&makespan, &sim] { makespan = std::max(makespan, sim.now()); };

  const bool aggregated = cfg.style == Style::kGravel ||
                          cfg.style == Style::kCoalescedAgg;

  struct NodeState {
    std::vector<double> fill;  // per-destination buffered messages
    double slotsLeft = 0;
  };
  std::vector<NodeState> state(n);

  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeDemand& d = nodes[i];
    const double msgs = d.totalMsgs();
    if (msgs <= 0) {
      // Compute-only node (e.g. all-local PUT phases): no message stream,
      // but the kernel time still bounds the round.
      makespan = std::max(makespan, productionSeconds(cfg, d, i));
      continue;
    }
    const double slots = std::ceil(msgs / cfg.wg_size);
    const double prod = productionSeconds(cfg, d, i);
    const double interval = prod / slots;
    state[i].fill.assign(n, 0.0);
    state[i].slotsLeft = slots;

    // Per-destination split of each slot's messages.
    std::vector<double> frac(n, 0.0);
    for (std::uint32_t dst = 0; dst < n; ++dst)
      frac[dst] = d.msgs_to[dst] / msgs;
    const double wgMsgs = msgs / slots;

    auto shipBatch = [&, i](std::uint32_t dst, double count) {
      if (count <= 0) return;
      if (dst == i) {
        // Loopback: local atomics still go to the network thread for
        // serialized resolution (§6), but nothing crosses the wire.
        resolver[dst].submit(resolveSeconds(cfg, count), finish);
        return;
      }
      egress[i].submit(batchSeconds(cfg, count), [&, dst, count] {
        // In-flight latency (hidden by the per-destination queue rotation)
        // delays arrival without occupying the sender.
        sim.after(cfg.params.batch_latency_us * kUs, [&, dst, count] {
          resolver[dst].submit(resolveSeconds(cfg, count), finish);
        });
      });
    };

    auto onSlotAggregated = [&, i, frac, wgMsgs, shipBatch] {
      NodeState& st = state[i];
      for (std::uint32_t dst = 0; dst < n; ++dst) {
        st.fill[dst] += wgMsgs * frac[dst];
        while (st.fill[dst] >= batchMsgs) {
          shipBatch(dst, batchMsgs);
          st.fill[dst] -= batchMsgs;
        }
      }
      st.slotsLeft -= 1;
      if (st.slotsLeft <= 0.5) {
        // End of stream: quiet() flushes every partial buffer.
        for (std::uint32_t dst = 0; dst < n; ++dst) {
          shipBatch(dst, st.fill[dst]);
          st.fill[dst] = 0;
        }
      }
    };

    auto onSlotDirect = [&, i, frac, wgMsgs, shipBatch] {
      // No aggregation: the slot's messages leave as per-destination
      // slivers (msg-per-lane: singles; coalesced: per-WG lists). Egress
      // serialization accounts one overhead per network message.
      for (std::uint32_t dst = 0; dst < n; ++dst) {
        const double count = wgMsgs * frac[dst];
        if (count <= 0) continue;
        if (dst == i) {
          resolver[dst].submit(resolveSeconds(cfg, count), finish);
        } else if (cfg.style == Style::kMsgPerLane) {
          // `count` one-message sends, bulked into a single busy period.
          egress[i].submit(count * batchSeconds(cfg, 1.0), [&, dst, count] {
            sim.after(cfg.params.batch_latency_us * kUs, [&, dst, count] {
              resolver[dst].submit(resolveSeconds(cfg, count), finish);
            });
          });
        } else {
          egress[i].submit(batchSeconds(cfg, count), [&, dst, count] {
            sim.after(cfg.params.batch_latency_us * kUs, [&, dst, count] {
              resolver[dst].submit(resolveSeconds(cfg, count), finish);
            });
          });
        }
      }
    };

    for (double s = 1; s <= slots; ++s) {
      if (aggregated) {
        sim.at(s * interval, [&, i, onSlotAggregated] {
          agg[i].submit(cfg.wg_size * cfg.params.agg_msg_ns * kNs,
                        onSlotAggregated);
        });
      } else {
        sim.at(s * interval, onSlotDirect);
      }
    }
    if (aggregated) {
      // The 125 us flush timeout (Table 3): partially-filled per-node
      // queues ship periodically during the round, not only when full —
      // this is what overlaps Gravel's communication with computation even
      // when per-destination traffic is modest. Rounds of our scaled-down
      // inputs can be shorter than the real timeout, so the sweep interval
      // is capped at a fraction of the round (at paper scale, where rounds
      // span many milliseconds, the real 125 us applies unchanged).
      const double timeout =
          std::min(cfg.timeout_us * kUs, prod / 16.0);
      for (double t = timeout; t < prod; t += timeout) {
        sim.at(t, [&, i, shipBatch] {
          NodeState& st = state[i];
          if (st.slotsLeft <= 0.5) return;  // stream already flushed
          for (std::uint32_t dst = 0; dst < n; ++dst) {
            shipBatch(dst, st.fill[dst]);
            st.fill[dst] = 0;
          }
        });
      }
    }
    makespan = std::max(makespan, prod);
  }

  sim.run();
  if (std::getenv("GRAVEL_NETSIM_DEBUG")) {
    for (std::uint32_t i = 0; i < n; ++i) {
      std::fprintf(stderr,
                   "  [netsim] node %u: prod=%.1fus agg(busy=%.1f free=%.1f) "
                   "egr(busy=%.1f free=%.1f) res(busy=%.1f free=%.1f)\n",
                   i, productionSeconds(cfg, nodes[i], i) * 1e6,
                   agg[i].busyTime() * 1e6, agg[i].freeAt() * 1e6,
                   egress[i].busyTime() * 1e6, egress[i].freeAt() * 1e6,
                   resolver[i].busyTime() * 1e6, resolver[i].freeAt() * 1e6);
    }
    std::fprintf(stderr, "  [netsim] makespan=%.1fus\n", makespan * 1e6);
  }
  return makespan;
}

/// Kernel-boundary pipeline (coprocessor model): compute a chunk, exchange,
/// repeat — no overlap (§3.1, Figure 15 discussion).
double simulateCoprocessor(const SimConfig& cfg,
                           const std::vector<NodeDemand>& nodes) {
  const auto n = std::uint32_t(nodes.size());
  const MachineParams& p = cfg.params;
  // Chunk sized so the worst case (every message to one destination) cannot
  // overflow a per-node queue (Figure 4a lines 6-7).
  const double chunkMsgs =
      std::max(1.0, cfg.pernode_queue_bytes / cfg.msg_bytes);

  double maxMsgs = 0;
  for (const auto& d : nodes) maxMsgs = std::max(maxMsgs, d.totalMsgs());
  if (maxMsgs <= 0) return 0;
  const double chunks = std::ceil(maxMsgs / chunkMsgs);

  double total = 0;
  for (double c = 0; c < chunks; ++c) {
    double gpuPhase = 0, exchangePhase = 0, resolvePhase = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const NodeDemand& d = nodes[i];
      const double share = std::min(chunkMsgs, d.totalMsgs() / chunks) /
                           std::max(1.0, d.totalMsgs());
      NodeDemand slice = d;
      for (auto& m : slice.msgs_to) m *= share;
      slice.lanes *= share;
      slice.collective_arrivals *= share;
      slice.overhead_ops *= share;
      // GPU efficiency collapses when the chunk grid is small: the device
      // cannot fill its CUs ("small per-node queues limit the amount of
      // parallelism on the GPU").
      const double lanes = slice.lanes;
      const double util = lanes / (lanes + 8192.0);
      gpuPhase = std::max(
          gpuPhase, productionSeconds(cfg, slice, i) / std::max(util, 0.02));
      // Exchange: one batch per remote destination.
      double egress = 0, ingress = 0;
      for (std::uint32_t dst = 0; dst < n; ++dst) {
        if (dst == i) continue;
        egress += batchSeconds(cfg, slice.msgs_to[dst]);
      }
      for (std::uint32_t src = 0; src < n; ++src) {
        if (src == i) continue;
        const NodeDemand& s = nodes[src];
        const double sShare =
            std::min(chunkMsgs, s.totalMsgs() / chunks) /
            std::max(1.0, s.totalMsgs());
        ingress += resolveSeconds(cfg, s.msgs_to[i] * sShare);
      }
      exchangePhase = std::max(exchangePhase, egress);
      resolvePhase = std::max(resolvePhase, ingress);
    }
    total += p.launch_overhead_us * kUs + gpuPhase + exchangePhase +
             resolvePhase;
  }
  return total;
}

}  // namespace

double simulateRound(const SimConfig& cfg,
                     const std::vector<NodeDemand>& nodes) {
  GRAVEL_CHECK_MSG(!nodes.empty(), "need at least one node");
  for (const auto& d : nodes)
    GRAVEL_CHECK_MSG(d.msgs_to.size() == nodes.size(),
                     "demand matrix shape mismatch");
  if (cfg.style == Style::kCoprocessor) return simulateCoprocessor(cfg, nodes);
  return simulateOverlapped(cfg, nodes);
}

double simulateApp(const SimConfig& cfg, const std::vector<NodeDemand>& totals,
                   std::uint64_t rounds) {
  GRAVEL_CHECK_MSG(rounds > 0, "rounds must be positive");
  std::vector<NodeDemand> perRound = totals;
  for (auto& d : perRound) {
    for (auto& m : d.msgs_to) m /= double(rounds);
    d.lanes /= double(rounds);
    d.collective_arrivals /= double(rounds);
    d.overhead_ops /= double(rounds);
  }
  const double round = simulateRound(cfg, perRound);
  return double(rounds) * (round + cfg.params.launch_overhead_us * kUs);
}

double cpuBaselineTime(const MachineParams& p, std::uint32_t nodes,
                       double opsPerNode, double remoteFraction,
                       double msgBytes, double pernodeQueueBytes,
                       std::uint64_t rounds) {
  // Grappa-style: every operation runs through the software delegate +
  // aggregation path on `cpu_threads` hardware threads; remote operations
  // additionally ride 64 kB aggregated network messages.
  const double compute = opsPerNode * p.cpu_op_ns * 1e-9 / p.cpu_threads;
  const double remoteMsgs = opsPerNode * remoteFraction;
  const double batches = remoteMsgs * msgBytes / pernodeQueueBytes;
  const double wire = batches * (p.batch_post_us + p.batch_latency_us) * 1e-6 +
                      remoteMsgs * msgBytes / (p.linkBytesPerNs() * 1e9);
  // Compute and communication overlap (Grappa is latency-tolerant); the
  // resolve path shares the same threads, so add it to compute.
  const double resolve = remoteMsgs * p.cpu_op_ns * 0.5e-9 / p.cpu_threads;
  return std::max(compute + resolve, wire) +
         double(rounds) * p.launch_overhead_us * 1e-6;
}

}  // namespace gravel::perf
