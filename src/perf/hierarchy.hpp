// Hierarchical aggregation (paper §10, future work): "Larger systems could
// be organized in a logical hierarchy ... a two level hierarchy with each
// level doing a 16-node aggregation supports 256 nodes with one indirect
// hop."
//
// This implements that proposal as an analytic throughput model for a
// GUPS-like all-to-all stream, so the crossover the paper predicts —
// flat per-destination queues stop amortizing once per-destination traffic
// drops below one queue's worth, while two-level aggregation keeps batches
// full at the cost of one forwarding hop — can be quantified
// (bench_ext_hierarchy).
#pragma once

#include <algorithm>
#include <cstdint>

#include "perf/params.hpp"

namespace gravel::perf {

struct HierarchyConfig {
  std::uint32_t nodes = 256;
  std::uint32_t group = 1;  ///< 1 = flat; 16 = the paper's two-level example
  double msgs_per_node = 1e6;
  double msg_bytes = 32;
  double pernode_queue_bytes = 64.0 * 1024;
  MachineParams params{};
};

/// Seconds for one round of uniform all-to-all traffic under the given
/// hierarchy. Every stage (GPU production, aggregation, egress, forwarding,
/// resolution) is assumed pipelined; the bottleneck stage sets the time.
inline double hierarchicalRoundSeconds(const HierarchyConfig& cfg) {
  const MachineParams& p = cfg.params;
  const double M = cfg.msgs_per_node;
  const double batchMsgs =
      std::max(1.0, cfg.pernode_queue_bytes / cfg.msg_bytes);
  const double wireNsPerMsg = cfg.msg_bytes / p.linkBytesPerNs();

  // GPU production (WG-level reservation: 4 collectives + 2 RMWs per
  // 256-lane group).
  const double prod =
      M * (p.lane_ns + 4 * p.arrival_ns + 2 * p.queue_rmw_ns / 256.0) * 1e-9;

  // Sender occupancy for `outMsgs` spread over `dests` per-destination
  // queues; partially-filled queues still pay a full post each.
  const auto egress = [&](double outMsgs, double dests) {
    const double perDest = outMsgs / dests;
    const double batchesPerDest = std::max(1.0, perDest / batchMsgs);
    return dests * batchesPerDest * p.batch_post_us * 1e-6 +
           outMsgs * wireNsPerMsg * 1e-9;
  };

  const double resolve = M * p.resolve_msg_ns * 1e-9;

  if (cfg.group <= 1) {
    // Flat: N-1 per-destination queues per node.
    const double dests = std::max(1.0, double(cfg.nodes) - 1);
    const double out = M * dests / cfg.nodes;
    return std::max(
        {prod, M * p.agg_msg_ns * 1e-9, egress(out, dests), resolve});
  }

  // Two-level: aggregate by destination *group* (N/G queues), ship to the
  // destination group's leader, which re-aggregates per final node (G
  // queues) and forwards. Leadership rotates per destination, so every node
  // carries an equal forwarding share (uniform traffic keeps this balanced).
  const double groups = double(cfg.nodes) / cfg.group;
  const double remoteOut = M * (groups - 1) / groups;
  const double stage1 = egress(remoteOut, std::max(1.0, groups - 1));
  const double forwardAgg = remoteOut * p.agg_msg_ns * 1e-9;
  const double stage2 = egress(remoteOut, std::max(1.0, double(cfg.group)));
  return std::max({prod, M * p.agg_msg_ns * 1e-9 + forwardAgg,
                   stage1 + stage2, resolve + forwardAgg});
}

}  // namespace gravel::perf
