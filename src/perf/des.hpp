// A small discrete-event simulation engine: a time-ordered event queue plus
// single-server resources with FIFO service. This is the timing substrate
// that replays a functional run's traffic counts against the Table-3
// machine model (see netsim.hpp) — the stand-in for the cluster we do not
// have (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace gravel::perf {

/// Event-driven simulator. Times are seconds (double).
class EventSim {
 public:
  using Callback = std::function<void()>;

  double now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void at(double t, Callback fn) {
    GRAVEL_CHECK_MSG(t >= now_ - 1e-15, "cannot schedule in the past");
    queue_.push(Event{t, seq_++, std::move(fn)});
  }
  /// Schedules `fn` after `dt` seconds.
  void after(double dt, Callback fn) { at(now_ + dt, std::move(fn)); }

  /// Runs until the event queue drains. Returns the final clock.
  double run() {
    while (!queue_.empty()) {
      // The queue stores const refs through top(); move the callback out
      // before popping by copying the small wrapper.
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.time;
      ev.fn();
    }
    return now_;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for determinism
    Callback fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ = 0;
  std::uint64_t seq_ = 0;
};

/// A single-server FIFO resource (a NIC egress, a CPU thread): jobs queue up
/// and are serviced one at a time; completion callbacks fire in order.
class Server {
 public:
  explicit Server(EventSim& sim) : sim_(sim) {}

  /// Enqueues a job of `serviceTime` seconds; `done` fires at completion.
  void submit(double serviceTime, EventSim::Callback done = {}) {
    const double start = std::max(sim_.now(), freeAt_);
    freeAt_ = start + serviceTime;
    busy_ += serviceTime;
    if (done) sim_.at(freeAt_, std::move(done));
  }

  /// Time at which the server goes (or went) idle.
  double freeAt() const noexcept { return freeAt_; }
  /// Total busy seconds accumulated.
  double busyTime() const noexcept { return busy_; }

 private:
  EventSim& sim_;
  double freeAt_ = 0;
  double busy_ = 0;
};

}  // namespace gravel::perf
