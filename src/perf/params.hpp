// Machine parameters for the timing model, calibrated to the paper's
// Table 3 node (AMD A10-7850K APU, 56 Gb/s InfiniBand) and to the paper's
// own micro-measurements:
//
//   - Figure 8: Gravel's queue moves 32 B messages at ~7 GB/s with 4-WF
//     work-groups => ~4.5 ns/message on the GPU side.
//   - Figure 6: a 1-WF work-group is ~3x slower than 4 WFs, so the fixed
//     per-reservation RMW cost must dominate the per-lane collective cost.
//   - §8.1: the aggregator's single CPU thread sustains the full stream
//     (it polls 65% of the time at 8 nodes), so its per-message cost sits
//     just under the GPU's per-message production cost at scale.
//   - Figure 14: GUPS throughput saturates once per-node queues reach
//     ~32 kB, which pins the per-network-message overhead near a
//     microsecond against the 7 GB/s wire.
//
// All values are knobs: the benches print the parameter set they used.
#pragma once

namespace gravel::perf {

struct MachineParams {
  // --- GPU execution -----------------------------------------------------
  // Solved from Figure 8's 7 GB/s at 256-lane groups and Figure 6's ~3x
  // 4-WF/1-WF ratio: 32 B / (lane + 4*arrival + 2*rmw/256) = 7 GB/s and
  // the same expression at /64 three times slower.
  double lane_ns = 0.4;            ///< base kernel cost per executed lane
  double arrival_ns = 0.26;        ///< per lane-arrival at a WG collective
  double queue_rmw_ns = 400.0;     ///< per shared-memory RMW (reserve/claim)
  double op_ns = 1.0;              ///< per predication-overhead instruction

  // --- CPU-side runtime ---------------------------------------------------
  double agg_msg_ns = 4.0;         ///< aggregator repack, per message (one CPU
                                   ///< thread keeps pace with the GPU stream, §8.1)
  double resolve_msg_ns = 12.0;    ///< network-thread resolve, per message
  double am_extra_ns = 12.0;       ///< additional handler cost per AM

  // --- network -------------------------------------------------------------
  // Per-network-message cost is split: `batch_post_us` occupies the sender
  // (MPI post + progress-thread work), while `batch_latency_us` is pure
  // pipeline delay hidden by the 3-per-destination queue rotation
  // (Table 3). Their sum is calibrated to Figure 14's ~32 kB knee.
  double batch_post_us = 2.0;
  double batch_latency_us = 6.0;
  double link_gbps = 56.0;         ///< Table 3 InfiniBand
  double launch_overhead_us = 10.0;  ///< kernel launch + quiet, per round

  // --- GPU networking-style extras ----------------------------------------
  /// Coalesced APIs: counting-sort of a work-group in scratchpad, per lane.
  double coalesced_sort_lane_ns = 3.0;
  /// Coalesced APIs: per per-destination list send (API invocation).
  double coalesced_call_ns = 300.0;
  /// Message-per-lane: per-message GPU-side issue cost (WI-granularity
  /// synchronization — §4.1 measured it two orders of magnitude slower).
  double per_lane_issue_ns = 500.0;

  // --- CPU-based comparator (Grappa/UPC-like, Figure 13) -------------------
  double cpu_op_ns = 240.0;   ///< per update through the delegate/agg path
  double cpu_threads = 4.0;   ///< Table 3: 2 cores / 4 threads

  double linkBytesPerNs() const { return link_gbps / 8.0; }
};

}  // namespace gravel::perf
