// Distributed-graph view: block-partitioned vertices plus the per-edge
// "inbox slot" assignment used by the PUT-only algorithms (PR, color).
//
// GasCL-style push algorithms send a value along every out-edge. With PUT as
// the only primitive (paper Table 5: PR and color use non-atomic operations
// exclusively), each directed edge (u -> v) needs a private landing slot at
// v's owner so concurrent senders never collide: slot k of v's inbox holds
// the message of v's k-th incoming edge.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace gravel::graph {

class DistGraph {
 public:
  DistGraph() = default;

  DistGraph(Csr graph, std::uint32_t nodes)
      : g_(std::move(graph)), vparts_(g_.vertexCount(), nodes) {
    const Vertex n = g_.vertexCount();
    // In-degree prefix sum (global numbering first).
    std::vector<std::uint64_t> inDegree(n, 0);
    for (Vertex u = 0; u < n; ++u)
      for (Vertex v : g_.neighbors(u)) ++inDegree[v];
    inPrefix_.assign(n + 1, 0);
    for (Vertex v = 0; v < n; ++v) inPrefix_[v + 1] = inPrefix_[v] + inDegree[v];

    // Per-destination-node inbox sizes and the per-vertex local base.
    inboxSize_.assign(nodes, 0);
    nodeInboxBase_.assign(nodes, 0);
    for (std::uint32_t nd = 0; nd < nodes; ++nd) {
      const std::uint64_t lo = vparts_.globalIndex(nd, 0);
      nodeInboxBase_[nd] = lo < n ? inPrefix_[lo] : inPrefix_[n];
      const std::uint64_t hi = std::min<std::uint64_t>(lo + vparts_.perNode(), n);
      inboxSize_[nd] =
          (lo < n ? inPrefix_[hi] : inPrefix_[n]) - nodeInboxBase_[nd];
    }

    // Assign each edge its destination-local inbox slot.
    edgeInboxSlot_.resize(g_.edgeCount());
    std::vector<std::uint64_t> cursor(inPrefix_.begin(), inPrefix_.end() - 1);
    for (Vertex u = 0; u < n; ++u) {
      const std::uint64_t base = g_.edgeBegin(u);
      const auto nbrs = g_.neighbors(u);
      for (std::uint64_t k = 0; k < nbrs.size(); ++k) {
        const Vertex v = nbrs[k];
        edgeInboxSlot_[base + k] =
            cursor[v]++ - nodeInboxBase_[vparts_.owner(v)];
      }
    }
  }

  const Csr& graph() const noexcept { return g_; }
  const BlockPartition& vertices() const noexcept { return vparts_; }
  std::uint32_t nodes() const noexcept { return vparts_.nodes(); }

  /// Destination node of edge `eid` (owner of its target vertex).
  std::uint32_t edgeDestNode(std::uint64_t eid, Vertex target) const {
    (void)eid;
    return vparts_.owner(target);
  }
  /// Destination-local inbox slot of edge `eid`.
  std::uint64_t inboxSlot(std::uint64_t eid) const {
    return edgeInboxSlot_[eid];
  }

  std::uint64_t inDegree(Vertex v) const {
    return inPrefix_[v + 1] - inPrefix_[v];
  }
  /// First inbox slot of vertex `v`, local to its owner node.
  std::uint64_t localInboxBase(Vertex v) const {
    return inPrefix_[v] - nodeInboxBase_[vparts_.owner(v)];
  }
  /// Inbox slots owned by `node`.
  std::uint64_t inboxSize(std::uint32_t node) const {
    return inboxSize_[node];
  }
  std::uint64_t maxInboxSize() const {
    std::uint64_t best = 0;
    for (auto s : inboxSize_) best = std::max(best, s);
    return best;
  }

 private:
  Csr g_;
  BlockPartition vparts_;
  std::vector<std::uint64_t> inPrefix_;
  std::vector<std::uint64_t> edgeInboxSlot_;
  std::vector<std::uint64_t> inboxSize_;
  std::vector<std::uint64_t> nodeInboxBase_;
};

}  // namespace gravel::graph
