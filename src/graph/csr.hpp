// Compressed-sparse-row graphs, the substrate for the paper's PR / SSSP /
// color workloads (derived from GasCL, a vertex-centric GPU graph model).
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace gravel::graph {

using Vertex = std::uint32_t;

/// One directed edge for builder input.
struct Edge {
  Vertex src;
  Vertex dst;
};

/// Directed CSR. `offsets` has n+1 entries; the out-neighbors of v are
/// `targets[offsets[v] .. offsets[v+1])`.
class Csr {
 public:
  Csr() = default;

  /// Builds from an edge list (duplicates kept; self-loops kept — the
  /// generators avoid them, but the structure does not care).
  static Csr fromEdges(Vertex vertexCount, std::span<const Edge> edges) {
    Csr g;
    g.offsets_.assign(vertexCount + 1, 0);
    for (const Edge& e : edges) {
      GRAVEL_CHECK_MSG(e.src < vertexCount && e.dst < vertexCount,
                       "edge endpoint out of range");
      ++g.offsets_[e.src + 1];
    }
    std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());
    g.targets_.resize(edges.size());
    std::vector<std::uint64_t> cursor(g.offsets_.begin(),
                                      g.offsets_.end() - 1);
    for (const Edge& e : edges) g.targets_[cursor[e.src]++] = e.dst;
    return g;
  }

  Vertex vertexCount() const noexcept {
    return offsets_.empty() ? 0 : Vertex(offsets_.size() - 1);
  }
  std::uint64_t edgeCount() const noexcept { return targets_.size(); }

  std::uint64_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  std::uint64_t edgeBegin(Vertex v) const { return offsets_[v]; }
  std::span<const Vertex> neighbors(Vertex v) const {
    return {targets_.data() + offsets_[v], degree(v)};
  }

  double averageDegree() const {
    return vertexCount() ? double(edgeCount()) / vertexCount() : 0.0;
  }
  std::uint64_t maxDegree() const {
    std::uint64_t best = 0;
    for (Vertex v = 0; v < vertexCount(); ++v)
      best = std::max(best, degree(v));
    return best;
  }

  /// The transposed graph (in-edges become out-edges), used to build
  /// per-destination inboxes for the PUT-only PR/color algorithms.
  Csr transpose() const {
    std::vector<Edge> rev;
    rev.reserve(edgeCount());
    for (Vertex v = 0; v < vertexCount(); ++v)
      for (Vertex t : neighbors(v)) rev.push_back({t, v});
    return fromEdges(vertexCount(), rev);
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<Vertex> targets_;
};

/// Block partition of [0, count) over `nodes` nodes — the distribution the
/// apps use for vertices, array slices and hash-table buckets.
class BlockPartition {
 public:
  BlockPartition() = default;
  BlockPartition(std::uint64_t count, std::uint32_t nodes)
      : count_(count),
        nodes_(nodes),
        perNode_((count + nodes - 1) / std::max<std::uint32_t>(1, nodes)) {}

  std::uint64_t count() const noexcept { return count_; }
  std::uint32_t nodes() const noexcept { return nodes_; }
  /// Capacity per node (the last node may own fewer live elements).
  std::uint64_t perNode() const noexcept { return perNode_; }

  std::uint32_t owner(std::uint64_t global) const {
    return std::uint32_t(global / perNode_);
  }
  std::uint64_t localIndex(std::uint64_t global) const {
    return global % perNode_;
  }
  std::uint64_t globalIndex(std::uint32_t node, std::uint64_t local) const {
    return std::uint64_t(node) * perNode_ + local;
  }
  /// Number of elements owned by `node`.
  std::uint64_t sizeOf(std::uint32_t node) const {
    const std::uint64_t lo = std::uint64_t(node) * perNode_;
    if (lo >= count_) return 0;
    return std::min(perNode_, count_ - lo);
  }

 private:
  std::uint64_t count_ = 0;
  std::uint32_t nodes_ = 1;
  std::uint64_t perNode_ = 0;
};

}  // namespace gravel::graph
