// Synthetic graph generators standing in for the paper's UFl-collection
// inputs (Table 4). Figures 12/15 distinguish the two graph inputs only
// through their *communication shape* — remote-access frequency, aggregate
// message sizes and iteration counts — which are driven by average degree,
// degree spread and diameter. The generators match those regimes:
//
//   bubblesLike : hugebubbles-00020 stand-in — 2-D mesh adaptively refined;
//                 avg degree ~3, near-uniform degrees, huge diameter.
//   cageLike    : cage15 stand-in — banded DNA-electrophoresis matrix;
//                 avg degree ~19, moderate spread, small bandwidth.
//   rmat        : power-law graph for ablations beyond the paper.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace gravel::graph {

/// 2-D triangulated mesh of about `vertices` nodes (rounded to a W x H
/// grid): right/down/one diagonal neighbor, symmetrized. Average degree ~3
/// per direction, diameter ~ O(sqrt(n)).
Csr bubblesLike(Vertex vertices, std::uint64_t seed = 1);

/// Banded random graph: each vertex gets ~`avgDegree` out-edges to vertices
/// within +-`band` positions (wrapping), symmetrized — small diameter, like
/// cage15's narrow band structure.
Csr cageLike(Vertex vertices, std::uint32_t avgDegree = 19,
             std::uint64_t seed = 1);

/// R-MAT (a=0.57,b=0.19,c=0.19): skewed degrees, used by ablation benches.
Csr rmat(Vertex vertices, std::uint64_t edges, std::uint64_t seed = 1);

/// Deterministic per-edge weight in [1, maxWeight], a function of the edge's
/// endpoints, so distributed and serial runs agree without storing weights.
inline std::uint64_t edgeWeight(Vertex u, Vertex v,
                                std::uint64_t maxWeight = 15) {
  std::uint64_t x = (std::uint64_t(u) << 32) ^ v;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return 1 + x % maxWeight;
}

}  // namespace gravel::graph
