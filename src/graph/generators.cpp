#include "graph/generators.hpp"

#include <cmath>
#include <unordered_set>

#include "common/rng.hpp"

namespace gravel::graph {

namespace {
/// Symmetrizes and deduplicates an undirected edge set given one direction.
std::vector<Edge> symmetrize(const std::vector<Edge>& half) {
  std::vector<Edge> all;
  all.reserve(half.size() * 2);
  for (const Edge& e : half) {
    if (e.src == e.dst) continue;
    all.push_back(e);
    all.push_back({e.dst, e.src});
  }
  return all;
}
}  // namespace

Csr bubblesLike(Vertex vertices, std::uint64_t seed) {
  const auto side = Vertex(std::ceil(std::sqrt(double(vertices))));
  const Vertex w = side, h = (vertices + side - 1) / side;
  const Vertex n = w * h;
  Xoshiro256 rng(seed);
  std::vector<Edge> half;
  half.reserve(std::size_t{n} * 2);
  auto id = [w](Vertex x, Vertex y) { return y * w + x; };
  for (Vertex y = 0; y < h; ++y) {
    for (Vertex x = 0; x < w; ++x) {
      const Vertex v = id(x, y);
      // Honeycomb-like: a horizontal edge everywhere, a vertical edge from
      // every other cell — degree ~3 after symmetrization, matching
      // hugebubbles' ~3.0 average directed degree. A sprinkle of random
      // verticals mimics the adaptive-refinement irregularity.
      if (x + 1 < w) half.push_back({v, id(x + 1, y)});
      if (y + 1 < h && ((x + y) % 2 == 0 || rng.below(16) == 0))
        half.push_back({v, id(x, y + 1)});
    }
  }
  // Relabel in shuffled chunks of 32: DIMACS mesh files carry no
  // partition-friendly numbering, and Table 5 measures ~35-38% remote
  // accesses for the mesh input at 8 nodes under block partitioning.
  // Chunked shuffling keeps horizontal neighbors mostly co-located while
  // scattering vertical neighbors, landing in that regime.
  constexpr Vertex kChunk = 32;
  const Vertex chunks = (n + kChunk - 1) / kChunk;
  std::vector<Vertex> order(chunks);
  for (Vertex c = 0; c < chunks; ++c) order[c] = c;
  for (Vertex c = chunks - 1; c > 0; --c)
    std::swap(order[c], order[rng.below(c + 1)]);
  std::vector<Vertex> relabel(chunks * kChunk);
  for (Vertex c = 0; c < chunks; ++c)
    for (Vertex i = 0; i < kChunk; ++i)
      relabel[c * kChunk + i] = order[c] * kChunk + i;
  for (Edge& e : half) {
    e.src = relabel[e.src];
    e.dst = relabel[e.dst];
  }
  return Csr::fromEdges(chunks * kChunk, symmetrize(half));
}

Csr cageLike(Vertex vertices, std::uint32_t avgDegree, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::uint64_t band = std::max<std::uint64_t>(4, vertices / 64);
  std::vector<Edge> half;
  half.reserve(std::size_t{vertices} * avgDegree / 2);
  const std::uint32_t out = avgDegree / 2;  // symmetrization doubles it
  for (Vertex v = 0; v < vertices; ++v) {
    for (std::uint32_t k = 0; k < out; ++k) {
      // Offset in [1, band], wrapping: a narrow band like cage15.
      const std::uint64_t off = 1 + rng.below(band);
      half.push_back({v, Vertex((v + off) % vertices)});
    }
  }
  return Csr::fromEdges(vertices, symmetrize(half));
}

Csr rmat(Vertex vertices, std::uint64_t edges, std::uint64_t seed) {
  // Round vertex count up to a power of two for the recursive quadrant walk.
  Vertex n = 1;
  while (n < vertices) n <<= 1;
  Xoshiro256 rng(seed);
  std::vector<Edge> list;
  list.reserve(edges);
  for (std::uint64_t e = 0; e < edges; ++e) {
    Vertex x = 0, y = 0;
    for (Vertex bit = n >> 1; bit != 0; bit >>= 1) {
      const double r = rng.uniform();
      if (r < 0.57) {
        // top-left
      } else if (r < 0.76) {
        x |= bit;
      } else if (r < 0.95) {
        y |= bit;
      } else {
        x |= bit;
        y |= bit;
      }
    }
    if (x != y) list.push_back({x % vertices, y % vertices});
  }
  return Csr::fromEdges(vertices, list);
}

}  // namespace gravel::graph
