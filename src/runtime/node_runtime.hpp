// One Gravel node: simulated GPU + producer/consumer queue + aggregator +
// network thread + symmetric-heap slice, with the device-side API kernels
// call (shmem_put / shmem_inc / shmem_am, paper §3.4 and §6).
#pragma once

#include <cstdint>

#include "net/dead_letter.hpp"
#include "net/fabric.hpp"
#include "obs/trace.hpp"
#include "queue/gravel_queue.hpp"
#include "runtime/active_message.hpp"
#include "runtime/aggregator.hpp"
#include "runtime/config.hpp"
#include "runtime/membership.hpp"
#include "runtime/message.hpp"
#include "runtime/network_thread.hpp"
#include "runtime/symmetric_heap.hpp"
#include "simt/device.hpp"

namespace gravel::rt {

/// Device-side operation counters; single-writer (the node's GPU scheduler
/// thread), read after launches.
struct NodeOpStats {
  std::uint64_t put_local = 0;   ///< PUTs resolved by a direct GPU store
  std::uint64_t put_remote = 0;  ///< PUTs shipped through the aggregator
  std::uint64_t inc_local = 0;   ///< local atomics (still serialized via NI)
  std::uint64_t inc_remote = 0;
  std::uint64_t am_local = 0;
  std::uint64_t am_remote = 0;

  std::uint64_t total() const {
    return put_local + put_remote + inc_local + inc_remote + am_local +
           am_remote;
  }
  /// Table 5's "remote access frequency": operations whose destination is
  /// another node.
  double remoteFraction() const {
    const std::uint64_t t = total();
    return t ? double(put_remote + inc_remote + am_remote) / double(t) : 0.0;
  }
};

class NodeRuntime {
 public:
  NodeRuntime(std::uint32_t id, const ClusterConfig& config,
              net::Fabric& fabric, const AmRegistry& registry,
              obs::Tracer& tracer, obs::Profiler* profiler = nullptr)
      : id_(id),
        config_(config),
        tracer_(tracer),
        heap_(config.heap_bytes),
        queue_(GravelQueueConfig{config.gpu_queue_bytes,
                                 config.device.max_wg_size,
                                 NetMessage::kRows}),
        aggregator_(id, queue_, fabric, config, tracer, profiler),
        network_(id, fabric, heap_, registry, tracer, profiler),
        device_(config.device) {}

  std::uint32_t id() const noexcept { return id_; }
  SymmetricHeap& heap() noexcept { return heap_; }
  const SymmetricHeap& heap() const noexcept { return heap_; }
  GravelQueue& queue() noexcept { return queue_; }
  Aggregator& aggregator() noexcept { return aggregator_; }
  NetworkThread& network() noexcept { return network_; }
  simt::Device& device() noexcept { return device_; }
  NodeOpStats& opStats() noexcept { return opStats_; }
  const NodeOpStats& opStats() const noexcept { return opStats_; }

  void startThreads() {
    aggregator_.start(config_.aggregator_threads);
    network_.start();
  }

  /// Soft admission control (degrade policy): when a destination is dead and
  /// its dead-letter store is already at its bound, new remote operations
  /// toward it are refused at enqueue time — pushback at the source instead
  /// of unbounded eviction downstream. Both collaborators must outlive this
  /// node; never attached under fail_fast.
  void attachAdmission(const Membership* membership,
                       net::DeadLetterQueue* dlq) {
    membership_ = membership;
    dlq_ = dlq;
  }
  void stopThreads() {
    aggregator_.stop();
    network_.stop();
  }

  // --- device-side API (call from inside kernels) -------------------------
  // All three operations are collective over the work-group: every live lane
  // must call them (software predication, §5.1) with `active` saying whether
  // this lane really has a message. The whole group's messages are deposited
  // into one queue slot with a single reservation (§4.1/Figure 5b).

  /// PGAS put: store `value` at `addr` on node `dest`. Local puts execute
  /// directly as GPU stores (§7.1); remote puts go through the aggregator.
  void shmemPut(simt::WorkItem& wi, std::uint32_t dest,
                std::uint64_t byteOffset, std::uint64_t value,
                bool active = true, simt::FBar* fb = nullptr) {
    const bool local = dest == id_;
    if (active && !local && !admitRemote(dest)) active = false;
    if (active) {
      if (local) {
        heap_.storeU64(byteOffset, value);
        ++opStats_.put_local;
      } else {
        ++opStats_.put_remote;
      }
    }
    enqueueGroup(wi, NetMessage::put(dest, byteOffset, value),
                 active && !local, fb);
  }

  /// PGAS atomic increment of the 64-bit word at `addr` on node `dest`.
  /// Local increments are also routed through the NI so all atomics on a
  /// node are serialized by its network thread (§6).
  void shmemInc(simt::WorkItem& wi, std::uint32_t dest,
                std::uint64_t byteOffset, bool active = true,
                simt::FBar* fb = nullptr) {
    if (active && !admitRemote(dest)) active = false;
    if (active) {
      if (dest == id_)
        ++opStats_.inc_local;
      else
        ++opStats_.inc_remote;
    }
    enqueueGroup(wi, NetMessage::atomicInc(dest, byteOffset), active, fb);
  }

  /// Active message: run `handler` at node `dest` with two arguments.
  /// Serialized through the destination's network thread like increments.
  void shmemAm(simt::WorkItem& wi, std::uint32_t dest, std::uint32_t handler,
               std::uint64_t arg0, std::uint64_t arg1, bool active = true,
               simt::FBar* fb = nullptr) {
    if (active && !admitRemote(dest)) active = false;
    if (active) {
      if (dest == id_)
        ++opStats_.am_local;
      else
        ++opStats_.am_remote;
    }
    enqueueGroup(wi, NetMessage::activeMessage(dest, handler, arg0, arg1),
                 active, fb);
  }

  /// Direct load from the local heap slice (GPU loads are local-only in
  /// Gravel; remote reads are expressed as puts/AMs toward the reader).
  std::uint64_t localLoad(std::uint64_t byteOffset) const {
    return heap_.loadU64(byteOffset);
  }

 private:
  /// The admission check. Refusing turns the lane inactive: it still takes
  /// part in the collective reservation (software-predication semantics are
  /// untouched), its message just never enters the queue, and the refusal is
  /// counted. A live (or merely suspect) destination is always admitted —
  /// only a dead destination whose dead-letter bound is exhausted pushes
  /// back.
  bool admitRemote(std::uint32_t dest) {
    if (membership_ == nullptr || dlq_ == nullptr) return true;
    if (!membership_->dead(dest) || !dlq_->full(dest)) return true;
    dlq_->noteRejected(1);
    return false;
  }

  /// The §4.1 work-group-level reservation: leader election by reduce-max
  /// over active lane ids, per-lane slot columns by prefix-sum, one
  /// fetch-add (inside acquireWrite) by the leader, broadcast of the slot
  /// handle, then a group barrier before the leader publishes.
  /// With `fb`, the same sequence runs over the fbar's members instead of
  /// the whole group (§5.3).
  void enqueueGroup(simt::WorkItem& wi, const NetMessage& m, bool active,
                    simt::FBar* fb);

  static std::uint64_t packRef(const GravelQueue::SlotRef& ref) {
    return (std::uint64_t(ref.slot) << 48) | ref.round;
  }
  static GravelQueue::SlotRef unpackRef(std::uint64_t packed,
                                        std::uint32_t count) {
    return GravelQueue::SlotRef{std::uint32_t(packed >> 48),
                                packed & ((std::uint64_t(1) << 48) - 1),
                                count};
  }

  std::uint32_t id_;
  const ClusterConfig& config_;
  obs::Tracer& tracer_;
  SymmetricHeap heap_;
  GravelQueue queue_;
  Aggregator aggregator_;
  NetworkThread network_;
  simt::Device device_;
  NodeOpStats opStats_;
  const Membership* membership_ = nullptr;  ///< admission (degrade only)
  net::DeadLetterQueue* dlq_ = nullptr;
};

}  // namespace gravel::rt
