// Aggregated statistics for one measurement window of a cluster run. This
// is the hand-off structure between the functional execution and the cost
// model in src/perf: everything timing-related is derived from these counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/stage.hpp"
#include "simt/types.hpp"

namespace gravel::rt {

/// What a degraded-mode window looked like (reliability.policy == kDegrade):
/// which nodes are excised, which links tripped, and the dead-letter
/// accounting that closes the conservation invariant
///
///     delivered (net_resolved) + dead_lettered == sent (net_messages)
///
/// for the window. All-zero/empty under fail_fast or a healthy run.
struct DegradedRunReport {
  struct DeadNode {
    std::uint32_t node = 0;
    std::uint32_t epoch = 0;  ///< incarnation at the end of the window
  };
  struct TrippedLink {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint8_t breaker = 0;  ///< net::BreakerState at window end
    std::uint32_t era = 0;     ///< re-sync count (lifetime, not windowed)
  };

  std::vector<DeadNode> dead_nodes;
  std::vector<TrippedLink> tripped_links;

  // Window deltas from the dead-letter queue.
  std::uint64_t dead_lettered = 0;  ///< messages excised links owed
  std::uint64_t redelivered = 0;    ///< paid back after a restart
  std::uint64_t rejected = 0;       ///< enqueue-side admission refusals
  std::uint64_t evicted = 0;        ///< dead-lettered past the bound

  bool degraded() const noexcept {
    return !dead_nodes.empty() || !tripped_links.empty() ||
           dead_lettered != 0 || rejected != 0;
  }

  void merge(const DegradedRunReport& o) {
    for (const DeadNode& dn : o.dead_nodes) {
      bool found = false;
      for (DeadNode& mine : dead_nodes) {
        if (mine.node != dn.node) continue;
        mine.epoch = std::max(mine.epoch, dn.epoch);
        found = true;
        break;
      }
      if (!found) dead_nodes.push_back(dn);
    }
    for (const TrippedLink& tl : o.tripped_links) {
      bool found = false;
      for (TrippedLink& mine : tripped_links) {
        if (mine.src != tl.src || mine.dst != tl.dst) continue;
        mine.breaker = tl.breaker;  // later window wins
        mine.era = std::max(mine.era, tl.era);
        found = true;
        break;
      }
      if (!found) tripped_links.push_back(tl);
    }
    dead_lettered += o.dead_lettered;
    redelivered += o.redelivered;
    rejected += o.rejected;
    evicted += o.evicted;
  }
};

struct ClusterRunStats {
  std::uint32_t nodes = 0;

  // Device-side operation mix (summed over nodes).
  std::uint64_t put_local = 0;
  std::uint64_t put_remote = 0;
  std::uint64_t inc_local = 0;
  std::uint64_t inc_remote = 0;
  std::uint64_t am_local = 0;
  std::uint64_t am_remote = 0;

  // GPU execution counts (summed over nodes).
  std::uint64_t lanes_executed = 0;
  std::uint64_t workgroups_executed = 0;
  std::uint64_t collective_ops = 0;
  std::uint64_t collective_arrivals = 0;
  std::uint64_t active_arrivals = 0;
  std::uint64_t predication_overhead_ops = 0;

  // Aggregator hot path (summed over nodes). The lock-vs-destination pair
  // is the slot-batched routing invariant: one appendRun lock acquisition
  // per distinct destination per slot, so
  // agg_lock_acquisitions <= agg_dests_touched <= messages routed — the
  // bench harness (bench/run_benches.py) checks the inequality per window.
  std::uint64_t agg_slots = 0;             ///< queue slots routed
  std::uint64_t agg_lock_acquisitions = 0; ///< routing-path shard locks
  std::uint64_t agg_dests_touched = 0;     ///< distinct dests summed per slot

  // Scalability evidence (DESIGN.md §14). timeout_scanned is a windowed
  // delta like the counters above: timer-wheel entries checkTimeouts()
  // examined, proportional to buffer-open events rather than the old
  // nodes x cadence-ticks full scan. The remaining three are LEVELS at the
  // moment runStats() ran, not deltas — lazy_buffers/resident_bytes sum the
  // demand-paged per-destination buffers actually allocated (flat in N for
  // cold destinations), and staging_bytes_peak is the largest per-routing-
  // thread scratch high-water mark (O(lanes), never O(N)).
  std::uint64_t agg_timeout_scanned = 0;   ///< wheel entries examined
  std::uint64_t agg_lazy_buffers = 0;      ///< resident per-dest buffers
  std::uint64_t agg_resident_bytes = 0;    ///< bytes in resident buffers
  std::uint64_t agg_staging_bytes_peak = 0;  ///< max per-thread scratch

  // Network traffic (summed over links). With a reliability layer these are
  // app-level counts: retransmissions, duplicates and ACK overhead appear in
  // the reliability counters below (and in the wire fabric's own stats),
  // not here — so Table 5 semantics are preserved under fault injection.
  std::uint64_t net_batches = 0;   ///< network messages (flushed queues)
  std::uint64_t net_messages = 0;  ///< Gravel messages carried
  std::uint64_t net_bytes = 0;
  double avg_batch_bytes = 0;  ///< Table 5 "average message size"

  /// Messages resolved at their destination heaps this window (summed over
  /// network threads). Equals net_messages on a healthy run; under degrade,
  /// net_resolved + degraded.dead_lettered == net_messages — the
  /// conservation invariant quiet() reports instead of throwing.
  std::uint64_t net_resolved = 0;

  // Reliability sublayer (zero when it is disabled).
  std::uint64_t retransmits = 0;   ///< sender-side timeout retransmissions
  std::uint64_t dup_drops = 0;     ///< receiver-side duplicates discarded
  std::uint64_t acks = 0;          ///< ACK parcels applied at senders
  std::uint64_t acks_sent = 0;     ///< standalone ACK batches emitted
  std::uint64_t reorder_drops = 0; ///< out-of-window batches discarded
  std::uint64_t reorder_peak = 0;  ///< deepest reorder buffer (absolute)

  // Graceful degradation (zero under fail_fast — see DegradedRunReport).
  std::uint64_t breaker_trips = 0;     ///< closed/half-open -> open edges
  std::uint64_t probes = 0;            ///< half-open probe batches sent
  std::uint64_t stale_data_drops = 0;  ///< stale-era data frames rejected
  std::uint64_t stale_ack_drops = 0;   ///< stale-era ACKs rejected
  DegradedRunReport degraded{};

  // Fault injection on the wire (zero on PerfectFabric).
  std::uint64_t injected_drops = 0;  ///< batches the adversary discarded
  std::uint64_t injected_dups = 0;   ///< extra copies it delivered

  // Per-transition latency attribution over sampled messages (zero when
  // tracing is off or nothing was sampled). Index t is the transition out
  // of stage t: enqueue->aggregate, ..., deliver->resolve — see
  // obs::transitionLabel. Filled from the latency-attribution engine's
  // pooled histograms; benches print these as Table-5-style columns.
  static constexpr int kLatTransitions = obs::kMessageStages - 1;
  double lat_stage_p50_ns[kLatTransitions] = {};
  double lat_stage_p99_ns[kLatTransitions] = {};
  double lat_e2e_p50_ns = 0;
  double lat_e2e_p99_ns = 0;
  std::uint64_t lat_samples = 0;  ///< e2e-paired samples behind the quantiles

  // Continuous-profiler roll-up (zero when config.profiler is off). Like
  // the latency quantiles these are cluster-lifetime values, not windowed
  // by resetStats(): benches that want per-workload CPU efficiency build a
  // fresh cluster per workload (bench/common.hpp does). busy/idle sum every
  // profiled thread's duty split; the lock pair sums the named-mutex
  // contention table — bench schema v4's cpu_ns_per_msg and
  // lock_wait_share columns derive from these.
  std::uint64_t prof_busy_ns = 0;           ///< region self time, busy paths
  std::uint64_t prof_idle_ns = 0;           ///< backoff/spin self time
  std::uint64_t prof_lock_wait_ns = 0;      ///< named-mutex blocking waits
  std::uint64_t prof_lock_acquisitions = 0; ///< named-mutex lock() calls

  // Time-series collector roll-up (zero when config.timeseries is off):
  // per-window fabric.messages rates over the retained ring, so serving
  // benches report sustained vs. peak throughput rather than one mean.
  std::uint64_t ts_windows = 0;      ///< collection windows retained
  double ts_msgs_per_s_p50 = 0;      ///< median per-window message rate
  double ts_msgs_per_s_peak = 0;     ///< fastest window's message rate

  /// Combines another window (or another cluster's shard) into this one.
  /// Field semantics differ and naive `+=` over the whole struct is wrong:
  /// peak-style fields (`reorder_peak`) are high-water marks and combine
  /// with max, `avg_batch_bytes` is a mean and must be re-weighted by batch
  /// count, and `nodes` describes the topology rather than a quantity. Use
  /// this instead of summing fields at call sites.
  void merge(const ClusterRunStats& o) {
    nodes = std::max(nodes, o.nodes);

    put_local += o.put_local;
    put_remote += o.put_remote;
    inc_local += o.inc_local;
    inc_remote += o.inc_remote;
    am_local += o.am_local;
    am_remote += o.am_remote;

    lanes_executed += o.lanes_executed;
    workgroups_executed += o.workgroups_executed;
    collective_ops += o.collective_ops;
    collective_arrivals += o.collective_arrivals;
    active_arrivals += o.active_arrivals;
    predication_overhead_ops += o.predication_overhead_ops;

    agg_slots += o.agg_slots;
    agg_lock_acquisitions += o.agg_lock_acquisitions;
    agg_dests_touched += o.agg_dests_touched;
    agg_timeout_scanned += o.agg_timeout_scanned;
    // Levels/high-water marks, not windowed quantities: max, not sum
    // (summing a gauge over merged windows would double-count residency).
    agg_lazy_buffers = std::max(agg_lazy_buffers, o.agg_lazy_buffers);
    agg_resident_bytes = std::max(agg_resident_bytes, o.agg_resident_bytes);
    agg_staging_bytes_peak =
        std::max(agg_staging_bytes_peak, o.agg_staging_bytes_peak);

    // Weighted mean before the counts it derives from are summed.
    const double total = double(net_batches) + double(o.net_batches);
    if (total > 0)
      avg_batch_bytes = (avg_batch_bytes * double(net_batches) +
                         o.avg_batch_bytes * double(o.net_batches)) /
                        total;
    net_batches += o.net_batches;
    net_messages += o.net_messages;
    net_bytes += o.net_bytes;
    net_resolved += o.net_resolved;

    retransmits += o.retransmits;
    dup_drops += o.dup_drops;
    acks += o.acks;
    acks_sent += o.acks_sent;
    reorder_drops += o.reorder_drops;
    reorder_peak = std::max(reorder_peak, o.reorder_peak);  // peak, not sum

    injected_drops += o.injected_drops;
    injected_dups += o.injected_dups;

    breaker_trips += o.breaker_trips;
    probes += o.probes;
    stale_data_drops += o.stale_data_drops;
    stale_ack_drops += o.stale_ack_drops;
    degraded.merge(o.degraded);

    // Quantiles cannot be combined exactly from two summaries; take the
    // conservative (worst-shard) value — merged benches report the slowest
    // shard's percentile, which is the number a regression gate cares about.
    for (int t = 0; t < kLatTransitions; ++t) {
      lat_stage_p50_ns[t] = std::max(lat_stage_p50_ns[t],
                                     o.lat_stage_p50_ns[t]);
      lat_stage_p99_ns[t] = std::max(lat_stage_p99_ns[t],
                                     o.lat_stage_p99_ns[t]);
    }
    lat_e2e_p50_ns = std::max(lat_e2e_p50_ns, o.lat_e2e_p50_ns);
    lat_e2e_p99_ns = std::max(lat_e2e_p99_ns, o.lat_e2e_p99_ns);
    lat_samples += o.lat_samples;

    prof_busy_ns += o.prof_busy_ns;
    prof_idle_ns += o.prof_idle_ns;
    prof_lock_wait_ns += o.prof_lock_wait_ns;
    prof_lock_acquisitions += o.prof_lock_acquisitions;

    // Rates follow the worst-shard (max) convention of the quantiles above;
    // window counts are quantities and sum.
    ts_windows += o.ts_windows;
    ts_msgs_per_s_p50 = std::max(ts_msgs_per_s_p50, o.ts_msgs_per_s_p50);
    ts_msgs_per_s_peak = std::max(ts_msgs_per_s_peak, o.ts_msgs_per_s_peak);
  }

  std::uint64_t opsTotal() const {
    return put_local + put_remote + inc_local + inc_remote + am_local +
           am_remote;
  }
  std::uint64_t opsRemote() const {
    return put_remote + inc_remote + am_remote;
  }
  /// Table 5 "remote access frequency".
  double remoteFraction() const {
    return opsTotal() ? double(opsRemote()) / double(opsTotal()) : 0.0;
  }
};

}  // namespace gravel::rt
