// The whole simulated cluster: N Gravel nodes over an in-process fabric.
// Owns the symmetric allocator, the active-message registry, the quiet
// protocol and the per-run statistics roll-up the benches print.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic.hpp"
#include "common/stats.hpp"
#include "net/dead_letter.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/status_server.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "runtime/active_message.hpp"
#include "runtime/cluster_stats.hpp"
#include "runtime/config.hpp"
#include "runtime/membership.hpp"
#include "runtime/node_runtime.hpp"

namespace gravel::rt {

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::uint32_t nodes() const noexcept { return config_.nodes; }
  const ClusterConfig& config() const noexcept { return config_; }
  NodeRuntime& node(std::uint32_t i) { return *nodes_[i]; }

  /// The transport the runtime sends through: PerfectFabric by default,
  /// FaultyFabric when config.fault is active, with ReliableFabric stacked
  /// on top when config.reliability.enabled.
  net::Fabric& fabric() noexcept { return *fabric_; }

  /// The raw wire under any reliability layer (== fabric() without one);
  /// its counters include retransmissions, duplicates and ACK traffic.
  net::Fabric& wireFabric() noexcept { return *wire_; }

  /// Symmetric allocation: the same offset is reserved on every node's heap.
  template <typename T>
  SymAddr<T> alloc(std::uint64_t count) {
    return allocator_.alloc<T>(count);
  }

  /// Registers an active-message handler on all nodes. Safe at any
  /// quiescent point, including between launches (multi-phase pipelines).
  std::uint32_t registerHandler(AmHandler handler);

  /// A kernel parameterized by the node it runs on.
  using NodeKernel = std::function<void(std::uint32_t node, simt::WorkItem&)>;

  /// Launches `kernel` with a per-node grid size on every node concurrently
  /// (one OS thread per node GPU), waits for completion, then runs the quiet
  /// protocol so every initiated message is resolved cluster-wide.
  void launchAll(std::uint64_t gridPerNode, std::uint32_t wgSize,
                 const NodeKernel& kernel);

  /// Same, with per-node grid sizes (irregular partitions).
  void launchAll(const std::vector<std::uint64_t>& grids, std::uint32_t wgSize,
                 const NodeKernel& kernel);

  /// Runs host `work(node)` for every node concurrently and quiesces. Used
  /// by host-driven phases of baseline models.
  void hostParallel(const std::function<void(std::uint32_t)>& work);

  /// Starts aggregator/network threads explicitly. launchAll() does this
  /// on first use; callers that drive devices and the fabric directly (the
  /// §3 model implementations) must call it before sending.
  void start() { ensureThreadsStarted(); }

  /// Drains GPU queues, flushes aggregators and waits until every message
  /// in flight has been resolved (the PGAS fence + cluster barrier). With a
  /// reliability layer, completion is ACK-based: every batch must be
  /// acknowledged by its destination, so drops and duplicates cannot wedge
  /// or corrupt the count. Throws net::LinkFailureError if a link exhausted
  /// its retry budget, and a generic Error with a per-link diagnostic if
  /// config.quiet_deadline expires before the cluster quiesces.
  void quiet();

  /// Per-run traffic/operation roll-up; resetStats() starts a new window.
  /// Under the degrade failure policy, `runStats().degraded` reports which
  /// nodes/links were excised and the dead-letter accounting that closes
  /// net_resolved + degraded.dead_lettered == net_messages for the window.
  ClusterRunStats runStats() const;
  void resetStats();

  // --- graceful degradation (config.reliability.policy == kDegrade) -------

  /// Membership/health view; null under fail_fast.
  Membership* membership() noexcept { return membership_.get(); }
  const Membership* membership() const noexcept { return membership_.get(); }

  /// Dead-letter queue; null under fail_fast.
  net::DeadLetterQueue* deadLetters() noexcept { return dlq_.get(); }

  /// Crash injection: declares node `n` dead, stops its network thread and
  /// excises every link touching it — in-flight traffic it already resolved
  /// counts delivered, the rest is dead-lettered, and new sends toward it
  /// dead-letter immediately (its aggregator keeps draining the GPU queue,
  /// the proxy-thread property). quiet() then completes degraded instead of
  /// throwing. No-op if the node is already dead. Requires kDegrade.
  void crashNode(std::uint32_t n);

  /// Restart injection: brings a crashed node back under the next epoch —
  /// links re-sync (stale-epoch wire traffic stays rejected), its network
  /// thread restarts, and dead-lettered traffic involving it is redelivered
  /// through the normal send path. Requires a prior crashNode/excision.
  void restartNode(std::uint32_t n);

  // --- observability (src/obs) -------------------------------------------

  /// The message-lifecycle tracer (enabled via config.obs.enabled).
  obs::Tracer& tracer() noexcept { return tracer_; }
  const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// The metrics registry; the depth sampler feeds it continuously, and
  /// collectMetrics() publishes every runtime counter into it.
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Publishes all runtime/fabric/trace-derived metrics into the registry
  /// and returns a snapshot. Call at quiescent points (after quiet()).
  obs::MetricsSnapshot collectMetrics();

  /// Chrome-trace JSON of everything recorded so far (open the file in
  /// https://ui.perfetto.dev). Call at a quiescent point.
  void writeTrace(std::ostream& os) const;

  /// Metrics snapshot as JSON / CSV (collectMetrics() first).
  void writeMetricsJson(std::ostream& os);
  void writeMetricsCsv(std::ostream& os);

  /// The stall watchdog (config.watchdog); null when disabled. Its
  /// diagnoses also surface in quiet()'s post-mortem and collectMetrics().
  obs::Watchdog* watchdog() noexcept { return watchdog_.get(); }
  const obs::Watchdog* watchdog() const noexcept { return watchdog_.get(); }

  /// Flight-recorder dump (the last N trace events per thread) as JSON.
  /// Safe at any time, including while runtime threads are live. The
  /// cluster also writes this automatically to
  /// ${GRAVEL_FLIGHTREC_DIR:-.}/gravel_flightrec.json on quiet-deadline
  /// expiry, on LinkFailureError, and at destruction when
  /// GRAVEL_FLIGHTREC_DUMP=1.
  void writeFlightRecorder(std::ostream& os, const std::string& reason) const;

  /// Watchdog diagnosis table as JSON (empty table when disabled).
  void writeWatchdog(std::ostream& os) const;

  /// The windowed time-series collector (config.timeseries /
  /// GRAVEL_TIMESERIES=1); null when disabled. The monitor thread feeds it
  /// one MetricsSnapshot::delta() window per period, and the destructor
  /// dumps ${GRAVEL_TIMESERIES_DIR:-.}/gravel_timeseries.json.
  obs::TimeSeries* timeSeries() noexcept { return timeseries_.get(); }
  const obs::TimeSeries* timeSeries() const noexcept {
    return timeseries_.get();
  }

  /// The live HTTP endpoint (config.status_server / GRAVEL_STATUS_PORT);
  /// null when disabled. port() reports the actually-bound port, so tests
  /// and tools work with an ephemeral port 0.
  obs::StatusServer* statusServer() noexcept { return statusServer_.get(); }

  /// The time-series ring as schema-versioned JSON (an empty document when
  /// the collector is disabled).
  void writeTimeSeries(std::ostream& os) const;

  /// The /status document: membership, link breakers, dead-letter depths,
  /// latency percentile gauges, open watchdog diagnoses and recent
  /// collector windows with rate columns. Safe while the run is live.
  void writeStatusJson(std::ostream& os);

  /// The continuous profiler (config.profiler / GRAVEL_PROFILE=1):
  /// per-thread cycle attribution plus the named-mutex contention table.
  /// Always constructed — disabled it costs one predicted branch per
  /// region bracket — so it can be flipped on mid-run.
  obs::Profiler& profiler() noexcept { return profiler_; }
  const obs::Profiler& profiler() const noexcept { return profiler_; }

  /// The /profile document (also gravel_profile.json at destruction when
  /// profiling is on): per-thread region paths, duty cycles, and per-site
  /// lock-wait histograms. Safe while the run is live.
  void writeProfileJson(std::ostream& os) const;

 private:
  void ensureThreadsStarted();
  void poolLoop(std::uint32_t t);
  void stopPool();
  [[noreturn]] void quietDeadlineExpired(const char* stage);
  void monitorLoop();
  obs::WatchdogSample samplePipeline();
  void sampleGauges(const obs::WatchdogSample& s);
  void sampleMembership(const obs::WatchdogSample& s);
  void collectWindow();
  void ingestLatency();
  obs::StatusResponse handleStatusRequest(const std::string& path);
  void dumpFlightRecorder(const char* reason) const noexcept;
  void dumpTimeSeries() const noexcept;
  void dumpProfile() const noexcept;

  ClusterConfig config_;
  obs::Tracer tracer_;        ///< must outlive nodes_/fabric (they hold refs)
  obs::Profiler profiler_;    ///< must outlive nodes_ (they hold pointers)
  obs::MetricsRegistry metrics_;
  std::unique_ptr<net::Fabric> wire_;             ///< transport (maybe faulty)
  std::unique_ptr<net::ReliableFabric> reliable_; ///< optional sublayer
  net::Fabric* fabric_ = nullptr;                 ///< top of the stack
  AmRegistry registry_;
  SymmetricAllocator allocator_;
  std::unique_ptr<Membership> membership_;        ///< degrade policy only
  std::unique_ptr<net::DeadLetterQueue> dlq_;     ///< degrade policy only
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  bool threadsStarted_ = false;

  /// Cooperative runtime pool (config.runtime_threads > 0): a fixed set of
  /// threads round-robin-pumping every node's aggregator and network
  /// resolver, instead of 2N dedicated threads (DESIGN.md §14). Each node
  /// is owned by exactly one pool thread, preserving the single-consumer
  /// contracts of pump()/pumpOnce().
  std::vector<std::thread> pool_;
  atomic<bool> poolStop_{false};

  /// Monitor thread: the run's ONE sampling thread. Gauge sampling + online
  /// latency ingest, watchdog sampling, the membership failure detector and
  /// the time-series collector run as duties on independent cadences;
  /// duties due on the same tick share a single pipeline sample.
  std::thread monitor_;
  atomic<bool> monitorStop_{false};
  /// Monitor-loop self-overhead (satellite of DESIGN.md §15): ticks whose
  /// work ran past the computed wake deadline, plus a duration stat. Both
  /// written by the monitor thread only; read by collectMetrics().
  atomic<std::uint64_t> monitorTickOverruns_{0};
  atomic<std::uint64_t> monitorTicks_{0};
  atomic<std::uint64_t> monitorTickNsTotal_{0};
  atomic<std::uint64_t> monitorTickNsMax_{0};

  std::unique_ptr<obs::Watchdog> watchdog_;
  std::unique_ptr<obs::TimeSeries> timeseries_;
  std::unique_ptr<obs::StatusServer> statusServer_;

  // Latency-attribution engine. Single-owner by design (no internal locks);
  // the mutex serializes the monitor thread's incremental ingest against
  // collectMetrics()/runStats() readers. Mutable because runStats() is
  // const but wants a fresh ingest.
  mutable gravel::mutex latencyMutex_{"Cluster::latencyMutex_"};
  mutable obs::LatencyAttribution latency_ GRAVEL_GUARDED_BY(latencyMutex_);

  // Snapshot baselines so runStats() reports per-window deltas.
  net::LinkStats fabricBase_{};
  RunningStat batchBase_{};
  net::ReliabilityStats relBase_{};
  net::FaultStats faultBase_{};
  net::DeadLetterStats dlqBase_{};
  std::vector<std::uint64_t> resolvedBase_;
  std::vector<NodeOpStats> opBase_;
  std::vector<simt::DeviceStats> devBase_;
  struct AggBase {
    std::uint64_t slots = 0;
    std::uint64_t locks = 0;
    std::uint64_t dests = 0;
    std::uint64_t timeout_scanned = 0;
  };
  std::vector<AggBase> aggBase_;
};

}  // namespace gravel::rt
