// Gravel's aggregator (paper §3.4, §6): CPU threads that drain the GPU's
// producer/consumer queue and repack messages into per-destination ("per-
// node") queues, which are handed to the fabric once full or once idle past
// the flush timeout. This is the piece that turns many small GPU-initiated
// messages into few large network messages.
//
// The drain loop routes at *slot* granularity (DESIGN.md §9): each claimed
// slot is bulk-decoded into thread-local staging, and every destination's
// run is appended to its shared buffer with one lock acquisition per
// destination per slot — not one per message. Timeout checking is folded
// into the busy path on a slot-count cadence, so a lightly-trafficked
// destination's partial buffer is flushed within a bounded delay even when
// the queue never goes idle (the paper's 125 us rule, previously only
// honoured on the idle path).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/atomic.hpp"
#include "common/backoff.hpp"
#include "common/stats.hpp"
#include "net/fabric.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "queue/gravel_queue.hpp"
#include "runtime/config.hpp"
#include "runtime/message.hpp"
#include "runtime/slot_router.hpp"

namespace gravel::rt {

class Aggregator {
 public:
  Aggregator(std::uint32_t self, GravelQueue& queue, net::Fabric& fabric,
             const ClusterConfig& config, obs::Tracer& tracer,
             obs::Profiler* profiler = nullptr)
      : self_(self),
        queue_(queue),
        fabric_(fabric),
        tracer_(tracer),
        prof_(profiler),
        capacityMsgs_(config.pernode_queue_bytes / sizeof(NetMessage)),
        timeoutCheckSlots_(config.aggregator_timeout_check_slots),
        stagingReserve_(config.aggregator_staging_reserve),
        router_(
            fabric.nodes(), capacityMsgs_, config.flush_timeout,
            [this](std::uint32_t dst, std::vector<NetMessage>&& batch) {
              onFlush(dst, std::move(batch));
            },
            config.aggregator_shards) {}

  ~Aggregator() { stop(); }

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  void start(std::uint32_t threads) {
    GRAVEL_CHECK_MSG(threads > 0, "aggregator needs at least one thread");
    // Thread creation below establishes the happens-before to the workers.
    stopped_.store(false, std::memory_order_relaxed);
    for (std::uint32_t t = 0; t < threads; ++t)
      workers_.emplace_back([this, t] {
        const std::string name =
            "agg." + std::to_string(self_) + "." + std::to_string(t);
        tracer_.nameThread(name);
        if (prof_ != nullptr) prof_->nameThread(name);
        run();
      });
  }

  void stop() {
    // Release pairs with acquireRead's acquire load of `stopped` — the
    // stopped-drain exit path depends on this edge (see gravel_queue.hpp).
    stopped_.store(true, std::memory_order_release);  // pairs-with: aggregator.stopped
    for (auto& w : workers_)
      if (w.joinable()) w.join();
    workers_.clear();
  }

  /// Number of queue slots fully routed into per-node buffers — the quiet
  /// protocol compares this with the queue's reservation count, so this is
  /// the PROTOCOL accessor: its acquire pairs with the workers' release
  /// adds, making every routed message's buffer append visible to a caller
  /// that observes the count. Stats/ratio readers should use
  /// slotsProcessedStat() instead.
  std::uint64_t slotsProcessed() const noexcept {
    // pairs-with: aggregator.slots-processed
    return slotsProcessed_.get(std::memory_order_acquire);
  }

  /// STATS accessor: relaxed read of the same counter. A monotonic
  /// approximation — it can lag concurrent workers and carries no ordering,
  /// which is fine for gauges, metrics and ratios (pollFraction) and keeps
  /// the concurrency lint's protocol/stats distinction auditable.
  std::uint64_t slotsProcessedStat() const noexcept {
    return slotsProcessed_.get(std::memory_order_relaxed);
  }

  /// Force every partially-filled per-node queue onto the wire (quiet
  /// protocol / end of kernel). Thread-safe against the workers.
  void flushAll() { router_.flushAll(); }

  /// Messages repacked so far, by destination kind.
  std::uint64_t messagesRouted() const noexcept {
    return messagesRouted_.get(std::memory_order_relaxed);
  }

  /// Idle poll iterations (spins of acquireRead with nothing to consume).
  /// §8.1 observes the paper's aggregator polls 65% of the time even at 8
  /// nodes — the motivation for a hardware aggregator. The poll *fraction*
  /// here is pollCount / (pollCount + slotsProcessed).
  std::uint64_t pollCount() const noexcept {
    return polls_.get(std::memory_order_relaxed);
  }

  /// Poll fraction as a monotonic approximation: both counters are read
  /// relaxed (see slotsProcessedStat) and either can be mid-update, so the
  /// ratio is only statistically meaningful — exactly what the §8.1
  /// comparison needs, and all it promises.
  double pollFraction() const noexcept {
    const double p = double(pollCount());
    const double s = double(slotsProcessedStat());
    return (p + s) > 0 ? p / (p + s) : 0.0;
  }

  /// Routing-path lock acquisitions (one per distinct destination per
  /// slot). The bench harness checks locks/slot <= distinct dests/slot.
  std::uint64_t lockAcquisitions() { return router_.routeLockAcquisitions(); }

  /// Distinct destinations summed over routed slots.
  std::uint64_t destsTouched() const noexcept {
    return destsTouched_.get(std::memory_order_relaxed);
  }

  /// Messages currently parked in per-destination buffers (occupancy gauge;
  /// sampler-cadence only — takes each buffer's lock briefly).
  std::uint64_t bufferedMessages() { return router_.bufferedMessages(); }

  /// Nonempty per-destination buffers with fill and age — the monitor
  /// thread's shared pipeline sample feeds depth histograms and the stall
  /// watchdog's backpressure detector from one pass (sampler cadence only).
  void sampleBufferAges(
      const std::function<void(std::uint32_t dst, std::uint64_t fill,
                               std::uint64_t age_ns)>& fn) {
    router_.sampleBufferAges(fn);
  }

  std::size_t capacityMsgs() const noexcept { return capacityMsgs_; }

  /// Shards backing the per-destination buffers (fixed, <= nodes).
  std::uint32_t shardCount() const noexcept { return router_.shardCount(); }

  /// Timer-wheel entries examined so far — proportional to buffer-open
  /// events, NOT to nodes x cadence ticks (the old full-array scan).
  std::uint64_t timeoutScanned() { return router_.timeoutScanned(); }

  /// Per-destination buffers demand-paged in so far (cold dests cost 0).
  std::uint64_t lazyBuffers() { return router_.lazyBuffers(); }

  /// Bytes resident in per-destination buffers right now.
  std::size_t residentBufferBytes() { return router_.residentBufferBytes(); }

  /// High-water mark of one routing thread's staging scratch, sampled on
  /// the timeout cadence. The scale tests assert this does not grow with
  /// the node count (it is O(lanes) by construction).
  std::size_t stagingBytesPeak() const noexcept {
    return stagingPeak_.load(std::memory_order_relaxed);
  }

  // --- cooperative (pooled) driving -------------------------------------
  //
  // With ClusterConfig::runtime_threads > 0 the cluster drives aggregators
  // from a small shared pool instead of dedicated per-node threads (a
  // 4096-node cluster cannot spawn 8192 OS threads). Each pooled node has
  // exactly ONE driver at a time, so pump() keeps its cadence counter as a
  // plain member — same single-consumer contract as run().

  /// Make the per-driver staging scratch for this aggregator's queue.
  SlotRouter::Staging makeStaging() const {
    return SlotRouter::Staging(fabric_.nodes(), queue_.lanes(),
                               stagingReserve_);
  }

  /// Drain up to `maxSlots` ready slots without blocking; returns slots
  /// routed. Zero means the queue had no published work.
  std::uint32_t pump(SlotRouter::Staging& staging, std::uint32_t maxSlots) {
    GravelQueue::SlotRef ref;
    std::uint32_t done = 0;
    while (done < maxSlots && queue_.tryAcquireRead(ref)) {
      processSlot(ref, staging);
      ++done;
      if (++pumpSinceTimeoutCheck_ >= timeoutCheckSlots_) {
        pumpSinceTimeoutCheck_ = 0;
        scannedCheckTimeouts();
      }
    }
    // Record the scratch high-water mark whenever this pump did work — a
    // short pooled run may never reach the timeout cadence, and the peak is
    // the scale sweep's staying-O(lanes) evidence (one relaxed CAS-max).
    if (done > 0) noteStaging(staging);
    return done;
  }

  /// Timeout maintenance entry point for pooled drivers (time-based cadence
  /// lives in the pool loop; dedicated threads keep their own cadence).
  void checkTimeouts() { scannedCheckTimeouts(); }

 private:
  /// Timer-wheel scan under its profiler region (every cadence path —
  /// idle, busy, pooled — funnels through here).
  void scannedCheckTimeouts() {
    obs::ScopedRegion scanRegion(prof_, obs::Region::kAggTimerScan);
    router_.checkTimeouts();
  }

  void run() {
    GravelQueue::SlotRef ref;
    SlotRouter::Staging staging = makeStaging();
    // Idle polls decay to short sleeps (paper's aggregator polls 65% of the
    // time, §8.1 — no need to burn a core doing it) but stay well under the
    // flush timeout so checkTimeouts() keeps its resolution.
    Backoff backoff(std::chrono::microseconds(20));
    const YieldFn idle = [this, &backoff, &staging] {
      // While waiting for GPU work, retire buffers that sat past the
      // timeout (the paper's 125 us rule, applied when the queue is idle so
      // a 1-core host's scheduling gaps do not shred aggregation).
      polls_.add(1, std::memory_order_relaxed);
      scannedCheckTimeouts();
      noteStaging(staging);
      obs::ScopedRegion idleRegion(prof_, obs::Region::kIdle);
      backoff.wait();
    };
    std::uint32_t slotsSinceTimeoutCheck = 0;
    while (queue_.acquireRead(ref, stopped_, idle)) {
      backoff.reset();
      processSlot(ref, staging);
      // Busy-path timeout cadence: under sustained load the idle YieldFn
      // above never runs, so without this a single buffered message to a
      // quiet destination would sit until the queue drains (timeout
      // starvation). Every timeoutCheckSlots_ slots bounds that latency.
      if (++slotsSinceTimeoutCheck >= timeoutCheckSlots_) {
        slotsSinceTimeoutCheck = 0;
        scannedCheckTimeouts();
        noteStaging(staging);
      }
    }
    // Producers are done and the queue is drained: final flush.
    flushAll();
  }

  /// Decode, trace, route and count one claimed slot (shared by the
  /// dedicated-thread run() loop and the pooled pump()).
  void processSlot(const GravelQueue::SlotRef& ref,
                   SlotRouter::Staging& staging) {
    obs::ScopedRegion slotRegion(prof_, obs::Region::kAggSlot);
    const std::span<const NetMessage> msgs =
        router_.decode(queue_, ref, staging);
    // The staging owns a copy: hand the slot back to producers before
    // taking any buffer locks.
    queue_.release(ref);
    // active(), not enabled(): the flight recorder wants every message's
    // aggregate event (id 0 = unsampled; recordStage keeps those out of
    // the sampled buffers).
    if (tracer_.active()) {
      for (const NetMessage& m : msgs)
        tracer_.recordStage(obs::Stage::kAggregate, m.traceId(),
                            std::uint16_t(self_), std::uint16_t(m.dest),
                            m.addr, std::uint8_t(m.command()));
    }
    std::uint32_t dests;
    {
      obs::ScopedRegion routeRegion(prof_, obs::Region::kAggRoute);
      dests = router_.routeStaged(staging);
    }
    messagesRouted_.add(ref.count, std::memory_order_relaxed);
    destsTouched_.add(dests, std::memory_order_relaxed);
    // Release-ordered AFTER the buffer appends: quiet() observing this
    // count may flushAll() immediately, so the slot's messages must
    // already be in the shared buffers.
    slotsProcessed_.add(1, std::memory_order_release);  // pairs-with: aggregator.slots-processed
  }

  /// Monotonic max of this driver's staging scratch bytes. Relaxed CAS max:
  /// a stats gauge, no ordering published through it.
  void noteStaging(const SlotRouter::Staging& staging) {
    const std::size_t bytes = staging.residentBytes();
    std::size_t cur = stagingPeak_.load(std::memory_order_relaxed);
    while (bytes > cur && !stagingPeak_.compare_exchange_weak(
                              cur, bytes, std::memory_order_relaxed,
                              std::memory_order_relaxed)) {
    }
  }

  /// SlotRouter flush sink: trace the handoff, then give the batch to the
  /// fabric. Runs with the destination's buffer lock held (per-destination
  /// batch order == append order).
  void onFlush(std::uint32_t dst, std::vector<NetMessage>&& batch) {
    obs::ScopedRegion flushRegion(prof_, obs::Region::kAggFlush);
    if (tracer_.active()) {
      for (const NetMessage& m : batch)
        tracer_.recordStage(obs::Stage::kFlush, m.traceId(),
                            std::uint16_t(self_), std::uint16_t(dst), m.addr,
                            std::uint8_t(m.command()));
    }
    fabric_.send(self_, dst, std::move(batch));
  }

  std::uint32_t self_;
  GravelQueue& queue_;
  net::Fabric& fabric_;
  obs::Tracer& tracer_;
  obs::Profiler* prof_;
  std::size_t capacityMsgs_;
  std::uint32_t timeoutCheckSlots_;
  std::uint32_t stagingReserve_;

  SlotRouter router_;

  atomic<bool> stopped_{true};
  // Sharded per worker thread: with aggregator_threads > 1 these are the
  // hottest shared words on the stats path (one bump per slot / message /
  // poll), and unsharded they false-share a single line.
  ShardedCounter slotsProcessed_;
  ShardedCounter messagesRouted_;
  ShardedCounter polls_;
  ShardedCounter destsTouched_;
  /// Stats-only gauge (relaxed max); see noteStaging().
  atomic<std::size_t> stagingPeak_{0};
  /// Plain: pump() has exactly one driver at a time (pool ownership).
  std::uint32_t pumpSinceTimeoutCheck_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace gravel::rt
