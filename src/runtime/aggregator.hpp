// Gravel's aggregator (paper §3.4, §6): CPU threads that drain the GPU's
// producer/consumer queue and repack messages into per-destination ("per-
// node") queues, which are handed to the fabric once full or once idle past
// the flush timeout. This is the piece that turns many small GPU-initiated
// messages into few large network messages.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/atomic.hpp"
#include "common/backoff.hpp"
#include "common/stats.hpp"
#include "net/fabric.hpp"
#include "obs/trace.hpp"
#include "queue/gravel_queue.hpp"
#include "runtime/config.hpp"
#include "runtime/message.hpp"

namespace gravel::rt {

class Aggregator {
 public:
  Aggregator(std::uint32_t self, GravelQueue& queue, net::Fabric& fabric,
             const ClusterConfig& config, obs::Tracer& tracer)
      : self_(self),
        queue_(queue),
        fabric_(fabric),
        tracer_(tracer),
        capacityMsgs_(config.pernode_queue_bytes / sizeof(NetMessage)),
        timeout_(config.flush_timeout),
        buffers_(fabric.nodes()) {
    for (auto& b : buffers_) b.messages.reserve(capacityMsgs_);
  }

  ~Aggregator() { stop(); }

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  void start(std::uint32_t threads) {
    // Thread creation below establishes the happens-before to the workers.
    stopped_.store(false, std::memory_order_relaxed);
    for (std::uint32_t t = 0; t < threads; ++t)
      workers_.emplace_back([this, t] {
        tracer_.nameThread("agg." + std::to_string(self_) + "." +
                           std::to_string(t));
        run();
      });
  }

  void stop() {
    // Release pairs with acquireRead's acquire load of `stopped` — the
    // stopped-drain exit path depends on this edge (see gravel_queue.hpp).
    stopped_.store(true, std::memory_order_release);
    for (auto& w : workers_)
      if (w.joinable()) w.join();
    workers_.clear();
  }

  /// Number of queue slots fully routed into per-node buffers. The quiet
  /// protocol compares this with the queue's reservation count.
  std::uint64_t slotsProcessed() const noexcept {
    return slotsProcessed_.get(std::memory_order_acquire);
  }

  /// Force every partially-filled per-node queue onto the wire (quiet
  /// protocol / end of kernel). Thread-safe against the workers.
  void flushAll() {
    for (std::uint32_t dst = 0; dst < buffers_.size(); ++dst) {
      Buffer& b = buffers_[dst];
      std::scoped_lock lk(b.mutex);
      flushLocked(b, dst);
    }
  }

  /// Messages repacked so far, by destination kind.
  std::uint64_t messagesRouted() const noexcept {
    return messagesRouted_.get(std::memory_order_relaxed);
  }

  /// Idle poll iterations (spins of acquireRead with nothing to consume).
  /// §8.1 observes the paper's aggregator polls 65% of the time even at 8
  /// nodes — the motivation for a hardware aggregator. The poll *fraction*
  /// here is pollCount / (pollCount + slotsProcessed).
  std::uint64_t pollCount() const noexcept {
    return polls_.get(std::memory_order_relaxed);
  }
  double pollFraction() const noexcept {
    const double p = double(pollCount());
    const double s = double(slotsProcessed());
    return (p + s) > 0 ? p / (p + s) : 0.0;
  }

  /// Messages currently parked in per-destination buffers (occupancy gauge;
  /// sampler-cadence only — takes each buffer's lock briefly).
  std::uint64_t bufferedMessages() {
    std::uint64_t total = 0;
    for (Buffer& b : buffers_) {
      std::scoped_lock lk(b.mutex);
      total += b.messages.size();
    }
    return total;
  }

  /// Per-destination buffer fills, for depth histograms.
  void sampleBufferFills(const std::function<void(std::uint32_t dst,
                                                  std::uint64_t fill)>& fn) {
    for (std::uint32_t dst = 0; dst < buffers_.size(); ++dst) {
      std::uint64_t fill;
      {
        std::scoped_lock lk(buffers_[dst].mutex);
        fill = buffers_[dst].messages.size();
      }
      fn(dst, fill);
    }
  }

  std::size_t capacityMsgs() const noexcept { return capacityMsgs_; }

 private:
  /// One per-destination queue with its own lock, so aggregator_threads > 1
  /// (Fig. 12 sweeps) only contend when routing to the same destination.
  struct Buffer {
    std::mutex mutex;
    std::vector<NetMessage> messages;
    std::chrono::steady_clock::time_point openedAt{};
  };

  void run() {
    GravelQueue::SlotRef ref;
    // Idle polls decay to short sleeps (paper's aggregator polls 65% of the
    // time, §8.1 — no need to burn a core doing it) but stay well under the
    // flush timeout so checkTimeouts() keeps its resolution.
    Backoff backoff(std::chrono::microseconds(20));
    const YieldFn idle = [this, &backoff] {
      // While waiting for GPU work, retire buffers that sat past the
      // timeout (the paper's 125 us rule, applied when the queue is idle so
      // a 1-core host's scheduling gaps do not shred aggregation).
      polls_.add(1, std::memory_order_relaxed);
      checkTimeouts();
      backoff.wait();
    };
    while (queue_.acquireRead(ref, stopped_, idle)) {
      backoff.reset();
      for (std::uint32_t lane = 0; lane < ref.count; ++lane) {
        NetMessage m;
        m.cmd = queue_.wordAt(ref, 0, lane);
        m.dest = queue_.wordAt(ref, 1, lane);
        m.addr = queue_.wordAt(ref, 2, lane);
        m.value = queue_.wordAt(ref, 3, lane);
        route(m);
      }
      queue_.release(ref);
      messagesRouted_.add(ref.count, std::memory_order_relaxed);
      slotsProcessed_.add(1, std::memory_order_release);
    }
    // Producers are done and the queue is drained: final flush.
    flushAll();
  }

  void route(const NetMessage& m) {
    if (tracer_.enabled()) {
      if (const std::uint32_t id = m.traceId())
        tracer_.recordStage(obs::Stage::kAggregate, id, std::uint8_t(self_),
                            std::uint16_t(m.dest), m.addr);
    }
    Buffer& b = buffers_[m.dest];
    std::scoped_lock lk(b.mutex);
    if (b.messages.empty())
      b.openedAt = std::chrono::steady_clock::now();
    b.messages.push_back(m);
    if (b.messages.size() >= capacityMsgs_)
      flushLocked(b, static_cast<std::uint32_t>(m.dest));
  }

  // Caller holds b.mutex.
  void flushLocked(Buffer& b, std::uint32_t dst) {
    if (b.messages.empty()) return;
    if (tracer_.enabled()) {
      for (const NetMessage& m : b.messages)
        if (const std::uint32_t id = m.traceId())
          tracer_.recordStage(obs::Stage::kFlush, id, std::uint8_t(self_),
                              std::uint16_t(dst), m.addr);
    }
    std::vector<NetMessage> batch;
    batch.reserve(capacityMsgs_);
    batch.swap(b.messages);
    fabric_.send(self_, dst, std::move(batch));
  }

  void checkTimeouts() {
    const auto now = std::chrono::steady_clock::now();
    for (std::uint32_t dst = 0; dst < buffers_.size(); ++dst) {
      Buffer& b = buffers_[dst];
      std::scoped_lock lk(b.mutex);
      if (!b.messages.empty() && now - b.openedAt >= timeout_)
        flushLocked(b, dst);
    }
  }

  std::uint32_t self_;
  GravelQueue& queue_;
  net::Fabric& fabric_;
  obs::Tracer& tracer_;
  std::size_t capacityMsgs_;
  std::chrono::steady_clock::duration timeout_;

  std::vector<Buffer> buffers_;

  atomic<bool> stopped_{true};
  // Sharded per worker thread: with aggregator_threads > 1 these are the
  // hottest shared words on the stats path (one bump per slot / message /
  // poll), and unsharded they false-share a single line.
  ShardedCounter slotsProcessed_;
  ShardedCounter messagesRouted_;
  ShardedCounter polls_;
  std::vector<std::thread> workers_;
};

}  // namespace gravel::rt
