#include "runtime/node_runtime.hpp"

#include "simt/collective.hpp"

namespace gravel::rt {

void NodeRuntime::enqueueGroup(simt::WorkItem& wi, const NetMessage& m,
                               bool active, simt::FBar* fb) {
  using simt::CollectiveOp;
  auto& wg = wi.group();
  const std::uint32_t lane = wi.localId();

  // Leader = the active lane with the largest local id; its exclusive
  // prefix-sum value is therefore total-1, so it knows the group's message
  // count without an extra reduction (Figure 5b).
  const std::uint64_t leader = wg.collective(
      lane, CollectiveOp::kReduceMax, lane, active, fb);
  const std::uint64_t myOff = wg.collective(
      lane, CollectiveOp::kPrefixSumExclusive, active ? 1 : 0, active, fb);
  const bool isLeader = active && lane == leader;

  // Observability: sample this lane's message and stamp the trace ID into
  // the command word before the payload is written — from here the ID rides
  // the wire format through every downstream stage for free.
  NetMessage traced = m;
  if (active && tracer_.active()) {
    // maybeSample() returns 0 when sampling skips (or is off) — the flight
    // recorder still gets the enqueue event, just with id 0.
    const std::uint32_t traceId = tracer_.maybeSample();
    if (traceId != 0) traced.setTraceId(traceId);
    tracer_.recordStage(obs::Stage::kEnqueue, traceId, std::uint16_t(id_),
                        std::uint16_t(m.dest), m.addr,
                        std::uint8_t(m.command()));
  }

  GravelQueue::SlotRef ref{};
  std::uint64_t packed = 0;
  std::uint32_t count = 0;
  if (isLeader) {
    count = static_cast<std::uint32_t>(myOff + 1);
    // The fetch-add on WriteIdx lives inside acquireWrite; yielding the lane
    // while the ring is full lets sibling groups and the aggregator run.
    ref = queue_.acquireWrite(count, &simt::Device::yieldLane);
    packed = packRef(ref);
  }
  // Broadcast the slot handle (reduce-to-sum with non-leaders submitting 0,
  // exactly how Figure 5b broadcasts Qoff). When no lane is active there is
  // no leader, nothing was reserved, and the group falls through.
  packed = wg.collective(lane, CollectiveOp::kReduceSum, packed, true, fb);

  if (active) {
    const auto slot = unpackRef(packed, /*count=*/0);
    queue_.wordAt(slot, 0, static_cast<std::uint32_t>(myOff)) = traced.cmd;
    queue_.wordAt(slot, 1, static_cast<std::uint32_t>(myOff)) = traced.dest;
    queue_.wordAt(slot, 2, static_cast<std::uint32_t>(myOff)) = traced.addr;
    queue_.wordAt(slot, 3, static_cast<std::uint32_t>(myOff)) = traced.value;
  }
  // Every lane's column must be in place before the leader publishes.
  wg.collective(lane, CollectiveOp::kBarrier, 0, true, fb);
  if (isLeader) {
    ref.count = count;
    queue_.publish(ref);
  }
}

}  // namespace gravel::rt
