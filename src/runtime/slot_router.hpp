// Slot-granularity message routing (the aggregator's hot path, paper §3.4).
//
// The paper's aggregator is Gravel's throughput bottleneck (§6, §8.1), and
// the original drain loop here made it worse than it had to be: every
// message took its destination buffer's mutex individually, so a hot slot
// paid up to `lanes` (256) lock acquisitions. The SlotRouter restructures
// the loop at slot granularity:
//
//   1. the whole slot is bulk-decoded (GravelQueue::copySlot — one
//      row-major sweep instead of rows x lanes strided reads) into a
//      per-routing-thread Staging area,
//   2. the staged messages are grouped into per-destination runs — plain
//      unlocked writes, the Staging is thread-local by construction,
//   3. each destination's run is appended to its shared buffer with ONE
//      lock acquisition per destination per slot.
//
// Lock acquisitions per slot therefore equal the number of *distinct*
// destinations in the slot (<= min(lanes, nodes)) instead of the number of
// messages; the bench harness records both and the regression check in
// bench/run_benches.py enforces the inequality.
//
// The router is deliberately free of threads, clocks-at-cadence, fabric and
// tracer dependencies so the model checker can drive it directly: all
// shared state is the per-destination Buffer array guarded by gravel::mutex
// (the verify shim arbitrates ownership under GRAVEL_VERIFY=1 — see
// tests/verify_scenarios.hpp slotRoutedAggregation for the bounded
// two-thread scenario over this exact lock discipline).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/atomic.hpp"
#include "common/error.hpp"
#include "queue/gravel_queue.hpp"
#include "runtime/message.hpp"

namespace gravel::rt {

class SlotRouter {
 public:
  /// Sink for a completed batch (buffer full, timed out, or force-flushed).
  /// Invoked with the destination's buffer lock held, which is what keeps
  /// per-destination batch order identical to append order end-to-end.
  using FlushFn =
      std::function<void(std::uint32_t dst, std::vector<NetMessage>&& batch)>;

  SlotRouter(std::uint32_t nodes, std::size_t capacityMsgs, FlushFn flush)
      : capacityMsgs_(capacityMsgs),
        flush_(std::move(flush)),
        buffers_(nodes) {
    GRAVEL_CHECK_MSG(nodes > 0, "router needs at least one destination");
    GRAVEL_CHECK_MSG(capacityMsgs_ > 0,
                     "per-destination buffer capacity must hold >= 1 message "
                     "(pernode_queue_bytes < sizeof(NetMessage)?)");
    for (auto& b : buffers_) b.messages.reserve(capacityMsgs_);
  }

  SlotRouter(const SlotRouter&) = delete;
  SlotRouter& operator=(const SlotRouter&) = delete;

  /// Per-routing-thread scratch: the decoded slot plus per-destination run
  /// builders. Each routing thread owns exactly one — nothing in here is
  /// shared, so steps 1 and 2 above take no locks at all.
  class Staging {
   public:
    Staging(std::uint32_t nodes, std::uint32_t lanes,
            std::uint32_t reserveMsgs = 64) {
      decoded_.reserve(lanes);
      runs_.resize(nodes);
      const std::uint32_t reserve = std::min(lanes, reserveMsgs);
      for (auto& r : runs_) r.reserve(reserve);
      touched_.reserve(nodes);
    }

   private:
    friend class SlotRouter;
    std::vector<NetMessage> decoded_;             ///< one slot, bulk-decoded
    std::vector<std::vector<NetMessage>> runs_;   ///< per-destination runs
    std::vector<std::uint32_t> touched_;          ///< dests used this slot
  };

  /// Step 1: bulk-decode `ref` into `st`. Returns a view of the decoded
  /// messages (valid until the next decode on the same Staging) so the
  /// caller can trace/inspect them lock-free before routing. The queue slot
  /// may be release()d as soon as this returns — the staging owns a copy.
  std::span<const NetMessage> decode(const GravelQueue& queue,
                                     const GravelQueue::SlotRef& ref,
                                     Staging& st) const {
    st.decoded_.resize(ref.count);
    queue.copySlot(ref, st.decoded_.data());
    return {st.decoded_.data(), st.decoded_.size()};
  }

  /// Steps 2+3: group the staged slot by destination and append each run to
  /// its shared buffer under one lock acquisition. Returns the number of
  /// distinct destinations (== lock acquisitions) this slot touched.
  std::uint32_t routeStaged(Staging& st) {
    for (const NetMessage& m : st.decoded_) {
      GRAVEL_CHECK_MSG(m.dest < buffers_.size(),
                       "message destination out of range (corrupt slot?)");
      auto& run = st.runs_[m.dest];
      if (run.empty()) st.touched_.push_back(std::uint32_t(m.dest));
      run.push_back(m);
    }
    for (const std::uint32_t dst : st.touched_) {
      appendRun(dst, st.runs_[dst]);
      st.runs_[dst].clear();
    }
    const auto distinct = std::uint32_t(st.touched_.size());
    st.touched_.clear();
    return distinct;
  }

  /// decode + routeStaged for callers that do not trace in between.
  std::uint32_t routeSlot(const GravelQueue& queue,
                          const GravelQueue::SlotRef& ref, Staging& st) {
    decode(queue, ref, st);
    return routeStaged(st);
  }

  /// Retire every buffer that has sat open past `timeout`. Safe from any
  /// thread; the busy-path caller invokes it on a slot-count cadence so
  /// flush latency stays bounded under sustained load (the paper's 125 us
  /// rule), and the idle path invokes it from the poll loop.
  void checkTimeouts(std::chrono::steady_clock::duration timeout) {
    const auto now = std::chrono::steady_clock::now();
    for (std::uint32_t dst = 0; dst < buffers_.size(); ++dst) {
      Buffer& b = buffers_[dst];
      gravel::lock_guard lk(b.mutex);
      if (!b.messages.empty() && now - b.openedAt >= timeout)
        flushLocked(b, dst);
    }
  }

  /// Force every partially-filled buffer out (quiet protocol / shutdown).
  void flushAll() {
    for (std::uint32_t dst = 0; dst < buffers_.size(); ++dst) {
      Buffer& b = buffers_[dst];
      gravel::lock_guard lk(b.mutex);
      flushLocked(b, dst);
    }
  }

  std::size_t capacityMsgs() const noexcept { return capacityMsgs_; }
  std::uint32_t destinations() const noexcept {
    return std::uint32_t(buffers_.size());
  }

  /// Messages currently parked in per-destination buffers (occupancy gauge;
  /// sampler-cadence only — takes each buffer's lock briefly).
  std::uint64_t bufferedMessages() {
    std::uint64_t total = 0;
    for (Buffer& b : buffers_) {
      gravel::lock_guard lk(b.mutex);
      total += b.messages.size();
    }
    return total;
  }

  /// Nonempty buffers with how long they have held messages — the stall
  /// watchdog's backpressure signal. A healthy aggregator never lets a
  /// buffer sit past the flush timeout, so a large age means the flush path
  /// is wedged. Sampler cadence only (takes each buffer's lock briefly).
  void sampleBufferAges(
      const std::function<void(std::uint32_t dst, std::uint64_t fill,
                               std::uint64_t age_ns)>& fn) {
    const auto now = std::chrono::steady_clock::now();
    for (std::uint32_t dst = 0; dst < buffers_.size(); ++dst) {
      std::uint64_t fill;
      std::uint64_t age_ns;
      {
        gravel::lock_guard lk(buffers_[dst].mutex);
        fill = buffers_[dst].messages.size();
        age_ns = fill == 0
                     ? 0
                     : std::uint64_t(std::max<std::chrono::nanoseconds::rep>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               now - buffers_[dst].openedAt)
                               .count(),
                           0));
      }
      if (fill != 0) fn(dst, fill, age_ns);
    }
  }

  /// Routing-path lock acquisitions (one per appendRun). Excludes
  /// maintenance locking (timeouts, flushAll, gauges) by design: the
  /// regression check compares this against destinations-per-slot.
  /// Sampler/stats cadence only — sums plain per-buffer counters under
  /// their locks.
  std::uint64_t routeLockAcquisitions() {
    std::uint64_t total = 0;
    for (Buffer& b : buffers_) {
      gravel::lock_guard lk(b.mutex);
      total += b.routeLocks;
    }
    return total;
  }

 private:
  /// One per-destination queue with its own lock, so multiple routing
  /// threads only contend when a slot routes to the same destination.
  struct Buffer {
    gravel::mutex mutex;
    std::vector<NetMessage> messages GRAVEL_GUARDED_BY(mutex);
    std::chrono::steady_clock::time_point openedAt GRAVEL_GUARDED_BY(mutex){};
    /// Plain (not atomic) on purpose: only ever touched under mutex.
    std::uint64_t routeLocks GRAVEL_GUARDED_BY(mutex) = 0;
  };

  /// Append one slot's run for `dst` under a single lock acquisition,
  /// flushing whenever the buffer reaches capacity mid-run.
  void appendRun(std::uint32_t dst, std::vector<NetMessage>& run) {
    Buffer& b = buffers_[dst];
    gravel::lock_guard lk(b.mutex);
    ++b.routeLocks;
    std::size_t consumed = 0;
    while (consumed < run.size()) {
      if (b.messages.empty())
        b.openedAt = std::chrono::steady_clock::now();
      const std::size_t room = capacityMsgs_ - b.messages.size();
      const std::size_t take = std::min(room, run.size() - consumed);
      b.messages.insert(b.messages.end(), run.begin() + long(consumed),
                        run.begin() + long(consumed + take));
      consumed += take;
      if (b.messages.size() >= capacityMsgs_) flushLocked(b, dst);
    }
  }

  // Caller holds b.mutex (compiler-enforced).
  void flushLocked(Buffer& b, std::uint32_t dst) GRAVEL_REQUIRES(b.mutex) {
    if (b.messages.empty()) return;
    std::vector<NetMessage> batch;
    batch.reserve(capacityMsgs_);
    batch.swap(b.messages);
    flush_(dst, std::move(batch));
  }

  std::size_t capacityMsgs_;
  FlushFn flush_;
  std::vector<Buffer> buffers_;
};

}  // namespace gravel::rt
