// Slot-granularity message routing (the aggregator's hot path, paper §3.4).
//
// The paper's aggregator is Gravel's throughput bottleneck (§6, §8.1), and
// the original drain loop here made it worse than it had to be: every
// message took its destination buffer's mutex individually, so a hot slot
// paid up to `lanes` (256) lock acquisitions. The SlotRouter restructures
// the loop at slot granularity:
//
//   1. the whole slot is bulk-decoded (GravelQueue::copySlot — one
//      row-major sweep instead of rows x lanes strided reads) into a
//      per-routing-thread Staging area,
//   2. the staged messages are grouped into per-destination runs — plain
//      unlocked writes, the Staging is thread-local by construction,
//   3. the runs are sorted by shard and appended to the shared
//      per-destination buffers with ONE lock acquisition per *shard*
//      touched (<= one per distinct destination) per slot.
//
// Lock acquisitions per slot therefore never exceed the number of distinct
// destinations in the slot (<= min(lanes, nodes)); the bench harness
// records both and the regression check in bench/run_benches.py enforces
// the inequality. With shards >= nodes (every cluster up to the default 64
// shards) the mapping is 1:1 and locks == distinct destinations exactly.
//
// Scalability (DESIGN.md §14): the original router was O(N) per aggregator
// thread in both memory (N eagerly-reserved buffers, N staging runs) and
// time (checkTimeouts took all N locks per cadence tick) — fine at the
// paper's 8 nodes, fatal at the 65536 ClusterConfig admits. This version is
// a two-level tree:
//
//   per-thread Staging (O(lanes) scratch, open-addressed dest->run table)
//     -> per-shard combiner (fixed shard count, default 64)
//       -> lazy per-destination buffers (demand-paged on first touch;
//          cold destinations cost zero bytes and zero locks)
//
// plus a per-shard hashed timer wheel for the 125 us flush rule, so
// checkTimeouts() is O(armed-and-due) instead of O(N). A relaxed per-shard
// non-empty hint lets maintenance passes skip shards with no open buffers
// entirely (one-cadence staleness; never load-bearing for correctness —
// flushAll() and the stats accessors always take every shard lock).
//
// The router is deliberately free of threads, clocks-at-cadence, fabric and
// tracer dependencies so the model checker can drive it directly: all
// shared state lives in the per-shard Shards guarded by gravel::mutex
// (the verify shim arbitrates ownership under GRAVEL_VERIFY=1 — see
// tests/verify_scenarios.hpp slotRoutedAggregation for the bounded
// two-thread scenario over this exact lock discipline).
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/atomic.hpp"
#include "common/error.hpp"
#include "queue/gravel_queue.hpp"
#include "runtime/message.hpp"

namespace gravel::rt {

class SlotRouter {
 public:
  /// Sink for a completed batch (buffer full, timed out, or force-flushed).
  /// Invoked with the destination's shard lock held, which is what keeps
  /// per-destination batch order identical to append order end-to-end.
  using FlushFn =
      std::function<void(std::uint32_t dst, std::vector<NetMessage>&& batch)>;

  /// Shards default to min(nodes, 64): enough that clusters at the paper's
  /// scale keep the historical one-lock-per-destination behaviour (shards
  /// == nodes -> dst % shards is injective), while 65536-node clusters pay
  /// a fixed 64-mutex footprint instead of 65536.
  static constexpr std::uint32_t kDefaultShards = 64;

  SlotRouter(std::uint32_t nodes, std::size_t capacityMsgs,
             std::chrono::steady_clock::duration flushTimeout, FlushFn flush,
             std::uint32_t shards = 0)
      : nodes_(nodes),
        capacityMsgs_(capacityMsgs),
        timeout_(flushTimeout),
        flush_(std::move(flush)),
        shardCount_(std::min(nodes, shards == 0 ? kDefaultShards : shards)) {
    GRAVEL_CHECK_MSG(nodes > 0, "router needs at least one destination");
    GRAVEL_CHECK_MSG(capacityMsgs_ > 0,
                     "per-destination buffer capacity must hold >= 1 message "
                     "(pernode_queue_bytes < sizeof(NetMessage)?)");
    // Timer-wheel resolution: timeout/8 (floor 1 ns) gives a 32-slot wheel
    // a horizon of 4x the timeout and bounds detection overshoot from tick
    // rounding at 12.5% of the timeout — well inside the "within a couple
    // of cadence ticks" contract checkTimeouts always had (DESIGN.md §14).
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(timeout_).count();
    resolutionNs_ = std::max<std::int64_t>(1, ns / 8);
    const std::uint64_t nowTick = tickOf(std::chrono::steady_clock::now());
    shards_.reserve(shardCount_);
    for (std::uint32_t s = 0; s < shardCount_; ++s)
      shards_.push_back(std::make_unique<Shard>(nowTick));
  }

  SlotRouter(const SlotRouter&) = delete;
  SlotRouter& operator=(const SlotRouter&) = delete;

  /// Per-routing-thread scratch: the decoded slot plus per-destination run
  /// builders. Each routing thread owns exactly one — nothing in here is
  /// shared, so steps 1 and 2 above take no locks at all.
  ///
  /// Scratch is O(lanes), NOT O(nodes): a slot holds at most `lanes`
  /// messages, hence at most `lanes` distinct destinations, so runs are
  /// allocated per distinct-destination-this-slot and recycled, with an
  /// open-addressed generation-stamped table mapping dest -> run index.
  /// (The previous design kept one run vector per *node* — ~128 MiB of
  /// scratch per routing thread at 65536 nodes; test_scale pins the new
  /// invariant: residentBytes() must not scale with the node count.)
  class Staging {
   public:
    Staging(std::uint32_t nodes, std::uint32_t lanes,
            std::uint32_t reserveMsgs = 64)
        : reserve_(std::min(std::max(lanes, 1u), reserveMsgs)) {
      (void)nodes;  // kept for signature stability; scratch is O(lanes)
      decoded_.reserve(lanes);
      std::uint32_t cap = 8;
      while (cap < 2 * lanes) cap <<= 1;
      table_.assign(cap, TableSlot{});
      mask_ = cap - 1;
    }

    /// Bytes of scratch this staging currently holds (capacity, not size).
    /// The scale regression test asserts this is independent of `nodes`.
    std::size_t residentBytes() const {
      std::size_t total = sizeof(*this);
      total += decoded_.capacity() * sizeof(NetMessage);
      for (const auto& r : runs_) total += r.capacity() * sizeof(NetMessage);
      total += runs_.capacity() * sizeof(std::vector<NetMessage>);
      total += runDest_.capacity() * sizeof(std::uint32_t);
      total += order_.capacity() * sizeof(std::uint32_t);
      total += table_.capacity() * sizeof(TableSlot);
      return total;
    }

   private:
    friend class SlotRouter;
    /// dest -> run-index map entry; `gen` stamps which slot it belongs to,
    /// so clearing the table between slots is a single counter bump.
    struct TableSlot {
      std::uint64_t gen = 0;
      std::uint32_t dest = 0;
      std::uint32_t run = 0;
    };
    std::vector<NetMessage> decoded_;            ///< one slot, bulk-decoded
    std::vector<std::vector<NetMessage>> runs_;  ///< recycled run builders
    std::vector<std::uint32_t> runDest_;         ///< dest of runs_[i]
    std::vector<std::uint32_t> order_;           ///< run indices, shard-sorted
    std::vector<TableSlot> table_;               ///< open-addressed dest map
    std::uint64_t gen_ = 0;
    std::uint32_t mask_ = 0;
    std::uint32_t live_ = 0;  ///< runs in use for the slot being routed
    std::uint32_t reserve_;
  };

  /// Step 1: bulk-decode `ref` into `st`. Returns a view of the decoded
  /// messages (valid until the next decode on the same Staging) so the
  /// caller can trace/inspect them lock-free before routing. The queue slot
  /// may be release()d as soon as this returns — the staging owns a copy.
  std::span<const NetMessage> decode(const GravelQueue& queue,
                                     const GravelQueue::SlotRef& ref,
                                     Staging& st) const {
    st.decoded_.resize(ref.count);
    queue.copySlot(ref, st.decoded_.data());
    return {st.decoded_.data(), st.decoded_.size()};
  }

  /// Steps 2+3: group the staged slot by destination, sort the runs by
  /// shard, and append each shard's runs under one lock acquisition.
  /// Returns the number of distinct destinations this slot touched (>= the
  /// lock acquisitions — equal when shards >= nodes).
  std::uint32_t routeStaged(Staging& st) {
    ++st.gen_;
    st.live_ = 0;
    for (const NetMessage& m : st.decoded_) {
      GRAVEL_CHECK_MSG(m.dest < nodes_,
                       "message destination out of range (corrupt slot?)");
      const auto dest = std::uint32_t(m.dest);
      std::uint32_t h = (dest * 2654435761u) & st.mask_;
      while (st.table_[h].gen == st.gen_ && st.table_[h].dest != dest)
        h = (h + 1) & st.mask_;
      if (st.table_[h].gen != st.gen_) {
        if (st.runs_.size() == st.live_) {
          st.runs_.emplace_back();
          st.runs_.back().reserve(reserve(st));
          st.runDest_.push_back(0);
        }
        st.runs_[st.live_].clear();
        st.runDest_[st.live_] = dest;
        st.table_[h] = Staging::TableSlot{st.gen_, dest, st.live_};
        ++st.live_;
      }
      st.runs_[st.table_[h].run].push_back(m);
    }
    const std::uint32_t distinct = st.live_;
    if (distinct == 0) return 0;
    st.order_.resize(distinct);
    for (std::uint32_t i = 0; i < distinct; ++i) st.order_[i] = i;
    if (shardCount_ > 1 && distinct > 1)
      std::stable_sort(st.order_.begin(), st.order_.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return shardOf(st.runDest_[a]) <
                                shardOf(st.runDest_[b]);
                       });
    std::uint32_t i = 0;
    while (i < distinct) {
      const std::uint32_t s = shardOf(st.runDest_[st.order_[i]]);
      Shard& sh = *shards_[s];
      gravel::lock_guard lk(sh.mutex);
      ++sh.routeLocks;
      do {
        const std::uint32_t r = st.order_[i];
        appendRunLocked(sh, st.runDest_[r], st.runs_[r]);
        st.runs_[r].clear();
        ++i;
      } while (i < distinct && shardOf(st.runDest_[st.order_[i]]) == s);
    }
    return distinct;
  }

  /// decode + routeStaged for callers that do not trace in between.
  std::uint32_t routeSlot(const GravelQueue& queue,
                          const GravelQueue::SlotRef& ref, Staging& st) {
    decode(queue, ref, st);
    return routeStaged(st);
  }

  /// Retire every buffer that has sat open past the flush timeout. Safe
  /// from any thread; the busy-path caller invokes it on a slot-count
  /// cadence so flush latency stays bounded under sustained load (the
  /// paper's 125 us rule), and the idle path invokes it from the poll loop.
  ///
  /// O(expired), not O(N): each shard keeps a 32-slot hashed timer wheel of
  /// armed {dest, open-generation} entries, and shards with no open buffers
  /// are skipped outright via the relaxed non-empty hint (advisory: a
  /// stale-by-one-cadence read just defers the scan one tick; flushAll and
  /// quiet() never consult the hint).
  void checkTimeouts() {
    const auto now = std::chrono::steady_clock::now();
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      if (sh.nonemptyHint.load(std::memory_order_relaxed) == 0) continue;
      gravel::lock_guard lk(sh.mutex);
      expireLocked(sh, now);
    }
  }

  /// Force every partially-filled buffer out (quiet protocol / shutdown).
  /// Unconditionally takes every shard lock — correctness here must not
  /// depend on the advisory non-empty hint.
  void flushAll() {
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      gravel::lock_guard lk(sh.mutex);
      for (auto& [dst, b] : sh.buffers) flushLocked(sh, dst, b);
    }
  }

  std::size_t capacityMsgs() const noexcept { return capacityMsgs_; }
  std::uint32_t destinations() const noexcept { return nodes_; }
  std::uint32_t shardCount() const noexcept { return shardCount_; }

  /// Messages currently parked in per-destination buffers (occupancy gauge;
  /// sampler-cadence only — skips shards with no open buffers).
  std::uint64_t bufferedMessages() {
    std::uint64_t total = 0;
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      if (sh.nonemptyHint.load(std::memory_order_relaxed) == 0) continue;
      gravel::lock_guard lk(sh.mutex);
      for (auto& [dst, b] : sh.buffers) total += b.messages.size();
    }
    return total;
  }

  /// Nonempty buffers with how long they have held messages — the stall
  /// watchdog's backpressure signal. A healthy aggregator never lets a
  /// buffer sit past the flush timeout, so a large age means the flush path
  /// is wedged. Sampler cadence only; shards with no open buffers are
  /// skipped (cold destinations were never allocated, so the sweep is
  /// O(resident), not O(N)).
  void sampleBufferAges(
      const std::function<void(std::uint32_t dst, std::uint64_t fill,
                               std::uint64_t age_ns)>& fn) {
    const auto now = std::chrono::steady_clock::now();
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      if (sh.nonemptyHint.load(std::memory_order_relaxed) == 0) continue;
      gravel::lock_guard lk(sh.mutex);
      for (auto& [dst, b] : sh.buffers) {
        const std::uint64_t fill = b.messages.size();
        if (fill == 0) continue;
        const auto age =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - b.openedAt)
                .count();
        fn(dst, fill,
           std::uint64_t(std::max<std::chrono::nanoseconds::rep>(age, 0)));
      }
    }
  }

  /// Routing-path lock acquisitions (one per touched shard per slot).
  /// Excludes maintenance locking (timeouts, flushAll, gauges) by design:
  /// the regression check compares this against destinations-per-slot.
  /// Sampler/stats cadence only — sums plain per-shard counters under
  /// their locks (shard count is fixed and small, never O(N)).
  std::uint64_t routeLockAcquisitions() {
    std::uint64_t total = 0;
    for (auto& shp : shards_) {
      gravel::lock_guard lk(shp->mutex);
      total += shp->routeLocks;
    }
    return total;
  }

  /// Timer-wheel entries examined by checkTimeouts so far — the evidence
  /// that timeout maintenance is O(expired): the old full-array scan did
  /// N * ticks work; this counter stays proportional to buffer-open events.
  std::uint64_t timeoutScanned() {
    std::uint64_t total = 0;
    for (auto& shp : shards_) {
      gravel::lock_guard lk(shp->mutex);
      total += shp->timeoutScanned;
    }
    return total;
  }

  /// Per-destination buffers demand-paged into existence so far (never
  /// freed while the router lives; resident set tracks traffic, not N).
  std::uint64_t lazyBuffers() {
    std::uint64_t total = 0;
    for (auto& shp : shards_) {
      gravel::lock_guard lk(shp->mutex);
      total += shp->buffers.size();
    }
    return total;
  }

  /// Bytes held by resident per-destination buffers (capacity, not fill).
  /// Cold destinations contribute zero — the scale sweep publishes this to
  /// prove per-thread memory is flat in N.
  std::size_t residentBufferBytes() {
    std::size_t total = 0;
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      gravel::lock_guard lk(sh.mutex);
      for (auto& [dst, b] : sh.buffers)
        total += sizeof(Buffer) + b.messages.capacity() * sizeof(NetMessage);
      for (const auto& bucket : sh.wheel)
        total += bucket.capacity() * sizeof(TimerEntry);
    }
    return total;
  }

 private:
  static constexpr std::uint32_t kWheelSlots = 32;

  /// One per-destination queue; lives in its shard's map, guarded by the
  /// shard's mutex (enforced on every helper via GRAVEL_REQUIRES(sh.mutex)).
  struct Buffer {
    std::vector<NetMessage> messages;
    std::chrono::steady_clock::time_point openedAt{};
    /// Bumped on every empty -> nonempty transition; timer-wheel entries
    /// capture it so a flushed-and-reopened buffer invalidates stale arms.
    std::uint64_t openGen = 0;
  };

  struct TimerEntry {
    std::uint32_t dst;
    std::uint64_t gen;      ///< Buffer::openGen at arm time
    std::uint64_t dueTick;  ///< absolute expiry tick (disambiguates laps)
  };

  /// Fixed-count combiner: multiple routing threads only contend when a
  /// slot routes to the same shard. Everything behind `mutex` is plain on
  /// purpose; the hint is the one atomic and is advisory-relaxed only.
  struct Shard {
    explicit Shard(std::uint64_t nowTick) : cursor(nowTick) {}
    gravel::mutex mutex{"SlotRouter::Shard::mutex"};
    std::unordered_map<std::uint32_t, Buffer> buffers GRAVEL_GUARDED_BY(mutex);
    std::array<std::vector<TimerEntry>, kWheelSlots> wheel
        GRAVEL_GUARDED_BY(mutex);
    std::uint64_t cursor GRAVEL_GUARDED_BY(mutex);  ///< last expired tick
    std::uint64_t routeLocks GRAVEL_GUARDED_BY(mutex) = 0;
    std::uint64_t timeoutScanned GRAVEL_GUARDED_BY(mutex) = 0;
    /// Open (nonempty) buffers in this shard. Relaxed on purpose: readers
    /// use it only to skip cold shards on maintenance cadences, where a
    /// one-cadence-stale zero is harmless; all writers hold `mutex`, so the
    /// count itself never drifts. No pairs-with tag — no ordering is
    /// published through it.
    gravel::atomic<std::uint32_t> nonemptyHint{0};
  };

  std::uint32_t shardOf(std::uint32_t dst) const noexcept {
    return dst % shardCount_;
  }

  std::uint64_t tickOf(std::chrono::steady_clock::time_point tp) const {
    return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             tp.time_since_epoch())
                             .count() /
                         resolutionNs_);
  }

  std::uint32_t reserve(const Staging& st) const noexcept {
    return st.reserve_;
  }

  /// Demand-page the buffer for `dst`. First touch of a destination is the
  /// cold path by definition — everything after the find() miss runs once
  /// per (router, destination) pair.
  Buffer& bufferFor(Shard& sh, std::uint32_t dst) GRAVEL_REQUIRES(sh.mutex) {
    auto it = sh.buffers.find(dst);
    if (it == sh.buffers.end()) {
      // gravel-analyze: cold
      it = sh.buffers.emplace(dst, Buffer{}).first;
    }
    return it->second;
  }

  /// Empty -> nonempty transition: stamp the open time, invalidate stale
  /// timer entries via the generation, arm the wheel, publish the hint.
  void openLocked(Shard& sh, std::uint32_t dst, Buffer& b)
      GRAVEL_REQUIRES(sh.mutex) {
    b.openedAt = std::chrono::steady_clock::now();
    ++b.openGen;
    armLocked(sh, dst, b, sh.cursor);
    sh.nonemptyHint.fetch_add(1, std::memory_order_relaxed);
  }

  /// Arm (or re-arm) the timeout for an open buffer. The bucket is always
  /// strictly after `floorTick` — re-inserting at or before the cursor
  /// would park the entry until the wheel wrapped a full lap.
  void armLocked(Shard& sh, std::uint32_t dst, const Buffer& b,
                 std::uint64_t floorTick) GRAVEL_REQUIRES(sh.mutex) {
    std::uint64_t due = tickOf(b.openedAt + timeout_);
    if (due <= floorTick) due = floorTick + 1;
    sh.wheel[due % kWheelSlots].push_back(TimerEntry{dst, b.openGen, due});
  }

  /// Advance the shard's wheel cursor to `now`, expiring due entries.
  /// Work is proportional to armed entries in the stepped buckets, i.e. to
  /// buffer-open events — never to the cluster size.
  void expireLocked(Shard& sh, std::chrono::steady_clock::time_point now)
      GRAVEL_REQUIRES(sh.mutex) {
    const std::uint64_t nowTick = tickOf(now);
    if (nowTick <= sh.cursor) return;
    // Stepping more than a full lap visits every bucket once; absolute
    // dueTicks keep colliding future-lap entries parked.
    const auto steps =
        std::min<std::uint64_t>(nowTick - sh.cursor, kWheelSlots);
    for (std::uint64_t i = 1; i <= steps; ++i) {
      auto& bucket = sh.wheel[(sh.cursor + i) % kWheelSlots];
      std::size_t keep = 0;
      for (std::size_t e = 0; e < bucket.size(); ++e) {
        const TimerEntry ent = bucket[e];
        ++sh.timeoutScanned;
        if (ent.dueTick > nowTick) {  // a later lap shares this bucket
          bucket[keep++] = ent;
          continue;
        }
        auto it = sh.buffers.find(ent.dst);
        if (it == sh.buffers.end() || it->second.openGen != ent.gen ||
            it->second.messages.empty())
          continue;  // stale arm: buffer was flushed (and maybe reopened)
        if (now - it->second.openedAt >= timeout_)
          flushLocked(sh, ent.dst, it->second);
        else
          // Tick rounding fired us up to one resolution early; push to the
          // true expiry bucket (strictly after nowTick, see armLocked).
          armLocked(sh, ent.dst, it->second, nowTick);
      }
      bucket.resize(keep);
    }
    sh.cursor = nowTick;
  }

  /// Append one slot's run for `dst` under the shard lock the caller
  /// already holds, flushing whenever the buffer reaches capacity mid-run.
  void appendRunLocked(Shard& sh, std::uint32_t dst,
                       std::vector<NetMessage>& run)
      GRAVEL_REQUIRES(sh.mutex) {
    Buffer& b = bufferFor(sh, dst);
    std::size_t consumed = 0;
    while (consumed < run.size()) {
      if (b.messages.empty()) openLocked(sh, dst, b);
      const std::size_t room = capacityMsgs_ - b.messages.size();
      const std::size_t take = std::min(room, run.size() - consumed);
      b.messages.insert(b.messages.end(), run.begin() + long(consumed),
                        run.begin() + long(consumed + take));
      consumed += take;
      if (b.messages.size() >= capacityMsgs_) flushLocked(sh, dst, b);
    }
  }

  // Caller holds the shard's mutex (compiler-enforced). The batch swap
  // deliberately leaves the buffer with zero capacity: resident bytes must
  // track live traffic, not high-water marks, for the flat-memory claim —
  // a hot destination re-grows geometrically within its next batch.
  void flushLocked(Shard& sh, std::uint32_t dst, Buffer& b)
      GRAVEL_REQUIRES(sh.mutex) {
    if (b.messages.empty()) return;
    std::vector<NetMessage> batch;
    batch.swap(b.messages);
    sh.nonemptyHint.fetch_sub(1, std::memory_order_relaxed);
    flush_(dst, std::move(batch));
  }

  std::uint32_t nodes_;
  std::size_t capacityMsgs_;
  std::chrono::steady_clock::duration timeout_;
  FlushFn flush_;
  std::uint32_t shardCount_;
  std::int64_t resolutionNs_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gravel::rt
