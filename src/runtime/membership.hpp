// Cluster membership: the per-node health state machine behind graceful
// degradation (DESIGN.md §11).
//
// Each node carries a health state and a monotonically increasing epoch:
//
//   alive ──stalled links──▶ suspect ──trip corroborates──▶ dead
//     ▲                        │                              │
//     └───progress resumed─────┘          restartNode() ──▶ recovered
//     ▲                                                       │
//     └──────────────── link probe acknowledged ──────────────┘
//
// The failure detector is deliberately *derived*: it consumes signals the
// runtime already produces — ReliableFabric's oldest-unacked stall ages
// (Cluster's monitor thread feeds them here), retry-budget exhaustion (the
// circuit breaker in reliable.hpp corroborates a suspicion into a death) and
// explicit crashNode()/restartNode() injection. The epoch increments on
// every restart; the reliability layer tags wire traffic with a per-link era
// derived from these transitions so stale-incarnation frames are rejected
// instead of applied twice.
//
// Concurrency: health and epoch are lock-free atomics (hot-path readers:
// the admission check in NodeRuntime, the breaker check in
// ReliableFabric::send). Transitions serialize under one mutex so the
// transition log and the state machine agree; all transition methods return
// whether they actually fired, making them safe to call from racing
// detectors.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/atomic.hpp"
#include "common/error.hpp"

namespace gravel::rt {

enum class NodeHealth : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,    ///< links into the node stopped making progress
  kDead = 2,       ///< excised: traffic to it dead-letters instead of retrying
  kRecovered = 3,  ///< restarted under a new epoch, not yet reconfirmed
};

inline const char* nodeHealthName(NodeHealth h) noexcept {
  switch (h) {
    case NodeHealth::kAlive: return "alive";
    case NodeHealth::kSuspect: return "suspect";
    case NodeHealth::kDead: return "dead";
    case NodeHealth::kRecovered: return "recovered";
  }
  return "?";
}

/// Failure-detector knobs (consumed by the Cluster monitor thread).
struct MembershipConfig {
  /// A node becomes suspect when some link into it has made no
  /// cumulative-ACK progress for this long.
  std::chrono::milliseconds suspect_after{250};

  /// Detector sampling cadence on the monitor thread.
  std::chrono::milliseconds probe_period{5};
};

/// One entry of the transition log (post-mortems, DegradedRunReport).
struct MembershipTransition {
  std::uint32_t node = 0;
  NodeHealth from = NodeHealth::kAlive;
  NodeHealth to = NodeHealth::kAlive;
  std::uint32_t epoch = 0;  ///< epoch *after* the transition
  std::uint64_t ns = 0;     ///< steady-clock timestamp
  std::string reason;
};

class Membership {
 public:
  explicit Membership(std::uint32_t nodes) : nodes_(nodes), states_(nodes) {}

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  std::uint32_t nodes() const noexcept { return nodes_; }

  NodeHealth health(std::uint32_t n) const noexcept {
    // pairs-with: membership.health
    return NodeHealth(states_[n].health.load(std::memory_order_acquire));
  }
  std::uint32_t epoch(std::uint32_t n) const noexcept {
    return states_[n].epoch.load(std::memory_order_acquire);  // pairs-with: membership.epoch
  }
  bool dead(std::uint32_t n) const noexcept {
    return health(n) == NodeHealth::kDead;
  }

  /// Bumped on every transition; cheap "did anything change" poll.
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);  // pairs-with: membership.version
  }

  std::uint32_t liveCount() const noexcept {
    std::uint32_t live = 0;
    for (std::uint32_t n = 0; n < nodes_; ++n)
      if (!dead(n)) ++live;
    return live;
  }

  std::vector<std::uint32_t> deadNodes() const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t n = 0; n < nodes_; ++n)
      if (dead(n)) out.push_back(n);
    return out;
  }

  /// alive/recovered -> suspect. Driven by the stall detector.
  bool suspect(std::uint32_t n, const std::string& reason) {
    return transition(n, reason, [](NodeHealth h) {
      return (h == NodeHealth::kAlive || h == NodeHealth::kRecovered)
                 ? NodeHealth::kSuspect
                 : h;
    });
  }

  /// any-but-dead -> dead. Driven by breaker trips and crashNode().
  bool declareDead(std::uint32_t n, const std::string& reason) {
    return transition(n, reason, [](NodeHealth h) {
      return h != NodeHealth::kDead ? NodeHealth::kDead : h;
    });
  }

  /// suspect/recovered -> alive. Driven by link progress and probe ACKs.
  bool confirmAlive(std::uint32_t n, const std::string& reason) {
    return transition(n, reason, [](NodeHealth h) {
      return (h == NodeHealth::kSuspect || h == NodeHealth::kRecovered)
                 ? NodeHealth::kAlive
                 : h;
    });
  }

  /// dead -> recovered, under the next epoch. Driven by restartNode().
  bool restart(std::uint32_t n, const std::string& reason) {
    gravel::lock_guard lk(mutex_);
    if (NodeHealth(states_[n].health.load(std::memory_order_relaxed)) !=
        NodeHealth::kDead)
      return false;
    states_[n].epoch.fetch_add(1, std::memory_order_acq_rel);  // pairs-with: membership.epoch
    commit(n, NodeHealth::kDead, NodeHealth::kRecovered, reason);
    return true;
  }

  std::vector<MembershipTransition> transitions() const {
    gravel::lock_guard lk(mutex_);
    return log_;
  }

 private:
  struct NodeState {
    atomic<std::uint8_t> health{std::uint8_t(NodeHealth::kAlive)};
    atomic<std::uint32_t> epoch{0};
  };

  template <typename Next>
  bool transition(std::uint32_t n, const std::string& reason, Next next) {
    GRAVEL_CHECK_MSG(n < nodes_, "membership: bad node id");
    gravel::lock_guard lk(mutex_);
    const NodeHealth from =
        NodeHealth(states_[n].health.load(std::memory_order_relaxed));
    const NodeHealth to = next(from);
    if (to == from) return false;
    commit(n, from, to, reason);
    return true;
  }

  // Caller holds mutex_ (compiler-enforced).
  void commit(std::uint32_t n, NodeHealth from, NodeHealth to,
              const std::string& reason) GRAVEL_REQUIRES(mutex_) {
    // pairs-with: membership.health
    states_[n].health.store(std::uint8_t(to), std::memory_order_release);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count();
    log_.push_back(MembershipTransition{
        n, from, to, states_[n].epoch.load(std::memory_order_relaxed),
        std::uint64_t(ns), reason});
    version_.fetch_add(1, std::memory_order_acq_rel);  // pairs-with: membership.version
  }

  std::uint32_t nodes_;
  mutable std::vector<NodeState> states_;
  mutable gravel::mutex mutex_{
      "Membership::mutex_"};  ///< serializes transitions + the log
  std::vector<MembershipTransition> log_ GRAVEL_GUARDED_BY(mutex_);
  atomic<std::uint64_t> version_{0};
};

}  // namespace gravel::rt
