// The PGAS symmetric heap (paper §1, §6): every node holds a same-sized heap
// and symmetric allocations land at the same offset on every node, so a
// (node, offset) pair names any word in the cluster — the paper's "slice of
// A at the same virtual address on each node".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace gravel::rt {

/// A typed offset into every node's symmetric heap.
template <typename T>
struct SymAddr {
  std::uint64_t offset = 0;

  /// Byte offset of element `i`.
  std::uint64_t at(std::uint64_t i) const noexcept {
    return offset + i * sizeof(T);
  }
  template <typename U>
  SymAddr<U> cast() const noexcept {
    return SymAddr<U>{offset};
  }
};

/// One node's heap. Resolution of remote atomics happens on the node's
/// network thread while the local GPU reads/writes directly, so word accesses
/// go through std::atomic_ref.
class SymmetricHeap {
 public:
  explicit SymmetricHeap(std::size_t bytes) : storage_(bytes, std::byte{0}) {}

  std::size_t size() const noexcept { return storage_.size(); }

  std::uint64_t loadU64(std::uint64_t offset) const {
    return ref(offset).load(std::memory_order_relaxed);
  }
  void storeU64(std::uint64_t offset, std::uint64_t value) {
    ref(offset).store(value, std::memory_order_relaxed);
  }
  std::uint64_t fetchAddU64(std::uint64_t offset, std::uint64_t delta) {
    return ref(offset).fetch_add(delta, std::memory_order_relaxed);
  }

  template <typename T>
  T load(SymAddr<T> addr, std::uint64_t i = 0) const {
    static_assert(sizeof(T) == 8, "heap access is 64-bit grain");
    std::uint64_t w = loadU64(addr.at(i));
    T out;
    std::memcpy(&out, &w, sizeof(T));
    return out;
  }
  template <typename T>
  void store(SymAddr<T> addr, std::uint64_t i, T value) {
    static_assert(sizeof(T) == 8, "heap access is 64-bit grain");
    std::uint64_t w;
    std::memcpy(&w, &value, sizeof(T));
    storeU64(addr.at(i), w);
  }

  /// Raw span for bulk host-side initialization.
  std::byte* data() noexcept { return storage_.data(); }
  const std::byte* data() const noexcept { return storage_.data(); }

 private:
  std::atomic_ref<std::uint64_t> ref(std::uint64_t offset) const {
    GRAVEL_CHECK_MSG(offset % 8 == 0, "unaligned 64-bit heap access");
    GRAVEL_CHECK_MSG(offset + 8 <= storage_.size(),
                     "symmetric heap access out of bounds");
    // atomic_ref needs a mutable lvalue; the heap is logically mutable even
    // through const handles (loads only read).
    auto* p = const_cast<std::byte*>(storage_.data()) + offset;
    return std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(p));
  }

  std::vector<std::byte> storage_;
};

/// The symmetric bump allocator shared by all nodes of a cluster; since all
/// nodes allocate through the same instance, offsets are symmetric by
/// construction.
class SymmetricAllocator {
 public:
  explicit SymmetricAllocator(std::size_t heapBytes) : heapBytes_(heapBytes) {}

  template <typename T>
  SymAddr<T> alloc(std::uint64_t count) {
    static_assert(sizeof(T) == 8, "symmetric allocations are 64-bit grain");
    const std::uint64_t bytes = count * sizeof(T);
    GRAVEL_CHECK_MSG(next_ + bytes <= heapBytes_, "symmetric heap exhausted");
    const std::uint64_t offset = next_;
    next_ += bytes;
    return SymAddr<T>{offset};
  }

  std::uint64_t used() const noexcept { return next_; }

 private:
  std::size_t heapBytes_;
  std::uint64_t next_ = 0;
};

}  // namespace gravel::rt
