// The wire format of a Gravel network message (paper §4.2, §6).
//
// A message is four 64-bit words — one per payload row of the
// producer/consumer queue: command, destination, address, value. Gravel
// supports three non-blocking operations (§6): PUT, atomic increment, and a
// primitive active-message API. The active-message handler id is packed into
// the command word's upper bits.
#pragma once

#include <cstdint>

namespace gravel::rt {

enum class Command : std::uint8_t {
  kPut = 0,        ///< store `value` at symmetric-heap offset `addr`
  kAtomicInc = 1,  ///< 64-bit increment at symmetric-heap offset `addr`
  kActiveMessage = 2,  ///< run handler (cmd>>32) with args (addr, value)
  kControl = 3,  ///< reliability-layer header: never reaches a heap resolver
};

/// Reliability-layer control kinds, packed into a kControl message's cmd
/// word (bits 8..15). See ReliableFabric for the full wire format.
enum class ControlKind : std::uint8_t {
  kData = 0,  ///< header of a sequenced data batch; addr = seq
  kAck = 1,   ///< standalone cumulative acknowledgement
};

/// One queue message; exactly GravelQueue rows = 4.
struct NetMessage {
  std::uint64_t cmd = 0;   ///< Command in low 8 bits; AM handler id in 32..63
  std::uint64_t dest = 0;  ///< destination node id
  std::uint64_t addr = 0;  ///< symmetric-heap byte offset (or AM arg 0)
  std::uint64_t value = 0; ///< payload (or AM arg 1)

  static constexpr std::uint32_t kRows = 4;

  Command command() const noexcept {
    return static_cast<Command>(cmd & 0xff);
  }
  std::uint32_t handler() const noexcept {
    return static_cast<std::uint32_t>(cmd >> 32);
  }

  /// Observability: a sampled trace ID rides in cmd bits 16..31, which every
  /// data command leaves free (kControl uses 8..15 for its kind; the AM
  /// handler sits in 32..63). 0 means untraced; the ID survives aggregation,
  /// framing and retransmission because the payload words are never
  /// rewritten past the enqueue.
  static constexpr int kTraceShift = 16;
  static constexpr std::uint64_t kTraceMask = 0xffffull << kTraceShift;

  std::uint32_t traceId() const noexcept {
    return static_cast<std::uint32_t>((cmd & kTraceMask) >> kTraceShift);
  }
  void setTraceId(std::uint32_t id) noexcept {
    cmd = (cmd & ~kTraceMask) |
          ((std::uint64_t(id) << kTraceShift) & kTraceMask);
  }

  static NetMessage put(std::uint32_t dest, std::uint64_t addr,
                        std::uint64_t value) {
    return {std::uint64_t(Command::kPut), dest, addr, value};
  }
  static NetMessage atomicInc(std::uint32_t dest, std::uint64_t addr) {
    return {std::uint64_t(Command::kAtomicInc), dest, addr, 0};
  }
  static NetMessage activeMessage(std::uint32_t dest, std::uint32_t handler,
                                  std::uint64_t arg0, std::uint64_t arg1) {
    return {std::uint64_t(Command::kActiveMessage) |
                (std::uint64_t(handler) << 32),
            dest, arg0, arg1};
  }

  /// Reliability header: kind in cmd bits 8..15, batch sequence number in
  /// addr (0 for pure ACKs), cumulative ACK for the reverse link in value.
  ControlKind controlKind() const noexcept {
    return static_cast<ControlKind>((cmd >> 8) & 0xff);
  }
  std::uint64_t seq() const noexcept { return addr; }
  std::uint64_t cumAck() const noexcept { return value; }

  /// Link eras (graceful degradation, DESIGN.md §11): a control frame
  /// carries the sending link's era in bits 16..31 (the trace-ID field,
  /// which control frames never use) and, for its piggybacked/standalone
  /// cumulative ACK, the *acknowledged* link's era in bits 32..47 (free in
  /// control frames: no AM handler). The reliability layer bumps a link's
  /// era whenever the circuit breaker excises or re-syncs it, so frames and
  /// ACKs from a stale incarnation are provably rejected instead of being
  /// applied twice or corrupting re-synced sequence state. Both fields are
  /// 0 under the fail-fast policy — the wire format is byte-identical.
  static constexpr int kEraShift = 16;
  static constexpr int kAckEraShift = 32;
  static constexpr std::uint64_t kEraFieldMask = 0xffffull;

  std::uint32_t era() const noexcept {
    return std::uint32_t((cmd >> kEraShift) & kEraFieldMask);
  }
  std::uint32_t ackEra() const noexcept {
    return std::uint32_t((cmd >> kAckEraShift) & kEraFieldMask);
  }

  static NetMessage control(std::uint32_t dest, ControlKind kind,
                            std::uint64_t seq, std::uint64_t cumAck,
                            std::uint32_t era = 0, std::uint32_t ackEra = 0) {
    return {std::uint64_t(Command::kControl) | (std::uint64_t(kind) << 8) |
                ((std::uint64_t(era) & kEraFieldMask) << kEraShift) |
                ((std::uint64_t(ackEra) & kEraFieldMask) << kAckEraShift),
            dest, seq, cumAck};
  }
};

static_assert(sizeof(NetMessage) == NetMessage::kRows * 8);

}  // namespace gravel::rt
