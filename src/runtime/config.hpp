// Cluster-wide configuration, defaulted to the paper's Table 3 setup.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/error.hpp"
#include "common/units.hpp"
#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "obs/status_server.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "runtime/membership.hpp"
#include "runtime/message.hpp"
#include "simt/types.hpp"

namespace gravel::rt {

struct ClusterConfig {
  std::uint32_t nodes = 8;

  /// Symmetric heap per node.
  std::size_t heap_bytes = 64_MiB;

  /// GPU-side producer/consumer queue (Table 3: 1 MB).
  std::size_t gpu_queue_bytes = 1_MiB;

  /// Per-node (per-destination) queues: 64 kB each, 3 per destination —
  /// Table 3's "24 per-node queues" at 8 nodes. The count beyond 1 only
  /// matters to the latency model (it hides network latency); functionally
  /// one active buffer per destination cycles through flushes.
  std::size_t pernode_queue_bytes = 64_KiB;
  std::uint32_t pernode_queues_per_dest = 3;

  /// Flush timeout for a partially-filled per-node queue. The paper's value
  /// is 125 us against an APU that offloads ~220M msgs/s; the functional
  /// SIMT engine is roughly three orders of magnitude slower, so the
  /// *functional* default scales the timeout by the same factor to preserve
  /// the fill-before-timeout behaviour (the timing model applies the real
  /// 125 us — see src/perf).
  std::chrono::microseconds flush_timeout{125000};

  /// Aggregator threads consuming the GPU queue (Table 3: 1).
  std::uint32_t aggregator_threads = 1;

  /// Busy-path timeout cadence: the aggregator re-checks the flush timeout
  /// every N routed slots, so partially-filled per-node queues are retired
  /// on time even when the GPU queue never goes idle (the idle poll loop —
  /// previously the only caller — then never runs).
  std::uint32_t aggregator_timeout_check_slots = 16;

  /// Initial per-destination reserve (messages) for each routing thread's
  /// staging runs; purely an allocation hint for the slot-batched path.
  std::uint32_t aggregator_staging_reserve = 64;

  /// Fault injection on the wire. Inactive (all-zero) means the cluster runs
  /// on PerfectFabric exactly as before; any nonzero knob swaps in
  /// FaultyFabric.
  net::FaultConfig fault{};

  /// Reliable-delivery sublayer (seq/ack/retransmit/dedup). Off by default;
  /// required for correct results whenever `fault` can lose or duplicate
  /// batches.
  net::ReliabilityConfig reliability{};

  /// Failure detector behind `reliability.policy == kDegrade` (DESIGN.md
  /// §11): stall-driven suspicion thresholds sampled by the monitor thread.
  /// Inert under fail_fast.
  MembershipConfig membership{};

  /// Upper bound on each quiet() wait loop. On expiry quiet() throws with a
  /// per-link diagnostic instead of hanging the process. Zero disables the
  /// deadline.
  std::chrono::milliseconds quiet_deadline{120000};

  /// Observability (src/obs): message-lifecycle tracing, depth gauges and
  /// the metrics registry feed. Off by default; when `obs.enabled` is false
  /// the hot paths pay one predictable branch per record site and nothing
  /// else.
  obs::TraceConfig obs{};

  /// Stall watchdog (src/obs/watchdog.hpp): the monitor thread samples
  /// queue progress, buffer ages and reliable-link send states on
  /// `watchdog.period` and turns persistent stalls into structured
  /// diagnoses that quiet()'s post-mortem and the metrics registry report.
  obs::WatchdogConfig watchdog{};

  /// Windowed time-series collector (src/obs/timeseries.hpp): the monitor
  /// thread takes MetricsSnapshot::delta() windows on `timeseries.period`
  /// into a bounded ring, and the cluster dumps gravel_timeseries.json at
  /// destruction. GRAVEL_TIMESERIES=1 enables it from the environment.
  obs::TimeSeriesConfig timeseries{};

  /// Live HTTP status endpoint (src/obs/status_server.hpp): /metrics in
  /// Prometheus text exposition, /status + /timeseries as JSON.
  /// GRAVEL_STATUS_PORT=<port> enables it (and the collector) from the
  /// environment; port 0 binds an ephemeral port.
  obs::StatusServerConfig status_server{};

  simt::DeviceConfig device{};

  /// Rejects degenerate configurations up front, with actionable messages.
  /// Called by the Cluster constructor — a pernode_queue_bytes smaller than
  /// one NetMessage would otherwise silently truncate the per-destination
  /// capacity to zero and the aggregator would flush 1-message batches (or
  /// nothing) forever.
  void validate() const {
    GRAVEL_CHECK_MSG(nodes > 0, "cluster needs at least one node");
    GRAVEL_CHECK_MSG(nodes <= 65536,
                     "node ids are recorded in 16-bit trace fields; "
                     "more than 65536 nodes would alias");
    GRAVEL_CHECK_MSG(heap_bytes > 0, "symmetric heap cannot be empty");
    GRAVEL_CHECK_MSG(gpu_queue_bytes > 0,
                     "GPU producer/consumer queue cannot be zero-sized");
    GRAVEL_CHECK_MSG(
        pernode_queue_bytes >= sizeof(NetMessage),
        "pernode_queue_bytes must hold at least one NetMessage (32 bytes); "
        "smaller values silently truncate per-destination capacity to zero");
    GRAVEL_CHECK_MSG(aggregator_threads > 0,
                     "aggregator needs at least one thread");
    GRAVEL_CHECK_MSG(aggregator_timeout_check_slots > 0,
                     "busy-path timeout cadence must be >= 1 slot");
    if (reliability.policy == net::FailurePolicy::kDegrade) {
      GRAVEL_CHECK_MSG(reliability.enabled,
                       "the degrade failure policy needs the reliability "
                       "layer: circuit breakers live on its links");
      GRAVEL_CHECK_MSG(reliability.dlq_capacity > 0,
                       "degrade needs a dead-letter capacity of >= 1 message "
                       "per destination");
      GRAVEL_CHECK_MSG(membership.suspect_after.count() > 0 &&
                           membership.probe_period.count() > 0,
                       "membership detector thresholds must be positive "
                       "under the degrade policy");
    }
    if (watchdog.enabled) {
      GRAVEL_CHECK_MSG(watchdog.period.count() > 0,
                       "watchdog.period must be positive when enabled");
      GRAVEL_CHECK_MSG(watchdog.max_diagnoses > 0,
                       "watchdog.max_diagnoses must be >= 1 when enabled");
      GRAVEL_CHECK_MSG(
          watchdog.no_progress_deadline.count() > 0 &&
              watchdog.backpressure_deadline.count() > 0 &&
              watchdog.stalled_link_deadline.count() > 0,
          "watchdog deadlines must be positive when the watchdog is enabled");
    }
    if (timeseries.enabled) {
      GRAVEL_CHECK_MSG(timeseries.period.count() > 0,
                       "timeseries.period must be positive when enabled");
      GRAVEL_CHECK_MSG(timeseries.capacity > 0,
                       "timeseries.capacity must be >= 1 window when enabled");
    }
    if (status_server.enabled)
      GRAVEL_CHECK_MSG(!status_server.bind_address.empty(),
                       "status_server.bind_address cannot be empty when "
                       "the status server is enabled");
  }
};

}  // namespace gravel::rt
