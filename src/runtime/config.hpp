// Cluster-wide configuration, defaulted to the paper's Table 3 setup.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/units.hpp"
#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "obs/trace.hpp"
#include "simt/types.hpp"

namespace gravel::rt {

struct ClusterConfig {
  std::uint32_t nodes = 8;

  /// Symmetric heap per node.
  std::size_t heap_bytes = 64_MiB;

  /// GPU-side producer/consumer queue (Table 3: 1 MB).
  std::size_t gpu_queue_bytes = 1_MiB;

  /// Per-node (per-destination) queues: 64 kB each, 3 per destination —
  /// Table 3's "24 per-node queues" at 8 nodes. The count beyond 1 only
  /// matters to the latency model (it hides network latency); functionally
  /// one active buffer per destination cycles through flushes.
  std::size_t pernode_queue_bytes = 64_KiB;
  std::uint32_t pernode_queues_per_dest = 3;

  /// Flush timeout for a partially-filled per-node queue. The paper's value
  /// is 125 us against an APU that offloads ~220M msgs/s; the functional
  /// SIMT engine is roughly three orders of magnitude slower, so the
  /// *functional* default scales the timeout by the same factor to preserve
  /// the fill-before-timeout behaviour (the timing model applies the real
  /// 125 us — see src/perf).
  std::chrono::microseconds flush_timeout{125000};

  /// Aggregator threads consuming the GPU queue (Table 3: 1).
  std::uint32_t aggregator_threads = 1;

  /// Fault injection on the wire. Inactive (all-zero) means the cluster runs
  /// on PerfectFabric exactly as before; any nonzero knob swaps in
  /// FaultyFabric.
  net::FaultConfig fault{};

  /// Reliable-delivery sublayer (seq/ack/retransmit/dedup). Off by default;
  /// required for correct results whenever `fault` can lose or duplicate
  /// batches.
  net::ReliabilityConfig reliability{};

  /// Upper bound on each quiet() wait loop. On expiry quiet() throws with a
  /// per-link diagnostic instead of hanging the process. Zero disables the
  /// deadline.
  std::chrono::milliseconds quiet_deadline{120000};

  /// Observability (src/obs): message-lifecycle tracing, depth gauges and
  /// the metrics registry feed. Off by default; when `obs.enabled` is false
  /// the hot paths pay one predictable branch per record site and nothing
  /// else.
  obs::TraceConfig obs{};

  simt::DeviceConfig device{};
};

}  // namespace gravel::rt
