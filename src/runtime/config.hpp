// Cluster-wide configuration, defaulted to the paper's Table 3 setup.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/units.hpp"
#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "obs/profiler.hpp"
#include "obs/status_server.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "runtime/membership.hpp"
#include "runtime/message.hpp"
#include "simt/types.hpp"

namespace gravel::rt {

/// Conservative per-(src,dst) estimate of the reliability layer's dense
/// eager state (send/recv link structs, era and stats vectors) used by the
/// validate() footprint gate.
inline constexpr std::size_t kReliableLinkEagerBytes = 256;

struct ClusterConfig {
  std::uint32_t nodes = 8;

  /// Symmetric heap per node.
  std::size_t heap_bytes = 64_MiB;

  /// GPU-side producer/consumer queue (Table 3: 1 MB).
  std::size_t gpu_queue_bytes = 1_MiB;

  /// Per-node (per-destination) queues: 64 kB each, 3 per destination —
  /// Table 3's "24 per-node queues" at 8 nodes. The count beyond 1 only
  /// matters to the latency model (it hides network latency); functionally
  /// one active buffer per destination cycles through flushes.
  std::size_t pernode_queue_bytes = 64_KiB;
  std::uint32_t pernode_queues_per_dest = 3;

  /// Flush timeout for a partially-filled per-node queue. The paper's value
  /// is 125 us against an APU that offloads ~220M msgs/s; the functional
  /// SIMT engine is roughly three orders of magnitude slower, so the
  /// *functional* default scales the timeout by the same factor to preserve
  /// the fill-before-timeout behaviour (the timing model applies the real
  /// 125 us — see src/perf).
  std::chrono::microseconds flush_timeout{125000};

  /// Aggregator threads consuming the GPU queue (Table 3: 1).
  std::uint32_t aggregator_threads = 1;

  /// Busy-path timeout cadence: the aggregator re-checks the flush timeout
  /// every N routed slots, so partially-filled per-node queues are retired
  /// on time even when the GPU queue never goes idle (the idle poll loop —
  /// previously the only caller — then never runs).
  std::uint32_t aggregator_timeout_check_slots = 16;

  /// Initial per-destination reserve (messages) for each routing thread's
  /// staging runs; purely an allocation hint for the slot-batched path.
  std::uint32_t aggregator_staging_reserve = 64;

  /// Shards backing the aggregator's per-destination buffers (DESIGN.md
  /// §14). Clamped to `nodes`, so clusters up to this size keep the
  /// historical one-lock-per-destination behaviour exactly; larger
  /// clusters pay a fixed shard-mutex footprint instead of one per node.
  /// 0 means the SlotRouter default (64).
  std::uint32_t aggregator_shards = 0;

  /// Cooperative runtime pool size. 0 (default) keeps the historical
  /// dedicated aggregator + network thread pair per node. A positive value
  /// drives all nodes' aggregation and network pumping from this many
  /// shared threads instead — the only way to run 1024+ simulated nodes on
  /// a host that cannot spawn 2N OS threads.
  std::uint32_t runtime_threads = 0;

  /// Upper bound on the cluster's total *eager* allocation footprint
  /// (bytes): memory validate() can predict from the config alone —
  /// symmetric heaps, GPU queues, and the reliability layer's dense
  /// per-link state. Configs over the cap are rejected up front with an
  /// actionable message instead of OOM-ing mid-construction. 0 disables
  /// the check. Per-destination aggregation buffers are demand-paged
  /// (DESIGN.md §14) and deliberately NOT counted.
  std::size_t max_eager_bytes = std::size_t{65536} * 1_MiB;  // 64 GiB

  /// Fault injection on the wire. Inactive (all-zero) means the cluster runs
  /// on PerfectFabric exactly as before; any nonzero knob swaps in
  /// FaultyFabric.
  net::FaultConfig fault{};

  /// Reliable-delivery sublayer (seq/ack/retransmit/dedup). Off by default;
  /// required for correct results whenever `fault` can lose or duplicate
  /// batches.
  net::ReliabilityConfig reliability{};

  /// Failure detector behind `reliability.policy == kDegrade` (DESIGN.md
  /// §11): stall-driven suspicion thresholds sampled by the monitor thread.
  /// Inert under fail_fast.
  MembershipConfig membership{};

  /// Upper bound on each quiet() wait loop. On expiry quiet() throws with a
  /// per-link diagnostic instead of hanging the process. Zero disables the
  /// deadline.
  std::chrono::milliseconds quiet_deadline{120000};

  /// Observability (src/obs): message-lifecycle tracing, depth gauges and
  /// the metrics registry feed. Off by default; when `obs.enabled` is false
  /// the hot paths pay one predictable branch per record site and nothing
  /// else.
  obs::TraceConfig obs{};

  /// Stall watchdog (src/obs/watchdog.hpp): the monitor thread samples
  /// queue progress, buffer ages and reliable-link send states on
  /// `watchdog.period` and turns persistent stalls into structured
  /// diagnoses that quiet()'s post-mortem and the metrics registry report.
  obs::WatchdogConfig watchdog{};

  /// Windowed time-series collector (src/obs/timeseries.hpp): the monitor
  /// thread takes MetricsSnapshot::delta() windows on `timeseries.period`
  /// into a bounded ring, and the cluster dumps gravel_timeseries.json at
  /// destruction. GRAVEL_TIMESERIES=1 enables it from the environment.
  obs::TimeSeriesConfig timeseries{};

  /// Live HTTP status endpoint (src/obs/status_server.hpp): /metrics in
  /// Prometheus text exposition, /status + /timeseries as JSON.
  /// GRAVEL_STATUS_PORT=<port> enables it (and the collector) from the
  /// environment; port 0 binds an ephemeral port.
  obs::StatusServerConfig status_server{};

  /// Continuous profiler (src/obs/profiler.hpp): per-thread cycle
  /// attribution over region paths plus named-mutex lock-contention
  /// histograms. Off by default (one predicted branch per region bracket);
  /// GRAVEL_PROFILE=1 enables it from the environment.
  obs::ProfilerConfig profiler{};

  simt::DeviceConfig device{};

  /// Rejects degenerate configurations up front, with actionable messages.
  /// Called by the Cluster constructor — a pernode_queue_bytes smaller than
  /// one NetMessage would otherwise silently truncate the per-destination
  /// capacity to zero and the aggregator would flush 1-message batches (or
  /// nothing) forever.
  void validate() const {
    GRAVEL_CHECK_MSG(nodes > 0, "cluster needs at least one node");
    GRAVEL_CHECK_MSG(nodes <= 65536,
                     "node ids are recorded in 16-bit trace fields; "
                     "more than 65536 nodes would alias");
    GRAVEL_CHECK_MSG(heap_bytes > 0, "symmetric heap cannot be empty");
    GRAVEL_CHECK_MSG(gpu_queue_bytes > 0,
                     "GPU producer/consumer queue cannot be zero-sized");
    GRAVEL_CHECK_MSG(
        pernode_queue_bytes >= sizeof(NetMessage),
        "pernode_queue_bytes must hold at least one NetMessage (32 bytes); "
        "smaller values silently truncate per-destination capacity to zero");
    GRAVEL_CHECK_MSG(aggregator_threads > 0,
                     "aggregator needs at least one thread");
    GRAVEL_CHECK_MSG(aggregator_timeout_check_slots > 0,
                     "busy-path timeout cadence must be >= 1 slot");
    // Eager-footprint gate: reject configs that would OOM mid-construction
    // with a message naming the knobs, instead of dying in an allocator.
    // Historical note: per-destination aggregation buffers used to dominate
    // this sum (3 x pernode_queue_bytes x nodes x aggregator_threads); they
    // are demand-paged now (DESIGN.md §14), so the cap covers only what is
    // still allocated up front — heaps, GPU queues, and the reliability
    // layer's dense per-link state.
    if (max_eager_bytes != 0) {
      const std::uint64_t perNode =
          std::uint64_t(heap_bytes) + std::uint64_t(gpu_queue_bytes);
      std::uint64_t eager = perNode * nodes;
      if (reliability.enabled)
        eager += std::uint64_t(nodes) * nodes * kReliableLinkEagerBytes;
      GRAVEL_CHECK_MSG(
          eager <= max_eager_bytes,
          "total eager allocation footprint (" + std::to_string(eager) +
              " bytes: nodes x (heap_bytes + gpu_queue_bytes)" +
              (reliability.enabled ? " + nodes^2 reliable-link state" : "") +
              ") exceeds max_eager_bytes (" +
              std::to_string(max_eager_bytes) +
              "); shrink heap_bytes/gpu_queue_bytes for large simulated "
              "clusters, or raise max_eager_bytes");
    }
    if (runtime_threads > 0)
      GRAVEL_CHECK_MSG(
          !reliability.enabled,
          "runtime_threads (cooperative pool) does not drive the "
          "reliability layer's retransmit/crash-restart machinery; use "
          "dedicated threads (runtime_threads = 0) with reliability");
    if (reliability.policy == net::FailurePolicy::kDegrade) {
      GRAVEL_CHECK_MSG(reliability.enabled,
                       "the degrade failure policy needs the reliability "
                       "layer: circuit breakers live on its links");
      GRAVEL_CHECK_MSG(reliability.dlq_capacity > 0,
                       "degrade needs a dead-letter capacity of >= 1 message "
                       "per destination");
      GRAVEL_CHECK_MSG(membership.suspect_after.count() > 0 &&
                           membership.probe_period.count() > 0,
                       "membership detector thresholds must be positive "
                       "under the degrade policy");
    }
    if (watchdog.enabled) {
      GRAVEL_CHECK_MSG(watchdog.period.count() > 0,
                       "watchdog.period must be positive when enabled");
      GRAVEL_CHECK_MSG(watchdog.max_diagnoses > 0,
                       "watchdog.max_diagnoses must be >= 1 when enabled");
      GRAVEL_CHECK_MSG(
          watchdog.no_progress_deadline.count() > 0 &&
              watchdog.backpressure_deadline.count() > 0 &&
              watchdog.stalled_link_deadline.count() > 0,
          "watchdog deadlines must be positive when the watchdog is enabled");
    }
    if (timeseries.enabled) {
      GRAVEL_CHECK_MSG(timeseries.period.count() > 0,
                       "timeseries.period must be positive when enabled");
      GRAVEL_CHECK_MSG(timeseries.capacity > 0,
                       "timeseries.capacity must be >= 1 window when enabled");
    }
    if (status_server.enabled)
      GRAVEL_CHECK_MSG(!status_server.bind_address.empty(),
                       "status_server.bind_address cannot be empty when "
                       "the status server is enabled");
  }
};

}  // namespace gravel::rt
