// The primitive active-message API (paper §6): a registered handler runs at
// the destination node with two 64-bit arguments. Handlers execute on the
// destination's network thread, which serializes all atomics on a node —
// the paper's trick that lets handlers mutate node state without
// concurrent-RMW cost ("this approach is faster than using concurrent
// read-modify-write operations ... and it simplifies writing active
// messages").
//
// Handlers receive an AmContext and may *send follow-on active messages*
// (chaining). Chaining is what distributed pointer-walks need — e.g. the
// Meraculous phase-2 traversal (src/apps/mer_traverse.*), where the walk
// state hops from k-mer owner to k-mer owner as a chain of AMs. The quiet
// protocol remains correct because a handler's sends enter the fabric's
// in-flight count before the triggering message is marked resolved.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/atomic.hpp"

#include "common/error.hpp"
#include "runtime/symmetric_heap.hpp"

namespace gravel::rt {

/// Execution context handed to an active-message handler.
class AmContext {
 public:
  /// Sends a follow-on active message from this (home) node. Destination
  /// `self()` is allowed: the message loops back through the fabric and is
  /// handled in a later delivery (not recursively).
  using SendFn = std::function<void(std::uint32_t dest, std::uint32_t handler,
                                    std::uint64_t arg0, std::uint64_t arg1)>;

  AmContext(SymmetricHeap& heap, std::uint32_t self, const SendFn& send)
      : heap_(heap), self_(self), send_(send) {}

  SymmetricHeap& heap() noexcept { return heap_; }
  std::uint32_t self() const noexcept { return self_; }

  void sendAm(std::uint32_t dest, std::uint32_t handler, std::uint64_t arg0,
              std::uint64_t arg1) {
    send_(dest, handler, arg0, arg1);
  }

 private:
  SymmetricHeap& heap_;
  std::uint32_t self_;
  const SendFn& send_;
};

/// Runs at the home node. Only the network thread invokes handlers, so
/// plain (non-atomic) heap mutation is safe with respect to other handlers;
/// use the heap's atomic accessors when the local GPU also touches the same
/// words mid-kernel.
using AmHandler =
    std::function<void(AmContext& ctx, std::uint64_t arg0, std::uint64_t arg1)>;

/// Registry shared by every node of a cluster (handlers are code, which is
/// naturally symmetric). Registration is append-only and may happen while
/// network threads are live (multi-phase apps register phase-2 handlers
/// after phase-1 launches): slots are fixed at construction and new entries
/// are published through an atomic count, so readers never observe a
/// reallocation.
class AmRegistry {
 public:
  static constexpr std::size_t kMaxHandlers = 256;

  AmRegistry() : handlers_(kMaxHandlers) {}

  std::uint32_t add(AmHandler handler) {
    const std::size_t id = count_.load(std::memory_order_relaxed);
    GRAVEL_CHECK_MSG(id < kMaxHandlers, "active-message registry full");
    handlers_[id] = std::move(handler);
    count_.store(id + 1, std::memory_order_release);  // pairs-with: am.count
    return static_cast<std::uint32_t>(id);
  }

  void run(std::uint32_t id, AmContext& ctx, std::uint64_t arg0,
           std::uint64_t arg1) const {
    GRAVEL_CHECK_MSG(id < count_.load(std::memory_order_acquire),
                     "unknown active-message handler");
    handlers_[id](ctx, arg0, arg1);
  }

  std::size_t size() const noexcept {
    return count_.load(std::memory_order_acquire);  // pairs-with: am.count
  }

 private:
  std::vector<AmHandler> handlers_;
  atomic<std::size_t> count_{0};
};

}  // namespace gravel::rt
