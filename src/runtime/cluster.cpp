#include "runtime/cluster.hpp"

#include <chrono>
#include <sstream>
#include <thread>

#include "common/backoff.hpp"
#include "common/error.hpp"

namespace gravel::rt {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      allocator_(config.heap_bytes),
      opBase_(config.nodes),
      devBase_(config.nodes) {
  GRAVEL_CHECK_MSG(config.nodes > 0, "cluster needs at least one node");
  if (config_.fault.active())
    wire_ = std::make_unique<net::FaultyFabric>(config_.nodes, config_.fault);
  else
    wire_ = std::make_unique<net::PerfectFabric>(config_.nodes);
  if (config_.reliability.enabled) {
    reliable_ =
        std::make_unique<net::ReliableFabric>(*wire_, config_.reliability);
    fabric_ = reliable_.get();
  } else {
    fabric_ = wire_.get();
  }
  nodes_.reserve(config.nodes);
  for (std::uint32_t i = 0; i < config.nodes; ++i)
    nodes_.push_back(
        std::make_unique<NodeRuntime>(i, config_, *fabric_, registry_));
}

Cluster::~Cluster() {
  for (auto& n : nodes_) n->stopThreads();
}

std::uint32_t Cluster::registerHandler(AmHandler handler) {
  // Registration is legal at any quiescent point (between launches): the
  // registry publishes append-only through an atomic count, so live network
  // threads never observe a partial entry.
  return registry_.add(std::move(handler));
}

void Cluster::ensureThreadsStarted() {
  if (threadsStarted_) return;
  for (auto& n : nodes_) n->startThreads();
  threadsStarted_ = true;
}

void Cluster::launchAll(std::uint64_t gridPerNode, std::uint32_t wgSize,
                        const NodeKernel& kernel) {
  launchAll(std::vector<std::uint64_t>(config_.nodes, gridPerNode), wgSize,
            kernel);
}

void Cluster::launchAll(const std::vector<std::uint64_t>& grids,
                        std::uint32_t wgSize, const NodeKernel& kernel) {
  GRAVEL_CHECK_MSG(grids.size() == config_.nodes,
                   "one grid size per node required");
  ensureThreadsStarted();
  std::vector<std::thread> gpus;
  std::vector<std::exception_ptr> errors(config_.nodes);
  gpus.reserve(config_.nodes);
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    gpus.emplace_back([this, i, &grids, wgSize, &kernel, &errors] {
      try {
        if (grids[i] == 0) return;
        node(i).device().launch(
            {grids[i], wgSize},
            [this, i, &kernel](simt::WorkItem& wi) { kernel(i, wi); });
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : gpus) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  quiet();
}

void Cluster::hostParallel(const std::function<void(std::uint32_t)>& work) {
  ensureThreadsStarted();
  std::vector<std::thread> hosts;
  std::vector<std::exception_ptr> errors(config_.nodes);
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    hosts.emplace_back([i, &work, &errors] {
      try {
        work(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : hosts) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  quiet();
}

void Cluster::quietDeadlineExpired(const char* stage) {
  // Dump everything a hang post-mortem needs: which wait stalled, per-link
  // reliability state, inbox depths, and the aggregator/queue positions.
  std::ostringstream os;
  os << "quiet deadline (" << config_.quiet_deadline.count()
     << " ms) expired while " << stage << ". " << fabric_->describePending();
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    os << "; node " << i << ": aggregator "
       << nodes_[i]->aggregator().slotsProcessed() << "/"
       << nodes_[i]->queue().reservedCount() << " slots routed";
  }
  GRAVEL_CHECK_MSG(false, os.str());
}

void Cluster::quiet() {
  if (!threadsStarted_) return;
  const bool bounded = config_.quiet_deadline.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        config_.quiet_deadline;
  const auto check = [&](const char* stage) {
    if (auto f = fabric_->failure()) throw net::LinkFailureError(*f);
    if (bounded && std::chrono::steady_clock::now() >= deadline)
      quietDeadlineExpired(stage);
  };
  Backoff backoff;
  // 1. Every reserved GPU-queue slot must be routed by the aggregator.
  for (auto& n : nodes_) {
    while (n->aggregator().slotsProcessed() < n->queue().reservedCount()) {
      check("waiting for aggregators to drain the GPU queues");
      backoff.wait();
    }
  }
  // 2. Push every partially-filled per-node queue onto the wire.
  for (auto& n : nodes_) n->aggregator().flushAll();
  // 3. Wait until every message in flight has been resolved at its home —
  // and, with the reliability layer, acknowledged back to its sender, so a
  // dropped or duplicated batch can never fake completion.
  backoff.reset();
  while (!fabric_->quiescent()) {
    check("waiting for in-flight messages to resolve");
    backoff.wait();
  }
  // A retry budget can exhaust in the instant quiescence is observed
  // elsewhere; surface it rather than silently succeeding.
  if (auto f = fabric_->failure()) throw net::LinkFailureError(*f);
}

ClusterRunStats Cluster::runStats() const {
  ClusterRunStats s;
  s.nodes = config_.nodes;
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    const NodeOpStats& op = nodes_[i]->opStats();
    const NodeOpStats& ob = opBase_[i];
    s.put_local += op.put_local - ob.put_local;
    s.put_remote += op.put_remote - ob.put_remote;
    s.inc_local += op.inc_local - ob.inc_local;
    s.inc_remote += op.inc_remote - ob.inc_remote;
    s.am_local += op.am_local - ob.am_local;
    s.am_remote += op.am_remote - ob.am_remote;

    const simt::DeviceStats& d = nodes_[i]->device().stats();
    const simt::DeviceStats& db = devBase_[i];
    s.lanes_executed += d.lanes_executed - db.lanes_executed;
    s.workgroups_executed += d.workgroups_executed - db.workgroups_executed;
    s.collective_ops += d.collective_ops - db.collective_ops;
    s.collective_arrivals += d.collective_arrivals - db.collective_arrivals;
    s.active_arrivals += d.active_arrivals - db.active_arrivals;
    s.predication_overhead_ops +=
        d.predication_overhead_ops - db.predication_overhead_ops;
  }
  const net::LinkStats t = fabric_->total();
  s.net_batches = t.batches - fabricBase_.batches;
  s.net_messages = t.messages - fabricBase_.messages;
  s.net_bytes = t.bytes - fabricBase_.bytes;
  s.retransmits = t.retransmits - fabricBase_.retransmits;
  s.dup_drops = t.dup_drops - fabricBase_.dup_drops;
  s.acks = t.acks - fabricBase_.acks;
  const net::ReliabilityStats r = fabric_->reliabilityStats();
  s.acks_sent = r.acks_sent - relBase_.acks_sent;
  s.reorder_drops = r.reorder_drops - relBase_.reorder_drops;
  s.reorder_peak = r.reorder_peak;  // high-water mark, not a delta
  const net::FaultStats f = fabric_->faultStats();
  s.injected_drops =
      (f.drops + f.partition_drops) - (faultBase_.drops +
                                       faultBase_.partition_drops);
  s.injected_dups = f.duplicates - faultBase_.duplicates;
  const RunningStat b = fabric_->batchSizeBytes();
  // Window mean from cumulative sums.
  const double cnt = double(b.count()) - double(batchBase_.count());
  s.avg_batch_bytes = cnt > 0 ? (b.sum() - batchBase_.sum()) / cnt : 0.0;
  return s;
}

void Cluster::resetStats() {
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    opBase_[i] = nodes_[i]->opStats();
    devBase_[i] = nodes_[i]->device().stats();
  }
  fabricBase_ = fabric_->total();
  batchBase_ = fabric_->batchSizeBytes();
  relBase_ = fabric_->reliabilityStats();
  faultBase_ = fabric_->faultStats();
}

}  // namespace gravel::rt
