#include "runtime/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/backoff.hpp"
#include "common/error.hpp"
#include "obs/trace_export.hpp"

namespace gravel::rt {

namespace {

std::uint64_t wallClockMs() {
  return std::uint64_t(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

bool envTruthy(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      tracer_(config.obs),
      allocator_(config.heap_bytes),
      resolvedBase_(config.nodes, 0),
      opBase_(config.nodes),
      devBase_(config.nodes),
      aggBase_(config.nodes) {
  // Degenerate configurations (zero-capacity per-node queues, zero
  // aggregator threads, zero-size GPU queue, ...) fail here with an
  // actionable message instead of misbehaving deep in the pipeline.
  config_.validate();
  // GRAVEL_FAULT_* environment overrides may activate fault injection on a
  // cluster whose compiled-in config is fault-free, so apply them before
  // choosing the wire.
  config_.fault.applyEnvOverrides();
  // Live-telemetry overrides (README "Watching a live run"): the same
  // binary becomes watchable without a recompile. GRAVEL_STATUS_PORT
  // implies the collector — gravel-top's rate columns come from windows.
  if (envTruthy("GRAVEL_TIMESERIES")) config_.timeseries.enabled = true;
  if (const char* env = std::getenv("GRAVEL_TIMESERIES_PERIOD_MS")) {
    const long ms = std::atol(env);
    if (ms > 0) config_.timeseries.period = std::chrono::milliseconds(ms);
  }
  if (const char* env = std::getenv("GRAVEL_STATUS_PORT")) {
    const long port = std::atol(env);
    if (port >= 0 && port <= 65535) {
      config_.status_server.enabled = true;
      config_.status_server.port = std::uint16_t(port);
      config_.timeseries.enabled = true;
    }
  }
  // Continuous profiler (README "Profiling a run"): region attribution and
  // the process-wide named-mutex contention table switch on together —
  // lock-wait histograms without cycle attribution answer half the
  // question.
  if (envTruthy("GRAVEL_PROFILE")) config_.profiler.enabled = true;
  if (config_.profiler.enabled) {
    profiler_.setEnabled(true);
    // The contention table is process-global; window it to this cluster's
    // lifetime so sequential profiled runs in one process (the bench
    // sweeps) don't inherit each other's wait totals.
    lockprof::reset();
    lockprof::setEnabled(true);
  }
  if (config_.fault.active())
    wire_ = std::make_unique<net::FaultyFabric>(config_.nodes, config_.fault);
  else
    wire_ = std::make_unique<net::PerfectFabric>(config_.nodes);
  if (config_.reliability.enabled) {
    reliable_ =
        std::make_unique<net::ReliableFabric>(*wire_, config_.reliability);
    fabric_ = reliable_.get();
  } else {
    fabric_ = wire_.get();
  }
  // The top of the stack forwards the tracer down to the wire, so kWireSend
  // events fire at the real transport boundary (retransmissions included).
  fabric_->setTracer(&tracer_);
  if (config_.watchdog.enabled)
    watchdog_ = std::make_unique<obs::Watchdog>(config_.watchdog);
  if (reliable_ &&
      config_.reliability.policy == net::FailurePolicy::kDegrade) {
    membership_ = std::make_unique<Membership>(config_.nodes);
    dlq_ = std::make_unique<net::DeadLetterQueue>(
        config_.nodes, config_.reliability.dlq_capacity);
    reliable_->attachDegrade(membership_.get(), dlq_.get());
  }
  nodes_.reserve(config.nodes);
  for (std::uint32_t i = 0; i < config.nodes; ++i) {
    nodes_.push_back(std::make_unique<NodeRuntime>(i, config_, *fabric_,
                                                   registry_, tracer_,
                                                   &profiler_));
    if (membership_) nodes_.back()->attachAdmission(membership_.get(),
                                                    dlq_.get());
  }
  if (config_.timeseries.enabled)
    timeseries_ = std::make_unique<obs::TimeSeries>(config_.timeseries);
  if (config_.status_server.enabled) {
    statusServer_ = std::make_unique<obs::StatusServer>(
        config_.status_server,
        [this](const std::string& path) { return handleStatusRequest(path); });
    // Telemetry must never take down the workload: a failed bind logs and
    // the run continues without the endpoint.
    if (!statusServer_->start())
      std::fprintf(stderr,
                   "gravel: status server could not bind %s:%u; running "
                   "without the live endpoint\n",
                   config_.status_server.bind_address.c_str(),
                   unsigned(config_.status_server.port));
  }
}

Cluster::~Cluster() {
  // The status server's handlers read cluster state; stop serving first.
  if (statusServer_) statusServer_->stop();
  monitorStop_.store(true, std::memory_order_release);  // pairs-with: cluster.monitor-stop
  if (monitor_.joinable()) monitor_.join();
  // Close the time-series with one final window so the exit artifact covers
  // the run's tail even when the last cadence tick never fired.
  if (timeseries_) {
    collectWindow();
    dumpTimeSeries();
  }
  stopPool();
  for (auto& n : nodes_) n->stopThreads();
  // Exit artifact for a profiled run, written after every instrumented
  // thread has joined so the accumulators are final.
  if (profiler_.enabled()) dumpProfile();
  // Opt-in exit dump: GRAVEL_FLIGHTREC_DUMP=1 writes the flight record even
  // on clean shutdown (CI smoke uses this to validate the artifact).
  if (const char* env = std::getenv("GRAVEL_FLIGHTREC_DUMP"))
    if (*env != '\0' && std::string(env) != "0") dumpFlightRecorder("exit");
}

std::uint32_t Cluster::registerHandler(AmHandler handler) {
  // Registration is legal at any quiescent point (between launches): the
  // registry publishes append-only through an atomic count, so live network
  // threads never observe a partial entry.
  return registry_.add(std::move(handler));
}

void Cluster::ensureThreadsStarted() {
  if (threadsStarted_) return;
  if (config_.runtime_threads > 0) {
    // Cooperative pool (DESIGN.md §14): a 4096-node cluster cannot spawn
    // 8192 dedicated aggregator/network threads, so a fixed pool pumps
    // every node's runtime instead. validate() rejected the combinations
    // (reliability) whose machinery needs the dedicated threads.
    poolStop_.store(false, std::memory_order_relaxed);
    const std::uint32_t threads =
        std::min(config_.runtime_threads, config_.nodes);
    pool_.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t)
      pool_.emplace_back([this, t] { poolLoop(t); });
  } else {
    for (auto& n : nodes_) n->startThreads();
  }
  const bool gauges = tracer_.enabled() && config_.obs.gauge_period.count() > 0;
  if (gauges || watchdog_ || membership_ || timeseries_)
    monitor_ = std::thread([this] { monitorLoop(); });
  threadsStarted_ = true;
}

// One pool thread: owns nodes t, t+P, t+2P, ... exclusively (so the
// aggregator pump and network pumpOnce keep their single-consumer
// contracts) and alternates GPU-queue draining with network resolution.
void Cluster::poolLoop(std::uint32_t t) {
  const std::string name = "pool." + std::to_string(t);
  tracer_.nameThread(name);
  if (profiler_.enabled()) profiler_.nameThread(name);
  const std::uint32_t stride =
      std::min(config_.runtime_threads, config_.nodes);
  std::vector<std::uint32_t> mine;
  for (std::uint32_t i = t; i < config_.nodes; i += stride)
    mine.push_back(i);
  std::vector<SlotRouter::Staging> staging;
  staging.reserve(mine.size());
  for (std::uint32_t i : mine)
    staging.push_back(nodes_[i]->aggregator().makeStaging());
  Backoff backoff(std::chrono::microseconds(200));
  // Time-based timeout cadence: the per-slot cadence inside pump() only
  // advances under load, and an idle pass over hundreds of nodes is much
  // longer than one dedicated thread's poll loop, so the pool re-checks on
  // a fraction of the flush timeout instead.
  const auto timeoutPeriod = config_.flush_timeout / 4;
  auto nextTimeout = std::chrono::steady_clock::now();
  // pairs-with: cluster.pool-stop
  while (!poolStop_.load(std::memory_order_acquire)) {
    bool busy = false;
    {
      // One pump pass over this thread's nodes; the per-node aggregator
      // and network regions nest underneath for path-level attribution.
      obs::ScopedRegion pumpRegion(&profiler_, obs::Region::kPoolPump);
      for (std::size_t k = 0; k < mine.size(); ++k) {
        NodeRuntime& n = *nodes_[mine[k]];
        busy |= n.aggregator().pump(staging[k], /*maxSlots=*/8) > 0;
        busy |= n.network().pumpOnce();
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= nextTimeout) {
        for (std::uint32_t i : mine) nodes_[i]->aggregator().checkTimeouts();
        nextTimeout = now + timeoutPeriod;
      }
    }
    if (busy) {
      backoff.reset();
    } else {
      obs::ScopedRegion idleRegion(&profiler_, obs::Region::kIdle);
      backoff.wait();
    }
  }
  // Final drain, mirroring the dedicated threads' stopped-drain: route
  // whatever the GPU queues still hold, flush it, then resolve the wire
  // until dry. stopPool() is only called after producers quiesced.
  for (std::size_t k = 0; k < mine.size(); ++k)
    while (nodes_[mine[k]]->aggregator().pump(staging[k], 64) > 0) {
    }
  for (std::uint32_t i : mine) nodes_[i]->aggregator().flushAll();
  bool drained = false;
  while (!drained) {
    drained = true;
    for (std::uint32_t i : mine)
      if (nodes_[i]->network().pumpOnce()) drained = false;
  }
}

void Cluster::stopPool() {
  if (pool_.empty()) return;
  // Release pairs with the pool threads' acquire loads: everything
  // published before the stop request is visible to their final drains.
  poolStop_.store(true, std::memory_order_release);  // pairs-with: cluster.pool-stop
  for (auto& w : pool_)
    if (w.joinable()) w.join();
  pool_.clear();
}

// --- graceful degradation ---------------------------------------------------

void Cluster::crashNode(std::uint32_t n) {
  GRAVEL_CHECK_MSG(membership_ != nullptr,
                   "crashNode requires reliability.policy == kDegrade");
  GRAVEL_CHECK_MSG(n < config_.nodes, "crashNode: bad node id");
  ensureThreadsStarted();
  if (!membership_->declareDead(n, "crashNode() injected")) return;
  // Stop (and join) the node's network thread first: afterwards its
  // resolution level is final, so excision settles sender-side copies
  // against the truth — resolved counts delivered, the rest dead-letters.
  // The aggregator deliberately keeps running: GPU queues keep draining
  // (the proxy-thread property) and its sends dead-letter at the breaker.
  nodes_[n]->network().stop();
  reliable_->exciseNode(n, /*receiverStopped=*/true);
}

void Cluster::restartNode(std::uint32_t n) {
  GRAVEL_CHECK_MSG(membership_ != nullptr,
                   "restartNode requires reliability.policy == kDegrade");
  GRAVEL_CHECK_MSG(n < config_.nodes, "restartNode: bad node id");
  GRAVEL_CHECK_MSG(membership_->dead(n),
                   "restartNode: node is not dead (crashNode it first, or "
                   "let the failure detector excise it)");
  // Epoch bump first, then the link re-sync (another era bump): any frame
  // of the dead incarnation still sitting in wire inboxes is provably
  // stale-era when it finally drains.
  membership_->restart(n, "restartNode() injected");
  reliable_->resetNode(n);
  // resetNode() re-closed every link touching n — including links whose
  // other endpoint is still dead. Re-excise those peers, or traffic between
  // n and a dead peer would retransmit into the void (n's sends never trip
  // a generous retry budget, the peer's sends are never polled) instead of
  // dead-lettering, wedging quiet() until its deadline.
  for (std::uint32_t d : membership_->deadNodes())
    reliable_->exciseNode(d, /*receiverStopped=*/!threadsStarted_ ||
                                 !nodes_[d]->network().running());
  // A crashNode()-stopped network thread restarts; a detector-excised
  // node's thread never died and keeps running.
  if (threadsStarted_ && !nodes_[n]->network().running())
    nodes_[n]->network().start();
  // Pay back what the cluster owes the node (and what it owed others).
  reliable_->redeliver(n);
}

void Cluster::launchAll(std::uint64_t gridPerNode, std::uint32_t wgSize,
                        const NodeKernel& kernel) {
  launchAll(std::vector<std::uint64_t>(config_.nodes, gridPerNode), wgSize,
            kernel);
}

void Cluster::launchAll(const std::vector<std::uint64_t>& grids,
                        std::uint32_t wgSize, const NodeKernel& kernel) {
  GRAVEL_CHECK_MSG(grids.size() == config_.nodes,
                   "one grid size per node required");
  ensureThreadsStarted();
  std::vector<std::thread> gpus;
  std::vector<std::exception_ptr> errors(config_.nodes);
  gpus.reserve(config_.nodes);
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    gpus.emplace_back([this, i, &grids, wgSize, &kernel, &errors] {
      try {
        if (grids[i] == 0) return;
        tracer_.nameThread("gpu." + std::to_string(i));
        node(i).device().launch(
            {grids[i], wgSize},
            [this, i, &kernel](simt::WorkItem& wi) { kernel(i, wi); });
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : gpus) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  quiet();
}

void Cluster::hostParallel(const std::function<void(std::uint32_t)>& work) {
  ensureThreadsStarted();
  std::vector<std::thread> hosts;
  std::vector<std::exception_ptr> errors(config_.nodes);
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    hosts.emplace_back([i, &work, &errors] {
      try {
        work(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : hosts) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  quiet();
}

void Cluster::quietDeadlineExpired(const char* stage) {
  // A hang post-mortem built from the metrics-registry snapshot: which wait
  // stalled, how deep every pipeline stage is, and — with a reliability
  // layer — which link is stuck and which sequence range it still owes.
  const obs::MetricsSnapshot snap = collectMetrics();
  std::ostringstream os;
  os << "quiet deadline (" << config_.quiet_deadline.count()
     << " ms) expired while " << stage << ". " << fabric_->describePending();
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    const std::string node = "node=" + std::to_string(i);
    os << "; node " << i << ": aggregator "
       << std::uint64_t(snap.number("agg.slots_processed", node)) << "/"
       << std::uint64_t(snap.number("gpu_queue.slots_reserved", node))
       << " slots routed";
  }
  // Stalled links, from the registry's per-link reliability gauges.
  for (const auto& [key, m] : snap.metrics) {
    if (key.first != "rel.link_unacked") continue;
    const std::string& link = key.second;  // "link=S->D"
    os << "; stalled " << link << ": " << std::uint64_t(m.value)
       << " unacked, oldest seq "
       << std::uint64_t(snap.number("rel.link_oldest_seq", link))
       << ", next seq "
       << std::uint64_t(snap.number("rel.link_next_seq", link))
       << ", retries "
       << std::uint64_t(snap.number("rel.link_retries", link));
  }
  os << "; registry captured " << snap.metrics.size() << " metric(s)";
  // Degraded-mode context: "link excised by failure policy" (breaker open,
  // traffic dead-lettering by design) is a different situation from "quiet
  // deadline expired" on a healthy link, and the post-mortem must not
  // conflate them. describePending() above already lists excised links; add
  // the membership view so the reader sees which *nodes* are out.
  if (membership_) {
    for (std::uint32_t n : membership_->deadNodes())
      os << "; node " << n << " excised by failure policy (dead, epoch "
         << membership_->epoch(n) << ") — its traffic dead-letters instead "
         << "of completing; this deadline expiry is about the remaining "
         << "live links";
    const net::DeadLetterStats d = dlq_->stats();
    if (d.rejected != 0)
      os << "; admission control rejected " << d.rejected
         << " operation(s) at enqueue";
  }
  // The watchdog has been sampling all along: its diagnoses say *which*
  // queue/buffer/link stalled and since when, which the counters above only
  // imply.
  if (watchdog_) os << "; " << watchdog_->describe();
  dumpFlightRecorder("quiet-deadline");
  GRAVEL_CHECK_MSG(false, os.str());
}

void Cluster::quiet() {
  if (!threadsStarted_) return;
  const bool bounded = config_.quiet_deadline.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        config_.quiet_deadline;
  const auto check = [&](const char* stage) {
    if (auto f = fabric_->failure()) {
      dumpFlightRecorder("link-failure");
      throw net::LinkFailureError(*f);
    }
    if (bounded && std::chrono::steady_clock::now() >= deadline)
      quietDeadlineExpired(stage);
  };
  Backoff backoff;
  // 1. Every reserved GPU-queue slot must be routed by the aggregator.
  for (auto& n : nodes_) {
    while (n->aggregator().slotsProcessed() < n->queue().reservedCount()) {
      check("waiting for aggregators to drain the GPU queues");
      backoff.wait();
    }
  }
  // 2. Push every partially-filled per-node queue onto the wire.
  for (auto& n : nodes_) n->aggregator().flushAll();
  // 3. Wait until every message in flight has been resolved at its home —
  // and, with the reliability layer, acknowledged back to its sender, so a
  // dropped or duplicated batch can never fake completion.
  backoff.reset();
  while (!fabric_->quiescent()) {
    check("waiting for in-flight messages to resolve");
    backoff.wait();
  }
  // A retry budget can exhaust in the instant quiescence is observed
  // elsewhere; surface it rather than silently succeeding.
  if (auto f = fabric_->failure()) {
    dumpFlightRecorder("link-failure");
    throw net::LinkFailureError(*f);
  }
}

ClusterRunStats Cluster::runStats() const {
  ClusterRunStats s;
  s.nodes = config_.nodes;
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    const NodeOpStats& op = nodes_[i]->opStats();
    const NodeOpStats& ob = opBase_[i];
    s.put_local += op.put_local - ob.put_local;
    s.put_remote += op.put_remote - ob.put_remote;
    s.inc_local += op.inc_local - ob.inc_local;
    s.inc_remote += op.inc_remote - ob.inc_remote;
    s.am_local += op.am_local - ob.am_local;
    s.am_remote += op.am_remote - ob.am_remote;

    const simt::DeviceStats& d = nodes_[i]->device().stats();
    const simt::DeviceStats& db = devBase_[i];
    s.lanes_executed += d.lanes_executed - db.lanes_executed;
    s.workgroups_executed += d.workgroups_executed - db.workgroups_executed;
    s.collective_ops += d.collective_ops - db.collective_ops;
    s.collective_arrivals += d.collective_arrivals - db.collective_arrivals;
    s.active_arrivals += d.active_arrivals - db.active_arrivals;
    s.predication_overhead_ops +=
        d.predication_overhead_ops - db.predication_overhead_ops;

    Aggregator& agg = nodes_[i]->aggregator();
    const AggBase& ab = aggBase_[i];
    s.agg_slots += agg.slotsProcessedStat() - ab.slots;
    s.agg_lock_acquisitions += agg.lockAcquisitions() - ab.locks;
    s.agg_dests_touched += agg.destsTouched() - ab.dests;
    s.agg_timeout_scanned += agg.timeoutScanned() - ab.timeout_scanned;
    // Levels, not windowed deltas: resident footprint is a gauge and the
    // staging peak a high-water mark (merge() takes the max of both).
    s.agg_lazy_buffers += agg.lazyBuffers();
    s.agg_resident_bytes += agg.residentBufferBytes();
    s.agg_staging_bytes_peak =
        std::max(s.agg_staging_bytes_peak, agg.stagingBytesPeak());

    s.net_resolved += nodes_[i]->network().messagesResolved() -
                      resolvedBase_[i];
  }
  const net::LinkStats t = fabric_->total();
  s.net_batches = t.batches - fabricBase_.batches;
  s.net_messages = t.messages - fabricBase_.messages;
  s.net_bytes = t.bytes - fabricBase_.bytes;
  s.retransmits = t.retransmits - fabricBase_.retransmits;
  s.dup_drops = t.dup_drops - fabricBase_.dup_drops;
  s.acks = t.acks - fabricBase_.acks;
  const net::ReliabilityStats r = fabric_->reliabilityStats();
  s.acks_sent = r.acks_sent - relBase_.acks_sent;
  s.reorder_drops = r.reorder_drops - relBase_.reorder_drops;
  s.reorder_peak = r.reorder_peak;  // high-water mark, not a delta
  s.breaker_trips = r.breaker_trips - relBase_.breaker_trips;
  s.probes = r.probes - relBase_.probes;
  s.stale_data_drops = r.stale_data_drops - relBase_.stale_data_drops;
  s.stale_ack_drops = r.stale_ack_drops - relBase_.stale_ack_drops;
  if (membership_) {
    for (std::uint32_t n : membership_->deadNodes())
      s.degraded.dead_nodes.push_back({n, membership_->epoch(n)});
    // Links excised at window end, mirroring dead_nodes. A breaker that
    // tripped and re-closed within the window is not listed — its damage
    // shows in breaker_trips and the dead-letter deltas — so a healed
    // cluster's later windows stop reporting degraded().
    for (const auto& b : reliable_->breakerStates())
      if (b.state != net::BreakerState::kClosed)
        s.degraded.tripped_links.push_back(
            {b.src, b.dst, std::uint8_t(b.state), b.era});
    const net::DeadLetterStats d = dlq_->stats();
    s.degraded.dead_lettered = d.dead_lettered - dlqBase_.dead_lettered;
    s.degraded.redelivered = d.redelivered - dlqBase_.redelivered;
    s.degraded.rejected = d.rejected - dlqBase_.rejected;
    s.degraded.evicted = d.evicted - dlqBase_.evicted;
  }
  const net::FaultStats f = fabric_->faultStats();
  s.injected_drops =
      (f.drops + f.partition_drops) - (faultBase_.drops +
                                       faultBase_.partition_drops);
  s.injected_dups = f.duplicates - faultBase_.duplicates;
  const RunningStat b = fabric_->batchSizeBytes();
  // Window mean from cumulative sums.
  const double cnt = double(b.count()) - double(batchBase_.count());
  s.avg_batch_bytes = cnt > 0 ? (b.sum() - batchBase_.sum()) / cnt : 0.0;

  // Latency attribution over the sampled messages. Histograms are
  // cumulative over the cluster's lifetime (quantiles cannot be windowed
  // the way the counters above are); benches that want per-workload numbers
  // build a fresh cluster per workload.
  {
    gravel::lock_guard lk(latencyMutex_);
    latency_.ingest(tracer_);
    const obs::LatencyAttribution::Summary ls = latency_.summary();
    for (int t = 0; t < ClusterRunStats::kLatTransitions; ++t) {
      s.lat_stage_p50_ns[t] = ls.stage_p50_ns[t];
      s.lat_stage_p99_ns[t] = ls.stage_p99_ns[t];
    }
    s.lat_e2e_p50_ns = ls.e2e_p50_ns;
    s.lat_e2e_p99_ns = ls.e2e_p99_ns;
    s.lat_samples = ls.e2e_count;
  }

  // Profiler roll-up (cluster-lifetime, like the quantiles above): summed
  // duty split plus the named-mutex contention totals behind the bench
  // harness's CPU-efficiency columns.
  if (profiler_.enabled()) {
    for (const obs::Profiler::ThreadSample& t : profiler_.sample()) {
      s.prof_busy_ns += t.busy_ns;
      s.prof_idle_ns += t.idle_ns;
    }
    lockprof::forEachSite([&s](const lockprof::SiteSample& site) {
      s.prof_lock_wait_ns += site.wait_ns_total;
      s.prof_lock_acquisitions += site.acquisitions;
    });
  }

  // Time-series roll-up: sustained (median-window) vs. peak message rate
  // over the retained ring. Like the quantiles above, these are ring-
  // lifetime values rather than windowed by resetStats().
  if (timeseries_) {
    const std::vector<obs::TimeSeriesWindow> wins = timeseries_->windows();
    std::vector<double> rates;
    rates.reserve(wins.size());
    for (const obs::TimeSeriesWindow& w : wins)
      if (w.seconds() > 0) rates.push_back(w.ratePerSec("fabric.messages"));
    s.ts_windows = wins.size();
    if (!rates.empty()) {
      std::sort(rates.begin(), rates.end());
      s.ts_msgs_per_s_p50 = rates[rates.size() / 2];
      s.ts_msgs_per_s_peak = rates.back();
    }
  }
  return s;
}

void Cluster::resetStats() {
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    opBase_[i] = nodes_[i]->opStats();
    devBase_[i] = nodes_[i]->device().stats();
    Aggregator& agg = nodes_[i]->aggregator();
    aggBase_[i] = {agg.slotsProcessedStat(), agg.lockAcquisitions(),
                   agg.destsTouched(), agg.timeoutScanned()};
  }
  fabricBase_ = fabric_->total();
  batchBase_ = fabric_->batchSizeBytes();
  relBase_ = fabric_->reliabilityStats();
  faultBase_ = fabric_->faultStats();
  for (std::uint32_t i = 0; i < config_.nodes; ++i)
    resolvedBase_[i] = nodes_[i]->network().messagesResolved();
  if (dlq_) dlqBase_ = dlq_->stats();
}

// --- observability ---------------------------------------------------------

// The run's ONE sampling thread, with up to four duties on independent
// cadences: gauge sampling + online latency ingest (tracer cadence,
// config.obs.gauge_period), watchdog sampling (config.watchdog.period), the
// membership failure detector (config.membership.probe_period, degrade
// policy only) and the time-series collector (config.timeseries.period).
// The first three consume the same runtime surface — queue progress, buffer
// fills/ages, link send states — so duties due on the same tick share one
// pipeline sample instead of each re-reading the runtime on its own timer
// (ISSUE 7 satellite: one sampler per run). Sleeps are capped so a stop
// request is honoured promptly even under long cadences.
void Cluster::monitorLoop() {
  using clock = std::chrono::steady_clock;
  tracer_.nameThread("monitor");
  if (profiler_.enabled()) profiler_.nameThread("monitor");
  const bool gauges = tracer_.enabled() && config_.obs.gauge_period.count() > 0;
  auto nextGauge = clock::now();
  auto nextWatch = clock::now();
  auto nextProbe = clock::now();
  auto nextWindow = clock::now();
  // pairs-with: cluster.monitor-stop
  while (!monitorStop_.load(std::memory_order_acquire)) {
    const auto now = clock::now();
    const bool gaugeDue = gauges && now >= nextGauge;
    const bool watchDue = watchdog_ && now >= nextWatch;
    const bool probeDue = membership_ && now >= nextProbe;
    const bool windowDue = timeseries_ && now >= nextWindow;
    const bool anyDue = gaugeDue || watchDue || probeDue || windowDue;
    if (anyDue) {
      obs::ScopedRegion tickRegion(&profiler_, obs::Region::kMonitorTick);
      if (gaugeDue || watchDue || probeDue) {
        const obs::WatchdogSample s = samplePipeline();
        if (gaugeDue) {
          sampleGauges(s);
          ingestLatency();
          nextGauge = now + config_.obs.gauge_period;
        }
        if (watchDue) {
          watchdog_->observe(s);
          nextWatch = now + config_.watchdog.period;
        }
        if (probeDue) {
          sampleMembership(s);
          nextProbe = now + config_.membership.probe_period;
        }
      }
      if (windowDue) {
        collectWindow();
        nextWindow = now + config_.timeseries.period;
      }
    }
    auto wake = clock::time_point::max();
    if (gauges) wake = std::min(wake, nextGauge);
    if (watchdog_) wake = std::min(wake, nextWatch);
    if (membership_) wake = std::min(wake, nextProbe);
    if (timeseries_) wake = std::min(wake, nextWindow);
    const auto end = clock::now();
    if (anyDue) {
      // Self-overhead accounting: how long the duty work held the sampling
      // thread, and whether it blew straight through the next deadline (an
      // overrun means a cadence is too tight for the cluster size).
      const std::uint64_t tick_ns = std::uint64_t(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - now)
              .count());
      monitorTicks_.fetch_add(1, std::memory_order_relaxed);
      monitorTickNsTotal_.fetch_add(tick_ns, std::memory_order_relaxed);
      if (tick_ns > monitorTickNsMax_.load(std::memory_order_relaxed))
        monitorTickNsMax_.store(tick_ns, std::memory_order_relaxed);
      if (end >= wake)
        monitorTickOverruns_.fetch_add(1, std::memory_order_relaxed);
    }
    const auto cap = end + std::chrono::milliseconds(10);
    std::this_thread::sleep_until(std::min(wake, cap));
  }
}

// One pass over the pipeline's sampling surface — GPU-queue progress,
// nonempty aggregation buffers (fill + age), reliable-link send states —
// shared by every monitor duty due on the same tick.
obs::WatchdogSample Cluster::samplePipeline() {
  obs::WatchdogSample s;
  s.now_ns = tracer_.nowNs();
  s.queues.reserve(config_.nodes);
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    NodeRuntime& n = *nodes_[i];
    s.queues.push_back({i, n.queue().reservedCount(),
                        n.aggregator().slotsProcessedStat()});
    n.aggregator().sampleBufferAges(
        [&](std::uint32_t dst, std::uint64_t fill, std::uint64_t age_ns) {
          s.buffers.push_back({i, dst, fill, age_ns});
        });
  }
  if (reliable_) {
    for (const auto& ls : reliable_->sendStates())
      s.links.push_back({ls.src, ls.dst, ls.unacked, ls.oldest_seq,
                         ls.next_seq, ls.retries, ls.stalled_ns,
                         std::uint8_t(ls.breaker),
                         membership_ ? membership_->epoch(ls.dst) : 0});
  }
  return s;
}

// The stall-driven half of the failure detector: a link that has made no
// cumulative-ACK progress for membership.suspect_after marks its
// *destination* suspect. Suspicion alone never kills — the circuit breaker
// corroborates it when the same link's retry budget exhausts (tripLink), and
// ACK progress clears it (applyAck). A dead source's view does not vote.
void Cluster::sampleMembership(const obs::WatchdogSample& s) {
  const auto threshold =
      std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        config_.membership.suspect_after)
                        .count());
  for (const obs::LinkSample& ls : s.links) {
    if (ls.stalled_ns < threshold) continue;
    if (membership_->dead(ls.src) || membership_->dead(ls.dst)) continue;
    membership_->suspect(ls.dst, "link " + std::to_string(ls.src) + "->" +
                                     std::to_string(ls.dst) +
                                     " made no ACK progress for " +
                                     std::to_string(ls.stalled_ns / 1000000) +
                                     " ms");
  }
}

void Cluster::ingestLatency() {
  gravel::lock_guard lk(latencyMutex_);
  latency_.ingest(tracer_);
}

void Cluster::sampleGauges(const obs::WatchdogSample& s) {
  // Per-destination aggregation buffer fills (the shared sample lists
  // nonempty buffers only), rolled up per node for the fill gauge.
  std::vector<std::uint64_t> buffered(config_.nodes, 0);
  for (const obs::BufferSample& b : s.buffers) {
    buffered[b.node] += b.fill;
    metrics_.observeHistogram("agg.buffer_fill",
                              "node=" + std::to_string(b.node), b.fill);
  }
  for (const obs::QueueSample& q : s.queues) {
    // Gravel-queue slots reserved by producers but not yet routed.
    const std::uint64_t depth =
        q.reserved > q.routed ? q.reserved - q.routed : 0;
    tracer_.recordGauge(obs::Gauge::kGpuQueueDepth, std::uint16_t(q.node),
                        depth);
    metrics_.observeHistogram("gpu_queue.depth",
                              "node=" + std::to_string(q.node), depth);
    tracer_.recordGauge(obs::Gauge::kAggBufferFill, std::uint16_t(q.node),
                        buffered[q.node]);
  }

  // Fabric depth: unresolved batches (unacked, with a reliability layer).
  // Two atomic loads — cheaper read directly than carried in the sample.
  const std::uint64_t pending = fabric_->pendingCount();
  tracer_.recordGauge(obs::Gauge::kFabricPending, 0, pending);
  metrics_.observeHistogram("fabric.pending", "", pending);
  if (reliable_) {
    const std::uint64_t reorder = reliable_->reorderDepth();
    tracer_.recordGauge(obs::Gauge::kReorderDepth, 0, reorder);
    metrics_.observeHistogram("rel.reorder_depth", "", reorder);
  }
}

obs::MetricsSnapshot Cluster::collectMetrics() {
  // Per-node pipeline counters.
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    const std::string node = "node=" + std::to_string(i);
    NodeRuntime& n = *nodes_[i];
    const NodeOpStats& op = n.opStats();
    metrics_.setCounter("ops.put_local", node, op.put_local);
    metrics_.setCounter("ops.put_remote", node, op.put_remote);
    metrics_.setCounter("ops.inc_local", node, op.inc_local);
    metrics_.setCounter("ops.inc_remote", node, op.inc_remote);
    metrics_.setCounter("ops.am_local", node, op.am_local);
    metrics_.setCounter("ops.am_remote", node, op.am_remote);
    metrics_.setCounter("gpu_queue.slots_reserved", node,
                        n.queue().reservedCount());
    metrics_.setCounter("gpu_queue.atomic_rmws", node,
                        n.queue().atomicRmwCount());
    metrics_.setCounter("agg.slots_processed", node,
                        n.aggregator().slotsProcessedStat());
    metrics_.setCounter("agg.messages_routed", node,
                        n.aggregator().messagesRouted());
    metrics_.setCounter("agg.polls", node, n.aggregator().pollCount());
    metrics_.setCounter("agg.lock_acquisitions", node,
                        n.aggregator().lockAcquisitions());
    metrics_.setCounter("agg.dests_touched", node,
                        n.aggregator().destsTouched());
    metrics_.setCounter("agg.timeout_scanned", node,
                        n.aggregator().timeoutScanned());
    metrics_.setCounter("agg.lazy_buffers", node,
                        n.aggregator().lazyBuffers());
    metrics_.setGauge("agg.resident_bytes", node,
                      double(n.aggregator().residentBufferBytes()));
    metrics_.setGauge("agg.staging_peak_bytes", node,
                      double(n.aggregator().stagingBytesPeak()));
    metrics_.setGauge("agg.shards", node, double(n.aggregator().shardCount()));
    metrics_.setCounter("net.messages_resolved", node,
                        n.network().messagesResolved());
  }

  // Fabric totals and per-link traffic (nonzero links only; app-level view).
  const net::LinkStats t = fabric_->total();
  metrics_.setCounter("fabric.batches", "", t.batches);
  metrics_.setCounter("fabric.messages", "", t.messages);
  metrics_.setCounter("fabric.bytes", "", t.bytes);
  metrics_.setCounter("fabric.retransmits", "", t.retransmits);
  metrics_.setCounter("fabric.dup_drops", "", t.dup_drops);
  metrics_.setCounter("fabric.acks", "", t.acks);
  metrics_.setGauge("fabric.pending_now", "", double(fabric_->pendingCount()));
  metrics_.setStat("fabric.batch_bytes", "", fabric_->batchSizeBytes());
  // Sparse walk (forEachLink): O(links touched), not O(nodes^2) — at 4096
  // nodes the dense double loop alone was 16M fabric queries per collect.
  fabric_->forEachLink([this](std::uint32_t src, std::uint32_t dst,
                              const net::LinkStats& l) {
    if (l.batches == 0) return;
    const std::string link =
        "link=" + std::to_string(src) + "->" + std::to_string(dst);
    metrics_.setCounter("link.batches", link, l.batches);
    metrics_.setCounter("link.messages", link, l.messages);
    metrics_.setCounter("link.bytes", link, l.bytes);
    if (l.retransmits)
      metrics_.setCounter("link.retransmits", link, l.retransmits);
  });

  const net::ReliabilityStats r = fabric_->reliabilityStats();
  metrics_.setCounter("rel.acks_sent", "", r.acks_sent);
  metrics_.setCounter("rel.reorder_drops", "", r.reorder_drops);
  metrics_.setGauge("rel.reorder_peak", "", double(r.reorder_peak));
  metrics_.setCounter("rel.breaker_trips", "", r.breaker_trips);
  metrics_.setCounter("rel.probes", "", r.probes);
  metrics_.setCounter("rel.stale_data_drops", "", r.stale_data_drops);
  metrics_.setCounter("rel.stale_ack_drops", "", r.stale_ack_drops);
  if (reliable_) {
    for (const auto& ls : reliable_->sendStates()) {
      const std::string link =
          "link=" + std::to_string(ls.src) + "->" + std::to_string(ls.dst);
      metrics_.setGauge("rel.link_unacked", link, double(ls.unacked));
      metrics_.setGauge("rel.link_oldest_seq", link, double(ls.oldest_seq));
      metrics_.setGauge("rel.link_next_seq", link, double(ls.next_seq));
      metrics_.setGauge("rel.link_retries", link, double(ls.retries));
    }
    for (const auto& b : reliable_->breakerStates()) {
      const std::string link =
          "link=" + std::to_string(b.src) + "->" + std::to_string(b.dst);
      metrics_.setGauge("rel.link_breaker", link, double(std::uint8_t(b.state)));
      metrics_.setGauge("rel.link_era", link, double(b.era));
    }
  }

  // Membership / dead-letter accounting (degrade policy only).
  if (membership_) {
    for (std::uint32_t i = 0; i < config_.nodes; ++i) {
      const std::string node = "node=" + std::to_string(i);
      metrics_.setGauge("health.state", node,
                        double(std::uint8_t(membership_->health(i))));
      metrics_.setGauge("health.epoch", node, double(membership_->epoch(i)));
    }
    metrics_.setGauge("health.live_nodes", "",
                      double(membership_->liveCount()));
    metrics_.setCounter("health.transitions", "",
                        membership_->version());
    const net::DeadLetterStats d = dlq_->stats();
    metrics_.setCounter("dlq.dead_lettered", "", d.dead_lettered);
    metrics_.setCounter("dlq.redelivered", "", d.redelivered);
    metrics_.setCounter("dlq.rejected", "", d.rejected);
    metrics_.setCounter("dlq.evicted", "", d.evicted);
    metrics_.setGauge("dlq.stored", "", double(d.stored));
  }

  // The collector watching itself: windows taken over the run's lifetime
  // and how many fell off the bounded ring.
  if (timeseries_) {
    metrics_.setCounter("ts.windows_total",
                        "", timeseries_->size() + timeseries_->droppedWindows());
    metrics_.setCounter("ts.dropped_windows", "",
                        timeseries_->droppedWindows());
  }

  // Monitor-loop self-overhead: the sampling thread watching itself. An
  // overrun is a tick whose duty work ran past the next computed wake.
  {
    const std::uint64_t ticks = monitorTicks_.load(std::memory_order_relaxed);
    if (ticks != 0) {
      metrics_.setCounter("monitor.ticks", "", ticks);
      metrics_.setCounter("monitor.tick_overruns", "",
                          monitorTickOverruns_.load(std::memory_order_relaxed));
      const std::uint64_t total =
          monitorTickNsTotal_.load(std::memory_order_relaxed);
      metrics_.setGauge("monitor.tick_avg_ns", "",
                        double(total) / double(ticks));
      metrics_.setGauge("monitor.tick_max_ns", "",
                        double(monitorTickNsMax_.load(
                            std::memory_order_relaxed)));
    }
  }

  // Continuous profiler (DESIGN.md §15): per-thread duty cycles, per-path
  // self time, and the named-mutex contention table. Collected only while
  // profiling so a default run's registry carries no prof.* noise.
  if (profiler_.enabled()) {
    for (const obs::Profiler::ThreadSample& t : profiler_.sample()) {
      const std::string thread = "thread=" + t.name;
      metrics_.setCounter("prof.busy_ns", thread, t.busy_ns);
      metrics_.setCounter("prof.idle_ns", thread, t.idle_ns);
      const std::uint64_t span = t.busy_ns + t.idle_ns;
      metrics_.setGauge("prof.duty", thread,
                        span == 0 ? 0.0 : double(t.busy_ns) / double(span));
      metrics_.setCounter("prof.dropped", thread, t.dropped);
      for (const obs::Profiler::PathSample& p : t.paths) {
        std::string path = thread + ",path=";
        for (int level = 0; level < p.depth; ++level) {
          if (level != 0) path += ';';
          path += obs::regionName(p.stack[level]);
        }
        metrics_.setCounter("prof.path_count", path, p.count);
        metrics_.setCounter("prof.path_self_ns", path, p.self_ns);
      }
    }
    lockprof::forEachSite([this](const lockprof::SiteSample& s) {
      const std::string site = "site=" + std::string(s.name);
      metrics_.setCounter("prof.lock_acquisitions", site, s.acquisitions);
      metrics_.setCounter("prof.lock_contended", site, s.contended);
      metrics_.setCounter("prof.lock_wait_ns", site, s.wait_ns_total);
      metrics_.setGauge("prof.lock_wait_p50_ns", site,
                        s.waitQuantileNs(0.50));
      metrics_.setGauge("prof.lock_wait_p99_ns", site,
                        s.waitQuantileNs(0.99));
    });
  }

  const net::FaultStats f = fabric_->faultStats();
  metrics_.setCounter("fault.drops", "", f.drops);
  metrics_.setCounter("fault.partition_drops", "", f.partition_drops);
  metrics_.setCounter("fault.duplicates", "", f.duplicates);
  metrics_.setCounter("fault.reorders", "", f.reorders);
  metrics_.setCounter("fault.delays", "", f.delays);

  // Trace-derived stage latencies (sampled messages only).
  if (tracer_.enabled()) {
    const obs::StageLatencies lat = obs::stageLatencies(tracer_);
    for (int st = 0; st + 1 < obs::kMessageStages; ++st) {
      const std::string name =
          std::string("trace.latency_ns.") +
          obs::stageName(obs::Stage(st)) + "_to_" +
          obs::stageName(obs::Stage(st + 1));
      if (lat.stage[st].count()) metrics_.setStat(name, "", lat.stage[st]);
    }
    if (lat.end_to_end.count())
      metrics_.setStat("trace.latency_ns.end_to_end", "", lat.end_to_end);
    metrics_.setCounter("trace.candidates", "", tracer_.sampledCandidates());
    metrics_.setCounter("trace.dropped_events", "", tracer_.droppedEvents());
  }

  // Per-stage latency attribution (lat.*) and watchdog diagnoses.
  {
    gravel::lock_guard lk(latencyMutex_);
    latency_.ingest(tracer_);
    latency_.publish(metrics_);
  }
  if (watchdog_) watchdog_->publish(metrics_);

  return metrics_.snapshot();
}

void Cluster::writeTrace(std::ostream& os) const {
  obs::writeChromeTrace(os, tracer_);
}

void Cluster::writeMetricsJson(std::ostream& os) {
  collectMetrics().toJson(os);
}

void Cluster::writeMetricsCsv(std::ostream& os) {
  collectMetrics().toCsv(os);
}

void Cluster::writeFlightRecorder(std::ostream& os,
                                  const std::string& reason) const {
  // Under the degrade policy the dump gains a top-level health/dead-letter
  // block: a post-mortem reader sees breaker and membership state next to
  // the per-thread event rings.
  const auto extra = [this](obs::JsonWriter& w) {
    if (!membership_) return;
    w.key("health").beginArray();
    for (std::uint32_t i = 0; i < config_.nodes; ++i) {
      w.beginObject();
      w.kv("node", std::uint64_t{i});
      w.kv("state", nodeHealthName(membership_->health(i)));
      w.kv("epoch", std::uint64_t{membership_->epoch(i)});
      w.endObject();
    }
    w.endArray();
    w.key("breakers").beginArray();
    for (const auto& b : reliable_->breakerStates()) {
      w.beginObject();
      w.kv("src", std::uint64_t{b.src});
      w.kv("dst", std::uint64_t{b.dst});
      w.kv("state", net::breakerStateName(b.state));
      w.kv("era", std::uint64_t{b.era});
      w.endObject();
    }
    w.endArray();
    const net::DeadLetterStats d = dlq_->stats();
    w.key("dead_letter").beginObject();
    w.kv("dead_lettered", d.dead_lettered);
    w.kv("redelivered", d.redelivered);
    w.kv("rejected", d.rejected);
    w.kv("evicted", d.evicted);
    w.kv("stored", d.stored);
    w.endObject();
  };
  obs::writeFlightRecorderJson(os, tracer_.flightRecorder(), reason,
                               tracer_.nowNs(), extra);
}

void Cluster::writeWatchdog(std::ostream& os) const {
  if (watchdog_) {
    obs::writeWatchdogJson(os, *watchdog_);
    return;
  }
  os << "{\"overflow\": 0, \"diagnoses\": []}";
}

// Takes one time-series window: a full registry refresh, then the flattened
// membership/breaker views the collector diffs into transition tags, plus
// the watchdog diagnoses still open at window end.
void Cluster::collectWindow() {
  const obs::MetricsSnapshot snap = collectMetrics();
  std::vector<obs::HealthSample> health;
  if (membership_) {
    health.reserve(config_.nodes);
    for (std::uint32_t i = 0; i < config_.nodes; ++i)
      health.push_back({i, std::uint8_t(membership_->health(i)),
                        std::uint32_t(membership_->epoch(i))});
  }
  std::vector<obs::BreakerSample> breakers;
  if (reliable_) {
    for (const auto& b : reliable_->breakerStates())
      breakers.push_back({b.src, b.dst, std::uint8_t(b.state), b.era});
  }
  std::vector<obs::Diagnosis> open;
  if (watchdog_) {
    for (const obs::Diagnosis& d : watchdog_->diagnoses())
      if (d.open) open.push_back(d);
  }
  timeseries_->collect(snap, wallClockMs(), tracer_.nowNs(), health,
                       breakers, std::move(open));
}

void Cluster::writeTimeSeries(std::ostream& os) const {
  if (timeseries_) {
    timeseries_->writeJson(os);
    return;
  }
  os << "{\"schema_version\": " << obs::kTimeSeriesSchemaVersion
     << ", \"kind\": \"gravel-timeseries\", \"period_ms\": 0, "
        "\"capacity\": 0, \"dropped_windows\": 0, \"windows\": []}";
}

void Cluster::writeStatusJson(std::ostream& os) {
  const obs::MetricsSnapshot snap = collectMetrics();
  obs::JsonWriter w(os);
  w.beginObject();
  w.kv("schema_version", std::int64_t{1});
  w.kv("kind", "gravel-status");
  w.kv("now_ns", tracer_.nowNs());
  w.kv("wall_ms", wallClockMs());
  w.kv("nodes", std::uint64_t{config_.nodes});
  w.kv("policy", membership_ ? "degrade" : "fail-fast");

  // Per-node rows: membership + incarnation and the pipeline counters
  // gravel-top turns into per-node rate columns.
  w.key("membership").beginArray();
  for (std::uint32_t i = 0; i < config_.nodes; ++i) {
    const std::string node = "node=" + std::to_string(i);
    w.beginObject();
    w.kv("node", std::uint64_t{i});
    w.kv("state",
         membership_ ? nodeHealthName(membership_->health(i)) : "alive");
    w.kv("epoch",
         std::uint64_t{membership_ ? membership_->epoch(i) : 0});
    w.kv("slots_reserved",
         std::uint64_t(snap.number("gpu_queue.slots_reserved", node)));
    w.kv("slots_routed",
         std::uint64_t(snap.number("agg.slots_processed", node)));
    w.kv("resolved",
         std::uint64_t(snap.number("net.messages_resolved", node)));
    w.endObject();
  }
  w.endArray();

  // Per-link rows: every link with unacked traffic plus every link whose
  // breaker ever left closed, merged on (src, dst).
  w.key("links").beginArray();
  if (reliable_) {
    struct LinkRow {
      std::uint64_t unacked = 0;
      std::uint32_t retries = 0;
      std::uint64_t stalled_ns = 0;
      std::uint8_t breaker = 0;
      std::uint32_t era = 0;
    };
    std::map<std::pair<std::uint32_t, std::uint32_t>, LinkRow> rows;
    for (const auto& ls : reliable_->sendStates()) {
      LinkRow& r = rows[{ls.src, ls.dst}];
      r.unacked = ls.unacked;
      r.retries = ls.retries;
      r.stalled_ns = ls.stalled_ns;
      r.breaker = std::uint8_t(ls.breaker);
    }
    for (const auto& b : reliable_->breakerStates()) {
      LinkRow& r = rows[{b.src, b.dst}];
      r.breaker = std::uint8_t(b.state);
      r.era = b.era;
    }
    for (const auto& [link, r] : rows) {
      w.beginObject();
      w.kv("src", std::uint64_t{link.first});
      w.kv("dst", std::uint64_t{link.second});
      w.kv("breaker", obs::linkBreakerName(r.breaker));
      w.kv("era", std::uint64_t{r.era});
      w.kv("unacked", r.unacked);
      w.kv("retries", std::uint64_t{r.retries});
      w.kv("stalled_ms", double(r.stalled_ns) / 1e6);
      w.endObject();
    }
  }
  w.endArray();

  w.key("dead_letter").beginObject();
  {
    const net::DeadLetterStats d =
        dlq_ ? dlq_->stats() : net::DeadLetterStats{};
    w.kv("dead_lettered", d.dead_lettered);
    w.kv("redelivered", d.redelivered);
    w.kv("rejected", d.rejected);
    w.kv("evicted", d.evicted);
    w.kv("stored", d.stored);
    w.key("stored_per_dest").beginArray();
    if (dlq_)
      for (std::uint64_t v : dlq_->storedPerDest()) w.value(v);
    w.endArray();
  }
  w.endObject();

  // Latency percentile gauges (absent until any sampled message pairs).
  w.key("latency").beginObject();
  if (const obs::MetricValue* m = snap.find("lat.e2e_p50_ns"))
    w.kv("e2e_p50_ns", m->value);
  if (const obs::MetricValue* m = snap.find("lat.e2e_p99_ns"))
    w.kv("e2e_p99_ns", m->value);
  if (const obs::MetricValue* m = snap.find("lat.bottleneck_stage"))
    w.kv("bottleneck", obs::transitionLabel(int(m->value)));
  w.key("stages").beginArray();
  for (int t = 0; t < obs::LatencyAttribution::kTransitions; ++t) {
    const std::string label = "stage=" + obs::transitionLabel(t);
    const obs::MetricValue* p50 = snap.find("lat.stage_p50_ns", label);
    const obs::MetricValue* p99 = snap.find("lat.stage_p99_ns", label);
    if (p50 == nullptr && p99 == nullptr) continue;
    w.beginObject();
    w.kv("stage", obs::transitionLabel(t));
    if (p50) w.kv("p50_ns", p50->value);
    if (p99) w.kv("p99_ns", p99->value);
    w.endObject();
  }
  w.endArray();
  w.endObject();

  w.key("watchdog").beginObject();
  w.kv("overflow", watchdog_ ? watchdog_->overflow() : 0);
  w.key("diagnoses").beginArray();
  if (watchdog_) {
    for (const obs::Diagnosis& d : watchdog_->diagnoses()) {
      w.beginObject();
      w.kv("kind", obs::stallKindName(d.kind));
      w.kv("node", std::uint64_t{d.node});
      w.kv("dest", std::uint64_t{d.dest});
      w.kv("depth", d.depth);
      w.kv("duration_ms", double(d.duration_ns()) / 1e6);
      w.kv("open", d.open);
      w.endObject();
    }
  }
  w.endArray();
  w.endObject();

  // Recent collector windows with precomputed rate columns (gravel-top's
  // table; the full ring lives at /timeseries).
  w.key("timeseries").beginObject();
  w.kv("period_ms", std::int64_t(config_.timeseries.period.count()));
  w.kv("windows",
       std::uint64_t(timeseries_ ? timeseries_->size() : std::size_t{0}));
  w.key("recent").beginArray();
  if (timeseries_) {
    for (const obs::TimeSeriesWindow& win : timeseries_->lastWindows(8)) {
      w.beginObject();
      w.kv("seq", win.seq);
      w.kv("wall_ms", win.wall_ms);
      w.kv("seconds", win.seconds());
      w.kv("msgs_per_s", win.ratePerSec("fabric.messages"));
      w.kv("bytes_per_s", win.ratePerSec("fabric.bytes"));
      w.kv("retransmits_per_s", win.ratePerSec("fabric.retransmits"));
      w.kv("dead_lettered_per_s", win.ratePerSec("dlq.dead_lettered"));
      w.endObject();
    }
  }
  w.endArray();
  w.endObject();

  // Per-thread duty cycles for gravel-top's THREADS panel (empty when
  // profiling is off; the full path/lock detail lives at /profile).
  w.key("profile").beginObject();
  w.kv("enabled", profiler_.enabled());
  w.key("threads").beginArray();
  if (profiler_.enabled()) {
    for (const obs::Profiler::ThreadSample& t : profiler_.sample()) {
      w.beginObject();
      w.kv("name", t.name);
      w.kv("busy_ns", t.busy_ns);
      w.kv("idle_ns", t.idle_ns);
      const std::uint64_t span = t.busy_ns + t.idle_ns;
      w.kv("duty", span == 0 ? 0.0 : double(t.busy_ns) / double(span));
      w.kv("dropped", t.dropped);
      w.endObject();
    }
  }
  w.endArray();
  w.endObject();

  w.endObject();
}

// Route table for the status server's service thread. Every handler reads
// through thread-safe surfaces (registry mutex, lock-free membership reads,
// the collector's ring mutex), so serving concurrently with a live run is
// safe; any escape hatch becomes a 500 body instead of a crash.
obs::StatusResponse Cluster::handleStatusRequest(const std::string& path) {
  try {
    std::ostringstream body;
    if (path == "/metrics") {
      obs::writePrometheusText(body, collectMetrics());
      return {200, "text/plain; version=0.0.4; charset=utf-8", body.str()};
    }
    if (path == "/status") {
      writeStatusJson(body);
      return {200, "application/json", body.str()};
    }
    if (path == "/timeseries") {
      writeTimeSeries(body);
      return {200, "application/json", body.str()};
    }
    if (path == "/profile") {
      writeProfileJson(body);
      return {200, "application/json", body.str()};
    }
    if (path == "/" || path == "/index.html")
      return {200, "text/plain; charset=utf-8",
              "gravel status endpoints: /metrics /status /timeseries "
              "/profile /healthz\n"};
    return {404, "text/plain; charset=utf-8", "unknown path: " + path + "\n"};
  } catch (const std::exception& e) {
    return {500, "text/plain; charset=utf-8",
            std::string("telemetry error: ") + e.what() + "\n"};
  }
}

// Best-effort post-mortem artifact; never throws (it runs on error paths
// and in the destructor).
void Cluster::dumpFlightRecorder(const char* reason) const noexcept {
  try {
    if (!tracer_.flightRecorder().enabled()) return;
    const char* dir = std::getenv("GRAVEL_FLIGHTREC_DIR");
    std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
    path += "/gravel_flightrec.json";
    std::ofstream os(path);
    if (!os) return;
    writeFlightRecorder(os, reason);
  } catch (...) {
    // Swallow: a failed dump must not mask the error being reported.
  }
}

void Cluster::writeProfileJson(std::ostream& os) const {
  obs::writeProfilerJson(os, profiler_, obs::Profiler::nowNs());
}

// Exit artifact for a profiled run:
// ${GRAVEL_PROFILE_DIR:-.}/gravel_profile.json — the same document /profile
// serves, taken after every instrumented thread joined. Best-effort (runs
// in the destructor).
void Cluster::dumpProfile() const noexcept {
  try {
    const char* dir = std::getenv("GRAVEL_PROFILE_DIR");
    std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
    path += "/gravel_profile.json";
    std::ofstream os(path);
    if (!os) return;
    writeProfileJson(os);
  } catch (...) {
  }
}

// Exit artifact mirroring the flight recorder's pattern:
// ${GRAVEL_TIMESERIES_DIR:-.}/gravel_timeseries.json. Best-effort — it runs
// in the destructor.
void Cluster::dumpTimeSeries() const noexcept {
  try {
    if (!timeseries_) return;
    const char* dir = std::getenv("GRAVEL_TIMESERIES_DIR");
    std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
    path += "/gravel_timeseries.json";
    std::ofstream os(path);
    if (!os) return;
    timeseries_->writeJson(os);
  } catch (...) {
  }
}

}  // namespace gravel::rt
