// The per-node network thread (paper §6): receives per-node queues from the
// fabric and resolves each message as a local memory operation. Routing all
// atomics — local ones included — through this single thread serializes them,
// which is both the paper's correctness strategy for active messages and the
// reason local/remote atomic throughput is similar (§7.1).
#pragma once

#include <cstdint>
#include <thread>

#include "common/atomic.hpp"
#include "common/backoff.hpp"
#include "net/fabric.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "runtime/active_message.hpp"
#include "runtime/message.hpp"
#include "runtime/symmetric_heap.hpp"

namespace gravel::rt {

class NetworkThread {
 public:
  NetworkThread(std::uint32_t self, net::Fabric& fabric, SymmetricHeap& heap,
                const AmRegistry& registry, obs::Tracer& tracer,
                obs::Profiler* profiler = nullptr)
      : self_(self),
        fabric_(fabric),
        heap_(heap),
        registry_(registry),
        tracer_(tracer),
        prof_(profiler),
        // Handler-initiated follow-on messages ship immediately as
        // one-message batches: chained walks are latency-bound, not
        // bandwidth-bound, and shipping before markResolved() keeps the
        // quiet protocol's in-flight count from ever touching zero
        // mid-chain. A member (not a run()-local) because AmContext holds
        // the SendFn by reference and pumpOnce() needs it thread-free.
        sendFn_([this](std::uint32_t dest, std::uint32_t handler,
                       std::uint64_t a0, std::uint64_t a1) {
          fabric_.send(self_, dest,
                       {NetMessage::activeMessage(dest, handler, a0, a1)});
        }),
        ctx_(heap_, self_, sendFn_) {}

  ~NetworkThread() { stop(); }

  NetworkThread(const NetworkThread&) = delete;
  NetworkThread& operator=(const NetworkThread&) = delete;

  void start() {
    // A previously stopped worker (crash/restart cycling) was joined by
    // stop(), but the moved-from std::thread must be reaped before the slot
    // is reused.
    if (worker_.joinable()) worker_.join();
    // Thread creation below establishes the happens-before to the worker.
    stopped_.store(false, std::memory_order_relaxed);
    worker_ = std::thread([this] { run(); });
  }

  void stop() {
    // Release pairs with the worker's acquire: everything published before
    // the stop request is visible to the worker's final drain.
    stopped_.store(true, std::memory_order_release);  // pairs-with: netthread.stopped
    if (worker_.joinable()) worker_.join();
  }

  std::uint64_t messagesResolved() const noexcept {
    return resolved_.load(std::memory_order_relaxed);
  }

  /// Whether the worker is (logically) live — false before start(), after
  /// stop(), and after crashNode() stopped it. restartNode() uses this to
  /// avoid double-starting a thread the failure detector never killed.
  bool running() const noexcept {
    return !stopped_.load(std::memory_order_acquire);  // pairs-with: netthread.stopped
  }

  /// Cooperative (pooled) drive: one fabric poll plus at most one delivery
  /// batch, never blocking. Returns true when messages were resolved. The
  /// pool guarantees one driver per node at a time, so this shares the
  /// dedicated worker's single-consumer contract (they are never mixed:
  /// pooled clusters never start() the worker).
  bool pumpOnce() {
    {
      // poll() IS the reliable layer's ack/retransmit scan (a no-op on the
      // perfect fabric) — attribute it separately from delivery work.
      obs::ScopedRegion pollRegion(prof_, obs::Region::kRelRetransmit);
      fabric_.poll(self_);
    }
    net::Delivery d;
    if (!fabric_.tryReceive(self_, d)) return false;
    obs::ScopedRegion recvRegion(prof_, obs::Region::kNetRecv);
    for (const NetMessage& m : d.messages) resolve(ctx_, m);
    fabric_.markResolved(self_, d);
    resolved_.fetch_add(d.messages.size(), std::memory_order_relaxed);
    return true;
  }

 private:
  void run() {
    const std::string name = "net." + std::to_string(self_);
    tracer_.nameThread(name);
    if (prof_ != nullptr) prof_->nameThread(name);
    net::Delivery d;
    // Bounded backoff: an idle network thread decays to ~100 us sleeps
    // (cheap CPU) but snaps back to hot spinning on the first delivery.
    Backoff backoff(std::chrono::microseconds(100));
    for (;;) {
      {
        // Drive the fabric's housekeeping even while traffic keeps us
        // busy. poll() IS the reliability layer's ack/retransmit scan (a
        // no-op on the perfect fabric), so it gets its own region.
        obs::ScopedRegion pollRegion(prof_, obs::Region::kRelRetransmit);
        fabric_.poll(self_);
      }
      if (fabric_.tryReceive(self_, d)) {
        obs::ScopedRegion recvRegion(prof_, obs::Region::kNetRecv);
        for (const NetMessage& m : d.messages) resolve(ctx_, m);
        fabric_.markResolved(self_, d);
        resolved_.fetch_add(d.messages.size(), std::memory_order_relaxed);
        backoff.reset();
      // pairs-with: netthread.stopped
      } else if (stopped_.load(std::memory_order_acquire)) {
        // Drain once more after observing stop; quiet() guarantees no new
        // sends race this.
        if (!fabric_.tryReceive(self_, d)) return;
        obs::ScopedRegion recvRegion(prof_, obs::Region::kNetRecv);
        for (const NetMessage& m : d.messages) resolve(ctx_, m);
        fabric_.markResolved(self_, d);
        resolved_.fetch_add(d.messages.size(), std::memory_order_relaxed);
      } else {
        obs::ScopedRegion idleRegion(prof_, obs::Region::kIdle);
        backoff.wait();
      }
    }
  }

  void resolve(AmContext& ctx, const NetMessage& m) {
    // active(), not enabled(): the flight recorder records every delivery
    // (id 0 = unsampled), the sampled buffers only the stamped ones.
    const bool traced = tracer_.active();
    if (traced)
      tracer_.recordStage(obs::Stage::kDeliver, m.traceId(),
                          std::uint16_t(self_), std::uint16_t(self_), m.addr,
                          std::uint8_t(m.command()));
    switch (m.command()) {
      case Command::kPut:
        heap_.storeU64(m.addr, m.value);
        break;
      case Command::kAtomicInc:
        heap_.fetchAddU64(m.addr, 1);
        break;
      case Command::kActiveMessage:
        registry_.run(m.handler(), ctx, m.addr, m.value);
        break;
      case Command::kControl:
        // Reliability framing is stripped inside ReliableFabric; a control
        // message reaching the resolver means a layering bug.
        GRAVEL_CHECK_MSG(false, "control message escaped the fabric layer");
        break;
    }
    if (traced)
      tracer_.recordStage(obs::Stage::kResolve, m.traceId(),
                          std::uint16_t(self_), std::uint16_t(self_), m.addr,
                          std::uint8_t(m.command()));
  }

  std::uint32_t self_;
  net::Fabric& fabric_;
  SymmetricHeap& heap_;
  const AmRegistry& registry_;
  obs::Tracer& tracer_;
  obs::Profiler* prof_;
  /// Declared before ctx_: AmContext stores the SendFn by reference.
  AmContext::SendFn sendFn_;
  AmContext ctx_;
  atomic<bool> stopped_{true};
  atomic<std::uint64_t> resolved_{0};
  std::thread worker_;
};

}  // namespace gravel::rt
