#include "baselines/cpu_agg.hpp"

#include <cstring>
#include <thread>

namespace gravel::baselines {

CpuCluster::CpuCluster(const CpuClusterConfig& config) : config_(config) {
  GRAVEL_CHECK_MSG(config.nodes > 0 && config.threads_per_node > 0,
                   "bad CPU cluster shape");
  heaps_.assign(config.nodes,
                std::vector<std::uint64_t>(config.heap_words, 0));
  heapMutex_.reserve(config.nodes);
  for (std::uint32_t i = 0; i < config.nodes; ++i)
    heapMutex_.push_back(
        std::make_unique<gravel::mutex>("CpuCluster::heapMutex_"));
}

std::uint64_t CpuCluster::loadWord(std::uint32_t node,
                                   std::uint64_t addr) const {
  GRAVEL_CHECK(node < config_.nodes && addr < config_.heap_words);
  return heaps_[node][addr];
}

void CpuCluster::storeWord(std::uint32_t node, std::uint64_t addr,
                           std::uint64_t value) {
  GRAVEL_CHECK(node < config_.nodes && addr < config_.heap_words);
  heaps_[node][addr] = value;
}

void CpuCluster::applyBatch(std::uint32_t src, std::uint32_t dest,
                            const std::vector<CpuOp>& ops) {
  if (ops.empty()) return;
  {
    gravel::lock_guard lk(*heapMutex_[dest]);
    auto& heap = heaps_[dest];
    for (const CpuOp& op : ops) {
      // kCall carries an opaque arg0 in `addr`; only direct heap ops are
      // bounds-checked here (handlers validate their own accesses).
      GRAVEL_CHECK_MSG(op.kind == CpuOp::Kind::kCall || op.addr < heap.size(),
                       "delegate address out of range");
      switch (op.kind) {
        case CpuOp::Kind::kInc:
          ++heap[op.addr];
          break;
        case CpuOp::Kind::kPutBits:
          heap[op.addr] = op.value;
          break;
        case CpuOp::Kind::kAddBits: {
          double cur, add;
          std::memcpy(&cur, &heap[op.addr], 8);
          std::memcpy(&add, &op.value, 8);
          cur += add;
          std::memcpy(&heap[op.addr], &cur, 8);
          break;
        }
        case CpuOp::Kind::kCall:
          GRAVEL_CHECK_MSG(op.handler < handlers_.size(),
                           "unknown delegate handler");
          handlers_[op.handler](heap, op.addr, op.value);
          break;
      }
    }
  }
  gravel::lock_guard lk(statsMutex_);
  if (src != dest) {
    ++stats_.batches;
    stats_.batch_bytes += ops.size() * sizeof(CpuOp) * 2;  // padded 32 B wire
  }
}

CpuCluster::WorkerCtx::WorkerCtx(CpuCluster& cluster, std::uint32_t node,
                                 std::uint32_t /*thread*/)
    : cluster_(cluster), node_(node), buffers_(cluster.nodes()) {
  for (auto& b : buffers_) b.reserve(cluster.config().buffer_msgs);
}

CpuCluster::WorkerCtx::~WorkerCtx() { flushAll(); }

void CpuCluster::WorkerCtx::push(std::uint32_t dest, const CpuOp& op) {
  {
    gravel::lock_guard lk(cluster_.statsMutex_);
    if (dest == node_)
      ++cluster_.stats_.ops_local;
    else
      ++cluster_.stats_.ops_remote;
  }
  auto& buf = buffers_[dest];
  buf.push_back(op);
  if (buf.size() >= cluster_.config().buffer_msgs) {
    cluster_.applyBatch(node_, dest, buf);
    buf.clear();
  }
}

void CpuCluster::WorkerCtx::delegateInc(std::uint32_t dest,
                                        std::uint64_t addr) {
  push(dest, CpuOp{CpuOp::Kind::kInc, addr, 0});
}
void CpuCluster::WorkerCtx::delegatePut(std::uint32_t dest,
                                        std::uint64_t addr,
                                        std::uint64_t bits) {
  push(dest, CpuOp{CpuOp::Kind::kPutBits, addr, bits});
}
void CpuCluster::WorkerCtx::delegateAddDouble(std::uint32_t dest,
                                              std::uint64_t addr,
                                              double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, 8);
  push(dest, CpuOp{CpuOp::Kind::kAddBits, addr, bits});
}

void CpuCluster::WorkerCtx::delegateCall(std::uint32_t dest,
                                         std::uint32_t handler,
                                         std::uint64_t arg0,
                                         std::uint64_t arg1) {
  push(dest, CpuOp{CpuOp::Kind::kCall, arg0, arg1, handler});
}

void CpuCluster::WorkerCtx::flushAll() {
  for (std::uint32_t dest = 0; dest < buffers_.size(); ++dest) {
    if (buffers_[dest].empty()) continue;
    cluster_.applyBatch(node_, dest, buffers_[dest]);
    buffers_[dest].clear();
  }
}

void CpuCluster::parallelFor(
    std::uint64_t perNode,
    const std::function<void(std::uint32_t, WorkerCtx&, std::uint64_t)>&
        body) {
  std::vector<std::thread> workers;
  std::vector<std::exception_ptr> errors(
      std::size_t{config_.nodes} * config_.threads_per_node);
  for (std::uint32_t node = 0; node < config_.nodes; ++node) {
    for (std::uint32_t t = 0; t < config_.threads_per_node; ++t) {
      workers.emplace_back([this, node, t, perNode, &body, &errors] {
        try {
          WorkerCtx ctx(*this, node, t);
          // Static interleaved schedule, deterministic per thread.
          for (std::uint64_t i = t; i < perNode; i += config_.threads_per_node)
            body(node, ctx, i);
          ctx.flushAll();
        } catch (...) {
          errors[std::size_t{node} * config_.threads_per_node + t] =
              std::current_exception();
        }
      });
    }
  }
  for (auto& w : workers) w.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

CpuRunStats CpuCluster::stats() const {
  gravel::lock_guard lk(statsMutex_);
  return stats_;
}

void CpuCluster::resetStats() {
  gravel::lock_guard lk(statsMutex_);
  stats_ = CpuRunStats{};
}

}  // namespace gravel::baselines
