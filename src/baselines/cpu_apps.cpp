#include "baselines/cpu_apps.hpp"

#include <cmath>
#include <map>

namespace gravel::baselines {

using apps::bitsDouble;
using apps::doubleBits;
using graph::Vertex;

CpuAppReport runCpuGups(CpuCluster& cluster, const apps::GupsConfig& cfg) {
  const std::uint32_t nodes = cluster.nodes();
  graph::BlockPartition part(cfg.table_size, nodes);
  cluster.resetStats();
  cluster.parallelFor(cfg.updates_per_node,
                      [&](std::uint32_t node, CpuCluster::WorkerCtx& ctx,
                          std::uint64_t u) {
                        const std::uint64_t g = apps::gupsTarget(cfg, node, u);
                        ctx.delegateInc(part.owner(g), part.localIndex(g));
                      });

  CpuAppReport report;
  report.stats = cluster.stats();
  report.work_units = double(cfg.updates_per_node) * nodes;

  std::vector<std::uint64_t> expected(cfg.table_size, 0);
  for (std::uint32_t n = 0; n < nodes; ++n)
    for (std::uint64_t u = 0; u < cfg.updates_per_node; ++u)
      ++expected[apps::gupsTarget(cfg, n, u)];
  report.validated = true;
  for (std::uint64_t g = 0; g < cfg.table_size; ++g)
    if (cluster.loadWord(part.owner(g), part.localIndex(g)) != expected[g]) {
      report.validated = false;
      break;
    }
  return report;
}

CpuAppReport runCpuPageRank(CpuCluster& cluster, const graph::DistGraph& dg,
                            const apps::PageRankConfig& cfg) {
  const std::uint32_t nodes = cluster.nodes();
  const graph::Csr& g = dg.graph();
  const auto& vp = dg.vertices();
  const Vertex n = g.vertexCount();

  // Heap layout per node: [0, perNode) ranks, [perNode, 2*perNode) incoming.
  const std::uint64_t perNode = vp.perNode();
  for (std::uint32_t nd = 0; nd < nodes; ++nd)
    for (std::uint64_t l = 0; l < vp.sizeOf(nd); ++l) {
      cluster.storeWord(nd, l, doubleBits(1.0 / n));
      cluster.storeWord(nd, perNode + l, doubleBits(0.0));
    }

  cluster.resetStats();
  for (std::uint64_t it = 0; it < cfg.iterations; ++it) {
    cluster.parallelFor(perNode, [&](std::uint32_t node,
                                     CpuCluster::WorkerCtx& ctx,
                                     std::uint64_t l) {
      if (l >= vp.sizeOf(node)) return;
      const auto v = Vertex(vp.globalIndex(node, l));
      const auto deg = g.degree(v);
      if (deg == 0) return;
      const double share = bitsDouble(cluster.loadWord(node, l)) / double(deg);
      for (Vertex w : g.neighbors(v))
        ctx.delegateAddDouble(vp.owner(w), perNode + vp.localIndex(w), share);
    });
    // Local apply phase (host loop, same as Grappa's synchronous rounds).
    for (std::uint32_t nd = 0; nd < nodes; ++nd)
      for (std::uint64_t l = 0; l < vp.sizeOf(nd); ++l) {
        const double incoming = bitsDouble(cluster.loadWord(nd, perNode + l));
        cluster.storeWord(
            nd, l, doubleBits((1.0 - cfg.damping) / n + cfg.damping * incoming));
        cluster.storeWord(nd, perNode + l, doubleBits(0.0));
      }
  }

  CpuAppReport report;
  report.stats = cluster.stats();
  report.work_units = double(g.edgeCount()) * cfg.iterations;
  report.rounds = cfg.iterations;

  const auto expected = apps::serialPageRank(g, cfg.iterations, cfg.damping);
  report.validated = true;
  for (Vertex v = 0; v < n; ++v) {
    const double got =
        bitsDouble(cluster.loadWord(vp.owner(v), vp.localIndex(v)));
    // Delegate adds land in thread-interleaved order: tolerance, not
    // bit-equality.
    if (std::abs(got - expected[v]) > 1e-7) {
      report.validated = false;
      break;
    }
  }
  return report;
}

CpuAppReport runCpuMer(CpuCluster& cluster, const apps::MerConfig& cfg) {
  const std::uint32_t nodes = cluster.nodes();
  const std::uint64_t slots = cfg.table_slots_per_node;
  GRAVEL_CHECK_MSG(2 * slots <= cluster.config().heap_words,
                   "CPU heap too small for the k-mer table");

  // Heap layout per node: [0, slots) keys, [slots, 2*slots) packed counts.
  const std::uint32_t insert = cluster.registerHandler(
      [slots](std::vector<std::uint64_t>& heap, std::uint64_t code,
              std::uint64_t ext) {
        const std::uint64_t key = code + 1;
        std::uint64_t probe = apps::mix64(code) % slots;
        for (std::uint64_t tries = 0; tries < slots; ++tries) {
          if (heap[probe] == 0) heap[probe] = key;
          if (heap[probe] == key) {
            std::uint64_t counts = heap[slots + probe];
            const std::uint8_t left = ext & 0xff;
            const std::uint8_t right = (ext >> 8) & 0xff;
            auto bump = [&counts](std::uint32_t byte) {
              const std::uint64_t shift = byte * 8;
              if (((counts >> shift) & 0xff) != 0xff)
                counts += std::uint64_t(1) << shift;
            };
            if (left < 4) bump(left);
            if (right < 4) bump(4 + right);
            heap[slots + probe] = counts;
            return;
          }
          probe = (probe + 1) % slots;
        }
      });

  std::vector<std::vector<apps::KmerOccurrence>> streams(nodes);
  std::uint64_t maxStream = 0;
  for (std::uint32_t nd = 0; nd < nodes; ++nd) {
    streams[nd] = apps::extractKmers(cfg, nd);
    maxStream = std::max<std::uint64_t>(maxStream, streams[nd].size());
  }

  cluster.resetStats();
  cluster.parallelFor(maxStream, [&](std::uint32_t node,
                                     CpuCluster::WorkerCtx& ctx,
                                     std::uint64_t i) {
    if (i >= streams[node].size()) return;
    const auto& occ = streams[node][i];
    ctx.delegateCall(std::uint32_t(apps::mix64(occ.code) % nodes), insert,
                     occ.code,
                     std::uint64_t(occ.left) | (std::uint64_t(occ.right) << 8));
  });

  CpuAppReport report;
  report.stats = cluster.stats();

  // Serial reference, as in apps::runMer.
  std::map<std::uint64_t, std::uint64_t> expected;
  std::uint64_t occurrences = 0;
  for (std::uint32_t nd = 0; nd < nodes; ++nd)
    for (const auto& occ : streams[nd]) {
      ++occurrences;
      std::uint64_t& counts = expected[occ.code];
      auto bump = [&counts](std::uint32_t byte) {
        const std::uint64_t shift = byte * 8;
        if (((counts >> shift) & 0xff) != 0xff)
          counts += std::uint64_t(1) << shift;
      };
      if (occ.left < 4) bump(occ.left);
      if (occ.right < 4) bump(4 + occ.right);
    }
  report.work_units = double(occurrences);

  bool ok = true;
  std::uint64_t found = 0;
  for (std::uint32_t nd = 0; nd < nodes && ok; ++nd) {
    for (std::uint64_t s = 0; s < slots; ++s) {
      const std::uint64_t key = cluster.loadWord(nd, s);
      if (key == 0) continue;
      ++found;
      const auto it = expected.find(key - 1);
      if (it == expected.end() ||
          it->second != cluster.loadWord(nd, slots + s)) {
        ok = false;
        break;
      }
    }
  }
  report.validated = ok && found == expected.size();
  return report;
}

}  // namespace gravel::baselines
