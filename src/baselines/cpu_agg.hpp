// CPU-based distributed comparator (paper Figure 13): a compact Grappa-like
// runtime — worker threads issue fine-grain delegate operations that are
// buffered in *per-thread per-destination* aggregation buffers (the scheme
// Grappa/GraphLab/GMT use, which §1 notes is a poor fit for GPUs) and
// applied at the home node in batches.
//
// The functional run counts operations, batches and bytes; Figure 13's
// timing comes from perf::cpuBaselineTime over those counts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/atomic.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace gravel::baselines {

struct CpuClusterConfig {
  std::uint32_t nodes = 8;
  std::uint32_t threads_per_node = 4;  ///< Table 3: 2 cores / 4 threads
  std::uint64_t heap_words = 1 << 20;
  std::uint64_t buffer_msgs = 2048;  ///< 64 kB of 32 B messages
};

/// One buffered delegate operation.
struct CpuOp {
  enum class Kind : std::uint8_t { kInc, kPutBits, kAddBits, kCall } kind;
  std::uint64_t addr;   ///< word index into the destination heap (or arg 0)
  std::uint64_t value;  ///< put/add payload, double bit pattern, or arg 1
  std::uint32_t handler = 0;  ///< registered callable for kCall
};

/// Grappa-style delegate callable: runs at the home node with its heap,
/// serialized by the home lock.
using CpuHandler = std::function<void(std::vector<std::uint64_t>& heap,
                                      std::uint64_t arg0, std::uint64_t arg1)>;

/// Traffic counters, mirroring rt::ClusterRunStats' network fields.
struct CpuRunStats {
  std::uint64_t ops_local = 0;
  std::uint64_t ops_remote = 0;
  std::uint64_t batches = 0;
  std::uint64_t batch_bytes = 0;
  double remoteFraction() const {
    const auto t = ops_local + ops_remote;
    return t ? double(ops_remote) / double(t) : 0.0;
  }
};

/// The Grappa-like cluster. Worker threads call delegate ops through a
/// WorkerCtx; application of a batch at its home node is serialized by a
/// per-node mutex (the home-core model).
class CpuCluster {
 public:
  explicit CpuCluster(const CpuClusterConfig& config);

  std::uint32_t nodes() const noexcept { return config_.nodes; }
  const CpuClusterConfig& config() const noexcept { return config_; }

  std::uint64_t loadWord(std::uint32_t node, std::uint64_t addr) const;
  void storeWord(std::uint32_t node, std::uint64_t addr, std::uint64_t value);

  /// Registers a delegate callable; do this before parallelFor.
  std::uint32_t registerHandler(CpuHandler handler) {
    handlers_.push_back(std::move(handler));
    return std::uint32_t(handlers_.size() - 1);
  }

  /// Per-thread handle used inside parallelFor bodies.
  class WorkerCtx {
   public:
    WorkerCtx(CpuCluster& cluster, std::uint32_t node, std::uint32_t thread);
    ~WorkerCtx();  ///< flushes remaining buffers

    void delegateInc(std::uint32_t dest, std::uint64_t addr);
    void delegatePut(std::uint32_t dest, std::uint64_t addr,
                     std::uint64_t bits);
    void delegateAddDouble(std::uint32_t dest, std::uint64_t addr,
                           double value);
    void delegateCall(std::uint32_t dest, std::uint32_t handler,
                      std::uint64_t arg0, std::uint64_t arg1);
    void flushAll();

   private:
    void push(std::uint32_t dest, const CpuOp& op);
    CpuCluster& cluster_;
    std::uint32_t node_;
    std::vector<std::vector<CpuOp>> buffers_;  // per destination
  };

  /// Runs `body(node, ctx, index)` for every index in [0, perNode) on every
  /// node, spread over threads_per_node worker threads per node. Flushes
  /// and waits for full delivery before returning (a global barrier).
  void parallelFor(
      std::uint64_t perNode,
      const std::function<void(std::uint32_t node, WorkerCtx& ctx,
                               std::uint64_t index)>& body);

  CpuRunStats stats() const;
  void resetStats();

 private:
  friend class WorkerCtx;
  void applyBatch(std::uint32_t src, std::uint32_t dest,
                  const std::vector<CpuOp>& ops);

  CpuClusterConfig config_;
  // heaps_[n] is guarded by *heapMutex_[n]; TSA cannot express a
  // per-element mutex array, so applyBatch() documents the pairing and
  // the verify scenarios exercise it instead.
  std::vector<std::vector<std::uint64_t>> heaps_;
  std::vector<std::unique_ptr<gravel::mutex>> heapMutex_;
  std::vector<CpuHandler> handlers_;
  mutable gravel::mutex statsMutex_{"CpuCluster::statsMutex_"};
  CpuRunStats stats_ GRAVEL_GUARDED_BY(statsMutex_);
};

}  // namespace gravel::baselines
