// The Figure 13 CPU workloads: GUPS and PageRank on the Grappa-like runtime
// and Meraculous phase 1 on a UPC-like delegate path. Each reuses the
// Gravel app's deterministic input generation so results can be validated
// against the same serial references.
#pragma once

#include <cstdint>

#include "apps/gups.hpp"
#include "apps/mer.hpp"
#include "apps/pagerank.hpp"
#include "baselines/cpu_agg.hpp"
#include "graph/dist.hpp"

namespace gravel::baselines {

struct CpuAppReport {
  CpuRunStats stats;
  double work_units = 0;
  std::uint64_t rounds = 1;
  bool validated = false;
};

/// GUPS with delegate increments (Grappa's canonical benchmark).
CpuAppReport runCpuGups(CpuCluster& cluster, const apps::GupsConfig& cfg);

/// Push-style PageRank with delegate double-adds (CPU handlers can combine,
/// so no per-edge inbox is needed — the Grappa formulation).
CpuAppReport runCpuPageRank(CpuCluster& cluster, const graph::DistGraph& dg,
                            const apps::PageRankConfig& cfg);

/// Meraculous phase 1 with delegate k-mer inserts (UPC-style DHT build).
CpuAppReport runCpuMer(CpuCluster& cluster, const apps::MerConfig& cfg);

}  // namespace gravel::baselines
