// Error handling: checked invariants that throw (never abort), so tests can
// assert on failure behaviour (e.g. SIMT deadlock detection, queue misuse).
#pragma once

#include <stdexcept>
#include <string>

namespace gravel {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A work-group reached an inconsistent synchronization state (e.g. some
/// work-items exited while siblings wait at a WG barrier). Mirrors the real
/// GPU behaviour, where such programs hang; we detect and throw instead.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// An API precondition was violated (bad configuration, bad arguments).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throwCheckFailure(const char* cond, const char* file,
                                           int line, const std::string& msg) {
  throw Error(std::string("check failed: ") + cond + " at " + file + ":" +
              std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace gravel

#define GRAVEL_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::gravel::detail::throwCheckFailure(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define GRAVEL_CHECK_MSG(cond, msg)                                      \
  do {                                                                   \
    if (!(cond))                                                         \
      ::gravel::detail::throwCheckFailure(#cond, __FILE__, __LINE__, msg); \
  } while (0)
