// Repo-wide atomics entry point (DESIGN.md §8).
//
// All shared-memory synchronization in src/ goes through gravel::atomic<T>,
// gravel::atomic_flag, and gravel::mutex from this header — never raw
// std::atomic / std::mutex (enforced by tools/lint_concurrency.py). Two
// build modes:
//
//   - Normal builds: the gravel names are plain aliases for the std types.
//     Zero cost — same codegen, same layout (bench_fig8_queue_tput guards
//     this). The verify hooks (dataLoad/dataStore/spinYield/choose) compile
//     to nothing / a plain yield.
//
//   - GRAVEL_VERIFY=1 builds: the names resolve to the instrumented shim in
//     src/verify/shim.hpp. Every operation becomes a schedule point under
//     the model checker, loads can observe stale-but-coherent values, and
//     plain payload accesses announced via dataLoad/dataStore are checked
//     for data races. See tests/test_verify.cpp for usage.
//
// House rules this header exists to make checkable:
//   1. every load/store/RMW names its memory_order explicitly (the shim's
//      signatures have no defaulted order arguments);
//   2. spin loops call gravel::verify::spinYield() when they back off, so
//      the model checker can block them instead of replaying empty reads;
//   3. code that hands raw payload memory across a synchronization edge
//      announces the access via dataLoad/dataStore;
//   4. gravel::mutex is capability-bearing (common/annotations.hpp): fields
//      it guards say GRAVEL_GUARDED_BY, and critical sections use
//      gravel::lock_guard — never std::scoped_lock, which clang's thread
//      safety analysis cannot see through.
#pragma once

#include "common/annotations.hpp"

#if defined(GRAVEL_VERIFY) && GRAVEL_VERIFY

#include "verify/shim.hpp"

#else  // normal builds: straight aliases, no-op hooks

#include <atomic>
#include <mutex>
#include <string>
#include <thread>

namespace gravel {

template <typename T>
using atomic = std::atomic<T>;
using atomic_flag = std::atomic_flag;

/// std::mutex with clang thread-safety capability attributes. lock/unlock
/// are inline forwarders — same codegen as the bare std::mutex this
/// replaced; the attributes exist purely for -Wthread-safety.
class GRAVEL_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() GRAVEL_ACQUIRE() { m_.lock(); }
  void unlock() GRAVEL_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
};

namespace verify {

inline constexpr bool kEnabled = false;

inline void dataLoad(const void* /*addr*/) noexcept {}
inline void dataStore(const void* /*addr*/) noexcept {}
inline void spinYield() { std::this_thread::yield(); }
inline int choose(int /*numOptions*/) noexcept { return 0; }
inline void fail(const std::string& /*message*/) noexcept {}

}  // namespace verify
}  // namespace gravel

#endif  // GRAVEL_VERIFY

namespace gravel {

/// RAII critical section over a gravel::mutex — the repo's only lock guard.
/// A scoped capability, so clang's thread safety analysis knows the mutex
/// is held for the guard's lifetime (std::scoped_lock is opaque to it).
/// Works identically over the std-alias and verify-shim mutex.
class GRAVEL_SCOPED_CAPABILITY lock_guard {
 public:
  explicit lock_guard(mutex& m) GRAVEL_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~lock_guard() GRAVEL_RELEASE() { m_.unlock(); }

  lock_guard(const lock_guard&) = delete;
  lock_guard& operator=(const lock_guard&) = delete;

 private:
  mutex& m_;
};

}  // namespace gravel
